// The paper's Figure 6 blocking-queue annotations, verbatim style.
/** @DeclareState: IntList *q; */

/** @SideEffect: STATE(q)->push_back(val); */
void enq(int val) {
  Node* n = new Node(val);
  while (1) {
    Node* t = tail.load(acquire);
    Node* old = NULL;
    if (t->next.CAS(old, n, release)) {
      /** @OPDefine: true */
      tail.store(n, release);
      return;
    }
  }
}

/** @SideEffect:
    S_RET = STATE(q)->empty() ? -1 : STATE(q)->front();
    if (S_RET != -1 && C_RET != -1) STATE(q)->pop_front();
    @PostCondition:
    return C_RET == -1 ? true : C_RET == S_RET;
    @JustifyingPostcondition: if (C_RET == -1)
    return S_RET == -1; */
int deq() {
  while (1) {
    Node* h = head.load(acquire);
    Node* n = h->next.load(acquire);
    /** @OPClearDefine: true */
    if (n == NULL) return -1;
    if (head.CAS(h, n, release))
      return n->data;
  }
}

/** @Admit: deq <-> enq (M1->C_RET == -1) */
