// specc — the CDSSpec specification compiler (pipeline demonstration).
//
// The paper's toolchain embeds specifications in C/C++ comments
// (Figure 5's grammar) so one source file serves both the production
// compiler and the checker. This standalone translator performs the
// front-end step: it extracts the annotations from an annotated source
// and emits (a) the cds::spec::Specification registration code and (b) an
// instrumentation plan mapping each ordering-point annotation to the
// runtime call the checker needs.
//
// Usage: specc <annotated.cc> [out.gen.cc]
#include "specc_lib.h"

int main(int argc, char** argv) {

  if (argc < 2) {
    std::cerr << "usage: specc <annotated.cc> [out.gen.cc]\n";
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::cerr << "specc: cannot open " << argv[1] << "\n";
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  std::string name = argv[1];
  std::size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  std::size_t dot = name.find('.');
  if (dot != std::string::npos) name = name.substr(0, dot);

  cds::specc::ParsedSpec spec = cds::specc::parse(buf.str());
  std::string out = cds::specc::emit(spec, name);
  if (argc >= 3) {
    std::ofstream of(argv[2]);
    of << out;
    std::cout << "specc: " << spec.methods.size() << " annotated methods, "
              << spec.ops.size() << " ordering points, " << spec.admits.size()
              << " admissibility rules -> " << argv[2] << "\n";
  } else {
    std::cout << out;
  }
  return 0;
}
