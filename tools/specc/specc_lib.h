// specc parsing/emission library (see specc.cc for the tool overview).
#ifndef CDS_TOOLS_SPECC_LIB_H
#define CDS_TOOLS_SPECC_LIB_H

#include <cctype>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace cds::specc {

struct OrderingPoint {
  std::string kind;   // OPDefine / OPClear / OPClearDefine / PotentialOP / OPCheck
  std::string label;  // for PotentialOP / OPCheck
  std::string cond;
  int line;
  std::string method;
};

struct MethodSpec {
  std::string name;
  std::map<std::string, std::string> clauses;  // annotation -> code
};

struct ParsedSpec {
  std::string state_decl;
  std::string initial;
  std::vector<std::pair<std::string, std::string>> admits;  // "m1 <-> m2", cond
  std::vector<MethodSpec> methods;
  std::vector<OrderingPoint> ops;
};

std::string trim(const std::string& s) {
  std::size_t a = s.find_first_not_of(" \t\r\n");
  if (a == std::string::npos) return "";
  std::size_t b = s.find_last_not_of(" \t\r\n");
  return s.substr(a, b - a + 1);
}

// Collects /** ... */ comment blocks with their end line numbers.
struct CommentBlock {
  std::string text;
  int begin_line;
  int end_line;
};

std::vector<CommentBlock> extract_comments(const std::string& src) {
  std::vector<CommentBlock> out;
  int line = 1;
  for (std::size_t i = 0; i + 1 < src.size(); ++i) {
    if (src[i] == '\n') ++line;
    if (src[i] == '/' && src[i + 1] == '*') {
      std::size_t end = src.find("*/", i + 2);
      if (end == std::string::npos) break;
      CommentBlock b;
      b.begin_line = line;
      b.text = src.substr(i + 2, end - i - 2);
      for (char c : b.text) {
        if (c == '\n') ++line;
      }
      b.end_line = line;
      out.push_back(std::move(b));
      i = end + 1;
    }
  }
  return out;
}

// The function name whose definition follows source position `line`
// (heuristic: next line containing an identifier followed by '(').
std::string find_following_function(const std::vector<std::string>& lines,
                                    int after_line) {
  for (std::size_t i = static_cast<std::size_t>(after_line);
       i < lines.size() && i < static_cast<std::size_t>(after_line) + 4; ++i) {
    const std::string& l = lines[i];
    std::size_t paren = l.find('(');
    while (paren != std::string::npos) {
      std::size_t e = paren;
      while (e > 0 && (std::isspace(static_cast<unsigned char>(l[e - 1])) != 0))
        --e;
      std::size_t b = e;
      while (b > 0 && (std::isalnum(static_cast<unsigned char>(l[b - 1])) != 0 ||
                       l[b - 1] == '_')) {
        --b;
      }
      if (b < e) return l.substr(b, e - b);
      paren = l.find('(', paren + 1);
    }
  }
  return "";
}

// The enclosing function for an ordering-point annotation (heuristic: the
// most recent method-level block's function).
ParsedSpec parse(const std::string& src) {
  ParsedSpec spec;
  std::vector<std::string> lines;
  {
    std::istringstream is(src);
    std::string l;
    while (std::getline(is, l)) lines.push_back(l);
  }

  std::string current_method;
  for (const CommentBlock& blk : extract_comments(src)) {
    // Split the block into @-sections.
    std::vector<std::pair<std::string, std::string>> sections;
    std::size_t pos = 0;
    while ((pos = blk.text.find('@', pos)) != std::string::npos) {
      std::size_t colon = blk.text.find(':', pos);
      std::size_t next = blk.text.find('@', pos + 1);
      if (colon == std::string::npos || (next != std::string::npos && colon > next)) {
        pos = next == std::string::npos ? blk.text.size() : next;
        continue;
      }
      std::string key = trim(blk.text.substr(pos + 1, colon - pos - 1));
      std::string body = trim(blk.text.substr(
          colon + 1, (next == std::string::npos ? blk.text.size() : next) - colon - 1));
      // Strip leading '*' decorations.
      std::string clean;
      std::istringstream bs(body);
      std::string bl;
      while (std::getline(bs, bl)) {
        bl = trim(bl);
        if (!bl.empty() && bl[0] == '*') bl = trim(bl.substr(1));
        if (!clean.empty()) clean += '\n';
        clean += bl;
      }
      sections.emplace_back(key, clean);
      pos = next == std::string::npos ? blk.text.size() : next;
    }
    if (sections.empty()) continue;

    bool is_method_block = false;
    for (auto& [key, body] : sections) {
      if (key == "DeclareState") {
        spec.state_decl = body;
      } else if (key == "Initial") {
        spec.initial = body;
      } else if (key == "Admit") {
        std::size_t p = body.find('(');
        std::string pair = trim(body.substr(0, p == std::string::npos ? body.size() : p));
        std::string cond = p == std::string::npos
                               ? "true"
                               : trim(body.substr(p + 1, body.rfind(')') - p - 1));
        spec.admits.emplace_back(pair, cond);
      } else if (key == "SideEffect" || key == "PreCondition" ||
                 key == "PostCondition" || key == "JustifyingPrecondition" ||
                 key == "JustifyingPostcondition") {
        is_method_block = true;
      } else if (key.rfind("OPDefine", 0) == 0 || key.rfind("OPClear", 0) == 0 ||
                 key.rfind("PotentialOP", 0) == 0 || key.rfind("OPCheck", 0) == 0) {
        OrderingPoint op;
        std::size_t p = key.find('(');
        op.kind = p == std::string::npos ? key : key.substr(0, p);
        if (p != std::string::npos) {
          op.label = key.substr(p + 1, key.find(')') - p - 1);
        }
        op.cond = body.empty() ? "true" : body;
        op.line = blk.end_line;
        op.method = current_method;
        spec.ops.push_back(std::move(op));
      }
    }

    if (is_method_block) {
      std::string fn = find_following_function(lines, blk.end_line);
      if (!fn.empty()) {
        current_method = fn;
        MethodSpec ms;
        ms.name = fn;
        for (auto& [key, body] : sections) ms.clauses[key] = body;
        spec.methods.push_back(std::move(ms));
      }
    }
  }
  return spec;
}

std::string emit(const ParsedSpec& spec, const std::string& unit_name) {
  std::ostringstream os;
  os << "// Generated by specc — do not edit.\n"
     << "// Registration skeleton for the specification extracted from "
     << unit_name << ".\n"
     << "#include \"cdsspec.h\"\n\n"
     << "namespace {\n\n"
     << "// @DeclareState: " << (spec.state_decl.empty() ? "(none)" : spec.state_decl)
     << "\nconst cds::spec::Specification& generated_spec() {\n"
     << "  static cds::spec::Specification* s = [] {\n"
     << "    auto* sp = new cds::spec::Specification(\"" << unit_name << "\");\n";
  if (!spec.state_decl.empty()) {
    os << "    sp->state<GeneratedState>();  // from: " << spec.state_decl << "\n";
  }
  for (const MethodSpec& m : spec.methods) {
    os << "    sp->method(\"" << m.name << "\")";
    for (const auto& [key, body] : m.clauses) {
      std::string hook;
      if (key == "SideEffect") hook = "side_effect";
      else if (key == "PreCondition") hook = "pre";
      else if (key == "PostCondition") hook = "post";
      else if (key == "JustifyingPrecondition") hook = "justifying_pre";
      else if (key == "JustifyingPostcondition") hook = "justifying_post";
      else continue;
      std::string one_line = body;
      for (char& c : one_line) {
        if (c == '\n') c = ' ';
      }
      os << "\n        ." << hook << "([](cds::spec::Ctx& c) { " << one_line
         << " })";
    }
    os << ";\n";
  }
  for (const auto& [pair, cond] : spec.admits) {
    std::string m1 = trim(pair.substr(0, pair.find("<->")));
    std::string m2 = trim(pair.substr(pair.find("<->") + 3));
    os << "    sp->admit(\"" << m1 << "\", \"" << m2
       << "\", [](const cds::spec::CallRecord& M1, const cds::spec::CallRecord& "
          "M2) { return "
       << cond << "; });\n";
  }
  os << "    return sp;\n  }();\n  return *s;\n}\n\n}  // namespace\n\n";

  os << "// Instrumentation plan (ordering-point annotations -> runtime calls):\n";
  for (const OrderingPoint& op : spec.ops) {
    os << "//   line " << op.line << " [" << (op.method.empty() ? "?" : op.method)
       << "]: ";
    if (op.kind == "OPDefine") os << "m.op_define()";
    else if (op.kind == "OPClearDefine") os << "m.op_clear_define()";
    else if (op.kind == "OPClear") os << "m.op_clear()";
    else if (op.kind == "PotentialOP") os << "m.potential_op(" << op.label << ")";
    else if (op.kind == "OPCheck") os << "m.op_check(" << op.label << ")";
    if (op.cond != "true") os << " when (" << op.cond << ")";
    os << "\n";
  }
  return os.str();
}

}  // namespace cds::specc

#endif  // CDS_TOOLS_SPECC_LIB_H
