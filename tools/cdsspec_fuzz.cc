// cdsspec-fuzz — differential-oracle self-validation of the exploration
// engine (the correctness-tooling layer: the checker checking itself).
//
//   cdsspec-fuzz --trials N [--seed S] [--timeout SECS] [--out DIR] [--json]
//                [--jobs N] [--metrics-out FILE] [--explore schedule|rf]
//   cdsspec-fuzz --replay FILE...        re-check repro/corpus programs
//   cdsspec-fuzz --replay-dir DIR        re-check every *.litmus in DIR
//
// Cross-backend / external adjudication (both compose with either mode):
//   --cross-backend [--stress-iters N]   also run each program on the
//       stress backend (real threads, seeded preemption) and require its
//       observed behaviors to be a subset of the DFS set; a stress-only
//       behavior is a disagreement and writes a .litmus + stress .trail
//       pair to --out.
//   --herd-out DIR   export each checked program as a herd7 C-litmus test
//       plus a .expected file holding our exhaustive behavior set, for
//       tools/herd_adjudicate to compare against herd7's verdict.
//
// Each trial generates a seeded random litmus program and cross-checks the
// engine's behavior set three ways (see src/fuzz/oracle.h): brute-force
// interleavings on the seq_cst fragment, metamorphic memory-order
// monotonicity, and DFS-vs-sampling containment. Any disagreement is
// auto-minimized and written to --out as a self-contained .litmus repro.
//
// Exit codes: 0 all oracles agreed, 1 disagreement found (repro written),
//             2 usage error.
//
// --unsound-hook {sc-floor|sleep-wake} arms a deliberately broken engine
// variant (test-only): the run must then FIND disagreements; used by the
// self-validation tests to prove the oracles have teeth.
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <dirent.h>

#include "fuzz/generator.h"
#include "fuzz/herd_export.h"
#include "harness/stress_backend.h"
#include "fuzz/minimize.h"
#include "fuzz/oracle.h"
#include "fuzz/program.h"
#include "mc/trace.h"
#include "obs/metrics.h"
#include "support/rng.h"

namespace {

constexpr int kExitAgreed = 0;
constexpr int kExitDisagreed = 1;
constexpr int kExitUsage = 2;

void usage() {
  std::printf(
      "usage: cdsspec-fuzz --trials N [--seed S] [--timeout SECS]\n"
      "                    [--out DIR] [--json] [--unsound-hook NAME]\n"
      "                    [--jobs N] [--metrics-out FILE]\n"
      "                    [--explore schedule|rf]\n"
      "                    [--cross-backend] [--stress-iters N]\n"
      "                    [--herd-out DIR]\n"
      "       cdsspec-fuzz --replay FILE... / --replay-dir DIR\n"
      "                    [--cross-backend] [--stress-iters N]\n"
      "                    [--herd-out DIR]\n"
      "unsound hooks (self-validation only): sc-floor, sleep-wake\n"
      "exit codes: 0 all oracles agreed, 1 disagreement found, 2 usage\n");
}

bool parse_u64(const char* s, std::uint64_t* out) {
  if (s == nullptr || *s == '\0' || *s == '-' || *s == '+') return false;
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_double(const char* s, double* out) {
  if (s == nullptr || *s == '\0' || *s == '-') return false;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(s, &end);
  if (errno != 0 || end == s || *end != '\0' || v < 0.0) return false;
  *out = v;
  return true;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

// Trial profiles alternate: even trials draw from the seq_cst-only pool
// (exact interleaving oracle), odd trials from the mixed-order pool
// (monotonicity + sampling oracles).
cds::fuzz::GenParams profile_for(std::uint64_t trial) {
  cds::fuzz::GenParams gp;
  if (trial % 2 == 0) {
    gp.sc_only = true;
    gp.max_threads = 3;
    gp.max_total_ops = 8;
  } else {
    gp.sc_only = false;
    gp.max_threads = 3;
    gp.max_total_ops = 8;
  }
  return gp;
}

struct Repro {
  std::uint64_t trial = 0;
  std::uint64_t seed = 0;
  cds::fuzz::OracleKind oracle{};
  std::string detail;
  cds::fuzz::Program program;  // minimized
  std::string path;            // where it was written ("" if write failed)
  std::string trail_path;      // witness .trail beside it ("" if none)
};

// .trail "test" field for a witness execution: "litmus" for the repro
// program itself, "litmus+t<T>.op<I>[.fail]" when the trail drives the
// variant with that one site strengthened (monotonicity witnesses).
std::string witness_test_name(const cds::fuzz::WitnessTrail& wt) {
  if (!wt.strengthened) return "litmus";
  std::string n = "litmus+t" + std::to_string(wt.site.thread) + ".op" +
                  std::to_string(wt.site.index);
  if (wt.site.failure_order) n += ".fail";
  return n;
}

// Inverse of witness_test_name: rewrites `p` into the program the trail
// was recorded against. False when the name is malformed or out of range
// for this program.
bool apply_witness_test_name(const std::string& name, cds::fuzz::Program* p) {
  if (name == "litmus") return true;
  if (name.rfind("litmus+t", 0) != 0) return false;
  std::string rest = name.substr(8);
  std::size_t dot = rest.find(".op");
  if (dot == std::string::npos) return false;
  cds::fuzz::StrengthenSite site;
  site.failure_order = false;
  std::string idx = rest.substr(dot + 3);
  if (idx.size() > 5 && idx.substr(idx.size() - 5) == ".fail") {
    site.failure_order = true;
    idx = idx.substr(0, idx.size() - 5);
  }
  std::uint64_t t = 0, i = 0;
  if (!parse_u64(rest.substr(0, dot).c_str(), &t) ||
      !parse_u64(idx.c_str(), &i)) {
    return false;
  }
  site.thread = static_cast<int>(t);
  site.index = static_cast<int>(i);
  if (site.thread >= p->threads() ||
      i >= p->ops[static_cast<std::size_t>(site.thread)].size()) {
    return false;
  }
  *p = cds::fuzz::strengthen_at(*p, site);
  return true;
}

// Re-runs the oracles on a candidate and reports whether the disagreement
// of the same kind persists (the minimizer's predicate).
bool reproduces(const cds::fuzz::Program& cand, cds::fuzz::OracleKind kind,
                const cds::fuzz::OracleConfig& cfg) {
  std::string why;
  if (cand.total_ops() == 0 || !cand.validate(&why)) return false;
  auto res = cds::fuzz::check_program(cand, cfg);
  for (const auto& d : res.disagreements) {
    if (d.oracle == kind) return true;
  }
  return false;
}

std::string write_repro(const std::string& out_dir, const Repro& r) {
  std::ostringstream name;
  name << out_dir << "/repro-" << cds::fuzz::to_string(r.oracle) << "-seed"
       << r.seed << ".litmus";
  std::ofstream f(name.str());
  if (!f) return "";
  f << "# cdsspec-fuzz minimized repro\n";
  f << "# oracle: " << cds::fuzz::to_string(r.oracle) << "\n";
  f << "# detail: ";
  for (char c : r.detail) f << (c == '\n' ? ' ' : c);
  f << "\n";
  f << "# trial " << r.trial << " seed " << r.seed << "\n";
  f << r.program.to_string();
  return f ? name.str() : "";
}

// Cross-backend / herd-export settings shared by trial and replay modes.
struct ExtraChecks {
  bool cross_backend = false;
  std::uint64_t stress_iters = 64;
  std::string herd_out;  // "" = no export
  std::string out_dir = ".";
};

// "path/to/mp_relacq.litmus" -> "mp_relacq" (herd test / artifact name).
std::string stem_of(const std::string& path) {
  std::size_t slash = path.find_last_of('/');
  std::string n = slash == std::string::npos ? path : path.substr(slash + 1);
  if (n.size() > 7 && n.substr(n.size() - 7) == ".litmus") {
    n = n.substr(0, n.size() - 7);
  }
  return n;
}

// Exports `p` for herd7 adjudication. Skips (with a note) when the DFS hit
// a cap before exhausting: a partial .expected would claim behaviors are
// forbidden that we merely did not finish enumerating.
void herd_export_one(const cds::fuzz::Program& p,
                     const cds::fuzz::OracleConfig& cfg,
                     const std::string& name, const std::string& dir) {
  auto mb = cds::fuzz::mc_behaviors(p, cfg);
  if (!mb.exhausted) {
    std::fprintf(stderr,
                 "cdsspec-fuzz: --herd-out: %s: DFS hit a cap before "
                 "exhausting; not exported\n",
                 name.c_str());
    return;
  }
  std::string err;
  if (!cds::fuzz::write_herd_files(p, name, mb.behaviors, dir, &err)) {
    std::fprintf(stderr, "cdsspec-fuzz: --herd-out: %s: %s\n", name.c_str(),
                 err.c_str());
    return;
  }
  std::printf("herd-out: %s/%s.litmus + .expected (%zu states)\n",
              dir.c_str(), name.c_str(), mb.behaviors.size());
}

// Best-effort stress witness: re-runs the single-runner iteration seed
// stream until `behavior` shows up again, capturing that iteration's seed
// and preemption decision trail. May fail — the hardware schedule is not
// replayable — in which case the caller records the root seed only.
bool find_stress_witness(const cds::fuzz::Program& p, std::uint64_t iters,
                         std::uint64_t seed, const std::string& behavior,
                         std::uint64_t* iter_seed,
                         std::vector<cds::mc::Choice>* decisions) {
  std::vector<std::uint64_t> obs;
  cds::mc::TestFn test = p.test_fn(&obs);
  cds::harness::StressOptions o;
  o.check_spec = false;
  cds::harness::StressBackend be(o);
  for (std::uint64_t it = 0; it < iters; ++it) {
    std::uint64_t s = cds::support::derive_seed(seed, it);
    be.run_iteration(test, s);
    std::vector<std::uint64_t> finals;
    for (int l = 0; l < p.locations; ++l) {
      finals.push_back(be.location_final_value(static_cast<std::uint32_t>(l)));
    }
    if (cds::fuzz::behavior_string(obs, finals) == behavior) {
      *iter_seed = s;
      *decisions = be.decision_trail();
      return true;
    }
  }
  return false;
}

// Stress-vs-DFS containment. True when stress observed a behavior the
// exhaustive DFS never enumerated — one of the two backends is wrong.
// Writes a replayable .litmus + stress .trail pair to ex.out_dir.
bool cross_backend_disagrees(const cds::fuzz::Program& p,
                             const cds::fuzz::OracleConfig& cfg,
                             const ExtraChecks& ex, const std::string& name,
                             std::string* detail) {
  auto mb = cds::fuzz::mc_behaviors(p, cfg);
  if (!mb.exhausted) {
    std::fprintf(stderr,
                 "cdsspec-fuzz: %s: cross-backend check skipped (DFS not "
                 "exhausted, containment undecidable)\n",
                 name.c_str());
    return false;
  }
  auto sb = cds::fuzz::stress_behaviors(p, ex.stress_iters,
                                        /*threads_mult=*/2, cfg.seed);
  std::vector<std::string> extra;
  for (const std::string& b : sb) {
    if (mb.behaviors.count(b) == 0) extra.push_back(b);
  }
  if (extra.empty()) return false;
  *detail = "stress observed " + std::to_string(extra.size()) +
            " behavior(s) outside the model set of " +
            std::to_string(mb.behaviors.size()) + "; first: " + extra.front();

  const std::string base = ex.out_dir + "/cross-" + name;
  std::ofstream f(base + ".litmus");
  if (f) {
    f << "# cdsspec-fuzz cross-backend disagreement\n";
    f << "# stress-only behavior: " << extra.front() << "\n";
    f << p.to_string();
  }
  cds::mc::TrailFile tf;
  tf.backend = "stress";
  tf.test_name = "litmus";
  tf.kind = "cross-backend";
  tf.detail = extra.front();
  tf.seed = cfg.seed;
  std::uint64_t iseed = 0;
  std::vector<cds::mc::Choice> dec;
  if (find_stress_witness(p, ex.stress_iters, cfg.seed, extra.front(),
                          &iseed, &dec)) {
    tf.seed = iseed;
    tf.choices = std::move(dec);
  }
  std::string terr;
  if (!cds::mc::write_trail_file(base + ".trail", tf, &terr)) {
    std::fprintf(stderr, "cdsspec-fuzz: cannot write '%s.trail': %s\n",
                 base.c_str(), terr.c_str());
  }
  return true;
}

int replay_files(const std::vector<std::string>& files,
                 const cds::fuzz::OracleConfig& cfg, bool json,
                 const ExtraChecks& ex) {
  int disagreed = 0, failed = 0;
  for (const std::string& path : files) {
    std::ifstream f(path);
    if (!f) {
      std::fprintf(stderr, "cdsspec-fuzz: cannot open '%s'\n", path.c_str());
      ++failed;
      continue;
    }
    std::ostringstream buf;
    buf << f.rdbuf();
    cds::fuzz::Program p;
    std::string err;
    if (!cds::fuzz::Program::parse(buf.str(), &p, &err)) {
      std::fprintf(stderr, "cdsspec-fuzz: %s: parse error: %s\n", path.c_str(),
                   err.c_str());
      ++failed;
      continue;
    }
    if (!ex.herd_out.empty()) {
      herd_export_one(p, cfg, stem_of(path), ex.herd_out);
    }
    if (ex.cross_backend) {
      std::string detail;
      if (cross_backend_disagrees(p, cfg, ex, stem_of(path), &detail)) {
        ++disagreed;
        std::printf("%s: DISAGREEMENT [cross-backend] %s\n", path.c_str(),
                    detail.c_str());
      }
    }
    // Trail fast-path: a witness .trail beside the .litmus replays the one
    // recorded offending execution deterministically. Divergence or a
    // changed behavior (the engine moved since the recording) falls back
    // to the authoritative full oracle re-run below.
    if (path.size() > 7 && path.substr(path.size() - 7) == ".litmus") {
      std::string tpath = path.substr(0, path.size() - 7) + ".trail";
      cds::mc::TrailFile tf;
      std::string terr;
      if (std::ifstream(tpath).good()) {
        if (!cds::mc::load_trail_file(tpath, &tf, &terr)) {
          std::fprintf(stderr,
                       "cdsspec-fuzz: %s; re-running full oracles\n",
                       terr.c_str());
        } else if (!tf.backend.empty()) {
          // Stress trails replay probabilistically (cdsspec-run
          // --replay-trail); only model trails drive the deterministic
          // fast-path.
          std::fprintf(stderr,
                       "cdsspec-fuzz: %s: '%s' trail is not a model-checker "
                       "witness; re-running full oracles\n",
                       tpath.c_str(), tf.backend.c_str());
        } else {
          cds::fuzz::Program wp = p;
          if (!apply_witness_test_name(tf.test_name, &wp)) {
            std::fprintf(stderr,
                         "cdsspec-fuzz: %s: witness test '%s' does not fit "
                         "this program; re-running full oracles\n",
                         tpath.c_str(), tf.test_name.c_str());
          } else {
            cds::fuzz::OracleConfig rcfg = cfg;
            rcfg.seed = tf.seed;
            rcfg.stale_read_bound = tf.stale_read_bound;
            rcfg.max_steps = tf.max_steps;
            std::string behavior, rerr;
            if (!cds::fuzz::replay_behavior(wp, rcfg, tf.choices, &behavior,
                                            &rerr)) {
              std::fprintf(stderr,
                           "cdsspec-fuzz: %s: trail replay diverged (%s); "
                           "re-running full oracles\n",
                           tpath.c_str(), rerr.c_str());
            } else if (behavior != tf.detail) {
              std::fprintf(stderr,
                           "cdsspec-fuzz: %s: witness behavior changed "
                           "(recorded %s, replayed %s); re-running full "
                           "oracles\n",
                           tpath.c_str(), tf.detail.c_str(), behavior.c_str());
            } else {
              ++disagreed;
              std::printf("%s: witness reproduced via trail [%s]: %s "
                          "(%zu choices)\n",
                          path.c_str(), tf.kind.c_str(), behavior.c_str(),
                          tf.choices.size());
              continue;
            }
          }
        }
      }
    }
    auto res = cds::fuzz::check_program(p, cfg);
    if (res.skipped) {
      std::fprintf(stderr, "cdsspec-fuzz: %s: skipped: %s\n", path.c_str(),
                   res.skip_reason.c_str());
      ++failed;
      continue;
    }
    if (!res.disagreements.empty()) {
      ++disagreed;
      for (const auto& d : res.disagreements) {
        std::printf("%s: DISAGREEMENT [%s] %s\n", path.c_str(),
                    to_string(d.oracle), d.detail.c_str());
      }
    } else if (!json) {
      std::printf("%s: ok (%d oracle checks)\n", path.c_str(),
                  res.oracles_run);
    }
  }
  if (failed > 0) return kExitUsage;
  return disagreed > 0 ? kExitDisagreed : kExitAgreed;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t trials = 0;
  std::uint64_t base_seed = 1;
  double timeout = 0.0;
  bool json = false;
  std::string out_dir = ".";
  std::string metrics_out;
  cds::fuzz::OracleConfig cfg;
  ExtraChecks ex;
  std::vector<std::string> replay;

  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "cdsspec-fuzz: %s requires a value\n", flag);
        usage();
        std::exit(kExitUsage);
      }
      return argv[++i];
    };
    if (a == "--trials") {
      if (!parse_u64(value("--trials"), &trials)) return kExitUsage;
    } else if (a == "--seed") {
      if (!parse_u64(value("--seed"), &base_seed)) return kExitUsage;
    } else if (a == "--timeout") {
      if (!parse_double(value("--timeout"), &timeout)) return kExitUsage;
    } else if (a == "--jobs") {
      std::uint64_t j = 0;
      if (!parse_u64(value("--jobs"), &j) || j == 0 || j > 256) {
        std::fprintf(stderr, "cdsspec-fuzz: --jobs must be in 1..256\n");
        return kExitUsage;
      }
      cfg.jobs = static_cast<int>(j);
    } else if (a == "--out") {
      out_dir = value("--out");
    } else if (a == "--metrics-out") {
      metrics_out = value("--metrics-out");
    } else if (a == "--json") {
      json = true;
    } else if (a == "--cross-backend") {
      ex.cross_backend = true;
    } else if (a == "--stress-iters") {
      if (!parse_u64(value("--stress-iters"), &ex.stress_iters) ||
          ex.stress_iters == 0) {
        std::fprintf(stderr,
                     "cdsspec-fuzz: --stress-iters must be positive\n");
        return kExitUsage;
      }
    } else if (a == "--herd-out") {
      ex.herd_out = value("--herd-out");
    } else if (a == "--explore") {
      // Runs every oracle with the engine in the given exploration mode;
      // `rf` makes the whole differential campaign exercise the rf-class
      // enumerator against the brute-force / monotonicity / sampling
      // oracles (the CI equality job runs both modes on the same seeds).
      std::string mode = value("--explore");
      if (mode == "schedule") {
        cfg.explore = cds::mc::ExploreMode::kSchedule;
      } else if (mode == "rf") {
        cfg.explore = cds::mc::ExploreMode::kRf;
      } else {
        std::fprintf(stderr,
                     "cdsspec-fuzz: --explore must be 'schedule' or 'rf', "
                     "not '%s'\n",
                     mode.c_str());
        return kExitUsage;
      }
    } else if (a == "--unsound-hook") {
      std::string h = value("--unsound-hook");
      if (h == "sc-floor") {
        cfg.unsound_hook = cds::mc::UnsoundHook::kScLoadIgnoresFloor;
      } else if (h == "sleep-wake") {
        cfg.unsound_hook = cds::mc::UnsoundHook::kSleepSetNeverWakes;
      } else {
        std::fprintf(stderr, "cdsspec-fuzz: unknown hook '%s'\n", h.c_str());
        return kExitUsage;
      }
    } else if (a == "--replay") {
      while (i + 1 < argc && argv[i + 1][0] != '-') replay.push_back(argv[++i]);
      if (replay.empty()) {
        std::fprintf(stderr, "cdsspec-fuzz: --replay wants files\n");
        return kExitUsage;
      }
    } else if (a == "--replay-dir") {
      std::string dir = value("--replay-dir");
      DIR* d = opendir(dir.c_str());
      if (d == nullptr) {
        std::fprintf(stderr, "cdsspec-fuzz: cannot open dir '%s'\n",
                     dir.c_str());
        return kExitUsage;
      }
      while (dirent* ent = readdir(d)) {
        std::string n = ent->d_name;
        if (n.size() > 7 && n.substr(n.size() - 7) == ".litmus") {
          replay.push_back(dir + "/" + n);
        }
      }
      closedir(d);
      if (replay.empty()) {
        std::fprintf(stderr, "cdsspec-fuzz: no .litmus files in '%s'\n",
                     dir.c_str());
        return kExitUsage;
      }
    } else {
      std::fprintf(stderr, "cdsspec-fuzz: unknown flag '%s'\n", a.c_str());
      usage();
      return kExitUsage;
    }
  }

  ex.out_dir = out_dir;
  if (!replay.empty()) {
    // Deterministic order regardless of directory enumeration order.
    std::sort(replay.begin(), replay.end());
    return replay_files(replay, cfg, json, ex);
  }
  if (trials == 0) {
    usage();
    return kExitUsage;
  }

  auto t0 = std::chrono::steady_clock::now();
  auto elapsed = [&t0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };

  std::uint64_t done = 0, skipped = 0, checks = 0;
  std::uint64_t cross_disagreed = 0;
  bool timed_out = false;
  std::vector<Repro> repros;
  for (std::uint64_t trial = 0; trial < trials; ++trial) {
    if (timeout > 0.0 && elapsed() >= timeout) {
      timed_out = true;
      break;
    }
    // Per-trial seeds derive from the base seed alone, so one number
    // reproduces the campaign and text/JSON modes see identical streams.
    std::uint64_t seed = cds::fuzz::trial_seed(base_seed, trial);
    cds::fuzz::OracleConfig tcfg = cfg;
    tcfg.seed = seed;
    cds::fuzz::Program p = cds::fuzz::generate(profile_for(trial), seed);
    auto res = cds::fuzz::check_program(p, tcfg);
    ++done;
    checks += static_cast<std::uint64_t>(res.oracles_run);
    if (res.skipped) {
      ++skipped;
      continue;
    }
    const std::string trial_name = "seed" + std::to_string(seed);
    if (!ex.herd_out.empty()) {
      herd_export_one(p, tcfg, trial_name, ex.herd_out);
    }
    if (ex.cross_backend) {
      std::string detail;
      if (cross_backend_disagrees(p, tcfg, ex, trial_name, &detail)) {
        ++cross_disagreed;
        ++checks;
        if (!json) {
          std::printf("trial %llu seed %llu: DISAGREEMENT [cross-backend]\n"
                      "  %s\n",
                      static_cast<unsigned long long>(trial),
                      static_cast<unsigned long long>(seed), detail.c_str());
        }
      } else {
        ++checks;
      }
    }
    for (const auto& d : res.disagreements) {
      Repro r;
      r.trial = trial;
      r.seed = seed;
      r.oracle = d.oracle;
      r.detail = d.detail;
      // Minimize the base program while the same oracle kind still fires.
      cds::fuzz::MinimizeStats ms;
      r.program = cds::fuzz::minimize(
          p, [&](const cds::fuzz::Program& c) {
            return reproduces(c, d.oracle, tcfg);
          },
          &ms);
      r.path = write_repro(out_dir, r);
      // Pin the disagreement down to one replayable execution: a .trail
      // beside the .litmus lets --replay confirm the witness in a single
      // deterministic run instead of a full oracle sweep.
      if (!r.path.empty()) {
        cds::fuzz::WitnessTrail wt;
        if (cds::fuzz::witness_trail(r.program, tcfg, d.oracle, &wt)) {
          cds::mc::TrailFile tf;
          tf.test_name = witness_test_name(wt);
          tf.seed = tcfg.seed;
          tf.stale_read_bound = tcfg.stale_read_bound;
          tf.max_steps = tcfg.max_steps;
          tf.kind = cds::fuzz::to_string(d.oracle);
          tf.detail = wt.behavior;
          tf.choices = wt.choices;
          std::string tpath = r.path.substr(0, r.path.size() - 7) + ".trail";
          std::string terr;
          if (cds::mc::write_trail_file(tpath, tf, &terr)) {
            r.trail_path = tpath;
          } else {
            std::fprintf(stderr, "cdsspec-fuzz: cannot write '%s': %s\n",
                         tpath.c_str(), terr.c_str());
          }
        }
      }
      if (!json) {
        std::printf("trial %llu seed %llu: DISAGREEMENT [%s]\n  %s\n"
                    "  minimized to %d ops (%d probes)%s%s%s%s\n",
                    static_cast<unsigned long long>(trial),
                    static_cast<unsigned long long>(seed),
                    to_string(d.oracle), d.detail.c_str(),
                    r.program.total_ops(), ms.probes,
                    r.path.empty() ? "" : ", repro: ", r.path.c_str(),
                    r.trail_path.empty() ? "" : ", trail: ",
                    r.trail_path.c_str());
      }
      repros.push_back(std::move(r));
    }
  }

  if (json) {
    std::printf("{\n");
    std::printf("  \"seed\": %llu,\n",
                static_cast<unsigned long long>(base_seed));
    std::printf("  \"trials_requested\": %llu,\n",
                static_cast<unsigned long long>(trials));
    std::printf("  \"trials_completed\": %llu,\n",
                static_cast<unsigned long long>(done));
    std::printf("  \"trials_skipped\": %llu,\n",
                static_cast<unsigned long long>(skipped));
    std::printf("  \"oracle_checks\": %llu,\n",
                static_cast<unsigned long long>(checks));
    std::printf("  \"cross_backend_disagreements\": %llu,\n",
                static_cast<unsigned long long>(cross_disagreed));
    std::printf("  \"timed_out\": %s,\n", timed_out ? "true" : "false");
    std::printf("  \"seconds\": %.2f,\n", elapsed());
    std::printf("  \"disagreements\": [\n");
    for (std::size_t i = 0; i < repros.size(); ++i) {
      const Repro& r = repros[i];
      std::printf(
          "    {\"trial\": %llu, \"seed\": %llu, \"oracle\": \"%s\", "
          "\"ops\": %d, \"repro\": \"%s\", \"trail\": \"%s\", "
          "\"detail\": \"%s\"}%s\n",
          static_cast<unsigned long long>(r.trial),
          static_cast<unsigned long long>(r.seed),
          to_string(r.oracle), r.program.total_ops(),
          json_escape(r.path).c_str(), json_escape(r.trail_path).c_str(),
          json_escape(r.detail).c_str(), i + 1 < repros.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
  } else {
    std::printf(
        "%llu/%llu trials (%llu skipped), %llu oracle checks, "
        "%zu disagreements (%llu cross-backend)%s in %.1fs (seed %llu)\n",
        static_cast<unsigned long long>(done),
        static_cast<unsigned long long>(trials),
        static_cast<unsigned long long>(skipped),
        static_cast<unsigned long long>(checks),
        repros.size() + static_cast<std::size_t>(cross_disagreed),
        static_cast<unsigned long long>(cross_disagreed),
        timed_out ? " (timeout)" : "", elapsed(),
        static_cast<unsigned long long>(base_seed));
  }
  if (!metrics_out.empty()) {
    cds::obs::Registry m;
    m.counter("fuzz.trials").add(done);
    m.counter("fuzz.trials_skipped").add(skipped);
    m.counter("fuzz.oracle_checks").add(checks);
    m.counter("fuzz.disagreements").add(repros.size());
    m.counter("fuzz.cross_backend_disagreements").add(cross_disagreed);
    m.gauge("fuzz.timed_out").set(timed_out ? 1 : 0);
    m.timer("fuzz.campaign").add_ns(
        static_cast<std::uint64_t>(elapsed() * 1e9));
    std::string err;
    if (!cds::mc::write_text_file_atomic(metrics_out, m.to_json(), &err)) {
      std::fprintf(stderr, "cdsspec-fuzz: cannot write '%s': %s\n",
                   metrics_out.c_str(), err.c_str());
    }
  }
  return (repros.empty() && cross_disagreed == 0) ? kExitAgreed
                                                  : kExitDisagreed;
}
