// cdsspec-fuzz — differential-oracle self-validation of the exploration
// engine (the correctness-tooling layer: the checker checking itself).
//
//   cdsspec-fuzz --trials N [--seed S] [--timeout SECS] [--out DIR] [--json]
//   cdsspec-fuzz --replay FILE...        re-check repro/corpus programs
//   cdsspec-fuzz --replay-dir DIR        re-check every *.litmus in DIR
//
// Each trial generates a seeded random litmus program and cross-checks the
// engine's behavior set three ways (see src/fuzz/oracle.h): brute-force
// interleavings on the seq_cst fragment, metamorphic memory-order
// monotonicity, and DFS-vs-sampling containment. Any disagreement is
// auto-minimized and written to --out as a self-contained .litmus repro.
//
// Exit codes: 0 all oracles agreed, 1 disagreement found (repro written),
//             2 usage error.
//
// --unsound-hook {sc-floor|sleep-wake} arms a deliberately broken engine
// variant (test-only): the run must then FIND disagreements; used by the
// self-validation tests to prove the oracles have teeth.
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <dirent.h>

#include "fuzz/generator.h"
#include "fuzz/minimize.h"
#include "fuzz/oracle.h"
#include "fuzz/program.h"
#include "support/rng.h"

namespace {

constexpr int kExitAgreed = 0;
constexpr int kExitDisagreed = 1;
constexpr int kExitUsage = 2;

void usage() {
  std::printf(
      "usage: cdsspec-fuzz --trials N [--seed S] [--timeout SECS]\n"
      "                    [--out DIR] [--json] [--unsound-hook NAME]\n"
      "       cdsspec-fuzz --replay FILE...\n"
      "       cdsspec-fuzz --replay-dir DIR\n"
      "unsound hooks (self-validation only): sc-floor, sleep-wake\n"
      "exit codes: 0 all oracles agreed, 1 disagreement found, 2 usage\n");
}

bool parse_u64(const char* s, std::uint64_t* out) {
  if (s == nullptr || *s == '\0' || *s == '-' || *s == '+') return false;
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_double(const char* s, double* out) {
  if (s == nullptr || *s == '\0' || *s == '-') return false;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(s, &end);
  if (errno != 0 || end == s || *end != '\0' || v < 0.0) return false;
  *out = v;
  return true;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

// Trial profiles alternate: even trials draw from the seq_cst-only pool
// (exact interleaving oracle), odd trials from the mixed-order pool
// (monotonicity + sampling oracles).
cds::fuzz::GenParams profile_for(std::uint64_t trial) {
  cds::fuzz::GenParams gp;
  if (trial % 2 == 0) {
    gp.sc_only = true;
    gp.max_threads = 3;
    gp.max_total_ops = 8;
  } else {
    gp.sc_only = false;
    gp.max_threads = 3;
    gp.max_total_ops = 8;
  }
  return gp;
}

struct Repro {
  std::uint64_t trial = 0;
  std::uint64_t seed = 0;
  cds::fuzz::OracleKind oracle{};
  std::string detail;
  cds::fuzz::Program program;  // minimized
  std::string path;            // where it was written ("" if write failed)
};

// Re-runs the oracles on a candidate and reports whether the disagreement
// of the same kind persists (the minimizer's predicate).
bool reproduces(const cds::fuzz::Program& cand, cds::fuzz::OracleKind kind,
                const cds::fuzz::OracleConfig& cfg) {
  std::string why;
  if (cand.total_ops() == 0 || !cand.validate(&why)) return false;
  auto res = cds::fuzz::check_program(cand, cfg);
  for (const auto& d : res.disagreements) {
    if (d.oracle == kind) return true;
  }
  return false;
}

std::string write_repro(const std::string& out_dir, const Repro& r) {
  std::ostringstream name;
  name << out_dir << "/repro-" << cds::fuzz::to_string(r.oracle) << "-seed"
       << r.seed << ".litmus";
  std::ofstream f(name.str());
  if (!f) return "";
  f << "# cdsspec-fuzz minimized repro\n";
  f << "# oracle: " << cds::fuzz::to_string(r.oracle) << "\n";
  f << "# detail: ";
  for (char c : r.detail) f << (c == '\n' ? ' ' : c);
  f << "\n";
  f << "# trial " << r.trial << " seed " << r.seed << "\n";
  f << r.program.to_string();
  return f ? name.str() : "";
}

int replay_files(const std::vector<std::string>& files,
                 const cds::fuzz::OracleConfig& cfg, bool json) {
  int disagreed = 0, failed = 0;
  for (const std::string& path : files) {
    std::ifstream f(path);
    if (!f) {
      std::fprintf(stderr, "cdsspec-fuzz: cannot open '%s'\n", path.c_str());
      ++failed;
      continue;
    }
    std::ostringstream buf;
    buf << f.rdbuf();
    cds::fuzz::Program p;
    std::string err;
    if (!cds::fuzz::Program::parse(buf.str(), &p, &err)) {
      std::fprintf(stderr, "cdsspec-fuzz: %s: parse error: %s\n", path.c_str(),
                   err.c_str());
      ++failed;
      continue;
    }
    auto res = cds::fuzz::check_program(p, cfg);
    if (res.skipped) {
      std::fprintf(stderr, "cdsspec-fuzz: %s: skipped: %s\n", path.c_str(),
                   res.skip_reason.c_str());
      ++failed;
      continue;
    }
    if (!res.disagreements.empty()) {
      ++disagreed;
      for (const auto& d : res.disagreements) {
        std::printf("%s: DISAGREEMENT [%s] %s\n", path.c_str(),
                    to_string(d.oracle), d.detail.c_str());
      }
    } else if (!json) {
      std::printf("%s: ok (%d oracle checks)\n", path.c_str(),
                  res.oracles_run);
    }
  }
  if (failed > 0) return kExitUsage;
  return disagreed > 0 ? kExitDisagreed : kExitAgreed;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t trials = 0;
  std::uint64_t base_seed = 1;
  double timeout = 0.0;
  bool json = false;
  std::string out_dir = ".";
  cds::fuzz::OracleConfig cfg;
  std::vector<std::string> replay;

  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "cdsspec-fuzz: %s requires a value\n", flag);
        usage();
        std::exit(kExitUsage);
      }
      return argv[++i];
    };
    if (a == "--trials") {
      if (!parse_u64(value("--trials"), &trials)) return kExitUsage;
    } else if (a == "--seed") {
      if (!parse_u64(value("--seed"), &base_seed)) return kExitUsage;
    } else if (a == "--timeout") {
      if (!parse_double(value("--timeout"), &timeout)) return kExitUsage;
    } else if (a == "--out") {
      out_dir = value("--out");
    } else if (a == "--json") {
      json = true;
    } else if (a == "--unsound-hook") {
      std::string h = value("--unsound-hook");
      if (h == "sc-floor") {
        cfg.unsound_hook = cds::mc::UnsoundHook::kScLoadIgnoresFloor;
      } else if (h == "sleep-wake") {
        cfg.unsound_hook = cds::mc::UnsoundHook::kSleepSetNeverWakes;
      } else {
        std::fprintf(stderr, "cdsspec-fuzz: unknown hook '%s'\n", h.c_str());
        return kExitUsage;
      }
    } else if (a == "--replay") {
      while (i + 1 < argc && argv[i + 1][0] != '-') replay.push_back(argv[++i]);
      if (replay.empty()) {
        std::fprintf(stderr, "cdsspec-fuzz: --replay wants files\n");
        return kExitUsage;
      }
    } else if (a == "--replay-dir") {
      std::string dir = value("--replay-dir");
      DIR* d = opendir(dir.c_str());
      if (d == nullptr) {
        std::fprintf(stderr, "cdsspec-fuzz: cannot open dir '%s'\n",
                     dir.c_str());
        return kExitUsage;
      }
      while (dirent* ent = readdir(d)) {
        std::string n = ent->d_name;
        if (n.size() > 7 && n.substr(n.size() - 7) == ".litmus") {
          replay.push_back(dir + "/" + n);
        }
      }
      closedir(d);
      if (replay.empty()) {
        std::fprintf(stderr, "cdsspec-fuzz: no .litmus files in '%s'\n",
                     dir.c_str());
        return kExitUsage;
      }
    } else {
      std::fprintf(stderr, "cdsspec-fuzz: unknown flag '%s'\n", a.c_str());
      usage();
      return kExitUsage;
    }
  }

  if (!replay.empty()) {
    // Deterministic order regardless of directory enumeration order.
    std::sort(replay.begin(), replay.end());
    return replay_files(replay, cfg, json);
  }
  if (trials == 0) {
    usage();
    return kExitUsage;
  }

  auto t0 = std::chrono::steady_clock::now();
  auto elapsed = [&t0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };

  std::uint64_t done = 0, skipped = 0, checks = 0;
  bool timed_out = false;
  std::vector<Repro> repros;
  for (std::uint64_t trial = 0; trial < trials; ++trial) {
    if (timeout > 0.0 && elapsed() >= timeout) {
      timed_out = true;
      break;
    }
    // Per-trial seeds derive from the base seed alone, so one number
    // reproduces the campaign and text/JSON modes see identical streams.
    std::uint64_t seed = cds::fuzz::trial_seed(base_seed, trial);
    cds::fuzz::OracleConfig tcfg = cfg;
    tcfg.seed = seed;
    cds::fuzz::Program p = cds::fuzz::generate(profile_for(trial), seed);
    auto res = cds::fuzz::check_program(p, tcfg);
    ++done;
    checks += static_cast<std::uint64_t>(res.oracles_run);
    if (res.skipped) {
      ++skipped;
      continue;
    }
    for (const auto& d : res.disagreements) {
      Repro r;
      r.trial = trial;
      r.seed = seed;
      r.oracle = d.oracle;
      r.detail = d.detail;
      // Minimize the base program while the same oracle kind still fires.
      cds::fuzz::MinimizeStats ms;
      r.program = cds::fuzz::minimize(
          p, [&](const cds::fuzz::Program& c) {
            return reproduces(c, d.oracle, tcfg);
          },
          &ms);
      r.path = write_repro(out_dir, r);
      if (!json) {
        std::printf("trial %llu seed %llu: DISAGREEMENT [%s]\n  %s\n"
                    "  minimized to %d ops (%d probes)%s%s\n",
                    static_cast<unsigned long long>(trial),
                    static_cast<unsigned long long>(seed),
                    to_string(d.oracle), d.detail.c_str(),
                    r.program.total_ops(), ms.probes,
                    r.path.empty() ? "" : ", repro: ",
                    r.path.c_str());
      }
      repros.push_back(std::move(r));
    }
  }

  if (json) {
    std::printf("{\n");
    std::printf("  \"seed\": %llu,\n",
                static_cast<unsigned long long>(base_seed));
    std::printf("  \"trials_requested\": %llu,\n",
                static_cast<unsigned long long>(trials));
    std::printf("  \"trials_completed\": %llu,\n",
                static_cast<unsigned long long>(done));
    std::printf("  \"trials_skipped\": %llu,\n",
                static_cast<unsigned long long>(skipped));
    std::printf("  \"oracle_checks\": %llu,\n",
                static_cast<unsigned long long>(checks));
    std::printf("  \"timed_out\": %s,\n", timed_out ? "true" : "false");
    std::printf("  \"seconds\": %.2f,\n", elapsed());
    std::printf("  \"disagreements\": [\n");
    for (std::size_t i = 0; i < repros.size(); ++i) {
      const Repro& r = repros[i];
      std::printf(
          "    {\"trial\": %llu, \"seed\": %llu, \"oracle\": \"%s\", "
          "\"ops\": %d, \"repro\": \"%s\", \"detail\": \"%s\"}%s\n",
          static_cast<unsigned long long>(r.trial),
          static_cast<unsigned long long>(r.seed),
          to_string(r.oracle), r.program.total_ops(),
          json_escape(r.path).c_str(), json_escape(r.detail).c_str(),
          i + 1 < repros.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
  } else {
    std::printf(
        "%llu/%llu trials (%llu skipped), %llu oracle checks, "
        "%zu disagreements%s in %.1fs (seed %llu)\n",
        static_cast<unsigned long long>(done),
        static_cast<unsigned long long>(trials),
        static_cast<unsigned long long>(skipped),
        static_cast<unsigned long long>(checks), repros.size(),
        timed_out ? " (timeout)" : "", elapsed(),
        static_cast<unsigned long long>(base_seed));
  }
  return repros.empty() ? kExitAgreed : kExitDisagreed;
}
