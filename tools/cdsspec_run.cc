// cdsspec-run — command-line driver over the benchmark registry.
//
//   cdsspec-run --list
//   cdsspec-run <benchmark>                 run a benchmark's unit tests
//   cdsspec-run <benchmark> --inject <i>    weaken the i-th injectable site
//   cdsspec-run <benchmark> --sites         list the benchmark's sites
//   cdsspec-run <benchmark> --sweep         run the injection experiment
//
// Flags: --cap N (execution cap), --stale N (stale-read bound),
//        --no-sleep-sets, --stop-on-violation, --reports
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "ds/suite.h"
#include "harness/runner.h"
#include "inject/inject.h"
#include "spec/checker.h"
#include "spec/render.h"

namespace {

void usage() {
  std::printf(
      "usage: cdsspec-run --list\n"
      "       cdsspec-run <benchmark> [--inject I | --sites | --sweep]\n"
      "                   [--cap N] [--stale N] [--no-sleep-sets]\n"
      "                   [--stop-on-violation] [--reports] [--dot]\n");
}

void print_result(const cds::harness::RunResult& r, bool reports) {
  std::printf(
      "executions=%llu feasible=%llu pruned(livelock=%llu bound=%llu "
      "redundant=%llu)\n",
      static_cast<unsigned long long>(r.mc.executions),
      static_cast<unsigned long long>(r.mc.feasible),
      static_cast<unsigned long long>(r.mc.pruned_livelock),
      static_cast<unsigned long long>(r.mc.pruned_bound),
      static_cast<unsigned long long>(r.mc.pruned_redundant));
  std::printf(
      "histories=%llu justifications=%llu  violations: builtin=%s "
      "admissibility=%s assertion=%s (total %llu)\n",
      static_cast<unsigned long long>(r.spec.histories_checked),
      static_cast<unsigned long long>(r.spec.justification_checks),
      r.detected_builtin() ? "YES" : "no",
      r.detected_admissibility() ? "YES" : "no",
      r.detected_assertion() ? "YES" : "no",
      static_cast<unsigned long long>(r.mc.violations_total));
  std::printf("time=%.2fs%s\n", r.mc.seconds,
              r.mc.hit_execution_cap ? " (execution cap hit)" : "");
  if (reports) {
    for (const auto& rep : r.reports) std::printf("\n%s\n", rep.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  cds::ds::register_all_benchmarks();
  if (argc < 2) {
    usage();
    return 2;
  }

  std::string cmd = argv[1];
  if (cmd == "--list") {
    for (const auto& b : cds::harness::benchmarks()) {
      std::printf("%-22s %s (%zu unit tests, %zu injectable sites)\n",
                  b.name.c_str(), b.display.c_str(), b.tests.size(),
                  [&] {
                    std::size_t n = 0;
                    for (const auto& s : cds::inject::sites_for(b.name)) {
                      if (s.injectable()) ++n;
                    }
                    return n;
                  }());
    }
    return 0;
  }

  const auto* b = cds::harness::find_benchmark(cmd);
  if (b == nullptr) {
    std::fprintf(stderr, "unknown benchmark '%s' (try --list)\n", cmd.c_str());
    return 1;
  }

  cds::harness::RunOptions opts;
  bool sites = false, sweep = false, reports = false, dot = false;
  int inject_idx = -1;
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--sites") sites = true;
    else if (a == "--sweep") sweep = true;
    else if (a == "--reports") reports = true;
    else if (a == "--dot") dot = true;
    else if (a == "--no-sleep-sets") opts.engine.enable_sleep_sets = false;
    else if (a == "--stop-on-violation") opts.engine.stop_on_first_violation = true;
    else if (a == "--inject" && i + 1 < argc) inject_idx = std::atoi(argv[++i]);
    else if (a == "--cap" && i + 1 < argc)
      opts.engine.max_executions = std::strtoull(argv[++i], nullptr, 10);
    else if (a == "--stale" && i + 1 < argc)
      opts.engine.stale_read_bound = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    else {
      usage();
      return 2;
    }
  }

  if (sites) {
    int i = 0;
    for (const auto& s : cds::inject::sites_for(b->name)) {
      if (!s.injectable()) continue;
      std::printf("%2d  %-40s %s -> %s\n", i++, s.name.c_str(),
                  to_string(s.def), to_string(s.weakened()));
    }
    return 0;
  }

  if (sweep) {
    auto sum = cds::harness::run_injection_experiment(*b, opts);
    for (const auto& o : sum.outcomes) {
      std::printf("%-42s %-8s -> %s\n", o.site.name.c_str(),
                  to_string(o.site.def), cds::harness::to_string(o.how));
    }
    std::printf("detection rate: %.0f%% (%d/%d)\n", sum.detection_rate() * 100,
                sum.injections - sum.undetected, sum.injections);
    return 0;
  }

  if (inject_idx >= 0) {
    int i = 0;
    bool found = false;
    for (const auto& s : cds::inject::sites_for(b->name)) {
      if (!s.injectable()) continue;
      if (i++ == inject_idx) {
        std::printf("injecting: %s (%s -> %s)\n", s.name.c_str(),
                    to_string(s.def), to_string(s.weakened()));
        cds::inject::inject(s.id);
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "no injectable site #%d (try --sites)\n", inject_idx);
      return 1;
    }
  }

  if (dot) {
    // Run the first unit test once and render the last execution's call
    // graph (stop at the first violating execution when one exists, so
    // the rendered graph is the interesting one).
    cds::mc::Config cfg = opts.engine;
    cfg.stop_on_first_violation = true;
    cds::mc::Engine engine(cfg);
    cds::spec::SpecChecker checker(opts.checker);
    checker.attach(engine);
    (void)engine.explore(b->tests.front());
    std::printf("%s", cds::spec::render_dot(checker.recorder().calls()).c_str());
    checker.detach();
    cds::inject::clear_injection();
    return 0;
  }

  auto r = cds::harness::run_benchmark(*b, opts);
  cds::inject::clear_injection();
  print_result(r, reports);
  return r.mc.violations_total == 0 ? 0 : 3;
}
