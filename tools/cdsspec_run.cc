// cdsspec-run — command-line driver over the benchmark registry.
//
//   cdsspec-run --list
//   cdsspec-run <benchmark>                 run a benchmark's unit tests
//   cdsspec-run <benchmark> --inject <i>    weaken the i-th injectable site
//   cdsspec-run <benchmark> --sites         list the benchmark's sites
//   cdsspec-run <benchmark> --sweep         run the injection experiment
//
// Flags: --cap N (execution cap), --stale N (stale-read bound),
//        --timeout SECS (wall-clock budget; degrades to sampling),
//        --mem-cap MB (memory budget), --seed N (RNG seed),
//        --json (machine-readable results),
//        --no-sleep-sets, --stop-on-violation, --reports
//
// Exit codes: 0 verified-exhaustive, 1 violation found, 2 usage error,
//             3 inconclusive (budget/cap hit; sampled without a finding).
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "ds/suite.h"
#include "harness/runner.h"
#include "inject/inject.h"
#include "spec/checker.h"
#include "spec/render.h"
#include "support/rng.h"

namespace {

constexpr int kExitVerified = 0;
constexpr int kExitFalsified = 1;
constexpr int kExitUsage = 2;
constexpr int kExitInconclusive = 3;

void usage() {
  std::printf(
      "usage: cdsspec-run --list\n"
      "       cdsspec-run <benchmark> [--inject I | --sites | --sweep]\n"
      "                   [--cap N] [--stale N] [--timeout SECS] [--mem-cap MB]\n"
      "                   [--seed N] [--json] [--no-sleep-sets]\n"
      "                   [--stop-on-violation] [--reports] [--dot]\n"
      "exit codes: 0 verified-exhaustive, 1 violation found, 2 usage error,\n"
      "            3 inconclusive\n");
}

// Strict numeric parsing: the whole argument must be a non-negative
// number. Rejects the silent garbage atoi accepts ("-3", "2x", "").
bool parse_u64(const char* s, std::uint64_t* out) {
  if (s == nullptr || *s == '\0' || *s == '-' || *s == '+') return false;
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_double(const char* s, double* out) {
  if (s == nullptr || *s == '\0' || *s == '-') return false;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(s, &end);
  if (errno != 0 || end == s || *end != '\0' || v < 0.0) return false;
  *out = v;
  return true;
}

// Fetches the value of flag `name` at argv[i+1], parses it with `parse`,
// and advances i. Prints usage and returns false on any failure.
template <typename T>
bool flag_value(int argc, char** argv, int* i, const char* name, T* out,
                bool (*parse)(const char*, T*)) {
  if (*i + 1 >= argc) {
    std::fprintf(stderr, "cdsspec-run: %s requires a value\n", name);
    usage();
    return false;
  }
  ++*i;
  if (!parse(argv[*i], out)) {
    std::fprintf(stderr, "cdsspec-run: invalid value for %s: '%s'\n", name,
                 argv[*i]);
    usage();
    return false;
  }
  return true;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* bstr(bool b) { return b ? "true" : "false"; }

int exit_code_for(cds::mc::Verdict v) {
  switch (v) {
    case cds::mc::Verdict::kVerifiedExhaustive: return kExitVerified;
    case cds::mc::Verdict::kFalsified: return kExitFalsified;
    case cds::mc::Verdict::kInconclusive: return kExitInconclusive;
  }
  return kExitInconclusive;
}

void print_result(const cds::harness::RunResult& r, bool reports) {
  std::printf(
      "executions=%llu feasible=%llu sampled=%llu pruned(livelock=%llu "
      "bound=%llu redundant=%llu) engine-fatal=%llu\n",
      static_cast<unsigned long long>(r.mc.executions),
      static_cast<unsigned long long>(r.mc.feasible),
      static_cast<unsigned long long>(r.mc.sampled),
      static_cast<unsigned long long>(r.mc.pruned_livelock),
      static_cast<unsigned long long>(r.mc.pruned_bound),
      static_cast<unsigned long long>(r.mc.pruned_redundant),
      static_cast<unsigned long long>(r.mc.engine_fatal_execs));
  std::printf(
      "histories=%llu justifications=%llu  violations: builtin=%s "
      "admissibility=%s assertion=%s (total %llu)\n",
      static_cast<unsigned long long>(r.spec.histories_checked),
      static_cast<unsigned long long>(r.spec.justification_checks),
      r.detected_builtin() ? "YES" : "no",
      r.detected_admissibility() ? "YES" : "no",
      r.detected_assertion() ? "YES" : "no",
      static_cast<unsigned long long>(r.mc.violations_total));
  std::string limits;
  if (r.mc.hit_execution_cap) limits += " (execution cap hit)";
  if (r.mc.hit_time_budget) limits += " (time budget hit)";
  if (r.mc.hit_memory_budget) limits += " (memory budget hit)";
  if (r.mc.watchdog_fired) limits += " (watchdog: no-progress DFS)";
  std::printf("time=%.2fs seed=%llu%s\n", r.mc.seconds,
              static_cast<unsigned long long>(r.mc.seed), limits.c_str());
  std::printf("verdict=%s (max trail depth %llu%s)\n", to_string(r.verdict),
              static_cast<unsigned long long>(r.mc.max_trail_depth),
              r.mc.exhausted ? ", state space exhausted" : "");
  if (reports) {
    for (const auto& rep : r.reports) std::printf("\n%s\n", rep.c_str());
  }
}

void print_result_json(const std::string& benchmark,
                       const cds::harness::RunResult& r) {
  std::printf("{\n");
  std::printf("  \"benchmark\": \"%s\",\n", json_escape(benchmark).c_str());
  std::printf("  \"mode\": \"run\",\n");
  std::printf("  \"seed\": %llu,\n",
              static_cast<unsigned long long>(r.mc.seed));
  std::printf("  \"verdict\": \"%s\",\n", to_string(r.verdict));
  std::printf("  \"exit_code\": %d,\n", exit_code_for(r.verdict));
  std::printf("  \"coverage\": {\n");
  std::printf("    \"executions\": %llu,\n",
              static_cast<unsigned long long>(r.mc.executions));
  std::printf("    \"feasible\": %llu,\n",
              static_cast<unsigned long long>(r.mc.feasible));
  std::printf("    \"sampled\": %llu,\n",
              static_cast<unsigned long long>(r.mc.sampled));
  std::printf("    \"pruned_bound\": %llu,\n",
              static_cast<unsigned long long>(r.mc.pruned_bound));
  std::printf("    \"pruned_livelock\": %llu,\n",
              static_cast<unsigned long long>(r.mc.pruned_livelock));
  std::printf("    \"pruned_redundant\": %llu,\n",
              static_cast<unsigned long long>(r.mc.pruned_redundant));
  std::printf("    \"max_trail_depth\": %llu,\n",
              static_cast<unsigned long long>(r.mc.max_trail_depth));
  std::printf("    \"exhausted\": %s\n", bstr(r.mc.exhausted));
  std::printf("  },\n");
  std::printf("  \"budgets\": {\n");
  std::printf("    \"hit_execution_cap\": %s,\n", bstr(r.mc.hit_execution_cap));
  std::printf("    \"hit_time_budget\": %s,\n", bstr(r.mc.hit_time_budget));
  std::printf("    \"hit_memory_budget\": %s,\n", bstr(r.mc.hit_memory_budget));
  std::printf("    \"watchdog_fired\": %s\n", bstr(r.mc.watchdog_fired));
  std::printf("  },\n");
  std::printf("  \"detections\": {\n");
  std::printf("    \"builtin\": %s,\n", bstr(r.detected_builtin()));
  std::printf("    \"admissibility\": %s,\n", bstr(r.detected_admissibility()));
  std::printf("    \"assertion\": %s,\n", bstr(r.detected_assertion()));
  std::printf("    \"violations_total\": %llu,\n",
              static_cast<unsigned long long>(r.mc.violations_total));
  std::printf("    \"engine_fatal_execs\": %llu\n",
              static_cast<unsigned long long>(r.mc.engine_fatal_execs));
  std::printf("  },\n");
  std::printf("  \"seconds\": %.3f\n", r.mc.seconds);
  std::printf("}\n");
}

void print_sweep_json(const cds::harness::InjectionSummary& sum,
                      std::uint64_t seed) {
  std::printf("{\n");
  std::printf("  \"benchmark\": \"%s\",\n",
              json_escape(sum.benchmark).c_str());
  std::printf("  \"mode\": \"sweep\",\n");
  std::printf("  \"seed\": %llu,\n", static_cast<unsigned long long>(seed));
  std::printf("  \"trials\": [\n");
  for (std::size_t i = 0; i < sum.outcomes.size(); ++i) {
    const auto& o = sum.outcomes[i];
    std::printf("    {\"site\": \"%s\", \"default\": \"%s\", "
                "\"weakened\": \"%s\", \"status\": \"%s\", "
                "\"detection\": \"%s\", \"verdict\": \"%s\", "
                "\"retried\": %s, \"term_signal\": %d, \"seconds\": %.3f}%s\n",
                json_escape(o.site.name).c_str(), to_string(o.site.def),
                to_string(o.site.weakened()),
                cds::harness::to_string(o.status),
                cds::harness::to_string(o.how), to_string(o.verdict),
                bstr(o.retried), o.term_signal, o.seconds,
                i + 1 < sum.outcomes.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"summary\": {\n");
  std::printf("    \"injections\": %d,\n", sum.injections);
  std::printf("    \"builtin\": %d,\n", sum.builtin);
  std::printf("    \"admissibility\": %d,\n", sum.admissibility);
  std::printf("    \"assertion\": %d,\n", sum.assertion);
  std::printf("    \"undetected\": %d,\n", sum.undetected);
  std::printf("    \"crashed\": %d,\n", sum.crashed);
  std::printf("    \"timed_out\": %d,\n", sum.timed_out);
  std::printf("    \"detection_rate\": %.4f\n", sum.detection_rate());
  std::printf("  }\n");
  std::printf("}\n");
}

}  // namespace

int main(int argc, char** argv) {
  cds::ds::register_all_benchmarks();
  if (argc < 2) {
    usage();
    return kExitUsage;
  }

  std::string cmd = argv[1];
  if (cmd == "--list") {
    for (const auto& b : cds::harness::benchmarks()) {
      std::printf("%-22s %s (%zu unit tests, %zu injectable sites)\n",
                  b.name.c_str(), b.display.c_str(), b.tests.size(),
                  [&] {
                    std::size_t n = 0;
                    for (const auto& s : cds::inject::sites_for(b.name)) {
                      if (s.injectable()) ++n;
                    }
                    return n;
                  }());
    }
    return 0;
  }

  const auto* b = cds::harness::find_benchmark(cmd);
  if (b == nullptr) {
    std::fprintf(stderr, "unknown benchmark '%s' (try --list)\n", cmd.c_str());
    return kExitUsage;
  }

  cds::harness::RunOptions opts;
  cds::harness::SweepOptions sweep_opts;
  bool sites = false, sweep = false, reports = false, dot = false, json = false;
  bool have_timeout = false;
  std::uint64_t inject_idx_u = 0;
  bool have_inject = false;
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--sites") sites = true;
    else if (a == "--sweep") sweep = true;
    else if (a == "--reports") reports = true;
    else if (a == "--dot") dot = true;
    else if (a == "--json") json = true;
    else if (a == "--no-sleep-sets") opts.engine.enable_sleep_sets = false;
    else if (a == "--stop-on-violation") opts.engine.stop_on_first_violation = true;
    else if (a == "--inject") {
      if (!flag_value(argc, argv, &i, "--inject", &inject_idx_u, parse_u64))
        return kExitUsage;
      have_inject = true;
    } else if (a == "--cap") {
      if (!flag_value(argc, argv, &i, "--cap", &opts.engine.max_executions,
                      parse_u64))
        return kExitUsage;
    } else if (a == "--stale") {
      std::uint64_t v = 0;
      if (!flag_value(argc, argv, &i, "--stale", &v, parse_u64))
        return kExitUsage;
      if (v > 0xffffffffull) {
        std::fprintf(stderr, "cdsspec-run: --stale value too large\n");
        return kExitUsage;
      }
      opts.engine.stale_read_bound = static_cast<std::uint32_t>(v);
    } else if (a == "--timeout") {
      if (!flag_value(argc, argv, &i, "--timeout",
                      &opts.engine.time_budget_seconds, parse_double))
        return kExitUsage;
      have_timeout = true;
    } else if (a == "--mem-cap") {
      std::uint64_t mb = 0;
      if (!flag_value(argc, argv, &i, "--mem-cap", &mb, parse_u64))
        return kExitUsage;
      opts.engine.memory_budget_bytes =
          static_cast<std::size_t>(mb) * 1024 * 1024;
    } else if (a == "--seed") {
      if (!flag_value(argc, argv, &i, "--seed", &opts.engine.seed, parse_u64))
        return kExitUsage;
      sweep_opts.seed = opts.engine.seed;
    } else {
      std::fprintf(stderr, "cdsspec-run: unknown flag '%s'\n", a.c_str());
      usage();
      return kExitUsage;
    }
  }
  // One seed reproduces the whole run: the spec checker's history sampler
  // derives its stream from the engine seed.
  opts.checker.seed = cds::support::derive_seed(opts.engine.seed, 1);
  // Budgeted runs have already conceded exhaustiveness, so arm the
  // no-progress watchdog too: a DFS stuck in pruned/livelocked subtrees
  // degrades to sampling instead of burning the rest of the budget.
  if (opts.engine.time_budget_seconds > 0 ||
      opts.engine.memory_budget_bytes > 0) {
    opts.engine.watchdog_no_progress_execs = 100000;
  }

  if (sites) {
    int i = 0;
    for (const auto& s : cds::inject::sites_for(b->name)) {
      if (!s.injectable()) continue;
      std::printf("%2d  %-40s %s -> %s\n", i++, s.name.c_str(),
                  to_string(s.def), to_string(s.weakened()));
    }
    return 0;
  }

  if (sweep) {
    if (have_timeout) {
      // --timeout budgets each fork-isolated trial; the engine inside the
      // trial gets a slightly tighter budget so it degrades to sampling
      // before the hard kill fires.
      sweep_opts.trial_timeout_seconds = opts.engine.time_budget_seconds;
      opts.engine.time_budget_seconds *= 0.9;
    }
    auto sum = cds::harness::run_injection_experiment(*b, opts, sweep_opts);
    if (json) {
      print_sweep_json(sum, sweep_opts.seed);
    } else {
      for (const auto& o : sum.outcomes) {
        const char* how = o.status == cds::harness::TrialStatus::kCompleted
                              ? cds::harness::to_string(o.how)
                              : cds::harness::to_string(o.status);
        std::printf("%-42s %-8s -> %s%s\n", o.site.name.c_str(),
                    to_string(o.site.def), how, o.retried ? " (retried)" : "");
      }
      std::printf(
          "detection rate: %.0f%% (%d/%d completed; %d crashed, %d timed "
          "out) seed=%llu\n",
          sum.detection_rate() * 100, sum.completed() - sum.undetected,
          sum.completed(), sum.crashed, sum.timed_out,
          static_cast<unsigned long long>(sweep_opts.seed));
    }
    // A campaign with crashed or timed-out trials has holes in its
    // coverage: inconclusive, not verified.
    return (sum.crashed > 0 || sum.timed_out > 0) ? kExitInconclusive
                                                  : kExitVerified;
  }

  if (have_inject) {
    std::uint64_t i = 0;
    bool found = false;
    for (const auto& s : cds::inject::sites_for(b->name)) {
      if (!s.injectable()) continue;
      if (i++ == inject_idx_u) {
        std::printf("injecting: %s (%s -> %s)\n", s.name.c_str(),
                    to_string(s.def), to_string(s.weakened()));
        cds::inject::inject(s.id);
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "no injectable site #%llu (try --sites)\n",
                   static_cast<unsigned long long>(inject_idx_u));
      return kExitUsage;
    }
  }

  if (dot) {
    // Run the first unit test once and render the last execution's call
    // graph (stop at the first violating execution when one exists, so
    // the rendered graph is the interesting one).
    cds::mc::Config cfg = opts.engine;
    cfg.stop_on_first_violation = true;
    cds::mc::Engine engine(cfg);
    cds::spec::SpecChecker checker(opts.checker);
    checker.attach(engine);
    (void)engine.explore(b->tests.front());
    std::printf("%s", cds::spec::render_dot(checker.recorder().calls()).c_str());
    checker.detach();
    cds::inject::clear_injection();
    return 0;
  }

  auto r = cds::harness::run_benchmark(*b, opts);
  cds::inject::clear_injection();
  if (json) {
    print_result_json(b->name, r);
  } else {
    print_result(r, reports);
  }
  return exit_code_for(r.verdict);
}
