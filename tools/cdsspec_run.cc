// cdsspec-run — command-line driver over the benchmark registry.
//
//   cdsspec-run --list
//   cdsspec-run <benchmark>                 run a benchmark's unit tests
//   cdsspec-run <benchmark> --inject <i>    weaken the i-th injectable site
//   cdsspec-run <benchmark> --sites         list the benchmark's sites
//   cdsspec-run <benchmark> --sweep         run the injection experiment
//   cdsspec-run --replay-trail <file>       re-execute one recorded execution
//   cdsspec-run --worker ADDR               serve shards for a coordinator
//
// Backends: --backend model (default) explores exhaustively under the
// C/C++11 model; --backend stress re-runs the same test bodies on real
// std::threads with seeded preemption (--iters N per unit test,
// --threads-mult R concurrent runners). Stress runs sample hardware
// schedules, so they never verify: the verdict is falsified (exit 1) or
// inconclusive (exit 3), never verified-exhaustive.
//
// Flags: --explore schedule|rf (branch on scheduler choices — the default —
//            or on reads-from classes: one representative execution per
//            (rf,mo,sc) class, typically far fewer executions for the same
//            behavior set; see mc/rf_explore.h),
//        --cap N (execution cap), --stale N (stale-read bound),
//        --timeout SECS (wall-clock budget; degrades to sampling),
//        --mem-cap MB (memory budget), --seed N (RNG seed),
//        --checkpoint FILE (serial: periodic resumable snapshots;
//            with --jobs/--dist-workers: write-ahead shard journal),
//        --resume (continue from the --checkpoint file or journal),
//        --trail-out FILE (write a .trail repro of the found violation),
//        --jobs N (parallel sharded exploration over forked workers),
//        --shard-depth N (prefix depth for --jobs shard enumeration),
//        --dist-workers N (distributed exploration over N forked
//            socket-connected workers), --coordinator ADDR (listen address
//            for external --worker processes), --lease-secs S
//            (assignment lease), --max-shard-retries N,
//        --progress[=SECS] (heartbeat lines on stderr while exploring),
//        --metrics-out FILE (JSON snapshot of the metrics registry),
//        --trace-out FILE (Chrome trace-event JSON; open in Perfetto),
//        --json (machine-readable results),
//        --no-sleep-sets, --stop-on-violation, --reports
//
// Exit codes: 0 verified-exhaustive, 1 violation found, 2 usage error
//             (also: replay divergence, resume fingerprint mismatch),
//             3 inconclusive (budget/cap hit; sampled without a finding).
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "dist/coordinator.h"
#include "ds/suite.h"
#include "harness/parallel.h"
#include "harness/runner.h"
#include "harness/stress_backend.h"
#include "spec/observed.h"
#include "inject/inject.h"
#include "mc/checkpoint.h"
#include "mc/trace.h"
#include "obs/trace_export.h"
#include "spec/checker.h"
#include "spec/render.h"
#include "support/rng.h"

namespace {

constexpr int kExitVerified = 0;
constexpr int kExitFalsified = 1;
constexpr int kExitUsage = 2;
constexpr int kExitInconclusive = 3;

void usage() {
  std::printf(
      "usage: cdsspec-run --list\n"
      "       cdsspec-run <benchmark> [--inject I | --sites | --sweep]\n"
      "                   [--backend model|stress] [--iters N]\n"
      "                   [--threads-mult R] [--explore schedule|rf]\n"
      "                   [--cap N] [--stale N] [--timeout SECS] [--mem-cap MB]\n"
      "                   [--seed N] [--checkpoint FILE] [--resume]\n"
      "                   [--trail-out FILE] [--json] [--no-sleep-sets]\n"
      "                   [--stop-on-violation] [--reports] [--dot]\n"
      "                   [--jobs N] [--shard-depth N] [--progress[=SECS]]\n"
      "                   [--metrics-out FILE] [--trace-out FILE]\n"
      "                   [--dist-workers N] [--coordinator ADDR]\n"
      "                   [--lease-secs S] [--max-shard-retries N]\n"
      "       cdsspec-run --replay-trail FILE\n"
      "       cdsspec-run --worker ADDR [--progress[=SECS]]\n"
      "addresses: 'host:port' (TCP) or 'unix:PATH' (Unix-domain socket)\n"
      "durability: with --jobs/--dist-workers, --checkpoint FILE names a\n"
      "            write-ahead shard journal; --resume replays it after a\n"
      "            crash to a bit-identical verdict and counter set\n"
      "exit codes: 0 verified-exhaustive, 1 violation found, 2 usage error\n"
      "            (also replay divergence / resume mismatch), 3 inconclusive\n");
}

// Strict numeric parsing: the whole argument must be a non-negative
// number. Rejects the silent garbage atoi accepts ("-3", "2x", "").
bool parse_u64(const char* s, std::uint64_t* out) {
  if (s == nullptr || *s == '\0' || *s == '-' || *s == '+') return false;
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_double(const char* s, double* out) {
  if (s == nullptr || *s == '\0' || *s == '-') return false;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(s, &end);
  if (errno != 0 || end == s || *end != '\0' || v < 0.0) return false;
  *out = v;
  return true;
}

// Fetches the value of flag `name` at argv[i+1], parses it with `parse`,
// and advances i. Prints usage and returns false on any failure.
template <typename T>
bool flag_value(int argc, char** argv, int* i, const char* name, T* out,
                bool (*parse)(const char*, T*)) {
  if (*i + 1 >= argc) {
    std::fprintf(stderr, "cdsspec-run: %s requires a value\n", name);
    usage();
    return false;
  }
  ++*i;
  if (!parse(argv[*i], out)) {
    std::fprintf(stderr, "cdsspec-run: invalid value for %s: '%s'\n", name,
                 argv[*i]);
    usage();
    return false;
  }
  return true;
}

// String-valued flag: takes argv[i+1] verbatim and advances i.
bool flag_str(int argc, char** argv, int* i, const char* name,
              std::string* out) {
  if (*i + 1 >= argc) {
    std::fprintf(stderr, "cdsspec-run: %s requires a value\n", name);
    usage();
    return false;
  }
  *out = argv[++*i];
  return true;
}

// `cdsspec-run --replay-trail FILE`: load a .trail repro, resolve its
// "<benchmark>#<index>" test, apply the recorded config fingerprint, and
// strictly re-execute that single execution — the debug-build replay
// determinism assertion is a runtime divergence check here. Exit 1 when the
// recorded violation reproduces, 0 on a clean replay, 2 on any divergence
// or file problem.
int replay_trail(const std::string& path) {
  cds::mc::TrailFile tf;
  std::string err;
  if (!cds::mc::load_trail_file(path, &tf, &err)) {
    std::fprintf(stderr, "cdsspec-run: cannot replay '%s': %s\n", path.c_str(),
                 err.c_str());
    return kExitUsage;
  }
  auto hash = tf.test_name.find('#');
  std::uint64_t test_idx = 0;
  if (hash == std::string::npos ||
      !parse_u64(tf.test_name.c_str() + hash + 1, &test_idx)) {
    std::fprintf(stderr,
                 "cdsspec-run: trail '%s' is for test '%s', not a "
                 "'<benchmark>#<index>' registry test (litmus trails replay "
                 "with cdsspec-fuzz --replay)\n",
                 path.c_str(), tf.test_name.c_str());
    return kExitUsage;
  }
  const std::string bench = tf.test_name.substr(0, hash);
  const auto* b = cds::harness::find_benchmark(bench);
  if (b == nullptr) {
    std::fprintf(stderr,
                 "cdsspec-run: trail '%s' names unknown benchmark '%s' "
                 "(try --list)\n",
                 path.c_str(), bench.c_str());
    return kExitUsage;
  }
  if (test_idx >= b->tests.size()) {
    std::fprintf(stderr,
                 "cdsspec-run: trail '%s' names unit test %llu but '%s' has "
                 "%zu tests; the trail was recorded against a different "
                 "build\n",
                 path.c_str(), static_cast<unsigned long long>(test_idx),
                 bench.c_str(), b->tests.size());
    return kExitUsage;
  }

  // The trail was recorded with this injection active; the weakened memory
  // order shapes the choice tree, so replay needs it too.
  if (!tf.inject_site.empty()) {
    bool found = false;
    for (const auto& s : cds::inject::sites_for(bench)) {
      if (s.name == tf.inject_site) {
        cds::inject::inject(s.id);
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr,
                   "cdsspec-run: trail '%s' was recorded with injection site "
                   "'%s', which this build does not have (try --sites)\n",
                   path.c_str(), tf.inject_site.c_str());
      return kExitUsage;
    }
    std::printf("re-activating injection: %s\n", tf.inject_site.c_str());
  }

  // Stress trails replay by re-running one iteration under the recorded
  // seed: the preemption decision stream is reproduced exactly, the
  // hardware schedule only probabilistically.
  if (tf.backend == "stress") {
    cds::harness::StressOptions sopts;
    cds::harness::StressBackend be(sopts);
    be.run_iteration(b->tests[test_idx], tf.seed);
    cds::spec::ObservedCheckResult oc = cds::spec::check_observed_calls(
        be.iteration_recorder().calls(), sopts.max_histories);
    if (oc.violation) {
      be.report_violation(cds::mc::ViolationKind::kSpecAssertion,
                          std::move(oc.detail));
    }
    cds::inject::clear_injection();
    if (!tf.kind.empty()) {
      std::printf("trail records: %s%s%s\n", tf.kind.c_str(),
                  tf.detail.empty() ? "" : " -- ", tf.detail.c_str());
    }
    std::printf("re-ran one stress iteration of %s under seed %llu\n",
                tf.test_name.c_str(),
                static_cast<unsigned long long>(tf.seed));
    const auto& vs = be.iteration_violations();
    if (!vs.empty()) {
      for (const auto& kv : vs) {
        std::printf("reproduced: %s: %s\n", cds::mc::wire_name(kv.first),
                    kv.second.c_str());
      }
      return kExitFalsified;
    }
    std::printf(
        "no violation on this iteration (stress replay is probabilistic; "
        "re-run, or use --backend stress --seed to widen the search)\n");
    return kExitVerified;
  }

  cds::mc::Config cfg;
  tf.apply_fingerprint(&cfg);
  cfg.test_index = static_cast<std::uint32_t>(test_idx);
  cds::mc::Engine engine(cfg);
  cds::spec::SpecChecker::Options copts;
  copts.seed = cds::support::derive_seed(cfg.seed, 1);
  cds::spec::SpecChecker checker(copts);
  checker.attach(engine);
  std::string divergence;
  bool ok = engine.replay(tf.choices, b->tests[test_idx], /*strict=*/true,
                          &divergence);
  std::uint64_t reproduced = engine.violations_total();
  std::vector<cds::mc::Violation> violations = engine.violations();
  checker.detach();
  cds::inject::clear_injection();
  if (!ok) {
    std::fprintf(stderr, "cdsspec-run: replay of '%s' diverged: %s\n",
                 path.c_str(), divergence.c_str());
    return kExitUsage;
  }
  if (!tf.kind.empty()) {
    std::printf("trail records: %s%s%s\n", tf.kind.c_str(),
                tf.detail.empty() ? "" : " -- ", tf.detail.c_str());
  }
  std::printf("replayed %zu recorded choices deterministically (test %s)\n",
              tf.choices.size(), tf.test_name.c_str());
  if (reproduced > 0) {
    for (const auto& v : violations) {
      std::printf("reproduced: %s: %s\n", to_string(v.kind), v.detail.c_str());
    }
    return kExitFalsified;
  }
  std::printf("no violation on this execution\n");
  return kExitVerified;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* bstr(bool b) { return b ? "true" : "false"; }

int exit_code_for(cds::mc::Verdict v) {
  switch (v) {
    case cds::mc::Verdict::kVerifiedExhaustive: return kExitVerified;
    case cds::mc::Verdict::kFalsified: return kExitFalsified;
    case cds::mc::Verdict::kInconclusive: return kExitInconclusive;
  }
  return kExitInconclusive;
}

void print_result(const cds::harness::RunResult& r, bool reports) {
  std::printf(
      "executions=%llu feasible=%llu sampled=%llu pruned(livelock=%llu "
      "bound=%llu redundant=%llu) engine-fatal=%llu\n",
      static_cast<unsigned long long>(r.mc.executions),
      static_cast<unsigned long long>(r.mc.feasible),
      static_cast<unsigned long long>(r.mc.sampled),
      static_cast<unsigned long long>(r.mc.pruned_livelock),
      static_cast<unsigned long long>(r.mc.pruned_bound),
      static_cast<unsigned long long>(r.mc.pruned_redundant),
      static_cast<unsigned long long>(r.mc.engine_fatal_execs));
  if (r.mc.rf_classes > 0 || r.mc.rf_infeasible > 0) {
    // rf mode only: each class is one representative execution of a
    // distinct (rf,mo,sc) equivalence class; infeasible counts wait
    // branches no later write ever satisfied.
    std::printf("rf-classes=%llu rf-infeasible=%llu\n",
                static_cast<unsigned long long>(r.mc.rf_classes),
                static_cast<unsigned long long>(r.mc.rf_infeasible));
  }
  std::printf(
      "histories=%llu justifications=%llu  violations: builtin=%s "
      "admissibility=%s assertion=%s (total %llu)\n",
      static_cast<unsigned long long>(r.spec.histories_checked),
      static_cast<unsigned long long>(r.spec.justification_checks),
      r.detected_builtin() ? "YES" : "no",
      r.detected_admissibility() ? "YES" : "no",
      r.detected_assertion() ? "YES" : "no",
      static_cast<unsigned long long>(r.mc.violations_total));
  std::string limits;
  if (r.mc.hit_execution_cap) limits += " (execution cap hit)";
  if (r.mc.hit_time_budget) limits += " (time budget hit)";
  if (r.mc.hit_memory_budget) limits += " (memory budget hit)";
  if (r.mc.watchdog_fired) limits += " (watchdog: no-progress DFS)";
  std::printf("time=%.2fs seed=%llu%s\n", r.mc.seconds,
              static_cast<unsigned long long>(r.mc.seed), limits.c_str());
  std::printf("verdict=%s (max trail depth %llu%s)\n", to_string(r.verdict),
              static_cast<unsigned long long>(r.mc.max_trail_depth),
              r.mc.exhausted ? ", state space exhausted" : "");
  if (reports) {
    for (const auto& rep : r.reports) std::printf("\n%s\n", rep.c_str());
  }
}

void print_result_json(const std::string& benchmark,
                       const cds::harness::RunResult& r,
                       const cds::harness::ParallelRunResult* par = nullptr,
                       const cds::dist::DistRunResult* dist = nullptr) {
  std::printf("{\n");
  std::printf("  \"benchmark\": \"%s\",\n", json_escape(benchmark).c_str());
  std::printf("  \"mode\": \"run\",\n");
  if (par != nullptr) {
    std::printf("  \"parallel\": {\n");
    std::printf("    \"jobs\": %d,\n", par->jobs);
    std::printf("    \"shards\": %llu,\n",
                static_cast<unsigned long long>(par->shards));
    std::printf("    \"crashed_shards\": %llu,\n",
                static_cast<unsigned long long>(par->crashed_shards));
    std::printf("    \"probe_executions\": %llu,\n",
                static_cast<unsigned long long>(par->probe_executions));
    std::printf("    \"epoch\": %llu,\n",
                static_cast<unsigned long long>(par->epoch));
    std::printf("    \"resumed\": %s,\n", bstr(par->resumed));
    std::printf("    \"replayed_shards\": %llu,\n",
                static_cast<unsigned long long>(par->replayed_shards));
    std::printf("    \"journal_quarantined_bytes\": %llu\n",
                static_cast<unsigned long long>(par->journal_quarantined_bytes));
    std::printf("  },\n");
  }
  if (dist != nullptr) {
    std::printf("  \"dist\": {\n");
    std::printf("    \"listen\": \"%s\",\n",
                json_escape(dist->listen_address).c_str());
    std::printf("    \"shards\": %llu,\n",
                static_cast<unsigned long long>(dist->shards));
    std::printf("    \"probe_executions\": %llu,\n",
                static_cast<unsigned long long>(dist->probe_executions));
    std::printf("    \"workers_connected_peak\": %llu,\n",
                static_cast<unsigned long long>(dist->workers_connected));
    std::printf("    \"connections_total\": %llu,\n",
                static_cast<unsigned long long>(dist->connections_total));
    std::printf("    \"retries\": %llu,\n",
                static_cast<unsigned long long>(dist->retries));
    std::printf("    \"leases_expired\": %llu,\n",
                static_cast<unsigned long long>(dist->leases_expired));
    std::printf("    \"steals\": %llu,\n",
                static_cast<unsigned long long>(dist->steals));
    std::printf("    \"steal_subshards\": %llu,\n",
                static_cast<unsigned long long>(dist->steal_subshards));
    std::printf("    \"failed_shards\": %llu,\n",
                static_cast<unsigned long long>(dist->failed_shards));
    std::printf("    \"stale_results\": %llu,\n",
                static_cast<unsigned long long>(dist->stale_results));
    std::printf("    \"corrupt_results\": %llu,\n",
                static_cast<unsigned long long>(dist->corrupt_results));
    std::printf("    \"fell_back_local\": %s,\n", bstr(dist->fell_back_local));
    std::printf("    \"epoch\": %llu,\n",
                static_cast<unsigned long long>(dist->epoch));
    std::printf("    \"resumed\": %s,\n", bstr(dist->resumed));
    std::printf("    \"replayed_shards\": %llu,\n",
                static_cast<unsigned long long>(dist->replayed_shards));
    std::printf("    \"fenced_results\": %llu,\n",
                static_cast<unsigned long long>(dist->fenced_results));
    std::printf("    \"journal_quarantined_bytes\": %llu\n",
                static_cast<unsigned long long>(
                    dist->journal_quarantined_bytes));
    std::printf("  },\n");
  }
  std::printf("  \"seed\": %llu,\n",
              static_cast<unsigned long long>(r.mc.seed));
  std::printf("  \"verdict\": \"%s\",\n", to_string(r.verdict));
  std::printf("  \"exit_code\": %d,\n", exit_code_for(r.verdict));
  std::printf("  \"coverage\": {\n");
  std::printf("    \"executions\": %llu,\n",
              static_cast<unsigned long long>(r.mc.executions));
  std::printf("    \"feasible\": %llu,\n",
              static_cast<unsigned long long>(r.mc.feasible));
  std::printf("    \"sampled\": %llu,\n",
              static_cast<unsigned long long>(r.mc.sampled));
  std::printf("    \"pruned_bound\": %llu,\n",
              static_cast<unsigned long long>(r.mc.pruned_bound));
  std::printf("    \"pruned_livelock\": %llu,\n",
              static_cast<unsigned long long>(r.mc.pruned_livelock));
  std::printf("    \"pruned_redundant\": %llu,\n",
              static_cast<unsigned long long>(r.mc.pruned_redundant));
  std::printf("    \"rf_classes\": %llu,\n",
              static_cast<unsigned long long>(r.mc.rf_classes));
  std::printf("    \"rf_infeasible\": %llu,\n",
              static_cast<unsigned long long>(r.mc.rf_infeasible));
  std::printf("    \"max_trail_depth\": %llu,\n",
              static_cast<unsigned long long>(r.mc.max_trail_depth));
  std::printf("    \"exhausted\": %s\n", bstr(r.mc.exhausted));
  std::printf("  },\n");
  std::printf("  \"budgets\": {\n");
  std::printf("    \"hit_execution_cap\": %s,\n", bstr(r.mc.hit_execution_cap));
  std::printf("    \"hit_time_budget\": %s,\n", bstr(r.mc.hit_time_budget));
  std::printf("    \"hit_memory_budget\": %s,\n", bstr(r.mc.hit_memory_budget));
  std::printf("    \"watchdog_fired\": %s\n", bstr(r.mc.watchdog_fired));
  std::printf("  },\n");
  std::printf("  \"detections\": {\n");
  std::printf("    \"builtin\": %s,\n", bstr(r.detected_builtin()));
  std::printf("    \"admissibility\": %s,\n", bstr(r.detected_admissibility()));
  std::printf("    \"assertion\": %s,\n", bstr(r.detected_assertion()));
  std::printf("    \"violations_total\": %llu,\n",
              static_cast<unsigned long long>(r.mc.violations_total));
  std::printf("    \"engine_fatal_execs\": %llu\n",
              static_cast<unsigned long long>(r.mc.engine_fatal_execs));
  std::printf("  },\n");
  std::printf("  \"seconds\": %.3f\n", r.mc.seconds);
  std::printf("}\n");
}

void print_sweep_json(const cds::harness::InjectionSummary& sum,
                      std::uint64_t seed) {
  std::printf("{\n");
  std::printf("  \"benchmark\": \"%s\",\n",
              json_escape(sum.benchmark).c_str());
  std::printf("  \"mode\": \"sweep\",\n");
  std::printf("  \"seed\": %llu,\n", static_cast<unsigned long long>(seed));
  std::printf("  \"trials\": [\n");
  for (std::size_t i = 0; i < sum.outcomes.size(); ++i) {
    const auto& o = sum.outcomes[i];
    std::printf("    {\"site\": \"%s\", \"default\": \"%s\", "
                "\"weakened\": \"%s\", \"status\": \"%s\", "
                "\"detection\": \"%s\", \"verdict\": \"%s\", "
                "\"retried\": %s, \"term_signal\": %d, \"seconds\": %.3f}%s\n",
                json_escape(o.site.name).c_str(), to_string(o.site.def),
                to_string(o.site.weakened()),
                cds::harness::to_string(o.status),
                cds::harness::to_string(o.how), to_string(o.verdict),
                bstr(o.retried), o.term_signal, o.seconds,
                i + 1 < sum.outcomes.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"summary\": {\n");
  std::printf("    \"injections\": %d,\n", sum.injections);
  std::printf("    \"builtin\": %d,\n", sum.builtin);
  std::printf("    \"admissibility\": %d,\n", sum.admissibility);
  std::printf("    \"assertion\": %d,\n", sum.assertion);
  std::printf("    \"undetected\": %d,\n", sum.undetected);
  std::printf("    \"crashed\": %d,\n", sum.crashed);
  std::printf("    \"timed_out\": %d,\n", sum.timed_out);
  std::printf("    \"detection_rate\": %.4f\n", sum.detection_rate());
  std::printf("  }\n");
  std::printf("}\n");
}

}  // namespace

int main(int argc, char** argv) {
  cds::ds::register_all_benchmarks();
  if (argc < 2) {
    usage();
    return kExitUsage;
  }

  std::string cmd = argv[1];
  if (cmd == "--replay-trail") {
    if (argc != 3) {
      std::fprintf(stderr, "cdsspec-run: --replay-trail requires a file\n");
      usage();
      return kExitUsage;
    }
    return replay_trail(argv[2]);
  }
  if (cmd == "--worker") {
    if (argc < 3) {
      std::fprintf(stderr, "cdsspec-run: --worker requires an address\n");
      usage();
      return kExitUsage;
    }
    cds::dist::WorkerOptions wo;
    for (int i = 3; i < argc; ++i) {
      std::string a = argv[i];
      if (a == "--progress") {
        wo.progress_interval_seconds = 2.0;
      } else if (a.rfind("--progress=", 0) == 0) {
        double secs = 0.0;
        if (!parse_double(a.c_str() + 11, &secs) || secs <= 0.0) {
          std::fprintf(stderr,
                       "cdsspec-run: --progress wants a positive interval\n");
          return kExitUsage;
        }
        wo.progress_interval_seconds = secs;
      } else if (a == "--connect-timeout") {
        if (!flag_value(argc, argv, &i, "--connect-timeout",
                        &wo.connect_timeout_seconds, parse_double))
          return kExitUsage;
      } else {
        std::fprintf(stderr, "cdsspec-run: unknown --worker flag '%s'\n",
                     a.c_str());
        usage();
        return kExitUsage;
      }
    }
    return cds::dist::run_worker(argv[2], wo) == 0 ? kExitVerified
                                                   : kExitUsage;
  }
  if (cmd == "--list") {
    for (const auto& b : cds::harness::benchmarks()) {
      std::printf("%-22s %s (%zu unit tests, %zu injectable sites)\n",
                  b.name.c_str(), b.display.c_str(), b.tests.size(),
                  [&] {
                    std::size_t n = 0;
                    for (const auto& s : cds::inject::sites_for(b.name)) {
                      if (s.injectable()) ++n;
                    }
                    return n;
                  }());
    }
    return 0;
  }

  const auto* b = cds::harness::find_benchmark(cmd);
  if (b == nullptr) {
    std::fprintf(stderr, "unknown benchmark '%s' (try --list)\n", cmd.c_str());
    return kExitUsage;
  }

  cds::harness::RunOptions opts;
  cds::harness::SweepOptions sweep_opts;
  bool sites = false, sweep = false, reports = false, dot = false, json = false;
  bool have_timeout = false;
  std::uint64_t inject_idx_u = 0;
  bool have_inject = false;
  bool want_resume = false;
  std::string trail_out;
  std::string metrics_out;
  std::string trace_out;
  std::uint64_t jobs_u = 1;
  std::uint64_t shard_depth_u = 2;
  std::uint64_t dist_workers_u = 0;
  std::string backend = "model";
  std::uint64_t iters_u = 256;
  std::uint64_t threads_mult_u = 1;
  bool have_stress_flag = false;
  std::string coordinator_addr;
  double lease_secs = 5.0;
  std::uint64_t max_shard_retries_u = 3;
  std::uint64_t chaos_kill_u = 0;
  std::uint64_t chaos_coord_kill_append_u = 0;
  std::uint64_t chaos_coord_kill_merge_u = 0;
  std::uint64_t chaos_coord_trunc_u = 0;
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--sites") sites = true;
    else if (a == "--sweep") sweep = true;
    else if (a == "--reports") reports = true;
    else if (a == "--dot") dot = true;
    else if (a == "--json") json = true;
    else if (a == "--no-sleep-sets") opts.engine.enable_sleep_sets = false;
    else if (a == "--stop-on-violation") opts.engine.stop_on_first_violation = true;
    else if (a == "--inject") {
      if (!flag_value(argc, argv, &i, "--inject", &inject_idx_u, parse_u64))
        return kExitUsage;
      have_inject = true;
    } else if (a == "--cap") {
      if (!flag_value(argc, argv, &i, "--cap", &opts.engine.max_executions,
                      parse_u64))
        return kExitUsage;
    } else if (a == "--stale") {
      std::uint64_t v = 0;
      if (!flag_value(argc, argv, &i, "--stale", &v, parse_u64))
        return kExitUsage;
      if (v > 0xffffffffull) {
        std::fprintf(stderr, "cdsspec-run: --stale value too large\n");
        return kExitUsage;
      }
      opts.engine.stale_read_bound = static_cast<std::uint32_t>(v);
    } else if (a == "--timeout") {
      if (!flag_value(argc, argv, &i, "--timeout",
                      &opts.engine.time_budget_seconds, parse_double))
        return kExitUsage;
      have_timeout = true;
    } else if (a == "--mem-cap") {
      std::uint64_t mb = 0;
      if (!flag_value(argc, argv, &i, "--mem-cap", &mb, parse_u64))
        return kExitUsage;
      opts.engine.memory_budget_bytes =
          static_cast<std::size_t>(mb) * 1024 * 1024;
    } else if (a == "--seed") {
      if (!flag_value(argc, argv, &i, "--seed", &opts.engine.seed, parse_u64))
        return kExitUsage;
      sweep_opts.seed = opts.engine.seed;
    } else if (a == "--checkpoint") {
      if (!flag_str(argc, argv, &i, "--checkpoint",
                    &opts.engine.checkpoint_path))
        return kExitUsage;
    } else if (a == "--resume") {
      want_resume = true;
    } else if (a == "--trail-out") {
      if (!flag_str(argc, argv, &i, "--trail-out", &trail_out))
        return kExitUsage;
    } else if (a == "--metrics-out") {
      if (!flag_str(argc, argv, &i, "--metrics-out", &metrics_out))
        return kExitUsage;
    } else if (a == "--trace-out") {
      if (!flag_str(argc, argv, &i, "--trace-out", &trace_out))
        return kExitUsage;
    } else if (a == "--progress") {
      opts.engine.progress_interval_seconds = 2.0;
    } else if (a.rfind("--progress=", 0) == 0) {
      double secs = 0.0;
      if (!parse_double(a.c_str() + 11, &secs) || secs <= 0.0) {
        std::fprintf(stderr,
                     "cdsspec-run: --progress wants a positive interval in "
                     "seconds, not '%s'\n",
                     a.c_str() + 11);
        return kExitUsage;
      }
      opts.engine.progress_interval_seconds = secs;
    } else if (a == "--jobs") {
      if (!flag_value(argc, argv, &i, "--jobs", &jobs_u, parse_u64))
        return kExitUsage;
      if (jobs_u == 0 || jobs_u > 256) {
        std::fprintf(stderr, "cdsspec-run: --jobs must be in 1..256\n");
        return kExitUsage;
      }
    } else if (a == "--shard-depth") {
      if (!flag_value(argc, argv, &i, "--shard-depth", &shard_depth_u,
                      parse_u64))
        return kExitUsage;
      if (shard_depth_u == 0 || shard_depth_u > 16) {
        std::fprintf(stderr, "cdsspec-run: --shard-depth must be in 1..16\n");
        return kExitUsage;
      }
    } else if (a == "--backend") {
      if (!flag_str(argc, argv, &i, "--backend", &backend))
        return kExitUsage;
      if (backend != "model" && backend != "stress") {
        std::fprintf(stderr,
                     "cdsspec-run: --backend must be 'model' or 'stress', "
                     "not '%s'\n",
                     backend.c_str());
        return kExitUsage;
      }
    } else if (a == "--explore") {
      std::string mode;
      if (!flag_str(argc, argv, &i, "--explore", &mode))
        return kExitUsage;
      if (mode == "schedule") {
        opts.engine.explore = cds::mc::ExploreMode::kSchedule;
      } else if (mode == "rf") {
        opts.engine.explore = cds::mc::ExploreMode::kRf;
      } else {
        std::fprintf(stderr,
                     "cdsspec-run: --explore must be 'schedule' or 'rf', "
                     "not '%s'\n",
                     mode.c_str());
        return kExitUsage;
      }
    } else if (a == "--iters") {
      if (!flag_value(argc, argv, &i, "--iters", &iters_u, parse_u64))
        return kExitUsage;
      if (iters_u == 0) {
        std::fprintf(stderr, "cdsspec-run: --iters must be positive\n");
        return kExitUsage;
      }
      have_stress_flag = true;
    } else if (a == "--threads-mult") {
      if (!flag_value(argc, argv, &i, "--threads-mult", &threads_mult_u,
                      parse_u64))
        return kExitUsage;
      if (threads_mult_u == 0 || threads_mult_u > 64) {
        std::fprintf(stderr,
                     "cdsspec-run: --threads-mult must be in 1..64\n");
        return kExitUsage;
      }
      have_stress_flag = true;
    } else if (a == "--dist-workers") {
      if (!flag_value(argc, argv, &i, "--dist-workers", &dist_workers_u,
                      parse_u64))
        return kExitUsage;
      if (dist_workers_u == 0 || dist_workers_u > 64) {
        std::fprintf(stderr, "cdsspec-run: --dist-workers must be in 1..64\n");
        return kExitUsage;
      }
    } else if (a == "--coordinator") {
      if (!flag_str(argc, argv, &i, "--coordinator", &coordinator_addr))
        return kExitUsage;
    } else if (a == "--lease-secs") {
      if (!flag_value(argc, argv, &i, "--lease-secs", &lease_secs,
                      parse_double))
        return kExitUsage;
      if (lease_secs <= 0.0) {
        std::fprintf(stderr, "cdsspec-run: --lease-secs must be positive\n");
        return kExitUsage;
      }
    } else if (a == "--max-shard-retries") {
      if (!flag_value(argc, argv, &i, "--max-shard-retries",
                      &max_shard_retries_u, parse_u64))
        return kExitUsage;
      if (max_shard_retries_u > 100) {
        std::fprintf(stderr,
                     "cdsspec-run: --max-shard-retries must be <= 100\n");
        return kExitUsage;
      }
    } else if (a == "--chaos-kill-assignment") {
      // Undocumented test/CI hook: SIGKILL the first forked worker on its
      // K-th assignment to exercise lease revocation + retry.
      if (!flag_value(argc, argv, &i, "--chaos-kill-assignment", &chaos_kill_u,
                      parse_u64))
        return kExitUsage;
    } else if (a == "--chaos-coord-kill-append") {
      // Undocumented test/CI hooks: coordinator-side crash injection in
      // the journal's write-ahead windows (see dist/chaos.h). Each names
      // the 1-based ordinal of a journal append by this incarnation.
      if (!flag_value(argc, argv, &i, "--chaos-coord-kill-append",
                      &chaos_coord_kill_append_u, parse_u64))
        return kExitUsage;
    } else if (a == "--chaos-coord-kill-merge") {
      if (!flag_value(argc, argv, &i, "--chaos-coord-kill-merge",
                      &chaos_coord_kill_merge_u, parse_u64))
        return kExitUsage;
    } else if (a == "--chaos-coord-truncate-tail") {
      if (!flag_value(argc, argv, &i, "--chaos-coord-truncate-tail",
                      &chaos_coord_trunc_u, parse_u64))
        return kExitUsage;
    } else {
      std::fprintf(stderr, "cdsspec-run: unknown flag '%s'\n", a.c_str());
      usage();
      return kExitUsage;
    }
  }
  // One seed reproduces the whole run: the spec checker's history sampler
  // derives its stream from the engine seed.
  opts.checker.seed = cds::support::derive_seed(opts.engine.seed, 1);
  // Budgeted runs have already conceded exhaustiveness, so arm the
  // no-progress watchdog too: a DFS stuck in pruned/livelocked subtrees
  // degrades to sampling instead of burning the rest of the budget.
  if (opts.engine.time_budget_seconds > 0 ||
      opts.engine.memory_budget_bytes > 0) {
    opts.engine.watchdog_no_progress_execs = 100000;
  }

  if ((sweep || dot) && (!opts.engine.checkpoint_path.empty() || want_resume ||
                         !trail_out.empty() || !metrics_out.empty() ||
                         !trace_out.empty())) {
    std::fprintf(stderr,
                 "cdsspec-run: --checkpoint/--resume/--trail-out/"
                 "--metrics-out/--trace-out apply to plain runs, not --sweep "
                 "or --dot\n");
    return kExitUsage;
  }
  if (want_resume && opts.engine.checkpoint_path.empty()) {
    std::fprintf(stderr, "cdsspec-run: --resume requires --checkpoint FILE\n");
    return kExitUsage;
  }
  // --checkpoint/--resume compose with --jobs and --dist-workers: there
  // the file is the write-ahead shard journal (dist/journal.h) instead of
  // the serial engine checkpoint, and --resume replays it.
  if (jobs_u > 1 && (sweep || dot)) {
    std::fprintf(stderr,
                 "cdsspec-run: --jobs applies to plain runs only; "
                 "--sweep/--dot stay serial\n");
    return kExitUsage;
  }
  const bool dist_mode = dist_workers_u > 0 || !coordinator_addr.empty();
  if (dist_mode && (jobs_u > 1 || sweep || dot)) {
    std::fprintf(stderr,
                 "cdsspec-run: --dist-workers/--coordinator apply to plain "
                 "runs only and are exclusive with --jobs, --sweep and "
                 "--dot\n");
    return kExitUsage;
  }
  const bool sharded_mode = jobs_u > 1 || dist_mode;
  if (!sharded_mode &&
      (chaos_coord_kill_append_u > 0 || chaos_coord_kill_merge_u > 0 ||
       chaos_coord_trunc_u > 0)) {
    std::fprintf(stderr,
                 "cdsspec-run: --chaos-coord-* apply to --jobs/--dist-workers "
                 "runs only\n");
    return kExitUsage;
  }
  const bool stress_mode = backend == "stress";
  if (have_stress_flag && !stress_mode) {
    std::fprintf(stderr,
                 "cdsspec-run: --iters/--threads-mult apply to "
                 "--backend stress only\n");
    return kExitUsage;
  }
  if (stress_mode &&
      (sweep || dot || jobs_u > 1 || dist_mode || want_resume ||
       !opts.engine.checkpoint_path.empty() || !metrics_out.empty() ||
       !trace_out.empty())) {
    std::fprintf(stderr,
                 "cdsspec-run: --backend stress runs plain only; it is "
                 "exclusive with --sweep, --dot, --jobs, --dist-workers/"
                 "--coordinator, --checkpoint/--resume, --metrics-out and "
                 "--trace-out\n");
    return kExitUsage;
  }

  // Load the resume state. A missing file is a fresh start (first run of a
  // campaign); a torn or corrupted file degrades to a fresh start with a
  // warning (the atomic writer makes this near-impossible, but a damaged
  // disk must not wedge the tool); a config mismatch is a hard error — the
  // checkpoint belongs to a run with different exploration parameters and
  // silently restarting would discard the user's intent.
  // Sharded runs resume from the journal instead (below): the serial
  // checkpoint format does not apply to them.
  cds::mc::Checkpoint resume_cp;
  if (want_resume && !sharded_mode) {
    std::string err;
    std::string text;
    if (!cds::mc::read_text_file(opts.engine.checkpoint_path, &text, &err)) {
      std::fprintf(stderr,
                   "cdsspec-run: no checkpoint at '%s' (%s); starting fresh\n",
                   opts.engine.checkpoint_path.c_str(), err.c_str());
    } else if (!cds::mc::parse_checkpoint(text, &resume_cp, &err)) {
      std::fprintf(stderr,
                   "cdsspec-run: checkpoint '%s' is unusable (%s); "
                   "starting fresh\n",
                   opts.engine.checkpoint_path.c_str(), err.c_str());
    } else {
      std::string mismatch = resume_cp.fingerprint_mismatch(opts.engine);
      if (!mismatch.empty()) {
        std::fprintf(stderr,
                     "cdsspec-run: checkpoint '%s' was recorded under "
                     "different flags (%s); rerun with the original flags or "
                     "delete the file to start fresh\n",
                     opts.engine.checkpoint_path.c_str(), mismatch.c_str());
        return kExitUsage;
      }
      opts.resume = &resume_cp;
      std::fprintf(stderr,
                   "cdsspec-run: resuming from '%s' (test %s, phase %s, "
                   "%llu executions in)\n",
                   opts.engine.checkpoint_path.c_str(),
                   resume_cp.test_name.c_str(), to_string(resume_cp.phase),
                   static_cast<unsigned long long>(
                       resume_cp.stats.executions));
    }
  }

  if (sites) {
    int i = 0;
    for (const auto& s : cds::inject::sites_for(b->name)) {
      if (!s.injectable()) continue;
      std::printf("%2d  %-40s %s -> %s\n", i++, s.name.c_str(),
                  to_string(s.def), to_string(s.weakened()));
    }
    return 0;
  }

  if (sweep) {
    if (have_timeout) {
      // --timeout budgets each fork-isolated trial; the engine inside the
      // trial gets a slightly tighter budget so it degrades to sampling
      // before the hard kill fires.
      sweep_opts.trial_timeout_seconds = opts.engine.time_budget_seconds;
      opts.engine.time_budget_seconds *= 0.9;
    }
    auto sum = cds::harness::run_injection_experiment(*b, opts, sweep_opts);
    if (json) {
      print_sweep_json(sum, sweep_opts.seed);
    } else {
      for (const auto& o : sum.outcomes) {
        const char* how = o.status == cds::harness::TrialStatus::kCompleted
                              ? cds::harness::to_string(o.how)
                              : cds::harness::to_string(o.status);
        std::printf("%-42s %-8s -> %s%s\n", o.site.name.c_str(),
                    to_string(o.site.def), how, o.retried ? " (retried)" : "");
      }
      std::printf(
          "detection rate: %.0f%% (%d/%d completed; %d crashed, %d timed "
          "out) seed=%llu\n",
          sum.detection_rate() * 100, sum.completed() - sum.undetected,
          sum.completed(), sum.crashed, sum.timed_out,
          static_cast<unsigned long long>(sweep_opts.seed));
    }
    // A campaign with crashed or timed-out trials has holes in its
    // coverage: inconclusive, not verified.
    return (sum.crashed > 0 || sum.timed_out > 0) ? kExitInconclusive
                                                  : kExitVerified;
  }

  std::string injected_site_name;
  if (have_inject) {
    std::uint64_t i = 0;
    bool found = false;
    for (const auto& s : cds::inject::sites_for(b->name)) {
      if (!s.injectable()) continue;
      if (i++ == inject_idx_u) {
        std::printf("injecting: %s (%s -> %s)\n", s.name.c_str(),
                    to_string(s.def), to_string(s.weakened()));
        cds::inject::inject(s.id);
        injected_site_name = s.name;
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "no injectable site #%llu (try --sites)\n",
                   static_cast<unsigned long long>(inject_idx_u));
      return kExitUsage;
    }
  }

  if (dot) {
    // Run the first unit test once and render the last execution's call
    // graph (stop at the first violating execution when one exists, so
    // the rendered graph is the interesting one).
    cds::mc::Config cfg = opts.engine;
    cfg.stop_on_first_violation = true;
    cds::mc::Engine engine(cfg);
    cds::spec::SpecChecker checker(opts.checker);
    checker.attach(engine);
    (void)engine.explore(b->tests.front());
    std::printf("%s", cds::spec::render_dot(checker.recorder().calls()).c_str());
    checker.detach();
    cds::inject::clear_injection();
    return 0;
  }

  if (stress_mode) {
    cds::harness::StressOptions sopts;
    sopts.iters = iters_u;
    sopts.threads_mult = static_cast<int>(threads_mult_u);
    sopts.stop_on_first_violation = opts.engine.stop_on_first_violation;

    cds::harness::StressStats total;
    std::vector<std::pair<std::size_t, cds::harness::StressViolation>> found;
    bool falsified = false;
    for (std::size_t ti = 0; ti < b->tests.size(); ++ti) {
      // Per-test seed stream: adding a unit test must not shift the
      // iteration seeds of its siblings.
      cds::harness::StressOptions topts = sopts;
      topts.seed = cds::support::derive_seed(opts.engine.seed, ti);
      auto res = cds::harness::run_stress(b->tests[ti], topts);
      total.iterations += res.stats.iterations;
      total.violations_total += res.stats.violations_total;
      total.spec_histories_checked += res.stats.spec_histories_checked;
      total.spec_cap_hits += res.stats.spec_cap_hits;
      total.seconds += res.stats.seconds;
      for (auto& v : res.violations) {
        if (found.size() < cds::harness::StressRunResult::kMaxRecorded) {
          found.emplace_back(ti, std::move(v));
        }
      }
      if (res.verdict == cds::mc::Verdict::kFalsified) {
        falsified = true;
        if (sopts.stop_on_first_violation) break;
      }
    }
    const cds::mc::Verdict verdict = falsified
                                         ? cds::mc::Verdict::kFalsified
                                         : cds::mc::Verdict::kInconclusive;
    if (json) {
      std::printf("{\n");
      std::printf("  \"benchmark\": \"%s\",\n",
                  json_escape(b->name).c_str());
      std::printf("  \"mode\": \"stress\",\n");
      std::printf("  \"seed\": %llu,\n",
                  static_cast<unsigned long long>(opts.engine.seed));
      std::printf("  \"iters\": %llu,\n",
                  static_cast<unsigned long long>(iters_u));
      std::printf("  \"threads_mult\": %llu,\n",
                  static_cast<unsigned long long>(threads_mult_u));
      std::printf("  \"iterations\": %llu,\n",
                  static_cast<unsigned long long>(total.iterations));
      std::printf("  \"violations_total\": %llu,\n",
                  static_cast<unsigned long long>(total.violations_total));
      std::printf("  \"spec_histories\": %llu,\n",
                  static_cast<unsigned long long>(
                      total.spec_histories_checked));
      std::printf("  \"spec_cap_hits\": %llu,\n",
                  static_cast<unsigned long long>(total.spec_cap_hits));
      std::printf("  \"verdict\": \"%s\",\n", to_string(verdict));
      std::printf("  \"exit_code\": %d,\n", exit_code_for(verdict));
      std::printf("  \"seconds\": %.3f\n", total.seconds);
      std::printf("}\n");
    } else {
      std::printf(
          "backend=stress iterations=%llu (%llu per unit test, "
          "threads-mult %llu) violations=%llu\n",
          static_cast<unsigned long long>(total.iterations),
          static_cast<unsigned long long>(iters_u),
          static_cast<unsigned long long>(threads_mult_u),
          static_cast<unsigned long long>(total.violations_total));
      std::printf("spec: histories=%llu unresolved-by-cap=%llu\n",
                  static_cast<unsigned long long>(
                      total.spec_histories_checked),
                  static_cast<unsigned long long>(total.spec_cap_hits));
      for (const auto& [ti, v] : found) {
        std::printf("violation in %s#%zu (iteration %llu): %s: %s\n",
                    b->name.c_str(), ti,
                    static_cast<unsigned long long>(v.iteration),
                    cds::mc::wire_name(v.kind), v.detail.c_str());
      }
      std::printf("time=%.2fs seed=%llu\n", total.seconds,
                  static_cast<unsigned long long>(opts.engine.seed));
      std::printf(
          "verdict=%s (stress samples real schedules: it can falsify, "
          "never verify)\n",
          to_string(verdict));
    }
    if (!trail_out.empty()) {
      if (found.empty()) {
        std::fprintf(stderr,
                     "cdsspec-run: --trail-out: no stress violation this "
                     "run; nothing written\n");
      } else {
        const auto& [ti, v] = found.front();
        cds::mc::TrailFile tf;
        tf.fingerprint_from(opts.engine);
        tf.backend = "stress";
        tf.test_name = b->name + "#" + std::to_string(ti);
        tf.seed = v.iter_seed;
        tf.kind = cds::mc::wire_name(v.kind);
        tf.detail = v.detail;
        tf.inject_site = injected_site_name;
        tf.choices = v.decisions;
        std::string err;
        if (!cds::mc::write_trail_file(trail_out, tf, &err)) {
          std::fprintf(stderr, "cdsspec-run: cannot write '%s': %s\n",
                       trail_out.c_str(), err.c_str());
        } else {
          std::printf("wrote stress repro trail: %s (%s in %s)\n",
                      trail_out.c_str(), tf.kind.c_str(),
                      tf.test_name.c_str());
        }
      }
    }
    cds::inject::clear_injection();
    return exit_code_for(verdict);
  }

  cds::harness::RunResult r;
  cds::harness::ParallelRunResult par;
  cds::dist::DistRunResult dist;
  const bool parallel = jobs_u > 1;
  // In sharded modes --checkpoint names the shard journal, not a serial
  // engine checkpoint — hand it to the coordinator and keep it out of the
  // engine config forwarded to shard children.
  std::string journal_path;
  if (sharded_mode) {
    journal_path = opts.engine.checkpoint_path;
    opts.engine.checkpoint_path.clear();
  }
  cds::dist::CoordinatorChaos coord_chaos;
  if (chaos_coord_kill_append_u > 0) {
    coord_chaos.kill_after_append =
        static_cast<std::ptrdiff_t>(chaos_coord_kill_append_u);
  }
  if (chaos_coord_kill_merge_u > 0) {
    coord_chaos.kill_before_merge_on =
        static_cast<std::ptrdiff_t>(chaos_coord_kill_merge_u);
  }
  if (chaos_coord_trunc_u > 0) {
    coord_chaos.truncate_tail_after =
        static_cast<std::ptrdiff_t>(chaos_coord_trunc_u);
  }
  if (dist_mode) {
    cds::dist::DistOptions dopts;
    dopts.listen = coordinator_addr;
    dopts.dist_workers = static_cast<int>(dist_workers_u);
    dopts.lease_seconds = lease_secs;
    dopts.max_shard_retries = static_cast<int>(max_shard_retries_u);
    dopts.shard_depth = static_cast<int>(shard_depth_u);
    dopts.worker_progress_interval_seconds =
        opts.engine.progress_interval_seconds;
    dopts.journal_path = journal_path;
    dopts.resume = want_resume;
    dopts.coord_chaos = coord_chaos;
    if (chaos_kill_u > 0) {
      dopts.worker_chaos.kill_on_assignment =
          static_cast<std::ptrdiff_t>(chaos_kill_u);
    }
    dist = cds::dist::run_benchmark_distributed(*b, opts, dopts);
    if (!dist.resume_error.empty()) {
      std::fprintf(stderr, "cdsspec-run: %s\n", dist.resume_error.c_str());
      return kExitUsage;
    }
    r = std::move(dist.merged);
  } else if (parallel) {
    cds::harness::ParallelOptions popts;
    popts.jobs = static_cast<int>(jobs_u);
    popts.shard_depth = static_cast<int>(shard_depth_u);
    popts.journal_path = journal_path;
    popts.resume = want_resume;
    popts.coord_chaos = coord_chaos;
    par = cds::harness::run_benchmark_parallel(*b, opts, popts);
    if (!par.resume_error.empty()) {
      std::fprintf(stderr, "cdsspec-run: %s\n", par.resume_error.c_str());
      return kExitUsage;
    }
    r = std::move(par.merged);
  } else {
    r = cds::harness::run_benchmark(*b, opts);
  }
  // Note: an active --inject stays armed until after --trace-out below —
  // replaying a violation trail needs the same weakened memory order that
  // shaped it.
  if (json) {
    print_result_json(b->name, r, parallel ? &par : nullptr,
                      dist_mode ? &dist : nullptr);
  } else {
    if (dist_mode) {
      std::printf(
          "dist: listen=%s workers-peak=%llu shards=%llu retries=%llu "
          "leases-expired=%llu steals=%llu(+%llu sub-shards) failed=%llu "
          "stale=%llu corrupt=%llu%s\n",
          dist.listen_address.c_str(),
          static_cast<unsigned long long>(dist.workers_connected),
          static_cast<unsigned long long>(dist.shards),
          static_cast<unsigned long long>(dist.retries),
          static_cast<unsigned long long>(dist.leases_expired),
          static_cast<unsigned long long>(dist.steals),
          static_cast<unsigned long long>(dist.steal_subshards),
          static_cast<unsigned long long>(dist.failed_shards),
          static_cast<unsigned long long>(dist.stale_results),
          static_cast<unsigned long long>(dist.corrupt_results),
          dist.fell_back_local ? " (fell back to local fork pool)" : "");
      if (dist.epoch != 0) {
        std::printf(
            "journal: epoch=%llu%s replayed=%llu fenced=%llu "
            "quarantined-bytes=%llu\n",
            static_cast<unsigned long long>(dist.epoch),
            dist.resumed ? " (resumed)" : "",
            static_cast<unsigned long long>(dist.replayed_shards),
            static_cast<unsigned long long>(dist.fenced_results),
            static_cast<unsigned long long>(dist.journal_quarantined_bytes));
      }
    }
    if (parallel) {
      std::printf("parallel: jobs=%d shards=%llu crashed=%llu "
                  "probe-executions=%llu\n",
                  par.jobs, static_cast<unsigned long long>(par.shards),
                  static_cast<unsigned long long>(par.crashed_shards),
                  static_cast<unsigned long long>(par.probe_executions));
      if (par.epoch != 0) {
        std::printf(
            "journal: epoch=%llu%s replayed=%llu quarantined-bytes=%llu\n",
            static_cast<unsigned long long>(par.epoch),
            par.resumed ? " (resumed)" : "",
            static_cast<unsigned long long>(par.replayed_shards),
            static_cast<unsigned long long>(par.journal_quarantined_bytes));
      }
    }
    print_result(r, reports);
  }

  // Persist a one-execution repro of the found violation. Crashes win the
  // tie-break: a contained SIGSEGV is the finding most worth replaying
  // under a debugger. Violations restored from a checkpoint carry no trail
  // and are skipped.
  if (!trail_out.empty()) {
    const cds::mc::Violation* pick = nullptr;
    for (const auto& v : r.violations) {
      if (v.trail.empty()) continue;
      if (pick == nullptr || (v.kind == cds::mc::ViolationKind::kCrash &&
                              pick->kind != cds::mc::ViolationKind::kCrash)) {
        pick = &v;
      }
    }
    if (pick == nullptr) {
      std::fprintf(stderr,
                   "cdsspec-run: --trail-out: no violation with a recorded "
                   "trail this run; nothing written\n");
    } else {
      cds::mc::TrailFile tf;
      tf.fingerprint_from(opts.engine);
      tf.test_name = b->name + "#" + std::to_string(pick->test_index);
      tf.kind = cds::mc::wire_name(pick->kind);
      tf.detail = pick->detail;
      tf.inject_site = injected_site_name;
      tf.choices = pick->trail;
      std::string err;
      if (!cds::mc::write_trail_file(trail_out, tf, &err)) {
        std::fprintf(stderr, "cdsspec-run: cannot write '%s': %s\n",
                     trail_out.c_str(), err.c_str());
      } else {
        std::printf("wrote repro trail: %s (%s in %s)\n", trail_out.c_str(),
                    tf.kind.c_str(), tf.test_name.c_str());
      }
    }
  }

  // JSON snapshot of the merged metrics registry (serial or shard-merged).
  if (!metrics_out.empty()) {
    std::string err;
    if (!cds::mc::write_text_file_atomic(metrics_out, r.metrics.to_json(),
                                         &err)) {
      std::fprintf(stderr, "cdsspec-run: cannot write '%s': %s\n",
                   metrics_out.c_str(), err.c_str());
    } else {
      std::printf("wrote metrics: %s\n", metrics_out.c_str());
    }
  }

  // Chrome trace-event export: one timeline row per modeled thread from a
  // replayed execution, plus exploration-phase spans. The interesting
  // execution is the first violation carrying a trail; a clean run renders
  // the first unit test's first execution instead.
  if (!trace_out.empty()) {
    const cds::mc::Violation* pick = nullptr;
    for (const auto& v : r.violations) {
      if (!v.trail.empty()) {
        pick = &v;
        break;
      }
    }
    const std::size_t ti = pick != nullptr ? pick->test_index : 0;
    cds::mc::Config cfg = opts.engine;
    cfg.collect_trace = true;
    cfg.progress_interval_seconds = 0.0;
    cfg.checkpoint_path.clear();
    cfg.max_executions = 1;
    cfg.sample_executions = 0;
    cfg.time_budget_seconds = 0.0;
    cfg.memory_budget_bytes = 0;
    cfg.watchdog_no_progress_execs = 0;
    cfg.test_name = b->name + "#" + std::to_string(ti);
    cfg.test_index = static_cast<std::uint32_t>(ti);
    cds::mc::Engine engine(cfg);
    if (pick != nullptr) {
      std::string divergence;
      (void)engine.replay(pick->trail, b->tests[ti], /*strict=*/false,
                          &divergence);
    } else {
      (void)engine.explore(b->tests[ti]);
    }

    std::vector<cds::obs::PhaseSpan> phases;
    if (parallel) {
      // Per-shard spans on the coordinator's wall clock, labeled with the
      // worker slot that ran each shard.
      for (const auto& s : par.spans) {
        phases.push_back(cds::obs::PhaseSpan{
            s.name + " (w" + std::to_string(s.worker) + ")", s.start_seconds,
            s.duration_seconds});
      }
    } else {
      const auto& timers = r.metrics.timers();
      double at = 0.0;
      auto it = timers.find("engine.dfs_phase");
      if (it != timers.end() && it->second.total_ns > 0) {
        phases.push_back(
            cds::obs::PhaseSpan{"dfs", 0.0, it->second.total_seconds()});
        at = it->second.total_seconds();
      }
      it = timers.find("engine.sampling_phase");
      if (it != timers.end() && it->second.total_ns > 0) {
        phases.push_back(
            cds::obs::PhaseSpan{"sampling", at, it->second.total_seconds()});
      }
    }

    std::string err;
    if (!cds::obs::write_chrome_trace_file(
            trace_out, engine.trace(),
            [&engine](std::uint32_t loc) {
              const char* n = engine.location_name(loc);
              return n != nullptr ? std::string(n)
                                  : "loc" + std::to_string(loc);
            },
            phases, &err)) {
      std::fprintf(stderr, "cdsspec-run: cannot write '%s': %s\n",
                   trace_out.c_str(), err.c_str());
    } else {
      std::printf("wrote chrome trace: %s (%zu events%s; open in Perfetto "
                  "or chrome://tracing)\n",
                  trace_out.c_str(), engine.trace().size(),
                  pick != nullptr ? ", violating execution" : "");
    }
  }
  cds::inject::clear_injection();
  return exit_code_for(r.verdict);
}
