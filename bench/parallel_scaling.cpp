// Parallel exploration scaling: exhaustive DFS behavior collection on two
// widened seed litmus shapes at --jobs 1/2/4/8, reported as executions/sec
// and speedup over the serial run (BENCH_parallel.json).
//
// The sharded run enumerates exactly the serial run's executions (disjoint
// subtree prefixes; see src/mc/shard.h), so speedup is pure wall-clock —
// the bench asserts the execution counts and behavior sets agree before
// reporting. The host CPU count is recorded alongside: on a single-core
// container the workers serialize and speedup ~1x is the honest result;
// the nightly CI runners are multi-core.
//
// A distributed point (--dist-workers analog: socket coordinator plus
// forked workers, src/dist/) is appended per shape and held to the same
// bar: merged executions must equal the serial count with zero failed
// shards, so the nightly artifact tracks protocol overhead honestly.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "bench/bench_shapes.h"
#include "dist/coordinator.h"
#include "fuzz/oracle.h"
#include "fuzz/program.h"
#include "harness/runner.h"

namespace {

using cds_bench::Shape;

struct Point {
  int jobs;
  double seconds;
  double execs_per_sec;
  double speedup;
  std::uint64_t executions;
};

int cpu_count() {
#if defined(__unix__) || defined(__APPLE__)
  long n = sysconf(_SC_NPROCESSORS_ONLN);
  return n > 0 ? static_cast<int>(n) : 1;
#else
  return 1;
#endif
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_parallel.json";
  const int jobs_axis[] = {1, 2, 4, 8};
  const int ncpu = cpu_count();

  std::string json = "{\n";
  json += "  \"bench\": \"parallel_scaling\",\n";
  json += "  \"cpus\": " + std::to_string(ncpu) + ",\n";
  json += "  \"shapes\": [\n";

  bool first_shape = true;
  for (const Shape& s : cds_bench::kBenchShapes) {
    cds::fuzz::Program p;
    std::string err;
    if (!cds::fuzz::Program::parse(s.text, &p, &err)) {
      std::fprintf(stderr, "parallel_scaling: bad shape %s: %s\n", s.name,
                   err.c_str());
      return 1;
    }
    std::printf("%s:\n", s.name);
    std::vector<Point> points;
    cds::fuzz::McBehaviors serial;
    for (int jobs : jobs_axis) {
      cds::fuzz::OracleConfig cfg;
      cfg.jobs = jobs;
      auto t0 = std::chrono::steady_clock::now();
      cds::fuzz::McBehaviors r = cds::fuzz::mc_behaviors(p, cfg);
      auto t1 = std::chrono::steady_clock::now();
      double secs = std::chrono::duration<double>(t1 - t0).count();
      if (jobs == 1) {
        serial = r;
      } else if (r.behaviors != serial.behaviors ||
                 r.executions != serial.executions ||
                 r.exhausted != serial.exhausted) {
        std::fprintf(stderr,
                     "parallel_scaling: jobs=%d diverged from serial on %s\n",
                     jobs, s.name);
        return 1;
      }
      Point pt;
      pt.jobs = jobs;
      pt.seconds = secs;
      pt.executions = r.executions;
      pt.execs_per_sec = secs > 0 ? static_cast<double>(r.executions) / secs
                                  : 0.0;
      pt.speedup = points.empty() || secs <= 0
                       ? 1.0
                       : points.front().seconds / secs;
      points.push_back(pt);
      std::printf("  jobs=%d  %8llu execs  %7.3fs  %10.0f execs/s  %.2fx\n",
                  jobs, static_cast<unsigned long long>(r.executions), secs,
                  pt.execs_per_sec, pt.speedup);
    }

    // Distributed axis: the same shape through the socket
    // coordinator/worker path. The behavior set lives in the forked
    // workers' memory, so only the counter identity is checkable here;
    // the dist test suite covers the rest.
    const int dist_workers = 4;
    double dist_secs = 0.0;
    std::uint64_t dist_failed = 0;
    {
      std::vector<std::uint64_t> obs;
      cds::harness::Benchmark b;
      b.name = s.name;
      b.display = s.name;
      b.spec = nullptr;
      b.tests.push_back(p.test_fn(&obs));
      cds::harness::RunOptions opts;
      // Mirror the oracle path's engine config (fuzz::engine_config): the
      // identity assertion below compares against the jobs=1 oracle run, so
      // the dist workers must explore under the same stale bound and seed.
      cds::fuzz::OracleConfig ocfg;
      opts.engine.max_steps = ocfg.max_steps;
      opts.engine.stale_read_bound = ocfg.stale_read_bound;
      opts.engine.collect_trace = false;
      opts.engine.seed = ocfg.seed;
      cds::dist::DistOptions d;
      d.dist_workers = dist_workers;
      auto t0 = std::chrono::steady_clock::now();
      cds::dist::DistRunResult r =
          cds::dist::run_benchmark_distributed(b, opts, d);
      auto t1 = std::chrono::steady_clock::now();
      dist_secs = std::chrono::duration<double>(t1 - t0).count();
      dist_failed = r.failed_shards;
      if (r.merged.mc.executions != serial.executions ||
          r.merged.mc.exhausted != serial.exhausted ||
          r.failed_shards != 0) {
        std::fprintf(stderr,
                     "parallel_scaling: dist-workers=%d diverged from serial "
                     "on %s (execs %llu vs %llu, failed shards %llu)\n",
                     dist_workers, s.name,
                     static_cast<unsigned long long>(r.merged.mc.executions),
                     static_cast<unsigned long long>(serial.executions),
                     static_cast<unsigned long long>(r.failed_shards));
        return 1;
      }
      std::printf(
          "  dist=%d  %8llu execs  %7.3fs  %10.0f execs/s  %.2fx\n",
          dist_workers, static_cast<unsigned long long>(serial.executions),
          dist_secs,
          dist_secs > 0 ? static_cast<double>(serial.executions) / dist_secs
                        : 0.0,
          dist_secs > 0 && !points.empty()
              ? points.front().seconds / dist_secs
              : 1.0);
    }

    json += first_shape ? "    {\n" : "    ,{\n";
    first_shape = false;
    json += "      \"name\": \"" + std::string(s.name) + "\",\n";
    json += "      \"executions\": " + std::to_string(serial.executions) +
            ",\n";
    json += "      \"exhausted\": ";
    json += serial.exhausted ? "true" : "false";
    json += ",\n      \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
      // More workers than cores: the point measures scheduling contention,
      // not parallel speedup. Flag it so BENCH_parallel.json consumers
      // (and the nightly regression check) stop reading sub-1.0 speedups
      // on saturated hosts as meaningful.
      const bool saturated = ncpu < points[i].jobs;
      char buf[256];
      std::snprintf(buf, sizeof buf,
                    "        {\"jobs\": %d, \"seconds\": %.4f, "
                    "\"execs_per_sec\": %.1f, \"speedup\": %.3f, "
                    "\"saturated\": %s}%s\n",
                    points[i].jobs, points[i].seconds,
                    points[i].execs_per_sec, points[i].speedup,
                    saturated ? "true" : "false",
                    i + 1 < points.size() ? "," : "");
      json += buf;
    }
    json += "      ],\n";
    {
      char buf[256];
      std::snprintf(
          buf, sizeof buf,
          "      \"distributed\": {\"workers\": %d, \"seconds\": %.4f, "
          "\"execs_per_sec\": %.1f, \"speedup\": %.3f, "
          "\"failed_shards\": %llu, \"saturated\": %s}\n",
          dist_workers, dist_secs,
          dist_secs > 0 ? static_cast<double>(serial.executions) / dist_secs
                        : 0.0,
          dist_secs > 0 && !points.empty()
              ? points.front().seconds / dist_secs
              : 1.0,
          static_cast<unsigned long long>(dist_failed),
          ncpu < dist_workers ? "true" : "false");
      json += buf;
    }
    json += "    }\n";
  }
  json += "  ]\n}\n";

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "parallel_scaling: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
