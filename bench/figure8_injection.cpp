// Reproduces paper Figure 8: the memory-order bug-injection experiment.
// Every memory-order parameter the unit tests exercise is weakened to the
// next-weaker parameter, one per trial, and the detection is classified as
// Built-in (data race / uninitialized load / deadlock), Admissibility, or
// Assertion — with the paper's counts alongside.
#include <cstdio>
#include <string>

#include "bench/paper_refs.h"
#include "ds/suite.h"
#include "harness/runner.h"

int main(int argc, char** argv) {
  bool verbose = argc > 1 && std::string(argv[1]) == "-v";
  cds::ds::register_all_benchmarks();

  std::printf("Figure 8 — bug-injection detection results\n\n");
  std::printf("%-20s | %-28s | %-28s\n", "", "paper", "ours");
  std::printf("%-20s | %4s %5s %5s %6s %5s | %4s %5s %5s %6s %5s\n",
              "Benchmark", "#Inj", "#Blt", "#Adm", "#Asrt", "Rate", "#Inj",
              "#Blt", "#Adm", "#Asrt", "Rate");
  std::printf("%.*s\n", 112,
              "--------------------------------------------------------------"
              "--------------------------------------------------");

  int tot_inj = 0, tot_detected = 0;
  for (const auto& row : cds::bench::kFigure8) {
    const auto* b = cds::harness::find_benchmark(row.benchmark);
    if (b == nullptr) {
      std::printf("%-20s | MISSING\n", row.display);
      continue;
    }
    cds::harness::RunOptions opts;
    opts.engine.max_executions = 500000;
    opts.engine.stop_on_first_violation = true;
    auto sum = cds::harness::run_injection_experiment(*b, opts);
    tot_inj += sum.injections;
    tot_detected += sum.injections - sum.undetected;
    std::printf("%-20s | %4d %5d %5d %6d %4d%% | %4d %5d %5d %6d %4.0f%%\n",
                row.display, row.paper_injections, row.paper_builtin,
                row.paper_admissibility, row.paper_assertion,
                row.paper_rate_pct, sum.injections, sum.builtin,
                sum.admissibility, sum.assertion, sum.detection_rate() * 100);
    if (verbose) {
      for (const auto& o : sum.outcomes) {
        std::printf("    %-45s %-8s -> %s\n", o.site.name.c_str(),
                    to_string(o.site.def), cds::harness::to_string(o.how));
      }
    }
  }
  std::printf("\nTotal: %d injections, %d detected (%.0f%%; paper: 57 "
              "injections, 93%%)\n",
              tot_inj, tot_detected,
              tot_inj ? 100.0 * tot_detected / tot_inj : 0.0);
  std::printf("(run with -v for per-site outcomes)\n");
  return 0;
}
