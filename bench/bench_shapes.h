// The two widened litmus shapes the nightly benchmark artifacts report on.
// Shared by parallel_scaling (BENCH_parallel.json) and checker_micro
// (BENCH_engine.json) so both artifacts always describe the same programs.
//
// Widened variants of the seed corpus shapes (tests/corpus/): enough
// threads and conflicting operations that the DFS tree dwarfs fork and
// shard-probe overhead.
#ifndef CDS_BENCH_BENCH_SHAPES_H
#define CDS_BENCH_BENCH_SHAPES_H

namespace cds_bench {

struct Shape {
  const char* name;
  const char* text;
};

inline constexpr Shape kBenchShapes[] = {
    {"mp_relacq_wide",
     "litmus v1\n"
     "locations 3\n"
     "t0 store x 1 relaxed\n"
     "t0 store y 1 release\n"
     "t1 store z 1 release\n"
     "t1 store x 2 relaxed\n"
     "t2 load y acquire\n"
     "t2 load x relaxed\n"
     "t2 load z relaxed\n"
     "t2 load x relaxed\n"
     "t3 load z acquire\n"
     "t3 load x relaxed\n"
     "t3 load y relaxed\n"
     "t3 load x relaxed\n"},
    {"casloop_wide",
     "litmus v1\n"
     "locations 3\n"
     "t0 cas x 0 1 acq_rel relaxed\n"
     "t0 store y 1 release\n"
     "t1 cas x 0 2 seq_cst acquire\n"
     "t1 store z 1 release\n"
     "t2 load y acquire\n"
     "t2 load z relaxed\n"
     "t2 load x relaxed\n"
     "t2 load z relaxed\n"
     "t3 load z acquire\n"
     "t3 load y relaxed\n"
     "t3 load x relaxed\n"
     "t3 load y relaxed\n"
     "t3 load z relaxed\n"},
};

}  // namespace cds_bench

#endif  // CDS_BENCH_BENCH_SHAPES_H
