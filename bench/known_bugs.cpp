// Reproduces paper Section 6.4.1: the three known bugs.
//   - M&S queue: two memory-order bugs found by AutoMO — exposed here as
//     specification violations (dequeue incorrectly returns empty /
//     violates FIFO), not by the built-in checks.
//   - Chase-Lev deque: the published C11 adaptation's resize bug found by
//     CDSChecker — exposed (a) as an uninitialized load, and (b) with the
//     new arrays initialized, as a spec violation (steal returns the wrong
//     item).
#include <cstdio>

#include "ds/chaselev_deque.h"
#include "ds/msqueue.h"
#include "harness/runner.h"

namespace {

void report(const char* name, const cds::harness::RunResult& r,
            const char* expect) {
  std::printf("%-46s builtin=%-3s admissibility=%-3s assertion=%-3s   (%s)\n",
              name, r.detected_builtin() ? "YES" : "no",
              r.detected_admissibility() ? "YES" : "no",
              r.detected_assertion() ? "YES" : "no", expect);
  if (!r.reports.empty()) {
    std::printf("  first diagnostic:\n    %.300s\n",
                r.reports[0].substr(0, 300).c_str());
  }
}

}  // namespace

int main() {
  std::printf("Section 6.4.1 — known bugs\n\n");
  cds::harness::RunOptions opts;
  opts.engine.stop_on_first_violation = true;

  report("M&S queue: enqueue publish bug (AutoMO)",
         run_with_spec(cds::ds::msqueue_buggy_test(
             cds::ds::MSQueue::Variant::kBugEnq), opts),
         "paper: spec violation, missed by CDSChecker alone");
  report("M&S queue: dequeue next-load bug (AutoMO)",
         run_with_spec(cds::ds::msqueue_buggy_test(
             cds::ds::MSQueue::Variant::kBugDeq), opts),
         "paper: spec violation, missed by CDSChecker alone");
  report("Chase-Lev deque: resize bug, raw arrays",
         run_with_spec(cds::ds::chaselev_buggy_test(/*init_arrays=*/false),
                       opts),
         "paper: uninitialized load (CDSChecker built-in)");
  report("Chase-Lev deque: resize bug, arrays pre-initialized",
         run_with_spec(cds::ds::chaselev_buggy_test(/*init_arrays=*/true),
                       opts),
         "paper: spec violation (steal returns wrong item)");
  return 0;
}
