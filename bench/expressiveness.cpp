// Reproduces paper Sections 6.1/6.2: specification expressiveness and ease
// of use. The paper reports, over its benchmark suite: 11.5 lines of
// specification per benchmark, 27 API methods with 33 ordering points
// (1.22 per method, one line each), and 7 admissibility lines in 1,253
// lines of implementation.
#include <cstdio>

#include "ds/suite.h"
#include "harness/runner.h"

int main() {
  cds::ds::register_all_benchmarks();

  // Ordering-point sites are counted when annotations execute: run each
  // benchmark briefly so every annotation site registers.
  cds::harness::RunOptions opts;
  opts.engine.max_executions = 500;
  for (const auto& b : cds::harness::benchmarks()) {
    (void)cds::harness::run_benchmark(b, opts);
  }

  std::printf("Sections 6.1/6.2 — specification expressiveness\n\n");
  std::printf("%-28s %8s %10s %10s %10s\n", "Benchmark", "methods",
              "spec LoC", "OP sites", "admit LoC");
  std::printf("%.*s\n", 70,
              "--------------------------------------------------------------"
              "--------");

  int nb = 0, methods = 0, lines = 0, ops = 0, admits = 0;
  for (const auto& b : cds::harness::benchmarks()) {
    const auto* sp = b.spec;
    std::printf("%-28s %8d %10d %10d %10d\n", b.display.c_str(),
                sp->method_count(), sp->spec_lines(),
                sp->ordering_point_sites(), sp->admissibility_lines());
    ++nb;
    methods += sp->method_count();
    lines += sp->spec_lines();
    ops += sp->ordering_point_sites();
    admits += sp->admissibility_lines();
  }
  std::printf("\nTotals over %d benchmarks: %d methods, %d spec lines "
              "(%.1f/benchmark), %d ordering-point sites (%.2f/method), %d "
              "admissibility lines\n",
              nb, methods, lines, static_cast<double>(lines) / nb, ops,
              static_cast<double>(ops) / methods, admits);
  std::printf("paper: 27 methods, 11.5 spec lines/benchmark, 33 ordering "
              "points (1.22/method), 7 admissibility lines\n");
  return 0;
}
