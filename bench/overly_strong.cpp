// Reproduces paper Section 6.4.3: finding overly strong memory-order
// parameters. Injection trials whose weakening triggers NO violation are
// candidates for relaxation; the paper's finding — the seq_cst CAS on top
// in the Chase-Lev deque's take() can be relaxed (confirmed by the
// original authors) — must appear in this list.
#include <cstdio>

#include "ds/suite.h"
#include "harness/runner.h"

int main() {
  cds::ds::register_all_benchmarks();

  std::printf("Section 6.4.3 — overly strong memory-order candidates\n");
  std::printf("(injections that trigger no violation on any unit test)\n\n");

  cds::harness::RunOptions opts;
  opts.engine.max_executions = 500000;
  opts.engine.stop_on_first_violation = true;

  bool found_paper_site = false;
  for (const auto& b : cds::harness::benchmarks()) {
    auto sum = cds::harness::run_injection_experiment(b, opts);
    for (const auto& o : sum.outcomes) {
      if (o.how != cds::harness::Detection::kNone) continue;
      std::printf("  %-20s %-40s %s -> %s\n", b.display.c_str(),
                  o.site.name.c_str(), to_string(o.site.def),
                  to_string(o.site.weakened()));
      if (b.name == "chase-lev-deque" && o.site.name == "take: top CAS") {
        found_paper_site = true;
      }
    }
  }
  std::printf("\npaper's confirmed finding — Chase-Lev 'take: top CAS' "
              "(seq_cst, relaxable): %s\n",
              found_paper_site ? "REPRODUCED (undetected as expected)"
                               : "NOT reproduced");
  return 0;
}
