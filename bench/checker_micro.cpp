// Engine micro-benchmarks (google-benchmark): the primitive costs behind
// Figure 7's wall-clock numbers — vector-clock joins, history message
// scans, topological-sort enumeration, and end-to-end exploration
// throughput on small litmus tests.
//
// `checker_micro --engine-json <path>` skips google-benchmark and instead
// emits BENCH_engine.json: exhaustive-exploration throughput (execs/sec)
// and rf-class counters for both BENCH_parallel.json shapes under both
// --explore modes, asserting the two modes' behavior sets are identical.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_shapes.h"
#include "ds/msqueue.h"
#include "fuzz/oracle.h"
#include "fuzz/program.h"
#include "harness/runner.h"
#include "mc/atomic.h"
#include "mc/engine.h"
#include "spec/history.h"
#include "support/vector_clock.h"

namespace {

void BM_VectorClockJoin(benchmark::State& state) {
  cds::support::VectorClock a, b;
  for (std::size_t i = 0; i < static_cast<std::size_t>(state.range(0)); ++i) {
    a.set(i, static_cast<std::uint32_t>(i * 3));
    b.set(i, static_cast<std::uint32_t>(i * 2 + 7));
  }
  for (auto _ : state) {
    cds::support::VectorClock c = a;
    c.join(b);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_VectorClockJoin)->Arg(4)->Arg(16)->Arg(64);

void BM_ExploreStoreBuffering(benchmark::State& state) {
  for (auto _ : state) {
    cds::mc::Engine e;
    auto stats = e.explore([](cds::mc::Exec& x) {
      auto* fx = x.make<cds::mc::Atomic<int>>(0, "x");
      auto* fy = x.make<cds::mc::Atomic<int>>(0, "y");
      int t1 = x.spawn([fx, fy] {
        fx->store(1, cds::mc::MemoryOrder::relaxed);
        (void)fy->load(cds::mc::MemoryOrder::relaxed);
      });
      int t2 = x.spawn([fx, fy] {
        fy->store(1, cds::mc::MemoryOrder::relaxed);
        (void)fx->load(cds::mc::MemoryOrder::relaxed);
      });
      x.join(t1);
      x.join(t2);
    });
    state.counters["executions"] = static_cast<double>(stats.executions);
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_ExploreStoreBuffering);

void BM_ExploreMSQueueWithSpec(benchmark::State& state) {
  for (auto _ : state) {
    auto r = cds::harness::run_with_spec(cds::ds::msqueue_test_1p1c);
    state.counters["executions"] = static_cast<double>(r.mc.executions);
    state.counters["histories"] = static_cast<double>(r.spec.histories_checked);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ExploreMSQueueWithSpec)->Unit(benchmark::kMillisecond);

void BM_TopoSortEnumeration(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<cds::spec::CallRecord> recs(static_cast<std::size_t>(n));
  std::vector<const cds::spec::CallRecord*> calls;
  for (auto& r : recs) calls.push_back(&r);
  std::vector<std::vector<int>> succ(static_cast<std::size_t>(n));
  for (int i = 0; i + 2 < n; i += 2) succ[static_cast<std::size_t>(i)].push_back(i + 2);
  for (auto _ : state) {
    std::uint64_t count = 0;
    cds::spec::for_each_topo_order(
        calls, succ, 100000,
        [&](const std::vector<const cds::spec::CallRecord*>&) {
          ++count;
          return true;
        });
    benchmark::DoNotOptimize(count);
    state.counters["orders"] = static_cast<double>(count);
  }
}
BENCHMARK(BM_TopoSortEnumeration)->Arg(4)->Arg(6)->Arg(8);

int emit_engine_json(const char* out_path) {
  std::string json = "{\n  \"bench\": \"engine_micro\",\n  \"shapes\": [\n";
  bool first_shape = true;
  for (const cds_bench::Shape& s : cds_bench::kBenchShapes) {
    cds::fuzz::Program p;
    std::string err;
    if (!cds::fuzz::Program::parse(s.text, &p, &err)) {
      std::fprintf(stderr, "checker_micro: bad shape %s: %s\n", s.name,
                   err.c_str());
      return 1;
    }
    std::printf("%s:\n", s.name);
    json += first_shape ? "    {\n" : "    ,{\n";
    first_shape = false;
    json += "      \"name\": \"" + std::string(s.name) + "\",\n";
    json += "      \"modes\": [\n";
    cds::fuzz::BehaviorSet sets[2];
    std::uint64_t execs[2] = {0, 0};
    const cds::mc::ExploreMode modes[2] = {cds::mc::ExploreMode::kSchedule,
                                           cds::mc::ExploreMode::kRf};
    for (int m = 0; m < 2; ++m) {
      cds::fuzz::OracleConfig cfg;
      cfg.explore = modes[m];
      auto t0 = std::chrono::steady_clock::now();
      cds::fuzz::McBehaviors r = cds::fuzz::mc_behaviors(p, cfg);
      auto t1 = std::chrono::steady_clock::now();
      double secs = std::chrono::duration<double>(t1 - t0).count();
      if (!r.exhausted) {
        std::fprintf(stderr, "checker_micro: %s (%s) hit a cap\n", s.name,
                     to_string(modes[m]));
        return 1;
      }
      sets[m] = r.behaviors;
      execs[m] = r.executions;
      char buf[320];
      std::snprintf(buf, sizeof buf,
                    "        {\"mode\": \"%s\", \"executions\": %llu, "
                    "\"rf_classes\": %llu, \"rf_infeasible\": %llu, "
                    "\"behaviors\": %zu, \"seconds\": %.4f, "
                    "\"execs_per_sec\": %.1f}%s\n",
                    to_string(modes[m]),
                    static_cast<unsigned long long>(r.executions),
                    static_cast<unsigned long long>(r.rf_classes),
                    static_cast<unsigned long long>(r.rf_infeasible),
                    r.behaviors.size(), secs,
                    secs > 0 ? static_cast<double>(r.executions) / secs : 0.0,
                    m == 0 ? "," : "");
      json += buf;
      std::printf("  %-9s %8llu execs  %5zu behaviors  %7.3fs\n",
                  to_string(modes[m]),
                  static_cast<unsigned long long>(r.executions),
                  r.behaviors.size(), secs);
    }
    if (sets[0] != sets[1]) {
      std::fprintf(stderr,
                   "checker_micro: rf and schedule behavior sets diverged on "
                   "%s (%zu vs %zu behaviors)\n",
                   s.name, sets[0].size(), sets[1].size());
      return 1;
    }
    std::printf("  reduction %.1fx, behavior sets identical\n",
                execs[1] > 0 ? static_cast<double>(execs[0]) /
                                   static_cast<double>(execs[1])
                             : 0.0);
    json += "      ]\n    }\n";
  }
  json += "  ]\n}\n";
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "checker_micro: cannot write %s\n", out_path);
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--engine-json") == 0) {
      return emit_engine_json(argv[i + 1]);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
