// Engine micro-benchmarks (google-benchmark): the primitive costs behind
// Figure 7's wall-clock numbers — vector-clock joins, history message
// scans, topological-sort enumeration, and end-to-end exploration
// throughput on small litmus tests.
#include <benchmark/benchmark.h>

#include "ds/msqueue.h"
#include "harness/runner.h"
#include "mc/atomic.h"
#include "mc/engine.h"
#include "spec/history.h"
#include "support/vector_clock.h"

namespace {

void BM_VectorClockJoin(benchmark::State& state) {
  cds::support::VectorClock a, b;
  for (std::size_t i = 0; i < static_cast<std::size_t>(state.range(0)); ++i) {
    a.set(i, static_cast<std::uint32_t>(i * 3));
    b.set(i, static_cast<std::uint32_t>(i * 2 + 7));
  }
  for (auto _ : state) {
    cds::support::VectorClock c = a;
    c.join(b);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_VectorClockJoin)->Arg(4)->Arg(16)->Arg(64);

void BM_ExploreStoreBuffering(benchmark::State& state) {
  for (auto _ : state) {
    cds::mc::Engine e;
    auto stats = e.explore([](cds::mc::Exec& x) {
      auto* fx = x.make<cds::mc::Atomic<int>>(0, "x");
      auto* fy = x.make<cds::mc::Atomic<int>>(0, "y");
      int t1 = x.spawn([fx, fy] {
        fx->store(1, cds::mc::MemoryOrder::relaxed);
        (void)fy->load(cds::mc::MemoryOrder::relaxed);
      });
      int t2 = x.spawn([fx, fy] {
        fy->store(1, cds::mc::MemoryOrder::relaxed);
        (void)fx->load(cds::mc::MemoryOrder::relaxed);
      });
      x.join(t1);
      x.join(t2);
    });
    state.counters["executions"] = static_cast<double>(stats.executions);
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_ExploreStoreBuffering);

void BM_ExploreMSQueueWithSpec(benchmark::State& state) {
  for (auto _ : state) {
    auto r = cds::harness::run_with_spec(cds::ds::msqueue_test_1p1c);
    state.counters["executions"] = static_cast<double>(r.mc.executions);
    state.counters["histories"] = static_cast<double>(r.spec.histories_checked);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ExploreMSQueueWithSpec)->Unit(benchmark::kMillisecond);

void BM_TopoSortEnumeration(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<cds::spec::CallRecord> recs(static_cast<std::size_t>(n));
  std::vector<const cds::spec::CallRecord*> calls;
  for (auto& r : recs) calls.push_back(&r);
  std::vector<std::vector<int>> succ(static_cast<std::size_t>(n));
  for (int i = 0; i + 2 < n; i += 2) succ[static_cast<std::size_t>(i)].push_back(i + 2);
  for (auto _ : state) {
    std::uint64_t count = 0;
    cds::spec::for_each_topo_order(
        calls, succ, 100000,
        [&](const std::vector<const cds::spec::CallRecord*>&) {
          ++count;
          return true;
        });
    benchmark::DoNotOptimize(count);
    state.counters["orders"] = static_cast<double>(count);
  }
}
BENCHMARK(BM_TopoSortEnumeration)->Arg(4)->Arg(6)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
