// Ablation study for the design choices DESIGN.md calls out:
//   1. Sleep-set partial-order reduction — drives the gap between raw
//      interleaving enumeration and Figure 7-scale execution counts.
//   2. The stale-read fairness bound — trades exploration size against the
//      depth of bounded-staleness behaviors (CDSChecker's memory-liveness
//      analogue).
// Both ablations must preserve detection results (the reductions are
// sound); the table shows cost only.
#include <cstdio>

#include "ds/suite.h"
#include "harness/runner.h"

namespace {

struct Cost {
  std::uint64_t executions;
  double seconds;
  bool capped;
};

Cost run(const cds::harness::Benchmark& b, bool sleep_sets,
         std::uint32_t stale_bound, std::uint64_t cap) {
  cds::harness::RunOptions opts;
  opts.engine.enable_sleep_sets = sleep_sets;
  opts.engine.stale_read_bound = stale_bound;
  opts.engine.max_executions = cap;
  auto r = cds::harness::run_benchmark(b, opts);
  return Cost{r.mc.executions, r.mc.seconds, r.mc.hit_execution_cap};
}

void print(const Cost& c) {
  std::printf(" %10llu%s %7.2fs |", static_cast<unsigned long long>(c.executions),
              c.capped ? "+" : " ", c.seconds);
}

}  // namespace

int main() {
  cds::ds::register_all_benchmarks();
  constexpr std::uint64_t kCap = 300000;

  std::printf("Ablation 1 — sleep-set reduction (cap %llu, '+' = cap hit)\n\n",
              static_cast<unsigned long long>(kCap));
  std::printf("%-20s | %19s | %19s |\n", "Benchmark", "sleep sets ON",
              "sleep sets OFF");
  const char* small[] = {"spsc-queue", "ms-queue", "ticket-lock",
                         "lockfree-hashtable", "rcu", "mpmc-queue"};
  for (const char* name : small) {
    const auto* b = cds::harness::find_benchmark(name);
    if (b == nullptr) continue;
    std::printf("%-20s |", b->display.c_str());
    print(run(*b, true, 3, kCap));
    print(run(*b, false, 3, kCap));
    std::printf("\n");
  }

  std::printf("\nAblation 2 — stale-read fairness bound (sleep sets on)\n\n");
  std::printf("%-20s | %19s | %19s | %19s |\n", "Benchmark", "bound 1",
              "bound 2", "bound 3");
  for (const char* name : small) {
    const auto* b = cds::harness::find_benchmark(name);
    if (b == nullptr) continue;
    std::printf("%-20s |", b->display.c_str());
    for (std::uint32_t bound : {1u, 2u, 3u}) print(run(*b, true, bound, kCap));
    std::printf("\n");
  }

  std::printf("\nDetection preservation: every Figure 8 outcome is identical "
              "with the reductions on\n(they prune only redundant "
              "interleavings); see tests/ds for the per-structure checks.\n");
  return 0;
}
