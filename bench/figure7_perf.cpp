// Reproduces paper Figure 7: per-benchmark exploration counts (total and
// feasible executions) and wall-clock time for the unit-test suites, with
// the paper's values printed for shape comparison.
#include <cstdio>

#include "bench/paper_refs.h"
#include "ds/suite.h"
#include "harness/runner.h"

int main() {
  cds::ds::register_all_benchmarks();

  std::printf("Figure 7 — specification-checking performance\n");
  std::printf(
      "(paper columns from an Intel Xeon E3-1246 v3 running CDSChecker; our "
      "substrate\n is the operational explorer described in DESIGN.md — "
      "compare shapes, not values)\n\n");
  std::printf("%-20s | %12s %12s %9s | %12s %12s %9s\n", "Benchmark",
              "paper #Exec", "paper #Feas", "paper s", "ours #Exec",
              "ours #Feas", "ours s");
  std::printf("%.*s\n", 98,
              "--------------------------------------------------------------"
              "----------------------------------------");

  double total_secs = 0;
  for (const auto& row : cds::bench::kFigure7) {
    const auto* b = cds::harness::find_benchmark(row.benchmark);
    if (b == nullptr) {
      std::printf("%-20s | MISSING\n", row.display);
      continue;
    }
    cds::harness::RunOptions opts;
    opts.engine.max_executions = 2000000;
    auto r = cds::harness::run_benchmark(*b, opts);
    total_secs += r.mc.seconds;
    std::printf("%-20s | %12llu %12llu %9.2f | %12llu %12llu %9.2f%s\n",
                row.display,
                static_cast<unsigned long long>(row.paper_executions),
                static_cast<unsigned long long>(row.paper_feasible),
                row.paper_seconds,
                static_cast<unsigned long long>(r.mc.executions),
                static_cast<unsigned long long>(r.mc.feasible), r.mc.seconds,
                r.mc.violations_total != 0 ? "  [VIOLATIONS!]" : "");
  }
  std::printf("\nTotal wall-clock: %.2fs (paper: all benchmarks within 14s; "
              "9/10 within 5s)\n", total_secs);
  return 0;
}
