// Reference values from the paper's evaluation (Figures 7 and 8), printed
// alongside our measurements for shape comparison. Absolute numbers are
// not expected to match: the substrate is a different (operational) model
// checker on different hardware; the comparison is about ordering and
// detection behavior.
#ifndef CDS_BENCH_PAPER_REFS_H
#define CDS_BENCH_PAPER_REFS_H

#include <cstdint>
#include <string>

namespace cds::bench {

struct Figure7Row {
  const char* benchmark;  // harness key
  const char* display;
  std::uint64_t paper_executions;
  std::uint64_t paper_feasible;
  double paper_seconds;
};

inline constexpr Figure7Row kFigure7[] = {
    {"chase-lev-deque", "Chase-Lev Deque", 893, 158, 0.10},
    {"spsc-queue", "SPSC Queue", 18, 15, 0.01},
    {"rcu", "RCU", 47, 18, 0.01},
    {"lockfree-hashtable", "Lockfree Hashtable", 6, 6, 0.01},
    {"mcs-lock", "MCS Lock", 21126, 13786, 3.00},
    {"mpmc-queue", "MPMC Queue", 2911, 1274, 4.83},
    {"ms-queue", "M&S Queue", 296, 150, 0.03},
    {"linux-rwlock", "Linux RW Lock", 69386, 1822, 13.71},
    {"seqlock", "Seqlock", 89, 36, 0.01},
    {"ticket-lock", "Ticket Lock", 1790, 978, 0.17},
};

struct Figure8Row {
  const char* benchmark;
  const char* display;
  int paper_injections;
  int paper_builtin;
  int paper_admissibility;
  int paper_assertion;
  int paper_rate_pct;
};

inline constexpr Figure8Row kFigure8[] = {
    {"chase-lev-deque", "Chase-Lev Deque", 7, 3, 0, 4, 100},
    {"spsc-queue", "SPSC Queue", 2, 0, 0, 2, 100},
    {"rcu", "RCU", 3, 3, 0, 0, 100},
    {"lockfree-hashtable", "Lockfree Hashtable", 4, 2, 0, 2, 100},
    {"mcs-lock", "MCS Lock", 8, 4, 0, 4, 100},
    {"mpmc-queue", "MPMC Queue", 8, 0, 4, 0, 50},
    {"ms-queue", "M&S Queue", 10, 3, 0, 7, 100},
    {"linux-rwlock", "Linux RW Lock", 8, 0, 0, 8, 100},
    {"seqlock", "Seqlock", 5, 0, 0, 5, 100},
    {"ticket-lock", "Ticket Lock", 2, 0, 0, 2, 100},
};

}  // namespace cds::bench

#endif  // CDS_BENCH_PAPER_REFS_H
