// Unit tests for the specc annotation front-end (the paper's specification
// compiler, Figure 5's grammar).
#include <gtest/gtest.h>

#include "specc_lib.h"

namespace cds::specc {
namespace {

constexpr const char* kAnnotated = R"(
/** @DeclareState: IntList *q; */

/** @SideEffect: STATE(q)->push_back(val); */
void enq(int val) {
  while (1) {
    if (t->next.CAS(old, n, release)) {
      /** @OPDefine: true */
      return;
    }
  }
}

/** @SideEffect: S_RET = f();
    @PostCondition: return C_RET == S_RET;
    @JustifyingPostcondition: if (C_RET == -1)
    return S_RET == -1; */
int deq() {
  while (1) {
    Node* n = h->next.load(acquire);
    /** @OPClearDefine: true */
    if (n == NULL) return -1;
  }
}

/** @PreCondition: return true; */
int peek() {
  /** @PotentialOP(A): x > 0 */
  int v = probe();
  /** @OPCheck(A): v != 0 */
  return v;
}

/** @Admit: deq <-> enq (M1->C_RET == -1) */
)";

TEST(Specc, ParsesDeclareState) {
  ParsedSpec s = parse(kAnnotated);
  EXPECT_EQ(s.state_decl, "IntList *q;");
}

TEST(Specc, ParsesMethodsWithClauses) {
  ParsedSpec s = parse(kAnnotated);
  ASSERT_EQ(s.methods.size(), 3u);
  EXPECT_EQ(s.methods[0].name, "enq");
  EXPECT_EQ(s.methods[0].clauses.count("SideEffect"), 1u);
  EXPECT_EQ(s.methods[1].name, "deq");
  EXPECT_EQ(s.methods[1].clauses.count("PostCondition"), 1u);
  EXPECT_EQ(s.methods[1].clauses.count("JustifyingPostcondition"), 1u);
  EXPECT_EQ(s.methods[2].name, "peek");
  EXPECT_EQ(s.methods[2].clauses.count("PreCondition"), 1u);
}

TEST(Specc, ParsesOrderingPoints) {
  ParsedSpec s = parse(kAnnotated);
  ASSERT_EQ(s.ops.size(), 4u);
  EXPECT_EQ(s.ops[0].kind, "OPDefine");
  EXPECT_EQ(s.ops[0].method, "enq");
  EXPECT_EQ(s.ops[1].kind, "OPClearDefine");
  EXPECT_EQ(s.ops[1].method, "deq");
  EXPECT_EQ(s.ops[2].kind, "PotentialOP");
  EXPECT_EQ(s.ops[2].label, "A");
  EXPECT_EQ(s.ops[2].cond, "x > 0");
  EXPECT_EQ(s.ops[3].kind, "OPCheck");
  EXPECT_EQ(s.ops[3].label, "A");
  EXPECT_EQ(s.ops[3].cond, "v != 0");
}

TEST(Specc, ParsesAdmissibilityRule) {
  ParsedSpec s = parse(kAnnotated);
  ASSERT_EQ(s.admits.size(), 1u);
  EXPECT_EQ(s.admits[0].first, "deq <-> enq");
  EXPECT_EQ(s.admits[0].second, "M1->C_RET == -1");
}

TEST(Specc, EmitContainsRegistrationAndPlan) {
  ParsedSpec s = parse(kAnnotated);
  std::string out = emit(s, "unit");
  EXPECT_NE(out.find("cds::spec::Specification(\"unit\")"), std::string::npos);
  EXPECT_NE(out.find("sp->method(\"enq\")"), std::string::npos);
  EXPECT_NE(out.find(".justifying_post("), std::string::npos);
  EXPECT_NE(out.find("sp->admit(\"deq\", \"enq\""), std::string::npos);
  EXPECT_NE(out.find("m.op_define()"), std::string::npos);
  EXPECT_NE(out.find("m.op_clear_define()"), std::string::npos);
  EXPECT_NE(out.find("m.potential_op(A)"), std::string::npos);
  EXPECT_NE(out.find("m.op_check(A)"), std::string::npos);
}

TEST(Specc, EmptyInputProducesEmptySpec) {
  ParsedSpec s = parse("int main() { return 0; }");
  EXPECT_TRUE(s.methods.empty());
  EXPECT_TRUE(s.ops.empty());
  EXPECT_TRUE(s.state_decl.empty());
}

TEST(Specc, TrimHandlesDecoratedComments) {
  ParsedSpec s = parse(
      "/** @SideEffect:\n"
      " *  line_one();\n"
      " *  line_two();\n"
      " */\n"
      "void meth() {}\n");
  ASSERT_EQ(s.methods.size(), 1u);
  EXPECT_EQ(s.methods[0].name, "meth");
  EXPECT_EQ(s.methods[0].clauses.at("SideEffect"), "line_one();\nline_two();");
}

}  // namespace
}  // namespace cds::specc
