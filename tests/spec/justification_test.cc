// Justification-machinery tests: @JustifyingPrecondition, subhistory
// enumeration caps, and the random-sampling fallback for history blowups.
#include <gtest/gtest.h>

#include "harness/runner.h"
#include "mc/atomic.h"
#include "spec/annotations.h"
#include "spec/checker.h"
#include "spec/seqstate.h"
#include "spec/specification.h"

namespace cds {
namespace {

using harness::RunOptions;
using harness::RunResult;
using harness::run_with_spec;
using mc::MemoryOrder;
using spec::Ctx;
using spec::IntList;

// A "consume" method whose non-determinism is constrained by a justifying
// PRE-condition: it may only report success if some justifying subhistory
// has a pending item BEFORE the call runs.
const spec::Specification& consume_spec() {
  static spec::Specification* s = [] {
    auto* sp = new spec::Specification("ConsumeSpec");
    sp->state<IntList>();
    sp->method("produce").side_effect(
        [](Ctx& c) { c.st<IntList>().push_back(c.arg(0)); });
    sp->method("consume")
        .side_effect([](Ctx& c) {
          IntList& q = c.st<IntList>();
          if (c.c_ret() == 1 && !q.empty()) q.pop_front();
        })
        .justifying_pre([](Ctx& c) {
          // success requires a pending item in the subhistory state
          return c.c_ret() != 1 || !c.st<IntList>().empty();
        });
    return sp;
  }();
  return *s;
}

TEST(Justification, JustifyingPreconditionAcceptsLegalSuccess) {
  RunResult r = run_with_spec([](mc::Exec& x) {
    auto* obj = x.make<spec::Object>(consume_spec());
    auto* f = x.make<mc::Atomic<int>>(0, "f");
    {
      spec::Method m(*obj, "produce", {5});
      f->store(1, MemoryOrder::release);
      m.op_define();
    }
    {
      spec::Method m(*obj, "consume");
      (void)f->load(MemoryOrder::acquire);
      m.op_define();
      m.ret(1);  // hb-ordered after the produce: justified
    }
  });
  EXPECT_EQ(r.mc.violations_total, 0u)
      << (r.reports.empty() ? "" : r.reports[0]);
}

TEST(Justification, JustifyingPreconditionRejectsBaselessSuccess) {
  RunResult r = run_with_spec([](mc::Exec& x) {
    auto* obj = x.make<spec::Object>(consume_spec());
    auto* f = x.make<mc::Atomic<int>>(0, "f");
    spec::Method m(*obj, "consume");
    (void)f->load(MemoryOrder::acquire);
    m.op_define();
    m.ret(1);  // nothing was ever produced: unjustifiable success
  });
  EXPECT_TRUE(r.detected_assertion());
  ASSERT_FALSE(r.reports.empty());
  EXPECT_NE(r.reports[0].find("not justified"), std::string::npos);
}

TEST(Justification, HistoryCapTriggersSampling) {
  // Seven mutually-unordered no-op calls: 7! = 5040 histories exceeds a
  // tiny cap; the checker must fall back to sampling and stay clean.
  static spec::Specification* sp = [] {
    auto* s = new spec::Specification("ManyConcurrent");
    s->state<std::int64_t>();
    s->method("nop").side_effect([](Ctx&) {});
    return s;
  }();

  RunOptions opts;
  opts.checker.max_histories = 16;
  opts.checker.sampled_histories = 32;
  mc::Engine engine(opts.engine);
  spec::SpecChecker checker(opts.checker);
  checker.attach(engine);
  auto stats = engine.explore([](mc::Exec& x) {
    struct Locs {
      mc::Atomic<int>* p[7];
    };
    auto* obj = x.make<spec::Object>(*sp);
    auto* locs = x.make<Locs>();
    int tids[7];
    for (int i = 0; i < 7; ++i) {
      locs->p[i] = x.make<mc::Atomic<int>>(0, "l");
      tids[i] = x.spawn([obj, locs, i] {
        spec::Method m(*obj, "nop");
        locs->p[i]->store(1, MemoryOrder::relaxed);  // distinct locations
        m.op_define();
      });
    }
    for (int t : tids) x.join(t);
  });
  EXPECT_EQ(stats.violations_total, 0u);
  EXPECT_TRUE(checker.stats().history_cap_hit);
  EXPECT_GT(checker.stats().histories_checked, 16u)
      << "sampling must add histories beyond the exhaustive cap";
  checker.detach();
}

TEST(Justification, TrivialSpecNeverTriggersJustification) {
  // Methods without justifying conditions do not consume justification
  // checks.
  static spec::Specification* sp = [] {
    auto* s = new spec::Specification("NoJust");
    s->state<std::int64_t>();
    s->method("touch").side_effect([](Ctx&) {});
    return s;
  }();
  mc::Engine engine;
  spec::SpecChecker checker;
  checker.attach(engine);
  engine.explore([](mc::Exec& x) {
    auto* obj = x.make<spec::Object>(*sp);
    auto* f = x.make<mc::Atomic<int>>(0, "f");
    spec::Method m(*obj, "touch");
    f->store(1, MemoryOrder::relaxed);
    m.op_define();
  });
  EXPECT_EQ(checker.stats().justification_checks, 0u);
  checker.detach();
}

}  // namespace
}  // namespace cds
