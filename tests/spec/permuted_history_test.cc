// Property test: the spec checker's verdict on a generated sequential
// call history is invariant under reordering of commutative adjacent
// calls — two reads commute, and two writes of the same value commute.
// Swapping such a pair changes the recorded ordering points' order but
// not register semantics, so verdicts (clean or violating) must match.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "harness/runner.h"
#include "mc/atomic.h"
#include "mc/engine.h"
#include "spec/annotations.h"
#include "spec/checker.h"
#include "spec/specification.h"
#include "support/rng.h"

namespace cds {
namespace {

using harness::RunResult;
using harness::run_with_spec;
using mc::MemoryOrder;
using spec::Ctx;

const spec::Specification& register_spec() {
  static spec::Specification* s = [] {
    auto* sp = new spec::Specification("PermRegister");
    sp->state<std::int64_t>();
    sp->method("write").side_effect(
        [](Ctx& c) { c.st<std::int64_t>() = c.arg(0); });
    sp->method("read")
        .side_effect([](Ctx& c) { c.s_ret = c.st<std::int64_t>(); })
        .post([](Ctx& c) { return c.c_ret() == c.s_ret; });
    return sp;
  }();
  return *s;
}

struct Call {
  bool is_write = false;
  int value = 0;  // write argument; ignored for reads
};

// Runs the call sequence on one thread. Reads report the
// register-semantics value (last written, initially 0), except the call
// at `corrupt_at` (if a read), which lies by returning value+1.
RunResult run_sequence(const std::vector<Call>& calls, int corrupt_at = -1) {
  return run_with_spec([&calls, corrupt_at](mc::Exec& x) {
    auto* obj = x.make<spec::Object>(register_spec());
    auto* cell = x.make<mc::Atomic<int>>(0, "reg");
    int last = 0;
    for (std::size_t i = 0; i < calls.size(); ++i) {
      const Call& c = calls[i];
      if (c.is_write) {
        spec::Method m(*obj, "write", {c.value});
        cell->store(c.value, MemoryOrder::release);
        m.op_define();
        m.ret(0);
        last = c.value;
      } else {
        spec::Method m(*obj, "read");
        (void)cell->load(MemoryOrder::acquire);
        m.op_define();
        int ret = last + (static_cast<int>(i) == corrupt_at ? 1 : 0);
        m.ret(ret);
      }
    }
  });
}

std::vector<Call> generate_calls(std::uint64_t seed, int n) {
  support::Xorshift64 rng(seed);
  std::vector<Call> calls;
  for (int i = 0; i < n; ++i) {
    Call c;
    c.is_write = rng.below(2) == 0;
    c.value = static_cast<int>(rng.below(3)) + 1;
    calls.push_back(c);
  }
  return calls;
}

// Adjacent calls commute iff both are reads or both write the same value.
bool commute(const Call& a, const Call& b) {
  if (!a.is_write && !b.is_write) return true;
  return a.is_write && b.is_write && a.value == b.value;
}

struct Verdict {
  std::uint64_t violations;
  bool assertion;
};

Verdict verdict_of(const RunResult& r) {
  return {r.mc.violations_total, r.detected_assertion()};
}

TEST(SpecPermutedHistory, CleanVerdictInvariantUnderCommutativeSwaps) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    std::vector<Call> calls = generate_calls(seed, 6);
    Verdict base = verdict_of(run_sequence(calls));
    EXPECT_EQ(base.violations, 0u) << "honest register must verify";
    for (std::size_t i = 0; i + 1 < calls.size(); ++i) {
      if (!commute(calls[i], calls[i + 1])) continue;
      std::vector<Call> swapped = calls;
      std::swap(swapped[i], swapped[i + 1]);
      Verdict v = verdict_of(run_sequence(swapped));
      EXPECT_EQ(v.violations, base.violations)
          << "seed " << seed << " swap at " << i;
      EXPECT_EQ(v.assertion, base.assertion);
    }
  }
}

TEST(SpecPermutedHistory, ViolationInvariantUnderCommutativeSwaps) {
  // Corrupt one read per sequence; the checker must flag it regardless of
  // how commutative neighbors elsewhere in the history are ordered.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    std::vector<Call> calls = generate_calls(seed, 6);
    int corrupt_at = -1;
    for (std::size_t i = 0; i < calls.size(); ++i) {
      if (!calls[i].is_write) {
        corrupt_at = static_cast<int>(i);
        break;
      }
    }
    if (corrupt_at < 0) continue;  // all-write sequence: nothing to corrupt
    Verdict base = verdict_of(run_sequence(calls, corrupt_at));
    EXPECT_TRUE(base.assertion) << "seed " << seed;
    for (std::size_t i = 0; i + 1 < calls.size(); ++i) {
      if (!commute(calls[i], calls[i + 1])) continue;
      // Keep the corrupted call pinned so the lie itself is unchanged.
      if (static_cast<int>(i) == corrupt_at ||
          static_cast<int>(i + 1) == corrupt_at) {
        continue;
      }
      std::vector<Call> swapped = calls;
      std::swap(swapped[i], swapped[i + 1]);
      Verdict v = verdict_of(run_sequence(swapped, corrupt_at));
      EXPECT_EQ(v.assertion, base.assertion)
          << "seed " << seed << " swap at " << i;
    }
  }
}

}  // namespace
}  // namespace cds
