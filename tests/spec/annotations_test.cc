// Annotation-runtime tests: ordering-point vocabulary (PotentialOP /
// OPCheck / OPClear), spec-line accounting, and the composability of
// per-object checking (paper Section 3.2).
#include <gtest/gtest.h>

#include "harness/runner.h"
#include "mc/atomic.h"
#include "spec/annotations.h"
#include "spec/checker.h"
#include "spec/render.h"
#include "spec/seqstate.h"
#include "spec/specification.h"

namespace cds {
namespace {

using harness::RunResult;
using harness::run_with_spec;
using mc::MemoryOrder;
using spec::Ctx;

const spec::Specification& pair_spec() {
  static spec::Specification* s = [] {
    auto* sp = new spec::Specification("PairSpec");
    sp->state<std::int64_t>();
    sp->method("inc").side_effect([](Ctx& c) { ++c.st<std::int64_t>(); });
    sp->method("get")
        .side_effect([](Ctx& c) { c.s_ret = c.st<std::int64_t>(); })
        .post([](Ctx& c) { return c.c_ret() == c.s_ret; });
    return sp;
  }();
  return *s;
}

TEST(Annotations, PotentialOpPromotedByOpCheck) {
  // Record a potential OP; promote it only on the taken path. The promoted
  // event must order the calls (same-thread ops always ordered, so check
  // cross-thread via a release/acquire pair).
  RunResult r = run_with_spec([](mc::Exec& x) {
    auto* obj = x.make<spec::Object>(pair_spec());
    auto* flag = x.make<mc::Atomic<int>>(0, "flag");
    int t1 = x.spawn([&] {
      spec::Method m(*obj, "inc");
      flag->store(1, MemoryOrder::release);
      m.potential_op(7);
      m.op_check(7);  // condition held: promote
    });
    int t2 = x.spawn([&] {
      spec::Method m(*obj, "get");
      // Spin until the inc is visible so the calls are ordered in every
      // complete execution (unfair spins are livelock-pruned).
      for (;;) {
        if (flag->load(MemoryOrder::acquire) == 1) break;
        mc::yield();
      }
      m.op_clear_define();
      m.ret(1);
    });
    x.join(t1);
    x.join(t2);
  });
  EXPECT_EQ(r.mc.violations_total, 0u)
      << (r.reports.empty() ? "" : r.reports[0]);
}

TEST(Annotations, UnpromotedPotentialOpLeavesCallUnordered) {
  // Without op_check, the potential OP is dropped: the inc call has no
  // ordering points, so it is concurrent with everything — the strict get
  // postcondition then fails in the history that orders get first.
  RunResult r = run_with_spec([](mc::Exec& x) {
    auto* obj = x.make<spec::Object>(pair_spec());
    auto* flag = x.make<mc::Atomic<int>>(0, "flag");
    {
      spec::Method m(*obj, "inc");
      flag->store(1, MemoryOrder::release);
      m.potential_op(7);
      // no op_check: dropped
    }
    {
      spec::Method m(*obj, "get");
      (void)flag->load(MemoryOrder::acquire);
      m.op_define();
      m.ret(1);
    }
  });
  EXPECT_TRUE(r.detected_assertion())
      << "an unordered inc must break the strict get in some history";
}

TEST(Annotations, OpClearDiscardsEarlierPoints) {
  // op_clear wipes previously defined points; with none re-defined, the
  // call is unordered (same effect as above).
  RunResult r = run_with_spec([](mc::Exec& x) {
    auto* obj = x.make<spec::Object>(pair_spec());
    auto* flag = x.make<mc::Atomic<int>>(0, "flag");
    {
      spec::Method m(*obj, "inc");
      flag->store(1, MemoryOrder::release);
      m.op_define();
      m.op_clear();  // discard
    }
    {
      spec::Method m(*obj, "get");
      (void)flag->load(MemoryOrder::acquire);
      m.op_define();
      m.ret(1);
    }
  });
  EXPECT_TRUE(r.detected_assertion());
}

TEST(Annotations, RetCapturesValue) {
  spec::SpecChecker checker;
  mc::Engine e;
  checker.attach(e);
  std::int64_t captured = -1;
  bool has = false;
  e.explore([&](mc::Exec& x) {
    auto* obj = x.make<spec::Object>(pair_spec());
    auto* flag = x.make<mc::Atomic<int>>(0, "flag");
    {
      spec::Method m(*obj, "get");
      (void)flag->load(MemoryOrder::acquire);
      m.op_define();
      EXPECT_EQ(m.ret(42), 42);
    }
    captured = checker.recorder().calls().back().c_ret;
    has = checker.recorder().calls().back().has_ret;
  });
  checker.detach();
  EXPECT_EQ(captured, 42);
  EXPECT_TRUE(has);
}

TEST(Annotations, ArgumentsCapturedUpToMax) {
  spec::SpecChecker checker;
  mc::Engine e;
  checker.attach(e);
  int nargs = -1;
  std::int64_t a2 = -1;
  e.explore([&](mc::Exec& x) {
    auto* obj = x.make<spec::Object>(pair_spec());
    {
      spec::Method m(*obj, "inc", {10, 20, 30, 40, 50, 60});
      m.ret(0);
    }
    nargs = checker.recorder().calls().back().nargs;
    a2 = checker.recorder().calls().back().arg(2);
  });
  checker.detach();
  EXPECT_EQ(nargs, spec::CallRecord::kMaxArgs);
  EXPECT_EQ(a2, 30);
}

TEST(Annotations, ObjectsCheckedIndependently) {
  // Composability (Theorem 1): a violation on one object is reported even
  // when another object's calls are all fine, and counts once.
  RunResult r = run_with_spec([](mc::Exec& x) {
    auto* good = x.make<spec::Object>(pair_spec());
    auto* bad = x.make<spec::Object>(pair_spec());
    auto* flag = x.make<mc::Atomic<int>>(0, "flag");
    {
      spec::Method m(*good, "inc");
      flag->store(1, MemoryOrder::release);
      m.op_define();
    }
    {
      spec::Method m(*good, "get");
      (void)flag->load(MemoryOrder::acquire);
      m.op_define();
      m.ret(1);  // correct
    }
    {
      spec::Method m(*bad, "get");
      (void)flag->load(MemoryOrder::acquire);
      m.op_define();
      m.ret(99);  // wrong: this object's counter is 0
    }
  });
  EXPECT_TRUE(r.detected_assertion());
  ASSERT_FALSE(r.reports.empty());
  EXPECT_NE(r.reports[0].find("get()=99"), std::string::npos);
}

TEST(Annotations, SpecLineAccounting) {
  spec::Specification sp("Counting");
  EXPECT_EQ(sp.spec_lines(), 0);
  sp.state<std::int64_t>();
  EXPECT_EQ(sp.spec_lines(), 1);
  sp.method("a").side_effect([](Ctx&) {}).post([](Ctx&) { return true; });
  EXPECT_EQ(sp.spec_lines(), 3);
  sp.admit("a", "a", [](const spec::CallRecord&, const spec::CallRecord&) {
    return false;
  });
  EXPECT_EQ(sp.spec_lines(), 4);
  EXPECT_EQ(sp.admissibility_lines(), 1);
  sp.note_op_site("op_define@x.cc:10");
  sp.note_op_site("op_define@x.cc:10");  // duplicate: one site
  sp.note_op_site("op_define@x.cc:20");
  EXPECT_EQ(sp.ordering_point_sites(), 2);
  EXPECT_EQ(sp.spec_lines(), 6);
}

TEST(Annotations, MethodRegistrationIdempotent) {
  spec::Specification sp("Idem");
  spec::MethodSpec& a1 = sp.method("a");
  spec::MethodSpec& a2 = sp.method("a");
  EXPECT_EQ(&a1, &a2);
  EXPECT_EQ(sp.method_count(), 1);
  EXPECT_EQ(sp.method_index("a"), 0);
  EXPECT_EQ(sp.method_index("zzz"), -1);
}

TEST(Annotations, InactiveWithoutChecker) {
  // Annotated code must run unchanged under a plain engine.
  mc::Engine e;
  auto stats = e.explore([](mc::Exec& x) {
    auto* obj = x.make<spec::Object>(pair_spec());
    auto* flag = x.make<mc::Atomic<int>>(0, "flag");
    spec::Method m(*obj, "get");
    (void)flag->load(MemoryOrder::acquire);
    m.op_define();
    m.ret(1);
  });
  EXPECT_EQ(stats.feasible, 1u);
  EXPECT_EQ(stats.violations_total, 0u);
}

TEST(Render, DotContainsNodesAndEdges) {
  spec::SpecChecker checker;
  mc::Engine e;
  checker.attach(e);
  std::string dot;
  e.explore([&](mc::Exec& x) {
    auto* obj = x.make<spec::Object>(pair_spec());
    auto* flag = x.make<mc::Atomic<int>>(0, "flag");
    {
      spec::Method m(*obj, "inc", {3});
      flag->store(1, MemoryOrder::release);
      m.op_define();
    }
    {
      spec::Method m(*obj, "get");
      (void)flag->load(MemoryOrder::acquire);
      m.op_define();
      m.ret(1);
    }
    dot = spec::render_dot(checker.recorder().calls());
  });
  checker.detach();
  EXPECT_NE(dot.find("digraph r_relation"), std::string::npos);
  EXPECT_NE(dot.find("inc(3)"), std::string::npos);
  EXPECT_NE(dot.find("get()=1"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos)
      << "inc must be r-ordered before get:\n"
      << dot;
}

}  // namespace
}  // namespace cds
