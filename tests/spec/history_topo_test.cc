// Property test for the all-topological-sorts enumerator: the available-set
// implementation in history.cc must emit the exact order stream (and flags)
// of the straightforward reference below — a full indegree scan per level,
// the algorithm history.cc used before the available-set rewrite.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "spec/history.h"
#include "support/rng.h"

namespace cds::spec {
namespace {

// Reference enumerator: per level, scan every node's indegree and recurse
// on each unused indeg-0 node in increasing index order. O(n) per level;
// trusted for being obvious, not fast.
struct RefCtx {
  const std::vector<const CallRecord*>* calls;
  const std::vector<std::vector<int>>* succ;
  std::vector<int> indeg;
  std::vector<const CallRecord*> order;
  std::uint64_t cap;
  TopoResult res;
  const std::function<bool(const std::vector<const CallRecord*>&)>* cb;
};

bool ref_rec(RefCtx& c) {
  const int n = static_cast<int>(c.calls->size());
  if (static_cast<int>(c.order.size()) == n) {
    ++c.res.count;
    if (!(*c.cb)(c.order)) {
      c.res.stopped = true;
      return false;
    }
    if (c.res.count >= c.cap) {
      c.res.capped = true;
      return false;
    }
    return true;
  }
  bool any = false;
  for (int v = 0; v < n; ++v) {
    if (c.indeg[static_cast<std::size_t>(v)] != 0) continue;
    any = true;
    c.indeg[static_cast<std::size_t>(v)] = -1;
    for (int w : (*c.succ)[static_cast<std::size_t>(v)]) {
      --c.indeg[static_cast<std::size_t>(w)];
    }
    c.order.push_back((*c.calls)[static_cast<std::size_t>(v)]);
    bool keep = ref_rec(c);
    c.order.pop_back();
    for (int w : (*c.succ)[static_cast<std::size_t>(v)]) {
      ++c.indeg[static_cast<std::size_t>(w)];
    }
    c.indeg[static_cast<std::size_t>(v)] = 0;
    if (!keep) return false;
  }
  if (!any) c.res.cycle = true;
  return true;
}

TopoResult ref_for_each_topo_order(
    const std::vector<const CallRecord*>& calls,
    const std::vector<std::vector<int>>& succ, std::uint64_t cap,
    const std::function<bool(const std::vector<const CallRecord*>&)>& cb) {
  RefCtx c;
  c.calls = &calls;
  c.succ = &succ;
  c.indeg.assign(succ.size(), 0);
  for (const auto& edges : succ) {
    for (int w : edges) ++c.indeg[static_cast<std::size_t>(w)];
  }
  c.cap = cap == 0 ? UINT64_MAX : cap;
  c.cb = &cb;
  c.order.reserve(calls.size());
  ref_rec(c);
  return c.res;
}

using Stream = std::vector<std::vector<std::uint32_t>>;

// Runs one enumerator and flattens its emitted orders into id sequences.
template <typename Fn>
TopoResult collect(Fn&& fn, const std::vector<const CallRecord*>& calls,
                   const std::vector<std::vector<int>>& succ,
                   std::uint64_t cap, std::uint64_t stop_after, Stream* out) {
  return fn(calls, succ, cap,
            [&](const std::vector<const CallRecord*>& order) {
              std::vector<std::uint32_t> ids;
              ids.reserve(order.size());
              for (const CallRecord* r : order) ids.push_back(r->id);
              out->push_back(std::move(ids));
              return stop_after == 0 || out->size() < stop_after;
            });
}

void expect_identical(const std::vector<const CallRecord*>& calls,
                      const std::vector<std::vector<int>>& succ,
                      std::uint64_t cap, std::uint64_t stop_after) {
  Stream got, want;
  TopoResult rg =
      collect(for_each_topo_order, calls, succ, cap, stop_after, &got);
  TopoResult rw =
      collect(ref_for_each_topo_order, calls, succ, cap, stop_after, &want);
  EXPECT_EQ(got, want);
  EXPECT_EQ(rg.count, rw.count);
  EXPECT_EQ(rg.capped, rw.capped);
  EXPECT_EQ(rg.cycle, rw.cycle);
  EXPECT_EQ(rg.stopped, rw.stopped);
}

// A random DAG over a random index permutation, so available-node order is
// not just 0..n-1.
std::vector<std::vector<int>> random_dag(int n, support::Xorshift64& rng) {
  std::vector<int> perm(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
  for (int i = n - 1; i > 0; --i) {
    int j = static_cast<int>(rng.below(static_cast<std::uint64_t>(i + 1)));
    std::swap(perm[static_cast<std::size_t>(i)],
              perm[static_cast<std::size_t>(j)]);
  }
  std::vector<std::vector<int>> succ(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (rng.below(100) < 35) {
        succ[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])]
            .push_back(perm[static_cast<std::size_t>(j)]);
      }
    }
  }
  return succ;
}

TEST(HistoryTopo, MatchesReferenceOnRandomDags) {
  support::Xorshift64 rng(0xc0ffee);
  std::vector<CallRecord> pool(9);
  for (std::uint32_t i = 0; i < pool.size(); ++i) pool[i].id = i;
  for (int trial = 0; trial < 200; ++trial) {
    int n = 2 + static_cast<int>(rng.below(7));
    std::vector<const CallRecord*> calls;
    for (int i = 0; i < n; ++i)
      calls.push_back(&pool[static_cast<std::size_t>(i)]);
    auto succ = random_dag(n, rng);
    expect_identical(calls, succ, /*cap=*/0, /*stop_after=*/0);
  }
}

TEST(HistoryTopo, MatchesReferenceUnderCapAndEarlyStop) {
  support::Xorshift64 rng(0xfeedbeef);
  std::vector<CallRecord> pool(8);
  for (std::uint32_t i = 0; i < pool.size(); ++i) pool[i].id = i;
  for (int trial = 0; trial < 100; ++trial) {
    int n = 3 + static_cast<int>(rng.below(6));
    std::vector<const CallRecord*> calls;
    for (int i = 0; i < n; ++i)
      calls.push_back(&pool[static_cast<std::size_t>(i)]);
    auto succ = random_dag(n, rng);
    expect_identical(calls, succ, /*cap=*/1 + rng.below(6), /*stop_after=*/0);
    expect_identical(calls, succ, /*cap=*/0,
                     /*stop_after=*/1 + rng.below(4));
  }
}

TEST(HistoryTopo, CycleFlagMatchesReference) {
  std::vector<CallRecord> pool(3);
  for (std::uint32_t i = 0; i < pool.size(); ++i) pool[i].id = i;
  std::vector<const CallRecord*> calls{&pool[0], &pool[1], &pool[2]};
  // 0 -> 1 -> 2 -> 1: node 0 places, then {1,2} cycle.
  std::vector<std::vector<int>> succ{{1}, {2}, {1}};
  expect_identical(calls, succ, /*cap=*/0, /*stop_after=*/0);
  TopoResult r = for_each_topo_order(
      calls, succ, 0, [](const std::vector<const CallRecord*>&) {
        ADD_FAILURE() << "cyclic graph must emit no orders";
        return true;
      });
  EXPECT_TRUE(r.cycle);
  EXPECT_EQ(r.count, 0u);
}

}  // namespace
}  // namespace cds::spec
