// Unit tests of the CDSSpec checker machinery: r-relation extraction,
// sequential-history enumeration, admissibility, postconditions, and
// justification — driven by hand-scripted "method calls" whose ordering
// points are produced by real modeled atomics.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/runner.h"
#include "mc/atomic.h"
#include "mc/engine.h"
#include "spec/annotations.h"
#include "spec/checker.h"
#include "spec/history.h"
#include "spec/seqstate.h"
#include "spec/specification.h"

namespace cds {
namespace {

using harness::RunOptions;
using harness::RunResult;
using harness::run_with_spec;
using mc::MemoryOrder;
using spec::Ctx;
using spec::IntList;

// A register-like spec: write(v) sets the state, read() must return the
// current value in every sequential history.
const spec::Specification& strict_register_spec() {
  static spec::Specification* s = [] {
    auto* sp = new spec::Specification("StrictRegister");
    sp->state<std::int64_t>();
    sp->method("write").side_effect(
        [](Ctx& c) { c.st<std::int64_t>() = c.arg(0); });
    sp->method("read").side_effect([](Ctx& c) { c.s_ret = c.st<std::int64_t>(); }).post([](Ctx& c) {
      return c.c_ret() == c.s_ret;
    });
    return sp;
  }();
  return *s;
}

// Scripted object: an annotated register whose write publishes with a
// release store and whose read uses an acquire load (so the read is
// r-ordered after the write it reads from).
struct ScriptedRegister {
  explicit ScriptedRegister(const spec::Specification& s) : obj(s), cell(0, "reg") {}

  void write(int v) {
    spec::Method m(obj, "write", {v});
    cell.store(v, MemoryOrder::release);
    m.op_define();
    m.ret(0);
  }

  int read() {
    spec::Method m(obj, "read");
    int v = cell.load(MemoryOrder::acquire);
    m.op_define();
    return static_cast<int>(m.ret(v));
  }

  spec::Object obj;
  mc::Atomic<int> cell;
};

TEST(SpecChecker, SequentialHistoryPassesForOrderedCalls) {
  RunResult r = run_with_spec([](mc::Exec& x) {
    auto* reg = x.make<ScriptedRegister>(strict_register_spec());
    reg->write(5);
    EXPECT_EQ(reg->read(), 5);
  });
  EXPECT_EQ(r.mc.violations_total, 0u);
  EXPECT_GT(r.spec.histories_checked, 0u);
}

TEST(SpecChecker, PostconditionViolationDetected) {
  // A scripted call that lies about its return value must be caught.
  RunResult r = run_with_spec([](mc::Exec& x) {
    auto* reg = x.make<ScriptedRegister>(strict_register_spec());
    reg->write(5);
    {
      spec::Method m(reg->obj, "read");
      (void)reg->cell.load(MemoryOrder::acquire);
      m.op_define();
      m.ret(99);  // wrong: sequential replay will compute S_RET == 5
    }
  });
  EXPECT_TRUE(r.detected_assertion());
  EXPECT_FALSE(r.detected_builtin());
  ASSERT_FALSE(r.reports.empty());
  EXPECT_NE(r.reports[0].find("postcondition"), std::string::npos);
}

TEST(SpecChecker, PreconditionViolationDetected) {
  static spec::Specification* sp = [] {
    auto* s = new spec::Specification("PreOnly");
    s->state<std::int64_t>();
    s->method("poke").pre([](Ctx& c) { return c.arg(0) > 0; });
    return s;
  }();
  RunResult r = run_with_spec([](mc::Exec& x) {
    auto* obj = x.make<spec::Object>(*sp);
    spec::Method m(*obj, "poke", {-3});
    m.ret(0);
  });
  EXPECT_TRUE(r.detected_assertion());
  ASSERT_FALSE(r.reports.empty());
  EXPECT_NE(r.reports[0].find("precondition"), std::string::npos);
}

TEST(SpecChecker, UnorderedCallsCheckedInAllHistories) {
  // Two concurrent writes and a later read: histories enumerate both write
  // orders, so a strict register whose read returns one of them must fail
  // in the history where the other write is last.
  RunResult r = run_with_spec([](mc::Exec& x) {
    auto* reg = x.make<ScriptedRegister>(strict_register_spec());
    int t1 = x.spawn([reg] { reg->write(1); });
    int t2 = x.spawn([reg] { reg->write(2); });
    x.join(t1);
    x.join(t2);
    (void)reg->read();
  });
  // In every execution the read returns the mo-final write, but the
  // sequential replay also explores the opposite write order -> violation.
  EXPECT_TRUE(r.detected_assertion());
}

TEST(SpecChecker, AdmissibilityRuleFiresOnUnorderedPair) {
  static spec::Specification* sp = [] {
    auto* s = new spec::Specification("AdmitPair");
    s->state<std::int64_t>();
    s->method("a");
    s->method("b");
    s->admit("a", "b",
             [](const spec::CallRecord&, const spec::CallRecord&) { return true; });
    return s;
  }();
  // Calls from two threads with no synchronization: unordered -> rule fires.
  RunResult r = run_with_spec([](mc::Exec& x) {
    auto* obj = x.make<spec::Object>(*sp);
    auto* fx = x.make<mc::Atomic<int>>(0, "x");
    auto* fy = x.make<mc::Atomic<int>>(0, "y");
    int t1 = x.spawn([&] {
      spec::Method m(*obj, "a");
      fx->store(1, MemoryOrder::relaxed);
      m.op_define();
    });
    int t2 = x.spawn([&] {
      spec::Method m(*obj, "b");
      fy->store(1, MemoryOrder::relaxed);
      m.op_define();
    });
    x.join(t1);
    x.join(t2);
  });
  EXPECT_TRUE(r.detected_admissibility());
  EXPECT_FALSE(r.detected_assertion());
}

TEST(SpecChecker, AdmissibilityNotFiredWhenOrdered) {
  static spec::Specification* sp = [] {
    auto* s = new spec::Specification("AdmitPairOrdered");
    s->state<std::int64_t>();
    s->method("a");
    s->method("b");
    s->admit("a", "b",
             [](const spec::CallRecord&, const spec::CallRecord&) { return true; });
    return s;
  }();
  // Same-thread calls are ordered by sequenced-before: admissible.
  RunResult r = run_with_spec([](mc::Exec& x) {
    auto* obj = x.make<spec::Object>(*sp);
    auto* fx = x.make<mc::Atomic<int>>(0, "x");
    {
      spec::Method m(*obj, "a");
      fx->store(1, MemoryOrder::relaxed);
      m.op_define();
    }
    {
      spec::Method m(*obj, "b");
      fx->store(2, MemoryOrder::relaxed);
      m.op_define();
    }
  });
  EXPECT_EQ(r.spec.inadmissible_execs, 0u);
  EXPECT_EQ(r.mc.violations_total, 0u);
}

TEST(SpecChecker, JustifiedSpuriousFailureAccepted) {
  // Non-deterministic spec: get() may return -1 if some justifying
  // subhistory leaves the state empty. A get with NO r-predecessors is
  // justified by the empty subhistory.
  static spec::Specification* sp = [] {
    auto* s = new spec::Specification("MaybeEmpty");
    s->state<IntList>();
    s->method("put").side_effect(
        [](Ctx& c) { c.st<IntList>().push_back(c.arg(0)); });
    s->method("get")
        .side_effect([](Ctx& c) {
          IntList& q = c.st<IntList>();
          c.s_ret = q.empty() ? -1 : q.front();
          if (c.s_ret != -1 && c.c_ret() != -1) q.pop_front();
        })
        .post([](Ctx& c) { return c.c_ret() == -1 || c.c_ret() == c.s_ret; })
        .justifying_post([](Ctx& c) {
          return c.c_ret() != -1 || c.s_ret == -1;
        });
    return s;
  }();

  // Unordered put/get: get returns -1, justified (concurrent put).
  RunResult r = run_with_spec([](mc::Exec& x) {
    auto* obj = x.make<spec::Object>(*sp);
    auto* fx = x.make<mc::Atomic<int>>(0, "x");
    auto* fy = x.make<mc::Atomic<int>>(0, "y");
    int t1 = x.spawn([&] {
      spec::Method m(*obj, "put", {7});
      fx->store(1, MemoryOrder::release);
      m.op_define();
    });
    int t2 = x.spawn([&] {
      spec::Method m(*obj, "get");
      (void)fy->load(MemoryOrder::acquire);
      m.op_define();
      m.ret(-1);
    });
    x.join(t1);
    x.join(t2);
  });
  EXPECT_EQ(r.mc.violations_total, 0u)
      << (r.reports.empty() ? "" : r.reports[0]);
}

TEST(SpecChecker, UnjustifiedSpuriousFailureRejected) {
  // Same spec, but now the get is r-ordered AFTER the put (release/acquire
  // on the same flag): its only justifying subhistory contains the put, so
  // returning -1 is NOT justified.
  static spec::Specification* sp = [] {
    auto* s = new spec::Specification("MaybeEmpty2");
    s->state<IntList>();
    s->method("put").side_effect(
        [](Ctx& c) { c.st<IntList>().push_back(c.arg(0)); });
    s->method("get")
        .side_effect([](Ctx& c) {
          IntList& q = c.st<IntList>();
          c.s_ret = q.empty() ? -1 : q.front();
          if (c.s_ret != -1 && c.c_ret() != -1) q.pop_front();
        })
        .post([](Ctx& c) { return c.c_ret() == -1 || c.c_ret() == c.s_ret; })
        .justifying_post([](Ctx& c) {
          return c.c_ret() != -1 || c.s_ret == -1;
        });
    return s;
  }();

  RunResult r = run_with_spec([](mc::Exec& x) {
    auto* obj = x.make<spec::Object>(*sp);
    auto* fx = x.make<mc::Atomic<int>>(0, "x");
    {
      spec::Method m(*obj, "put", {7});
      fx->store(1, MemoryOrder::release);
      m.op_define();
    }
    {
      spec::Method m(*obj, "get");
      (void)fx->load(MemoryOrder::acquire);  // reads 1: hb after the put
      m.op_define();
      m.ret(-1);  // spurious empty despite hb-ordered put: forbidden
    }
  });
  EXPECT_TRUE(r.detected_assertion());
  ASSERT_FALSE(r.reports.empty());
  EXPECT_NE(r.reports[0].find("not justified"), std::string::npos);
}

TEST(SpecChecker, ScOrderingPointsOrderCalls) {
  // Two calls whose ordering points are seq_cst stores to DIFFERENT
  // locations are still r-ordered (by the SC total order), so a strict
  // "counter" spec sees a deterministic order in each execution.
  static spec::Specification* sp = [] {
    auto* s = new spec::Specification("ScPair");
    s->state<std::int64_t>();
    s->method("first").side_effect([](Ctx& c) { c.st<std::int64_t>() += 1; });
    s->method("second").side_effect([](Ctx& c) { c.st<std::int64_t>() += 1; });
    return s;
  }();
  RunResult r = run_with_spec([](mc::Exec& x) {
    auto* obj = x.make<spec::Object>(*sp);
    auto* fx = x.make<mc::Atomic<int>>(0, "x");
    auto* fy = x.make<mc::Atomic<int>>(0, "y");
    int t1 = x.spawn([&] {
      spec::Method m(*obj, "first");
      fx->store(1, MemoryOrder::seq_cst);
      m.op_define();
    });
    int t2 = x.spawn([&] {
      spec::Method m(*obj, "second");
      fy->store(1, MemoryOrder::seq_cst);
      m.op_define();
    });
    x.join(t1);
    x.join(t2);
  });
  // With SC ordering points there is exactly one history per execution:
  // histories_checked == executions checked (one object).
  EXPECT_EQ(r.spec.histories_checked, r.spec.executions_checked);
  EXPECT_EQ(r.mc.violations_total, 0u);
}

TEST(SpecChecker, NestedApiCallsNotRecorded) {
  // An API method that internally calls another API method: only the
  // outermost is recorded (Section 4.3).
  static spec::Specification* sp = [] {
    auto* s = new spec::Specification("Nested");
    s->state<std::int64_t>();
    s->method("outer").side_effect([](Ctx& c) { c.st<std::int64_t>() += 1; });
    s->method("inner").side_effect([](Ctx& c) {
      // Would corrupt the count if nested calls were recorded.
      c.st<std::int64_t>() += 100;
    });
    return s;
  }();
  spec::SpecChecker checker;
  mc::Engine e;
  checker.attach(e);
  std::uint64_t recorded = 0;
  struct Probe : mc::ExecutionListener {
  } probe;
  (void)probe;
  e.explore([&](mc::Exec& x) {
    auto* obj = x.make<spec::Object>(*sp);
    auto* fx = x.make<mc::Atomic<int>>(0, "x");
    {
      spec::Method outer(*obj, "outer");
      {
        spec::Method inner(*obj, "inner");  // nested: must be ignored
        fx->store(1, MemoryOrder::relaxed);
        inner.op_define();
      }
      fx->store(2, MemoryOrder::relaxed);
      outer.op_define();
    }
    recorded = checker.recorder().calls().size();
  });
  checker.detach();
  EXPECT_EQ(recorded, 1u);  // only the outer call was recorded
}

TEST(SpecChecker, AllObjectsCheckedWhenFirstObjectViolates) {
  // Regression: a violation on one object used to break out of the
  // per-object loop, so specifications compose only if every earlier
  // object is correct. Here the register (checked first: its calls are
  // recorded first) violates its postcondition AND a second object
  // violates an admissibility rule -- both must be reported from the same
  // execution.
  static spec::Specification* admit_sp = [] {
    auto* s = new spec::Specification("AdmitSecondObject");
    s->state<std::int64_t>();
    s->method("a");
    s->method("b");
    s->admit("a", "b",
             [](const spec::CallRecord&, const spec::CallRecord&) { return true; });
    return s;
  }();
  RunResult r = run_with_spec([](mc::Exec& x) {
    auto* reg = x.make<ScriptedRegister>(strict_register_spec());
    auto* obj2 = x.make<spec::Object>(*admit_sp);
    auto* fx = x.make<mc::Atomic<int>>(0, "x");
    auto* fy = x.make<mc::Atomic<int>>(0, "y");
    // Object 1: a read that lies about its return value.
    reg->write(5);
    {
      spec::Method m(reg->obj, "read");
      (void)reg->cell.load(MemoryOrder::acquire);
      m.op_define();
      m.ret(99);
    }
    // Object 2: an unordered pair the admit rule rejects.
    int t1 = x.spawn([&] {
      spec::Method m(*obj2, "a");
      fx->store(1, MemoryOrder::relaxed);
      m.op_define();
    });
    int t2 = x.spawn([&] {
      spec::Method m(*obj2, "b");
      fy->store(1, MemoryOrder::relaxed);
      m.op_define();
    });
    x.join(t1);
    x.join(t2);
  });
  EXPECT_TRUE(r.detected_assertion());      // object 1's postcondition
  EXPECT_TRUE(r.detected_admissibility());  // object 2, despite object 1
}

// Scratch log the sampled-history regression test below writes through;
// side_effect lambdas must be capture-free (the Specification is static).
std::string* g_order_log = nullptr;

TEST(SpecChecker, CapSamplingDrawsFreshOrdersPerExecution) {
  // Regression: when the history cap trips, the checker samples random
  // topological orders -- but it used to seed that sampling with the fixed
  // opts seed, so every execution re-checked the SAME few orders and the
  // "random generation" option silently lost coverage across the
  // exploration. The seed is now derived per execution. Observable: with
  // three mutually-unordered calls (3! = 6 orders) and max_histories=1,
  // each checked execution replays 1 exhaustive + 4 sampled histories;
  // the replayed order sequences must differ between executions.
  static spec::Specification* sp = [] {
    auto* s = new spec::Specification("SampledOrders");
    s->state<std::int64_t>();
    s->method("a").side_effect([](Ctx&) {
      if (g_order_log != nullptr) *g_order_log += 'a';
    });
    s->method("b").side_effect([](Ctx&) {
      if (g_order_log != nullptr) *g_order_log += 'b';
    });
    s->method("c").side_effect([](Ctx&) {
      if (g_order_log != nullptr) *g_order_log += 'c';
    });
    return s;
  }();

  std::string log;
  g_order_log = &log;
  RunOptions opts;
  opts.checker.max_histories = 1;  // cap immediately: 6 orders exist
  opts.checker.sampled_histories = 4;
  RunResult r = run_with_spec(
      [](mc::Exec& x) {
        if (g_order_log != nullptr) *g_order_log += '|';
        auto* obj = x.make<spec::Object>(*sp);
        auto* s1 = x.make<mc::Atomic<int>>(0, "s1");
        auto* s2 = x.make<mc::Atomic<int>>(0, "s2");
        // Two conflicting relaxed stores force several schedules (several
        // checked executions) while the three calls stay mutually
        // unordered in every one of them (no hb, no sc).
        int t1 = x.spawn([&] {
          spec::Method m(*obj, "a");
          s1->store(1, MemoryOrder::relaxed);
          m.op_define();
        });
        int t2 = x.spawn([&] {
          spec::Method m(*obj, "b");
          s1->store(2, MemoryOrder::relaxed);
          m.op_define();
        });
        {
          spec::Method m(*obj, "c");
          s2->store(1, MemoryOrder::relaxed);
          m.op_define();
        }
        x.join(t1);
        x.join(t2);
      },
      opts);
  g_order_log = nullptr;
  EXPECT_TRUE(r.spec.history_cap_hit);
  EXPECT_EQ(r.mc.violations_total, 0u);

  // Segments between '|' markers: one per execution; a checked execution
  // contributes 5 histories x 3 calls = 15 characters, a pruned one none.
  std::vector<std::string> checked;
  std::size_t start = 0;
  while (start < log.size()) {
    std::size_t bar = log.find('|', start + 1);
    std::string seg = log.substr(start + 1, bar == std::string::npos
                                                ? std::string::npos
                                                : bar - start - 1);
    if (!seg.empty()) checked.push_back(seg);
    if (bar == std::string::npos) break;
    start = bar;
  }
  ASSERT_GE(checked.size(), 2u);
  for (const std::string& seg : checked) EXPECT_EQ(seg.size(), 15u);
  // The exhaustive prefix is deterministic, so with the old fixed seed
  // every segment was byte-identical. Per-execution derivation must give
  // at least two executions distinct sampled orders (deterministic for a
  // fixed checker seed and engine; no flakiness).
  bool any_differ = false;
  for (const std::string& seg : checked) any_differ |= seg != checked[0];
  EXPECT_TRUE(any_differ)
      << "all executions sampled identical history orders: " << log;
}

TEST(SpecHistory, TopoOrderCountsMatchCombinatorics) {
  // 3 calls, no edges: 3! orders; a->b edge: 3 orders; chain: 1 order.
  spec::CallRecord a, b, c;
  std::vector<const spec::CallRecord*> calls = {&a, &b, &c};
  std::uint64_t count = 0;
  auto cb = [&](const std::vector<const spec::CallRecord*>&) {
    ++count;
    return true;
  };

  std::vector<std::vector<int>> none(3);
  spec::for_each_topo_order(calls, none, 0, cb);
  EXPECT_EQ(count, 6u);

  count = 0;
  std::vector<std::vector<int>> one(3);
  one[0] = {1};
  spec::for_each_topo_order(calls, one, 0, cb);
  EXPECT_EQ(count, 3u);

  count = 0;
  std::vector<std::vector<int>> chain(3);
  chain[0] = {1};
  chain[1] = {2};
  spec::for_each_topo_order(calls, chain, 0, cb);
  EXPECT_EQ(count, 1u);
}

TEST(SpecHistory, CycleDetected) {
  spec::CallRecord a, b;
  std::vector<const spec::CallRecord*> calls = {&a, &b};
  std::vector<std::vector<int>> succ(2);
  succ[0] = {1};
  succ[1] = {0};
  auto res = spec::for_each_topo_order(
      calls, succ, 0, [](const std::vector<const spec::CallRecord*>&) { return true; });
  EXPECT_TRUE(res.cycle);
  EXPECT_EQ(res.count, 0u);
}

TEST(SpecHistory, CapAndSampling) {
  spec::CallRecord cs[6];
  std::vector<const spec::CallRecord*> calls;
  for (auto& c : cs) calls.push_back(&c);
  std::vector<std::vector<int>> none(6);
  std::uint64_t count = 0;
  auto res = spec::for_each_topo_order(
      calls, none, 100,
      [&](const std::vector<const spec::CallRecord*>&) { return ++count, true; });
  EXPECT_TRUE(res.capped);
  EXPECT_EQ(count, 100u);

  count = 0;
  auto sres = spec::sample_topo_orders(
      calls, none, 50, 42,
      [&](const std::vector<const spec::CallRecord*>& o) {
        EXPECT_EQ(o.size(), 6u);
        ++count;
        return true;
      });
  EXPECT_EQ(sres.count, 50u);
  EXPECT_EQ(count, 50u);
}

}  // namespace
}  // namespace cds
