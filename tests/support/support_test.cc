// Unit tests for the support layer: clocks/views, arena, trail, RNG.
#include <gtest/gtest.h>

#include <set>

#include "mc/trail.h"
#include "support/arena.h"
#include "support/rng.h"
#include "support/vector_clock.h"

namespace cds {
namespace {

using support::Timestamps;
using support::VectorClock;
using support::View;

TEST(VectorClock, DefaultIsBottom) {
  VectorClock c;
  EXPECT_EQ(c.get(0), 0u);
  EXPECT_EQ(c.get(100), 0u);
  EXPECT_TRUE(c.empty());
}

TEST(VectorClock, SetGetRaise) {
  VectorClock c;
  c.set(3, 7);
  EXPECT_EQ(c.get(3), 7u);
  c.raise(3, 5);
  EXPECT_EQ(c.get(3), 7u) << "raise never lowers";
  c.raise(3, 9);
  EXPECT_EQ(c.get(3), 9u);
  c.bump(1);
  EXPECT_EQ(c.get(1), 1u);
}

TEST(VectorClock, JoinIsPointwiseMax) {
  VectorClock a, b;
  a.set(0, 5);
  a.set(2, 1);
  b.set(0, 3);
  b.set(1, 9);
  a.join(b);
  EXPECT_EQ(a.get(0), 5u);
  EXPECT_EQ(a.get(1), 9u);
  EXPECT_EQ(a.get(2), 1u);
}

TEST(VectorClock, LeqIsPartialOrder) {
  VectorClock a, b;
  a.set(0, 1);
  b.set(0, 2);
  EXPECT_TRUE(a.leq(b));
  EXPECT_FALSE(b.leq(a));
  b.set(1, 1);
  a.set(2, 1);
  EXPECT_FALSE(a.leq(b));
  EXPECT_FALSE(b.leq(a)) << "incomparable";
  EXPECT_TRUE(a.leq(a));
}

TEST(VectorClock, JoinIsLeastUpperBound) {
  // Property over a small sweep: a <= a⊔b, b <= a⊔b, and any c above both
  // is above the join.
  for (std::uint32_t i = 0; i < 4; ++i) {
    for (std::uint32_t j = 0; j < 4; ++j) {
      VectorClock a, b;
      a.set(0, i);
      a.set(1, j);
      b.set(0, j);
      b.set(1, i);
      VectorClock ab = a;
      ab.join(b);
      EXPECT_TRUE(a.leq(ab));
      EXPECT_TRUE(b.leq(ab));
      VectorClock c;
      c.set(0, std::max(i, j));
      c.set(1, std::max(i, j));
      EXPECT_TRUE(ab.leq(c));
    }
  }
}

TEST(Timestamps, JoinCoversBothLattices) {
  Timestamps a, b;
  a.vc.set(0, 4);
  a.view.set(7, 2);
  b.vc.set(1, 3);
  b.view.set(7, 5);
  a.join(b);
  EXPECT_EQ(a.vc.get(0), 4u);
  EXPECT_EQ(a.vc.get(1), 3u);
  EXPECT_EQ(a.view.get(7), 5u);
}

TEST(Arena, AllocatesAlignedAndDistinct) {
  support::Arena a;
  std::set<void*> seen;
  for (int i = 0; i < 100; ++i) {
    void* p = a.allocate(24, 8);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 8, 0u);
    EXPECT_TRUE(seen.insert(p).second) << "allocations must not overlap";
  }
}

TEST(Arena, ResetReusesSameAddresses) {
  // The engine relies on identical allocation sequences yielding identical
  // addresses across executions.
  support::Arena a;
  void* p1 = a.allocate(64, 8);
  void* p2 = a.allocate(128, 16);
  a.reset();
  EXPECT_EQ(a.allocate(64, 8), p1);
  EXPECT_EQ(a.allocate(128, 16), p2);
}

TEST(Arena, OversizedAllocationsWork) {
  support::Arena a;
  void* big = a.allocate(support::Arena::kBlockSize * 2, 64);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(big) % 64, 0u);
  // And normal allocation still functions afterwards.
  EXPECT_NE(a.allocate(16, 8), nullptr);
}

TEST(Arena, MakeConstructs) {
  support::Arena a;
  struct P {
    int x, y;
  };
  P* p = a.make<P>(3, 4);
  EXPECT_EQ(p->x, 3);
  EXPECT_EQ(p->y, 4);
}

TEST(Trail, SingleChoiceNotRecorded) {
  mc::Trail t;
  t.begin_execution();
  EXPECT_EQ(t.choose(mc::ChoiceKind::kSchedule, 1), 0u);
  EXPECT_EQ(t.depth(), 0u);
}

TEST(Trail, DfsEnumeratesFullTree) {
  // A 2-level tree with branching 2 and 3: 6 leaves.
  mc::Trail t;
  std::set<std::pair<std::uint32_t, std::uint32_t>> leaves;
  do {
    t.begin_execution();
    std::uint32_t a = t.choose(mc::ChoiceKind::kSchedule, 2);
    std::uint32_t b = t.choose(mc::ChoiceKind::kReadsFrom, 3);
    leaves.insert({a, b});
  } while (t.advance());
  EXPECT_EQ(leaves.size(), 6u);
}

TEST(Trail, VariableDepthTree) {
  // Branch count depends on earlier choices (like real explorations).
  mc::Trail t;
  int leaves = 0;
  do {
    t.begin_execution();
    std::uint32_t a = t.choose(mc::ChoiceKind::kSchedule, 2);
    if (a == 0) {
      (void)t.choose(mc::ChoiceKind::kReadsFrom, 4);
    }
    ++leaves;
  } while (t.advance());
  EXPECT_EQ(leaves, 5) << "4 leaves under a=0 plus 1 leaf under a=1";
}

TEST(Trail, RestoreReplaysCapturedPath) {
  mc::Trail t;
  t.begin_execution();
  (void)t.choose(mc::ChoiceKind::kSchedule, 3);
  ASSERT_TRUE(t.advance());  // move to alternative 1
  t.begin_execution();
  EXPECT_EQ(t.choose(mc::ChoiceKind::kSchedule, 3), 1u);
  auto saved = t.raw();

  mc::Trail t2;
  t2.restore(saved);
  t2.begin_execution();
  EXPECT_EQ(t2.choose(mc::ChoiceKind::kSchedule, 3), 1u);
}

TEST(Rng, DeterministicAndBounded) {
  support::Xorshift64 a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    std::uint64_t x = a.below(7);
    EXPECT_EQ(x, b.below(7));
    EXPECT_LT(x, 7u);
  }
}

TEST(Rng, ZeroSeedDoesNotDegenerate) {
  support::Xorshift64 r(0);
  std::set<std::uint64_t> vals;
  for (int i = 0; i < 10; ++i) vals.insert(r.next());
  EXPECT_GT(vals.size(), 5u);
}

TEST(Rng, BelowIsUnbiasedForLargeRanges) {
  // n = 3 * 2^62 is the worst case for the old modulo reduction: 2^64 mod n
  // is 2^62, so the residues below 2^62 were hit from two input ranges and
  // landed with probability 1/2 instead of 1/3. Rejection sampling must put
  // each third of [0, n) back at ~1/3.
  const std::uint64_t n = 3ull << 62;
  const std::uint64_t third = 1ull << 62;
  support::Xorshift64 r(12345);
  const int draws = 100000;
  int buckets[3] = {0, 0, 0};
  for (int i = 0; i < draws; ++i) {
    std::uint64_t x = r.below(n);
    ASSERT_LT(x, n);
    ++buckets[x / third];
  }
  for (int b = 0; b < 3; ++b) {
    double frac = static_cast<double>(buckets[b]) / draws;
    EXPECT_NEAR(frac, 1.0 / 3.0, 0.02) << "bucket " << b;
  }
}

TEST(Rng, BelowSmallRangesStayUniformish) {
  support::Xorshift64 r(7);
  int counts[5] = {0, 0, 0, 0, 0};
  for (int i = 0; i < 50000; ++i) ++counts[r.below(5)];
  for (int b = 0; b < 5; ++b) {
    double frac = counts[b] / 50000.0;
    EXPECT_NEAR(frac, 0.2, 0.02) << "bucket " << b;
  }
}

}  // namespace
}  // namespace cds
