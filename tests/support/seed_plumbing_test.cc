// Seed-plumbing properties: every per-component seed in the pipeline is a
// pure function of the single user-facing root seed, so quoting one number
// reproduces a whole run — fuzzing campaign, sweep, or sampled check —
// regardless of output mode or process.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "fuzz/generator.h"
#include "support/rng.h"

namespace cds {
namespace {

using support::derive_seed;

TEST(SeedPlumbing, DeriveSeedIsDeterministic) {
  for (std::uint64_t root : {0ull, 1ull, 42ull, 0xdeadbeefull}) {
    for (std::uint64_t i = 0; i < 100; ++i) {
      EXPECT_EQ(derive_seed(root, i), derive_seed(root, i));
    }
  }
}

TEST(SeedPlumbing, DeriveSeedDoesNotMutateOrAlias) {
  // Deriving child i must not depend on having derived children 0..i-1
  // (no hidden stream state), and distinct (root, index) pairs must not
  // collide in practice.
  std::uint64_t late = derive_seed(7, 99);
  for (std::uint64_t i = 0; i < 99; ++i) (void)derive_seed(7, i);
  EXPECT_EQ(derive_seed(7, 99), late);

  std::set<std::uint64_t> seen;
  for (std::uint64_t root = 1; root <= 20; ++root) {
    for (std::uint64_t i = 0; i < 50; ++i) {
      seen.insert(derive_seed(root, i));
    }
  }
  EXPECT_EQ(seen.size(), 20u * 50u) << "child seeds collided";
}

TEST(SeedPlumbing, TrialSeedIsDeriveSeed) {
  // The fuzzer's per-trial seeds are the same derivation the rest of the
  // pipeline uses (runner sweeps, checker sampling): one convention.
  for (std::uint64_t trial = 0; trial < 64; ++trial) {
    EXPECT_EQ(fuzz::trial_seed(1, trial), derive_seed(1, trial));
    EXPECT_EQ(fuzz::trial_seed(99, trial), derive_seed(99, trial));
  }
}

TEST(SeedPlumbing, TrialSeedsYieldIdenticalProgramsAcrossCampaigns) {
  // Re-running a campaign from the same base seed regenerates bit-identical
  // programs, in any order — the property the --json and text output modes
  // of cdsspec-fuzz rely on to describe the same trials.
  fuzz::GenParams gp;
  std::vector<std::string> first;
  for (std::uint64_t t = 0; t < 32; ++t) {
    first.push_back(fuzz::generate(gp, fuzz::trial_seed(5, t)).to_string());
  }
  for (std::uint64_t t = 32; t-- > 0;) {  // reversed replay
    EXPECT_EQ(fuzz::generate(gp, fuzz::trial_seed(5, t)).to_string(),
              first[static_cast<std::size_t>(t)]);
  }
}

TEST(SeedPlumbing, DistinctRootsDiverge) {
  fuzz::GenParams gp;
  int same = 0;
  for (std::uint64_t t = 0; t < 32; ++t) {
    same += fuzz::generate(gp, fuzz::trial_seed(1, t)).to_string() ==
            fuzz::generate(gp, fuzz::trial_seed(2, t)).to_string();
  }
  EXPECT_LT(same, 8) << "campaigns with different base seeds barely differ";
}

}  // namespace
}  // namespace cds
