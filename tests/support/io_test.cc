// IO hardening: CRC-32 vectors, EINTR-safe full read/write over pipes,
// and the checksummed spool format — a result cache entry truncated or
// bit-flipped on disk must be quarantined and recomputed, never parsed.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/parallel.h"
#include "harness/runner.h"
#include "mc/atomic.h"
#include "support/io.h"

#if defined(__unix__) || defined(__APPLE__)
#include <cerrno>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace cds {
namespace {

std::string tmp_path(const char* name) {
  return testing::TempDir() + name;
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream buf;
  buf << f.rdbuf();
  return buf.str();
}

bool exists(const std::string& path) {
  std::ifstream f(path);
  return f.is_open();
}

TEST(Crc32, KnownVectors) {
  // Standard IEEE 802.3 check values.
  EXPECT_EQ(support::crc32(std::string("")), 0x00000000u);
  EXPECT_EQ(support::crc32(std::string("123456789")), 0xCBF43926u);
  EXPECT_EQ(support::crc32(std::string("The quick brown fox jumps over "
                                       "the lazy dog")),
            0x414FA339u);
}

TEST(Crc32, SensitiveToEveryByte) {
  std::string s(256, '\0');
  for (int i = 0; i < 256; ++i) s[i] = static_cast<char>(i);
  const std::uint32_t base = support::crc32(s);
  for (int i = 0; i < 256; i += 37) {
    std::string m = s;
    m[i] = static_cast<char>(m[i] ^ 1);
    EXPECT_NE(support::crc32(m), base) << "flip at " << i;
  }
}

TEST(SpoolFile, RoundTripsPayloadWithBinaryContent) {
  const std::string path = tmp_path("spool_roundtrip.result");
  std::string payload = "shard-result v3\nstats a=1\n";
  payload.push_back('\0');
  payload += "\nbinary\xff\x01 tail, no trailing newline";
  std::string err;
  ASSERT_TRUE(support::write_spool_file(path, payload, &err)) << err;
  std::string back;
  bool quarantined = false;
  ASSERT_TRUE(support::read_spool_file(path, &back, &err, &quarantined))
      << err;
  EXPECT_EQ(back, payload);
  EXPECT_FALSE(quarantined);
  std::remove(path.c_str());
}

TEST(SpoolFile, MissingFileIsPlainMissNotQuarantine) {
  std::string out, err;
  bool quarantined = false;
  EXPECT_FALSE(support::read_spool_file(tmp_path("no_such_spool.result"),
                                        &out, &err, &quarantined));
  EXPECT_FALSE(quarantined);
}

TEST(SpoolFile, TruncatedFileIsQuarantinedAndNeverReturned) {
  // The regression this guards: a run killed mid-write (or a full disk)
  // leaves a torn cache entry; the reader must refuse it and move it
  // aside so the next read recomputes instead of re-parsing garbage.
  const std::string path = tmp_path("spool_truncated.result");
  const std::string payload(4096, 'x');
  std::string err;
  ASSERT_TRUE(support::write_spool_file(path, payload, &err)) << err;

  std::string full = slurp(path);
  ASSERT_GT(full.size(), 100u);
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(full.data(), static_cast<std::streamsize>(full.size() / 2));
  }

  std::string out = "sentinel", quarantine_path = path + ".quarantined";
  bool quarantined = false;
  EXPECT_FALSE(support::read_spool_file(path, &out, &err, &quarantined));
  EXPECT_TRUE(quarantined) << err;
  EXPECT_EQ(out, "sentinel") << "failed read must not touch the output";
  EXPECT_FALSE(exists(path)) << "torn file must be moved aside";
  EXPECT_TRUE(exists(quarantine_path));
  std::remove(quarantine_path.c_str());
}

TEST(SpoolFile, BitFlippedPayloadFailsTheChecksum) {
  const std::string path = tmp_path("spool_flipped.result");
  const std::string payload = "counters that must not be trusted: 12345\n";
  std::string err;
  ASSERT_TRUE(support::write_spool_file(path, payload, &err)) << err;
  std::string full = slurp(path);
  full[10] = static_cast<char>(full[10] ^ 0x20);  // same length, new bytes
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(full.data(), static_cast<std::streamsize>(full.size()));
  }
  std::string out;
  bool quarantined = false;
  EXPECT_FALSE(support::read_spool_file(path, &out, &err, &quarantined));
  EXPECT_TRUE(quarantined);
  std::remove((path + ".quarantined").c_str());
}

TEST(SpoolFile, StaleUnfooteredFileFromOlderVersionIsRejected) {
  const std::string path = tmp_path("spool_legacy.result");
  {
    std::ofstream f(path, std::ios::binary);
    f << "shard-result v1\nstats executions=10\nend\n";
  }
  std::string out, err;
  bool quarantined = false;
  EXPECT_FALSE(support::read_spool_file(path, &out, &err, &quarantined));
  EXPECT_TRUE(quarantined);
  std::remove((path + ".quarantined").c_str());
}

#if defined(__unix__) || defined(__APPLE__)

TEST(FullIo, RoundTripsAcrossAPipe) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  std::string msg(70000, 'q');  // larger than the default pipe buffer
  for (std::size_t i = 0; i < msg.size(); i += 7) {
    msg[i] = static_cast<char>('a' + (i % 26));
  }
  pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    close(fds[0]);
    bool ok = support::write_full(fds[1], msg);
    close(fds[1]);
    _exit(ok ? 0 : 1);
  }
  close(fds[1]);
  std::string back(msg.size(), '\0');
  EXPECT_TRUE(support::read_full(fds[0], back.data(), back.size()));
  EXPECT_EQ(back, msg);
  char extra = 0;
  EXPECT_EQ(support::read_some(fds[0], &extra, 1), 0) << "expected EOF";
  close(fds[0]);
  int status = 0;
  waitpid(child, &status, 0);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
}

TEST(FullIo, ReadFullReportsTruncationAtEof) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  ASSERT_TRUE(support::write_full(fds[1], "abc", 3));
  close(fds[1]);
  char buf[8] = {0};
  EXPECT_FALSE(support::read_full(fds[0], buf, 8));
  close(fds[0]);
}

TEST(FullIo, WriteToDeadPeerFailsWithEpipeNotASignal) {
  support::SigpipeIgnoreScope guard;
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  close(fds[0]);  // peer is gone
  errno = 0;
  EXPECT_FALSE(support::write_full(fds[1], "doomed", 6));
  EXPECT_EQ(errno, EPIPE);
  close(fds[1]);
}

harness::Benchmark spool_bench(const char* name) {
  harness::Benchmark bench;
  bench.name = name;
  bench.display = "Spool regression (synthetic)";
  bench.spec = nullptr;
  bench.tests.push_back([](mc::Exec& x) {
    auto* a = x.make<mc::Atomic<int>>(0, "a");
    auto* b = x.make<mc::Atomic<int>>(0, "b");
    int t1 = x.spawn([a, b] {
      a->store(1, mc::MemoryOrder::release);
      (void)b->load(mc::MemoryOrder::acquire);
    });
    int t2 = x.spawn([a, b] {
      b->store(1, mc::MemoryOrder::release);
      (void)a->load(mc::MemoryOrder::acquire);
    });
    x.join(t1);
    x.join(t2);
  });
  return bench;
}

TEST(SpoolRegression, TruncatedCachedShardResultIsRecomputedViaQuarantine) {
  // End-to-end satellite regression: truncate a cached shard result in a
  // parallel spool dir mid-file; the rerun must quarantine it, recompute
  // the shard, and still produce the exhaustive verdict.
  harness::Benchmark bench = spool_bench("spool-truncation-regression");

  // Keyed by pid: TempDir persists across test-binary invocations, and a
  // spool left by an OLDER BUILD would otherwise feed this run stale-wire
  // payloads (that case has its own test below).
  const std::string spool = testing::TempDir() + "spool_regression_dir." +
                            std::to_string(getpid());
  harness::RunOptions opts;
  harness::ParallelOptions par;
  par.jobs = 2;
  par.spool_dir = spool;

  harness::ParallelRunResult first =
      harness::run_benchmark_parallel(bench, opts, par);
  ASSERT_EQ(first.merged.verdict, mc::Verdict::kVerifiedExhaustive);
  ASSERT_GT(first.shards, 1u);

  // Truncate one cached result mid-file.
  const std::string victim = spool + "/t0/unit-0.result";
  std::string full = slurp(victim);
  ASSERT_FALSE(full.empty()) << victim;
  {
    std::ofstream f(victim, std::ios::binary | std::ios::trunc);
    f.write(full.data(), static_cast<std::streamsize>(full.size() / 2));
  }

  harness::ParallelRunResult second =
      harness::run_benchmark_parallel(bench, opts, par);
  EXPECT_EQ(second.merged.verdict, mc::Verdict::kVerifiedExhaustive);
  EXPECT_EQ(second.merged.mc.executions, first.merged.mc.executions);
  EXPECT_EQ(second.crashed_shards, 0u);
  // The torn entry must have been preserved for inspection, and the other
  // (intact) entries reused from the spool.
  EXPECT_TRUE(exists(victim + ".quarantined"));
  EXPECT_GT(second.spooled_shards, 0u);
  EXPECT_LT(second.spooled_shards, second.shards);
}

TEST(SpoolRegression, StaleWireVersionSpoolEntryIsQuarantinedAndRecomputed) {
  // A spool entry left by an older build has a valid CRC footer but a
  // payload today's shard-result parser rejects. It must be treated like
  // corruption — quarantined and recomputed — not merged (silently wrong)
  // or counted as a crashed shard (verdict destroyed).
  harness::Benchmark bench = spool_bench("spool-stale-wire-regression");

  const std::string spool = testing::TempDir() + "spool_stale_wire_dir." +
                            std::to_string(getpid());
  harness::RunOptions opts;
  harness::ParallelOptions par;
  par.jobs = 2;
  par.spool_dir = spool;

  harness::ParallelRunResult first =
      harness::run_benchmark_parallel(bench, opts, par);
  ASSERT_EQ(first.merged.verdict, mc::Verdict::kVerifiedExhaustive);
  ASSERT_GT(first.shards, 1u);

  // Replace one cached result with a well-formed spool file whose payload
  // speaks the previous wire version.
  const std::string victim = spool + "/t0/unit-0.result";
  ASSERT_FALSE(slurp(victim).empty()) << victim;
  std::string err;
  ASSERT_TRUE(support::write_spool_file(
      victim, "shard-result v3\nstats executions=10 exhausted=1\nend\n",
      &err))
      << err;

  harness::ParallelRunResult second =
      harness::run_benchmark_parallel(bench, opts, par);
  EXPECT_EQ(second.merged.verdict, mc::Verdict::kVerifiedExhaustive);
  EXPECT_EQ(second.merged.mc.executions, first.merged.mc.executions);
  EXPECT_EQ(second.crashed_shards, 0u);
  EXPECT_TRUE(exists(victim + ".quarantined"));
  EXPECT_GT(second.spooled_shards, 0u);
  EXPECT_LT(second.spooled_shards, second.shards);
}

// Directory-fsync helpers behind the spool's and journal's temp+rename
// durability: a created file's *name* is only durable once its directory
// has been synced. The positive paths must succeed on a real directory;
// the negative paths must report failure, not crash, so callers can
// degrade to non-durable operation with a warning.
TEST(DirFsync, SyncsARealDirectoryAndAParentOfAFile) {
  const std::string dir = testing::TempDir();
  EXPECT_TRUE(support::fsync_dir(dir));
  const std::string file = tmp_path("fsync-probe.txt");
  {
    std::ofstream f(file, std::ios::trunc);
    f << "x";
  }
  EXPECT_TRUE(support::fsync_parent_dir(file));
  // A bare filename has no directory component: "." is synced.
  EXPECT_TRUE(support::fsync_parent_dir("bare-name-no-dir"));
  std::remove(file.c_str());
}

TEST(DirFsync, MissingDirectoryFailsCleanly) {
  EXPECT_FALSE(support::fsync_dir(tmp_path("no/such/dir/anywhere")));
  EXPECT_FALSE(
      support::fsync_parent_dir(tmp_path("no/such/dir/anywhere/file")));
}

#endif  // fork-capable platforms

}  // namespace
}  // namespace cds
