// Integration tests of the observability layer: the engine's registry must
// agree with its ExplorationStats, a sharded run's merged counters and
// histograms must be bit-identical to the serial run's, and the Chrome
// trace export must produce the JSON shape Perfetto loads.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "ds/suite.h"
#include "harness/parallel.h"
#include "harness/runner.h"
#include "mc/atomic.h"
#include "mc/engine.h"
#include "obs/metrics.h"
#include "obs/trace_export.h"

namespace cds {
namespace {

mc::TestFn two_writer_race() {
  return [](mc::Exec& x) {
    auto* a = x.make<mc::Atomic<int>>(0, "a");
    int t1 = x.spawn([a] { a->store(1, mc::MemoryOrder::relaxed); });
    int t2 = x.spawn([a] { a->store(2, mc::MemoryOrder::relaxed); });
    x.join(t1);
    x.join(t2);
    (void)a->load(mc::MemoryOrder::relaxed);
  };
}

TEST(ObsIntegration, EngineRegistryAgreesWithExplorationStats) {
  mc::Engine e;
  auto stats = e.explore(two_writer_race());
  const obs::Registry& m = e.metrics();

  EXPECT_EQ(m.counter_value("engine.executions"), stats.executions);
  EXPECT_EQ(m.counter_value("engine.sleep_set_prunes"), stats.pruned_redundant);
  // Every execution records its trail depth once.
  EXPECT_EQ(m.histograms().at("engine.trail_depth").samples, stats.executions);
  // The final load always has at least one reads-from candidate, and the
  // fan-out histogram samples once per rf choice point.
  EXPECT_GT(m.counter_value("engine.rf_choice_points"), 0u);
  EXPECT_GE(m.counter_value("engine.rf_candidates"),
            m.counter_value("engine.rf_choice_points"));
  EXPECT_EQ(m.histograms().at("engine.rf_fanout").samples,
            m.counter_value("engine.rf_choice_points"));
  // Peaks and phase timers exist (values are wall/topology dependent).
  EXPECT_GT(m.gauges().at("engine.mem_estimate_peak_bytes").value, 0u);
  EXPECT_GT(m.timers().at("engine.explore").total_ns, 0u);
}

TEST(ObsIntegration, ExploreTwiceAccumulatesCounters) {
  // The registry outlives explore() calls: a second exploration adds onto
  // the same counters (the harness snapshots between tests by merging).
  mc::Engine e;
  auto s1 = e.explore(two_writer_race());
  std::uint64_t after_first = e.metrics().counter_value("engine.executions");
  EXPECT_EQ(after_first, s1.executions);
  auto s2 = e.explore(two_writer_race());
  EXPECT_EQ(e.metrics().counter_value("engine.executions"),
            s1.executions + s2.executions);
}

// The determinism contract behind `--jobs N --metrics-out`: counters and
// histograms of an exhaustive sharded run merge bit-identical to the
// serial run. Gauges/timers are exempt (peaks and wall time).
TEST(ObsIntegration, ShardedCountersAndHistogramsMatchSerial) {
  ds::register_all_benchmarks();
  const auto* b = harness::find_benchmark("peterson-lock");
  ASSERT_NE(b, nullptr);
  harness::RunOptions opts;
  harness::RunResult serial = harness::run_benchmark(*b, opts);
  harness::ParallelOptions par;
  par.jobs = 4;
  harness::ParallelRunResult pr = harness::run_benchmark_parallel(*b, opts, par);
  ASSERT_EQ(pr.crashed_shards, 0u);
  EXPECT_TRUE(pr.merged.mc.exhausted);

  const auto& sc = serial.metrics.counters();
  const auto& pc = pr.merged.metrics.counters();
  // Every serial counter appears in the merge with the identical value.
  for (const auto& [name, c] : sc) {
    auto it = pc.find(name);
    ASSERT_NE(it, pc.end()) << name;
    EXPECT_EQ(it->second.value, c.value) << name;
  }
  // And the merge adds no extra counters (coordinator facts ride as
  // gauges/timers, never as counters).
  for (const auto& [name, c] : pc) {
    EXPECT_TRUE(sc.count(name)) << "parallel-only counter " << name << "="
                                << c.value;
  }
  const auto& sh = serial.metrics.histograms();
  const auto& ph = pr.merged.metrics.histograms();
  ASSERT_EQ(sh.size(), ph.size());
  for (const auto& [name, h] : sh) {
    auto it = ph.find(name);
    ASSERT_NE(it, ph.end()) << name;
    EXPECT_EQ(it->second.samples, h.samples) << name;
    EXPECT_EQ(it->second.buckets, h.buckets) << name;
  }
  // The coordinator does stamp its topology facts as gauges.
  EXPECT_EQ(pr.merged.metrics.gauges().at("parallel.jobs").value, 4u);
  EXPECT_GT(pr.merged.metrics.gauges().at("parallel.shards").value, 1u);
}

TEST(ObsIntegration, SpecCountersRideTheEngineRegistry) {
  harness::RunResult r = harness::run_with_spec(two_writer_race());
  EXPECT_EQ(r.metrics.counter_value("spec.executions_checked"),
            r.spec.executions_checked);
  EXPECT_EQ(r.metrics.counter_value("spec.histories_checked"),
            r.spec.histories_checked);
  EXPECT_EQ(r.metrics.counter_value("spec.justification_checks"),
            r.spec.justification_checks);
}

TEST(ObsIntegration, ChromeTraceExportShape) {
  mc::Config cfg;
  cfg.collect_trace = true;
  cfg.max_executions = 1;
  cfg.sample_executions = 0;
  mc::Engine e(cfg);
  e.explore([](mc::Exec& x) {
    auto* a = x.make<mc::Atomic<int>>(0, "flag");
    int t = x.spawn([a] { a->store(1, mc::MemoryOrder::release); });
    x.join(t);
    (void)a->load(mc::MemoryOrder::acquire);
  });
  ASSERT_FALSE(e.trace().empty());

  std::vector<obs::PhaseSpan> phases;
  phases.push_back(obs::PhaseSpan{"dfs", 0.0, 0.25});
  std::string json = obs::render_chrome_trace(
      e.trace(),
      [&e](std::uint32_t loc) {
        const char* n = e.location_name(loc);
        return n != nullptr ? std::string(n) : "loc" + std::to_string(loc);
      },
      phases);

  // Chrome trace-event object format: a traceEvents array of "X"/"M"
  // records. Perfetto rejects anything else.
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Modeled rows are pid 0 with the location label; the phase span rides
  // pid 1.
  EXPECT_NE(json.find("modeled execution"), std::string::npos);
  EXPECT_NE(json.find("flag"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1,\"tid\":0"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"dfs\""), std::string::npos);
  // No trailing comma before the array close (the classic invalid-JSON
  // failure mode of hand-rolled emitters).
  EXPECT_EQ(json.find(",\n]"), std::string::npos);

  // Event count: metadata (2 process names + one per thread row) + one per
  // trace event + one per phase span.
  std::size_t records = 0;
  for (std::size_t p = json.find("\"ph\":"); p != std::string::npos;
       p = json.find("\"ph\":", p + 1)) {
    ++records;
  }
  int max_tid = -1;
  for (const mc::TraceEvent& ev : e.trace()) {
    if (ev.thread > max_tid) max_tid = ev.thread;
  }
  EXPECT_EQ(records, 2u + static_cast<std::size_t>(max_tid + 1) +
                         e.trace().size() + phases.size());
}

}  // namespace
}  // namespace cds
