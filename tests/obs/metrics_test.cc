// Unit tests of the observability registry: merge semantics per metric
// kind, power-of-two histogram bucketing, canonical JSON snapshots, and
// the shard wire format round trip.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace cds::obs {
namespace {

TEST(ObsMetrics, CounterGaugeTimerBasics) {
  Registry r;
  Counter& c = r.counter("a.count");
  c.add();
  c.add(41);
  EXPECT_EQ(r.counter_value("a.count"), 42u);
  EXPECT_EQ(r.counter_value("missing"), 0u);

  Gauge& g = r.gauge("a.peak");
  g.set_max(7);
  g.set_max(3);  // lower: ignored
  EXPECT_EQ(r.gauges().at("a.peak").value, 7u);
  g.set(2);  // explicit set overrides
  EXPECT_EQ(r.gauges().at("a.peak").value, 2u);

  Timer& t = r.timer("a.time");
  t.add_ns(1'500'000'000);
  t.add_ns(500'000'000);
  EXPECT_EQ(r.timers().at("a.time").count, 2u);
  EXPECT_DOUBLE_EQ(r.timers().at("a.time").total_seconds(), 2.0);

  // Lookup-or-create returns stable references: the cached pointer idiom
  // the engine hot path relies on.
  EXPECT_EQ(&r.counter("a.count"), &c);
}

TEST(ObsMetrics, HistogramBucketBoundaries) {
  // Bucket 0 holds 0; bucket k >= 1 holds [2^(k-1), 2^k).
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(7), 3u);
  EXPECT_EQ(Histogram::bucket_of(8), 4u);
  // The last bucket absorbs the unbounded tail.
  EXPECT_EQ(Histogram::bucket_of(~0ull), Histogram::kBuckets - 1);

  Histogram h;
  h.record(0);
  h.record(1);
  h.record(6);
  h.record(6);
  EXPECT_EQ(h.samples, 4u);
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[3], 2u);
}

TEST(ObsMetrics, MergeSemanticsPerKind) {
  Registry a;
  a.counter("c").add(10);
  a.gauge("g").set(5);
  a.timer("t").add_ns(100);
  a.histogram("h").record(3);

  Registry b;
  b.counter("c").add(32);
  b.counter("only_b").add(1);
  b.gauge("g").set(3);  // lower than a's: max wins
  b.timer("t").add_ns(50);
  b.histogram("h").record(3);
  b.histogram("h").record(100);

  a.merge(b);
  EXPECT_EQ(a.counter_value("c"), 42u);          // counters sum
  EXPECT_EQ(a.counter_value("only_b"), 1u);      // missing = implicit 0
  EXPECT_EQ(a.gauges().at("g").value, 5u);       // gauges max
  EXPECT_EQ(a.timers().at("t").total_ns, 150u);  // timers sum
  EXPECT_EQ(a.timers().at("t").count, 2u);
  EXPECT_EQ(a.histograms().at("h").samples, 3u);  // histograms sum buckets
  EXPECT_EQ(a.histograms().at("h").buckets[2], 2u);
}

TEST(ObsMetrics, MergeIsCommutative) {
  // Shard results merge in whatever order workers finish; the snapshot
  // must not depend on it.
  auto populate_a = [](Registry& r) {
    r.counter("x").add(3);
    r.gauge("p").set(9);
    r.histogram("d").record(17);
  };
  auto populate_b = [](Registry& r) {
    r.counter("x").add(4);
    r.counter("y").add(1);
    r.gauge("p").set(2);
    r.histogram("d").record(1);
  };
  Registry ab, a, b;
  populate_a(ab);
  populate_a(a);
  populate_b(b);
  ab.merge(b);
  b.merge(a);
  EXPECT_EQ(ab.to_json(), b.to_json());
}

TEST(ObsMetrics, JsonSnapshotIsCanonical) {
  // Same contents registered in different orders render identical bytes.
  Registry r1;
  r1.counter("b").add(2);
  r1.counter("a").add(1);
  r1.gauge("z").set(3);
  Registry r2;
  r2.gauge("z").set(3);
  r2.counter("a").add(1);
  r2.counter("b").add(2);
  EXPECT_EQ(r1.to_json(), r2.to_json());

  // Golden schema: the exact shape CI and downstream dashboards parse.
  Registry g;
  g.counter("engine.executions").add(12);
  g.gauge("parallel.jobs").set(4);
  g.timer("engine.explore").add_ns(1000);
  g.histogram("engine.trail_depth").record(0);
  g.histogram("engine.trail_depth").record(2);
  EXPECT_EQ(g.to_json(),
            "{\n"
            "  \"schema\": \"cdsspec-metrics-v1\",\n"
            "  \"counters\": {\n"
            "    \"engine.executions\": 12\n"
            "  },\n"
            "  \"gauges\": {\n"
            "    \"parallel.jobs\": 4\n"
            "  },\n"
            "  \"timers_ns\": {\n"
            "    \"engine.explore\": {\"total_ns\": 1000, \"count\": 1}\n"
            "  },\n"
            "  \"histograms\": {\n"
            "    \"engine.trail_depth\": {\"samples\": 2, \"buckets\": [1, 0, 1]}\n"
            "  }\n"
            "}\n");
}

TEST(ObsMetrics, WireFormatRoundTrips) {
  Registry src;
  src.counter("engine.executions").add(1279);
  src.gauge("engine.mem_estimate_peak_bytes").set(123456);
  src.timer("engine.explore").add_ns(987654321);
  src.histogram("engine.rf_fanout").record(1);
  src.histogram("engine.rf_fanout").record(9);

  Registry dst;
  std::string err;
  for (const std::string& line : src.render_wire()) {
    ASSERT_TRUE(dst.parse_wire_line(line, &err)) << err;
  }
  EXPECT_EQ(dst.to_json(), src.to_json());
}

TEST(ObsMetrics, WireParserRejectsMalformedLines) {
  Registry r;
  std::string err;
  EXPECT_FALSE(r.parse_wire_line("", &err));
  EXPECT_FALSE(r.parse_wire_line("c name", &err));           // missing value
  EXPECT_FALSE(r.parse_wire_line("c name twelve", &err));    // non-numeric
  EXPECT_FALSE(r.parse_wire_line("q name 1", &err));         // unknown kind
  EXPECT_FALSE(r.parse_wire_line("t name 100", &err));       // missing count
  EXPECT_FALSE(err.empty());
  // A histogram with more buckets than the fixed shape must be rejected,
  // not silently truncated.
  std::string too_many = "h big 1";
  for (std::size_t i = 0; i < Histogram::kBuckets + 1; ++i) too_many += " 1";
  EXPECT_FALSE(r.parse_wire_line(too_many, &err));
}

}  // namespace
}  // namespace cds::obs
