// End-to-end checks of the paper's running example (Figures 1-4, 6).
#include <gtest/gtest.h>

#include "ds/blocking_queue.h"
#include "harness/runner.h"

namespace cds {
namespace {

using ds::BlockingQueue;
using harness::RunResult;
using harness::run_with_spec;

TEST(BlockingQueue, SequentialFifoPassesSpec) {
  RunResult r = run_with_spec(ds::blocking_queue_test_seq);
  EXPECT_EQ(r.mc.violations_total, 0u)
      << (r.reports.empty() ? "" : r.reports[0]);
  EXPECT_GT(r.spec.histories_checked, 0u);
}

TEST(BlockingQueue, ProducerConsumerPassesSpec) {
  RunResult r = run_with_spec(ds::blocking_queue_test_2t);
  EXPECT_EQ(r.mc.violations_total, 0u)
      << (r.reports.empty() ? "" : r.reports[0]);
}

TEST(BlockingQueue, RacingDequeuersPassSpec) {
  RunResult r = run_with_spec(ds::blocking_queue_test_race_deq);
  EXPECT_EQ(r.mc.violations_total, 0u)
      << (r.reports.empty() ? "" : r.reports[0]);
}

TEST(BlockingQueue, Figure3ExecutionJustifiedUnderNondeterministicSpec) {
  // The non-linearizable r1 == r2 == -1 execution of Figure 3 is correct
  // under the weakened (justified) specification: no violations at all.
  RunResult r = run_with_spec(ds::blocking_queue_test_fig3);
  EXPECT_EQ(r.mc.violations_total, 0u)
      << (r.reports.empty() ? "" : r.reports[0]);
}

TEST(BlockingQueue, Figure3InadmissibleUnderDeterministicSpec) {
  // Under the deterministic spec (Section 2.3 option 1), the same usage
  // pattern produces executions in which a deq returning -1 is unordered
  // with an enq: the admissibility rule must fire (warning, not checked).
  RunResult r = run_with_spec([](mc::Exec& x) {
    auto* qx = x.make<BlockingQueue>(BlockingQueue::deterministic_specification());
    auto* qy = x.make<BlockingQueue>(BlockingQueue::deterministic_specification());
    int t1 = x.spawn([&] {
      qx->enq(1);
      (void)qy->deq();
    });
    int t2 = x.spawn([&] {
      qy->enq(1);
      (void)qx->deq();
    });
    x.join(t1);
    x.join(t2);
  });
  EXPECT_TRUE(r.detected_admissibility());
  EXPECT_FALSE(r.detected_assertion());
  EXPECT_FALSE(r.detected_builtin());
}

TEST(BlockingQueue, DeterministicSpecPassesWhenUsageIsOrdered) {
  // A valid usage pattern (Figure 4c): conflicting queue operations are
  // ordered by hb (same thread). The deterministic spec holds.
  RunResult r = run_with_spec([](mc::Exec& x) {
    auto* q = x.make<BlockingQueue>(BlockingQueue::deterministic_specification());
    q->enq(1);
    q->enq(2);
    EXPECT_EQ(q->deq(), 1);
    EXPECT_EQ(q->deq(), 2);
    EXPECT_EQ(q->deq(), -1);
  });
  EXPECT_EQ(r.mc.violations_total, 0u)
      << (r.reports.empty() ? "" : r.reports[0]);
}

TEST(BlockingQueue, BrokenSynchronizationDetected) {
  // Figure 1's bug, simulated by hand: an "enqueue" whose publish CAS is
  // relaxed lets a dequeuer read an uninitialized node payload.
  struct WeakQueue {
    struct Node {
      Node() : data("wq.data"), next(nullptr, "wq.next") {}
      mc::Atomic<int> data;
      mc::Atomic<Node*> next;
    };
    WeakQueue() : tail_("wq.tail"), head_("wq.head"), obj_(BlockingQueue::specification()) {
      Node* dummy = mc::alloc<Node>();
      tail_.init(dummy);
      head_.init(dummy);
    }
    void enq(int val) {
      spec::Method m(obj_, "enq", {val});
      Node* n = mc::alloc<Node>();
      n->data.store(val, mc::MemoryOrder::relaxed);
      while (true) {
        Node* t = tail_.load(mc::MemoryOrder::acquire);
        Node* old = nullptr;
        // BUG: relaxed publish — the initializing store to data is not
        // ordered before the node becomes reachable.
        if (t->next.compare_exchange_strong(old, n, mc::MemoryOrder::relaxed,
                                            mc::MemoryOrder::relaxed)) {
          m.op_define();
          tail_.store(n, mc::MemoryOrder::release);
          return;
        }
        mc::yield();
      }
    }
    int deq() {
      spec::Method m(obj_, "deq");
      while (true) {
        Node* h = head_.load(mc::MemoryOrder::acquire);
        Node* n = h->next.load(mc::MemoryOrder::acquire);
        m.op_clear_define();
        if (n == nullptr) return static_cast<int>(m.ret(-1));
        if (head_.compare_exchange_strong(h, n, mc::MemoryOrder::release,
                                          mc::MemoryOrder::relaxed)) {
          return static_cast<int>(m.ret(n->data.load(mc::MemoryOrder::relaxed)));
        }
        mc::yield();
      }
    }
    mc::Atomic<Node*> tail_;
    mc::Atomic<Node*> head_;
    spec::Object obj_;
  };

  RunResult r = run_with_spec([](mc::Exec& x) {
    auto* q = x.make<WeakQueue>();
    int t1 = x.spawn([q] { q->enq(42); });
    int t2 = x.spawn([q] { (void)q->deq(); });
    x.join(t1);
    x.join(t2);
  });
  EXPECT_TRUE(r.any_detection());
  EXPECT_TRUE(r.detected_builtin())
      << "reading the node payload without synchronization is an "
         "uninitialized load";
}

}  // namespace
}  // namespace cds
