// Chase-Lev deque: the paper's headline benchmark — correct version clean,
// the published resize bug detected two ways (built-in and spec), and the
// overly-strong top CAS weakening NOT detected (Section 6.4.3).
#include <gtest/gtest.h>

#include "ds/chaselev_deque.h"
#include "ds/concurrent_hashmap.h"
#include "ds/lockfree_hashtable.h"
#include "harness/runner.h"
#include "inject/inject.h"

namespace cds {
namespace {

using harness::RunResult;
using harness::run_with_spec;

harness::RunOptions detect_opts() {
  harness::RunOptions o;
  o.engine.stop_on_first_violation = true;
  return o;
}

// Bounded-absence options: proving "no violation" requires exploring the
// whole (large) tree; cap it for unit-test latency — the nightly benches
// run uncapped.
harness::RunOptions absence_opts() {
  harness::RunOptions o;
  o.engine.max_executions = 250000;
  return o;
}

void expect_clean(const RunResult& r) {
  EXPECT_EQ(r.mc.violations_total, 0u)
      << (r.reports.empty() ? "(no reports)" : r.reports[0]);
}

TEST(ChaseLev, PaperTestClean) {
  expect_clean(run_with_spec(ds::chaselev_test_paper, absence_opts()));
}

TEST(ChaseLev, StealRaceClean) {
  expect_clean(run_with_spec(ds::chaselev_test_steal_race, absence_opts()));
}

TEST(ChaseLev, ResizeClean) {
  expect_clean(run_with_spec(ds::chaselev_test_resize));
}

TEST(ChaseLev, KnownResizeBugCaughtByBuiltinCheck) {
  // As CDSChecker originally found it: the weakly-published resize array
  // lets a steal load an uninitialized slot.
  RunResult r =
      run_with_spec(ds::chaselev_buggy_test(/*init_arrays=*/false), detect_opts());
  EXPECT_TRUE(r.detected_builtin())
      << "uninitialized-load built-in check must fire";
}

TEST(ChaseLev, KnownResizeBugCaughtBySpecWhenArraysInitialized) {
  // The paper's experiment: suppress the uninitialized-load report by
  // zero-initializing the new array; the spec still reports the bug when a
  // steal returns the wrong item.
  RunResult r =
      run_with_spec(ds::chaselev_buggy_test(/*init_arrays=*/true), detect_opts());
  EXPECT_FALSE(r.detected_builtin());
  EXPECT_TRUE(r.detected_assertion())
      << "steal returning the wrong item must violate the spec";
}

TEST(ChaseLev, OverlyStrongTakeTopCasNotDetected) {
  // Section 6.4.3: weakening the seq_cst CAS on top in take() to relaxed
  // triggers no specification violation (the authors confirmed the
  // parameter is unnecessarily strong).
  inject::SiteId site = -1;
  for (const auto& s : inject::sites_for("chase-lev-deque")) {
    if (s.name == "take: top CAS") site = s.id;
  }
  ASSERT_GE(site, 0);
  inject::inject(site);
  bool any = run_with_spec(ds::chaselev_test_paper, absence_opts()).any_detection() ||
             run_with_spec(ds::chaselev_test_steal_race, absence_opts()).any_detection() ||
             run_with_spec(ds::chaselev_test_resize, absence_opts()).any_detection();
  inject::clear_injection();
  EXPECT_FALSE(any) << "the take-side top CAS strength is not needed";
}

TEST(ChaseLev, StealSideWeakeningsDetected) {
  // In contrast, the steal-side synchronization is load-bearing.
  int detected = 0, checked = 0;
  for (const auto& s : inject::sites_for("chase-lev-deque")) {
    if (!s.injectable()) continue;
    if (s.name != "steal: bottom load" && s.name != "resize: array publish store")
      continue;
    ++checked;
    inject::inject(s.id);
    // The resize test first: the paper-shaped test never resizes, so the
    // resize-publish weakening only manifests here (short-circuit saves a
    // full exploration of the larger test).
    bool hit = run_with_spec(ds::chaselev_test_resize, detect_opts()).any_detection() ||
               run_with_spec(ds::chaselev_test_paper, detect_opts()).any_detection();
    inject::clear_injection();
    if (hit) ++detected;
  }
  EXPECT_EQ(checked, 2);
  EXPECT_EQ(detected, checked);
}

TEST(LockfreeHashtable, TwoWriters) {
  expect_clean(run_with_spec(ds::lfht_test_2t));
}

TEST(LockfreeHashtable, SameKeyPutGet) {
  expect_clean(run_with_spec(ds::lfht_test_same_key));
}

TEST(LockfreeHashtable, ValueWeakeningDetected) {
  int detected = 0, checked = 0;
  for (const auto& s : inject::sites_for("lockfree-hashtable")) {
    if (!s.injectable()) continue;
    if (s.name.find("value") == std::string::npos) continue;
    ++checked;
    inject::inject(s.id);
    bool hit = run_with_spec(ds::lfht_test_same_key, detect_opts()).any_detection() ||
               run_with_spec(ds::lfht_test_2t, detect_opts()).any_detection();
    inject::clear_injection();
    if (hit) ++detected;
  }
  EXPECT_GT(checked, 0);
  EXPECT_EQ(detected, checked);
}

TEST(ConcurrentHashMap, PutGet) {
  expect_clean(run_with_spec(ds::chm_test_put_get));
}

TEST(ConcurrentHashMap, TwoWritersSameSegment) {
  expect_clean(run_with_spec(ds::chm_test_two_writers));
}

}  // namespace
}  // namespace cds
