// Suite-wide properties over every registered benchmark:
//   - under "Strengthen the Atomics" (every operation seq_cst, the paper's
//     Section 2 alternative) each correct structure remains violation-free
//     — strengthening can only remove behaviors;
//   - every benchmark's spec has at least one ordering-point site and at
//     least one method once exercised.
#include <gtest/gtest.h>

#include <string>

#include "ds/suite.h"
#include "harness/runner.h"

namespace cds {
namespace {

class BenchmarkSweep : public testing::TestWithParam<std::string> {
 protected:
  static void SetUpTestSuite() { ds::register_all_benchmarks(); }
};

TEST_P(BenchmarkSweep, CleanUnderScStrengthening) {
  const auto* b = harness::find_benchmark(GetParam());
  ASSERT_NE(b, nullptr);
  harness::RunOptions opts;
  opts.engine.strengthen_to_sc = true;
  opts.engine.max_executions = 150000;
  auto r = harness::run_benchmark(*b, opts);
  EXPECT_EQ(r.mc.violations_total, 0u)
      << GetParam() << ": "
      << (r.reports.empty() ? "(no reports)" : r.reports[0]);
  EXPECT_GT(r.mc.feasible, 0u);
}

TEST_P(BenchmarkSweep, SpecHasSubstance) {
  const auto* b = harness::find_benchmark(GetParam());
  ASSERT_NE(b, nullptr);
  // Exercise once so annotation sites register.
  harness::RunOptions opts;
  opts.engine.max_executions = 200;
  (void)harness::run_benchmark(*b, opts);
  EXPECT_GE(b->spec->method_count(), 2) << GetParam();
  EXPECT_GE(b->spec->ordering_point_sites(), 1) << GetParam();
  EXPECT_GE(b->spec->spec_lines(), 3) << GetParam();
}

// The Chase-Lev deque is excluded from the SC sweep: its owner's take()
// has a *claim* (the bottom decrement) and a *decision* (the top CAS) that
// are separate events, so under all-seq_cst operations the ordering points
// totally order takes and steals in ways that strip the CONCURRENT
// justification the Figure-6-style spec relies on — the paper's framework
// targets the release/acquire setting where those calls stay concurrent
// (its own SC-counterpart remark concerns commit points, not this spec).
// The rel/acq sweep in chaselev_test.cc covers the deque.
INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, BenchmarkSweep,
    testing::Values("spsc-queue", "rcu",
                    "lockfree-hashtable", "mcs-lock", "mpmc-queue",
                    "ms-queue", "linux-rwlock", "seqlock", "ticket-lock",
                    "blocking-queue", "relaxed-register",
                    "concurrent-hashmap", "lamport-queue", "ttas-lock",
                    "peterson-lock"),
    [](const testing::TestParamInfo<std::string>& info) {
      std::string n = info.param;
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

}  // namespace
}  // namespace cds
