// Suite-wide properties over every registered benchmark:
//   - under "Strengthen the Atomics" (every operation seq_cst, the paper's
//     Section 2 alternative) each correct structure remains violation-free
//     — strengthening can only remove behaviors;
//   - every benchmark's spec has at least one ordering-point site and at
//     least one method once exercised;
//   - a short stress-backend run (real threads, seeded preemption) finds
//     no spec violation and never claims more than inconclusive.
//
// The parameter lists come from the benchmark registry itself
// (ds::register_all_benchmarks), not from hardcoded name lists: registering
// a new structure in src/ds/suite.cc automatically enrolls it here, in the
// stress smoke sweep, and in the model/stress cross-backend suite.
// Benchmarks whose spec needs genuinely concurrent calls opt out of the SC
// sweep via Benchmark::spec_requires_concurrency at their registration.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ds/suite.h"
#include "harness/runner.h"
#include "harness/stress_backend.h"

namespace cds {
namespace {

std::vector<std::string> registered_names(bool sc_sweep_only) {
  ds::register_all_benchmarks();
  std::vector<std::string> names;
  for (const harness::Benchmark& b : harness::benchmarks()) {
    if (sc_sweep_only && b.spec_requires_concurrency) continue;
    names.push_back(b.name);
  }
  return names;
}

std::string safe_name(const testing::TestParamInfo<std::string>& info) {
  std::string n = info.param;
  for (char& c : n) {
    if (c == '-') c = '_';
  }
  return n;
}

class BenchmarkSweep : public testing::TestWithParam<std::string> {
 protected:
  static void SetUpTestSuite() { ds::register_all_benchmarks(); }
};

// SC-compatible benchmarks only (see Benchmark::spec_requires_concurrency).
class ScSweep : public BenchmarkSweep {};

TEST_P(ScSweep, CleanUnderScStrengthening) {
  const auto* b = harness::find_benchmark(GetParam());
  ASSERT_NE(b, nullptr);
  harness::RunOptions opts;
  opts.engine.strengthen_to_sc = true;
  opts.engine.max_executions = 150000;
  auto r = harness::run_benchmark(*b, opts);
  EXPECT_EQ(r.mc.violations_total, 0u)
      << GetParam() << ": "
      << (r.reports.empty() ? "(no reports)" : r.reports[0]);
  EXPECT_GT(r.mc.feasible, 0u);
}

TEST_P(BenchmarkSweep, SpecHasSubstance) {
  const auto* b = harness::find_benchmark(GetParam());
  ASSERT_NE(b, nullptr);
  // Exercise once so annotation sites register.
  harness::RunOptions opts;
  opts.engine.max_executions = 200;
  (void)harness::run_benchmark(*b, opts);
  EXPECT_GE(b->spec->method_count(), 2) << GetParam();
  EXPECT_GE(b->spec->ordering_point_sites(), 1) << GetParam();
  EXPECT_GE(b->spec->spec_lines(), 3) << GetParam();
}

// Every benchmark stays clean under the stress backend: real threads,
// seeded preemption, observed-history spec checking. A handful of
// iterations per unit test keeps this a smoke test; the dedicated
// cross-backend suite and the CI stress job run deeper.
TEST_P(BenchmarkSweep, StressBackendSmoke) {
  const auto* b = harness::find_benchmark(GetParam());
  ASSERT_NE(b, nullptr);
  harness::StressOptions opts;
  opts.iters = 8;
  opts.seed = 0xC0FFEEu;
  for (std::size_t ti = 0; ti < b->tests.size(); ++ti) {
    auto r = harness::run_stress(b->tests[ti], opts);
    EXPECT_EQ(r.stats.violations_total, 0u)
        << GetParam() << "#" << ti << ": "
        << (r.violations.empty() ? "(none recorded)"
                                 : r.violations[0].detail);
    // Stress samples real schedules: it can falsify, never verify.
    EXPECT_EQ(r.verdict, mc::Verdict::kInconclusive) << GetParam();
    EXPECT_EQ(r.stats.iterations, opts.iters) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkSweep,
                         testing::ValuesIn(registered_names(false)),
                         safe_name);

INSTANTIATE_TEST_SUITE_P(ScCompatibleBenchmarks, ScSweep,
                         testing::ValuesIn(registered_names(true)),
                         safe_name);

}  // namespace
}  // namespace cds
