// Spec checks for the register, ticket lock, seqlock, and SPSC queue:
// correct implementations must be violation-free on every unit test, and
// targeted weakenings must be detected.
#include <gtest/gtest.h>

#include "ds/lamport_queue.h"
#include "ds/register.h"
#include "ds/seqlock.h"
#include "ds/spsc_queue.h"
#include "ds/ticket_lock.h"
#include "harness/runner.h"
#include "inject/inject.h"

namespace cds {
namespace {

using harness::RunResult;
using harness::run_with_spec;

harness::RunOptions detect_opts() {
  harness::RunOptions o;
  o.engine.stop_on_first_violation = true;
  return o;
}

void expect_clean(const RunResult& r) {
  EXPECT_EQ(r.mc.violations_total, 0u)
      << (r.reports.empty() ? "(no reports)" : r.reports[0]);
}

TEST(RelaxedRegister, WriterReaderJustified) {
  expect_clean(run_with_spec(ds::register_test_wr));
}

TEST(RelaxedRegister, TwoWritersJustified) {
  expect_clean(run_with_spec(ds::register_test_two_writers));
}

TEST(RelaxedRegister, HappensBeforeChainForcesFreshValue) {
  expect_clean(run_with_spec(ds::register_test_hb_chain));
}

TEST(TicketLock, TwoThreadsMutualExclusion) {
  expect_clean(run_with_spec(ds::ticket_lock_test_2t));
}

TEST(TicketLock, ThreeThreadsMutualExclusion) {
  expect_clean(run_with_spec(ds::ticket_lock_test_3t));
}

TEST(TicketLock, WeakenedServingLoadDetected) {
  auto sites = inject::sites_for("ticket-lock");
  ASSERT_FALSE(sites.empty());
  int detected = 0, injectable = 0;
  for (const auto& s : sites) {
    if (!s.injectable()) continue;
    ++injectable;
    inject::inject(s.id);
    RunResult r = run_with_spec(ds::ticket_lock_test_2t, detect_opts());
    inject::clear_injection();
    if (r.any_detection()) ++detected;
  }
  EXPECT_EQ(injectable, 2) << "paper: ticket lock has 2 injectable parameters";
  EXPECT_EQ(detected, injectable)
      << "paper Figure 8: 100% of ticket lock injections detected";
}

TEST(SeqLock, OneWriterOneReader) {
  expect_clean(run_with_spec(ds::seqlock_test_1w1r));
}

TEST(SeqLock, TwoWritersOneReader) {
  expect_clean(run_with_spec(ds::seqlock_test_2w1r));
}

TEST(SeqLock, InjectionsDetected) {
  int detected = 0, injectable = 0;
  for (const auto& s : inject::sites_for("seqlock")) {
    if (!s.injectable()) continue;
    ++injectable;
    inject::inject(s.id);
    bool hit = run_with_spec(ds::seqlock_test_1w1r, detect_opts()).any_detection() ||
               run_with_spec(ds::seqlock_test_2w1r, detect_opts()).any_detection();
    inject::clear_injection();
    if (hit) ++detected;
  }
  EXPECT_GT(injectable, 0);
  // Not every weakening is observable in the operational model (see
  // DESIGN.md); require a strong majority.
  EXPECT_GE(detected * 10, injectable * 6)
      << detected << "/" << injectable << " detected";
}

TEST(SpscQueue, OneProducerOneConsumer) {
  expect_clean(run_with_spec(ds::spsc_test_1p1c));
}

TEST(SpscQueue, BurstProducer) {
  expect_clean(run_with_spec(ds::spsc_test_burst));
}

TEST(SpscQueue, BothInjectionsDetected) {
  int detected = 0, injectable = 0;
  for (const auto& s : inject::sites_for("spsc-queue")) {
    if (!s.injectable()) continue;
    ++injectable;
    inject::inject(s.id);
    RunResult r = run_with_spec(ds::spsc_test_1p1c, detect_opts());
    inject::clear_injection();
    if (r.any_detection()) ++detected;
  }
  EXPECT_EQ(injectable, 2) << "paper: SPSC queue has 2 injections";
  EXPECT_EQ(detected, injectable) << "paper Figure 8: 2/2 detected";
}

TEST(LamportQueue, OneProducerOneConsumer) {
  expect_clean(run_with_spec(ds::lamport_test_1p1c));
}

TEST(LamportQueue, FullRingConservation) {
  // Includes a model_assert (user assertion) on end-to-end conservation.
  expect_clean(run_with_spec(ds::lamport_test_full));
}

TEST(LamportQueue, InjectionsDetected) {
  int detected = 0, injectable = 0;
  for (const auto& s : inject::sites_for("lamport-queue")) {
    if (!s.injectable()) continue;
    ++injectable;
    inject::inject(s.id);
    bool hit = run_with_spec(ds::lamport_test_1p1c, detect_opts()).any_detection() ||
               run_with_spec(ds::lamport_test_full, detect_opts()).any_detection();
    inject::clear_injection();
    if (hit) ++detected;
  }
  EXPECT_EQ(injectable, 4);
  EXPECT_GE(detected, 2) << detected << "/" << injectable;
}

TEST(UserAssertion, ModelAssertReportsViolation) {
  harness::RunResult r = run_with_spec([](mc::Exec& x) {
    auto* f = x.make<mc::Atomic<int>>(0, "f");
    int t1 = x.spawn([f] { f->store(1, mc::MemoryOrder::relaxed); });
    int r1 = f->load(mc::MemoryOrder::relaxed);
    x.join(t1);
    mc::model_assert(r1 == 1, "claims to always see the store");
  });
  EXPECT_TRUE(r.detected_assertion())
      << "the racing load can read 0 in some execution";
}

}  // namespace
}  // namespace cds
