// MCS lock, Linux RW lock, and RCU.
#include <gtest/gtest.h>

#include "ds/linux_rwlock.h"
#include "ds/peterson_lock.h"
#include "ds/mcs_lock.h"
#include "ds/rcu.h"
#include "ds/ttas_lock.h"
#include "harness/runner.h"
#include "inject/inject.h"

namespace cds {
namespace {

using harness::RunResult;
using harness::run_with_spec;

harness::RunOptions detect_opts() {
  harness::RunOptions o;
  o.engine.stop_on_first_violation = true;
  return o;
}

void expect_clean(const RunResult& r) {
  EXPECT_EQ(r.mc.violations_total, 0u)
      << (r.reports.empty() ? "(no reports)" : r.reports[0]);
}

TEST(McsLock, TwoThreads) { expect_clean(run_with_spec(ds::mcs_lock_test_2t)); }

TEST(McsLock, ThreeThreads) {
  expect_clean(run_with_spec(ds::mcs_lock_test_3t));
}

TEST(McsLock, HandoffWeakeningDetected) {
  inject::SiteId handoff = -1;
  for (const auto& s : inject::sites_for("mcs-lock")) {
    if (s.name == "unlock: successor locked store") handoff = s.id;
  }
  ASSERT_GE(handoff, 0);
  inject::inject(handoff);
  RunResult r = run_with_spec(ds::mcs_lock_test_2t, detect_opts());
  inject::clear_injection();
  EXPECT_TRUE(r.detected_assertion())
      << "relaxed lock hand-off leaves lock() calls unordered";
}

TEST(LinuxRwLock, ReaderWriter) { expect_clean(run_with_spec(ds::rwlock_test_rw)); }

TEST(LinuxRwLock, TwoWriters) { expect_clean(run_with_spec(ds::rwlock_test_2w)); }

TEST(LinuxRwLock, Trylocks) {
  expect_clean(run_with_spec(ds::rwlock_test_trylock));
}

TEST(LinuxRwLock, RacingTrylocksPassRefinedSpec) {
  // Racing write_trylocks may both spuriously fail (transient bias
  // subtraction); the refined spec allows it.
  expect_clean(run_with_spec(ds::rwlock_test_racing_trylocks));
}

TEST(LinuxRwLock, StrictTrylockSpecRejectedOnCorrectImplementation) {
  // The paper's Section 6.1 refinement story: the initial deterministic
  // write_trylock spec is violated by the correct implementation, which
  // told the authors to weaken the spec.
  RunResult r = run_with_spec([](mc::Exec& x) {
    auto* l = x.make<ds::LinuxRwLock>(
        ds::LinuxRwLock::strict_trylock_specification());
    auto body = [l] {
      if (l->write_trylock() == 1) l->write_unlock();
    };
    int t1 = x.spawn(body);
    int t2 = x.spawn(body);
    x.join(t1);
    x.join(t2);
  });
  EXPECT_TRUE(r.detected_assertion())
      << "strict trylock spec must be violated by racing trylocks";
}

TEST(LinuxRwLock, UnlockWeakeningDetected) {
  int detected = 0, checked = 0;
  for (const auto& s : inject::sites_for("linux-rwlock")) {
    if (!s.injectable()) continue;
    if (s.name.find("unlock") == std::string::npos) continue;
    ++checked;
    inject::inject(s.id);
    bool hit = run_with_spec(ds::rwlock_test_rw, detect_opts()).any_detection() ||
               run_with_spec(ds::rwlock_test_2w, detect_opts()).any_detection();
    inject::clear_injection();
    if (hit) ++detected;
  }
  EXPECT_GT(checked, 0);
  EXPECT_EQ(detected, checked) << "weakened unlock releases must be detected";
}

TEST(Rcu, OneWriterOneReader) { expect_clean(run_with_spec(ds::rcu_test_1w1r)); }

TEST(Rcu, OneWriterTwoReaders) {
  expect_clean(run_with_spec(ds::rcu_test_1w2r));
}

TEST(Rcu, TwoWriters) { expect_clean(run_with_spec(ds::rcu_test_2w)); }

TEST(Rcu, AllInjectionsCaughtByBuiltinChecks) {
  // Paper Figure 8: RCU's 3 injections were all caught by built-in checks
  // (data races on the snapshot fields).
  int builtin = 0, injectable = 0;
  for (const auto& s : inject::sites_for("rcu")) {
    if (!s.injectable()) continue;
    ++injectable;
    inject::inject(s.id);
    bool hit = run_with_spec(ds::rcu_test_1w1r, detect_opts()).detected_builtin() ||
               run_with_spec(ds::rcu_test_2w, detect_opts()).detected_builtin();
    inject::clear_injection();
    if (hit) ++builtin;
  }
  EXPECT_EQ(injectable, 3) << "paper: RCU has 3 injections";
  EXPECT_EQ(builtin, injectable) << "all must be built-in detections";
}

TEST(TtasLock, TwoThreads) { expect_clean(run_with_spec(ds::ttas_test_2t)); }

TEST(TtasLock, ThreeThreads) { expect_clean(run_with_spec(ds::ttas_test_3t)); }

TEST(TtasLock, InjectionsDetected) {
  int detected = 0, injectable = 0;
  for (const auto& s : inject::sites_for("ttas-lock")) {
    if (!s.injectable()) continue;
    ++injectable;
    inject::inject(s.id);
    bool hit = run_with_spec(ds::ttas_test_2t, detect_opts()).any_detection() ||
               run_with_spec(ds::ttas_test_3t, detect_opts()).any_detection();
    inject::clear_injection();
    if (hit) ++detected;
  }
  EXPECT_EQ(injectable, 2) << "exchange + release store (test load is relaxed)";
  EXPECT_EQ(detected, injectable);
}

TEST(PetersonLock, CorrectWithSeqCst) {
  expect_clean(run_with_spec(ds::peterson_test));
}

TEST(PetersonLock, FlagWeakeningsBreakMutualExclusion) {
  // The textbook fact, checked mechanically: Peterson's correctness hangs
  // on the store-buffering pattern between flag[me]'s store and
  // flag[other]'s load — weakening either lets both threads enter.
  // The remaining sites are safety-benign: the turn arbitration is
  // protected by per-location coherence (a thread cannot read a turn value
  // older than its own store), and the unlock store only needs release —
  // which the checker surfaces as relaxation candidates rather than bugs.
  int injectable = 0;
  for (const auto& s : inject::sites_for("peterson-lock")) {
    if (!s.injectable()) continue;
    ++injectable;
    inject::inject(s.id);
    RunResult r = run_with_spec(ds::peterson_test, detect_opts());
    inject::clear_injection();
    bool critical = s.name == "lock: flag[me] store" ||
                    s.name == "lock: flag[other] load";
    EXPECT_EQ(r.any_detection(), critical) << s.name;
  }
  EXPECT_EQ(injectable, 5);
}

}  // namespace
}  // namespace cds
