// M&S queue and MPMC queue: correct implementations pass, known bugs and
// targeted weakenings are detected.
#include <gtest/gtest.h>

#include "ds/mpmc_queue.h"
#include "ds/msqueue.h"
#include "harness/runner.h"
#include "inject/inject.h"

namespace cds {
namespace {

using harness::RunResult;
using harness::run_with_spec;

harness::RunOptions detect_opts() {
  harness::RunOptions o;
  o.engine.stop_on_first_violation = true;
  return o;
}

void expect_clean(const RunResult& r) {
  EXPECT_EQ(r.mc.violations_total, 0u)
      << (r.reports.empty() ? "(no reports)" : r.reports[0]);
}

TEST(MSQueue, OneProducerOneConsumer) {
  expect_clean(run_with_spec(ds::msqueue_test_1p1c));
}

TEST(MSQueue, TwoProducersOneConsumer) {
  expect_clean(run_with_spec(ds::msqueue_test_2p1c));
}

TEST(MSQueue, OneProducerTwoConsumers) {
  expect_clean(run_with_spec(ds::msqueue_test_1p2c));
}

TEST(MSQueue, DequeueFromEmpty) {
  expect_clean(run_with_spec(ds::msqueue_test_deq_empty));
}

TEST(MSQueue, KnownBugEnqueueDetectedAsSpecViolation) {
  // Section 6.4.1: the known enqueue bug (weaker-than-necessary publish)
  // is exposed as a specification violation — a dequeue that incorrectly
  // returns empty or breaks FIFO order — and NOT by the built-in checks.
  RunResult r =
      run_with_spec(ds::msqueue_buggy_test(ds::MSQueue::Variant::kBugEnq));
  EXPECT_TRUE(r.detected_assertion())
      << "spec must detect the enqueue publish bug";
  EXPECT_FALSE(r.detected_builtin())
      << "paper: CDSChecker's built-in checks alone did not find this bug";
}

TEST(MSQueue, KnownBugDequeueDetectedAsSpecViolation) {
  RunResult r =
      run_with_spec(ds::msqueue_buggy_test(ds::MSQueue::Variant::kBugDeq));
  EXPECT_TRUE(r.detected_assertion())
      << "spec must detect the dequeue next-load bug";
  EXPECT_FALSE(r.detected_builtin());
}

TEST(MSQueue, InjectionSweepMostlyDetected) {
  int detected = 0, injectable = 0;
  for (const auto& s : inject::sites_for("ms-queue")) {
    if (!s.injectable()) continue;
    ++injectable;
    inject::inject(s.id);
    bool hit = run_with_spec(ds::msqueue_test_1p1c, detect_opts()).any_detection() ||
               run_with_spec(ds::msqueue_test_2p1c, detect_opts()).any_detection() ||
               run_with_spec(ds::msqueue_test_1p2c, detect_opts()).any_detection();
    inject::clear_injection();
    if (hit) ++detected;
  }
  EXPECT_GE(injectable, 8);
  EXPECT_GE(detected * 10, injectable * 7)
      << detected << "/" << injectable << " detected";
}

TEST(MpmcQueue, OneProducerOneConsumer) {
  expect_clean(run_with_spec(ds::mpmc_test_1p1c));
}

TEST(MpmcQueue, WrapAroundRecyclesSlots) {
  expect_clean(run_with_spec(ds::mpmc_test_wrap));
}

TEST(MpmcQueue, TwoProducersOneConsumer) {
  expect_clean(run_with_spec(ds::mpmc_test_2p1c));
}

TEST(MpmcQueue, TwoProducersTwoConsumers) {
  expect_clean(run_with_spec(ds::mpmc_test_2p2c));
}

TEST(MpmcQueue, HandoffWeakeningCaughtByAdmissibility) {
  // Weakening the cell-sequence publish store breaks the enq->deq
  // happens-before edge: the admissibility rule must fire (the paper's
  // MPMC detections are admissibility detections).
  inject::SiteId publish = -1;
  for (const auto& s : inject::sites_for("mpmc-queue")) {
    if (s.name == "enq: cell seq publish store") publish = s.id;
  }
  ASSERT_GE(publish, 0);
  inject::inject(publish);
  RunResult r = run_with_spec(ds::mpmc_test_1p1c, detect_opts());
  inject::clear_injection();
  EXPECT_TRUE(r.detected_admissibility() || r.detected_assertion())
      << "handoff weakening must be detected";
}

}  // namespace
}  // namespace cds
