// The paper's Section 2 solution space, executable (Figure 4):
//   (b) Strengthen the Atomics — under strengthen_to_sc every operation is
//       seq_cst: the Figure 3 outcome r1 == r2 == -1 becomes impossible,
//       and the *deterministic* spec holds with no admissibility warnings
//       (classic linearizability applies).
//   (d/e) Weaken the Specification + justify — without strengthening, the
//       outcome occurs and is accepted by the justified spec (covered in
//       blocking_queue_test; asserted again here for the contrast).
#include <gtest/gtest.h>

#include <set>

#include "ds/blocking_queue.h"
#include "harness/runner.h"

namespace cds {
namespace {

using ds::BlockingQueue;

struct Fig3Results {
  int r1 = -2;
  int r2 = -2;
};

struct Collect : mc::ExecutionListener {
  Fig3Results* r;
  std::set<std::pair<int, int>> seen;
  bool on_execution_complete(mc::Engine&) override {
    seen.insert({r->r1, r->r2});
    return true;
  }
};

mc::TestFn fig3_with_results(Fig3Results* out,
                             const spec::Specification& s) {
  return [out, &s](mc::Exec& x) {
    auto* qx = x.make<BlockingQueue>(s);
    auto* qy = x.make<BlockingQueue>(s);
    int t1 = x.spawn([&, qx, qy] {
      qx->enq(1);
      out->r1 = qy->deq();
    });
    int t2 = x.spawn([&, qx, qy] {
      qy->enq(1);
      out->r2 = qx->deq();
    });
    x.join(t1);
    x.join(t2);
  };
}

TEST(StrengthenAtomics, Figure3OutcomePossibleUnderC11) {
  Fig3Results r;
  Collect c;
  c.r = &r;
  mc::Engine e;
  e.set_listener(&c);
  e.explore(fig3_with_results(&r, BlockingQueue::specification()));
  EXPECT_EQ(c.seen.count({-1, -1}), 1u)
      << "release/acquire admits both dequeues returning empty (Figure 3)";
}

TEST(StrengthenAtomics, Figure3OutcomeImpossibleUnderSeqCst) {
  // Figure 4(b): under seq_cst, r1 == r2 == -1 would need each deq to
  // precede the enq on its queue in the SC order — a cycle with program
  // order. At most one dequeue may return empty.
  Fig3Results r;
  Collect c;
  c.r = &r;
  mc::Config cfg;
  cfg.strengthen_to_sc = true;
  mc::Engine e(cfg);
  e.set_listener(&c);
  e.explore(fig3_with_results(&r, BlockingQueue::specification()));
  EXPECT_EQ(c.seen.count({-1, -1}), 0u)
      << "seq_cst forbids the Figure 3 outcome";
  EXPECT_GT(c.seen.size(), 1u);
}

TEST(StrengthenAtomics, DeterministicSpecHoldsUnderSeqCst) {
  // With every operation seq_cst, the ordering points are totally ordered:
  // the deterministic FIFO spec (with its admissibility rule) passes on
  // the very usage pattern that is inadmissible under release/acquire.
  harness::RunOptions opts;
  opts.engine.strengthen_to_sc = true;
  Fig3Results r;
  auto res = harness::run_with_spec(
      fig3_with_results(&r, BlockingQueue::deterministic_specification()), opts);
  EXPECT_EQ(res.mc.violations_total, 0u)
      << (res.reports.empty() ? "" : res.reports[0]);
  EXPECT_EQ(res.spec.inadmissible_execs, 0u)
      << "seq_cst orders every deq(-1) against every enq";
}

TEST(StrengthenAtomics, DeterministicSpecInadmissibleWithoutIt) {
  Fig3Results r;
  auto res = harness::run_with_spec(
      fig3_with_results(&r, BlockingQueue::deterministic_specification()));
  EXPECT_GT(res.spec.inadmissible_execs, 0u);
}

}  // namespace
}  // namespace cds
