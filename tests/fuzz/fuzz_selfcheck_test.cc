// Self-validation of the differential oracles (slow suites):
//  - seeded fuzzing campaigns across both generator profiles must find
//    zero disagreements on the sound engine;
//  - each deliberately-unsound engine variant (mc::UnsoundHook) must be
//    CAUGHT by at least one oracle, and the minimizer must shrink the
//    offending program to a tiny repro (acceptance bound: <= 12 ops);
//  - every checked-in corpus program replays clean.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/generator.h"
#include "fuzz/minimize.h"
#include "fuzz/oracle.h"
#include "fuzz/program.h"

namespace cds {
namespace {

using fuzz::GenParams;
using fuzz::OracleConfig;
using fuzz::OracleKind;
using fuzz::Program;

Program parse_or_die(const std::string& text) {
  Program p;
  std::string err;
  EXPECT_TRUE(Program::parse(text, &p, &err)) << err;
  return p;
}

constexpr const char* kSb =
    "litmus v1\n"
    "locations 2\n"
    "t0 store x 1 seq_cst\n"
    "t0 load y seq_cst\n"
    "t1 store y 1 seq_cst\n"
    "t1 load x seq_cst\n";

GenParams profile(bool sc_only) {
  GenParams gp;
  gp.sc_only = sc_only;
  return gp;
}

TEST(FuzzSelfValidationSlow, SoundEngineSurvivesSeededCampaign) {
  int skipped = 0;
  for (std::uint64_t trial = 0; trial < 80; ++trial) {
    std::uint64_t seed = fuzz::trial_seed(1, trial);
    OracleConfig cfg;
    cfg.seed = seed;
    Program p = fuzz::generate(profile(trial % 2 == 0), seed);
    auto res = fuzz::check_program(p, cfg);
    if (res.skipped) {
      ++skipped;
      continue;
    }
    EXPECT_TRUE(res.disagreements.empty())
        << "trial " << trial << " seed " << seed << "\n"
        << p.to_string() << "\n"
        << res.disagreements[0].detail;
  }
  EXPECT_LT(skipped, 8) << "caps should almost never bind on tiny programs";
}

// Runs the oracles on `p` under `hook`, expects a disagreement, minimizes
// it, and returns the minimized program.
Program expect_caught(const Program& p, mc::UnsoundHook hook,
                      OracleKind expect_kind) {
  OracleConfig cfg;
  cfg.unsound_hook = hook;
  auto res = fuzz::check_program(p, cfg);
  EXPECT_FALSE(res.skipped) << res.skip_reason;
  EXPECT_FALSE(res.disagreements.empty())
      << "unsound engine variant escaped every oracle";
  if (res.disagreements.empty()) return p;
  const OracleKind kind = res.disagreements[0].oracle;
  bool saw_expected = false;
  for (const auto& d : res.disagreements) saw_expected |= d.oracle == expect_kind;
  EXPECT_TRUE(saw_expected) << "expected oracle " << to_string(expect_kind)
                            << ", caught only by " << to_string(kind);
  auto still_fails = [&](const Program& cand) {
    std::string why;
    if (cand.total_ops() == 0 || !cand.validate(&why)) return false;
    auto r = fuzz::check_program(cand, cfg);
    for (const auto& d : r.disagreements) {
      if (d.oracle == kind) return true;
    }
    return false;
  };
  Program m = fuzz::minimize(p, still_fails, nullptr);
  EXPECT_TRUE(still_fails(m));
  EXPECT_LE(m.total_ops(), 12) << "repro must minimize to <= 12 ops";
  return m;
}

TEST(FuzzSelfValidationSlow, ScFloorSabotageCaughtByInterleavingOracle) {
  // With sc loads ignoring the sc floors, store buffering admits the
  // forbidden both-read-zero outcome: an over-approximation the exact
  // interleaving oracle must flag.
  Program m = expect_caught(parse_or_die(kSb),
                            mc::UnsoundHook::kScLoadIgnoresFloor,
                            OracleKind::kScInterleaving);
  EXPECT_LE(m.total_ops(), 4);
}

TEST(FuzzSelfValidationSlow, SleepSetSabotageCaughtBySamplingOracle) {
  // Sleep-set entries that never wake prune real interleavings from DFS:
  // an under-approximation. Sampling mode runs without sleep sets, so the
  // DFS-vs-sampling oracle sees behaviors DFS lost.
  Program m = expect_caught(parse_or_die(kSb),
                            mc::UnsoundHook::kSleepSetNeverWakes,
                            OracleKind::kSampling);
  EXPECT_LE(m.total_ops(), 4);
}

TEST(FuzzSelfValidationSlow, ScFloorSabotageFoundByFuzzingCampaign) {
  // No hand-picked program: a plain seeded campaign must stumble onto the
  // bug within a bounded number of trials.
  bool caught = false;
  for (std::uint64_t trial = 0; trial < 150 && !caught; ++trial) {
    std::uint64_t seed = fuzz::trial_seed(7, trial);
    OracleConfig cfg;
    cfg.seed = seed;
    cfg.unsound_hook = mc::UnsoundHook::kScLoadIgnoresFloor;
    Program p = fuzz::generate(profile(trial % 2 == 0), seed);
    auto res = fuzz::check_program(p, cfg);
    caught = !res.skipped && !res.disagreements.empty();
  }
  EXPECT_TRUE(caught);
}

TEST(FuzzCorpusSlow, CheckedInProgramsReplayClean) {
  const std::vector<std::string> entries = {
      "sb_sc", "mp_relacq", "lb_relaxed", "iriw_sc", "casloop_mixed",
      "fence_mp"};
  for (const std::string& name : entries) {
    std::string path = std::string(CDS_CORPUS_DIR) + "/" + name + ".litmus";
    std::ifstream f(path);
    ASSERT_TRUE(f.is_open()) << path;
    std::ostringstream buf;
    buf << f.rdbuf();
    Program p;
    std::string err;
    ASSERT_TRUE(Program::parse(buf.str(), &p, &err)) << path << ": " << err;
    auto res = fuzz::check_program(p, OracleConfig{});
    EXPECT_TRUE(res.agreed())
        << path << ": "
        << (res.skipped ? res.skip_reason : res.disagreements[0].detail);
  }
}

}  // namespace
}  // namespace cds
