// rf-vs-schedule differential: both exploration modes must enumerate the
// SAME behavior set on every program — the rf mode only collapses
// schedule-equivalent executions into reads-from classes, it must never
// gain or lose a behavior. Covered here over the checked-in corpus (fast),
// 50 fresh generator seeds (slow sweep), the sharded merge identity
// (--jobs 4 counters bit-identical to serial in rf mode), and rf-mode
// trail witnesses replaying to the recorded behavior.
#include <gtest/gtest.h>

#include <dirent.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/generator.h"
#include "fuzz/oracle.h"
#include "fuzz/program.h"
#include "mc/config.h"

namespace cds {
namespace {

using fuzz::McBehaviors;
using fuzz::OracleConfig;
using fuzz::Program;

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  DIR* d = opendir(CDS_CORPUS_DIR);
  if (d == nullptr) return files;
  while (dirent* ent = readdir(d)) {
    std::string n = ent->d_name;
    if (n.size() > 7 && n.substr(n.size() - 7) == ".litmus") {
      files.push_back(std::string(CDS_CORPUS_DIR) + "/" + n);
    }
  }
  closedir(d);
  std::sort(files.begin(), files.end());
  return files;
}

Program load_program(const std::string& path) {
  std::ifstream f(path);
  EXPECT_TRUE(f.good()) << path;
  std::ostringstream buf;
  buf << f.rdbuf();
  Program p;
  std::string err;
  EXPECT_TRUE(Program::parse(buf.str(), &p, &err)) << path << ": " << err;
  return p;
}

// Both modes to exhaustion on `p`; returns {schedule, rf} and asserts the
// core equivalence: identical behavior sets, rf counters only in rf mode,
// and the class count bounded by the schedule execution count.
std::pair<McBehaviors, McBehaviors> explore_both(const Program& p,
                                                 const OracleConfig& base,
                                                 const std::string& label) {
  OracleConfig sched = base;
  sched.explore = mc::ExploreMode::kSchedule;
  OracleConfig rf = base;
  rf.explore = mc::ExploreMode::kRf;
  McBehaviors s = fuzz::mc_behaviors(p, sched);
  McBehaviors r = fuzz::mc_behaviors(p, rf);
  EXPECT_TRUE(s.exhausted) << label;
  EXPECT_TRUE(r.exhausted) << label;
  EXPECT_EQ(s.behaviors, r.behaviors) << label << ": modes disagree";
  EXPECT_EQ(s.rf_classes, 0u) << label;
  EXPECT_EQ(s.rf_infeasible, 0u) << label;
  EXPECT_GT(r.rf_classes, 0u) << label;
  // Note: rf_classes is NOT bounded by the schedule-mode execution count.
  // rf mode still enumerates interleavings, so one rf assignment reached
  // from two schedules completes twice, and on tiny programs that can
  // exceed schedule mode's sleep-set-pruned total. The sound bounds are
  // against the rf-mode run itself.
  EXPECT_LE(r.rf_classes, r.executions) << label;
  // Every behavior needs at least one class representative to witness it.
  EXPECT_GE(r.rf_classes, r.behaviors.size()) << label;
  return {s, r};
}

TEST(RfEquivalence, CorpusBehaviorSetsMatchAcrossModes) {
  std::vector<std::string> files = corpus_files();
  ASSERT_FALSE(files.empty()) << "no .litmus files under " CDS_CORPUS_DIR;
  for (const std::string& path : files) {
    Program p = load_program(path);
    OracleConfig cfg;
    explore_both(p, cfg, path);
  }
}

TEST(RfEquivalence, ShardedRfCountersAreBitIdenticalToSerial) {
  // The acceptance bar for the shard-result wire: a --jobs 4 rf run must
  // merge to the exact serial counters, not just the same behavior set.
  for (const std::string& path : corpus_files()) {
    Program p = load_program(path);
    OracleConfig serial;
    serial.explore = mc::ExploreMode::kRf;
    OracleConfig sharded = serial;
    sharded.jobs = 4;
    McBehaviors a = fuzz::mc_behaviors(p, serial);
    McBehaviors b = fuzz::mc_behaviors(p, sharded);
    EXPECT_EQ(a.behaviors, b.behaviors) << path;
    EXPECT_EQ(a.executions, b.executions) << path;
    EXPECT_EQ(a.rf_classes, b.rf_classes) << path;
    EXPECT_EQ(a.rf_infeasible, b.rf_infeasible) << path;
    EXPECT_EQ(a.exhausted, b.exhausted) << path;
  }
}

TEST(RfEquivalence, DifferentialOraclesAgreeInRfMode) {
  // The full differential-oracle battery (brute-force interleavings,
  // monotonicity, sampling containment) with the engine in rf mode: the
  // oracles compare rf-mode enumerations against mode-independent
  // references, so a class the rf mode drops or invents fails here.
  for (const std::string& path : corpus_files()) {
    Program p = load_program(path);
    OracleConfig cfg;
    cfg.explore = mc::ExploreMode::kRf;
    fuzz::CheckResult res = fuzz::check_program(p, cfg);
    EXPECT_FALSE(res.skipped) << path << ": " << res.skip_reason;
    EXPECT_GT(res.oracles_run, 0) << path;
    for (const auto& d : res.disagreements) {
      ADD_FAILURE() << path << ": [" << to_string(d.oracle) << "] "
                    << d.detail;
    }
  }
}

// 50 fresh generator seeds through both modes, alternating the fuzzer's
// sc-only and mixed-order profiles. "Sweep" routes it to the slow label;
// PR CI runs the corpus subset above.
TEST(RfEquivalenceSweep, FiftyFreshSeedsMatchAcrossModes) {
  const std::uint64_t kBase = 20260809;
  for (std::uint64_t trial = 0; trial < 50; ++trial) {
    fuzz::GenParams gp;
    gp.sc_only = trial % 2 == 0;
    gp.max_threads = 3;
    gp.max_total_ops = 8;
    std::uint64_t seed = fuzz::trial_seed(kBase, trial);
    Program p = fuzz::generate(gp, seed);
    OracleConfig cfg;
    cfg.seed = seed;
    explore_both(p, cfg, "seed " + std::to_string(seed));
  }
}

}  // namespace
}  // namespace cds
