// Unit tests for the litmus fuzzer: program format round-trips,
// generator determinism and legality, the brute-force interleaving
// oracle on known litmus shapes, and the minimizer.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "fuzz/generator.h"
#include "fuzz/minimize.h"
#include "fuzz/oracle.h"
#include "fuzz/program.h"

namespace cds {
namespace {

using fuzz::BehaviorSet;
using fuzz::GenParams;
using fuzz::Op;
using fuzz::OpCode;
using fuzz::OracleConfig;
using fuzz::Program;
using mc::MemoryOrder;

Program parse_or_die(const std::string& text) {
  Program p;
  std::string err;
  EXPECT_TRUE(Program::parse(text, &p, &err)) << err;
  return p;
}

constexpr const char* kSb =
    "litmus v1\n"
    "locations 2\n"
    "t0 store x 1 seq_cst\n"
    "t0 load y seq_cst\n"
    "t1 store y 1 seq_cst\n"
    "t1 load x seq_cst\n";

TEST(FuzzProgram, ParsePrintRoundTrip) {
  Program p = parse_or_die(kSb);
  EXPECT_EQ(p.threads(), 2);
  EXPECT_EQ(p.total_ops(), 4);
  EXPECT_TRUE(p.sc_only());
  Program q = parse_or_die(p.to_string());
  EXPECT_EQ(p.to_string(), q.to_string());
}

TEST(FuzzProgram, ParseAllOpcodesAndComments) {
  Program p = parse_or_die(
      "# header comment\n"
      "litmus v1\n"
      "locations 3\n"
      "t0 cas z 0 2 seq_cst acquire  # trailing comment\n"
      "t0 fence release\n"
      "t1 rmw x 1 acq_rel\n"
      "t1 load z acquire\n"
      "t2 store y 2 release\n");
  EXPECT_EQ(p.threads(), 3);
  EXPECT_FALSE(p.sc_only());
  EXPECT_EQ(p.ops[0][0].code, OpCode::kCas);
  EXPECT_EQ(p.ops[0][0].expected, 0u);
  EXPECT_EQ(p.ops[0][0].value, 2u);
  EXPECT_EQ(p.ops[0][0].failure, MemoryOrder::acquire);
  EXPECT_EQ(p.ops[0][1].code, OpCode::kFence);
  EXPECT_EQ(p.ops[1][0].code, OpCode::kRmwAdd);
  Program q = parse_or_die(p.to_string());
  EXPECT_EQ(p.to_string(), q.to_string());
}

TEST(FuzzProgram, ParseRejectsMalformed) {
  Program p;
  std::string err;
  EXPECT_FALSE(Program::parse("nonsense\n", &p, &err));
  EXPECT_FALSE(Program::parse("litmus v1\nlocations 9\n", &p, &err));
  EXPECT_FALSE(
      Program::parse("litmus v1\nlocations 2\nt0 load q seq_cst\n", &p, &err));
  EXPECT_FALSE(
      Program::parse("litmus v1\nlocations 2\nt0 load x release\n", &p, &err))
      << "release-form load must not parse as valid";
}

TEST(FuzzProgram, ValidateRejectsIllegalOrders) {
  Program p = parse_or_die(kSb);
  EXPECT_TRUE(p.validate());
  Program bad_load = p;
  bad_load.ops[0][1].order = MemoryOrder::release;
  std::string why;
  EXPECT_FALSE(bad_load.validate(&why));
  Program bad_store = p;
  bad_store.ops[0][0].order = MemoryOrder::acquire;
  EXPECT_FALSE(bad_store.validate(&why));
  Program bad_loc = p;
  bad_loc.ops[1][0].loc = 3;
  EXPECT_FALSE(bad_loc.validate(&why));
}

TEST(FuzzGenerator, DeterministicAndValid) {
  GenParams gp;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Program a = fuzz::generate(gp, seed);
    Program b = fuzz::generate(gp, seed);
    EXPECT_EQ(a.to_string(), b.to_string()) << "seed " << seed;
    std::string why;
    EXPECT_TRUE(a.validate(&why)) << "seed " << seed << ": " << why;
    EXPECT_GE(a.threads(), gp.min_threads);
    EXPECT_LE(a.threads(), gp.max_threads);
    EXPECT_LE(a.total_ops(), gp.max_total_ops);
    EXPECT_GE(a.total_ops(), gp.min_threads * gp.min_ops_per_thread);
  }
}

TEST(FuzzGenerator, ScOnlyProfileIsScOnly) {
  GenParams gp;
  gp.sc_only = true;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    EXPECT_TRUE(fuzz::generate(gp, seed).sc_only()) << "seed " << seed;
  }
}

TEST(FuzzGenerator, SeedsYieldDistinctPrograms) {
  GenParams gp;
  std::set<std::string> shapes;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    shapes.insert(fuzz::generate(gp, seed).to_string());
  }
  EXPECT_GT(shapes.size(), 30u) << "seeds should rarely collide";
}

TEST(FuzzOracle, InterleavingsOfStoreBuffering) {
  // SB under SC admits exactly 3 read pairs: (0,1), (1,0), (1,1) —
  // never (0,0) — and finals are always 1,1. Slots are per-op
  // thread-major, with stores contributing fixed zeros.
  Program p = parse_or_die(kSb);
  BehaviorSet ref;
  ASSERT_TRUE(fuzz::interleaving_behaviors(p, OracleConfig{}, &ref));
  EXPECT_EQ(ref.size(), 3u);
  EXPECT_EQ(ref.count("r:0,0,0,0|f:1,1"), 0u) << "both-zero is forbidden";
  EXPECT_EQ(ref.count("r:0,1,0,1|f:1,1"), 1u);
}

TEST(FuzzOracle, EngineMatchesInterleavingsOnSb) {
  Program p = parse_or_die(kSb);
  OracleConfig cfg;
  auto mc = fuzz::mc_behaviors(p, cfg);
  ASSERT_TRUE(mc.exhausted);
  BehaviorSet ref;
  ASSERT_TRUE(fuzz::interleaving_behaviors(p, cfg, &ref));
  EXPECT_EQ(mc.behaviors, ref);
}

TEST(FuzzOracle, StrengthenSitesCoverNonSeqCstOrders) {
  Program p = parse_or_die(
      "litmus v1\n"
      "locations 2\n"
      "t0 store x 1 release\n"
      "t0 fence seq_cst\n"
      "t1 cas x 0 2 seq_cst relaxed\n"
      "t1 load y seq_cst\n");
  // store(release) + cas failure(relaxed): exactly two strengthenable sites.
  auto sites = fuzz::strengthen_sites(p);
  ASSERT_EQ(sites.size(), 2u);
  EXPECT_FALSE(sites[0].failure_order);
  EXPECT_TRUE(sites[1].failure_order);
  Program q = fuzz::strengthen_at(p, sites[0]);
  EXPECT_EQ(q.ops[0][0].order, MemoryOrder::seq_cst);
  Program r = fuzz::strengthen_at(p, sites[1]);
  EXPECT_EQ(r.ops[1][0].failure, MemoryOrder::acquire);
  // A fully seq_cst program has no strengthenable sites.
  EXPECT_TRUE(fuzz::strengthen_sites(parse_or_die(kSb)).empty());
}

TEST(FuzzOracle, CheckProgramAgreesOnClassicLitmus) {
  for (const char* text : {kSb,
                           "litmus v1\nlocations 2\n"
                           "t0 store x 1 relaxed\nt0 store y 1 release\n"
                           "t1 load y acquire\nt1 load x relaxed\n"}) {
    Program p = parse_or_die(text);
    auto res = fuzz::check_program(p, OracleConfig{});
    EXPECT_TRUE(res.agreed()) << p.to_string();
    EXPECT_GE(res.oracles_run, 1);
  }
}

TEST(FuzzMinimize, ShrinksToSmallestFailingShape) {
  // Predicate: "some thread stores 2 to x". Minimal shape: 1 thread, 1 op.
  Program p = parse_or_die(
      "litmus v1\n"
      "locations 3\n"
      "t0 store x 1 seq_cst\n"
      "t0 load z seq_cst\n"
      "t1 store y 2 seq_cst\n"
      "t1 store x 2 seq_cst\n"
      "t2 rmw z 1 acq_rel\n");
  auto has_store2_to_x = [](const Program& q) {
    for (const auto& t : q.ops) {
      for (const Op& op : t) {
        if (op.code == OpCode::kStore && op.loc == 0 && op.value == 2) {
          return true;
        }
      }
    }
    return false;
  };
  fuzz::MinimizeStats stats;
  Program m = fuzz::minimize(p, has_store2_to_x, &stats);
  EXPECT_TRUE(has_store2_to_x(m));
  EXPECT_EQ(m.threads(), 1);
  EXPECT_EQ(m.total_ops(), 1);
  EXPECT_EQ(m.locations, 1) << "unused locations must be dropped";
  EXPECT_GT(stats.reductions, 0);
  std::string why;
  EXPECT_TRUE(m.validate(&why)) << why;
}

TEST(FuzzMinimize, FixpointKeepsFailingProgramIntact) {
  Program p = parse_or_die(kSb);
  // Nothing smaller than the full SB shape satisfies this predicate.
  auto is_full_sb = [&](const Program& q) { return q.total_ops() == 4; };
  Program m = fuzz::minimize(p, is_full_sb, nullptr);
  EXPECT_EQ(m.total_ops(), 4);
}

}  // namespace
}  // namespace cds
