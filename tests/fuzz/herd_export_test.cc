// herd7 litmus exporter: golden-file translations of every corpus
// program, state-line round-trips against the model's behavior sets, and
// structural validity of the emitted C-litmus syntax. The goldens in
// tests/golden/herd/ pin the exact bytes `cdsspec-fuzz --herd-out`
// produces; regenerate them with
//   cdsspec-fuzz --replay-dir tests/corpus --herd-out tests/golden/herd
// and re-review when the translation intentionally changes.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/herd_export.h"
#include "fuzz/oracle.h"
#include "fuzz/program.h"

namespace cds::fuzz {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream f(path);
  EXPECT_TRUE(f.is_open()) << path;
  std::ostringstream buf;
  buf << f.rdbuf();
  return buf.str();
}

Program corpus_program(const std::string& name) {
  Program p;
  std::string err;
  EXPECT_TRUE(Program::parse(
      read_file(std::string(CDS_CORPUS_DIR) + "/" + name + ".litmus"), &p,
      &err))
      << name << ": " << err;
  return p;
}

class HerdGolden : public testing::TestWithParam<std::string> {};

TEST_P(HerdGolden, TranslationMatchesCheckedInGolden) {
  Program p = corpus_program(GetParam());
  McBehaviors model = mc_behaviors(p, OracleConfig{});
  ASSERT_TRUE(model.exhausted) << GetParam();

  const std::string golden_dir =
      std::string(CDS_CORPUS_DIR) + "/../golden/herd";
  EXPECT_EQ(herd_litmus(p, GetParam(), &model.behaviors),
            read_file(golden_dir + "/" + GetParam() + ".litmus"))
      << GetParam();

  // The .expected file is the sorted state-line rendering of the same set.
  std::string expected = read_file(golden_dir + "/" + GetParam() + ".expected");
  for (const std::string& b : model.behaviors) {
    std::string line = herd_state_line(p, b);
    ASSERT_FALSE(line.empty()) << GetParam() << ": " << b;
    EXPECT_NE(expected.find(line + "\n"), std::string::npos)
        << GetParam() << ": state '" << line << "' missing from golden";
  }
  // No stale extra states: golden has exactly |behaviors| non-comment lines.
  std::istringstream is(expected);
  std::string line;
  std::size_t states = 0;
  while (std::getline(is, line)) {
    if (!line.empty() && line[0] != '#') ++states;
  }
  EXPECT_EQ(states, model.behaviors.size()) << GetParam();
}

TEST_P(HerdGolden, EmitsSyntacticallyValidClitmus) {
  Program p = corpus_program(GetParam());
  std::string text = herd_litmus(p, GetParam());
  // Structural skeleton herd7 requires: name header, init block, one
  // P<t> block per thread, a locations directive, a final condition.
  EXPECT_EQ(text.rfind("C " + GetParam() + "\n", 0), 0u) << text;
  EXPECT_NE(text.find("\n{}\n"), std::string::npos);
  for (int t = 0; t < p.threads(); ++t) {
    EXPECT_NE(text.find("P" + std::to_string(t) + " ("), std::string::npos)
        << GetParam() << " thread " << t;
  }
  EXPECT_NE(text.find("\nlocations ["), std::string::npos);
  EXPECT_NE(text.find("\nexists ("), std::string::npos);
  // Balanced comment: herd7 chokes on an unterminated (* ... *).
  EXPECT_NE(text.find("(*"), std::string::npos);
  EXPECT_NE(text.find("*)"), std::string::npos);
  // No unresolved placeholders or our internal serialization leaking out
  // uncommented: every non-comment line that mentions an order uses the
  // C11 spelling.
  EXPECT_EQ(text.find("seq_cst\n{"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(AllCorpusPrograms, HerdGolden,
                         testing::Values("sb_sc", "mp_relacq", "lb_relaxed",
                                         "iriw_sc", "casloop_mixed",
                                         "fence_mp"));

TEST(HerdExport, StateLineRejectsMalformedBehaviors) {
  Program p = corpus_program("mp_relacq");
  EXPECT_EQ(herd_state_line(p, ""), "");
  EXPECT_EQ(herd_state_line(p, "r:1|f:1"), "");        // wrong arity
  EXPECT_EQ(herd_state_line(p, "r:a,b|f:1,2"), "");    // non-numeric
  EXPECT_EQ(herd_state_line(p, "f:1,2|r:0,0,0,0"), "");  // wrong field order
}

TEST(HerdExport, StateLineIsValueFaithful) {
  Program p = corpus_program("mp_relacq");
  // mp_relacq: t0 {store x, store y}, t1 {load y -> r2, load x -> r3}.
  EXPECT_EQ(herd_state_line(p, "r:0,0,1,1|f:1,1"),
            "x=1; y=1; 1:r2=1; 1:r3=1;");
  EXPECT_EQ(herd_state_line(p, "r:0,0,0,0|f:1,1"),
            "x=1; y=1; 1:r2=0; 1:r3=0;");
}

TEST(HerdExport, WriteHerdFilesEmitsBothArtifacts) {
  Program p = corpus_program("sb_sc");
  McBehaviors model = mc_behaviors(p, OracleConfig{});
  ASSERT_TRUE(model.exhausted);
  std::string dir = testing::TempDir();
  std::string err;
  ASSERT_TRUE(write_herd_files(p, "herd_export_test_sb", model.behaviors, dir,
                               &err))
      << err;
  std::string litmus = read_file(dir + "/herd_export_test_sb.litmus");
  std::string expected = read_file(dir + "/herd_export_test_sb.expected");
  EXPECT_EQ(litmus, herd_litmus(p, "herd_export_test_sb", &model.behaviors));
  for (const std::string& b : model.behaviors) {
    EXPECT_NE(expected.find(herd_state_line(p, b)), std::string::npos);
  }
}

// The exporter consumes parse() output; the repro format itself must
// round-trip so --herd-out on a re-serialized repro is identical.
TEST(HerdExport, ProgramReserializationIsStable) {
  for (const char* name :
       {"sb_sc", "mp_relacq", "lb_relaxed", "iriw_sc", "casloop_mixed",
        "fence_mp"}) {
    Program p = corpus_program(name);
    Program back;
    std::string err;
    ASSERT_TRUE(Program::parse(p.to_string(), &back, &err)) << name << err;
    EXPECT_EQ(p.to_string(), back.to_string()) << name;
    EXPECT_EQ(herd_litmus(p, name), herd_litmus(back, name)) << name;
  }
}

}  // namespace
}  // namespace cds::fuzz
