// Tentpole acceptance: SIGKILL the coordinating process at arbitrary
// points inside the journal's write-ahead windows, restart with resume,
// and the verdict plus merged counters must come out bit-identical to an
// uninterrupted serial run — on both BENCH_parallel.json shapes, for the
// distributed coordinator and the local --jobs fork pool, across the
// append/merge crash window and a torn journal tail. Plus epoch fencing:
// a result minted under a previous incarnation's attempt id is dropped
// as fenced, never double-merged.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "dist/chaos.h"
#include "dist/coordinator.h"
#include "dist/net.h"
#include "dist/protocol.h"
#include "ds/suite.h"
#include "fuzz/program.h"
#include "harness/parallel.h"
#include "harness/runner.h"
#include "mc/atomic.h"
#include "support/io.h"

namespace cds {
namespace {

#if defined(__unix__) || defined(__APPLE__)

std::string tmp_path(const char* name) { return testing::TempDir() + name; }

void expect_bit_identical(const harness::RunResult& serial,
                          const harness::RunResult& merged) {
  EXPECT_EQ(merged.mc.executions, serial.mc.executions);
  EXPECT_EQ(merged.mc.feasible, serial.mc.feasible);
  EXPECT_EQ(merged.mc.pruned_livelock, serial.mc.pruned_livelock);
  EXPECT_EQ(merged.mc.pruned_bound, serial.mc.pruned_bound);
  EXPECT_EQ(merged.mc.pruned_redundant, serial.mc.pruned_redundant);
  EXPECT_EQ(merged.mc.engine_fatal_execs, serial.mc.engine_fatal_execs);
  EXPECT_EQ(merged.mc.violations_total, serial.mc.violations_total);
  EXPECT_EQ(merged.mc.max_trail_depth, serial.mc.max_trail_depth);
  EXPECT_EQ(merged.mc.exhausted, serial.mc.exhausted);
  EXPECT_EQ(merged.verdict, serial.verdict);
  EXPECT_EQ(merged.spec.executions_checked, serial.spec.executions_checked);
  EXPECT_EQ(merged.spec.histories_checked, serial.spec.histories_checked);
  EXPECT_EQ(merged.spec.justification_checks,
            serial.spec.justification_checks);
  EXPECT_EQ(merged.spec.inadmissible_execs, serial.spec.inadmissible_execs);
  EXPECT_EQ(merged.spec.assertion_violation_execs,
            serial.spec.assertion_violation_execs);
}

harness::Benchmark make_litmus_benchmark(const char* name, const char* text,
                                         fuzz::Program* p,
                                         std::vector<std::uint64_t>* obs) {
  std::string err;
  EXPECT_TRUE(fuzz::Program::parse(text, p, &err)) << name << ": " << err;
  harness::Benchmark b;
  b.name = name;
  b.display = name;
  b.spec = nullptr;
  b.tests.push_back(p->test_fn(obs));
  return b;
}

// The two BENCH_parallel.json shapes (bench/parallel_scaling.cpp).
constexpr const char* kMpRelacqWide =
    "litmus v1\n"
    "locations 3\n"
    "t0 store x 1 relaxed\n"
    "t0 store y 1 release\n"
    "t1 load y acquire\n"
    "t1 load x relaxed\n"
    "t2 store z 1 release\n"
    "t2 load y acquire\n"
    "t2 store x 3 relaxed\n"
    "t3 load z acquire\n"
    "t3 store x 2 relaxed\n"
    "t3 load y relaxed\n";

constexpr const char* kCasloopWide =
    "litmus v1\n"
    "locations 2\n"
    "t0 cas x 0 1 acq_rel relaxed\n"
    "t0 store y 1 release\n"
    "t1 cas x 0 2 seq_cst acquire\n"
    "t1 load y acquire\n"
    "t2 rmw x 1 acq_rel\n"
    "t2 load y acquire\n"
    "t3 cas y 1 2 acq_rel relaxed\n"
    "t3 load x acquire\n"
    "t3 store y 3 relaxed\n";

// Forks a child that runs `crashing_run` with coordinator chaos armed and
// asserts the chaos actually SIGKILLed it mid-run (exit status 3 means
// the run completed without the injection firing — a test bug).
template <typename Fn>
void run_until_sigkilled(Fn crashing_run) {
  pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    crashing_run();
    _exit(3);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status))
      << "coordinator was expected to die by chaos SIGKILL, got status "
      << status;
  ASSERT_EQ(WTERMSIG(status), SIGKILL);
}

class DistResumeSlow : public testing::TestWithParam<const char*> {};

// Kill the distributed coordinator inside the append window (record
// durable, merge state lost), then resume: journaled results replay,
// in-flight shards recompute, counters land bit-identical to serial.
TEST_P(DistResumeSlow, KillAfterAppendThenResumeIsBitIdenticalToSerial) {
  const bool mp = std::string(GetParam()) == "mp";
  const char* text = mp ? kMpRelacqWide : kCasloopWide;
  const std::string path =
      tmp_path((std::string("dist-kill-") + GetParam() + ".journal").c_str());
  std::remove(path.c_str());

  fuzz::Program p;
  std::vector<std::uint64_t> obs;
  harness::Benchmark b = make_litmus_benchmark("bench-shape", text, &p, &obs);
  harness::RunOptions opts;
  harness::RunResult serial = harness::run_benchmark(b, opts);
  ASSERT_TRUE(serial.mc.exhausted);

  dist::DistOptions d;
  d.dist_workers = 2;
  d.journal_path = path;
  run_until_sigkilled([&] {
    dist::DistOptions chaos = d;
    chaos.coord_chaos.kill_after_append = 6;
    (void)dist::run_benchmark_distributed(b, opts, chaos);
  });

  dist::DistOptions resume = d;
  resume.resume = true;
  dist::DistRunResult r = dist::run_benchmark_distributed(b, opts, resume);
  ASSERT_TRUE(r.resume_error.empty()) << r.resume_error;
  EXPECT_TRUE(r.resumed);
  EXPECT_EQ(r.epoch, 2u);
  EXPECT_GE(r.replayed_shards, 1u)
      << "results journaled before the kill must be replayed, not re-run";
  expect_bit_identical(serial, r.merged);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(BenchShapes, DistResumeSlow,
                         testing::Values("mp", "casloop"));

// The other crash window: the result record is durable but the process
// dies *before* the merge consumes it. Resume must replay exactly that
// result (no loss, no double-merge).
TEST(DistResumeWindowSlow, KillBetweenAppendAndMergeThenResume) {
  ds::register_all_benchmarks();
  const auto* b = harness::find_benchmark("ticket-lock");
  ASSERT_NE(b, nullptr);
  const std::string path = tmp_path("dist-merge-window.journal");
  std::remove(path.c_str());
  harness::RunOptions opts;
  harness::RunResult serial = harness::run_benchmark(*b, opts);

  dist::DistOptions d;
  d.dist_workers = 2;
  d.journal_path = path;
  run_until_sigkilled([&] {
    dist::DistOptions chaos = d;
    chaos.coord_chaos.kill_before_merge_on = 1;  // first result append
    (void)dist::run_benchmark_distributed(*b, opts, chaos);
  });

  dist::DistOptions resume = d;
  resume.resume = true;
  dist::DistRunResult r = dist::run_benchmark_distributed(*b, opts, resume);
  ASSERT_TRUE(r.resume_error.empty()) << r.resume_error;
  EXPECT_TRUE(r.resumed);
  EXPECT_GE(r.replayed_shards, 1u)
      << "the durable-but-unmerged result must come back from the journal";
  expect_bit_identical(serial, r.merged);
  std::remove(path.c_str());
}

// Local --jobs fork pool under the same discipline: kill mid-run, resume,
// bit-identical.
TEST(ParallelResumeSlow, KillAfterAppendThenResumeIsBitIdenticalToSerial) {
  ds::register_all_benchmarks();
  const auto* b = harness::find_benchmark("ticket-lock");
  ASSERT_NE(b, nullptr);
  const std::string path = tmp_path("jobs-kill.journal");
  std::remove(path.c_str());
  harness::RunOptions opts;
  harness::RunResult serial = harness::run_benchmark(*b, opts);

  harness::ParallelOptions par;
  par.jobs = 2;
  par.journal_path = path;
  run_until_sigkilled([&] {
    harness::ParallelOptions chaos = par;
    chaos.coord_chaos.kill_after_append = 4;  // run header + 3 results
    (void)harness::run_benchmark_parallel(*b, opts, chaos);
  });

  harness::ParallelOptions resume = par;
  resume.resume = true;
  harness::ParallelRunResult r = harness::run_benchmark_parallel(*b, opts, resume);
  ASSERT_TRUE(r.resume_error.empty()) << r.resume_error;
  EXPECT_TRUE(r.resumed);
  EXPECT_EQ(r.epoch, 2u);
  EXPECT_GE(r.replayed_shards, 3u);
  expect_bit_identical(serial, r.merged);
  std::remove(path.c_str());
}

// Torn tail: chaos chops bytes off the last durable record before the
// kill, simulating power loss mid-append. Resume quarantines the torn
// bytes, recomputes that shard, and still merges bit-identical.
TEST(ParallelResumeSlow, TornJournalTailIsQuarantinedOnResume) {
  ds::register_all_benchmarks();
  const auto* b = harness::find_benchmark("ticket-lock");
  ASSERT_NE(b, nullptr);
  const std::string path = tmp_path("jobs-torn.journal");
  std::remove(path.c_str());
  std::remove((path + ".quarantined").c_str());
  harness::RunOptions opts;
  harness::RunResult serial = harness::run_benchmark(*b, opts);

  harness::ParallelOptions par;
  par.jobs = 2;
  par.journal_path = path;
  run_until_sigkilled([&] {
    harness::ParallelOptions chaos = par;
    chaos.coord_chaos.truncate_tail_after = 3;
    (void)harness::run_benchmark_parallel(*b, opts, chaos);
  });

  harness::ParallelOptions resume = par;
  resume.resume = true;
  harness::ParallelRunResult r = harness::run_benchmark_parallel(*b, opts, resume);
  ASSERT_TRUE(r.resume_error.empty()) << r.resume_error;
  EXPECT_TRUE(r.resumed);
  EXPECT_GT(r.journal_quarantined_bytes, 0u);
  expect_bit_identical(serial, r.merged);
  std::remove(path.c_str());
  std::remove((path + ".quarantined").c_str());
}

// Epoch fencing: a rogue connection delivers a result under an attempt id
// minted by some other incarnation (wrong epoch in the high 32 bits). The
// coordinator must count it fenced and keep it out of the merge.
TEST(DistFenceSlow, StaleEpochResultIsFencedNotMerged) {
  ds::register_all_benchmarks();
  const auto* b = harness::find_benchmark("ticket-lock");
  ASSERT_NE(b, nullptr);
  const std::string path = tmp_path("fence.journal");
  const std::string sock = tmp_path("fence.sock");
  std::remove(path.c_str());
  harness::RunOptions opts;
  harness::RunResult serial = harness::run_benchmark(*b, opts);

  std::thread rogue([&] {
    dist::Address a;
    std::string err;
    if (!dist::parse_address("unix:" + sock, &a, &err)) return;
    int fd = -1;
    for (int i = 0; i < 500 && fd < 0; ++i) {
      fd = dist::connect_to(a, &err);
      if (fd < 0) usleep(10000);
    }
    if (fd < 0) return;
    // Hello, then a result under an attempt id no incarnation of this
    // coordinator (epoch 1) ever minted: high bits say epoch 99.
    const std::string payload = "not even a shard result";
    const std::uint64_t stale_attempt = (99ull << 32) | 7u;
    std::string msg = dist::render_hello(999999);
    msg += dist::render_result_header(stale_attempt, payload.size());
    msg += payload;
    (void)support::write_full(fd, msg);
    usleep(200000);  // let the coordinator drain the line before EOF
    close(fd);
  });

  dist::DistOptions d;
  d.listen = "unix:" + sock;
  d.dist_workers = 1;
  d.journal_path = path;  // journal => this incarnation runs as epoch 1
  d.lease_seconds = 1.0;  // quick revoke of anything the rogue was handed
  dist::DistRunResult r = dist::run_benchmark_distributed(*b, opts, d);
  rogue.join();
  ASSERT_TRUE(r.resume_error.empty()) << r.resume_error;
  EXPECT_EQ(r.epoch, 1u);
  EXPECT_GE(r.fenced_results, 1u)
      << "the wrong-epoch result must be counted fenced";
  expect_bit_identical(serial, r.merged);
  std::remove(path.c_str());
}

#endif  // __unix__ || __APPLE__

}  // namespace
}  // namespace cds
