// Distributed exploration: the merged result of a --dist-workers N run
// must be bit-identical (executions, prunes, spec counters, verdict) to
// the serial run, and it must stay bit-identical under every protocol
// fault injection — a killed worker, a muted heartbeat, a truncated or
// bit-flipped result payload, a worker dying mid-result-write — at the
// cost of retries and lease expirations only, never coverage.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "dist/chaos.h"
#include "dist/coordinator.h"
#include "ds/suite.h"
#include "fuzz/program.h"
#include "harness/runner.h"
#include "inject/inject.h"
#include "mc/atomic.h"

namespace cds {
namespace {

void expect_dist_equals_serial(const harness::RunResult& serial,
                               const harness::RunResult& merged) {
  EXPECT_EQ(merged.mc.executions, serial.mc.executions);
  EXPECT_EQ(merged.mc.feasible, serial.mc.feasible);
  EXPECT_EQ(merged.mc.pruned_livelock, serial.mc.pruned_livelock);
  EXPECT_EQ(merged.mc.pruned_bound, serial.mc.pruned_bound);
  EXPECT_EQ(merged.mc.pruned_redundant, serial.mc.pruned_redundant);
  EXPECT_EQ(merged.mc.engine_fatal_execs, serial.mc.engine_fatal_execs);
  EXPECT_EQ(merged.mc.violations_total, serial.mc.violations_total);
  EXPECT_EQ(merged.mc.max_trail_depth, serial.mc.max_trail_depth);
  EXPECT_EQ(merged.mc.exhausted, serial.mc.exhausted);
  EXPECT_EQ(merged.verdict, serial.verdict);
  EXPECT_EQ(merged.spec.executions_checked, serial.spec.executions_checked);
  EXPECT_EQ(merged.spec.histories_checked, serial.spec.histories_checked);
  EXPECT_EQ(merged.spec.justification_checks,
            serial.spec.justification_checks);
  EXPECT_EQ(merged.spec.inadmissible_execs, serial.spec.inadmissible_execs);
  EXPECT_EQ(merged.spec.assertion_violation_execs,
            serial.spec.assertion_violation_execs);
  EXPECT_EQ(merged.detected_builtin(), serial.detected_builtin());
  EXPECT_EQ(merged.detected_admissibility(),
            serial.detected_admissibility());
  EXPECT_EQ(merged.detected_assertion(), serial.detected_assertion());
}

// Wraps a litmus program as a synthetic registry-independent Benchmark so
// the distributed path can run the exact BENCH_parallel.json shapes.
// `obs` must outlive the benchmark (the test fn records into it; forked
// workers inherit the whole object in memory).
harness::Benchmark make_litmus_benchmark(const char* name, const char* text,
                                         fuzz::Program* p,
                                         std::vector<std::uint64_t>* obs) {
  std::string err;
  EXPECT_TRUE(fuzz::Program::parse(text, p, &err)) << name << ": " << err;
  harness::Benchmark b;
  b.name = name;
  b.display = name;
  b.spec = nullptr;
  b.tests.push_back(p->test_fn(obs));
  return b;
}

// The two BENCH_parallel.json shapes (bench/parallel_scaling.cpp): wide
// enough that the DFS tree dwarfs the protocol overhead.
constexpr const char* kMpRelacqWide =
    "litmus v1\n"
    "locations 3\n"
    "t0 store x 1 relaxed\n"
    "t0 store y 1 release\n"
    "t1 load y acquire\n"
    "t1 load x relaxed\n"
    "t2 store z 1 release\n"
    "t2 load y acquire\n"
    "t2 store x 3 relaxed\n"
    "t3 load z acquire\n"
    "t3 store x 2 relaxed\n"
    "t3 load y relaxed\n"
    "t3 store z 2 relaxed\n";

constexpr const char* kCasloopWide =
    "litmus v1\n"
    "locations 2\n"
    "t0 cas x 0 1 acq_rel relaxed\n"
    "t0 store y 1 release\n"
    "t1 cas x 0 2 seq_cst acquire\n"
    "t1 load y acquire\n"
    "t2 rmw x 1 acq_rel\n"
    "t2 load y acquire\n"
    "t3 cas y 1 2 acq_rel relaxed\n"
    "t3 load x acquire\n"
    "t3 store y 3 relaxed\n";

// A heavier 4-thread shape (~38k executions, sub-second serial) whose
// shards comfortably outlive the short leases the fault tests use.
constexpr const char* kLongShard =
    "litmus v1\n"
    "locations 3\n"
    "t0 store x 1 relaxed\n"
    "t0 store y 1 release\n"
    "t0 load z acquire\n"
    "t1 load y acquire\n"
    "t1 load x relaxed\n"
    "t1 store z 1 release\n"
    "t2 store z 2 release\n"
    "t2 load y acquire\n"
    "t2 store x 3 relaxed\n"
    "t3 load z acquire\n"
    "t3 store x 2 relaxed\n"
    "t3 load y relaxed\n";

TEST(DistHarness, MergedStatsMatchSerialOnCleanBenchmarks) {
  ds::register_all_benchmarks();
  const auto* b = harness::find_benchmark("ticket-lock");
  ASSERT_NE(b, nullptr);
  harness::RunOptions opts;
  harness::RunResult serial = harness::run_benchmark(*b, opts);
  dist::DistOptions d;
  d.dist_workers = 2;
  dist::DistRunResult r = dist::run_benchmark_distributed(*b, opts, d);
  EXPECT_GT(r.shards, 1u) << "sharding should split the DFS tree";
  EXPECT_EQ(r.retries, 0u);
  EXPECT_EQ(r.failed_shards, 0u);
  EXPECT_FALSE(r.fell_back_local);
  EXPECT_GE(r.workers_connected, 1u);
  expect_dist_equals_serial(serial, r.merged);
  EXPECT_EQ(r.merged.verdict, mc::Verdict::kVerifiedExhaustive);
}

TEST(DistHarness, FalsifiedMatchesSerialWithFirstWitness) {
  // Weaken the first injectable ticket-lock site: serial and distributed
  // runs must falsify with the same violation totals and first witness.
  ds::register_all_benchmarks();
  const auto* b = harness::find_benchmark("ticket-lock");
  ASSERT_NE(b, nullptr);
  bool injected = false;
  for (const auto& s : inject::sites_for(b->name)) {
    if (!s.injectable()) continue;
    inject::inject(s.id);
    injected = true;
    break;
  }
  ASSERT_TRUE(injected);
  harness::RunOptions opts;
  harness::RunResult serial = harness::run_benchmark(*b, opts);
  dist::DistOptions d;
  d.dist_workers = 2;
  dist::DistRunResult r = dist::run_benchmark_distributed(*b, opts, d);
  inject::clear_injection();
  expect_dist_equals_serial(serial, r.merged);
  EXPECT_EQ(r.merged.verdict, mc::Verdict::kFalsified);
  ASSERT_FALSE(r.merged.violations.empty());
  ASSERT_FALSE(serial.violations.empty());
  EXPECT_EQ(r.merged.violations.front().kind, serial.violations.front().kind);
  EXPECT_EQ(r.merged.violations.front().test_index,
            serial.violations.front().test_index);
}

TEST(DistHarness, BenchShapesBitIdenticalToSerial) {
  // The acceptance shapes from BENCH_parallel.json, distributed across
  // four workers.
  struct Case {
    const char* name;
    const char* text;
  } cases[] = {{"mp_relacq_wide", kMpRelacqWide},
               {"casloop_wide", kCasloopWide}};
  for (const auto& c : cases) {
    SCOPED_TRACE(c.name);
    fuzz::Program p;
    std::vector<std::uint64_t> obs;
    harness::Benchmark b = make_litmus_benchmark(c.name, c.text, &p, &obs);
    harness::RunOptions opts;
    harness::RunResult serial = harness::run_benchmark(b, opts);
    ASSERT_TRUE(serial.mc.exhausted);
    dist::DistOptions d;
    d.dist_workers = 4;
    dist::DistRunResult r = dist::run_benchmark_distributed(b, opts, d);
    EXPECT_GT(r.shards, 1u);
    EXPECT_EQ(r.failed_shards, 0u);
    EXPECT_FALSE(r.fell_back_local);
    expect_dist_equals_serial(serial, r.merged);
  }
}

TEST(DistHarness, KilledWorkerShardIsRetriedAndMergedExactlyOnce) {
  // Satellite: retry bookkeeping. Attempt 1 dies (worker SIGKILLed the
  // moment the assignment arrives), attempt 2 succeeds elsewhere; the
  // shard's counters must enter the merge exactly once.
  ds::register_all_benchmarks();
  const auto* b = harness::find_benchmark("ticket-lock");
  ASSERT_NE(b, nullptr);
  harness::RunOptions opts;
  harness::RunResult serial = harness::run_benchmark(*b, opts);
  dist::DistOptions d;
  d.dist_workers = 2;
  d.worker_chaos.kill_on_assignment = 1;  // first forked worker only
  dist::DistRunResult r = dist::run_benchmark_distributed(*b, opts, d);
  EXPECT_GE(r.retries, 1u) << "the killed attempt must be rescheduled";
  EXPECT_EQ(r.failed_shards, 0u);
  expect_dist_equals_serial(serial, r.merged);
  EXPECT_EQ(r.merged.verdict, mc::Verdict::kVerifiedExhaustive);
}

TEST(DistHarness, TruncatedResultIsRejectedAndRetried) {
  ds::register_all_benchmarks();
  const auto* b = harness::find_benchmark("ticket-lock");
  ASSERT_NE(b, nullptr);
  harness::RunOptions opts;
  harness::RunResult serial = harness::run_benchmark(*b, opts);
  dist::DistOptions d;
  d.dist_workers = 2;
  d.worker_chaos.truncate_result_on = 1;
  dist::DistRunResult r = dist::run_benchmark_distributed(*b, opts, d);
  EXPECT_GE(r.corrupt_results, 1u);
  EXPECT_GE(r.retries, 1u);
  EXPECT_EQ(r.failed_shards, 0u);
  expect_dist_equals_serial(serial, r.merged);
}

TEST(DistHarness, CorruptResultIsRejectedAndRetried) {
  ds::register_all_benchmarks();
  const auto* b = harness::find_benchmark("ticket-lock");
  ASSERT_NE(b, nullptr);
  harness::RunOptions opts;
  harness::RunResult serial = harness::run_benchmark(*b, opts);
  dist::DistOptions d;
  d.dist_workers = 2;
  d.worker_chaos.corrupt_result_on = 1;
  dist::DistRunResult r = dist::run_benchmark_distributed(*b, opts, d);
  EXPECT_GE(r.corrupt_results, 1u);
  EXPECT_GE(r.retries, 1u);
  EXPECT_EQ(r.failed_shards, 0u);
  expect_dist_equals_serial(serial, r.merged);
}

TEST(DistHarness, WorkerDyingMidResultWriteIsContained) {
  // Torn frame + connection EOF: the coordinator must fail the attempt
  // without applying any partial state, then retry.
  ds::register_all_benchmarks();
  const auto* b = harness::find_benchmark("ticket-lock");
  ASSERT_NE(b, nullptr);
  harness::RunOptions opts;
  harness::RunResult serial = harness::run_benchmark(*b, opts);
  dist::DistOptions d;
  d.dist_workers = 2;
  d.worker_chaos.die_mid_result_on = 1;
  dist::DistRunResult r = dist::run_benchmark_distributed(*b, opts, d);
  EXPECT_GE(r.retries, 1u);
  EXPECT_EQ(r.failed_shards, 0u);
  expect_dist_equals_serial(serial, r.merged);
}

TEST(DistHarness, MutedHeartbeatsExpireTheLeaseAndDropTheStaleResult) {
  // A live worker that stops heartbeating: its lease expires mid-shard,
  // the shard is retried elsewhere, and the quiet worker's eventual
  // (out-of-lease) result is dropped as stale, not double-merged.
  fuzz::Program p;
  std::vector<std::uint64_t> obs;
  harness::Benchmark b =
      make_litmus_benchmark("long-shard", kLongShard, &p, &obs);
  harness::RunOptions opts;
  harness::RunResult serial = harness::run_benchmark(b, opts);
  ASSERT_TRUE(serial.mc.exhausted);
  dist::DistOptions d;
  d.dist_workers = 2;
  d.lease_seconds = 0.1;  // far shorter than a shard of this shape
  d.max_shard_retries = 10;
  d.max_shards = 2;
  d.shard_depth = 1;
  d.enable_steal = false;  // isolate the lease machinery
  d.worker_chaos.mute_heartbeats_on = 1;
  dist::DistRunResult r = dist::run_benchmark_distributed(b, opts, d);
  EXPECT_GE(r.leases_expired, 1u);
  EXPECT_GE(r.retries, 1u);
  EXPECT_GE(r.stale_results, 1u);
  EXPECT_EQ(r.failed_shards, 0u);
  expect_dist_equals_serial(serial, r.merged);
}

TEST(DistHarness, FallsBackToLocalForkPoolWhenNoWorkerConnects) {
  ds::register_all_benchmarks();
  const auto* b = harness::find_benchmark("ticket-lock");
  ASSERT_NE(b, nullptr);
  harness::RunOptions opts;
  harness::RunResult serial = harness::run_benchmark(*b, opts);
  dist::DistOptions d;
  d.dist_workers = 0;  // nobody will ever dial in
  d.connect_deadline_seconds = 0.2;
  d.fallback_jobs = 2;
  dist::DistRunResult r = dist::run_benchmark_distributed(*b, opts, d);
  EXPECT_TRUE(r.fell_back_local);
  EXPECT_EQ(r.connections_total, 0u);
  expect_dist_equals_serial(serial, r.merged);
  EXPECT_EQ(r.merged.verdict, mc::Verdict::kVerifiedExhaustive);
}

}  // namespace
}  // namespace cds
