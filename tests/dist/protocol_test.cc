// Dist wire protocol: control-line and assignment round-trips, strict
// rejection of malformed frames (truncated, oversized, byte-flipped) with
// token/line diagnostics and no partially-applied state, plus the
// frontier-split primitives the work-stealing path is built on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dist/net.h"
#include "dist/protocol.h"
#include "harness/shard_result.h"
#include "mc/shard.h"
#include "obs/metrics.h"
#include "support/rng.h"

namespace cds {
namespace {

using dist::Assignment;
using dist::ControlLine;
using mc::Choice;
using mc::ChoiceKind;

std::string strip_nl(std::string s) {
  if (!s.empty() && s.back() == '\n') s.pop_back();
  return s;
}

TEST(DistControlLine, RoundTripsEveryVerb) {
  ControlLine c;
  std::string err;

  ASSERT_TRUE(dist::parse_control_line(strip_nl(dist::render_hello(4242)), &c,
                                       &err))
      << err;
  EXPECT_EQ(c.kind, ControlLine::Kind::kHello);
  EXPECT_EQ(c.pid, 4242u);

  ASSERT_TRUE(dist::parse_control_line(
      strip_nl(dist::render_welcome(1666666, 3)), &c, &err))
      << err;
  EXPECT_EQ(c.kind, ControlLine::Kind::kWelcome);
  EXPECT_EQ(c.heartbeat_us, 1666666u);
  EXPECT_EQ(c.epoch, 3u);

  ASSERT_TRUE(
      dist::parse_control_line(strip_nl(dist::render_heartbeat(7)), &c, &err));
  EXPECT_EQ(c.kind, ControlLine::Kind::kHeartbeat);
  EXPECT_EQ(c.shard_id, 7u);

  ASSERT_TRUE(dist::parse_control_line(
      strip_nl(dist::render_result_header(9, 12345)), &c, &err));
  EXPECT_EQ(c.kind, ControlLine::Kind::kResult);
  EXPECT_EQ(c.shard_id, 9u);
  EXPECT_EQ(c.payload_len, 12345u);

  ASSERT_TRUE(dist::parse_control_line(
      strip_nl(dist::render_assign_header(3, 999)), &c, &err));
  EXPECT_EQ(c.kind, ControlLine::Kind::kAssign);
  EXPECT_EQ(c.payload_len, 999u);

  ASSERT_TRUE(
      dist::parse_control_line(strip_nl(dist::render_steal(11)), &c, &err));
  EXPECT_EQ(c.kind, ControlLine::Kind::kSteal);
  EXPECT_EQ(c.shard_id, 11u);

  ASSERT_TRUE(
      dist::parse_control_line(strip_nl(dist::render_quit()), &c, &err));
  EXPECT_EQ(c.kind, ControlLine::Kind::kQuit);
}

TEST(DistControlLine, FailedReasonSurvivesNewlinesAndBackslashes) {
  const std::string reason = "child killed\nby signal 9\\ (SIGKILL)";
  ControlLine c;
  std::string err;
  ASSERT_TRUE(dist::parse_control_line(
      strip_nl(dist::render_failed(5, reason)), &c, &err))
      << err;
  EXPECT_EQ(c.kind, ControlLine::Kind::kFailed);
  EXPECT_EQ(c.shard_id, 5u);
  EXPECT_EQ(c.reason, reason);
}

TEST(DistControlLine, RejectsMalformedLinesWithTokenDiagnostics) {
  const char* bad[] = {
      "",
      "quit now",
      "hb",
      "hb notanumber",
      "hb 1 2",
      "steal -3",
      "result 5",
      "result 5 x",
      "assign 5 18446744073709551616",  // u64 overflow
      "hello cdsspec-dist v2 pid=1",    // wrong version
      "hello cdsspec-dist v1",          // missing pid
      "hello cdsspec-dist v1 pid=abc",
      "welcome cdsspec-dist v1 pid=3",  // pid on a welcome
      "rseult 5 10",                    // typo verb
      "RESULT 5 10",                    // case-sensitive
  };
  for (const char* line : bad) {
    ControlLine c;
    c.kind = ControlLine::Kind::kHeartbeat;
    c.shard_id = 424242;
    std::string err;
    EXPECT_FALSE(dist::parse_control_line(line, &c, &err)) << line;
    EXPECT_FALSE(err.empty()) << line;
    EXPECT_NE(err.find("token"), std::string::npos)
        << "diagnostic must name the offending token: " << err;
    // Rejection leaves the output untouched.
    EXPECT_EQ(c.kind, ControlLine::Kind::kHeartbeat) << line;
    EXPECT_EQ(c.shard_id, 424242u) << line;
  }
}

Assignment sample_assignment() {
  Assignment a;
  a.shard_id = 77;
  a.bench = "synthetic bench\nwith weird name";
  a.unit.test_index = 2;
  a.unit.ordinal = 3;
  a.unit.total = 8;
  a.unit.engine_seed = 0xdeadbeefcafef00dull;
  a.unit.sample_executions = 1250;
  a.unit.prefix = {Choice{ChoiceKind::kSchedule, 1, 3},
                   Choice{ChoiceKind::kReadsFrom, 0, 2},
                   Choice{ChoiceKind::kSchedule, 2, 4}};
  a.engine.max_executions = 100000;
  a.engine.stale_read_bound = 4;
  a.engine.stop_on_first_violation = true;
  a.engine.time_budget_seconds = 1.5;
  a.engine.seed = 42;
  a.checker.max_histories = 512;
  a.checker.seed = 43;
  return a;
}

TEST(DistAssignment, RoundTripsEveryField) {
  Assignment a = sample_assignment();
  std::string text = dist::render_assignment(a);
  Assignment back;
  std::string err;
  ASSERT_TRUE(dist::parse_assignment(text, &back, &err)) << err;
  EXPECT_EQ(back.shard_id, a.shard_id);
  EXPECT_EQ(back.bench, a.bench);
  EXPECT_EQ(back.unit.test_index, a.unit.test_index);
  EXPECT_EQ(back.unit.ordinal, a.unit.ordinal);
  EXPECT_EQ(back.unit.total, a.unit.total);
  EXPECT_EQ(back.unit.engine_seed, a.unit.engine_seed);
  EXPECT_EQ(back.unit.sample_executions, a.unit.sample_executions);
  ASSERT_EQ(back.unit.prefix.size(), a.unit.prefix.size());
  for (std::size_t i = 0; i < a.unit.prefix.size(); ++i) {
    EXPECT_EQ(back.unit.prefix[i].kind, a.unit.prefix[i].kind);
    EXPECT_EQ(back.unit.prefix[i].chosen, a.unit.prefix[i].chosen);
    EXPECT_EQ(back.unit.prefix[i].num, a.unit.prefix[i].num);
  }
  EXPECT_EQ(back.engine.max_executions, a.engine.max_executions);
  EXPECT_EQ(back.engine.stale_read_bound, a.engine.stale_read_bound);
  EXPECT_EQ(back.engine.stop_on_first_violation,
            a.engine.stop_on_first_violation);
  EXPECT_DOUBLE_EQ(back.engine.time_budget_seconds,
                   a.engine.time_budget_seconds);
  EXPECT_EQ(back.engine.seed, a.engine.seed);
  EXPECT_EQ(back.checker.max_histories, a.checker.max_histories);
  EXPECT_EQ(back.checker.seed, a.checker.seed);
}

TEST(DistAssignment, EveryTruncationIsRejectedWithALineDiagnostic) {
  // Chop the rendered payload at every line boundary: every proper prefix
  // must be rejected (strict framing), with a "line N:" diagnostic, and
  // must leave the output object untouched.
  const std::string text = dist::render_assignment(sample_assignment());
  std::vector<std::size_t> cuts;
  for (std::size_t p = 0; p < text.size(); ++p) {
    if (text[p] == '\n') cuts.push_back(p + 1);
  }
  ASSERT_GT(cuts.size(), 5u);
  for (std::size_t k = 0; k + 1 < cuts.size(); ++k) {
    Assignment out;
    out.shard_id = 999999;
    out.bench = "untouched";
    std::string err;
    EXPECT_FALSE(
        dist::parse_assignment(text.substr(0, cuts[k]), &out, &err))
        << "prefix of " << cuts[k] << " bytes parsed";
    EXPECT_NE(err.find("line "), std::string::npos) << err;
    EXPECT_EQ(out.shard_id, 999999u);
    EXPECT_EQ(out.bench, "untouched");
  }
}

TEST(DistAssignment, ByteFlipFuzzNeverCrashesOrPartiallyApplies) {
  const std::string text = dist::render_assignment(sample_assignment());
  support::Xorshift64 rng(0x5eedf00d);
  for (int trial = 0; trial < 4000; ++trial) {
    std::string m = text;
    const int flips = 1 + static_cast<int>(rng.below(3));
    for (int f = 0; f < flips; ++f) {
      const std::size_t pos = static_cast<std::size_t>(rng.below(m.size()));
      m[pos] = static_cast<char>(m[pos] ^ (1u << rng.below(8)));
    }
    Assignment out;
    out.shard_id = 123456789;
    out.bench = "sentinel";
    std::string err;
    if (!dist::parse_assignment(m, &out, &err)) {
      EXPECT_FALSE(err.empty());
      EXPECT_EQ(out.shard_id, 123456789u) << "partial apply on reject";
      EXPECT_EQ(out.bench, "sentinel");
    }
    // An accepted mutation (a flip inside an escaped name, say) is fine —
    // the contract is no crash and no torn output, not bit-sensitivity.
  }
}

TEST(DistAssignment, OversizedGarbageIsRejectedNotAllocated) {
  // A wall of bytes with no newline overflows the frame buffer rather
  // than accumulating without bound; the parser side rejects junk fast.
  dist::FrameBuffer fb;
  std::string junk(dist::FrameBuffer::kMaxLine + 4096, 'A');
  fb.append(junk.data(), junk.size());
  std::string line;
  EXPECT_FALSE(fb.next_line(&line));
  EXPECT_TRUE(fb.overflowed());

  Assignment out;
  std::string err;
  EXPECT_FALSE(dist::parse_assignment(junk, &out, &err));
  EXPECT_FALSE(err.empty());
}

TEST(DistFrameBuffer, CarvesLinesAndPayloadsIncrementally) {
  dist::FrameBuffer fb;
  const std::string stream = "result 5 10\nabcdefghijhb 6\n";
  // Feed one byte at a time: framing must not depend on read boundaries.
  std::string line, payload;
  std::size_t fed = 0;
  for (char ch : stream) {
    fb.append(&ch, 1);
    ++fed;
    if (fed == 12) {
      ASSERT_TRUE(fb.next_line(&line));
      EXPECT_EQ(line, "result 5 10");
    }
  }
  ASSERT_TRUE(fb.take(10, &payload));
  EXPECT_EQ(payload, "abcdefghij");
  ASSERT_TRUE(fb.next_line(&line));
  EXPECT_EQ(line, "hb 6");
  EXPECT_EQ(fb.buffered(), 0u);
  EXPECT_FALSE(fb.overflowed());
}

// ---------------------------------------------------------------------------
// Work-stealing primitives
// ---------------------------------------------------------------------------

TEST(FrontierSplit, RightSiblingsOfEveryUnpinnedLevelDeepestFirst) {
  // frontier = [a(1/3), b(0/2), c(1/4)] pinned at 1: the remainder is
  //   [a, b, c=2], [a, b, c=3]      (siblings of the deepest choice)
  //   [a, b=1]                       (siblings one level up)
  // and nothing at the pinned level.
  std::vector<Choice> frontier = {Choice{ChoiceKind::kSchedule, 1, 3},
                                  Choice{ChoiceKind::kReadsFrom, 0, 2},
                                  Choice{ChoiceKind::kSchedule, 1, 4}};
  auto subs = mc::split_remaining_frontier(1, frontier);
  ASSERT_EQ(subs.size(), 3u);
  ASSERT_EQ(subs[0].size(), 3u);
  EXPECT_EQ(subs[0][2].chosen, 2);
  ASSERT_EQ(subs[1].size(), 3u);
  EXPECT_EQ(subs[1][2].chosen, 3);
  ASSERT_EQ(subs[2].size(), 2u);
  EXPECT_EQ(subs[2][1].chosen, 1);
  // DFS order: every returned prefix sorts after the frontier's own path
  // and they are mutually ordered.
  for (std::size_t k = 0; k + 1 < subs.size(); ++k) {
    EXPECT_TRUE(mc::prefix_dfs_less(subs[k], subs[k + 1])) << k;
  }
}

TEST(FrontierSplit, LastExecutionOfSubtreeSplitsToNothing) {
  std::vector<Choice> frontier = {Choice{ChoiceKind::kSchedule, 2, 3},
                                  Choice{ChoiceKind::kReadsFrom, 1, 2}};
  EXPECT_TRUE(mc::split_remaining_frontier(0, frontier).empty());
  // Fully pinned: nothing may be split regardless of alternatives.
  std::vector<Choice> open = {Choice{ChoiceKind::kSchedule, 0, 3}};
  EXPECT_TRUE(mc::split_remaining_frontier(1, open).empty());
}

TEST(FrontierSplit, PrefixDfsLessOrdersProperPrefixFirst) {
  std::vector<Choice> parent = {Choice{ChoiceKind::kSchedule, 1, 3}};
  std::vector<Choice> child = {Choice{ChoiceKind::kSchedule, 1, 3},
                               Choice{ChoiceKind::kReadsFrom, 0, 2}};
  std::vector<Choice> sibling = {Choice{ChoiceKind::kSchedule, 2, 3}};
  EXPECT_TRUE(mc::prefix_dfs_less(parent, child));
  EXPECT_FALSE(mc::prefix_dfs_less(child, parent));
  EXPECT_TRUE(mc::prefix_dfs_less(child, sibling));
  EXPECT_TRUE(mc::prefix_dfs_less(parent, sibling));
  EXPECT_FALSE(mc::prefix_dfs_less(parent, parent));
}

// ---------------------------------------------------------------------------
// Metrics wire-line fuzz (the other strict line parser on the dist path)
// ---------------------------------------------------------------------------

TEST(MetricsWireFuzz, MutatedLinesNeverCrashOrPartiallyApply) {
  obs::Registry r;
  r.counter("engine.executions").add(12345);
  r.histogram("engine.depth").record(7);
  r.gauge("dist.retries").set(3);
  r.timer("engine.dfs_phase").add_ns(5000000);
  std::vector<std::string> wire = r.render_wire();
  ASSERT_FALSE(wire.empty());

  support::Xorshift64 rng(0xfeedface);
  for (const std::string& line : wire) {
    for (int trial = 0; trial < 500; ++trial) {
      std::string m = line;
      const std::size_t pos = static_cast<std::size_t>(rng.below(m.size()));
      m[pos] = static_cast<char>(m[pos] ^ (1u << rng.below(8)));
      obs::Registry target;
      target.counter("preexisting").add(1);
      std::string before = target.to_json();
      std::string err;
      if (!target.parse_wire_line(m, &err)) {
        EXPECT_FALSE(err.empty());
        EXPECT_EQ(target.to_json(), before)
            << "rejected line mutated the registry: " << m;
      }
    }
    // Truncations too: every proper prefix either parses cleanly or
    // rejects without touching the registry.
    for (std::size_t cut = 0; cut < line.size(); ++cut) {
      obs::Registry target;
      std::string before = target.to_json();
      std::string err;
      if (!target.parse_wire_line(line.substr(0, cut), &err)) {
        EXPECT_FALSE(err.empty());
        EXPECT_EQ(target.to_json(), before);
      }
    }
  }
}

}  // namespace
}  // namespace cds
