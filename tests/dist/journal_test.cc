// Write-ahead shard journal durability: every record kind round-trips
// through its checksummed line form, the CRC catches any single corrupted
// byte, a torn tail is quarantined at EVERY byte offset of the last
// record (truncated back to the last good record, never a crash), a
// damaged magic header quarantines the whole file, and the resume header
// validation rejects a journal recorded under a different benchmark or
// engine configuration instead of merging incompatible state.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dist/journal.h"
#include "ds/suite.h"
#include "harness/parallel.h"
#include "harness/runner.h"
#include "harness/shard_result.h"
#include "mc/atomic.h"

namespace cds {
namespace {

std::string tmp_path(const char* name) { return testing::TempDir() + name; }

void write_file(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(f.is_open()) << path;
  f.write(content.data(), static_cast<std::streamsize>(content.size()));
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream buf;
  buf << f.rdbuf();
  return buf.str();
}

bool exists(const std::string& path) {
  std::ifstream f(path);
  return f.is_open();
}

dist::JournalRecord run_record() {
  dist::JournalRecord r;
  r.kind = dist::JournalRecord::Kind::kRun;
  r.epoch = 3;
  r.shards = 12;
  r.plan_hash = 0xDEADBEEFu;
  r.fingerprint = 0x01020304u;
  r.bench = "ticket-lock with spaces\nand a newline";
  return r;
}

dist::JournalRecord result_record() {
  dist::JournalRecord r;
  r.kind = dist::JournalRecord::Kind::kResult;
  r.shard = 7;
  r.attempt = (3ull << 32) | 41u;
  r.payload = "shard-result v3\nstats executions=5\nend\n";
  return r;
}

void expect_equal_records(const dist::JournalRecord& a,
                          const dist::JournalRecord& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.shards, b.shards);
  EXPECT_EQ(a.plan_hash, b.plan_hash);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.bench, b.bench);
  EXPECT_EQ(a.shard, b.shard);
  EXPECT_EQ(a.attempt, b.attempt);
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.payload, b.payload);
  EXPECT_EQ(a.verdict, b.verdict);
}

TEST(Journal, EveryRecordKindRoundTrips) {
  std::vector<dist::JournalRecord> records;
  records.push_back(run_record());
  {
    dist::JournalRecord r;
    r.kind = dist::JournalRecord::Kind::kLease;
    r.shard = 4;
    r.attempt = (1ull << 32) | 9u;
    records.push_back(r);
  }
  records.push_back(result_record());
  {
    dist::JournalRecord r;
    r.kind = dist::JournalRecord::Kind::kMint;
    r.shard = 7;
    r.count = 3;
    records.push_back(r);
  }
  {
    dist::JournalRecord r;
    r.kind = dist::JournalRecord::Kind::kFailed;
    r.shard = 2;
    r.attempt = (2ull << 32) | 5u;
    r.payload = "worker died twice\nwith detail";
    records.push_back(r);
  }
  {
    dist::JournalRecord r;
    r.kind = dist::JournalRecord::Kind::kDone;
    r.verdict = 2;
    records.push_back(r);
  }
  for (const auto& r : records) {
    std::string line = dist::render_journal_record(r);
    ASSERT_FALSE(line.empty());
    ASSERT_EQ(line.back(), '\n');
    EXPECT_EQ(line.find('\n'), line.size() - 1)
        << "multi-line payloads must be escaped onto one line";
    line.pop_back();
    dist::JournalRecord got;
    std::string err;
    ASSERT_TRUE(dist::parse_journal_record(line, &got, &err)) << err;
    expect_equal_records(r, got);
  }
}

TEST(Journal, CrcCatchesAnySingleCorruptedByte) {
  std::string line = dist::render_journal_record(result_record());
  line.pop_back();  // newline is framing, not part of the record
  for (std::size_t i = 0; i < line.size(); ++i) {
    std::string bad = line;
    bad[i] = static_cast<char>(bad[i] ^ 0x01);
    dist::JournalRecord got;
    std::string err;
    EXPECT_FALSE(dist::parse_journal_record(bad, &got, &err))
        << "byte " << i << " flipped yet the record still parsed";
  }
}

TEST(Journal, TornTailIsQuarantinedAtEveryByteOffset) {
  const std::string path = tmp_path("torn.journal");
  const std::string qpath = path + ".quarantined";
  const std::string magic = "cdsspec-journal v1\n";
  const std::string good1 = dist::render_journal_record(run_record());
  const std::string good2 = dist::render_journal_record(result_record());
  dist::JournalRecord last;
  last.kind = dist::JournalRecord::Kind::kLease;
  last.shard = 9;
  last.attempt = (3ull << 32) | 77u;
  const std::string tail = dist::render_journal_record(last);
  const std::string base = magic + good1 + good2;

  // Every proper prefix of the last record simulates an append the crash
  // cut off mid-write. All of them must load the two good records, set
  // the torn bytes aside, and truncate the file back to the good prefix.
  for (std::size_t cut = 1; cut < tail.size(); ++cut) {
    std::remove(qpath.c_str());
    write_file(path, base + tail.substr(0, cut));
    dist::JournalReplay rep;
    std::string err;
    ASSERT_TRUE(dist::load_journal(path, &rep, &err))
        << "cut=" << cut << ": " << err;
    EXPECT_TRUE(rep.found) << "cut=" << cut;
    ASSERT_EQ(rep.records.size(), 2u) << "cut=" << cut;
    EXPECT_EQ(rep.records[0].kind, dist::JournalRecord::Kind::kRun);
    EXPECT_EQ(rep.records[1].kind, dist::JournalRecord::Kind::kResult);
    EXPECT_EQ(rep.last_epoch, 3u);
    EXPECT_EQ(rep.quarantined_bytes, cut) << "cut=" << cut;
    EXPECT_FALSE(rep.quarantine_note.empty());
    EXPECT_EQ(slurp(qpath), tail.substr(0, cut)) << "cut=" << cut;
    EXPECT_EQ(slurp(path), base) << "cut=" << cut
                                 << ": file must shrink to last good record";

    // The truncated-back journal is clean: a reload sees no quarantine.
    dist::JournalReplay again;
    ASSERT_TRUE(dist::load_journal(path, &again, &err)) << err;
    EXPECT_EQ(again.records.size(), 2u);
    EXPECT_EQ(again.quarantined_bytes, 0u);
    EXPECT_TRUE(again.quarantine_note.empty());
  }
  std::remove(path.c_str());
  std::remove(qpath.c_str());
}

TEST(Journal, CorruptRecordTruncatesBackToLastGoodRecord) {
  const std::string path = tmp_path("corrupt.journal");
  const std::string magic = "cdsspec-journal v1\n";
  const std::string good = dist::render_journal_record(run_record());
  std::string bad = dist::render_journal_record(result_record());
  bad[bad.size() / 2] = static_cast<char>(bad[bad.size() / 2] ^ 0x40);
  const std::string after = dist::render_journal_record(result_record());
  write_file(path, magic + good + bad + after);

  dist::JournalReplay rep;
  std::string err;
  ASSERT_TRUE(dist::load_journal(path, &rep, &err)) << err;
  EXPECT_TRUE(rep.found);
  // WAL discipline: nothing after the first bad record can be trusted
  // (the writer fsyncs in order), so the valid-looking record behind it
  // is quarantined too.
  ASSERT_EQ(rep.records.size(), 1u);
  EXPECT_EQ(rep.records[0].kind, dist::JournalRecord::Kind::kRun);
  EXPECT_EQ(rep.quarantined_bytes, bad.size() + after.size());
  EXPECT_EQ(slurp(path), magic + good);
  std::remove(path.c_str());
  std::remove((path + ".quarantined").c_str());
}

TEST(Journal, DamagedMagicHeaderQuarantinesTheWholeFile) {
  const std::string path = tmp_path("badmagic.journal");
  const std::string content =
      "cdsspec-jounral v1\n" + dist::render_journal_record(run_record());
  write_file(path, content);
  dist::JournalReplay rep;
  std::string err;
  ASSERT_TRUE(dist::load_journal(path, &rep, &err)) << err;
  EXPECT_FALSE(rep.found) << "a damaged header must read as a fresh start";
  EXPECT_TRUE(rep.records.empty());
  EXPECT_EQ(rep.quarantined_bytes, content.size());
  EXPECT_FALSE(exists(path)) << "whole file should have been renamed aside";
  EXPECT_EQ(slurp(path + ".quarantined"), content);
  std::remove((path + ".quarantined").c_str());
}

TEST(Journal, MissingFileIsAFreshStartNotAnError) {
  dist::JournalReplay rep;
  std::string err;
  ASSERT_TRUE(dist::load_journal(tmp_path("never-created.journal"), &rep, &err))
      << err;
  EXPECT_FALSE(rep.found);
  EXPECT_TRUE(rep.records.empty());
  EXPECT_EQ(rep.quarantined_bytes, 0u);
}

TEST(Journal, PlanHashIsSensitiveToEveryPlanComponent) {
  harness::ShardUnit u;
  u.test_index = 1;
  u.engine_seed = 42;
  u.sample_executions = 100;
  u.prefix = {mc::Choice{mc::ChoiceKind::kSchedule, 0, 2},
              mc::Choice{mc::ChoiceKind::kReadsFrom, 1, 3}};
  const std::uint32_t base = dist::journal_plan_hash({u});
  EXPECT_EQ(dist::journal_plan_hash({u}), base) << "must be deterministic";

  harness::ShardUnit v = u;
  v.test_index = 2;
  EXPECT_NE(dist::journal_plan_hash({v}), base);
  v = u;
  v.engine_seed = 43;
  EXPECT_NE(dist::journal_plan_hash({v}), base);
  v = u;
  v.sample_executions = 99;
  EXPECT_NE(dist::journal_plan_hash({v}), base);
  v = u;
  v.prefix[1].chosen = 2;
  EXPECT_NE(dist::journal_plan_hash({v}), base);
  EXPECT_NE(dist::journal_plan_hash({u, u}), base);
}

TEST(Journal, WriterAppendsReloadVerbatimAndSurviveReopen) {
  const std::string path = tmp_path("writer.journal");
  std::string err;
  {
    dist::JournalWriter w;
    ASSERT_TRUE(w.open(path, /*truncate=*/true, &err)) << err;
    ASSERT_TRUE(w.append(run_record(), &err)) << err;
    ASSERT_TRUE(w.append(result_record(), &err)) << err;
    EXPECT_EQ(w.appends(), 2u);
  }
  {
    // Reopen without truncation: a resumed incarnation appends behind the
    // previous one's records.
    dist::JournalWriter w;
    ASSERT_TRUE(w.open(path, /*truncate=*/false, &err)) << err;
    dist::JournalRecord done;
    done.kind = dist::JournalRecord::Kind::kDone;
    done.verdict = 1;
    ASSERT_TRUE(w.append(done, &err)) << err;
  }
  dist::JournalReplay rep;
  ASSERT_TRUE(dist::load_journal(path, &rep, &err)) << err;
  ASSERT_EQ(rep.records.size(), 3u);
  expect_equal_records(rep.records[0], run_record());
  expect_equal_records(rep.records[1], result_record());
  EXPECT_EQ(rep.records[2].kind, dist::JournalRecord::Kind::kDone);
  EXPECT_EQ(rep.records[2].verdict, 1u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Resume header validation through the parallel (--jobs) harness
// ---------------------------------------------------------------------------

TEST(ParallelResume, CleanJournalReplaysToBitIdenticalCounters) {
  ds::register_all_benchmarks();
  const auto* b = harness::find_benchmark("ticket-lock");
  ASSERT_NE(b, nullptr);
  const std::string path = tmp_path("clean-replay.journal");
  std::remove(path.c_str());
  harness::RunOptions opts;
  harness::ParallelOptions par;
  par.jobs = 2;
  par.journal_path = path;
  harness::ParallelRunResult first = harness::run_benchmark_parallel(*b, opts, par);
  ASSERT_TRUE(first.resume_error.empty()) << first.resume_error;
  EXPECT_EQ(first.epoch, 1u);
  EXPECT_FALSE(first.resumed);

  par.resume = true;
  harness::ParallelRunResult again = harness::run_benchmark_parallel(*b, opts, par);
  ASSERT_TRUE(again.resume_error.empty()) << again.resume_error;
  EXPECT_EQ(again.epoch, 2u);
  EXPECT_TRUE(again.resumed);
  EXPECT_EQ(again.replayed_shards, again.shards)
      << "a completed journal must satisfy every shard without re-running";
  EXPECT_EQ(again.merged.mc.executions, first.merged.mc.executions);
  EXPECT_EQ(again.merged.mc.feasible, first.merged.mc.feasible);
  EXPECT_EQ(again.merged.spec.histories_checked,
            first.merged.spec.histories_checked);
  EXPECT_EQ(again.merged.verdict, first.merged.verdict);
  std::remove(path.c_str());
}

TEST(ParallelResume, MismatchedConfigFingerprintRejectsResume) {
  ds::register_all_benchmarks();
  const auto* b = harness::find_benchmark("ticket-lock");
  ASSERT_NE(b, nullptr);
  const std::string path = tmp_path("fingerprint-mismatch.journal");
  std::remove(path.c_str());
  harness::RunOptions opts;
  harness::ParallelOptions par;
  par.jobs = 2;
  par.journal_path = path;
  harness::ParallelRunResult first = harness::run_benchmark_parallel(*b, opts, par);
  ASSERT_TRUE(first.resume_error.empty()) << first.resume_error;

  // Same benchmark, different exploration-shaping config: the journaled
  // shard results cover a different tree, so merging them would be wrong.
  harness::RunOptions other = opts;
  other.engine.stale_read_bound += 1;
  par.resume = true;
  harness::ParallelRunResult r = harness::run_benchmark_parallel(*b, other, par);
  EXPECT_FALSE(r.resume_error.empty());
  EXPECT_EQ(r.merged.verdict, mc::Verdict::kInconclusive);
  EXPECT_EQ(r.merged.mc.executions, 0u) << "nothing may run on a rejected resume";
  std::remove(path.c_str());
}

TEST(ParallelResume, MismatchedBenchmarkRejectsResume) {
  ds::register_all_benchmarks();
  const auto* tl = harness::find_benchmark("ticket-lock");
  const auto* ttas = harness::find_benchmark("ttas-lock");
  ASSERT_NE(tl, nullptr);
  ASSERT_NE(ttas, nullptr);
  const std::string path = tmp_path("bench-mismatch.journal");
  std::remove(path.c_str());
  harness::RunOptions opts;
  harness::ParallelOptions par;
  par.jobs = 2;
  par.journal_path = path;
  harness::ParallelRunResult first = harness::run_benchmark_parallel(*tl, opts, par);
  ASSERT_TRUE(first.resume_error.empty()) << first.resume_error;

  par.resume = true;
  harness::ParallelRunResult r = harness::run_benchmark_parallel(*ttas, opts, par);
  EXPECT_FALSE(r.resume_error.empty());
  EXPECT_EQ(r.merged.verdict, mc::Verdict::kInconclusive);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cds
