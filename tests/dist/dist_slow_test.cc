// Slow distributed fault-tolerance test: kill a worker mid-run AND force
// work stealing on the retried shard. One big shard, four workers: the
// first worker is SIGKILLed the moment the shard arrives, the retry lands
// on a survivor, and the idle workers then steal from it — the preempted
// partial result plus the frontier sub-shards must merge to counters
// bit-identical to the serial run.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "dist/chaos.h"
#include "dist/coordinator.h"
#include "fuzz/program.h"
#include "harness/runner.h"

namespace cds {
namespace {

constexpr const char* kBigShape =
    "litmus v1\n"
    "locations 3\n"
    "t0 store x 1 relaxed\n"
    "t0 store y 1 release\n"
    "t0 load z acquire\n"
    "t1 load y acquire\n"
    "t1 load x relaxed\n"
    "t1 store z 1 release\n"
    "t2 store z 2 release\n"
    "t2 load y acquire\n"
    "t2 store x 3 relaxed\n"
    "t3 load z acquire\n"
    "t3 store x 2 relaxed\n"
    "t3 load y relaxed\n";

TEST(DistSlow, KillAndStealKeepsCountersBitIdentical) {
  fuzz::Program p;
  std::string err;
  ASSERT_TRUE(fuzz::Program::parse(kBigShape, &p, &err)) << err;
  std::vector<std::uint64_t> obs;
  harness::Benchmark b;
  b.name = "kill-and-steal";
  b.display = "Kill-and-steal (synthetic)";
  b.spec = nullptr;
  b.tests.push_back(p.test_fn(&obs));

  harness::RunOptions opts;
  harness::RunResult serial = harness::run_benchmark(b, opts);
  ASSERT_TRUE(serial.mc.exhausted);

  dist::DistOptions d;
  d.dist_workers = 4;
  d.max_shards = 1;   // one big shard: everything else must come from
  d.shard_depth = 1;  // stealing its frontier
  d.steal_after_seconds = 0.05;
  d.lease_seconds = 5.0;  // leases are not the mechanism under test here
  d.worker_chaos.kill_on_assignment = 1;  // first worker dies immediately
  dist::DistRunResult r = dist::run_benchmark_distributed(b, opts, d);

  EXPECT_GE(r.retries, 1u) << "the killed worker's shard must be retried";
  EXPECT_GE(r.steals, 1u) << "idle workers must preempt the big shard";
  EXPECT_GE(r.steal_subshards, 1u);
  EXPECT_GT(r.shards, 1u) << "stealing must mint sub-shards";
  EXPECT_EQ(r.failed_shards, 0u);
  EXPECT_EQ(r.merged.verdict, mc::Verdict::kVerifiedExhaustive);

  EXPECT_EQ(r.merged.mc.executions, serial.mc.executions);
  EXPECT_EQ(r.merged.mc.feasible, serial.mc.feasible);
  EXPECT_EQ(r.merged.mc.pruned_livelock, serial.mc.pruned_livelock);
  EXPECT_EQ(r.merged.mc.pruned_bound, serial.mc.pruned_bound);
  EXPECT_EQ(r.merged.mc.pruned_redundant, serial.mc.pruned_redundant);
  EXPECT_EQ(r.merged.mc.violations_total, serial.mc.violations_total);
  EXPECT_EQ(r.merged.mc.max_trail_depth, serial.mc.max_trail_depth);
  EXPECT_TRUE(r.merged.mc.exhausted);
}

}  // namespace
}  // namespace cds
