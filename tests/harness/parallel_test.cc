// Parallel sharded exploration: the merged result of a --jobs N run must
// be bit-identical (executions, prunes, spec counters, verdict) to the
// serial run on exhaustive workloads, and a worker killed mid-shard must be
// contained as that shard's outcome without taking the run down.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "ds/suite.h"
#include "fuzz/oracle.h"
#include "fuzz/program.h"
#include "harness/parallel.h"
#include "harness/runner.h"
#include "inject/inject.h"
#include "mc/atomic.h"

namespace cds {
namespace {

void expect_merged_equals_serial(const harness::RunResult& serial,
                                 const harness::RunResult& merged) {
  EXPECT_EQ(merged.mc.executions, serial.mc.executions);
  EXPECT_EQ(merged.mc.feasible, serial.mc.feasible);
  EXPECT_EQ(merged.mc.pruned_livelock, serial.mc.pruned_livelock);
  EXPECT_EQ(merged.mc.pruned_bound, serial.mc.pruned_bound);
  EXPECT_EQ(merged.mc.pruned_redundant, serial.mc.pruned_redundant);
  EXPECT_EQ(merged.mc.engine_fatal_execs, serial.mc.engine_fatal_execs);
  EXPECT_EQ(merged.mc.violations_total, serial.mc.violations_total);
  EXPECT_EQ(merged.mc.max_trail_depth, serial.mc.max_trail_depth);
  EXPECT_EQ(merged.mc.exhausted, serial.mc.exhausted);
  EXPECT_EQ(merged.verdict, serial.verdict);
  EXPECT_EQ(merged.spec.executions_checked, serial.spec.executions_checked);
  EXPECT_EQ(merged.spec.histories_checked, serial.spec.histories_checked);
  EXPECT_EQ(merged.spec.justification_checks,
            serial.spec.justification_checks);
  EXPECT_EQ(merged.spec.inadmissible_execs, serial.spec.inadmissible_execs);
  EXPECT_EQ(merged.spec.assertion_violation_execs,
            serial.spec.assertion_violation_execs);
  EXPECT_EQ(merged.detected_builtin(), serial.detected_builtin());
  EXPECT_EQ(merged.detected_admissibility(),
            serial.detected_admissibility());
  EXPECT_EQ(merged.detected_assertion(), serial.detected_assertion());
}

TEST(ParallelHarness, MergedStatsMatchSerialOnCleanBenchmarks) {
  ds::register_all_benchmarks();
  for (const char* name : {"ticket-lock", "peterson-lock"}) {
    const auto* b = harness::find_benchmark(name);
    ASSERT_NE(b, nullptr) << name;
    harness::RunOptions opts;
    harness::RunResult serial = harness::run_benchmark(*b, opts);
    harness::ParallelOptions par;
    par.jobs = 4;
    harness::ParallelRunResult pr =
        harness::run_benchmark_parallel(*b, opts, par);
    SCOPED_TRACE(name);
    EXPECT_GT(pr.shards, 1u) << "sharding should split the DFS tree";
    EXPECT_EQ(pr.crashed_shards, 0u);
    expect_merged_equals_serial(serial, pr.merged);
    EXPECT_EQ(pr.merged.verdict, mc::Verdict::kVerifiedExhaustive);
  }
}

TEST(ParallelHarness, MergedStatsMatchSerialOnFalsifiedBenchmark) {
  // Weaken the first injectable ticket-lock site: both the serial and the
  // sharded run must falsify with the same violation totals.
  ds::register_all_benchmarks();
  const auto* b = harness::find_benchmark("ticket-lock");
  ASSERT_NE(b, nullptr);
  bool injected = false;
  for (const auto& s : inject::sites_for(b->name)) {
    if (!s.injectable()) continue;
    inject::inject(s.id);
    injected = true;
    break;
  }
  ASSERT_TRUE(injected);
  harness::RunOptions opts;
  harness::RunResult serial = harness::run_benchmark(*b, opts);
  harness::ParallelOptions par;
  par.jobs = 4;
  harness::ParallelRunResult pr =
      harness::run_benchmark_parallel(*b, opts, par);
  inject::clear_injection();
  expect_merged_equals_serial(serial, pr.merged);
  EXPECT_EQ(pr.merged.verdict, mc::Verdict::kFalsified);
  ASSERT_FALSE(pr.merged.violations.empty());
  ASSERT_FALSE(serial.violations.empty());
  // Shards merge in DFS order, so the surfaced first witness is the
  // serial run's first violation (same kind on the same unit test).
  EXPECT_EQ(pr.merged.violations.front().kind, serial.violations.front().kind);
  EXPECT_EQ(pr.merged.violations.front().test_index,
            serial.violations.front().test_index);
}

TEST(ParallelHarness, FuzzOracleShardedBehaviorsMatchSerial) {
  for (const char* name : {"mp_relacq", "casloop_mixed", "iriw_sc"}) {
    std::string path = std::string(CDS_CORPUS_DIR) + "/" + name + ".litmus";
    std::ifstream f(path);
    ASSERT_TRUE(f.is_open()) << path;
    std::ostringstream buf;
    buf << f.rdbuf();
    fuzz::Program p;
    std::string err;
    ASSERT_TRUE(fuzz::Program::parse(buf.str(), &p, &err)) << path << ": "
                                                           << err;
    fuzz::OracleConfig serial_cfg;
    fuzz::McBehaviors serial = fuzz::mc_behaviors(p, serial_cfg);
    fuzz::OracleConfig par_cfg;
    par_cfg.jobs = 4;
    fuzz::McBehaviors sharded = fuzz::mc_behaviors(p, par_cfg);
    SCOPED_TRACE(name);
    EXPECT_EQ(sharded.behaviors, serial.behaviors);
    EXPECT_EQ(sharded.exhausted, serial.exhausted);
    EXPECT_EQ(sharded.executions, serial.executions);
  }
}

#if defined(__unix__) || defined(__APPLE__)

TEST(ParallelSlow, SigkilledWorkerIsContainedAsCrashedShard) {
  // A worker SIGKILLed while holding a shard must become that shard's
  // verdict: the run completes, the shard is recorded crashed, and the
  // merged verdict degrades to inconclusive (its subtree went unexplored).
  harness::Benchmark victim;
  victim.name = "parallel-sigkill";
  victim.display = "Parallel containment (synthetic)";
  victim.spec = nullptr;
  victim.tests.push_back([](mc::Exec& x) {
    auto* a = x.make<mc::Atomic<int>>(0, "a");
    auto* c = x.make<mc::Atomic<int>>(0, "b");
    int t1 = x.spawn([a, c] {
      a->store(1, mc::MemoryOrder::relaxed);
      (void)c->load(mc::MemoryOrder::relaxed);
    });
    int t2 = x.spawn([a, c] {
      c->store(1, mc::MemoryOrder::relaxed);
      (void)a->load(mc::MemoryOrder::relaxed);
    });
    x.join(t1);
    x.join(t2);
  });

  harness::RunOptions opts;
  harness::ParallelOptions par;
  par.jobs = 2;
  par.shard_depth = 3;
  par.sigkill_shard = 0;
  harness::ParallelRunResult pr =
      harness::run_benchmark_parallel(victim, opts, par);
  EXPECT_GE(pr.shards, 2u);
  EXPECT_EQ(pr.crashed_shards, 1u);
  EXPECT_EQ(pr.merged.verdict, mc::Verdict::kInconclusive);
  EXPECT_FALSE(pr.merged.mc.exhausted);
  // The surviving workers still covered every other shard.
  EXPECT_GT(pr.merged.mc.executions, 0u);
}

#endif  // fork-capable platforms

}  // namespace
}  // namespace cds
