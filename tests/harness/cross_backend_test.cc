// Model/stress cross-backend differential suite (the tentpole property):
// a stress run samples real hardware schedules, so on a correct engine and
// a correct stress backend every behavior it observes must already be in
// the model checker's exhaustively enumerated set — stress ⊆ model.
//   - every checked-in corpus litmus program, under several stress seeds,
//     with the offending seed and extra behaviors named on failure;
//   - a sample of src/ds structures, compared on the per-execution tuple
//     of atomic-location final values;
//   - determinism: the stress preemption decision stream is a pure
//     function of the iteration seed.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "ds/suite.h"
#include "fuzz/oracle.h"
#include "fuzz/program.h"
#include "harness/runner.h"
#include "harness/stress_backend.h"
#include "mc/engine.h"

namespace cds {
namespace {

fuzz::Program load_corpus_program(const std::string& name) {
  std::string path = std::string(CDS_CORPUS_DIR) + "/" + name + ".litmus";
  std::ifstream f(path);
  EXPECT_TRUE(f.is_open()) << path;
  std::ostringstream buf;
  buf << f.rdbuf();
  fuzz::Program p;
  std::string err;
  EXPECT_TRUE(fuzz::Program::parse(buf.str(), &p, &err)) << path << ": " << err;
  return p;
}

const std::vector<std::string>& corpus_names() {
  static const std::vector<std::string> names = {
      "sb_sc", "mp_relacq", "lb_relaxed", "iriw_sc", "casloop_mixed",
      "fence_mp"};
  return names;
}

class CorpusCrossBackend : public testing::TestWithParam<std::string> {};

// Satellite property: N seeded stress runs of each corpus program only
// produce behaviors the model enumerates, reported per seed.
TEST_P(CorpusCrossBackend, StressSweepContainedInModelSweep) {
  fuzz::Program p = load_corpus_program(GetParam());
  fuzz::OracleConfig cfg;
  auto model = fuzz::mc_behaviors(p, cfg);
  ASSERT_TRUE(model.exhausted) << GetParam();
  ASSERT_FALSE(model.behaviors.empty()) << GetParam();
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    fuzz::BehaviorSet stress =
        fuzz::stress_behaviors(p, /*iters=*/200, /*threads_mult=*/2, seed);
    EXPECT_FALSE(stress.empty()) << GetParam() << " seed=" << seed;
    for (const std::string& b : stress) {
      EXPECT_TRUE(model.behaviors.count(b) != 0)
          << GetParam() << " seed=" << seed << ": stress behavior '" << b
          << "' is outside the model's " << model.behaviors.size()
          << "-behavior set";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllCorpusPrograms, CorpusCrossBackend,
                         testing::ValuesIn(corpus_names()));

// ---------------------------------------------------------------------------
// src/ds structures: compare the per-execution tuple of atomic-location
// final values. Valid for structures whose root thread creates every
// location before spawning (all ds tests do), so location indices line up
// across backends.
// ---------------------------------------------------------------------------

std::string finals_key(const harness::Backend& b) {
  std::ostringstream os;
  for (std::uint32_t l = 0; l < b.location_count(); ++l) {
    os << b.location_final_value(l) << ',';
  }
  return os.str();
}

std::set<std::string> model_finals(const mc::TestFn& test) {
  struct Collector : mc::ExecutionListener {
    std::set<std::string> finals;
    bool on_execution_complete(mc::Engine& e) override {
      finals.insert(finals_key(e));
      return true;
    }
  } c;
  mc::Config cfg;
  cfg.max_executions = 500000;
  mc::Engine e(cfg);
  e.set_listener(&c);
  auto stats = e.explore(test);
  EXPECT_TRUE(stats.exhausted);
  EXPECT_EQ(stats.violations_total, 0u);
  return c.finals;
}

class DsCrossBackend : public testing::TestWithParam<std::string> {
 protected:
  static void SetUpTestSuite() { ds::register_all_benchmarks(); }
};

TEST_P(DsCrossBackend, StressFinalsContainedInModelFinals) {
  const auto* b = harness::find_benchmark(GetParam());
  ASSERT_NE(b, nullptr);
  for (std::size_t ti = 0; ti < b->tests.size(); ++ti) {
    std::set<std::string> model = model_finals(b->tests[ti]);
    ASSERT_FALSE(model.empty()) << GetParam() << "#" << ti;

    std::set<std::string> stress;
    harness::StressOptions opts;
    opts.iters = 64;
    opts.seed = 0xD1CEu;
    auto r = harness::run_stress(
        b->tests[ti], opts,
        [&](int, harness::StressBackend& be) { stress.insert(finals_key(be)); });
    EXPECT_EQ(r.stats.violations_total, 0u) << GetParam() << "#" << ti;
    ASSERT_FALSE(stress.empty()) << GetParam() << "#" << ti;
    for (const std::string& k : stress) {
      EXPECT_TRUE(model.count(k) != 0)
          << GetParam() << "#" << ti << ": stress finals (" << k
          << ") never produced by the model (" << model.size()
          << " final states)";
    }
  }
}

// Deterministic-layout structures small enough to exhaust quickly; the
// full suite runs under stress in suite_property_test.cc.
INSTANTIATE_TEST_SUITE_P(SampledStructures, DsCrossBackend,
                         testing::Values("ticket-lock", "ttas-lock",
                                         "peterson-lock", "relaxed-register",
                                         "seqlock"),
                         [](const testing::TestParamInfo<std::string>& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// ---------------------------------------------------------------------------
// Determinism of the stress decision stream
// ---------------------------------------------------------------------------

// A straight-line litmus body performs a fixed number of ops per thread,
// so the whole decision trail — not just the per-op decision function —
// must reproduce exactly under the same iteration seed.
TEST(StressDeterminism, SameSeedSameDecisionTrail) {
  fuzz::Program p = load_corpus_program("mp_relacq");
  std::vector<std::uint64_t> obs(static_cast<std::size_t>(p.total_ops()));
  auto test = p.test_fn(&obs);
  for (std::uint64_t seed : {7ull, 8ull, 9ull}) {
    harness::StressOptions opts;
    harness::StressBackend a(opts);
    a.run_iteration(test, seed);
    auto ta = a.decision_trail();
    harness::StressBackend b(opts);
    b.run_iteration(test, seed);
    auto tb = b.decision_trail();
    ASSERT_EQ(ta.size(), tb.size()) << "seed=" << seed;
    for (std::size_t i = 0; i < ta.size(); ++i) {
      EXPECT_EQ(ta[i].chosen, tb[i].chosen) << "seed=" << seed << " op " << i;
    }
  }
}

TEST(StressDeterminism, DistinctSeedsPerturbDifferently) {
  fuzz::Program p = load_corpus_program("mp_relacq");
  std::vector<std::uint64_t> obs(static_cast<std::size_t>(p.total_ops()));
  auto test = p.test_fn(&obs);
  std::set<std::string> trails;
  harness::StressOptions opts;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    harness::StressBackend be(opts);
    be.run_iteration(test, seed);
    std::string key;
    for (const mc::Choice& c : be.decision_trail()) {
      key += static_cast<char>('0' + c.chosen);
    }
    trails.insert(key);
  }
  // 16 seeds over an 8-decision stream: at least two distinct streams or
  // the seed is not reaching the preemption PRNG at all.
  EXPECT_GE(trails.size(), 2u);
}

}  // namespace
}  // namespace cds
