// Shard-result wire (v4): render/parse round trip including the rf-mode
// class counters, strict rejection of stale wire versions, and the
// merge-by-summation property the --jobs/--dist mergers rely on for
// bit-identical class counts.
#include <gtest/gtest.h>

#include <string>

#include "harness/shard_result.h"

namespace cds {
namespace {

harness::RunResult full_result() {
  harness::RunResult r;
  r.mc.executions = 120;
  r.mc.feasible = 100;
  r.mc.pruned_bound = 5;
  r.mc.pruned_livelock = 3;
  r.mc.pruned_redundant = 12;
  r.mc.builtin_violation_execs = 1;
  r.mc.violations_total = 2;
  r.mc.rf_classes = 41;
  r.mc.rf_infeasible = 59;
  r.mc.sampled = 7;
  r.mc.max_trail_depth = 18;
  r.mc.exhausted = true;
  r.mc.verdict = mc::Verdict::kFalsified;
  r.spec.executions_checked = 100;
  r.spec.histories_checked = 400;
  r.spec.justification_checks = 80;
  r.violations.push_back(mc::Violation{
      mc::ViolationKind::kSpecAssertion, "postcondition of deq()=1 failed",
      17, {mc::Choice{mc::ChoiceKind::kReadsFrom, 1, 3}}, 0});
  r.reports.push_back("spec 'MSQueue': 1 violation\nsecond line");
  return r;
}

TEST(ShardResult, RoundTripCarriesRfCounters) {
  harness::RunResult r = full_result();
  std::string wire = harness::render_shard_result(r);
  EXPECT_EQ(wire.rfind("shard-result v4", 0), 0u) << wire;
  harness::ShardResult back;
  std::string err;
  ASSERT_TRUE(harness::parse_shard_result(wire, &back, &err)) << err;
  EXPECT_EQ(back.stats.executions, r.mc.executions);
  EXPECT_EQ(back.stats.rf_classes, 41u);
  EXPECT_EQ(back.stats.rf_infeasible, 59u);
  EXPECT_EQ(back.stats.verdict, mc::Verdict::kFalsified);
  ASSERT_EQ(back.violations.size(), 1u);
  EXPECT_EQ(back.violations[0].detail, r.violations[0].detail);
  ASSERT_EQ(back.reports.size(), 1u);
  EXPECT_EQ(back.reports[0], r.reports[0]);
}

TEST(ShardResult, StaleWireVersionsAreRejected) {
  // A spool file left by an older build must read as corrupt, not merge
  // with the rf counters silently missing.
  std::string wire = harness::render_shard_result(full_result());
  for (const char* old : {"shard-result v1", "shard-result v2",
                          "shard-result v3"}) {
    std::string stale = wire;
    stale.replace(0, 15, old);
    harness::ShardResult back;
    std::string err;
    EXPECT_FALSE(harness::parse_shard_result(stale, &back, &err)) << old;
    EXPECT_NE(err.find("stale wire version"), std::string::npos) << err;
  }
}

TEST(ShardResult, MissingRfKeyIsRejected) {
  std::string wire = harness::render_shard_result(full_result());
  std::size_t at = wire.find(" rf_classes=41");
  ASSERT_NE(at, std::string::npos);
  wire.erase(at, 14);
  harness::ShardResult back;
  std::string err;
  EXPECT_FALSE(harness::parse_shard_result(wire, &back, &err));
  EXPECT_NE(err.find("missing keys"), std::string::npos) << err;
}

TEST(ShardResult, MergeSumsRfCountersExactly) {
  mc::ExplorationStats total;
  total.exhausted = true;
  std::uint64_t want_classes = 0, want_infeasible = 0;
  for (std::uint64_t i = 1; i <= 4; ++i) {
    mc::ExplorationStats shard;
    shard.executions = 10 * i;
    shard.rf_classes = 3 * i;
    shard.rf_infeasible = 7 * i;
    shard.exhausted = true;
    want_classes += shard.rf_classes;
    want_infeasible += shard.rf_infeasible;
    mc::merge_shard_stats(total, shard);
  }
  EXPECT_EQ(total.rf_classes, want_classes);
  EXPECT_EQ(total.rf_infeasible, want_infeasible);
  EXPECT_TRUE(total.exhausted);
}

}  // namespace
}  // namespace cds
