// Stress watchdog (satellite): a test body that deadlocks under the
// stress backend — a real std::thread wedged forever — must not hang the
// whole run. The per-iteration watchdog abandons the stuck runner,
// records a diagnostic naming the iteration and seed, and caps the
// verdict at inconclusive; a hang can never falsify.
#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "harness/stress_backend.h"
#include "mc/atomic.h"
#include "mc/engine.h"
#include "mc/sync.h"

namespace cds {
namespace {

// Deterministic deadlock: the root body takes the lock, spawns a child
// that wants it, and joins the child — both sides wait forever.
void deadlocking_body(mc::Exec& x) {
  auto* m = x.make<mc::Mutex>("wedge");
  m->lock();
  int t = x.spawn([m] { m->lock(); });
  x.join(t);
}

TEST(StressWatchdogSlow, HungIterationIsAbandonedWithDiagnostic) {
  harness::StressOptions opts;
  opts.iters = 1;
  opts.threads_mult = 1;
  opts.seed = 77;
  opts.iteration_timeout_seconds = 0.5;
  harness::StressRunResult r = harness::run_stress(deadlocking_body, opts);

  EXPECT_EQ(r.stats.hung_iterations, 1u);
  ASSERT_EQ(r.hangs.size(), 1u);
  // The diagnostic must carry enough to replay the hang under a debugger:
  // the stuck iteration, its seed, and what happened to the thread.
  EXPECT_NE(r.hangs[0].find("iteration"), std::string::npos) << r.hangs[0];
  EXPECT_NE(r.hangs[0].find("seed"), std::string::npos) << r.hangs[0];
  EXPECT_NE(r.hangs[0].find("watchdog"), std::string::npos) << r.hangs[0];
  EXPECT_EQ(r.verdict, mc::Verdict::kInconclusive)
      << "a hang leaves the verdict inconclusive, never falsified";
  EXPECT_TRUE(r.violations.empty());
}

std::atomic<int> g_calls{0};

// Wedges exactly one iteration (the third body invocation); the rest are
// trivial and finish instantly.
void deadlock_on_third_call(mc::Exec& x) {
  auto* m = x.make<mc::Mutex>("wedge");
  if (g_calls.fetch_add(1) == 2) {
    m->lock();
    int t = x.spawn([m] { m->lock(); });
    x.join(t);
  }
}

TEST(StressWatchdogSlow, HealthyRunnersFinishWhileOneHangs) {
  // Two runners: the runner that is NOT stuck must keep draining and
  // merging iterations while the watchdog abandons the wedged one.
  g_calls.store(0);
  harness::StressOptions opts;
  opts.iters = 8;
  opts.threads_mult = 2;
  opts.seed = 5;
  opts.iteration_timeout_seconds = 0.5;
  harness::StressRunResult r =
      harness::run_stress(deadlock_on_third_call, opts);
  EXPECT_EQ(r.stats.hung_iterations, 1u);
  EXPECT_EQ(r.verdict, mc::Verdict::kInconclusive);
  EXPECT_GE(r.stats.iterations, 1u)
      << "the healthy runner's completed iterations must still merge";
  EXPECT_LT(r.stats.iterations, opts.iters)
      << "the hung iteration never completes, so the full quota cannot merge";
}

TEST(StressWatchdog, NormalIterationsNeverTripTheWatchdog) {
  harness::StressOptions opts;
  opts.iters = 32;
  opts.threads_mult = 2;
  opts.iteration_timeout_seconds = 30.0;
  harness::StressRunResult r = harness::run_stress(
      [](mc::Exec& x) {
        auto* a = x.make<mc::Atomic<int>>(0, "a");
        int t = x.spawn([a] { a->store(1, mc::MemoryOrder::release); });
        (void)a->load(mc::MemoryOrder::acquire);
        x.join(t);
      },
      opts);
  EXPECT_EQ(r.stats.hung_iterations, 0u);
  EXPECT_TRUE(r.hangs.empty());
  EXPECT_EQ(r.stats.iterations, opts.iters);
}

}  // namespace
}  // namespace cds
