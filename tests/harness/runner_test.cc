// Harness tests: benchmark registry, result aggregation, and the
// injection-experiment classification (Figure 8 machinery).
#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>

#include "ds/suite.h"
#include "ds/ticket_lock.h"
#include "harness/runner.h"
#include "mc/atomic.h"

namespace cds {
namespace {

TEST(Harness, RegistryIsIdempotentAndSearchable) {
  ds::register_all_benchmarks();
  std::size_t n = harness::benchmarks().size();
  ds::register_all_benchmarks();  // no duplicates
  EXPECT_EQ(harness::benchmarks().size(), n);
  EXPECT_GE(n, 13u) << "10 paper rows + 3 expressiveness extras";
  EXPECT_NE(harness::find_benchmark("ms-queue"), nullptr);
  EXPECT_EQ(harness::find_benchmark("no-such-benchmark"), nullptr);
}

TEST(Harness, PaperRowsAllRegistered) {
  ds::register_all_benchmarks();
  for (const char* name :
       {"chase-lev-deque", "spsc-queue", "rcu", "lockfree-hashtable",
        "mcs-lock", "mpmc-queue", "ms-queue", "linux-rwlock", "seqlock",
        "ticket-lock"}) {
    const auto* b = harness::find_benchmark(name);
    ASSERT_NE(b, nullptr) << name;
    EXPECT_FALSE(b->tests.empty()) << name;
    EXPECT_NE(b->spec, nullptr) << name;
  }
}

TEST(Harness, RunBenchmarkAggregatesAcrossTests) {
  ds::register_all_benchmarks();
  const auto* b = harness::find_benchmark("ticket-lock");
  ASSERT_NE(b, nullptr);
  harness::RunResult total = harness::run_benchmark(*b);
  std::uint64_t sum = 0;
  for (const auto& t : b->tests) {
    sum += harness::run_with_spec(t).mc.executions;
  }
  EXPECT_EQ(total.mc.executions, sum);
  EXPECT_EQ(total.mc.violations_total, 0u);
}

TEST(Harness, InjectionExperimentClassifiesTicketLock) {
  ds::register_all_benchmarks();
  const auto* b = harness::find_benchmark("ticket-lock");
  ASSERT_NE(b, nullptr);
  harness::RunOptions opts;
  opts.engine.stop_on_first_violation = true;
  auto sum = harness::run_injection_experiment(*b, opts);
  EXPECT_EQ(sum.injections, 2);
  EXPECT_EQ(sum.undetected, 0);
  EXPECT_EQ(sum.assertion, 2) << "both weakenings break lock() ordering";
  EXPECT_DOUBLE_EQ(sum.detection_rate(), 1.0);
  EXPECT_EQ(inject::active_injection(), -1) << "injection cleared after runs";
}

TEST(Harness, DetectionNames) {
  EXPECT_STREQ(harness::to_string(harness::Detection::kNone), "undetected");
  EXPECT_STREQ(harness::to_string(harness::Detection::kBuiltin), "built-in");
  EXPECT_STREQ(harness::to_string(harness::Detection::kAdmissibility),
               "admissibility");
  EXPECT_STREQ(harness::to_string(harness::Detection::kAssertion), "assertion");
}

#if defined(__unix__) || defined(__APPLE__)

// A deliberately hostile synthetic benchmark for the sweep fail-safes:
// one site kills the trial process outright (SIGKILL is uncatchable, so
// the engine's signal containment cannot intervene — this exercises the
// fork-isolation backstop), one hangs it (a non-parking native loop the
// engine cannot preempt), one behaves, and one aborts *inside the test
// body*, which the containment layer turns into a classified kCrash
// detection instead of a dead child. Registered at static-init time like
// real benchmark sites.
const inject::SiteId kCrashSite =
    inject::register_site("sweep-survival", "crash.store",
                          mc::MemoryOrder::seq_cst, inject::OpKind::kStore);
const inject::SiteId kHangSite =
    inject::register_site("sweep-survival", "hang.store",
                          mc::MemoryOrder::seq_cst, inject::OpKind::kStore);
const inject::SiteId kOkSite =
    inject::register_site("sweep-survival", "ok.store",
                          mc::MemoryOrder::seq_cst, inject::OpKind::kStore);
const inject::SiteId kAbortSite =
    inject::register_site("sweep-survival", "abort.store",
                          mc::MemoryOrder::seq_cst, inject::OpKind::kStore);

TEST(Harness, SweepSurvivesCrashingAndHangingTrials) {
  harness::Benchmark hostile;
  hostile.name = "sweep-survival";
  hostile.display = "Sweep survival (synthetic)";
  hostile.spec = nullptr;
  hostile.tests.push_back([](mc::Exec& x) {
    if (inject::active_injection() == kCrashSite) raise(SIGKILL);
    if (inject::active_injection() == kAbortSite) std::abort();
    if (inject::active_injection() == kHangSite) {
      volatile int spin = 1;
      while (spin != 0) {
      }
    }
    auto* a = x.make<mc::Atomic<int>>(0, "a");
    a->store(1, inject::order(kOkSite));
  });

  harness::RunOptions opts;
  harness::SweepOptions sweep;
  sweep.trial_timeout_seconds = 1.0;
  sweep.timeout_retries = 1;
  auto sum = harness::run_injection_experiment(hostile, opts, sweep);

  // The campaign survives every hostile trial: the raw kill and the hang
  // are recorded as process-level outcomes, the contained abort and the
  // well-behaved site classify normally.
  EXPECT_EQ(sum.injections, 4);
  EXPECT_EQ(sum.crashed, 1);
  EXPECT_EQ(sum.timed_out, 1);
  EXPECT_EQ(sum.completed(), 2);
  EXPECT_EQ(sum.undetected, 1);  // the ok site has no spec to violate
  ASSERT_EQ(sum.outcomes.size(), 4u);
  EXPECT_EQ(sum.outcomes[0].status, harness::TrialStatus::kCrashed);
  EXPECT_EQ(sum.outcomes[0].term_signal, SIGKILL);
  EXPECT_EQ(sum.outcomes[1].status, harness::TrialStatus::kTimedOut);
  EXPECT_TRUE(sum.outcomes[1].retried) << "one retry at a tighter cap";
  EXPECT_EQ(sum.outcomes[2].status, harness::TrialStatus::kCompleted);
  EXPECT_EQ(sum.outcomes[2].how, harness::Detection::kNone);
  // The in-body abort is contained: the trial *completes* with the crash
  // classified as a built-in detection, rather than killing the child.
  EXPECT_EQ(sum.outcomes[3].status, harness::TrialStatus::kCompleted);
  EXPECT_EQ(sum.outcomes[3].how, harness::Detection::kBuiltin);
  EXPECT_EQ(sum.outcomes[3].verdict, mc::Verdict::kFalsified);
  EXPECT_EQ(inject::active_injection(), -1);
}

#endif  // fork-capable platforms

TEST(Harness, DetectionFlagsReflectViolationKinds) {
  harness::RunResult r;
  EXPECT_FALSE(r.any_detection());
  r.violations.push_back(
      mc::Violation{mc::ViolationKind::kDataRace, "x", 0});
  EXPECT_TRUE(r.detected_builtin());
  EXPECT_FALSE(r.detected_assertion());
  r.spec.assertion_violation_execs = 1;
  EXPECT_TRUE(r.detected_assertion());
  r.spec.inadmissible_execs = 2;
  EXPECT_TRUE(r.detected_admissibility());
}

}  // namespace
}  // namespace cds
