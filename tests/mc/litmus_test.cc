// Classic weak-memory litmus tests: the engine must admit exactly the
// outcome sets the C/C++11 model admits for each memory-order choice.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "mc/atomic.h"
#include "mc/engine.h"
#include "mc/sync.h"
#include "mc/var.h"

namespace cds::mc {
namespace {

using Outcomes = std::set<std::pair<int, int>>;

// Runs a two-result test and collects the set of (r1, r2) outcomes over all
// feasible executions.
struct Collect2 : ExecutionListener {
  int* r1;
  int* r2;
  Outcomes seen;
  bool on_execution_complete(Engine&) override {
    seen.insert({*r1, *r2});
    return true;
  }
};

TEST(Litmus, StoreBufferingSeqCst) {
  // SB with seq_cst everywhere: r1 == 0 && r2 == 0 is forbidden.
  int r1 = -1, r2 = -1;
  Collect2 c;
  c.r1 = &r1;
  c.r2 = &r2;
  Engine e;
  e.set_listener(&c);
  auto stats = e.explore([&](Exec& x) {
    auto* fx = x.make<Atomic<int>>(0, "x");
    auto* fy = x.make<Atomic<int>>(0, "y");
    int t1 = x.spawn([&, fx, fy] {
      fx->store(1, MemoryOrder::seq_cst);
      r1 = fy->load(MemoryOrder::seq_cst);
    });
    int t2 = x.spawn([&, fx, fy] {
      fy->store(1, MemoryOrder::seq_cst);
      r2 = fx->load(MemoryOrder::seq_cst);
    });
    x.join(t1);
    x.join(t2);
  });
  EXPECT_GT(stats.feasible, 0u);
  EXPECT_EQ(c.seen.count({0, 0}), 0u) << "SC forbids 0/0 in store buffering";
  EXPECT_TRUE(c.seen.count({1, 0}) == 1 || c.seen.count({0, 1}) == 1);
  EXPECT_EQ(c.seen.count({1, 1}), 1u);
}

TEST(Litmus, StoreBufferingRelaxedAllowsBothZero) {
  int r1 = -1, r2 = -1;
  Collect2 c;
  c.r1 = &r1;
  c.r2 = &r2;
  Engine e;
  e.set_listener(&c);
  e.explore([&](Exec& x) {
    auto* fx = x.make<Atomic<int>>(0, "x");
    auto* fy = x.make<Atomic<int>>(0, "y");
    int t1 = x.spawn([&, fx, fy] {
      fx->store(1, MemoryOrder::relaxed);
      r1 = fy->load(MemoryOrder::relaxed);
    });
    int t2 = x.spawn([&, fx, fy] {
      fy->store(1, MemoryOrder::relaxed);
      r2 = fx->load(MemoryOrder::relaxed);
    });
    x.join(t1);
    x.join(t2);
  });
  EXPECT_EQ(c.seen.count({0, 0}), 1u) << "relaxed SB admits 0/0";
}

TEST(Litmus, StoreBufferingSeqCstFencesForbidBothZero) {
  int r1 = -1, r2 = -1;
  Collect2 c;
  c.r1 = &r1;
  c.r2 = &r2;
  Engine e;
  e.set_listener(&c);
  e.explore([&](Exec& x) {
    auto* fx = x.make<Atomic<int>>(0, "x");
    auto* fy = x.make<Atomic<int>>(0, "y");
    int t1 = x.spawn([&, fx, fy] {
      fx->store(1, MemoryOrder::relaxed);
      thread_fence(MemoryOrder::seq_cst);
      r1 = fy->load(MemoryOrder::relaxed);
    });
    int t2 = x.spawn([&, fx, fy] {
      fy->store(1, MemoryOrder::relaxed);
      thread_fence(MemoryOrder::seq_cst);
      r2 = fx->load(MemoryOrder::relaxed);
    });
    x.join(t1);
    x.join(t2);
  });
  EXPECT_EQ(c.seen.count({0, 0}), 0u) << "SC fences forbid 0/0 in SB";
}

TEST(Litmus, MessagePassingReleaseAcquire) {
  // MP: with release store / acquire load of the flag, r2 == 1 whenever
  // r1 == 1; the data variable is plain, so no race may be reported.
  int r1 = -1, r2 = -1;
  Collect2 c;
  c.r1 = &r1;
  c.r2 = &r2;
  Engine e;
  e.set_listener(&c);
  auto stats = e.explore([&](Exec& x) {
    auto* data = x.make<Var<int>>(0, "data");
    auto* flag = x.make<Atomic<int>>(0, "flag");
    int t1 = x.spawn([&, data, flag] {
      data->write(42);
      flag->store(1, MemoryOrder::release);
    });
    int t2 = x.spawn([&, data, flag] {
      r1 = flag->load(MemoryOrder::acquire);
      r2 = (r1 == 1) ? data->read() : -2;
    });
    x.join(t1);
    x.join(t2);
  });
  EXPECT_EQ(stats.builtin_violation_execs, 0u) << "MP(rel/acq) is race-free";
  EXPECT_EQ(c.seen.count({1, 42}), 1u);
  EXPECT_EQ(c.seen.count({0, -2}), 1u);
  for (auto& [a, b] : c.seen) {
    if (a == 1) {
      EXPECT_EQ(b, 42) << "acquire read of flag=1 must see data=42";
    }
  }
}

TEST(Litmus, MessagePassingRelaxedFlagRaces) {
  // With a relaxed flag there is no synchronization: reading data after
  // seeing flag==1 is a data race the built-in detector must flag.
  Engine e;
  auto stats = e.explore([&](Exec& x) {
    auto* data = x.make<Var<int>>(0, "data");
    auto* flag = x.make<Atomic<int>>(0, "flag");
    int t1 = x.spawn([data, flag] {
      data->write(42);
      flag->store(1, MemoryOrder::relaxed);
    });
    int t2 = x.spawn([data, flag] {
      if (flag->load(MemoryOrder::relaxed) == 1) (void)data->read();
    });
    x.join(t1);
    x.join(t2);
  });
  EXPECT_GT(stats.builtin_violation_execs, 0u);
  ASSERT_FALSE(e.violations().empty());
  EXPECT_EQ(e.violations()[0].kind, ViolationKind::kDataRace);
}

TEST(Litmus, MessagePassingFenceSynchronization) {
  // Release fence + relaxed store / relaxed load + acquire fence also
  // synchronizes (C++11 fence rules): no race.
  Engine e;
  auto stats = e.explore([&](Exec& x) {
    auto* data = x.make<Var<int>>(0, "data");
    auto* flag = x.make<Atomic<int>>(0, "flag");
    int t1 = x.spawn([data, flag] {
      data->write(42);
      thread_fence(MemoryOrder::release);
      flag->store(1, MemoryOrder::relaxed);
    });
    int t2 = x.spawn([data, flag] {
      if (flag->load(MemoryOrder::relaxed) == 1) {
        thread_fence(MemoryOrder::acquire);
        (void)data->read();
      }
    });
    x.join(t1);
    x.join(t2);
  });
  EXPECT_EQ(stats.builtin_violation_execs, 0u);
  EXPECT_EQ(stats.violations_total, 0u);
}

TEST(Litmus, AcquireWithoutReleaseStillRaces) {
  // Acquire load of a relaxed store gives no synchronization.
  Engine e;
  auto stats = e.explore([&](Exec& x) {
    auto* data = x.make<Var<int>>(0, "data");
    auto* flag = x.make<Atomic<int>>(0, "flag");
    int t1 = x.spawn([data, flag] {
      data->write(42);
      flag->store(1, MemoryOrder::relaxed);
    });
    int t2 = x.spawn([data, flag] {
      if (flag->load(MemoryOrder::acquire) == 1) (void)data->read();
    });
    x.join(t1);
    x.join(t2);
  });
  EXPECT_GT(stats.builtin_violation_execs, 0u);
}

TEST(Litmus, CoherenceSingleLocation) {
  // Per-location coherence: two reads by the same thread may not observe
  // mo-later-then-mo-earlier values.
  Engine e;
  bool bad_seen = false;
  int r1 = -1, r2 = -1;
  struct L : ExecutionListener {
    int* r1;
    int* r2;
    bool* bad;
    bool on_execution_complete(Engine&) override {
      if (*r1 == 2 && *r2 == 1) *bad = true;
      return true;
    }
  } l;
  l.r1 = &r1;
  l.r2 = &r2;
  l.bad = &bad_seen;
  e.set_listener(&l);
  e.explore([&](Exec& x) {
    auto* fx = x.make<Atomic<int>>(0, "x");
    int t1 = x.spawn([fx] {
      fx->store(1, MemoryOrder::relaxed);
      fx->store(2, MemoryOrder::relaxed);
    });
    int t2 = x.spawn([&, fx] {
      r1 = fx->load(MemoryOrder::relaxed);
      r2 = fx->load(MemoryOrder::relaxed);
    });
    x.join(t1);
    x.join(t2);
  });
  EXPECT_FALSE(bad_seen) << "CoRR violation: read 2 then 1";
}

TEST(Litmus, RelaxedAllowsStaleRead) {
  // A relaxed load may ignore a newer store when unordered with it.
  std::set<int> vals;
  struct L : ExecutionListener {
    int* r;
    std::set<int>* vals;
    bool on_execution_complete(Engine&) override {
      vals->insert(*r);
      return true;
    }
  } l;
  int r = -1;
  l.r = &r;
  l.vals = &vals;
  Engine e;
  e.set_listener(&l);
  e.explore([&](Exec& x) {
    auto* fx = x.make<Atomic<int>>(0, "x");
    int t1 = x.spawn([fx] { fx->store(1, MemoryOrder::relaxed); });
    int t2 = x.spawn([&, fx] { r = fx->load(MemoryOrder::relaxed); });
    x.join(t1);
    x.join(t2);
  });
  EXPECT_TRUE(vals.count(0) == 1 && vals.count(1) == 1);
}

TEST(Litmus, JoinCreatesHappensBefore) {
  // After join, the parent must observe the child's final store.
  std::set<int> vals;
  struct L : ExecutionListener {
    int* r;
    std::set<int>* vals;
    bool on_execution_complete(Engine&) override {
      vals->insert(*r);
      return true;
    }
  } l;
  int r = -1;
  l.r = &r;
  l.vals = &vals;
  Engine e;
  e.set_listener(&l);
  e.explore([&](Exec& x) {
    auto* fx = x.make<Atomic<int>>(0, "x");
    int t1 = x.spawn([fx] { fx->store(7, MemoryOrder::relaxed); });
    x.join(t1);
    r = fx->load(MemoryOrder::relaxed);
  });
  EXPECT_EQ(vals, std::set<int>{7});
}

TEST(Litmus, RmwAtomicity) {
  // Two concurrent fetch_adds never lose an update.
  std::set<int> finals;
  struct L : ExecutionListener {
    int* r;
    std::set<int>* vals;
    bool on_execution_complete(Engine&) override {
      vals->insert(*r);
      return true;
    }
  } l;
  int r = -1;
  l.r = &r;
  l.vals = &finals;
  Engine e;
  e.set_listener(&l);
  e.explore([&](Exec& x) {
    auto* fx = x.make<Atomic<int>>(0, "x");
    int t1 = x.spawn([fx] { fx->fetch_add(1, MemoryOrder::relaxed); });
    int t2 = x.spawn([fx] { fx->fetch_add(1, MemoryOrder::relaxed); });
    x.join(t1);
    x.join(t2);
    r = fx->load(MemoryOrder::relaxed);
  });
  EXPECT_EQ(finals, std::set<int>{2});
}

TEST(Litmus, ReleaseSequenceRmwContinuation) {
  // T1: data=1; x.store(1, release). T2: x.fetch_add(1, relaxed).
  // T3: if x.load(acquire) reads the RMW's value, it synchronizes with T1's
  // release store (release sequence through the RMW): reading data is safe.
  Engine e;
  auto stats = e.explore([&](Exec& x) {
    auto* data = x.make<Var<int>>(0, "data");
    auto* fx = x.make<Atomic<int>>(0, "x");
    int t1 = x.spawn([data, fx] {
      data->write(1);
      fx->store(1, MemoryOrder::release);
    });
    int t2 = x.spawn([fx] {
      int v = fx->load(MemoryOrder::relaxed);
      if (v == 1) fx->fetch_add(1, MemoryOrder::relaxed);
    });
    int t3 = x.spawn([data, fx] {
      if (fx->load(MemoryOrder::acquire) == 2) (void)data->read();
    });
    x.join(t1);
    x.join(t2);
    x.join(t3);
  });
  EXPECT_EQ(stats.builtin_violation_execs, 0u)
      << "release sequence through RMW must synchronize";
}

TEST(Litmus, ReleaseSequenceSameThreadRelaxedContinuation) {
  // C++11 (unlike C++20) includes same-thread relaxed stores in a release
  // sequence: acquiring T1's relaxed store of 2 synchronizes with the
  // release store of 1 that heads the sequence — the paper targets C/C++11.
  Engine e;
  auto stats = e.explore([&](Exec& x) {
    auto* data = x.make<Var<int>>(0, "data");
    auto* fx = x.make<Atomic<int>>(0, "x");
    int t1 = x.spawn([data, fx] {
      data->write(1);
      fx->store(1, MemoryOrder::release);
      fx->store(2, MemoryOrder::relaxed);  // same-thread continuation
    });
    int t2 = x.spawn([data, fx] {
      if (fx->load(MemoryOrder::acquire) == 2) (void)data->read();
    });
    x.join(t1);
    x.join(t2);
  });
  EXPECT_EQ(stats.builtin_violation_execs, 0u)
      << "same-thread relaxed store continues the release sequence in C++11";
}

TEST(Litmus, ReleaseSequenceBrokenByForeignStore) {
  // T2's plain relaxed store (not an RMW) breaks T1's release sequence:
  // T3 acquiring the foreign store gets no synchronization with T1.
  Engine e;
  auto stats = e.explore([&](Exec& x) {
    auto* data = x.make<Var<int>>(0, "data");
    auto* fx = x.make<Atomic<int>>(0, "x");
    int t1 = x.spawn([data, fx] {
      data->write(1);
      fx->store(1, MemoryOrder::release);
    });
    int t2 = x.spawn([fx] {
      if (fx->load(MemoryOrder::relaxed) == 1) fx->store(2, MemoryOrder::relaxed);
    });
    int t3 = x.spawn([data, fx] {
      if (fx->load(MemoryOrder::acquire) == 2) (void)data->read();
    });
    x.join(t1);
    x.join(t2);
    x.join(t3);
  });
  EXPECT_GT(stats.builtin_violation_execs, 0u)
      << "foreign relaxed store breaks the release sequence -> race";
}

TEST(Litmus, UninitializedAtomicLoadDetected) {
  Engine e;
  auto stats = e.explore([&](Exec& x) {
    auto* fx = x.make<Atomic<int>>("x");  // no initial value
    (void)fx->load(MemoryOrder::relaxed);
  });
  EXPECT_GT(stats.builtin_violation_execs, 0u);
  ASSERT_FALSE(e.violations().empty());
  EXPECT_EQ(e.violations()[0].kind, ViolationKind::kUninitializedLoad);
}

TEST(Litmus, InitializedAtomicLoadClean) {
  Engine e;
  auto stats = e.explore([&](Exec& x) {
    auto* fx = x.make<Atomic<int>>(5, "x");
    EXPECT_EQ(fx->load(MemoryOrder::relaxed), 5);
  });
  EXPECT_EQ(stats.violations_total, 0u);
}

TEST(Litmus, CasSuccessAndFailurePathsExplored) {
  // CAS(0 -> 1) races with a store of 2: both success (CAS first) and
  // failure (store first) must be explored.
  std::set<std::pair<int, int>> seen;  // (cas_ok, observed)
  struct L : ExecutionListener {
    bool* ok;
    int* obs;
    std::set<std::pair<int, int>>* seen;
    bool on_execution_complete(Engine&) override {
      seen->insert({*ok ? 1 : 0, *obs});
      return true;
    }
  } l;
  bool ok = false;
  int obs = -1;
  l.ok = &ok;
  l.obs = &obs;
  l.seen = &seen;
  Engine e;
  e.set_listener(&l);
  e.explore([&](Exec& x) {
    auto* fx = x.make<Atomic<int>>(0, "x");
    int t1 = x.spawn([&, fx] {
      int expected = 0;
      ok = fx->compare_exchange_strong(expected, 1, MemoryOrder::seq_cst,
                                       MemoryOrder::seq_cst);
      obs = expected;
    });
    int t2 = x.spawn([fx] { fx->store(2, MemoryOrder::seq_cst); });
    x.join(t1);
    x.join(t2);
  });
  EXPECT_EQ(seen.count({1, 0}), 1u) << "successful CAS";
  EXPECT_EQ(seen.count({0, 2}), 1u) << "failed CAS observing 2";
}

TEST(Litmus, DeadlockDetected) {
  Engine e;
  auto stats = e.explore([&](Exec& x) {
    auto* m1 = x.make<Mutex>("m1");
    auto* m2 = x.make<Mutex>("m2");
    int t1 = x.spawn([m1, m2] {
      m1->lock();
      m2->lock();
      m2->unlock();
      m1->unlock();
    });
    int t2 = x.spawn([m1, m2] {
      m2->lock();
      m1->lock();
      m1->unlock();
      m2->unlock();
    });
    x.join(t1);
    x.join(t2);
  });
  EXPECT_GT(stats.builtin_violation_execs, 0u);
  bool saw_deadlock = false;
  for (const auto& v : e.violations()) {
    if (v.kind == ViolationKind::kDeadlock) saw_deadlock = true;
  }
  EXPECT_TRUE(saw_deadlock);
}

TEST(Litmus, MutexProvidesMutualExclusionAndHb) {
  // Plain variable protected by a mutex: race-free, and increments never
  // lost.
  std::set<int> finals;
  struct L : ExecutionListener {
    int* r;
    std::set<int>* vals;
    bool on_execution_complete(Engine&) override {
      vals->insert(*r);
      return true;
    }
  } l;
  int r = -1;
  l.r = &r;
  l.vals = &finals;
  Engine e;
  e.set_listener(&l);
  auto stats = e.explore([&](Exec& x) {
    auto* m = x.make<Mutex>("m");
    auto* v = x.make<Var<int>>(0, "v");
    auto body = [m, v] {
      m->lock();
      v->write(v->read() + 1);
      m->unlock();
    };
    int t1 = x.spawn(body);
    int t2 = x.spawn(body);
    x.join(t1);
    x.join(t2);
    r = v->read();
  });
  EXPECT_EQ(stats.builtin_violation_execs, 0u);
  EXPECT_EQ(finals, std::set<int>{2});
}

TEST(Litmus, IndependentReadsIndependentWritesSeqCst) {
  // IRIW with all seq_cst: the two readers must agree on the order of the
  // writes; (1,0) and (1,0) mirrored is forbidden.
  struct R4 {
    int a = -1, b = -1, c = -1, d = -1;
  };
  std::set<std::tuple<int, int, int, int>> seen;
  struct L : ExecutionListener {
    R4* r;
    std::set<std::tuple<int, int, int, int>>* seen;
    bool on_execution_complete(Engine&) override {
      seen->insert({r->a, r->b, r->c, r->d});
      return true;
    }
  } l;
  R4 r;
  l.r = &r;
  l.seen = &seen;
  Engine e;
  e.set_listener(&l);
  e.explore([&](Exec& x) {
    auto* fx = x.make<Atomic<int>>(0, "x");
    auto* fy = x.make<Atomic<int>>(0, "y");
    int t1 = x.spawn([fx] { fx->store(1, MemoryOrder::seq_cst); });
    int t2 = x.spawn([fy] { fy->store(1, MemoryOrder::seq_cst); });
    int t3 = x.spawn([&, fx, fy] {
      r.a = fx->load(MemoryOrder::seq_cst);
      r.b = fy->load(MemoryOrder::seq_cst);
    });
    int t4 = x.spawn([&, fx, fy] {
      r.c = fy->load(MemoryOrder::seq_cst);
      r.d = fx->load(MemoryOrder::seq_cst);
    });
    x.join(t1);
    x.join(t2);
    x.join(t3);
    x.join(t4);
  });
  EXPECT_EQ(seen.count({1, 0, 1, 0}), 0u)
      << "IRIW all-SC forbids readers disagreeing on the write order";
}

TEST(Litmus, WriteToReadCausality) {
  // WRC: T1 writes x; T2 reads x==1 then release-writes y; T3 acquires
  // y==1 and must then see x==1 (causality chains through T2's release,
  // because T2's acquire of x folds x into its release clock).
  Engine e;
  bool violated = false;
  int r3 = -1;
  struct L : ExecutionListener {
    int* r3;
    bool* bad;
    bool on_execution_complete(Engine&) override {
      if (*r3 == 0) *bad = true;
      return true;
    }
  } l;
  l.r3 = &r3;
  l.bad = &violated;
  e.set_listener(&l);
  e.explore([&](Exec& x) {
    auto* fx = x.make<Atomic<int>>(0, "x");
    auto* fy = x.make<Atomic<int>>(0, "y");
    int t1 = x.spawn([fx] { fx->store(1, MemoryOrder::release); });
    int t2 = x.spawn([fx, fy] {
      if (fx->load(MemoryOrder::acquire) == 1) fy->store(1, MemoryOrder::release);
    });
    int t3 = x.spawn([&, fx, fy] {
      r3 = 2;  // sentinel: only meaningful when y was observed
      if (fy->load(MemoryOrder::acquire) == 1) r3 = fx->load(MemoryOrder::relaxed);
    });
    x.join(t1);
    x.join(t2);
    x.join(t3);
  });
  EXPECT_FALSE(violated) << "WRC: y==1 implies x==1 under rel/acq";
}

TEST(Litmus, Isa2ChainTransfersOwnership) {
  // ISA2: plain data handed through two release/acquire links must be
  // race-free at the far end.
  Engine e;
  auto stats = e.explore([&](Exec& x) {
    auto* data = x.make<Var<int>>(0, "data");
    auto* fy = x.make<Atomic<int>>(0, "y");
    auto* fz = x.make<Atomic<int>>(0, "z");
    int t1 = x.spawn([data, fy] {
      data->write(1);
      fy->store(1, MemoryOrder::release);
    });
    int t2 = x.spawn([fy, fz] {
      if (fy->load(MemoryOrder::acquire) == 1) fz->store(1, MemoryOrder::release);
    });
    int t3 = x.spawn([data, fz] {
      if (fz->load(MemoryOrder::acquire) == 1) (void)data->read();
    });
    x.join(t1);
    x.join(t2);
    x.join(t3);
  });
  EXPECT_EQ(stats.builtin_violation_execs, 0u) << "ISA2 chain is race-free";
}

TEST(Litmus, CoWWSameThreadStoresKeepOrder) {
  // CoWW: a thread's own stores to one location are mo-ordered; after
  // both, no thread may read the first value once it has read the second.
  Engine e;
  bool bad = false;
  int r1 = -1, r2 = -1;
  struct L : ExecutionListener {
    int* r1;
    int* r2;
    bool* bad;
    bool on_execution_complete(Engine&) override {
      if (*r1 == 2 && *r2 == 1) *bad = true;
      return true;
    }
  } l;
  l.r1 = &r1;
  l.r2 = &r2;
  l.bad = &bad;
  e.set_listener(&l);
  e.explore([&](Exec& x) {
    auto* fx = x.make<Atomic<int>>(0, "x");
    fx->store(1, MemoryOrder::relaxed);
    fx->store(2, MemoryOrder::relaxed);
    int t1 = x.spawn([&, fx] {
      r1 = fx->load(MemoryOrder::relaxed);
      r2 = fx->load(MemoryOrder::relaxed);
    });
    x.join(t1);
  });
  EXPECT_FALSE(bad);
}

TEST(Litmus, ExplorationIsExhaustiveAndTerminates) {
  // Sanity: a 2x2 relaxed test has a finite, reproducible execution count.
  Engine e1, e2;
  auto body = [](Exec& x) {
    auto* fx = x.make<Atomic<int>>(0, "x");
    auto* fy = x.make<Atomic<int>>(0, "y");
    int t1 = x.spawn([fx, fy] {
      fx->store(1, MemoryOrder::relaxed);
      (void)fy->load(MemoryOrder::relaxed);
    });
    int t2 = x.spawn([fx, fy] {
      fy->store(1, MemoryOrder::relaxed);
      (void)fx->load(MemoryOrder::relaxed);
    });
    x.join(t1);
    x.join(t2);
  };
  auto s1 = e1.explore(body);
  auto s2 = e2.explore(body);
  EXPECT_GT(s1.executions, 4u);
  EXPECT_EQ(s1.executions, s2.executions) << "exploration is deterministic";
  EXPECT_EQ(s1.feasible, s2.feasible);
}

}  // namespace
}  // namespace cds::mc
