// Checkpoint/resume: render/parse round trip, torn-file rejection, and the
// convergence property — a resumed exploration ends with the exact stats
// and verdict of an uninterrupted one, in-process and across a SIGKILL.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "harness/runner.h"
#include "mc/atomic.h"
#include "mc/checkpoint.h"
#include "mc/engine.h"
#include "mc/trace.h"

namespace cds {
namespace {

mc::Checkpoint full_checkpoint() {
  mc::Checkpoint cp;
  cp.test_name = "ms-queue#1";
  cp.test_index = 1;
  cp.seed = 0x9e3779b97f4a7c15ull;
  cp.phase = mc::Checkpoint::Phase::kSampling;
  cp.rng_state = 88172645463325252ull;
  cp.elapsed_seconds = 1.25;
  cp.stale_read_bound = 5;
  cp.max_steps = 4321;
  cp.strengthen_to_sc = true;
  cp.enable_sleep_sets = false;
  cp.explore = mc::ExploreMode::kRf;
  cp.stats.executions = 1000;
  cp.stats.feasible = 940;
  cp.stats.pruned_bound = 10;
  cp.stats.pruned_livelock = 20;
  cp.stats.pruned_redundant = 30;
  cp.stats.builtin_violation_execs = 2;
  cp.stats.engine_fatal_execs = 1;
  cp.stats.crash_execs = 1;
  cp.stats.violations_total = 3;
  cp.stats.sampled = 128;
  cp.stats.rf_classes = 77;
  cp.stats.rf_infeasible = 88;
  cp.stats.max_trail_depth = 42;
  cp.stats.hit_execution_cap = true;
  cp.stats.hit_time_budget = true;
  cp.stats.hit_memory_budget = false;
  cp.stats.watchdog_fired = true;
  cp.stats.exhausted = false;
  cp.stats.stopped_early = true;
  cp.last_progress_exec = 998;
  cp.violations.push_back(mc::Violation{
      mc::ViolationKind::kDataRace, "read of 'head' races with write by T2",
      17, {}, 0});
  cp.violations.push_back(mc::Violation{
      mc::ViolationKind::kCrash, "SIGSEGV at address 0x10", 23, {}, 1});
  cp.extra.emplace_back("spec.cur.histories_checked", 4200);
  cp.extra.emplace_back("prior.executions", 312);
  cp.trail = {
      mc::Choice{mc::ChoiceKind::kSchedule, 1, 2},
      mc::Choice{mc::ChoiceKind::kReadsFrom, 0, 3},
  };
  return cp;
}

void expect_equal(const mc::Checkpoint& a, const mc::Checkpoint& b) {
  EXPECT_EQ(a.test_name, b.test_name);
  EXPECT_EQ(a.test_index, b.test_index);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.phase, b.phase);
  EXPECT_EQ(a.rng_state, b.rng_state);
  EXPECT_DOUBLE_EQ(a.elapsed_seconds, b.elapsed_seconds);
  EXPECT_EQ(a.stale_read_bound, b.stale_read_bound);
  EXPECT_EQ(a.max_steps, b.max_steps);
  EXPECT_EQ(a.strengthen_to_sc, b.strengthen_to_sc);
  EXPECT_EQ(a.enable_sleep_sets, b.enable_sleep_sets);
  EXPECT_EQ(a.explore, b.explore);
  EXPECT_EQ(a.stats.executions, b.stats.executions);
  EXPECT_EQ(a.stats.feasible, b.stats.feasible);
  EXPECT_EQ(a.stats.pruned_bound, b.stats.pruned_bound);
  EXPECT_EQ(a.stats.pruned_livelock, b.stats.pruned_livelock);
  EXPECT_EQ(a.stats.pruned_redundant, b.stats.pruned_redundant);
  EXPECT_EQ(a.stats.builtin_violation_execs, b.stats.builtin_violation_execs);
  EXPECT_EQ(a.stats.engine_fatal_execs, b.stats.engine_fatal_execs);
  EXPECT_EQ(a.stats.crash_execs, b.stats.crash_execs);
  EXPECT_EQ(a.stats.violations_total, b.stats.violations_total);
  EXPECT_EQ(a.stats.sampled, b.stats.sampled);
  EXPECT_EQ(a.stats.rf_classes, b.stats.rf_classes);
  EXPECT_EQ(a.stats.rf_infeasible, b.stats.rf_infeasible);
  EXPECT_EQ(a.stats.max_trail_depth, b.stats.max_trail_depth);
  EXPECT_EQ(a.stats.hit_execution_cap, b.stats.hit_execution_cap);
  EXPECT_EQ(a.stats.hit_time_budget, b.stats.hit_time_budget);
  EXPECT_EQ(a.stats.hit_memory_budget, b.stats.hit_memory_budget);
  EXPECT_EQ(a.stats.watchdog_fired, b.stats.watchdog_fired);
  EXPECT_EQ(a.stats.exhausted, b.stats.exhausted);
  EXPECT_EQ(a.stats.stopped_early, b.stats.stopped_early);
  EXPECT_EQ(a.last_progress_exec, b.last_progress_exec);
  ASSERT_EQ(a.violations.size(), b.violations.size());
  for (std::size_t i = 0; i < a.violations.size(); ++i) {
    EXPECT_EQ(a.violations[i].kind, b.violations[i].kind) << i;
    EXPECT_EQ(a.violations[i].detail, b.violations[i].detail) << i;
    EXPECT_EQ(a.violations[i].execution_index, b.violations[i].execution_index);
    EXPECT_EQ(a.violations[i].test_index, b.violations[i].test_index) << i;
  }
  ASSERT_EQ(a.extra.size(), b.extra.size());
  for (std::size_t i = 0; i < a.extra.size(); ++i) {
    EXPECT_EQ(a.extra[i], b.extra[i]) << i;
  }
  ASSERT_EQ(a.trail.size(), b.trail.size());
  for (std::size_t i = 0; i < a.trail.size(); ++i) {
    EXPECT_EQ(a.trail[i].kind, b.trail[i].kind) << i;
    EXPECT_EQ(a.trail[i].chosen, b.trail[i].chosen) << i;
    EXPECT_EQ(a.trail[i].num, b.trail[i].num) << i;
  }
}

TEST(Checkpoint, RoundTripPreservesEveryField) {
  mc::Checkpoint cp = full_checkpoint();
  mc::Checkpoint back;
  std::string err;
  ASSERT_TRUE(mc::parse_checkpoint(mc::render_checkpoint(cp), &back, &err))
      << err;
  expect_equal(cp, back);
}

TEST(Checkpoint, RoundTripAllPhases) {
  for (auto phase :
       {mc::Checkpoint::Phase::kStart, mc::Checkpoint::Phase::kDfs,
        mc::Checkpoint::Phase::kSampling}) {
    mc::Checkpoint cp = full_checkpoint();
    cp.phase = phase;
    if (phase != mc::Checkpoint::Phase::kDfs) cp.trail.clear();
    mc::Checkpoint back;
    std::string err;
    ASSERT_TRUE(mc::parse_checkpoint(mc::render_checkpoint(cp), &back, &err))
        << mc::to_string(phase) << ": " << err;
    expect_equal(cp, back);
  }
}

TEST(Checkpoint, EveryTruncationIsRejected) {
  // A SIGKILL mid-write can leave any prefix behind (the atomic
  // temp+rename makes that a .tmp, but belt and braces): every
  // line-boundary prefix must be rejected cleanly, never crash or parse.
  std::string text = mc::render_checkpoint(full_checkpoint());
  for (std::size_t pos = text.find('\n'); pos != std::string::npos;
       pos = text.find('\n', pos + 1)) {
    std::string prefix = text.substr(0, pos + 1);
    if (prefix.size() == text.size()) break;
    mc::Checkpoint back;
    std::string err;
    EXPECT_FALSE(mc::parse_checkpoint(prefix, &back, &err))
        << "prefix of " << prefix.size() << " bytes was accepted";
    EXPECT_FALSE(err.empty());
  }
  std::string no_end = text.substr(0, text.rfind("end"));
  mc::Checkpoint back;
  std::string err;
  EXPECT_FALSE(mc::parse_checkpoint(no_end, &back, &err));
  EXPECT_NE(err.find("missing 'end' terminator"), std::string::npos) << err;
}

TEST(Checkpoint, CorruptedFieldsAreRejectedWithActionableErrors) {
  const std::string text = mc::render_checkpoint(full_checkpoint());
  auto reject = [&](const std::string& from, const std::string& to,
                    const char* expect_msg) {
    std::string bad = text;
    std::size_t at = bad.find(from);
    ASSERT_NE(at, std::string::npos) << from;
    bad.replace(at, from.size(), to);
    mc::Checkpoint back;
    std::string err;
    EXPECT_FALSE(mc::parse_checkpoint(bad, &back, &err)) << from;
    EXPECT_NE(err.find(expect_msg), std::string::npos)
        << "'" << from << "' -> '" << to << "': " << err;
  };
  reject("cdsspec-checkpoint v3", "cdsspec-checkpoint v7",
         "unsupported checkpoint version v7");
  // A stale pre-rf checkpoint would resume with the rf class counters
  // silently zeroed; the version gate turns that into a fresh start.
  reject("cdsspec-checkpoint v3", "cdsspec-checkpoint v2",
         "unsupported checkpoint version v2");
  reject("phase sampling", "phase lunch", "unknown phase");
  reject("executions=", "exekutions=", "unknown key");
  reject("feasible=940", "feasible=nine", "malformed value");
  reject("watchdog=1", "watchdog", "malformed entry");
  reject("v data-race", "v data-rice", "malformed violation line");
  reject("x prior.executions 312", "x prior.executions", "malformed extra");
  reject("S 1/2", "S 9/2", "out of range");
}

TEST(Checkpoint, MissingStatsKeyIsRejected) {
  std::string text = mc::render_checkpoint(full_checkpoint());
  std::size_t at = text.find(" sampled=128");
  ASSERT_NE(at, std::string::npos);
  text.erase(at, 12);
  mc::Checkpoint back;
  std::string err;
  EXPECT_FALSE(mc::parse_checkpoint(text, &back, &err));
  EXPECT_NE(err.find("missing key 'sampled'"), std::string::npos) << err;
}

TEST(Checkpoint, ExtraHelpersSetAndGet) {
  mc::Checkpoint cp;
  EXPECT_EQ(cp.extra_value("absent", 7), 7u);
  cp.set_extra("spec.histories", 10);
  cp.set_extra("spec.histories", 11);  // overwrite, not append
  EXPECT_EQ(cp.extra.size(), 1u);
  EXPECT_EQ(cp.extra_value("spec.histories"), 11u);
}

TEST(Checkpoint, FingerprintMismatchNamesTheFlag) {
  mc::Config cfg;
  cfg.test_name = "ms-queue#1";
  cfg.seed = 42;
  mc::Checkpoint cp;
  cp.fingerprint_from(cfg);
  EXPECT_EQ(cp.fingerprint_mismatch(cfg), "");
  cfg.seed = 43;
  EXPECT_NE(cp.fingerprint_mismatch(cfg).find("--seed"), std::string::npos);
  cfg.seed = 42;
  cfg.enable_sleep_sets = !cfg.enable_sleep_sets;
  EXPECT_NE(cp.fingerprint_mismatch(cfg).find("sleep_sets"),
            std::string::npos);
  cfg.enable_sleep_sets = !cfg.enable_sleep_sets;
  cfg.explore = mc::ExploreMode::kRf;
  std::string msg = cp.fingerprint_mismatch(cfg);
  EXPECT_NE(msg.find("--explore"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'schedule'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'rf'"), std::string::npos) << msg;
}

TEST(Checkpoint, FileIoAtomicWriteAndTornFileRejection) {
  const std::string path = testing::TempDir() + "/checkpoint_test.ckpt";
  mc::Checkpoint cp = full_checkpoint();
  std::string err;
  ASSERT_TRUE(mc::write_checkpoint_file(path, cp, &err)) << err;
  // The atomic write leaves no temp file behind.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  mc::Checkpoint back;
  ASSERT_TRUE(mc::load_checkpoint_file(path, &back, &err)) << err;
  expect_equal(cp, back);

  // A torn file (e.g. copied off a dying disk) degrades to a parse error
  // that names the file, so the caller can start fresh instead of crash.
  std::string text = mc::render_checkpoint(cp);
  {
    std::ofstream f(path, std::ios::trunc);
    f << text.substr(0, text.size() / 2);
  }
  EXPECT_FALSE(mc::load_checkpoint_file(path, &back, &err));
  EXPECT_NE(err.find(path), std::string::npos) << err;
  std::remove(path.c_str());
  EXPECT_FALSE(mc::load_checkpoint_file(path, &back, &err));
  EXPECT_NE(err.find("cannot open"), std::string::npos) << err;
}

// ---------------------------------------------------------------------------
// Resume convergence
// ---------------------------------------------------------------------------

// Three-thread relaxed message-passing cycle: enough schedule and
// reads-from branching for a few hundred executions, all feasible.
void cyclic_body(mc::Exec& x) {
  auto* a = x.make<mc::Atomic<int>>(0, "a");
  auto* b = x.make<mc::Atomic<int>>(0, "b");
  auto* c = x.make<mc::Atomic<int>>(0, "c");
  mc::Atomic<int>* v[3] = {a, b, c};
  int tids[3];
  for (int i = 0; i < 3; ++i) {
    tids[i] = x.spawn([v, i] {
      v[i]->store(1, mc::MemoryOrder::relaxed);
      (void)v[(i + 1) % 3]->load(mc::MemoryOrder::relaxed);
      v[i]->store(2, mc::MemoryOrder::relaxed);
      (void)v[(i + 2) % 3]->load(mc::MemoryOrder::relaxed);
    });
  }
  for (int tid : tids) x.join(tid);
}

void expect_stats_converged(const mc::ExplorationStats& a,
                            const mc::ExplorationStats& b) {
  EXPECT_EQ(a.executions, b.executions);
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.pruned_bound, b.pruned_bound);
  EXPECT_EQ(a.pruned_livelock, b.pruned_livelock);
  EXPECT_EQ(a.pruned_redundant, b.pruned_redundant);
  EXPECT_EQ(a.sampled, b.sampled);
  EXPECT_EQ(a.max_trail_depth, b.max_trail_depth);
  EXPECT_EQ(a.violations_total, b.violations_total);
  EXPECT_EQ(a.rf_classes, b.rf_classes);
  EXPECT_EQ(a.rf_infeasible, b.rf_infeasible);
  EXPECT_EQ(a.exhausted, b.exhausted);
  EXPECT_EQ(a.verdict, b.verdict);
}

TEST(Checkpoint, DfsResumeConvergesToUninterruptedStats) {
  const std::string path = testing::TempDir() + "/checkpoint_dfs_resume.ckpt";
  std::remove(path.c_str());

  mc::Config cfg;
  cfg.test_name = "cp-test#0";

  // Baseline: one uninterrupted exhaustive run.
  mc::ExplorationStats base = mc::Engine(cfg).explore(cyclic_body);
  ASSERT_TRUE(base.exhausted);
  ASSERT_EQ(base.verdict, mc::Verdict::kVerifiedExhaustive);
  ASSERT_GE(base.executions, 60u)
      << "body too small to interrupt mid-exploration";

  // Interrupted: stop at the cap, leaving the cadence checkpoint behind
  // (written before the cap check, so it is resumable).
  mc::Config capped = cfg;
  capped.checkpoint_path = path;
  capped.checkpoint_every_execs = 10;
  capped.max_executions = base.executions / 2;
  mc::ExplorationStats partial = mc::Engine(capped).explore(cyclic_body);
  ASSERT_TRUE(partial.hit_execution_cap);
  ASSERT_LT(partial.executions, base.executions);

  mc::Checkpoint cp;
  std::string err;
  ASSERT_TRUE(mc::load_checkpoint_file(path, &cp, &err)) << err;
  EXPECT_EQ(cp.phase, mc::Checkpoint::Phase::kDfs);
  EXPECT_EQ(cp.fingerprint_mismatch(cfg), "");
  EXPECT_FALSE(cp.stats.hit_execution_cap)
      << "cadence checkpoints precede the cap decision";

  // Resume without the cap: the run must converge to the baseline exactly.
  mc::Engine resumed(cfg);
  resumed.set_resume(cp);
  mc::ExplorationStats final_stats = resumed.explore(cyclic_body);
  expect_stats_converged(final_stats, base);
  std::remove(path.c_str());
}

TEST(Checkpoint, RfDfsResumeConvergesToUninterruptedStats) {
  const std::string path = testing::TempDir() + "/checkpoint_rf_resume.ckpt";
  std::remove(path.c_str());

  mc::Config cfg;
  cfg.test_name = "cp-rf#0";
  cfg.explore = mc::ExploreMode::kRf;

  mc::ExplorationStats base = mc::Engine(cfg).explore(cyclic_body);
  ASSERT_TRUE(base.exhausted);
  ASSERT_GT(base.rf_classes, 0u) << "rf mode must count class representatives";

  mc::Config capped = cfg;
  capped.checkpoint_path = path;
  capped.checkpoint_every_execs = 5;
  capped.max_executions = base.executions / 2;
  mc::ExplorationStats partial = mc::Engine(capped).explore(cyclic_body);
  ASSERT_TRUE(partial.hit_execution_cap);

  mc::Checkpoint cp;
  std::string err;
  ASSERT_TRUE(mc::load_checkpoint_file(path, &cp, &err)) << err;
  EXPECT_EQ(cp.explore, mc::ExploreMode::kRf);
  EXPECT_EQ(cp.fingerprint_mismatch(cfg), "");
  // A schedule-mode run must refuse the rf checkpoint outright.
  mc::Config sched = cfg;
  sched.explore = mc::ExploreMode::kSchedule;
  EXPECT_NE(cp.fingerprint_mismatch(sched).find("--explore"),
            std::string::npos);

  // Resume without the cap: bit-identical stats, including the class
  // counters (the interrupted prefix's classes carry over exactly).
  mc::Engine resumed(cfg);
  resumed.set_resume(cp);
  expect_stats_converged(resumed.explore(cyclic_body), base);
  std::remove(path.c_str());
}

// Sleep-set persistence audit (regression): sleep sets are per-execution
// state rebuilt deterministically while the engine replays the trail
// prefix, so nothing needs checkpointing — but a bug there would surface
// as resumed pruned_redundant drifting from the baseline. Interrupt the
// DFS at EVERY execution index in turn and resume; each resumed run must
// reproduce the baseline counters exactly, on a body where sleep sets
// actually prune (pruned_redundant > 0). "Sweep" routes it to the slow
// label.
TEST(CheckpointSweep, ResumeAtEveryDepthRebuildsSleepSetState) {
  const std::string path = testing::TempDir() + "/checkpoint_sleep_sweep.ckpt";
  mc::Config cfg;
  cfg.test_name = "cp-sleep#0";

  mc::ExplorationStats base = mc::Engine(cfg).explore(cyclic_body);
  ASSERT_TRUE(base.exhausted);
  ASSERT_GT(base.pruned_redundant, 0u)
      << "body must exercise sleep-set pruning for the audit to have teeth";

  // Sample a bounded set of interruption depths: each probe costs a capped
  // run plus a full resume, so probing every depth would be quadratic in
  // the body's execution count.
  const std::uint64_t stride =
      std::max<std::uint64_t>(1, base.executions / 12);
  for (std::uint64_t k = 1; k < base.executions; k += stride) {
    std::remove(path.c_str());
    mc::Config capped = cfg;
    capped.checkpoint_path = path;
    capped.checkpoint_every_execs = 1;
    capped.max_executions = k;
    mc::ExplorationStats partial = mc::Engine(capped).explore(cyclic_body);
    ASSERT_TRUE(partial.hit_execution_cap) << "k=" << k;

    mc::Checkpoint cp;
    std::string err;
    ASSERT_TRUE(mc::load_checkpoint_file(path, &cp, &err))
        << "k=" << k << ": " << err;
    mc::Engine resumed(cfg);
    resumed.set_resume(cp);
    mc::ExplorationStats final_stats = resumed.explore(cyclic_body);
    EXPECT_EQ(final_stats.pruned_redundant, base.pruned_redundant)
        << "k=" << k << ": sleep-set pruning diverged after resume";
    expect_stats_converged(final_stats, base);
  }
  std::remove(path.c_str());
}

// Copies the checkpoint file's text partway through an exploration, so the
// test can resume from a genuinely mid-run snapshot.
class CheckpointSnatcher : public mc::ExecutionListener {
 public:
  CheckpointSnatcher(std::string path, int at) : path_(std::move(path)), at_(at) {}
  bool on_execution_complete(mc::Engine&) override {
    if (++completions_ == at_) {
      std::string err;
      if (!mc::read_text_file(path_, &snatched_, &err)) snatched_.clear();
    }
    return true;
  }
  [[nodiscard]] const std::string& snatched() const { return snatched_; }

 private:
  std::string path_;
  int at_;
  int completions_ = 0;
  std::string snatched_;
};

TEST(Checkpoint, SamplingResumeRestoresRngStream) {
  const std::string path = testing::TempDir() + "/checkpoint_sampling.ckpt";
  std::remove(path.c_str());

  mc::Config cfg;
  cfg.test_name = "cp-sampling#0";
  cfg.sampling_only = true;
  cfg.sample_executions = 120;

  // Baseline: a full uninterrupted sampling run.
  mc::ExplorationStats base = mc::Engine(cfg).explore(cyclic_body);
  ASSERT_EQ(base.sampled, 120u);

  // Instrumented run: snatch the cadence checkpoint mid-walk.
  mc::Config ckpt_cfg = cfg;
  ckpt_cfg.checkpoint_path = path;
  ckpt_cfg.checkpoint_every_execs = 40;
  CheckpointSnatcher snatcher(path, 60);
  mc::Engine instrumented(ckpt_cfg);
  instrumented.set_listener(&snatcher);
  mc::ExplorationStats full = instrumented.explore(cyclic_body);
  expect_stats_converged(full, base);
  ASSERT_FALSE(snatcher.snatched().empty()) << "no checkpoint seen mid-run";

  mc::Checkpoint cp;
  std::string err;
  ASSERT_TRUE(mc::parse_checkpoint(snatcher.snatched(), &cp, &err)) << err;
  EXPECT_EQ(cp.phase, mc::Checkpoint::Phase::kSampling);
  ASSERT_GT(cp.stats.sampled, 0u);
  ASSERT_LT(cp.stats.sampled, 120u);

  // Resuming mid-stream must draw the same remaining random walks: the
  // persisted RNG state, not the seed, decides what comes next.
  mc::Engine resumed(cfg);
  resumed.set_resume(cp);
  mc::ExplorationStats final_stats = resumed.explore(cyclic_body);
  expect_stats_converged(final_stats, base);
  std::remove(path.c_str());
}

#if defined(__unix__) || defined(__APPLE__)

// The end-to-end containment story: a benchmark run SIGKILLed mid-flight
// resumes from its checkpoint and converges to the stats and verdict of an
// uninterrupted run. "Slow" in the suite name routes it to the slow label.
// A run whose budget runs out must leave its checkpoint behind — that is
// the resume use case that needs no kill at all: re-run with a bigger
// budget and --resume, and the exploration continues where it stopped.
// Only a conclusive verdict retires the file.
TEST(Checkpoint, InconclusiveRunKeepsItsCheckpointForResume) {
  const std::string path = testing::TempDir() + "/checkpoint_inconclusive.ckpt";
  std::remove(path.c_str());

  harness::Benchmark bench;
  bench.name = "cp-inconclusive";
  bench.display = "Inconclusive keeps checkpoint (synthetic)";
  bench.spec = nullptr;
  bench.tests.push_back(cyclic_body);

  harness::RunOptions opts;
  harness::RunResult base = harness::run_benchmark(bench, opts);
  ASSERT_EQ(base.verdict, mc::Verdict::kVerifiedExhaustive);
  ASSERT_GE(base.mc.executions, 60u);

  // Cap the run well short of exhaustion: inconclusive, checkpoint kept.
  harness::RunOptions capped = opts;
  capped.engine.max_executions = base.mc.executions / 2;
  capped.engine.checkpoint_every_execs = 10;
  capped.engine.checkpoint_path = path;
  harness::RunResult cut = harness::run_benchmark(bench, capped);
  EXPECT_EQ(cut.verdict, mc::Verdict::kInconclusive);
  ASSERT_TRUE(std::ifstream(path).good())
      << "budget-limited run must keep its checkpoint for --resume";

  // Resume with the cap lifted: converges and retires the checkpoint.
  mc::Checkpoint cp;
  std::string err;
  ASSERT_TRUE(mc::load_checkpoint_file(path, &cp, &err)) << err;
  harness::RunOptions resume_opts = opts;
  resume_opts.engine.checkpoint_every_execs = 10;
  resume_opts.engine.checkpoint_path = path;
  ASSERT_EQ(cp.fingerprint_mismatch(resume_opts.engine), "");
  resume_opts.resume = &cp;
  harness::RunResult res = harness::run_benchmark(bench, resume_opts);
  expect_stats_converged(res.mc, base.mc);
  EXPECT_EQ(res.verdict, base.verdict);
  EXPECT_FALSE(std::ifstream(path).good())
      << "conclusive verdict retires the checkpoint";
  std::remove(path.c_str());
}

TEST(CheckpointSlow, KillAndResumeConvergesToBaseline) {
  const std::string path = testing::TempDir() + "/checkpoint_kill_resume.ckpt";
  std::remove(path.c_str());

  harness::Benchmark bench;
  bench.name = "cp-kill-resume";
  bench.display = "Kill+resume (synthetic)";
  bench.spec = nullptr;
  bench.tests.push_back([](mc::Exec& x) {
    // Tiny first test: the kill should land in the second one, so resume
    // also exercises the skip-already-finished-tests path.
    auto* a = x.make<mc::Atomic<int>>(0, "a");
    int t = x.spawn([a] { a->store(1, mc::MemoryOrder::relaxed); });
    (void)a->load(mc::MemoryOrder::relaxed);
    x.join(t);
  });
  bench.tests.push_back(cyclic_body);
  // Repeated rounds multiply the state space so the second test reliably
  // outlives the kill delay; the cap bounds the total runtime either way.
  bench.tests.push_back([](mc::Exec& x) {
    auto* a = x.make<mc::Atomic<int>>(0, "a");
    auto* b = x.make<mc::Atomic<int>>(0, "b");
    int t1 = x.spawn([&] {
      for (int i = 1; i <= 3; ++i) {
        a->store(i, mc::MemoryOrder::relaxed);
        (void)b->load(mc::MemoryOrder::relaxed);
      }
    });
    int t2 = x.spawn([&] {
      for (int i = 1; i <= 3; ++i) {
        b->store(i, mc::MemoryOrder::relaxed);
        (void)a->load(mc::MemoryOrder::relaxed);
      }
    });
    x.join(t1);
    x.join(t2);
  });

  harness::RunOptions opts;
  opts.engine.max_executions = 60000;
  opts.engine.checkpoint_every_execs = 200;

  // Baseline: uninterrupted, no checkpointing.
  harness::RunResult base = harness::run_benchmark(bench, opts);

  harness::RunOptions ckpt_opts = opts;
  ckpt_opts.engine.checkpoint_path = path;
  pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    (void)harness::run_benchmark(bench, ckpt_opts);
    _exit(0);
  }
  // Kill as soon as a checkpoint exists (plus a beat, to land mid-test).
  for (int i = 0; i < 20000; ++i) {
    if (std::ifstream(path).good()) break;
    usleep(1000);
  }
  usleep(200 * 1000);
  kill(child, SIGKILL);
  int wstatus = 0;
  ASSERT_EQ(waitpid(child, &wstatus, 0), child);

  harness::RunResult res;
  mc::Checkpoint cp;
  std::string err;
  if (mc::load_checkpoint_file(path, &cp, &err)) {
    EXPECT_EQ(cp.fingerprint_mismatch(ckpt_opts.engine), "");
    ckpt_opts.resume = &cp;
    res = harness::run_benchmark(bench, ckpt_opts);
    EXPECT_FALSE(std::ifstream(path).good())
        << "checkpoint deleted once the benchmark completes";
  } else {
    // The child finished (and deleted the file) before the kill landed;
    // degrade to a fresh run — convergence must hold trivially.
    res = harness::run_benchmark(bench, opts);
  }

  expect_stats_converged(res.mc, base.mc);
  EXPECT_EQ(res.verdict, base.verdict);
  std::remove(path.c_str());
}

#endif  // fork-capable platforms

}  // namespace
}  // namespace cds
