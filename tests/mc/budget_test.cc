// Budget, watchdog, degradation, and verdict tests: the fail-safe layer
// that turns "the DFS runs forever / OOMs / aborts" into an inconclusive
// verdict with coverage numbers (or a sampled counterexample).
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "mc/atomic.h"
#include "mc/engine.h"
#include "mc/sync.h"

namespace cds::mc {
namespace {

// A single execution that runs much longer than the wall budget: the
// deadline must trip *inside* the execution (via the periodic step check),
// not only between executions.
TEST(Budget, DeadlineTripsMidExecution) {
  Config cfg;
  cfg.time_budget_seconds = 0.05;
  cfg.max_steps = 100'000'000;
  cfg.collect_trace = false;
  cfg.sample_executions = 8;
  Engine e(cfg);
  auto stats = e.explore([](Exec& x) {
    auto* a = x.make<Atomic<int>>(0, "a");
    // Loads, not stores: loads are visible steps but do not grow the
    // location history, so the execution is long yet memory-flat.
    int sink = 0;
    for (int i = 0; i < 50'000'000; ++i) sink += a->load(MemoryOrder::relaxed);
    (void)sink;
  });
  EXPECT_TRUE(stats.hit_time_budget);
  EXPECT_GE(stats.pruned_bound, 1u);
  EXPECT_EQ(stats.feasible, 0u);
  EXPECT_EQ(stats.verdict, Verdict::kInconclusive);
  EXPECT_FALSE(stats.exhausted);
  // The budget is a hard ceiling, not a suggestion: the mid-execution
  // check keeps a single monster execution from overshooting by much.
  EXPECT_LT(stats.seconds, 2.0);
}

// Starve the DFS phase entirely (fraction 0) so only the first canonical
// execution runs exhaustively; that execution satisfies the assertion, but
// random-walk sampling flips the store order about half the time and must
// find the seeded violation.
TEST(Budget, SamplingFindsSeededViolationAfterDegradation) {
  Config cfg;
  cfg.time_budget_seconds = 30.0;  // generous; the DFS share is zero
  cfg.dfs_budget_fraction = 0.0;
  cfg.sample_executions = 512;
  cfg.seed = 42;
  Engine e(cfg);
  TestFn body = [](Exec& x) {
    auto* a = x.make<Atomic<int>>(0, "a");
    int t1 = x.spawn([a] { a->store(1, MemoryOrder::relaxed); });
    int t2 = x.spawn([a] { a->store(2, MemoryOrder::relaxed); });
    x.join(t1);
    x.join(t2);
    // Schedule-dependent: fails whenever t1's store lands last. The DFS's
    // first (canonical, thread-order) execution passes.
    model_assert(a->load(MemoryOrder::relaxed) == 2, "t2 must win");
  };
  auto stats = e.explore(body);
  EXPECT_TRUE(stats.hit_time_budget);  // the zero-width DFS deadline
  EXPECT_GT(stats.sampled, 0u);
  EXPECT_GT(stats.violations_total, 0u);
  EXPECT_EQ(stats.verdict, Verdict::kFalsified);
  EXPECT_EQ(stats.seed, 42u);
  EXPECT_GT(stats.max_trail_depth, 0u);  // coverage depth was tracked

  // Same seed, same config => bit-identical degraded run.
  Engine e2(cfg);
  auto replay = e2.explore(body);
  EXPECT_EQ(replay.sampled, stats.sampled);
  EXPECT_EQ(replay.violations_total, stats.violations_total);
}

// Allocation accounting: an execution that grows the arena past the cap is
// cut short, the exploration degrades, and the verdict is inconclusive.
TEST(Budget, MemoryBudgetDegradesToSampling) {
  Config cfg;
  cfg.memory_budget_bytes = 1u << 20;  // 1 MB
  cfg.sample_executions = 4;
  cfg.collect_trace = false;
  Engine e(cfg);
  auto stats = e.explore([](Exec& x) {
    auto* a = x.make<Atomic<int>>(0, "a");
    for (int i = 0; i < 200; ++i) {
      x.make<std::array<char, 64 * 1024>>();  // 64 KB per visible op
      a->store(i, MemoryOrder::relaxed);
    }
  });
  EXPECT_TRUE(stats.hit_memory_budget);
  EXPECT_EQ(stats.sampled, 4u);
  EXPECT_GE(stats.pruned_bound, 1u);
  EXPECT_EQ(stats.verdict, Verdict::kInconclusive);
}

// Regression: memory_usage_estimate() must count the heap storage behind
// each message's `sync` timestamps and the live release-sequence heads,
// not just the inline Message bytes. This body makes that storage
// dominate: thousands of padding locations inflate the writer's coherence
// view, so every release store snapshots a ~4096-entry view into the new
// message's sync (and again into its release-sequence head) -- roughly
// 32 KB of heap per store against ~90 inline bytes. Before the fix the
// estimate saw only the inline bytes (well under this budget) and the cap
// never tripped.
TEST(Budget, MemoryBudgetSeesReleaseSequenceSyncStorage) {
  Config cfg;
  cfg.memory_budget_bytes = 1u << 19;  // 512 KB
  cfg.sample_executions = 0;
  cfg.collect_trace = false;
  cfg.max_executions = 1;
  Engine e(cfg);
  auto stats = e.explore([](Exec& x) {
    Atomic<int>* last = nullptr;
    for (int i = 0; i < 4096; ++i) last = x.make<Atomic<int>>(0, "pad");
    for (int i = 0; i < 256; ++i) last->store(i, MemoryOrder::release);
  });
  EXPECT_TRUE(stats.hit_memory_budget);
  EXPECT_GE(stats.pruned_bound, 1u);
  EXPECT_EQ(stats.verdict, Verdict::kInconclusive);
}

// Two spinners that can never be released: every execution is pruned as a
// livelock, so the DFS makes no feasible progress and the watchdog must
// fire (and degradation must still terminate).
TEST(Budget, WatchdogFiresOnNoProgressDfs) {
  Config cfg;
  cfg.watchdog_no_progress_execs = 2;
  cfg.sample_executions = 8;
  Engine e(cfg);
  auto stats = e.explore([](Exec& x) {
    auto* a = x.make<Atomic<int>>(0, "a");
    auto* b = x.make<Atomic<int>>(0, "b");
    int t1 = x.spawn([&x, a, b] {
      b->store(1, MemoryOrder::relaxed);
      while (a->load(MemoryOrder::relaxed) == 0) x.yield();
    });
    int t2 = x.spawn([&x, a, b] {
      b->store(2, MemoryOrder::relaxed);
      while (a->load(MemoryOrder::relaxed) == 0) x.yield();
    });
    x.join(t1);
    x.join(t2);
  });
  EXPECT_TRUE(stats.watchdog_fired);
  EXPECT_GE(stats.pruned_livelock, 2u);
  EXPECT_EQ(stats.feasible, 0u);
  EXPECT_EQ(stats.verdict, Verdict::kInconclusive);
}

// Overflowing the modeled-thread limit used to abort the whole process;
// now it fails only the offending execution as an engine-fatal diagnostic,
// which taints the verdict but never counts as a property violation.
TEST(Budget, ThreadLimitOverflowIsRecoverable) {
  Config cfg;
  cfg.max_threads = 3;  // root + 2
  Engine e(cfg);
  auto stats = e.explore([](Exec& x) {
    auto* a = x.make<Atomic<int>>(0, "a");
    std::vector<int> tids;
    for (int i = 0; i < 6; ++i)
      tids.push_back(x.spawn([a] { a->store(1, MemoryOrder::relaxed); }));
    for (int t : tids) x.join(t);
  });
  EXPECT_GT(stats.engine_fatal_execs, 0u);
  EXPECT_EQ(stats.violations_total, 0u);  // diagnostic, not a violation
  EXPECT_EQ(stats.verdict, Verdict::kInconclusive);
  // And the process is still alive to run the next exploration.
  Engine e2;
  auto ok = e2.explore([](Exec& x) {
    auto* a = x.make<Atomic<int>>(0, "a");
    a->store(1, MemoryOrder::relaxed);
  });
  EXPECT_EQ(ok.verdict, Verdict::kVerifiedExhaustive);
}

TEST(Budget, MutexUnlockByNonOwnerIsRecoverable) {
  Engine e;
  auto stats = e.explore([](Exec& x) {
    auto* m = x.make<Mutex>("m");
    int t = x.spawn([m] { m->lock(); });  // t ends still holding the lock
    x.join(t);
    m->unlock();  // root never locked it
  });
  EXPECT_GT(stats.engine_fatal_execs, 0u);
  EXPECT_EQ(stats.violations_total, 0u);
  EXPECT_EQ(stats.verdict, Verdict::kInconclusive);
}

TEST(Budget, VerdictReflectsExhaustionAndViolations) {
  Engine e;
  auto ok = e.explore([](Exec& x) {
    auto* a = x.make<Atomic<int>>(0, "a");
    int t = x.spawn([a] { a->store(1, MemoryOrder::release); });
    x.join(t);
    model_assert(a->load(MemoryOrder::acquire) == 1, "joined store visible");
  });
  EXPECT_TRUE(ok.exhausted);
  EXPECT_EQ(ok.sampled, 0u);
  EXPECT_EQ(ok.verdict, Verdict::kVerifiedExhaustive);

  Engine e2;
  auto bad = e2.explore([](Exec& x) {
    auto* a = x.make<Atomic<int>>(0, "a");
    model_assert(a->load(MemoryOrder::relaxed) == 1, "always false");
  });
  EXPECT_GT(bad.violations_total, 0u);
  EXPECT_EQ(bad.verdict, Verdict::kFalsified);
}

// An execution cap (without budgets) is "stopped early", not "proved":
// the verdict must stay inconclusive even though nothing failed.
TEST(Budget, ExecutionCapYieldsInconclusive) {
  Config cfg;
  cfg.max_executions = 2;
  cfg.sample_executions = 0;  // caps do not degrade; the user asked to stop
  Engine e(cfg);
  auto stats = e.explore([](Exec& x) {
    auto* a = x.make<Atomic<int>>(0, "a");
    int t1 = x.spawn([a] { a->store(1, MemoryOrder::relaxed); });
    int t2 = x.spawn([a] { a->store(2, MemoryOrder::relaxed); });
    x.join(t1);
    x.join(t2);
  });
  EXPECT_TRUE(stats.hit_execution_cap);
  EXPECT_FALSE(stats.exhausted);
  EXPECT_EQ(stats.sampled, 0u);
  EXPECT_EQ(stats.verdict, Verdict::kInconclusive);
}

}  // namespace
}  // namespace cds::mc
