// Engine-level unit tests: RMW variants, exchange, CAS edge cases, traces,
// violation accounting, exploration caps, mutex blocking, and the
// determinism/reduction invariants the trail relies on.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "mc/atomic.h"
#include "mc/engine.h"
#include "mc/sync.h"
#include "mc/var.h"

namespace cds::mc {
namespace {

TEST(Engine, CurrentIsNullOutsideExploration) {
  EXPECT_EQ(Engine::current(), nullptr);
  Engine e;
  e.explore([&](Exec&) { EXPECT_EQ(Engine::current(), &e); });
  EXPECT_EQ(Engine::current(), nullptr);
}

TEST(Engine, FetchOpsComputeCorrectly) {
  Engine e;
  e.explore([](Exec& x) {
    auto* a = x.make<Atomic<int>>(6, "a");
    EXPECT_EQ(a->fetch_add(3, MemoryOrder::relaxed), 6);
    EXPECT_EQ(a->fetch_sub(2, MemoryOrder::relaxed), 9);
    EXPECT_EQ(a->fetch_or(0x10, MemoryOrder::relaxed), 7);
    EXPECT_EQ(a->fetch_and(0x13, MemoryOrder::relaxed), 0x17);
    EXPECT_EQ(a->load(MemoryOrder::relaxed), 0x13);
  });
}

TEST(Engine, FetchXorAndDefaultOrders) {
  Engine e;
  e.explore([](Exec& x) {
    auto* a = x.make<Atomic<int>>(0b1100, "a");
    EXPECT_EQ(a->fetch_xor(0b1010, MemoryOrder::acq_rel), 0b1100);
    EXPECT_EQ(a->load(), 0b0110);  // default seq_cst, like std::atomic
    a->store(7);                   // default seq_cst
    EXPECT_EQ(a->load(MemoryOrder::relaxed), 7);
  });
}

TEST(Engine, ExchangeReturnsOldValue) {
  Engine e;
  e.explore([](Exec& x) {
    auto* a = x.make<Atomic<int>>(5, "a");
    EXPECT_EQ(a->exchange(8, MemoryOrder::acq_rel), 5);
    EXPECT_EQ(a->load(MemoryOrder::relaxed), 8);
  });
}

TEST(Engine, CasUpdatesExpectedOnFailure) {
  Engine e;
  e.explore([](Exec& x) {
    auto* a = x.make<Atomic<int>>(5, "a");
    int expected = 3;
    EXPECT_FALSE(a->compare_exchange_strong(expected, 9, MemoryOrder::seq_cst,
                                            MemoryOrder::seq_cst));
    EXPECT_EQ(expected, 5);
    EXPECT_TRUE(a->compare_exchange_strong(expected, 9, MemoryOrder::seq_cst,
                                           MemoryOrder::seq_cst));
    EXPECT_EQ(a->load(MemoryOrder::relaxed), 9);
  });
}

TEST(Engine, PointerAtomics) {
  Engine e;
  e.explore([](Exec& x) {
    auto* n1 = x.make<int>(1);
    auto* n2 = x.make<int>(2);
    auto* p = x.make<Atomic<int*>>(n1, "p");
    int* expected = n1;
    EXPECT_TRUE(p->compare_exchange_strong(expected, n2, MemoryOrder::acq_rel,
                                           MemoryOrder::relaxed));
    EXPECT_EQ(p->load(MemoryOrder::relaxed), n2);
  });
}

TEST(Engine, TraceRecordsEvents) {
  Engine e;
  e.set_listener(nullptr);
  struct L : ExecutionListener {
    std::string trace;
    bool on_execution_complete(Engine& eng) override {
      trace = eng.format_trace();
      return true;
    }
  } l;
  e.set_listener(&l);
  e.explore([](Exec& x) {
    auto* a = x.make<Atomic<int>>(0, "counter");
    a->store(5, MemoryOrder::release);
    (void)a->load(MemoryOrder::acquire);
  });
  EXPECT_NE(l.trace.find("store counter = 5 [release]"), std::string::npos);
  EXPECT_NE(l.trace.find("load counter = 5 [acquire]"), std::string::npos);
}

TEST(Engine, MaxExecutionsCapIsHonored) {
  Config cfg;
  cfg.max_executions = 3;
  Engine e(cfg);
  auto stats = e.explore([](Exec& x) {
    auto* a = x.make<Atomic<int>>(0, "a");
    int t1 = x.spawn([a] { a->store(1, MemoryOrder::relaxed); });
    int t2 = x.spawn([a] { (void)a->load(MemoryOrder::relaxed); });
    x.join(t1);
    x.join(t2);
  });
  EXPECT_EQ(stats.executions, 3u);
  EXPECT_TRUE(stats.hit_execution_cap);
}

TEST(Engine, StopOnFirstViolation) {
  Config cfg;
  cfg.stop_on_first_violation = true;
  Engine e(cfg);
  auto stats = e.explore([](Exec& x) {
    auto* d = x.make<Var<int>>(0, "d");
    int t1 = x.spawn([d] { d->write(1); });
    int t2 = x.spawn([d] { d->write(2); });
    x.join(t1);
    x.join(t2);
  });
  EXPECT_TRUE(stats.stopped_early);
  EXPECT_GE(stats.violations_total, 1u);
}

TEST(Engine, ViolationRecordCapRespected) {
  Config cfg;
  cfg.max_recorded_violations = 2;
  Engine e(cfg);
  auto stats = e.explore([](Exec& x) {
    auto* d = x.make<Var<int>>(0, "d");
    int t1 = x.spawn([d] { d->write(1); });
    int t2 = x.spawn([d] { d->write(2); });
    x.join(t1);
    x.join(t2);
  });
  EXPECT_LE(e.violations().size(), 2u);
  EXPECT_GE(stats.violations_total, e.violations().size());
}

TEST(Engine, ReadReadIsNotARace) {
  Engine e;
  auto stats = e.explore([](Exec& x) {
    auto* d = x.make<Var<int>>(7, "d");
    int t1 = x.spawn([d] { (void)d->read(); });
    int t2 = x.spawn([d] { (void)d->read(); });
    x.join(t1);
    x.join(t2);
  });
  EXPECT_EQ(stats.violations_total, 0u);
}

TEST(Engine, WriteAfterJoinedReadIsNotARace) {
  Engine e;
  auto stats = e.explore([](Exec& x) {
    auto* d = x.make<Var<int>>(0, "d");
    int t1 = x.spawn([d] { (void)d->read(); });
    x.join(t1);
    d->write(1);  // ordered after the read via join
  });
  EXPECT_EQ(stats.violations_total, 0u);
}

TEST(Engine, ConcurrentReadWriteIsARace) {
  Engine e;
  auto stats = e.explore([](Exec& x) {
    auto* d = x.make<Var<int>>(0, "d");
    int t1 = x.spawn([d] { (void)d->read(); });
    int t2 = x.spawn([d] { d->write(1); });
    x.join(t1);
    x.join(t2);
  });
  EXPECT_GT(stats.violations_total, 0u);
}

TEST(Engine, MutexBlocksUntilUnlocked) {
  // With the mutex held for the child's whole life, the parent can only
  // lock after joining; the protected counter ends at 2 in all executions.
  Engine e;
  std::set<int> finals;
  struct L : ExecutionListener {
    int* r;
    std::set<int>* v;
    bool on_execution_complete(Engine&) override {
      v->insert(*r);
      return true;
    }
  } l;
  int r = -1;
  l.r = &r;
  l.v = &finals;
  e.set_listener(&l);
  e.explore([&](Exec& x) {
    auto* m = x.make<Mutex>("m");
    auto* v = x.make<Var<int>>(0, "v");
    int t1 = x.spawn([m, v] {
      LockGuard g(*m);
      v->write(v->read() + 1);
    });
    int t2 = x.spawn([m, v] {
      LockGuard g(*m);
      v->write(v->read() + 1);
    });
    x.join(t1);
    x.join(t2);
    r = v->read();
  });
  EXPECT_EQ(finals, std::set<int>{2});
}

TEST(Engine, ExplorationDeterministicAcrossRuns) {
  auto body = [](Exec& x) {
    auto* a = x.make<Atomic<int>>(0, "a");
    auto* b = x.make<Atomic<int>>(0, "b");
    int t1 = x.spawn([a, b] {
      a->store(1, MemoryOrder::release);
      (void)b->load(MemoryOrder::acquire);
    });
    int t2 = x.spawn([a, b] {
      b->store(1, MemoryOrder::release);
      (void)a->load(MemoryOrder::acquire);
    });
    x.join(t1);
    x.join(t2);
  };
  Engine e1, e2;
  auto s1 = e1.explore(body);
  auto s2 = e2.explore(body);
  EXPECT_EQ(s1.executions, s2.executions);
  EXPECT_EQ(s1.feasible, s2.feasible);
  EXPECT_EQ(s1.pruned_redundant, s2.pruned_redundant);
}

TEST(Engine, SleepSetsPruneRedundantInterleavings) {
  // Independent stores on different locations: the sleep set should prune
  // at least one of the two schedule orders' continuations.
  Engine e;
  auto stats = e.explore([](Exec& x) {
    auto* a = x.make<Atomic<int>>(0, "a");
    auto* b = x.make<Atomic<int>>(0, "b");
    int t1 = x.spawn([a] { a->store(1, MemoryOrder::relaxed); });
    int t2 = x.spawn([b] { b->store(1, MemoryOrder::relaxed); });
    x.join(t1);
    x.join(t2);
  });
  EXPECT_GT(stats.pruned_redundant, 0u);
  EXPECT_EQ(stats.feasible, 1u)
      << "the two independent stores have exactly one behavior";
}

TEST(Engine, UnsignedAtomicWraparound) {
  Engine e;
  e.explore([](Exec& x) {
    auto* a = x.make<Atomic<unsigned>>(0xFFFFFFFFu, "a");
    EXPECT_EQ(a->fetch_add(1u, MemoryOrder::relaxed), 0xFFFFFFFFu);
    EXPECT_EQ(a->load(MemoryOrder::relaxed), 0u);
  });
}

TEST(Engine, ReplayReproducesAViolatingExecution) {
  // Capture the trail of the first racy execution, then replay it: the
  // same violation and trace must reappear.
  Config cfg;
  cfg.stop_on_first_violation = true;
  Engine e(cfg);
  std::vector<Choice> bad_trail;
  struct L : ExecutionListener {
  } l;
  (void)l;
  auto body = [](Exec& x) {
    auto* d = x.make<Var<int>>(0, "d");
    auto* f = x.make<Atomic<int>>(0, "f");
    int t1 = x.spawn([d, f] {
      d->write(1);
      f->store(1, MemoryOrder::relaxed);
    });
    int t2 = x.spawn([d, f] {
      if (f->load(MemoryOrder::relaxed) == 1) (void)d->read();
    });
    x.join(t1);
    x.join(t2);
  };
  auto stats = e.explore(body);
  ASSERT_GT(stats.violations_total, 0u);
  bad_trail = e.current_trail();

  Engine e2;
  e2.replay(bad_trail, body);
  EXPECT_TRUE(e2.execution_has_builtin_violation());
  ASSERT_FALSE(e2.violations().empty());
  EXPECT_EQ(e2.violations()[0].kind, ViolationKind::kDataRace);
  EXPECT_FALSE(e2.format_trace().empty());
}

TEST(Engine, SleepSetAblationPreservesBehaviors) {
  // With sleep sets disabled, more executions are explored but the set of
  // observed outcomes is identical.
  auto body = [](int* r1, int* r2) {
    return [r1, r2](Exec& x) {
      auto* fx = x.make<Atomic<int>>(0, "x");
      auto* fy = x.make<Atomic<int>>(0, "y");
      int t1 = x.spawn([&, fx, fy] {
        fx->store(1, MemoryOrder::release);
        *r1 = fy->load(MemoryOrder::acquire);
      });
      int t2 = x.spawn([&, fx, fy] {
        fy->store(1, MemoryOrder::release);
        *r2 = fx->load(MemoryOrder::acquire);
      });
      x.join(t1);
      x.join(t2);
    };
  };
  struct L : ExecutionListener {
    int* r1;
    int* r2;
    std::set<std::pair<int, int>> seen;
    bool on_execution_complete(Engine&) override {
      seen.insert({*r1, *r2});
      return true;
    }
  };
  int r1 = -1, r2 = -1;
  L on, off;
  on.r1 = off.r1 = &r1;
  on.r2 = off.r2 = &r2;

  Config con;
  con.enable_sleep_sets = true;
  Engine eon(con);
  eon.set_listener(&on);
  auto son = eon.explore(body(&r1, &r2));

  Config coff;
  coff.enable_sleep_sets = false;
  Engine eoff(coff);
  eoff.set_listener(&off);
  auto soff = eoff.explore(body(&r1, &r2));

  EXPECT_EQ(on.seen, off.seen) << "reduction must preserve behaviors";
  EXPECT_LE(son.executions, soff.executions);
}

TEST(Engine, MoreThanSixtyFourRunnableThreads) {
  // Regression: the scheduler's enabled-thread scratch was a fixed
  // enabled[64] array that silently dropped runnable threads past the cap,
  // so threads 65.. were never scheduled. Spawn 70 concurrently-runnable
  // threads and require every one of them to run to completion.
  Config cfg;
  cfg.max_threads = 80;
  cfg.max_executions = 1;
  Engine e(cfg);
  static constexpr int kThreads = 70;
  auto stats = e.explore([](Exec& x) {
    std::vector<Var<int>*> slots;
    slots.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
      slots.push_back(x.make<Var<int>>(0));
    }
    std::vector<int> tids;
    tids.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
      Var<int>* s = slots[static_cast<std::size_t>(i)];
      tids.push_back(x.spawn([s] { s->write(1); }));
    }
    for (int tid : tids) x.join(tid);
    int ran = 0;
    for (Var<int>* s : slots) ran += s->read();
    EXPECT_EQ(ran, kThreads) << "some runnable threads were never scheduled";
  });
  EXPECT_EQ(stats.engine_fatal_execs, 0u);
  EXPECT_GE(stats.feasible, 1u);
}

TEST(Engine, ManyThreadsSpawnJoin) {
  Engine e;
  auto stats = e.explore([](Exec& x) {
    auto* a = x.make<Atomic<int>>(0, "a");
    int tids[6];
    for (int& tid : tids) {
      tid = x.spawn([a] { a->fetch_add(1, MemoryOrder::relaxed); });
    }
    for (int tid : tids) x.join(tid);
    EXPECT_EQ(a->load(MemoryOrder::relaxed), 6);
  });
  EXPECT_GT(stats.feasible, 0u);
}

}  // namespace
}  // namespace cds::mc
