// Trail serialization: parse(render(t)) == t over hand-built and
// randomly generated trails, plus clean rejection of truncated, corrupted,
// and version-mismatched files with actionable messages.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "mc/trace.h"
#include "support/rng.h"

namespace cds::mc {
namespace {

TrailFile full_trail() {
  TrailFile t;
  t.test_name = "ms-queue#2";
  t.seed = 0x9e3779b97f4a7c15ull;
  t.kind = "data-race";
  t.detail = "read of 'head' by T2 races with write by T1";
  t.inject_site = "enqueue: tail store";
  t.stale_read_bound = 7;
  t.max_steps = 1234;
  t.strengthen_to_sc = true;
  t.enable_sleep_sets = false;
  t.explore = ExploreMode::kRf;
  t.choices = {
      Choice{ChoiceKind::kSchedule, 1, 2},
      Choice{ChoiceKind::kReadsFrom, 0, 3},
      Choice{ChoiceKind::kSchedule, 2, 4},
  };
  return t;
}

void expect_equal(const TrailFile& a, const TrailFile& b) {
  EXPECT_EQ(a.backend, b.backend);
  EXPECT_EQ(a.test_name, b.test_name);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.detail, b.detail);
  EXPECT_EQ(a.inject_site, b.inject_site);
  EXPECT_EQ(a.stale_read_bound, b.stale_read_bound);
  EXPECT_EQ(a.max_steps, b.max_steps);
  EXPECT_EQ(a.strengthen_to_sc, b.strengthen_to_sc);
  EXPECT_EQ(a.enable_sleep_sets, b.enable_sleep_sets);
  EXPECT_EQ(a.explore, b.explore);
  ASSERT_EQ(a.choices.size(), b.choices.size());
  for (std::size_t i = 0; i < a.choices.size(); ++i) {
    EXPECT_EQ(a.choices[i].kind, b.choices[i].kind) << "choice " << i;
    EXPECT_EQ(a.choices[i].chosen, b.choices[i].chosen) << "choice " << i;
    EXPECT_EQ(a.choices[i].num, b.choices[i].num) << "choice " << i;
  }
}

TEST(Trace, RoundTripPreservesEveryField) {
  TrailFile t = full_trail();
  TrailFile back;
  std::string err;
  ASSERT_TRUE(parse_trail(render_trail(t), &back, &err)) << err;
  expect_equal(t, back);
}

TEST(Trace, RoundTripMinimalTrail) {
  // Optional fields absent, empty choice list.
  TrailFile t;
  t.test_name = "litmus";
  t.seed = 1;
  TrailFile back;
  std::string err;
  ASSERT_TRUE(parse_trail(render_trail(t), &back, &err)) << err;
  expect_equal(t, back);
}

TEST(Trace, RoundTripPropertyOverRandomTrails) {
  support::Xorshift64 rng(0xC0FFEEull);
  for (int iter = 0; iter < 100; ++iter) {
    TrailFile t;
    t.test_name = "bench-" + std::to_string(rng.next() % 100) + "#" +
                  std::to_string(rng.next() % 8);
    t.seed = rng.next();
    if (rng.next() % 2 != 0) t.kind = "user-assertion";
    if (rng.next() % 2 != 0) t.detail = "multi word detail " +
                                        std::to_string(rng.next());
    t.stale_read_bound = static_cast<std::uint32_t>(rng.next() % 100);
    t.max_steps = rng.next() % 100000;
    t.strengthen_to_sc = rng.next() % 2 != 0;
    t.enable_sleep_sets = rng.next() % 2 != 0;
    t.explore =
        rng.next() % 2 != 0 ? ExploreMode::kRf : ExploreMode::kSchedule;
    std::size_t n = rng.next() % 40;
    for (std::size_t i = 0; i < n; ++i) {
      auto num = static_cast<std::uint16_t>(2 + rng.next() % 200);
      auto chosen = static_cast<std::uint16_t>(rng.next() % num);
      t.choices.push_back(Choice{
          rng.next() % 2 != 0 ? ChoiceKind::kSchedule : ChoiceKind::kReadsFrom,
          chosen, num});
    }
    TrailFile back;
    std::string err;
    ASSERT_TRUE(parse_trail(render_trail(t), &back, &err))
        << "iter " << iter << ": " << err;
    expect_equal(t, back);
  }
}

TEST(Trace, CommentsAndBlankLinesAreIgnored) {
  std::string text = render_trail(full_trail());
  std::string commented = "# a leading comment\n\n";
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    commented += line + "\n# interleaved comment\n\n";
  }
  TrailFile back;
  std::string err;
  ASSERT_TRUE(parse_trail(commented, &back, &err)) << err;
  expect_equal(full_trail(), back);
}

TEST(Trace, EveryTruncationIsRejectedWithActionableError) {
  // Chop the rendered file after every line boundary: each prefix must be
  // rejected with a non-empty message, never accepted or crash.
  std::string text = render_trail(full_trail());
  for (std::size_t pos = text.find('\n'); pos != std::string::npos;
       pos = text.find('\n', pos + 1)) {
    std::string prefix = text.substr(0, pos + 1);
    if (prefix.size() == text.size()) break;  // the full file parses
    TrailFile back;
    std::string err;
    EXPECT_FALSE(parse_trail(prefix, &back, &err))
        << "prefix of " << prefix.size() << " bytes was accepted";
    EXPECT_FALSE(err.empty());
  }
  // The headline case: everything but the 'end' terminator (a torn write).
  std::string no_end = text.substr(0, text.rfind("end"));
  TrailFile back;
  std::string err;
  EXPECT_FALSE(parse_trail(no_end, &back, &err));
  EXPECT_NE(err.find("missing 'end' terminator"), std::string::npos) << err;
}

TEST(Trace, VersionMismatchNamesBothVersions) {
  std::string text = render_trail(full_trail());
  text.replace(text.find("v2"), 2, "v9");
  TrailFile back;
  std::string err;
  EXPECT_FALSE(parse_trail(text, &back, &err));
  EXPECT_NE(err.find("unsupported .trail version v9"), std::string::npos)
      << err;
  EXPECT_NE(err.find("v2"), std::string::npos) << err;
}

TEST(Trace, WrongMagicIsRejected) {
  TrailFile back;
  std::string err;
  EXPECT_FALSE(parse_trail("not-a-trail v1\nend\n", &back, &err));
  EXPECT_NE(err.find("not a .trail file"), std::string::npos) << err;
  EXPECT_FALSE(parse_trail("", &back, &err));
  EXPECT_NE(err.find("empty"), std::string::npos) << err;
}

TEST(Trace, CorruptedChoiceLinesAreRejected) {
  auto reject = [](const std::string& choice_line, const char* expect_msg) {
    TrailFile t = full_trail();
    std::string text = render_trail(t);
    std::size_t at = text.find("S 1/2");
    text.replace(at, 5, choice_line);
    TrailFile back;
    std::string err;
    EXPECT_FALSE(parse_trail(text, &back, &err)) << choice_line;
    EXPECT_NE(err.find(expect_msg), std::string::npos)
        << "'" << choice_line << "' -> " << err;
    // The message names the offending line.
    EXPECT_EQ(err.rfind("line ", 0), 0u) << err;
  };
  reject("X 1/2", "malformed choice");
  reject("S 1-2", "missing '/'");
  reject("S x/2", "bad number");
  reject("S 5/2", "out of range");
  reject("S 0/1", "alternative count");  // single-alternative never recorded
  reject("S 0/100000", "alternative count");
}

TEST(Trace, ChoiceCountMismatchIsRejected) {
  TrailFile t = full_trail();
  std::string text = render_trail(t);
  // Claim more choices than are present: the 'end' line is consumed as a
  // (malformed) choice or the file ends early.
  std::string more = text;
  more.replace(more.find("choices 3"), 9, "choices 9");
  TrailFile back;
  std::string err;
  EXPECT_FALSE(parse_trail(more, &back, &err));
  EXPECT_FALSE(err.empty());
  // Claim fewer: the leftover choice line sits where 'end' should be.
  std::string fewer = text;
  fewer.replace(fewer.find("choices 3"), 9, "choices 2");
  EXPECT_FALSE(parse_trail(fewer, &back, &err));
  EXPECT_NE(err.find("missing 'end' terminator"), std::string::npos) << err;
  // Content after 'end' is rejected as trailing garbage.
  EXPECT_FALSE(parse_trail(text + "junk\n", &back, &err));
  EXPECT_NE(err.find("trailing garbage"), std::string::npos) << err;
}

TEST(Trace, StressBackendTrailRoundTrips) {
  // A stress discovery is replayable from its trail: the header names the
  // backend, `seed` is the failing iteration's seed, and the choices are
  // the thread-major preemption decision stream (4 alternatives each).
  TrailFile t;
  t.test_name = "concurrent-hashmap#0";
  t.seed = 0xBADC0DEull;
  t.backend = "stress";
  t.kind = "spec-assertion";
  t.detail = "postcondition of get(1)=10 [T2] failed (S_RET=0)";
  for (std::uint16_t d : {0, 3, 1, 2, 0, 0, 2}) {
    t.choices.push_back(Choice{ChoiceKind::kSchedule, d, 4});
  }
  TrailFile back;
  std::string err;
  std::string text = render_trail(t);
  EXPECT_NE(text.find("backend stress"), std::string::npos) << text;
  ASSERT_TRUE(parse_trail(text, &back, &err)) << err;
  EXPECT_EQ(back.backend, "stress");
  expect_equal(t, back);
}

TEST(Trace, ModelBackendTokenNormalizesToEmpty) {
  // "backend model" is accepted for symmetry but normalizes to the empty
  // default, and the renderer never emits it — model trails stay byte-
  // identical to pre-v2 ones.
  TrailFile t = full_trail();
  EXPECT_EQ(render_trail(t).find("backend"), std::string::npos);
  std::string text = render_trail(t);
  text.insert(text.find("kind "), "backend model\n");
  TrailFile back;
  std::string err;
  ASSERT_TRUE(parse_trail(text, &back, &err)) << err;
  EXPECT_EQ(back.backend, "");
  expect_equal(t, back);
}

TEST(Trace, UnknownBackendTokenIsRejected) {
  std::string text = render_trail(full_trail());
  text.insert(text.find("kind "), "backend quantum\n");
  TrailFile back;
  std::string err;
  EXPECT_FALSE(parse_trail(text, &back, &err));
  EXPECT_NE(err.find("unknown backend 'quantum'"), std::string::npos) << err;
}

TEST(Trace, ExploreScheduleTokenNormalizesToAbsent) {
  // "explore schedule" is accepted for symmetry but normalizes to the
  // default, and the renderer only emits the line for rf trails — so
  // schedule-mode trails stay byte-identical to pre-rf ones.
  TrailFile t = full_trail();
  t.explore = ExploreMode::kSchedule;
  std::string text = render_trail(t);
  EXPECT_EQ(text.find("explore"), std::string::npos) << text;
  text.insert(text.find("config "), "explore schedule\n");
  TrailFile back;
  std::string err;
  ASSERT_TRUE(parse_trail(text, &back, &err)) << err;
  EXPECT_EQ(back.explore, ExploreMode::kSchedule);
  expect_equal(t, back);
}

TEST(Trace, RfTrailCarriesExploreLine) {
  TrailFile t = full_trail();
  std::string text = render_trail(t);
  EXPECT_NE(text.find("explore rf"), std::string::npos) << text;
  TrailFile back;
  std::string err;
  ASSERT_TRUE(parse_trail(text, &back, &err)) << err;
  EXPECT_EQ(back.explore, ExploreMode::kRf);
}

TEST(Trace, UnknownExploreModeIsRejected) {
  std::string text = render_trail(full_trail());
  std::size_t at = text.find("explore rf");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 10, "explore povo");
  TrailFile back;
  std::string err;
  EXPECT_FALSE(parse_trail(text, &back, &err));
  EXPECT_NE(err.find("unknown explore mode"), std::string::npos) << err;
}

TEST(Trace, FileIoRoundTripsAndRejectsMissingFile) {
  const std::string path = testing::TempDir() + "/trace_test_roundtrip.trail";
  TrailFile t = full_trail();
  std::string err;
  ASSERT_TRUE(write_trail_file(path, t, &err)) << err;
  TrailFile back;
  ASSERT_TRUE(load_trail_file(path, &back, &err)) << err;
  expect_equal(t, back);
  std::remove(path.c_str());
  EXPECT_FALSE(load_trail_file(path, &back, &err));
  EXPECT_NE(err.find("cannot open"), std::string::npos) << err;
}

TEST(Trace, FingerprintMismatchNamesTheFlag) {
  TrailFile t = full_trail();
  Config cfg;
  t.apply_fingerprint(&cfg);
  EXPECT_EQ(t.fingerprint_mismatch(cfg), "");
  cfg.stale_read_bound = 99;
  EXPECT_NE(t.fingerprint_mismatch(cfg).find("--stale"), std::string::npos);
  t.apply_fingerprint(&cfg);
  cfg.test_name = "other#0";
  EXPECT_NE(t.fingerprint_mismatch(cfg).find("test mismatch"),
            std::string::npos);
  t.apply_fingerprint(&cfg);
  cfg.explore = ExploreMode::kSchedule;
  std::string msg = t.fingerprint_mismatch(cfg);
  EXPECT_NE(msg.find("--explore"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'rf'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'schedule'"), std::string::npos) << msg;
}

}  // namespace
}  // namespace cds::mc
