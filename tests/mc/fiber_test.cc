// Direct tests of the cooperative fiber substrate.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fiber/fiber.h"

namespace cds::fiber {
namespace {

TEST(Fiber, PingPong) {
  Fiber sched;
  sched.init_native();
  auto f = std::make_unique<Fiber>();
  std::vector<int> log;
  f->reset([&] {
    log.push_back(1);
    sched.switch_to(*f);
    log.push_back(3);
    f->mark_finished();
    sched.switch_to(*f);
  });
  f->switch_to(sched);
  log.push_back(2);
  f->switch_to(sched);
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(f->finished());
}

TEST(Fiber, ResetReusesStack) {
  Fiber sched;
  sched.init_native();
  auto f = std::make_unique<Fiber>();
  int runs = 0;
  for (int i = 0; i < 3; ++i) {
    f->reset([&] {
      ++runs;
      f->mark_finished();
      sched.switch_to(*f);
    });
    EXPECT_TRUE(f->armed());
    EXPECT_FALSE(f->finished());
    f->switch_to(sched);
    EXPECT_TRUE(f->finished());
  }
  EXPECT_EQ(runs, 3);
}

TEST(Fiber, ManyFibersRoundRobin) {
  Fiber sched;
  sched.init_native();
  constexpr int kN = 8;
  std::vector<std::unique_ptr<Fiber>> fibers;
  std::vector<int> order;
  for (int i = 0; i < kN; ++i) fibers.push_back(std::make_unique<Fiber>());
  for (int i = 0; i < kN; ++i) {
    Fiber* self = fibers[static_cast<std::size_t>(i)].get();
    self->reset([&, i, self] {
      order.push_back(i);
      sched.switch_to(*self);  // yield once
      order.push_back(i + 100);
      self->mark_finished();
      sched.switch_to(*self);
    });
  }
  for (auto& f : fibers) f->switch_to(sched);  // first leg
  for (auto& f : fibers) f->switch_to(sched);  // second leg
  ASSERT_EQ(order.size(), 2u * kN);
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
    EXPECT_EQ(order[static_cast<std::size_t>(kN + i)], i + 100);
  }
}

TEST(Fiber, DeepStackUse) {
  // Fibers must tolerate a reasonable amount of stack (recursion depth).
  Fiber sched;
  sched.init_native();
  auto f = std::make_unique<Fiber>();
  long sum = 0;
  struct Rec {
    static long go(int n) {
      char pad[512];
      pad[0] = static_cast<char>(n);
      if (n == 0) return pad[0];
      return pad[0] + go(n - 1);
    }
  };
  f->reset([&] {
    sum = Rec::go(100);
    f->mark_finished();
    sched.switch_to(*f);
  });
  f->switch_to(sched);
  EXPECT_EQ(sum, 5050);
}

// A fallthrough handler lets an entry wrapper that returns (instead of
// switching out) be recovered rather than aborting the process.
Fiber* g_fallthrough_sched = nullptr;
int g_fallthrough_hits = 0;

TEST(Fiber, FallthroughHandlerRecovers) {
  Fiber sched;
  sched.init_native();
  auto f = std::make_unique<Fiber>();
  g_fallthrough_sched = &sched;
  g_fallthrough_hits = 0;
  Fiber::set_fallthrough_handler([](Fiber& offender) {
    ++g_fallthrough_hits;
    offender.mark_finished();
    g_fallthrough_sched->switch_to(offender);  // must not return
  });
  f->reset([] { /* returns without mark_finished + switch */ });
  f->switch_to(sched);
  EXPECT_EQ(g_fallthrough_hits, 1);
  EXPECT_TRUE(f->finished());
  Fiber::set_fallthrough_handler(nullptr);  // Engine reinstalls its own
}

}  // namespace
}  // namespace cds::fiber
