// Signal-to-verdict containment: a fatal signal in the test body becomes a
// Violation{kCrash} carrying its trail and a kFalsified verdict — never a
// dead checker process. Includes the fiber stack guard-page diagnosis and
// the crash-repro replay loop.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <string>

#include "harness/runner.h"
#include "mc/atomic.h"
#include "mc/engine.h"

namespace cds {
namespace {

void expect_single_crash(const mc::ExplorationStats& stats,
                         const mc::Engine& e, const char* signal_name) {
  EXPECT_EQ(stats.crash_execs, 1u);
  EXPECT_TRUE(stats.stopped_early)
      << "an in-process crash always ends the exploration";
  EXPECT_EQ(stats.verdict, mc::Verdict::kFalsified);
  ASSERT_EQ(e.violations().size(), 1u);
  EXPECT_EQ(e.violations()[0].kind, mc::ViolationKind::kCrash);
  EXPECT_NE(e.violations()[0].detail.find(signal_name), std::string::npos)
      << e.violations()[0].detail;
  EXPECT_NE(e.violations()[0].detail.find("modeled thread"), std::string::npos)
      << e.violations()[0].detail;
}

TEST(Crash, SigsegvIsContainedAsViolation) {
  mc::Engine e;
  mc::ExplorationStats stats = e.explore([](mc::Exec& x) {
    auto* a = x.make<mc::Atomic<int>>(0, "a");
    a->store(1, mc::MemoryOrder::relaxed);
    raise(SIGSEGV);
  });
  expect_single_crash(stats, e, "SIGSEGV");
}

TEST(Crash, SigfpeIsContainedAsViolation) {
  mc::Engine e;
  mc::ExplorationStats stats = e.explore([](mc::Exec& x) {
    (void)x;
    raise(SIGFPE);
  });
  expect_single_crash(stats, e, "SIGFPE");
}

TEST(Crash, AbortIsContainedAsViolation) {
  mc::Engine e;
  mc::ExplorationStats stats = e.explore([](mc::Exec& x) {
    int t = x.spawn([] { std::abort(); });
    x.join(t);
  });
  expect_single_crash(stats, e, "SIGABRT");
}

TEST(Crash, ContainmentIsReentrantAcrossExplorations) {
  // Handlers install per explore() and restore on exit; crashing, clean,
  // and crashing-again explorations must not interfere with each other.
  for (int round = 0; round < 2; ++round) {
    mc::Engine crasher;
    mc::ExplorationStats stats = crasher.explore([](mc::Exec& x) {
      (void)x;
      raise(SIGSEGV);
    });
    expect_single_crash(stats, crasher, "SIGSEGV");

    mc::Engine clean;
    mc::ExplorationStats ok = clean.explore([](mc::Exec& x) {
      auto* a = x.make<mc::Atomic<int>>(0, "a");
      int t = x.spawn([a] { a->store(1, mc::MemoryOrder::relaxed); });
      (void)a->load(mc::MemoryOrder::relaxed);
      x.join(t);
    });
    EXPECT_EQ(ok.crash_execs, 0u);
    EXPECT_EQ(ok.verdict, mc::Verdict::kVerifiedExhaustive);
  }
}

// A crash that depends on an observed value: only the execution where the
// load reads the spawned thread's store crashes, so the violation's trail
// pins one specific schedule + reads-from choice sequence.
void choice_dependent_crash(mc::Exec& x) {
  auto* f = x.make<mc::Atomic<int>>(0, "f");
  int t = x.spawn([f] { f->store(1, mc::MemoryOrder::relaxed); });
  if (f->load(mc::MemoryOrder::relaxed) == 1) raise(SIGSEGV);
  x.join(t);
}

TEST(Crash, CrashTrailReplaysToTheSameCrash) {
  mc::Engine e;
  mc::ExplorationStats stats = e.explore(choice_dependent_crash);
  EXPECT_EQ(stats.verdict, mc::Verdict::kFalsified);
  ASSERT_EQ(e.violations().size(), 1u);
  const mc::Violation& v = e.violations()[0];
  ASSERT_EQ(v.kind, mc::ViolationKind::kCrash);
  ASSERT_FALSE(v.trail.empty()) << "crash violations carry their trail";

  // Strict replay on a fresh engine: the recorded choices deterministically
  // drive the execution back into the same contained crash.
  mc::Engine replayer;
  std::string divergence;
  ASSERT_TRUE(
      replayer.replay(v.trail, choice_dependent_crash, true, &divergence))
      << divergence;
  ASSERT_EQ(replayer.violations().size(), 1u);
  EXPECT_EQ(replayer.violations()[0].kind, mc::ViolationKind::kCrash);
  EXPECT_NE(replayer.violations()[0].detail.find("SIGSEGV"),
            std::string::npos);
}

TEST(Crash, StrictReplayOfNonCrashingTrailReportsDivergence) {
  // The same trail against a body that no longer crashes (the "fixed build"
  // scenario): strict replay must say so instead of silently passing.
  mc::Engine e;
  (void)e.explore(choice_dependent_crash);
  ASSERT_EQ(e.violations().size(), 1u);
  std::vector<mc::Choice> trail = e.violations()[0].trail;

  mc::Engine replayer;
  std::string divergence;
  bool ok = replayer.replay(
      trail,
      [](mc::Exec& x) {
        auto* f = x.make<mc::Atomic<int>>(0, "f");
        int t = x.spawn([f] { f->store(1, mc::MemoryOrder::relaxed); });
        (void)f->load(mc::MemoryOrder::relaxed);  // crash removed
        x.join(t);
      },
      true, &divergence);
  EXPECT_TRUE(replayer.violations().empty());
  if (!ok) {
    EXPECT_FALSE(divergence.empty());
  }
}

TEST(Crash, VerdictIsFalsifiedThroughTheHarness) {
  harness::RunResult res = harness::run_with_spec(choice_dependent_crash);
  EXPECT_EQ(res.verdict, mc::Verdict::kFalsified);
  EXPECT_EQ(res.mc.crash_execs, 1u);
  ASSERT_FALSE(res.violations.empty());
  EXPECT_EQ(res.violations[0].kind, mc::ViolationKind::kCrash);
}

// ASan's fake-stack frames for address-taken locals live on the heap, so
// the recursion below would not walk into the fiber's mmap'd guard page;
// the diagnosis is exercised in the plain and UBSan builds instead.
#if defined(__SANITIZE_ADDRESS__)
#define CDS_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define CDS_ASAN 1
#endif
#endif

#if defined(__linux__) && !defined(CDS_ASAN)

// Deliberately non-tail-recursive stack eater: each frame pins a buffer so
// the compiler cannot collapse the recursion.
int eat_stack(volatile char* sink, int depth) {
  volatile char buf[512];
  buf[0] = static_cast<char>(depth);
  *sink = buf[0];
  if (depth > 1000000) return depth;
  return eat_stack(sink, depth + 1) + (buf[0] != 0 ? 1 : 0);
}

TEST(Crash, FiberStackOverflowHitsGuardPageAndIsDiagnosed) {
  mc::Engine e;
  mc::ExplorationStats stats = e.explore([](mc::Exec& x) {
    volatile char sink = 0;
    int t = x.spawn([&sink] { (void)eat_stack(&sink, 0); });
    x.join(t);
  });
  EXPECT_EQ(stats.crash_execs, 1u);
  EXPECT_EQ(stats.verdict, mc::Verdict::kFalsified);
  ASSERT_EQ(e.violations().size(), 1u);
  const std::string& d = e.violations()[0].detail;
  EXPECT_NE(d.find("SIGSEGV"), std::string::npos) << d;
  EXPECT_NE(d.find("stack overflow"), std::string::npos)
      << "guard-page fault not attributed to the overflowing fiber: " << d;
}

#endif  // __linux__ && !CDS_ASAN

}  // namespace
}  // namespace cds
