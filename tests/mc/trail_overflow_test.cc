// Regression tests for two fail-loud paths in the exploration engine:
//
//  - A choice fan-out that does not fit the trail's uint16 Choice encoding
//    must fail the offending execution as an engine-fatal diagnostic.
//    Release builds used to truncate the count silently (the check was
//    assert-only) and then explore the wrong tree.
//  - Combining set_subtree() with a mid-run set_resume() must be a hard
//    error in every build: a subtree prefix clobbers the resumed DFS
//    frontier. This too was assert-only, so NDEBUG builds silently
//    explored the wrong tree.
#include <gtest/gtest.h>

#include "mc/atomic.h"
#include "mc/checkpoint.h"
#include "mc/engine.h"
#include "mc/trail.h"

namespace cds::mc {
namespace {

TEST(TrailOverflow, HugeReadsFromFanoutFailsExecutionNotProcess) {
  Config cfg;
  cfg.max_steps = 200'000;
  cfg.max_executions = 1;
  cfg.sample_executions = 0;
  cfg.collect_trace = false;
  Engine e(cfg);
  auto stats = e.explore([](Exec& x) {
    auto* a = x.make<Atomic<int>>(0, "a");
    // Reader spawned before the stores: its coherence floor for `a` is 0,
    // so by the time it runs (root blocks on the join) its load faces
    // 66001 reads-from candidates -- past the uint16 Choice::num range.
    int t = x.spawn([a] { (void)a->load(MemoryOrder::relaxed); });
    for (int i = 0; i < 66'000; ++i) a->store(i, MemoryOrder::relaxed);
    x.join(t);
  });
  EXPECT_GT(stats.engine_fatal_execs, 0u);
  EXPECT_EQ(stats.violations_total, 0u);  // diagnostic, not a violation
  EXPECT_EQ(stats.verdict, Verdict::kInconclusive);

  // The overflow was contained to that execution: the process is alive
  // and a fresh exploration still proves a clean body.
  Engine e2;
  auto ok = e2.explore([](Exec& x) {
    auto* a = x.make<Atomic<int>>(0, "a");
    a->store(1, MemoryOrder::relaxed);
  });
  EXPECT_EQ(ok.verdict, Verdict::kVerifiedExhaustive);
}

TEST(TrailOverflow, BareTrailWithoutHandlerAborts) {
  // Without an overflow handler the trail itself refuses to truncate.
  EXPECT_DEATH(
      {
        Trail t;
        (void)t.choose(ChoiceKind::kReadsFrom, 0x10000);
      },
      "outside the recordable range");
}

TEST(TrailOverflow, SubtreeAndResumeAreMutuallyExclusive) {
  EXPECT_DEATH(
      {
        Config cfg;
        Engine e(cfg);
        Checkpoint cp;
        cp.phase = Checkpoint::Phase::kDfs;
        cp.fingerprint_from(cfg);
        cp.trail.push_back(Choice{ChoiceKind::kSchedule, 0, 2});
        e.set_resume(std::move(cp));
        e.set_subtree({Choice{ChoiceKind::kSchedule, 0, 2}});
        (void)e.explore([](Exec& x) {
          auto* a = x.make<Atomic<int>>(0, "a");
          int t1 = x.spawn([a] { a->store(1, MemoryOrder::relaxed); });
          int t2 = x.spawn([a] { a->store(2, MemoryOrder::relaxed); });
          x.join(t1);
          x.join(t2);
        });
      },
      "mutually exclusive");
}

}  // namespace
}  // namespace cds::mc
