// frontier_fraction_of (mc/trail.h): the mixed-radix DFS progress
// estimate. Regression coverage for the precision bugs the Horner form
// fixes: the old forward accumulation underflowed its running scale
// factor to zero past ~1000 digits (deep trails reported 0% forever) and
// could overshoot 1.0 via rounding. The estimate must stay in [0, 1] and
// be non-decreasing across Trail::advance() on adversarial shapes — deep
// chains, maximum fan-out, and mixed radices.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "mc/trail.h"
#include "support/rng.h"

namespace cds::mc {
namespace {

std::vector<Choice> uniform_trail(std::size_t depth, std::uint16_t num,
                                  std::uint16_t chosen) {
  return std::vector<Choice>(depth, Choice{ChoiceKind::kSchedule, chosen, num});
}

TEST(FrontierFraction, EmptyTrailIsZero) {
  EXPECT_EQ(frontier_fraction_of({}), 0.0);
}

TEST(FrontierFraction, ExactOnSmallMixedRadix) {
  // Digits (chosen/num) = 1/2, 2/3, 1/2: the 11th of 12 leaves, so the
  // fraction strictly before it is 11/12.
  std::vector<Choice> t = {
      Choice{ChoiceKind::kSchedule, 1, 2},
      Choice{ChoiceKind::kReadsFrom, 2, 3},
      Choice{ChoiceKind::kSchedule, 1, 2},
  };
  EXPECT_NEAR(frontier_fraction_of(t), 11.0 / 12.0, 1e-12);
}

TEST(FrontierFraction, DeepFirstLeafIsZeroAndLastLeafNearOne) {
  // Depth 5000 at the uint16 maximum fan-out. The all-zeros trail is the
  // first leaf (exactly 0); the all-max trail is the last leaf, whose
  // "strictly before" fraction is 1 - 65535^-5000 — indistinguishable
  // from 1 in double precision, and must neither exceed 1 nor collapse to
  // 0 the way the underflowing accumulation did.
  EXPECT_EQ(frontier_fraction_of(uniform_trail(5000, 65535, 0)), 0.0);
  double last = frontier_fraction_of(uniform_trail(5000, 65535, 65534));
  EXPECT_LE(last, 1.0);
  EXPECT_GT(last, 0.9999);
}

TEST(FrontierFraction, MidpointKeepsLeadingDigitPrecision) {
  // Only the first digit distinguishes these two trails. At depth 12 the
  // separation (7^-11) is representable, so the order must be strict; at
  // depth 4000 it genuinely rounds to a tie, but the estimates must still
  // land on the boundary from the correct side instead of crossing it.
  for (std::size_t depth : {std::size_t{12}, std::size_t{4000}}) {
    std::vector<Choice> lo = uniform_trail(depth, 7, 6);
    lo[0] = Choice{ChoiceKind::kSchedule, 0, 2};
    std::vector<Choice> hi = uniform_trail(depth, 7, 0);
    hi[0] = Choice{ChoiceKind::kSchedule, 1, 2};
    EXPECT_LE(frontier_fraction_of(lo), 0.5) << depth;
    EXPECT_GE(frontier_fraction_of(hi), 0.5) << depth;
    if (depth == 12) {
      EXPECT_LT(frontier_fraction_of(lo), frontier_fraction_of(hi)) << depth;
    }
  }
}

TEST(FrontierFraction, MonotoneAcrossAdvanceOnAdversarialShapes) {
  // Drive Trail::advance() from several adversarial starting trails —
  // deep, max fan-out, mixed radices, long saturated tails that advance()
  // pops in bulk — and require the estimate never decreases and never
  // leaves [0, 1]. This is the engine's exact usage: it evaluates the raw
  // trail right after advance().
  struct Start {
    const char* label;
    std::vector<Choice> trail;
  };
  std::vector<Start> starts;
  starts.push_back({"deep binary", uniform_trail(5000, 2, 0)});
  starts.push_back({"deep wide", uniform_trail(2000, 65535, 65530)});
  {
    // Saturated tail: every digit below 10 is at its maximum, so one
    // advance() pops thousands of digits at once.
    std::vector<Choice> t = uniform_trail(3000, 3, 2);
    for (std::size_t i = 0; i < 10; ++i) t[i].chosen = 0;
    starts.push_back({"bulk pop", std::move(t)});
  }
  {
    support::Xorshift64 rng(0xF5u);
    std::vector<Choice> t;
    for (int i = 0; i < 4000; ++i) {
      auto num = static_cast<std::uint16_t>(2 + rng.next() % 65534);
      auto chosen = static_cast<std::uint16_t>(rng.next() % num);
      t.push_back(Choice{ChoiceKind::kReadsFrom, chosen, num});
    }
    starts.push_back({"random radices", std::move(t)});
  }

  for (Start& s : starts) {
    Trail trail;
    trail.restore(std::move(s.trail));
    double prev = frontier_fraction_of(trail.raw());
    ASSERT_GE(prev, 0.0) << s.label;
    ASSERT_LE(prev, 1.0) << s.label;
    for (int step = 0; step < 20000 && trail.advance(); ++step) {
      double f = frontier_fraction_of(trail.raw());
      ASSERT_GE(f, prev) << s.label << " step " << step
                         << ": estimate went backwards";
      ASSERT_LE(f, 1.0) << s.label << " step " << step;
      prev = f;
    }
  }
}

}  // namespace
}  // namespace cds::mc
