// Property-style parameterized litmus sweeps: the engine's admitted
// behavior must be a function of the memory orders exactly as C/C++11
// prescribes, across every order combination.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "mc/atomic.h"
#include "mc/engine.h"
#include "mc/var.h"

namespace cds::mc {
namespace {

struct MpParam {
  MemoryOrder store_order;
  MemoryOrder load_order;
};

std::string mp_name(const testing::TestParamInfo<MpParam>& info) {
  return std::string(to_string(info.param.store_order)) + "_" +
         to_string(info.param.load_order);
}

class MessagePassingSweep : public testing::TestWithParam<MpParam> {};

TEST_P(MessagePassingSweep, RaceIffNoSynchronization) {
  // Message passing: T1 writes plain data then stores a flag; T2 loads the
  // flag and, if set, reads the data. C/C++11: the data read races exactly
  // when the flag handoff is not a release-store/acquire-load pair.
  const MpParam p = GetParam();
  Engine e;
  auto stats = e.explore([&](Exec& x) {
    auto* data = x.make<Var<int>>(0, "data");
    auto* flag = x.make<Atomic<int>>(0, "flag");
    int t1 = x.spawn([&, data, flag] {
      data->write(1);
      flag->store(1, p.store_order);
    });
    int t2 = x.spawn([&, data, flag] {
      if (flag->load(p.load_order) == 1) (void)data->read();
    });
    x.join(t1);
    x.join(t2);
  });

  bool synchronizes = is_release(p.store_order) && is_acquire(p.load_order);
  if (synchronizes) {
    EXPECT_EQ(stats.builtin_violation_execs, 0u)
        << to_string(p.store_order) << "/" << to_string(p.load_order)
        << " must synchronize";
  } else {
    EXPECT_GT(stats.builtin_violation_execs, 0u)
        << to_string(p.store_order) << "/" << to_string(p.load_order)
        << " must admit the race";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOrderCombinations, MessagePassingSweep,
    testing::Values(MpParam{MemoryOrder::relaxed, MemoryOrder::relaxed},
                    MpParam{MemoryOrder::relaxed, MemoryOrder::acquire},
                    MpParam{MemoryOrder::relaxed, MemoryOrder::seq_cst},
                    MpParam{MemoryOrder::release, MemoryOrder::relaxed},
                    MpParam{MemoryOrder::release, MemoryOrder::acquire},
                    MpParam{MemoryOrder::release, MemoryOrder::seq_cst},
                    MpParam{MemoryOrder::seq_cst, MemoryOrder::relaxed},
                    MpParam{MemoryOrder::seq_cst, MemoryOrder::acquire},
                    MpParam{MemoryOrder::seq_cst, MemoryOrder::seq_cst}),
    mp_name);

class StoreBufferingSweep : public testing::TestWithParam<MemoryOrder> {};

TEST_P(StoreBufferingSweep, BothZeroIffWeakerThanSc) {
  // SB: r1 == r2 == 0 is forbidden exactly when every access is seq_cst.
  const MemoryOrder o = GetParam();
  int r1 = -1, r2 = -1;
  std::set<std::pair<int, int>> seen;
  struct L : ExecutionListener {
    int* r1;
    int* r2;
    std::set<std::pair<int, int>>* seen;
    bool on_execution_complete(Engine&) override {
      seen->insert({*r1, *r2});
      return true;
    }
  } l;
  l.r1 = &r1;
  l.r2 = &r2;
  l.seen = &seen;
  Engine e;
  e.set_listener(&l);
  e.explore([&](Exec& x) {
    auto* fx = x.make<Atomic<int>>(0, "x");
    auto* fy = x.make<Atomic<int>>(0, "y");
    int t1 = x.spawn([&, fx, fy] {
      fx->store(1, o);
      r1 = fy->load(o);
    });
    int t2 = x.spawn([&, fx, fy] {
      fy->store(1, o);
      r2 = fx->load(o);
    });
    x.join(t1);
    x.join(t2);
  });
  if (o == MemoryOrder::seq_cst) {
    EXPECT_EQ(seen.count({0, 0}), 0u);
  } else {
    EXPECT_EQ(seen.count({0, 0}), 1u) << to_string(o) << " admits 0/0";
  }
  // All four other outcomes are always possible.
  EXPECT_EQ(seen.count({1, 1}), 1u);
}

INSTANTIATE_TEST_SUITE_P(Orders, StoreBufferingSweep,
                         testing::Values(MemoryOrder::relaxed,
                                         MemoryOrder::acquire,
                                         MemoryOrder::release,
                                         MemoryOrder::seq_cst),
                         [](const testing::TestParamInfo<MemoryOrder>& i) {
                           return std::string(to_string(i.param));
                         });

class CoherenceSweep : public testing::TestWithParam<MemoryOrder> {};

TEST_P(CoherenceSweep, PerLocationCoherenceHoldsAtEveryOrder) {
  // CoRR / CoWR / CoRW hold at every order in C/C++11.
  const MemoryOrder o = GetParam();
  bool corr_violated = false, cowr_violated = false;
  int r1 = -1, r2 = -1, r3 = -1;
  struct L : ExecutionListener {
    int* r1;
    int* r2;
    int* r3;
    bool* corr;
    bool* cowr;
    bool on_execution_complete(Engine&) override {
      if (*r1 == 2 && *r2 == 1) *corr = true;  // read newer then older
      if (*r3 == 0) *cowr = true;              // read overwritten own store
      return true;
    }
  } l;
  l.r1 = &r1;
  l.r2 = &r2;
  l.r3 = &r3;
  l.corr = &corr_violated;
  l.cowr = &cowr_violated;
  Engine e;
  e.set_listener(&l);
  e.explore([&](Exec& x) {
    auto* fx = x.make<Atomic<int>>(0, "x");
    int t1 = x.spawn([&, fx] {
      fx->store(1, for_store(o));
      fx->store(2, for_store(o));
    });
    int t2 = x.spawn([&, fx] {
      r1 = fx->load(for_load(o));
      r2 = fx->load(for_load(o));
    });
    int t3 = x.spawn([&, fx] {
      fx->store(9, for_store(o));
      r3 = fx->load(for_load(o));  // must observe 9 or something mo-later
    });
    x.join(t1);
    x.join(t2);
    x.join(t3);
  });
  EXPECT_FALSE(corr_violated) << "CoRR must hold at " << to_string(o);
  EXPECT_FALSE(cowr_violated) << "CoWR must hold at " << to_string(o);
}

INSTANTIATE_TEST_SUITE_P(Orders, CoherenceSweep,
                         testing::Values(MemoryOrder::relaxed,
                                         MemoryOrder::acquire,
                                         MemoryOrder::release,
                                         MemoryOrder::seq_cst),
                         [](const testing::TestParamInfo<MemoryOrder>& i) {
                           return std::string(to_string(i.param));
                         });

class RmwSweep : public testing::TestWithParam<MemoryOrder> {};

TEST_P(RmwSweep, IncrementsNeverLostAtAnyOrder) {
  // RMW atomicity is order-independent in C/C++11.
  const MemoryOrder o = GetParam();
  std::set<int> finals;
  int r = -1;
  struct L : ExecutionListener {
    int* r;
    std::set<int>* v;
    bool on_execution_complete(Engine&) override {
      v->insert(*r);
      return true;
    }
  } l;
  l.r = &r;
  l.v = &finals;
  Engine e;
  e.set_listener(&l);
  e.explore([&](Exec& x) {
    auto* fx = x.make<Atomic<int>>(0, "x");
    int t1 = x.spawn([fx, o] { fx->fetch_add(1, o); });
    int t2 = x.spawn([fx, o] { fx->fetch_add(1, o); });
    int t3 = x.spawn([fx, o] { fx->fetch_add(1, o); });
    x.join(t1);
    x.join(t2);
    x.join(t3);
    r = fx->load(MemoryOrder::seq_cst);
  });
  EXPECT_EQ(finals, std::set<int>{3}) << "at order " << to_string(o);
}

INSTANTIATE_TEST_SUITE_P(Orders, RmwSweep,
                         testing::Values(MemoryOrder::relaxed,
                                         MemoryOrder::acq_rel,
                                         MemoryOrder::seq_cst),
                         [](const testing::TestParamInfo<MemoryOrder>& i) {
                           return std::string(to_string(i.param));
                         });

}  // namespace
}  // namespace cds::mc
