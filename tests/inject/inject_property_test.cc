// Property tests for the injection framework's memory-order lattice:
// weakened() walks strictly down to relaxed through per-kind legal forms,
// strengthen() walks strictly up to seq_cst, and the two directions are
// consistent.
#include <gtest/gtest.h>

#include <vector>

#include "inject/inject.h"
#include "mc/memory_order.h"

namespace cds {
namespace {

using inject::OpKind;
using inject::Site;
using mc::MemoryOrder;

constexpr OpKind kKinds[] = {OpKind::kLoad, OpKind::kStore, OpKind::kRmw,
                             OpKind::kFence};
constexpr MemoryOrder kOrders[] = {MemoryOrder::relaxed, MemoryOrder::acquire,
                                   MemoryOrder::release, MemoryOrder::acq_rel,
                                   MemoryOrder::seq_cst};

Site site_of(OpKind kind, MemoryOrder def) {
  return Site{0, "prop", "site", def, kind};
}

// Synchronization strength: every legal weakening step must strictly
// decrease it (strict descent => termination).
int rank(MemoryOrder o) {
  switch (o) {
    case MemoryOrder::relaxed: return 0;
    case MemoryOrder::acquire: return 1;
    case MemoryOrder::release: return 1;
    case MemoryOrder::acq_rel: return 2;
    case MemoryOrder::seq_cst: return 3;
  }
  return -1;
}

bool legal_for(OpKind kind, MemoryOrder o) {
  switch (kind) {
    case OpKind::kLoad:
      return !is_release(o) || o == MemoryOrder::seq_cst;
    case OpKind::kStore:
      return !is_acquire(o) || o == MemoryOrder::seq_cst;
    case OpKind::kRmw:
      return true;
    case OpKind::kFence:
      return o != MemoryOrder::relaxed;
  }
  return false;
}

TEST(InjectProperty, WeakenedIsLegalForEveryKind) {
  // Table-driven: the weakened form of any legal parameter is itself a
  // legal parameter for the same operation kind — no acquire-form stores,
  // no release-form loads, ever.
  for (OpKind kind : kKinds) {
    for (MemoryOrder def : kOrders) {
      if (!legal_for(kind, def)) continue;
      MemoryOrder w = site_of(kind, def).weakened();
      if (kind == OpKind::kFence && w == MemoryOrder::relaxed) {
        // The walk may weaken a release fence away entirely; a relaxed
        // fence is a no-op, which is the point of that injection.
        continue;
      }
      EXPECT_TRUE(legal_for(kind, w))
          << to_string(def) << " weakened to illegal " << to_string(w)
          << " for kind " << static_cast<int>(kind);
      if (kind == OpKind::kLoad) {
        EXPECT_FALSE(w == MemoryOrder::release || w == MemoryOrder::acq_rel);
      }
      if (kind == OpKind::kStore) {
        EXPECT_FALSE(w == MemoryOrder::acquire || w == MemoryOrder::acq_rel);
      }
    }
  }
}

TEST(InjectProperty, WeakeningDescendsStrictlyToRelaxed) {
  for (OpKind kind : kKinds) {
    for (MemoryOrder def : kOrders) {
      if (!legal_for(kind, def)) continue;
      MemoryOrder o = def;
      int steps = 0;
      while (true) {
        Site s = site_of(kind, o);
        MemoryOrder w = s.weakened();
        if (w == o) {
          EXPECT_FALSE(s.injectable());
          break;
        }
        EXPECT_TRUE(s.injectable());
        EXPECT_LT(rank(w), rank(o)) << "weakening must strictly descend";
        o = w;
        ASSERT_LE(++steps, 4) << "descent must terminate";
      }
      // Every chain bottoms out at relaxed (for fences that final step
      // weakens the fence away into a no-op).
      EXPECT_EQ(o, MemoryOrder::relaxed);
    }
  }
}

TEST(InjectProperty, StrengtheningAscendsStrictlyToSeqCst) {
  for (OpKind kind : kKinds) {
    for (MemoryOrder def : kOrders) {
      if (!legal_for(kind, def)) continue;
      MemoryOrder o = def;
      int steps = 0;
      while (o != MemoryOrder::seq_cst) {
        MemoryOrder s = inject::strengthen(kind, o);
        EXPECT_TRUE(legal_for(kind, s))
            << to_string(o) << " strengthened to illegal " << to_string(s);
        EXPECT_GT(rank(s), rank(o)) << "strengthening must strictly ascend";
        o = s;
        ASSERT_LE(++steps, 4) << "ascent must terminate";
      }
      EXPECT_EQ(inject::strengthen(kind, MemoryOrder::seq_cst),
                MemoryOrder::seq_cst)
          << "seq_cst is the fixpoint";
      EXPECT_FALSE(site_of(kind, MemoryOrder::seq_cst).strengthenable());
    }
  }
}

TEST(InjectProperty, StrengthenInvertsWeakenOneStep) {
  // Weakening one step from any synchronizing order, then strengthening,
  // never lands below the original (the walks are inverse up to the
  // acquire/release split collapsing into acq_rel).
  for (OpKind kind : kKinds) {
    for (MemoryOrder def : kOrders) {
      if (!legal_for(kind, def) || def == MemoryOrder::relaxed) continue;
      Site s = site_of(kind, def);
      MemoryOrder w = s.weakened();
      if (w == def) continue;
      MemoryOrder back = inject::strengthen(kind, w);
      EXPECT_GE(rank(back), rank(def) - (def == MemoryOrder::seq_cst ? 1 : 0))
          << "round trip lost strength: " << to_string(def) << " -> "
          << to_string(w) << " -> " << to_string(back);
    }
  }
}

}  // namespace
}  // namespace cds
