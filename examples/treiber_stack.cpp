// Writing a new data structure and its CDSSpec specification from scratch:
// a Treiber stack. This is the end-to-end workflow a user of the library
// follows — implement with mc::Atomic, annotate method boundaries and
// ordering points, declare the equivalent sequential data structure, and
// let the checker explore every C/C++11 behavior of the unit test.
#include <cstdio>

#include "harness/runner.h"
#include "mc/atomic.h"
#include "spec/annotations.h"
#include "spec/seqstate.h"
#include "spec/specification.h"

namespace {

using cds::mc::MemoryOrder;
using cds::spec::Ctx;
using cds::spec::IntList;

// 1. The specification: an equivalent sequential LIFO. pop may spuriously
//    report empty only when some justifying subhistory is also empty.
const cds::spec::Specification& treiber_spec() {
  static cds::spec::Specification* s = [] {
    auto* sp = new cds::spec::Specification("TreiberStack");
    sp->state<IntList>();
    sp->method("push").side_effect(
        [](Ctx& c) { c.st<IntList>().push_back(c.arg(0)); });
    sp->method("pop")
        .side_effect([](Ctx& c) {
          IntList& st = c.st<IntList>();
          c.s_ret = st.empty() ? -1 : st.back();
          if (c.s_ret != -1 && c.c_ret() != -1) st.pop_back();
        })
        .post([](Ctx& c) { return c.c_ret() == -1 || c.c_ret() == c.s_ret; })
        .justifying_post([](Ctx& c) {
          if (c.c_ret() == -1) return c.s_ret == -1;
          return true;
        });
    return sp;
  }();
  return *s;
}

// 2. The implementation, annotated.
class TreiberStack {
 public:
  TreiberStack() : top_(nullptr, "ts.top"), obj_(treiber_spec()) {}

  void push(int v) {
    cds::spec::Method m(obj_, "push", {v});
    Node* n = cds::mc::alloc<Node>(v);
    for (;;) {
      Node* t = top_.load(MemoryOrder::relaxed);
      n->next = t;
      if (top_.compare_exchange_strong(t, n, MemoryOrder::release,
                                       MemoryOrder::relaxed)) {
        m.op_define();  // the publishing CAS orders the push
        return;
      }
      cds::mc::yield();
    }
  }

  int pop() {
    cds::spec::Method m(obj_, "pop");
    for (;;) {
      Node* t = top_.load(MemoryOrder::acquire);
      m.op_clear_define();  // the top load of the last iteration
      if (t == nullptr) return static_cast<int>(m.ret(-1));
      if (top_.compare_exchange_strong(t, t->next, MemoryOrder::release,
                                       MemoryOrder::relaxed)) {
        return static_cast<int>(m.ret(t->value));
      }
      cds::mc::yield();
    }
  }

 private:
  struct Node {
    explicit Node(int v) : value(v) {}
    int value;
    Node* next = nullptr;  // immutable after publication
  };

  cds::mc::Atomic<Node*> top_;
  cds::spec::Object obj_;
};

}  // namespace

int main() {
  std::printf("Treiber stack under CDSSpec\n\n");

  // 3. A unit test: two pushers, one popper.
  auto r = cds::harness::run_with_spec([](cds::mc::Exec& x) {
    auto* s = x.make<TreiberStack>();
    int t1 = x.spawn([s] { s->push(1); });
    int t2 = x.spawn([s] {
      s->push(2);
      (void)s->pop();
    });
    x.join(t1);
    x.join(t2);
    (void)s->pop();
    (void)s->pop();
  });

  std::printf("explored %llu executions (%llu feasible), checked %llu "
              "sequential histories, %llu justification checks\n",
              static_cast<unsigned long long>(r.mc.executions),
              static_cast<unsigned long long>(r.mc.feasible),
              static_cast<unsigned long long>(r.spec.histories_checked),
              static_cast<unsigned long long>(r.spec.justification_checks));
  std::printf("violations: %llu\n",
              static_cast<unsigned long long>(r.mc.violations_total));
  if (!r.reports.empty()) std::printf("%s\n", r.reports[0].c_str());
  return r.mc.violations_total == 0 ? 0 : 1;
}
