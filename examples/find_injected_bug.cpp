// Bug hunting with the injection framework (Section 6.4.2 workflow):
// weaken every memory-order parameter of the Michael-Scott queue, one per
// trial, and show how each weakening is detected — with the full
// diagnostic report for one of them.
#include <cstdio>

#include "ds/msqueue.h"
#include "ds/suite.h"
#include "harness/runner.h"
#include "inject/inject.h"

int main() {
  cds::ds::register_all_benchmarks();
  const auto* b = cds::harness::find_benchmark("ms-queue");
  if (b == nullptr) return 1;

  cds::harness::RunOptions opts;
  opts.engine.stop_on_first_violation = true;

  std::printf("M&S queue: weakening each memory-order parameter in turn\n\n");
  std::string sample_report;
  for (const auto& site : cds::inject::sites_for("ms-queue")) {
    if (!site.injectable()) continue;
    cds::inject::inject(site.id);
    auto r = cds::harness::run_benchmark(*b, opts);
    cds::inject::clear_injection();

    const char* how = "UNDETECTED (candidate overly strong parameter)";
    if (r.detected_builtin()) how = "built-in check (race/uninitialized)";
    else if (r.detected_admissibility()) how = "admissibility warning";
    else if (r.detected_assertion()) how = "specification assertion";
    std::printf("  %-28s %-8s -> %-8s : %s\n", site.name.c_str(),
                to_string(site.def), to_string(site.weakened()), how);
    if (sample_report.empty() && r.detected_assertion() && !r.reports.empty()) {
      sample_report = r.reports[0];
    }
  }
  if (!sample_report.empty()) {
    std::printf("\nSample diagnostic report:\n%s\n", sample_report.c_str());
  }
  return 0;
}
