// Quickstart: specification-checking the paper's blocking queue
// (Figures 2, 3, 4 and 6).
//
//   $ ./examples/quickstart
//
// Walks through the paper's motivating story:
//   1. The queue passes its non-deterministic specification, including the
//      non-linearizable Figure 3 execution (both dequeues spuriously
//      empty) — that behavior is *justified*.
//   2. Under the deterministic specification with admissibility rules, the
//      same usage pattern is flagged as inadmissible.
//   3. A mis-synchronized variant is caught with a diagnostic report.
#include <cstdio>

#include "ds/blocking_queue.h"
#include "harness/runner.h"

using cds::ds::BlockingQueue;

int main() {
  std::printf("== 1. Correct queue, non-deterministic spec (Figure 6)\n");
  {
    auto r = cds::harness::run_with_spec(cds::ds::blocking_queue_test_fig3);
    std::printf("   explored %llu executions (%llu feasible), "
                "%llu sequential histories checked\n",
                static_cast<unsigned long long>(r.mc.executions),
                static_cast<unsigned long long>(r.mc.feasible),
                static_cast<unsigned long long>(r.spec.histories_checked));
    std::printf("   violations: %llu  (the Figure 3 execution in which both "
                "dequeues return -1\n    is admitted: each deq is justified "
                "by an empty justifying subhistory)\n\n",
                static_cast<unsigned long long>(r.mc.violations_total));
  }

  std::printf("== 2. Same usage, deterministic spec + admissibility\n");
  {
    auto r = cds::harness::run_with_spec([](cds::mc::Exec& x) {
      auto* qx = x.make<BlockingQueue>(BlockingQueue::deterministic_specification());
      auto* qy = x.make<BlockingQueue>(BlockingQueue::deterministic_specification());
      int t1 = x.spawn([&] {
        qx->enq(1);
        (void)qy->deq();
      });
      int t2 = x.spawn([&] {
        qy->enq(1);
        (void)qx->deq();
      });
      x.join(t1);
      x.join(t2);
    });
    std::printf("   inadmissible executions: %llu (the deterministic spec "
                "requires a deq returning -1\n    to be ordered with every "
                "enq; this usage pattern does not order them)\n",
                static_cast<unsigned long long>(r.spec.inadmissible_execs));
    if (!r.reports.empty()) {
      std::printf("   first warning:\n     %.240s\n\n", r.reports[0].c_str());
    }
  }

  std::printf("== 3. Broken queue (relaxed publish, the Figure 1 bug)\n");
  {
    struct WeakNode {
      WeakNode() : data("wq.data"), next(nullptr, "wq.next") {}
      cds::mc::Atomic<int> data;
      cds::mc::Atomic<WeakNode*> next;
    };
    struct WeakQueue {
      WeakQueue() : tail("wq.tail"), head("wq.head"),
                    obj(BlockingQueue::specification()) {
        auto* dummy = cds::mc::alloc<WeakNode>();
        tail.init(dummy);
        head.init(dummy);
      }
      void enq(int val) {
        cds::spec::Method m(obj, "enq", {val});
        auto* n = cds::mc::alloc<WeakNode>();
        n->data.store(val, cds::mc::MemoryOrder::relaxed);
        for (;;) {
          WeakNode* t = tail.load(cds::mc::MemoryOrder::acquire);
          WeakNode* old = nullptr;
          if (t->next.compare_exchange_strong(old, n,
                                              cds::mc::MemoryOrder::relaxed,
                                              cds::mc::MemoryOrder::relaxed)) {
            m.op_define();
            tail.store(n, cds::mc::MemoryOrder::release);
            return;
          }
          cds::mc::yield();
        }
      }
      int deq() {
        cds::spec::Method m(obj, "deq");
        for (;;) {
          WeakNode* h = head.load(cds::mc::MemoryOrder::acquire);
          WeakNode* n = h->next.load(cds::mc::MemoryOrder::acquire);
          m.op_clear_define();
          if (n == nullptr) return static_cast<int>(m.ret(-1));
          if (head.compare_exchange_strong(h, n, cds::mc::MemoryOrder::release,
                                           cds::mc::MemoryOrder::relaxed)) {
            return static_cast<int>(
                m.ret(n->data.load(cds::mc::MemoryOrder::relaxed)));
          }
          cds::mc::yield();
        }
      }
      cds::mc::Atomic<WeakNode*> tail;
      cds::mc::Atomic<WeakNode*> head;
      cds::spec::Object obj;
    };

    cds::harness::RunOptions opts;
    opts.engine.stop_on_first_violation = true;
    auto r = cds::harness::run_with_spec(
        [](cds::mc::Exec& x) {
          auto* q = x.make<WeakQueue>();
          int t1 = x.spawn([q] { q->enq(42); });
          int t2 = x.spawn([q] { (void)q->deq(); });
          x.join(t1);
          x.join(t2);
        },
        opts);
    std::printf("   detected: builtin=%s assertion=%s\n",
                r.detected_builtin() ? "yes" : "no",
                r.detected_assertion() ? "yes" : "no");
    if (!r.reports.empty()) std::printf("%s\n", r.reports[0].c_str());
    for (const auto& v : r.violations) {
      std::printf("   [%s] %s\n", to_string(v.kind), v.detail.c_str());
    }
  }
  return 0;
}
