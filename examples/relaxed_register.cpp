// Section 2.2's C/C++11 atomic register with relaxed operations: the
// simplest object whose correct behavior is irreducibly non-deterministic.
// Shows how CDSSpec constrains the non-determinism — a read may return the
// most recent write of a justifying subhistory or a concurrent write, but
// never a value overwritten before the read's happens-before frontier.
#include <cstdio>

#include "ds/register.h"
#include "harness/runner.h"

int main() {
  std::printf("== Relaxed register: concurrent writer/reader\n");
  {
    auto r = cds::harness::run_with_spec(cds::ds::register_test_wr);
    std::printf("   %llu executions, violations: %llu (stale reads are "
                "justified by the\n    empty subhistory or the concurrent "
                "write)\n\n",
                static_cast<unsigned long long>(r.mc.executions),
                static_cast<unsigned long long>(r.mc.violations_total));
  }

  std::printf("== After a join, the write happens-before the read\n");
  {
    auto r = cds::harness::run_with_spec(cds::ds::register_test_hb_chain);
    std::printf("   %llu executions, violations: %llu (the read's only "
                "justifying subhistory\n    contains the write, so 7 is the "
                "only admissible result)\n\n",
                static_cast<unsigned long long>(r.mc.executions),
                static_cast<unsigned long long>(r.mc.violations_total));
  }

  std::printf("== A register that lies: returns 0 despite an hb-ordered write\n");
  {
    cds::harness::RunOptions opts;
    opts.engine.stop_on_first_violation = true;
    auto r = cds::harness::run_with_spec(
        [](cds::mc::Exec& x) {
          // Scripted calls on one object: a write published before a join,
          // then a read that *claims* to have seen the initial value.
          auto* obj = x.make<cds::spec::Object>(
              cds::ds::RelaxedRegister::specification());
          auto* cell = x.make<cds::mc::Atomic<int>>(0, "cell");
          int t1 = x.spawn([obj, cell] {
            cds::spec::Method m(*obj, "write", {7});
            cell->store(7, cds::mc::MemoryOrder::relaxed);
            m.op_define();
            m.ret(0);
          });
          x.join(t1);
          cds::spec::Method m(*obj, "read");
          (void)cell->load(cds::mc::MemoryOrder::relaxed);
          m.op_define();
          m.ret(0);  // stale despite the hb-ordered write: unjustifiable
        },
        opts);
    std::printf("   violations: %llu (expected: the fabricated stale read "
                "is rejected)\n",
                static_cast<unsigned long long>(r.mc.violations_total));
    if (!r.reports.empty()) std::printf("%s\n", r.reports[0].c_str());
  }
  return 0;
}
