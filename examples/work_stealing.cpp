// Domain scenario: a miniature fork-join work-stealing pool — the workload
// the paper's introduction motivates concurrent deques with. An owner
// produces task ids into a Chase-Lev deque and drains its own end while a
// worker steals from the other end; completions are recorded through a
// Michael-Scott queue shared by both. Both structures are checked against
// their specifications in every explored execution, and the harness
// additionally verifies end-to-end task conservation: every pushed task is
// completed exactly once, in every C/C++11-admissible execution.
#include <cstdio>

#include "ds/chaselev_deque.h"
#include "ds/msqueue.h"
#include "harness/runner.h"
#include "mc/engine.h"

namespace {

struct Conservation : cds::mc::ExecutionListener {
  int* completed_mask;
  bool ok = true;
  std::uint64_t checked = 0;

  bool on_execution_complete(cds::mc::Engine&) override {
    ++checked;
    if (*completed_mask != (1 | 2 | 4)) ok = false;
    return ok;  // stop on the first conservation failure
  }
};

}  // namespace

int main() {
  int completed_mask = 0;

  // Composing two structures multiplies both the exploration and the
  // per-execution history enumeration (the completion queue sees up to a
  // dozen calls); bound the demo — the per-structure suites explore
  // exhaustively.
  cds::mc::Config cfg;
  cfg.max_executions = 60000;
  cds::spec::SpecChecker::Options copts;
  copts.max_histories = 64;
  copts.sampled_histories = 16;
  copts.max_subhistories = 64;
  cds::mc::Engine engine(cfg);
  cds::spec::SpecChecker checker(copts);
  checker.attach(engine);

  // The engine owns the listener slot; chain conservation checking through
  // the checker by running it afterwards per execution.
  struct Both : cds::mc::ExecutionListener {
    cds::spec::SpecChecker* checker;
    Conservation* cons;
    void on_execution_begin(cds::mc::Engine& e) override {
      checker->on_execution_begin(e);
    }
    bool on_execution_complete(cds::mc::Engine& e) override {
      bool a = checker->on_execution_complete(e);
      bool b = cons->on_execution_complete(e);
      return a && b;
    }
  } both;
  Conservation cons;
  cons.completed_mask = &completed_mask;
  both.checker = &checker;
  both.cons = &cons;
  engine.set_listener(&both);

  auto stats = engine.explore([&](cds::mc::Exec& x) {
    completed_mask = 0;
    auto* deque = x.make<cds::ds::ChaseLevDeque>(
        cds::ds::ChaseLevDeque::Variant::kCorrect, false, 4u);
    auto* done = x.make<cds::ds::MSQueue>();

    int worker = x.spawn([&] {
      // The thief: two steal attempts.
      for (int attempts = 0; attempts < 2; ++attempts) {
        int t = deque->steal();
        if (t > 0) done->enq(t);
        if (t == cds::ds::ChaseLevDeque::kEmpty) break;
      }
    });

    // The owner: fork three tasks, then drain its own end.
    deque->push(1);
    deque->push(2);
    deque->push(3);
    for (;;) {
      int t = deque->take();
      if (t == cds::ds::ChaseLevDeque::kEmpty) break;
      done->enq(t);
    }
    x.join(worker);

    // Drain the completion queue and account for every task.
    for (;;) {
      int t = done->deq();
      if (t == -1) break;
      completed_mask |= 1 << (t - 1);
    }
  });

  checker.detach();
  std::printf("work-stealing pool: %llu executions explored%s, %llu checked\n",
              static_cast<unsigned long long>(stats.executions),
              stats.hit_execution_cap ? " (capped)" : "",
              static_cast<unsigned long long>(cons.checked));
  std::printf("spec violations: %llu\n",
              static_cast<unsigned long long>(stats.violations_total));
  std::printf("task conservation (each task completed exactly once): %s\n",
              cons.ok ? "HOLDS in every execution" : "VIOLATED");
  if (!checker.reports().empty()) {
    std::printf("%s\n", checker.reports()[0].c_str());
  }
  return (stats.violations_total == 0 && cons.ok) ? 0 : 1;
}
