#include "fiber/fiber.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace cds::fiber {

namespace {
// makecontext cannot portably pass pointer arguments, so the fiber being
// started is handed to the trampoline through a file-local slot. The whole
// checker runs on one OS thread, so this cannot race.
Fiber* g_starting = nullptr;
void (*g_fallthrough)(Fiber&) = nullptr;
}  // namespace

void Fiber::set_fallthrough_handler(void (*handler)(Fiber&)) {
  g_fallthrough = handler;
}

void Fiber::reset(std::function<void()> entry) {
  assert(!native_);
  if (!stack_) stack_ = std::make_unique<char[]>(kStackSize);
  entry_ = std::move(entry);
  started_ = false;
  finished_ = false;
  armed_ = true;
  getcontext(&ctx_);
  ctx_.uc_stack.ss_sp = stack_.get();
  ctx_.uc_stack.ss_size = kStackSize;
  ctx_.uc_link = nullptr;  // fibers always switch out explicitly
  makecontext(&ctx_, &Fiber::trampoline, 0);
}

void Fiber::trampoline() {
  Fiber* self = g_starting;
  g_starting = nullptr;
  self->entry_();
  // Entry wrappers must mark_finished() and switch back to the scheduler;
  // falling off the end of a fiber would resume an undefined context. The
  // installed handler can recover by switching away itself (it must not
  // return here).
  if (g_fallthrough != nullptr) g_fallthrough(*self);
  std::fprintf(stderr, "cds::fiber: entry wrapper returned without switching out\n");
  std::abort();
}

void Fiber::switch_to(Fiber& from) {
  assert(armed_ && !finished_ && this != &from);
  if (!native_ && !started_) {
    started_ = true;
    g_starting = this;
  }
  swapcontext(&from.ctx_, &ctx_);
}

}  // namespace cds::fiber
