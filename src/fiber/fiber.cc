#include "fiber/fiber.h"

#include <sys/mman.h>
#include <unistd.h>

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace cds::fiber {

namespace {
// makecontext cannot portably pass pointer arguments, so the fiber being
// started is handed to the trampoline through a file-local slot. The whole
// checker runs on one OS thread, so this cannot race.
Fiber* g_starting = nullptr;
void (*g_fallthrough)(Fiber&) = nullptr;

std::size_t round_up_to_page(std::size_t n) {
  long page = ::sysconf(_SC_PAGESIZE);
  auto p = page > 0 ? static_cast<std::size_t>(page) : std::size_t{4096};
  return (n + p - 1) / p * p;
}
}  // namespace

void Fiber::set_fallthrough_handler(void (*handler)(Fiber&)) {
  g_fallthrough = handler;
}

Fiber::~Fiber() {
  if (map_ != nullptr) ::munmap(map_, map_bytes_);
}

void Fiber::allocate_stack() {
  guard_bytes_ = round_up_to_page(kGuardSize);
  map_bytes_ = guard_bytes_ + round_up_to_page(kStackSize);
  void* m = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (m != MAP_FAILED && ::mprotect(m, guard_bytes_, PROT_NONE) == 0) {
    map_ = static_cast<char*>(m);
    return;
  }
  if (m != MAP_FAILED) ::munmap(m, map_bytes_);
  map_ = nullptr;
  map_bytes_ = 0;
  guard_bytes_ = 0;
  heap_stack_ = std::make_unique<char[]>(kStackSize);
}

void Fiber::reset(std::function<void()> entry) {
  assert(!native_);
  if (map_ == nullptr && !heap_stack_) allocate_stack();
  entry_ = std::move(entry);
  started_ = false;
  finished_ = false;
  armed_ = true;
  getcontext(&ctx_);
  if (map_ != nullptr) {
    ctx_.uc_stack.ss_sp = map_ + guard_bytes_;
    ctx_.uc_stack.ss_size = map_bytes_ - guard_bytes_;
  } else {
    ctx_.uc_stack.ss_sp = heap_stack_.get();
    ctx_.uc_stack.ss_size = kStackSize;
  }
  ctx_.uc_link = nullptr;  // fibers always switch out explicitly
  makecontext(&ctx_, &Fiber::trampoline, 0);
}

bool Fiber::guard_contains(const void* p) const {
  if (map_ == nullptr) return false;
  const char* c = static_cast<const char*>(p);
  return c >= map_ && c < map_ + guard_bytes_;
}

bool Fiber::stack_contains(const void* p) const {
  const char* c = static_cast<const char*>(p);
  if (map_ != nullptr) {
    return c >= map_ + guard_bytes_ && c < map_ + map_bytes_;
  }
  return heap_stack_ && c >= heap_stack_.get() &&
         c < heap_stack_.get() + kStackSize;
}

void Fiber::trampoline() {
  Fiber* self = g_starting;
  g_starting = nullptr;
  self->entry_();
  // Entry wrappers must mark_finished() and switch back to the scheduler;
  // falling off the end of a fiber would resume an undefined context. The
  // installed handler can recover by switching away itself (it must not
  // return here).
  if (g_fallthrough != nullptr) g_fallthrough(*self);
  std::fprintf(stderr, "cds::fiber: entry wrapper returned without switching out\n");
  std::abort();
}

void Fiber::switch_to(Fiber& from) {
  assert(armed_ && !finished_ && this != &from);
  if (!native_ && !started_) {
    started_ = true;
    g_starting = this;
  }
  swapcontext(&from.ctx_, &ctx_);
}

}  // namespace cds::fiber
