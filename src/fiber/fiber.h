// Cooperative fibers built on ucontext.
//
// The model checker needs full control over thread interleaving: every
// modeled thread runs as a fiber that yields to the scheduler at each
// visible operation. This mirrors CDSChecker's user-level thread library.
// Everything runs on a single OS thread, so no locking is needed anywhere
// in the checker.
//
// Protocol: the engine owns a "native" fiber wrapping the OS thread's own
// context plus one fiber per modeled thread. All switches are
// scheduler <-> thread; a modeled thread's entry wrapper must switch back
// to the scheduler (after calling mark_finished()) instead of returning.
//
// Stacks are mmap'd with a PROT_NONE guard region below them, so a test
// body that overflows its fiber stack faults deterministically in the
// guard instead of silently corrupting a neighboring allocation; the
// engine's crash containment turns that fault into a diagnosed violation
// (see guard_contains()). When mmap is unavailable the stack falls back to
// a plain heap allocation without a guard.
#ifndef CDS_FIBER_FIBER_H
#define CDS_FIBER_FIBER_H

#include <ucontext.h>

#include <cstddef>
#include <functional>
#include <memory>

namespace cds::fiber {

class Fiber {
 public:
  static constexpr std::size_t kStackSize = 256 * 1024;
  // Rounded up to the page size at allocation time.
  static constexpr std::size_t kGuardSize = 16 * 1024;

  Fiber() = default;
  ~Fiber();
  // Not movable: glibc's ucontext_t stores an internal self-pointer
  // (uc_mcontext.fpregs aims into the struct), so a Fiber must stay at a
  // stable address once reset() has run. Hold fibers by unique_ptr.
  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;
  Fiber(Fiber&&) = delete;
  Fiber& operator=(Fiber&&) = delete;

  // (Re)arms the fiber with an entry function. The stack is allocated once
  // and reused across executions.
  void reset(std::function<void()> entry);

  // Switches from `from` (which must be the currently running fiber) into
  // this fiber. Returns when some fiber later switches back into `from`.
  void switch_to(Fiber& from);

  // The entry wrapper calls this right before its final switch out.
  void mark_finished() { finished_ = true; }

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] bool armed() const { return armed_; }

  // True iff `p` falls inside this fiber's PROT_NONE stack guard — i.e. a
  // fault at `p` is this fiber's stack overflowing. Always false for
  // guard-less (heap-fallback) stacks.
  [[nodiscard]] bool guard_contains(const void* p) const;
  // True iff `p` is inside the usable stack itself.
  [[nodiscard]] bool stack_contains(const void* p) const;

  // Wraps the calling OS thread's own context (no stack/entry of its own).
  void init_native() {
    native_ = true;
    armed_ = true;
  }

  // Invoked on the offending fiber when an entry wrapper returns instead
  // of switching out. The handler must not return: it should mark the
  // fiber finished and switch away (the engine installs one that records
  // the error and abandons the execution). Without a handler the process
  // aborts, as a returned fiber has no context to resume.
  static void set_fallthrough_handler(void (*handler)(Fiber&));

 private:
  static void trampoline();
  void allocate_stack();

  ucontext_t ctx_{};
  // mmap'd region: [map_, map_ + guard_bytes_) is the PROT_NONE guard,
  // [map_ + guard_bytes_, map_ + map_bytes_) the usable stack (grows down
  // toward the guard). Null when the heap fallback is in use.
  char* map_ = nullptr;
  std::size_t map_bytes_ = 0;
  std::size_t guard_bytes_ = 0;
  std::unique_ptr<char[]> heap_stack_;  // fallback when mmap fails
  std::function<void()> entry_;
  bool started_ = false;
  bool finished_ = false;
  bool armed_ = false;
  bool native_ = false;
};

}  // namespace cds::fiber

#endif  // CDS_FIBER_FIBER_H
