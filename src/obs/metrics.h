// Observability registry: zero-dependency counters / gauges / timers /
// power-of-two histograms for the exploration pipeline.
//
// Design rules:
//  - The hot path is a single add through a cached pointer: callers look
//    up `Counter*` once (registration is a map insert) and then bump it
//    with `c->add()`, which compiles to one memory add. No atomics — the
//    engine is single-threaded per process; cross-process aggregation
//    happens via the shard wire format (render_wire/parse_wire_line).
//  - Metric kinds encode merge semantics. Counters and histograms must be
//    *schedule-independent* (pure functions of the explored execution
//    set): they merge by summation and the sharded merge of an exhaustive
//    run is bit-identical to a serial run. Wall-clock and topology-
//    dependent quantities (per-worker throughput, peak footprints, probe
//    counts) go in timers and gauges, which merge by sum / max and are
//    excluded from that determinism contract.
//  - Snapshots are deterministic: names are kept sorted (std::map), so
//    to_json() / render_wire() emit a canonical byte stream for equal
//    registry contents.
#ifndef CDS_OBS_METRICS_H
#define CDS_OBS_METRICS_H

#include <array>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace cds::obs {

struct Counter {
  std::uint64_t value = 0;
  void add(std::uint64_t n = 1) { value += n; }
};

// Merge-by-max scalar (peaks, sizes, topology facts).
struct Gauge {
  std::uint64_t value = 0;
  void set(std::uint64_t v) { value = v; }
  void set_max(std::uint64_t v) {
    if (v > value) value = v;
  }
};

// Accumulated wall-clock nanoseconds + sample count.
struct Timer {
  std::uint64_t total_ns = 0;
  std::uint64_t count = 0;
  void add_ns(std::uint64_t ns) {
    total_ns += ns;
    ++count;
  }
  [[nodiscard]] double total_seconds() const {
    return static_cast<double>(total_ns) * 1e-9;
  }
};

// Power-of-two histogram: bucket 0 holds value 0, bucket k (k >= 1) holds
// values in [2^(k-1), 2^k). 32 buckets cover the full uint32 range and
// beyond (the last bucket absorbs the tail).
struct Histogram {
  static constexpr std::size_t kBuckets = 32;
  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t samples = 0;

  static std::size_t bucket_of(std::uint64_t v) {
    if (v == 0) return 0;
    std::size_t b = 1;
    while (v > 1 && b + 1 < kBuckets) {
      v >>= 1;
      ++b;
    }
    return b;
  }
  void record(std::uint64_t v) {
    ++buckets[bucket_of(v)];
    ++samples;
  }
};

class Registry {
 public:
  // Lookup-or-create. References are stable for the registry's lifetime
  // (std::map nodes never move), so callers cache the pointer once and
  // bump through it on the hot path.
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Timer& timer(const std::string& name) { return timers_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  [[nodiscard]] const std::map<std::string, Counter>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Timer>& timers() const {
    return timers_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value;
  }

  // Counters/histograms/timers sum, gauges take the max. Merging is
  // commutative and associative for every kind, so shard merge order
  // cannot perturb the snapshot.
  void merge(const Registry& other) {
    for (const auto& [name, c] : other.counters_) counters_[name].value += c.value;
    for (const auto& [name, g] : other.gauges_) gauges_[name].set_max(g.value);
    for (const auto& [name, t] : other.timers_) {
      Timer& mine = timers_[name];
      mine.total_ns += t.total_ns;
      mine.count += t.count;
    }
    for (const auto& [name, h] : other.histograms_) {
      Histogram& mine = histograms_[name];
      for (std::size_t i = 0; i < Histogram::kBuckets; ++i)
        mine.buckets[i] += h.buckets[i];
      mine.samples += h.samples;
    }
  }

  void clear() {
    counters_.clear();
    gauges_.clear();
    timers_.clear();
    histograms_.clear();
  }

  // Canonical JSON snapshot ("cdsspec-metrics-v1"): four sections keyed by
  // sorted metric name. Histogram buckets are emitted with trailing zero
  // buckets trimmed. Two registries with equal contents render the same
  // bytes regardless of registration order.
  [[nodiscard]] std::string to_json() const {
    std::string out;
    out += "{\n  \"schema\": \"cdsspec-metrics-v1\",\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, c] : counters_) {
      append_key(&out, &first, name);
      append_u64(&out, c.value);
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"gauges\": {";
    first = true;
    for (const auto& [name, g] : gauges_) {
      append_key(&out, &first, name);
      append_u64(&out, g.value);
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"timers_ns\": {";
    first = true;
    for (const auto& [name, t] : timers_) {
      append_key(&out, &first, name);
      out += "{\"total_ns\": ";
      append_u64(&out, t.total_ns);
      out += ", \"count\": ";
      append_u64(&out, t.count);
      out += "}";
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"histograms\": {";
    first = true;
    for (const auto& [name, h] : histograms_) {
      append_key(&out, &first, name);
      out += "{\"samples\": ";
      append_u64(&out, h.samples);
      out += ", \"buckets\": [";
      std::size_t last = Histogram::kBuckets;
      while (last > 0 && h.buckets[last - 1] == 0) --last;
      for (std::size_t i = 0; i < last; ++i) {
        if (i) out += ", ";
        append_u64(&out, h.buckets[i]);
      }
      out += "]}";
    }
    out += first ? "}\n" : "\n  }\n";
    out += "}\n";
    return out;
  }

  // Line-oriented wire form for the shard-result protocol: one metric per
  // line, `c <name> <v>` / `g <name> <v>` / `t <name> <total_ns> <count>` /
  // `h <name> <samples> <b0> <b1> ...` (trailing zero buckets trimmed).
  // Metric names never contain whitespace.
  [[nodiscard]] std::vector<std::string> render_wire() const {
    std::vector<std::string> lines;
    char buf[64];
    for (const auto& [name, c] : counters_) {
      std::snprintf(buf, sizeof buf, " %llu",
                    static_cast<unsigned long long>(c.value));
      lines.push_back("c " + name + buf);
    }
    for (const auto& [name, g] : gauges_) {
      std::snprintf(buf, sizeof buf, " %llu",
                    static_cast<unsigned long long>(g.value));
      lines.push_back("g " + name + buf);
    }
    for (const auto& [name, t] : timers_) {
      std::snprintf(buf, sizeof buf, " %llu %llu",
                    static_cast<unsigned long long>(t.total_ns),
                    static_cast<unsigned long long>(t.count));
      lines.push_back("t " + name + buf);
    }
    for (const auto& [name, h] : histograms_) {
      std::string line = "h " + name;
      std::snprintf(buf, sizeof buf, " %llu",
                    static_cast<unsigned long long>(h.samples));
      line += buf;
      std::size_t last = Histogram::kBuckets;
      while (last > 0 && h.buckets[last - 1] == 0) --last;
      for (std::size_t i = 0; i < last; ++i) {
        std::snprintf(buf, sizeof buf, " %llu",
                      static_cast<unsigned long long>(h.buckets[i]));
        line += buf;
      }
      lines.push_back(line);
    }
    return lines;
  }

  // Parses one render_wire() line into this registry (overwriting any
  // existing metric of that name). Returns false on malformed input with
  // the reason (and the offending token's position) in *err; a rejected
  // line never modifies the registry — every value is validated into
  // locals before anything is committed, so an adversarial line cannot
  // leave a half-written histogram or timer behind.
  bool parse_wire_line(const std::string& line, std::string* err) {
    std::vector<std::string> tok = split_ws(line);
    auto fail = [&](const char* why, std::size_t token_index) {
      if (err) {
        *err = std::string(why) + " at token " + std::to_string(token_index) +
               ": '" + line + "'";
      }
      return false;
    };
    if (tok.size() < 3) return fail("short metric line", tok.size());
    std::uint64_t v0 = 0;
    if (!parse_u64(tok[2], &v0)) return fail("bad metric value", 2);
    if (tok[0] == "c" && tok.size() == 3) {
      counters_[tok[1]].value = v0;
    } else if (tok[0] == "g" && tok.size() == 3) {
      gauges_[tok[1]].value = v0;
    } else if (tok[0] == "t" && tok.size() == 4) {
      std::uint64_t cnt = 0;
      if (!parse_u64(tok[3], &cnt)) return fail("bad timer count", 3);
      Timer& t = timers_[tok[1]];
      t.total_ns = v0;
      t.count = cnt;
    } else if (tok[0] == "h") {
      if (tok.size() - 3 > Histogram::kBuckets) {
        return fail("too many buckets", 3 + Histogram::kBuckets);
      }
      Histogram h{};
      h.samples = v0;
      for (std::size_t i = 3; i < tok.size(); ++i) {
        if (!parse_u64(tok[i], &h.buckets[i - 3])) return fail("bad bucket", i);
      }
      histograms_[tok[1]] = h;
    } else {
      return fail("unknown metric kind", 0);
    }
    return true;
  }

 private:
  static void append_u64(std::string* out, std::uint64_t v) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
    *out += buf;
  }
  static void append_key(std::string* out, bool* first, const std::string& k) {
    *out += *first ? "\n    \"" : ",\n    \"";
    *first = false;
    *out += k;
    *out += "\": ";
  }
  static std::vector<std::string> split_ws(const std::string& s) {
    std::vector<std::string> tok;
    std::size_t i = 0;
    while (i < s.size()) {
      while (i < s.size() && s[i] == ' ') ++i;
      std::size_t j = i;
      while (j < s.size() && s[j] != ' ') ++j;
      if (j > i) tok.push_back(s.substr(i, j - i));
      i = j;
    }
    return tok;
  }
  static bool parse_u64(const std::string& s, std::uint64_t* out) {
    if (s.empty()) return false;
    std::uint64_t v = 0;
    for (char ch : s) {
      if (ch < '0' || ch > '9') return false;
      v = v * 10 + static_cast<std::uint64_t>(ch - '0');
    }
    *out = v;
    return true;
  }

  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Timer> timers_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace cds::obs

#endif  // CDS_OBS_METRICS_H
