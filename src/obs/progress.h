// Progress heartbeat: throttled one-line status reports to stderr while
// an exploration runs. Header-only and engine-agnostic — the engine hands
// over plain numbers; this layer only rate-limits and formats.
//
// The meter is constructed only when `--progress` is active, so the
// disabled hot path in the engine is a single null-pointer branch.
#ifndef CDS_OBS_PROGRESS_H
#define CDS_OBS_PROGRESS_H

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>

namespace cds::obs {

class ProgressMeter {
 public:
  ProgressMeter(double interval_seconds, std::string label)
      : interval_(interval_seconds <= 0.0 ? 1.0 : interval_seconds),
        label_(std::move(label)),
        start_(Clock::now()),
        last_beat_(start_) {}

  // Called between executions. Emits at most one line per interval:
  //   [progress] <label> <phase> execs=N rate=R/s depth=D
  //       frontier=F% budget_left=Bs
  // `frontier` is the estimated fraction of the DFS tree already fully
  // explored (from the trail's chosen/num digits); pass a negative value
  // to omit it (sampling phase). Pass a negative `budget_left_seconds`
  // when no wall budget is armed.
  void maybe_beat(const char* phase, std::uint64_t executions,
                  std::uint64_t trail_depth, double frontier,
                  double budget_left_seconds) {
    Clock::time_point now = Clock::now();
    if (seconds_between(last_beat_, now) < interval_) return;
    last_beat_ = now;
    double elapsed = seconds_between(start_, now);
    double rate = elapsed > 0.0 ? static_cast<double>(executions) / elapsed : 0.0;
    char line[256];
    int n = std::snprintf(
        line, sizeof line, "[progress] %s %s execs=%llu rate=%.0f/s depth=%llu",
        label_.empty() ? "-" : label_.c_str(), phase,
        static_cast<unsigned long long>(executions), rate,
        static_cast<unsigned long long>(trail_depth));
    if (frontier >= 0.0 && n > 0 && static_cast<std::size_t>(n) < sizeof line) {
      n += std::snprintf(line + n, sizeof line - static_cast<std::size_t>(n),
                         " frontier=%.2f%%", frontier * 100.0);
    }
    if (budget_left_seconds >= 0.0 && n > 0 &&
        static_cast<std::size_t>(n) < sizeof line) {
      n += std::snprintf(line + n, sizeof line - static_cast<std::size_t>(n),
                         " budget_left=%.1fs", budget_left_seconds);
    }
    std::fprintf(stderr, "%s\n", line);
    std::fflush(stderr);
  }

  [[nodiscard]] double interval_seconds() const { return interval_; }

 private:
  using Clock = std::chrono::steady_clock;
  static double seconds_between(Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double>(b - a).count();
  }

  double interval_;
  std::string label_;
  Clock::time_point start_;
  Clock::time_point last_beat_;
};

}  // namespace cds::obs

#endif  // CDS_OBS_PROGRESS_H
