#include "obs/trace_export.h"

#include <cinttypes>
#include <cstdio>

#include "mc/memory_order.h"
#include "mc/trace.h"

namespace cds::obs {
namespace {

void append_json_string(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

// pid 0 = the modeled execution (one tid per modeled thread);
// pid 1 = the exploration phases (wall clock).
constexpr int kModelPid = 0;
constexpr int kExplorerPid = 1;

void append_meta(std::string* out, int pid, int tid, const char* what,
                 const std::string& name) {
  char buf[96];
  std::snprintf(buf, sizeof buf,
                "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"%s\","
                "\"args\":{\"name\":",
                pid, tid, what);
  *out += buf;
  append_json_string(out, name);
  *out += "}},\n";
}

std::string event_label(
    const mc::TraceEvent& ev,
    const std::function<std::string(std::uint32_t)>& loc_name) {
  std::string label = mc::to_string(ev.kind);
  if (ev.loc != mc::TraceEvent::kNoLoc) {
    label += ' ';
    if (loc_name) {
      label += loc_name(ev.loc);
    } else {
      label += "loc" + std::to_string(ev.loc);
    }
    switch (ev.kind) {
      case mc::TraceEvent::Kind::kLoad:
      case mc::TraceEvent::Kind::kStore:
      case mc::TraceEvent::Kind::kRmw:
      case mc::TraceEvent::Kind::kCasFail:
        label += '=' + std::to_string(ev.value);
        break;
      default:
        break;
    }
  }
  return label;
}

}  // namespace

std::string render_chrome_trace(
    const std::vector<mc::TraceEvent>& events,
    const std::function<std::string(std::uint32_t)>& loc_name,
    const std::vector<PhaseSpan>& phases) {
  std::string out = "{\"traceEvents\":[\n";

  append_meta(&out, kModelPid, 0, "process_name", "modeled execution");
  append_meta(&out, kExplorerPid, 0, "process_name", "exploration phases");
  int max_tid = -1;
  for (const mc::TraceEvent& ev : events) {
    if (ev.thread > max_tid) max_tid = ev.thread;
  }
  for (int t = 0; t <= max_tid; ++t) {
    append_meta(&out, kModelPid, t, "thread_name",
                t == 0 ? "T0 (root)" : "T" + std::to_string(t));
  }

  // Modeled events: one complete event per visible operation, 1us wide at
  // its global order index, on its thread's row.
  char buf[160];
  for (std::size_t i = 0; i < events.size(); ++i) {
    const mc::TraceEvent& ev = events[i];
    out += "{\"ph\":\"X\",\"pid\":0,\"tid\":";
    out += std::to_string(ev.thread);
    std::snprintf(buf, sizeof buf, ",\"ts\":%zu,\"dur\":1,\"cat\":\"model\",",
                  i);
    out += buf;
    out += "\"name\":";
    append_json_string(&out, event_label(ev, loc_name));
    std::snprintf(buf, sizeof buf,
                  ",\"args\":{\"order\":\"%s\",\"value\":%" PRIu64 "}},\n",
                  mc::to_string(ev.order), ev.value);
    out += buf;
  }

  // Exploration-phase spans in wall microseconds.
  for (const PhaseSpan& p : phases) {
    std::snprintf(buf, sizeof buf,
                  "{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":%.0f,"
                  "\"dur\":%.0f,\"cat\":\"explore\",\"name\":",
                  p.start_seconds * 1e6, p.duration_seconds * 1e6);
    out += buf;
    append_json_string(&out, p.name);
    out += "},\n";
  }

  // Trailing comma cleanup: drop the final ",\n" if any event was emitted.
  if (out.size() >= 2 && out[out.size() - 2] == ',') {
    out.erase(out.size() - 2, 1);
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool write_chrome_trace_file(
    const std::string& path, const std::vector<mc::TraceEvent>& events,
    const std::function<std::string(std::uint32_t)>& loc_name,
    const std::vector<PhaseSpan>& phases, std::string* err) {
  return mc::write_text_file_atomic(
      path, render_chrome_trace(events, loc_name, phases), err);
}

}  // namespace cds::obs
