// Chrome trace-event export: renders a modeled execution's TraceEvent
// stream (one timeline row per modeled thread) plus exploration-phase
// spans as the JSON Object Format that chrome://tracing and Perfetto load
// directly ("traceEvents" array of complete "X" events + "M" metadata).
//
// Timestamps for modeled events are synthetic — event index in
// microseconds — because modeled executions have a total order but no
// wall clock; phase spans use real wall seconds on a separate pid row.
#ifndef CDS_OBS_TRACE_EXPORT_H
#define CDS_OBS_TRACE_EXPORT_H

#include <functional>
#include <string>
#include <vector>

#include "mc/engine.h"

namespace cds::obs {

// A named wall-clock interval of the exploration itself (dfs / sampling /
// per-shard), in seconds relative to the run start.
struct PhaseSpan {
  std::string name;
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
};

// Renders the full trace JSON. `loc_name` maps a TraceEvent location id to
// a human label (may be null: locations render as "loc<N>"). Output is a
// single self-contained JSON object; write it to a file and open it in
// Perfetto (ui.perfetto.dev) or chrome://tracing.
[[nodiscard]] std::string render_chrome_trace(
    const std::vector<mc::TraceEvent>& events,
    const std::function<std::string(std::uint32_t)>& loc_name,
    const std::vector<PhaseSpan>& phases);

// Atomic file write (temp + rename via mc/trace.h plumbing). Returns false
// with the reason in *err.
bool write_chrome_trace_file(const std::string& path,
                             const std::vector<mc::TraceEvent>& events,
                             const std::function<std::string(std::uint32_t)>& loc_name,
                             const std::vector<PhaseSpan>& phases,
                             std::string* err);

}  // namespace cds::obs

#endif  // CDS_OBS_TRACE_EXPORT_H
