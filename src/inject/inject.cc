#include "inject/inject.h"

#include <cassert>

namespace cds::inject {

namespace {
std::vector<Site>& registry() {
  static std::vector<Site> sites;
  return sites;
}
SiteId g_active = -1;
}  // namespace

mc::MemoryOrder Site::weakened() const {
  mc::MemoryOrder w = mc::weaker(def);
  switch (kind) {
    case OpKind::kLoad:
      return mc::for_load(w);
    case OpKind::kStore:
      return mc::for_store(w);
    case OpKind::kRmw:
    case OpKind::kFence:
      return w;
  }
  return w;
}

mc::MemoryOrder strengthen(OpKind kind, mc::MemoryOrder o) {
  using O = mc::MemoryOrder;
  if (o == O::seq_cst) return O::seq_cst;
  if (o == O::relaxed) {
    switch (kind) {
      case OpKind::kLoad: return O::acquire;
      case OpKind::kStore: return O::release;
      case OpKind::kRmw:
      case OpKind::kFence: return O::acq_rel;
    }
  }
  // acquire / release / acq_rel: the only stronger parameter is seq_cst.
  return O::seq_cst;
}

mc::MemoryOrder Site::strengthened() const { return strengthen(kind, def); }

SiteId register_site(const char* benchmark, const char* name,
                     mc::MemoryOrder def, OpKind kind) {
  auto id = static_cast<SiteId>(registry().size());
  registry().push_back(Site{id, benchmark, name, def, kind});
  return id;
}

mc::MemoryOrder order(SiteId id) {
  assert(id >= 0 && static_cast<std::size_t>(id) < registry().size());
  const Site& s = registry()[static_cast<std::size_t>(id)];
  return id == g_active ? s.weakened() : s.def;
}

void inject(SiteId id) { g_active = id; }
void clear_injection() { g_active = -1; }
SiteId active_injection() { return g_active; }

const std::vector<Site>& all_sites() { return registry(); }

std::vector<Site> sites_for(const std::string& benchmark) {
  std::vector<Site> out;
  for (const Site& s : registry()) {
    if (s.benchmark == benchmark) out.push_back(s);
  }
  return out;
}

}  // namespace cds::inject
