// Memory-order bug-injection framework (paper Section 6.4.2).
//
// Every memory-order parameter in a benchmark implementation is routed
// through a registered *site*. The injection experiment weakens one site
// per trial to the next-weaker parameter (seq_cst -> acq_rel,
// acq_rel -> release/acquire, acquire/release -> relaxed) and asks the
// checker whether any unit test detects the change.
#ifndef CDS_INJECT_INJECT_H
#define CDS_INJECT_INJECT_H

#include <cstdint>
#include <string>
#include <vector>

#include "mc/memory_order.h"

namespace cds::inject {

enum class OpKind : std::uint8_t { kLoad, kStore, kRmw, kFence };

using SiteId = int;

struct Site {
  SiteId id;
  std::string benchmark;
  std::string name;
  mc::MemoryOrder def;
  OpKind kind;

  // The next-weaker legal parameter for this operation kind; equals `def`
  // when the site is already relaxed (not injectable).
  [[nodiscard]] mc::MemoryOrder weakened() const;
  [[nodiscard]] bool injectable() const { return weakened() != def; }

  // The reverse walk: the next-stronger legal parameter, terminating at
  // seq_cst. The fuzzer's metamorphic monotonicity oracle strengthens one
  // site per run and requires the behavior set never to grow.
  [[nodiscard]] mc::MemoryOrder strengthened() const;
  [[nodiscard]] bool strengthenable() const { return strengthened() != def; }
};

// One step up the strengthening lattice for an operation kind: relaxed
// rises to the kind's weakest synchronizing form (acquire for loads,
// release for stores, acq_rel for RMWs and fences); any synchronizing
// order rises to seq_cst; seq_cst is a fixpoint.
[[nodiscard]] mc::MemoryOrder strengthen(OpKind kind, mc::MemoryOrder o);

// Registers a memory-order site (call once, at namespace scope, per
// textual occurrence of a memory-order parameter).
SiteId register_site(const char* benchmark, const char* name,
                     mc::MemoryOrder def, OpKind kind);

// The order the site currently uses: its default, or the weakened order if
// this site is the active injection.
[[nodiscard]] mc::MemoryOrder order(SiteId id);

// Activates the injection at `id` (one site at a time, as in the paper).
void inject(SiteId id);
void clear_injection();
[[nodiscard]] SiteId active_injection();  // -1 when none

[[nodiscard]] const std::vector<Site>& all_sites();
[[nodiscard]] std::vector<Site> sites_for(const std::string& benchmark);

}  // namespace cds::inject

#endif  // CDS_INJECT_INJECT_H
