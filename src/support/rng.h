// Deterministic xorshift RNG used when the checker samples sequential
// histories instead of enumerating all of them (paper Section 5.2: "we also
// provide the option of randomly generating and checking a user-customized
// number of sequential histories").
#ifndef CDS_SUPPORT_RNG_H
#define CDS_SUPPORT_RNG_H

#include <cstdint>

namespace cds::support {

class Xorshift64 {
 public:
  explicit Xorshift64(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
      : s_(seed ? seed : 1u) {}

  std::uint64_t next() {
    s_ ^= s_ << 13;
    s_ ^= s_ >> 7;
    s_ ^= s_ << 17;
    return s_;
  }

  // Uniform in [0, n). n must be > 0. Rejection sampling: a plain
  // `next() % n` over-weights the low residues whenever 2^64 is not a
  // multiple of n (severe for large n). Discarding draws below
  // `2^64 mod n` leaves a range that divides evenly, so every residue is
  // exactly equally likely. The loop rejects < 1 draw in expectation for
  // any n and is deterministic given the seed.
  std::uint64_t below(std::uint64_t n) {
    std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
    std::uint64_t x;
    do {
      x = next();
    } while (x < threshold);
    return (x - threshold) % n;
  }

  // Full internal state, for checkpoint/resume: a run restored with
  // set_state() draws the exact stream the interrupted run would have.
  [[nodiscard]] std::uint64_t state() const { return s_; }
  void set_state(std::uint64_t s) { s_ = s ? s : 1u; }

 private:
  std::uint64_t s_;
};

// SplitMix64 step: advances `state` and returns a well-distributed value.
// Used to derive independent per-component seeds (engine sampler, spec
// checker's history sampler, per-trial sweep seeds) from the single
// user-facing `--seed`, so one number reproduces an entire run.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Derives the i-th child seed of `root` without mutating it.
inline std::uint64_t derive_seed(std::uint64_t root, std::uint64_t index) {
  std::uint64_t s = root + index * 0x632be59bd9b4e019ull;
  return splitmix64(s);
}

}  // namespace cds::support

#endif  // CDS_SUPPORT_RNG_H
