// Deterministic xorshift RNG used when the checker samples sequential
// histories instead of enumerating all of them (paper Section 5.2: "we also
// provide the option of randomly generating and checking a user-customized
// number of sequential histories").
#ifndef CDS_SUPPORT_RNG_H
#define CDS_SUPPORT_RNG_H

#include <cstdint>

namespace cds::support {

class Xorshift64 {
 public:
  explicit Xorshift64(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
      : s_(seed ? seed : 1u) {}

  std::uint64_t next() {
    s_ ^= s_ << 13;
    s_ ^= s_ >> 7;
    s_ ^= s_ << 17;
    return s_;
  }

  // Uniform in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) { return next() % n; }

 private:
  std::uint64_t s_;
};

}  // namespace cds::support

#endif  // CDS_SUPPORT_RNG_H
