// Vector clocks and per-location views.
//
// Both happens-before clocks (indexed by thread id) and coherence views
// (indexed by atomic location id) are sparse monotone maps from a dense
// small-integer key space to 32-bit counters. `BasicClock` implements the
// lattice operations once; `VectorClock` and `View` are strong typedefs so
// thread ids and location ids cannot be mixed up.
#ifndef CDS_SUPPORT_VECTOR_CLOCK_H
#define CDS_SUPPORT_VECTOR_CLOCK_H

#include <algorithm>
#include <cstdint>
#include <vector>

namespace cds::support {

template <typename Tag>
class BasicClock {
 public:
  BasicClock() = default;

  // Value at index `i`; indices beyond the stored prefix are implicitly 0.
  [[nodiscard]] std::uint32_t get(std::size_t i) const {
    return i < c_.size() ? c_[i] : 0u;
  }

  void set(std::size_t i, std::uint32_t v) {
    grow(i);
    c_[i] = v;
  }

  // set(i, max(get(i), v))
  void raise(std::size_t i, std::uint32_t v) {
    grow(i);
    c_[i] = std::max(c_[i], v);
  }

  void bump(std::size_t i) {
    grow(i);
    ++c_[i];
  }

  // Pointwise maximum (lattice join).
  void join(const BasicClock& o) {
    if (o.c_.size() > c_.size()) c_.resize(o.c_.size(), 0u);
    for (std::size_t i = 0; i < o.c_.size(); ++i) c_[i] = std::max(c_[i], o.c_[i]);
  }

  // Pointwise <= (lattice order). `a.leq(b)` means every component of `a`
  // is covered by `b`.
  [[nodiscard]] bool leq(const BasicClock& o) const {
    for (std::size_t i = 0; i < c_.size(); ++i) {
      if (c_[i] > o.get(i)) return false;
    }
    return true;
  }

  [[nodiscard]] bool includes(std::size_t i, std::uint32_t v) const {
    return get(i) >= v;
  }

  void clear() { c_.clear(); }

  [[nodiscard]] bool empty() const {
    return std::all_of(c_.begin(), c_.end(), [](std::uint32_t v) { return v == 0; });
  }

  [[nodiscard]] std::size_t stored_size() const { return c_.size(); }

  friend bool operator==(const BasicClock& a, const BasicClock& b) {
    return a.leq(b) && b.leq(a);
  }

 private:
  void grow(std::size_t i) {
    if (i >= c_.size()) c_.resize(i + 1, 0u);
  }

  std::vector<std::uint32_t> c_;
};

struct ThreadTag {};
struct LocationTag {};

// Happens-before clock: index = thread id, value = per-thread event count.
using VectorClock = BasicClock<ThreadTag>;
// Coherence view: index = atomic location id, value = message timestamp.
using View = BasicClock<LocationTag>;

// The pair of lattices every synchronization edge transports: the
// happens-before component (for race detection and the spec checker's
// ordering relation) and the coherence component (which messages a thread
// is still allowed to read).
struct Timestamps {
  VectorClock vc;
  View view;

  void join(const Timestamps& o) {
    vc.join(o.vc);
    view.join(o.view);
  }

  void clear() {
    vc.clear();
    view.clear();
  }

  [[nodiscard]] bool empty() const { return vc.empty() && view.empty(); }
};

}  // namespace cds::support

#endif  // CDS_SUPPORT_VECTOR_CLOCK_H
