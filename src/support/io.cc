#include "support/io.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define CDS_SUPPORT_IO_POSIX 1
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>
#endif

namespace cds::support {

bool write_full(int fd, const void* data, std::size_t len) {
#ifdef CDS_SUPPORT_IO_POSIX
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    ssize_t n = write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
#else
  (void)fd;
  (void)data;
  (void)len;
  errno = ENOSYS;
  return false;
#endif
}

bool write_full(int fd, const std::string& s) {
  return write_full(fd, s.data(), s.size());
}

bool read_full(int fd, void* data, std::size_t len) {
#ifdef CDS_SUPPORT_IO_POSIX
  char* p = static_cast<char*>(data);
  while (len > 0) {
    ssize_t n = read(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF before len bytes: truncated frame
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
#else
  (void)fd;
  (void)data;
  (void)len;
  errno = ENOSYS;
  return false;
#endif
}

long read_some(int fd, void* data, std::size_t len) {
#ifdef CDS_SUPPORT_IO_POSIX
  for (;;) {
    ssize_t n = read(fd, data, len);
    if (n < 0 && errno == EINTR) continue;
    return static_cast<long>(n);
  }
#else
  (void)fd;
  (void)data;
  (void)len;
  errno = ENOSYS;
  return -1;
#endif
}

namespace {

// Table-driven CRC-32 (polynomial 0xEDB88320), built once.
const std::uint32_t* crc_table() {
  static std::uint32_t table[256];
  static bool init = [] {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return true;
  }();
  (void)init;
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len) {
  const std::uint32_t* t = crc_table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    c = t[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(const std::string& s) { return crc32(s.data(), s.size()); }

bool fsync_dir(const std::string& dir) {
#ifdef CDS_SUPPORT_IO_POSIX
  int fd = -1;
  do {
    fd = open(dir.empty() ? "." : dir.c_str(), O_RDONLY);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return false;
  int rc;
  do {
    rc = fsync(fd);
  } while (rc != 0 && errno == EINTR);
  // Some filesystems refuse fsync on directory fds (EINVAL); treat that
  // as "as durable as this platform gets" rather than an error.
  const bool ok = rc == 0 || errno == EINVAL;
  close(fd);
  return ok;
#else
  (void)dir;
  errno = ENOSYS;
  return false;
#endif
}

bool fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return fsync_dir(".");
  if (slash == 0) return fsync_dir("/");
  return fsync_dir(path.substr(0, slash));
}

SigpipeIgnoreScope::SigpipeIgnoreScope() : old_action_(nullptr) {
#ifdef CDS_SUPPORT_IO_POSIX
  auto* old_sa = new struct sigaction;
  struct sigaction ign {};
  ign.sa_handler = SIG_IGN;
  sigemptyset(&ign.sa_mask);
  if (sigaction(SIGPIPE, &ign, old_sa) == 0) {
    installed_ = true;
    old_action_ = old_sa;
  } else {
    delete old_sa;
  }
#endif
}

SigpipeIgnoreScope::~SigpipeIgnoreScope() {
#ifdef CDS_SUPPORT_IO_POSIX
  if (installed_) {
    auto* old_sa = static_cast<struct sigaction*>(old_action_);
    sigaction(SIGPIPE, old_sa, nullptr);
    delete old_sa;
  }
#endif
}

// ---------------------------------------------------------------------------
// Checksummed spool files
// ---------------------------------------------------------------------------

namespace {

std::string render_footer(const std::string& text) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "#cds-spool len=%zu crc32=%08" PRIx32 "\n",
                text.size(), crc32(text));
  return buf;
}

bool quarantine(const std::string& path) {
  return std::rename(path.c_str(), (path + ".quarantined").c_str()) == 0;
}

}  // namespace

bool write_spool_file(const std::string& path, const std::string& text,
                      std::string* err) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    if (err) *err = "cannot open '" + tmp + "': " + std::strerror(errno);
    return false;
  }
  const std::string footer = render_footer(text);
  bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
            std::fwrite(footer.data(), 1, footer.size(), f) == footer.size();
  ok = std::fflush(f) == 0 && ok;
#ifdef CDS_SUPPORT_IO_POSIX
  // The rename is only atomic-durable if the payload reached the disk
  // first; fsync failure is reported, not ignored.
  ok = ok && fsync(fileno(f)) == 0;
#endif
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    if (err) *err = "short write to '" + tmp + "'";
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (err) *err = "rename to '" + path + "' failed: " + std::strerror(errno);
    std::remove(tmp.c_str());
    return false;
  }
  // The new name is only durable once the directory itself is synced.
  if (!fsync_parent_dir(path)) {
    if (err) {
      *err = "fsync of directory holding '" + path +
             "' failed: " + std::strerror(errno);
    }
    return false;
  }
  return true;
}

bool read_spool_file(const std::string& path, std::string* out,
                     std::string* err, bool* quarantined) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (err) *err = "cannot open '" + path + "'";
    return false;
  }
  std::string data;
  char buf[65536];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) data.append(buf, n);
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);

  auto reject = [&](const std::string& why) {
    if (err) *err = "'" + path + "': " + why + "; quarantined";
    if (quarantine(path) && quarantined != nullptr) *quarantined = true;
    return false;
  };
  if (!read_ok) return reject("read error");

  // The footer is the file's last line, located by its own marker rather
  // than by a preceding '\n' so payloads need not end with a newline. The
  // length and CRC checks below disambiguate a payload that happens to
  // contain the marker text itself.
  if (data.empty() || data.back() != '\n') return reject("missing footer");
  const std::size_t footer_start = data.rfind("#cds-spool len=");
  if (footer_start == std::string::npos) {
    return reject("malformed or absent footer line");
  }
  const std::string footer = data.substr(footer_start);
  std::size_t want_len = 0;
  unsigned want_crc = 0;
  if (std::sscanf(footer.c_str(), "#cds-spool len=%zu crc32=%8x", &want_len,
                  &want_crc) != 2) {
    return reject("malformed or absent footer line");
  }
  const std::string payload = data.substr(0, footer_start);
  if (payload.size() != want_len) {
    return reject("length mismatch (footer says " + std::to_string(want_len) +
                  ", file holds " + std::to_string(payload.size()) + ")");
  }
  if (crc32(payload) != static_cast<std::uint32_t>(want_crc)) {
    return reject("crc mismatch");
  }
  *out = payload;
  return true;
}

}  // namespace cds::support
