// Bump allocator for per-execution allocations.
//
// Model-checked test bodies re-run once per explored execution; nodes they
// allocate (the paper's benchmarks intentionally never recycle dequeued
// nodes) would otherwise leak across hundreds of thousands of executions.
// The engine resets this arena between executions.
#ifndef CDS_SUPPORT_ARENA_H
#define CDS_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace cds::support {

class Arena {
 public:
  static constexpr std::size_t kBlockSize = 1u << 16;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* allocate(std::size_t bytes, std::size_t align) {
    std::size_t off = (offset_ + align - 1) & ~(align - 1);
    if (blocks_.empty() || off + bytes > kBlockSize) {
      if (bytes + align > kBlockSize) {
        // Oversized allocation gets its own block.
        big_.push_back(std::make_unique<char[]>(bytes + align));
        big_bytes_ += bytes + align;
        auto p = reinterpret_cast<std::uintptr_t>(big_.back().get());
        p = (p + align - 1) & ~(align - 1);
        return reinterpret_cast<void*>(p);
      }
      next_block();
      off = (offset_ + align - 1) & ~(align - 1);
    }
    offset_ = off + bytes;
    return blocks_[block_idx_].get() + off;
  }

  template <typename T, typename... Args>
  T* make(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T> || true,
                  "arena never runs destructors");
    void* p = allocate(sizeof(T), alignof(T));
    return ::new (p) T(static_cast<Args&&>(args)...);
  }

  // Reuses existing blocks; no destructors are run (arena types must not
  // own resources beyond arena memory).
  void reset() {
    block_idx_ = 0;
    offset_ = blocks_.empty() ? kBlockSize : 0;
    big_.clear();
    big_bytes_ = 0;
  }

  [[nodiscard]] std::size_t blocks_allocated() const { return blocks_.size(); }

  // Frees every retained block (unlike reset(), which keeps them for
  // reuse). The engine calls this when degrading after a memory-budget
  // hit so the sampling phase restarts from a small footprint.
  void release() {
    blocks_.clear();
    big_.clear();
    big_bytes_ = 0;
    block_idx_ = 0;
    offset_ = kBlockSize;
  }

  // Total heap the arena currently holds (retained blocks + live oversized
  // allocations); feeds the engine's memory-budget accounting.
  [[nodiscard]] std::size_t bytes_reserved() const {
    return blocks_.size() * kBlockSize + big_bytes_;
  }

 private:
  void next_block() {
    if (blocks_.empty()) {
      blocks_.push_back(std::make_unique<char[]>(kBlockSize));
      block_idx_ = 0;
    } else if (block_idx_ + 1 < blocks_.size()) {
      ++block_idx_;
    } else {
      blocks_.push_back(std::make_unique<char[]>(kBlockSize));
      ++block_idx_;
    }
    offset_ = 0;
  }

  std::vector<std::unique_ptr<char[]>> blocks_;
  std::vector<std::unique_ptr<char[]>> big_;
  std::size_t big_bytes_ = 0;
  std::size_t block_idx_ = 0;
  std::size_t offset_ = kBlockSize;  // force first block allocation
};

}  // namespace cds::support

#endif  // CDS_SUPPORT_ARENA_H
