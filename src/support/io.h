// Low-level IO helpers shared by every process-boundary layer (fork_map
// pipes, the distributed socket transport, the spool-dir result cache).
//
// Three concerns live here on purpose:
//  - EINTR discipline: every read/write loops on EINTR, so signal delivery
//    (progress timers, child reaping) can never shear a frame in half.
//  - SIGPIPE containment: a peer that dies mid-conversation must surface
//    as an EPIPE error code on *any* fd we hold, not a process-fatal
//    signal. SigpipeIgnoreScope is installed RAII-style around whole
//    coordinator/worker loops, not just individual writes.
//  - Spool integrity: cached shard results carry a length+CRC footer and
//    are only ever written via temp+rename, so a crash mid-write (or a
//    truncated disk) yields a file that fails validation and is
//    quarantined + recomputed instead of being parsed as a result.
#ifndef CDS_SUPPORT_IO_H
#define CDS_SUPPORT_IO_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace cds::support {

// Writes all `len` bytes, retrying on EINTR and short writes. Returns
// false on any other error (errno preserved); EPIPE is the expected
// failure mode when the peer died (see SigpipeIgnoreScope).
bool write_full(int fd, const void* data, std::size_t len);
bool write_full(int fd, const std::string& s);

// Reads exactly `len` bytes, retrying on EINTR and short reads. Returns
// false on error or premature EOF (a truncated frame).
bool read_full(int fd, void* data, std::size_t len);

// One read(2) retried on EINTR only; returns what the kernel gave us
// (possibly short). <0 error, 0 EOF — the building block for buffered
// line readers over sockets/pipes.
long read_some(int fd, void* data, std::size_t len);

// CRC-32 (IEEE 802.3, reflected), the checksum in spool footers.
std::uint32_t crc32(const void* data, std::size_t len);
std::uint32_t crc32(const std::string& s);

// Fsyncs the directory `dir`, making previously renamed/created entries
// in it durable across power loss. A temp+rename is only atomic-durable
// once the *directory* holding the new name has been synced; fsyncing
// the file alone persists its bytes but not its name.
bool fsync_dir(const std::string& dir);

// Fsyncs the directory containing `path` ("." when `path` has no
// directory component). Convenience wrapper around fsync_dir for
// callers that hold the file path, not its directory.
bool fsync_parent_dir(const std::string& path);

// Ignores SIGPIPE for the scope's lifetime and restores the previous
// disposition on exit. Any layer that writes to fds whose peer can die
// (fork_map, the dist coordinator/worker) holds one of these around its
// whole IO loop, so a dead peer is an EPIPE return everywhere rather
// than a fatal signal on whichever write happened to race the death.
class SigpipeIgnoreScope {
 public:
  SigpipeIgnoreScope();
  ~SigpipeIgnoreScope();
  SigpipeIgnoreScope(const SigpipeIgnoreScope&) = delete;
  SigpipeIgnoreScope& operator=(const SigpipeIgnoreScope&) = delete;

 private:
  bool installed_ = false;
  void* old_action_;  // opaque storage for struct sigaction
};

// ---------------------------------------------------------------------------
// Checksummed spool files
// ---------------------------------------------------------------------------
// Format: the payload bytes, followed by one footer line
//   #cds-spool len=<payload bytes> crc32=<8 hex digits>\n
// The footer is validated on read; any mismatch (truncation, bit rot,
// a stale un-footered file from an older version) fails the read.

// Atomically writes `text` + footer via write-to-temp+rename. Returns
// false with a reason in *err.
bool write_spool_file(const std::string& path, const std::string& text,
                      std::string* err);

// Reads and validates a spool file. On success *out holds the payload
// (footer stripped). On validation failure the file is renamed aside to
// "<path>.quarantined" (never re-read, preserved for inspection), *err
// explains why, and `quarantined` (when non-null) is set so callers can
// count recomputations. A missing file is a plain false with
// quarantined untouched.
bool read_spool_file(const std::string& path, std::string* out,
                     std::string* err, bool* quarantined = nullptr);

}  // namespace cds::support

#endif  // CDS_SUPPORT_IO_H
