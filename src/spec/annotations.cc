#include "spec/annotations.h"

#include <cassert>
#include <string>

#include "harness/backend.h"

namespace cds::spec {

namespace {
Recorder* g_recorder = nullptr;
}

Recorder* Recorder::current() { return g_recorder; }
void Recorder::set_current(Recorder* r) { g_recorder = r; }

void Recorder::begin_execution(const void* backend_tag) {
  std::lock_guard<std::mutex> lock(mu_);
  engine_tag_ = backend_tag;
  calls_.clear();
  next_object_ = 0;
  depth_.assign(depth_.size(), 0);
}

std::uint32_t Recorder::new_object() {
  std::lock_guard<std::mutex> lock(mu_);
  return next_object_++;
}

int Recorder::enter(int tid) {
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<std::size_t>(tid) >= depth_.size()) {
    depth_.resize(static_cast<std::size_t>(tid) + 1, 0);
  }
  return depth_[static_cast<std::size_t>(tid)]++;
}

void Recorder::leave(int tid) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(static_cast<std::size_t>(tid) < depth_.size() &&
         depth_[static_cast<std::size_t>(tid)] > 0);
  --depth_[static_cast<std::size_t>(tid)];
}

void Recorder::commit(CallRecord rec) {
  std::lock_guard<std::mutex> lock(mu_);
  rec.id = static_cast<std::uint32_t>(calls_.size());
  calls_.push_back(std::move(rec));
}

Object::Object(const Specification& s) : spec_(&s) {
  harness::Backend* b = harness::Backend::current();
  if (b == nullptr) return;
  Recorder* r = b->recorder();
  if (r != nullptr && r->armed_for(b)) id_ = r->new_object();
}

Method::Method(const Object& obj, const char* name,
               std::initializer_list<std::int64_t> args)
    : spec_(&obj.spec()) {
  harness::Backend* b = harness::Backend::current();
  if (b == nullptr) return;
  Recorder* r = b->recorder();
  if (r == nullptr || !r->armed_for(b)) return;
  rec_ = r;
  backend_ = b;
  tid_ = b->current_thread();
  // Only the outermost API method call is recorded (Section 4.3: nested
  // API calls are internal calls).
  int prev_depth = rec_->enter(tid_);
  if (prev_depth > 0) return;
  active_ = true;
  call_.spec = spec_;
  call_.object = obj.id();
  call_.method = spec_->method_index(name);
  assert(call_.method >= 0 && "method not declared in the specification");
  call_.thread = tid_;
  int i = 0;
  for (std::int64_t a : args) {
    if (i < CallRecord::kMaxArgs) call_.args[i++] = a;
  }
  call_.nargs = i;
}

Method::~Method() {
  if (rec_ == nullptr) return;
  rec_->leave(tid_);
  if (active_) rec_->commit(std::move(call_));
}

std::int64_t Method::ret(std::int64_t v) {
  if (active_) {
    call_.c_ret = v;
    call_.has_ret = true;
  }
  return v;
}

OPEvent Method::snapshot() const { return backend_->snapshot_op(tid_); }

void Method::note_site(const char* kind, const std::source_location& loc) const {
  if (spec_ == nullptr) return;
  // One spec "line" per distinct textual annotation site.
  const_cast<Specification*>(spec_)->note_op_site(
      std::string(kind) + "@" + loc.file_name() + ":" + std::to_string(loc.line()));
}

void Method::op_define(std::source_location loc) {
  note_site("op_define", loc);
  if (!active_) return;
  call_.ops.push_back(snapshot());
}

void Method::potential_op(int label, std::source_location loc) {
  note_site("potential_op", loc);
  if (!active_) return;
  potentials_.emplace_back(label, snapshot());
}

void Method::op_check(int label, std::source_location loc) {
  note_site("op_check", loc);
  if (!active_) return;
  for (auto it = potentials_.begin(); it != potentials_.end();) {
    if (it->first == label) {
      call_.ops.push_back(std::move(it->second));
      it = potentials_.erase(it);
    } else {
      ++it;
    }
  }
}

void Method::op_clear(std::source_location loc) {
  note_site("op_clear", loc);
  if (!active_) return;
  call_.ops.clear();
  potentials_.clear();
}

void Method::op_clear_define(std::source_location loc) {
  note_site("op_clear_define", loc);
  if (!active_) return;
  call_.ops.clear();
  potentials_.clear();
  call_.ops.push_back(snapshot());
}

}  // namespace cds::spec
