#include "spec/checker.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "support/rng.h"

namespace cds::spec {

SpecChecker::SpecChecker() : SpecChecker(Options()) {}
SpecChecker::SpecChecker(Options opts) : opts_(opts) {}

SpecChecker::~SpecChecker() { detach(); }

void SpecChecker::attach(mc::Engine& e) {
  engine_ = &e;
  e.set_listener(this);
  Recorder::set_current(&recorder_);
  obs::Registry& m = e.metrics();
  m_execs_ = &m.counter("spec.executions_checked");
  m_histories_ = &m.counter("spec.histories_checked");
  m_justifications_ = &m.counter("spec.justification_checks");
  m_cap_hits_ = &m.counter("spec.cap_hits");
}

void SpecChecker::detach() {
  if (engine_ != nullptr) {
    engine_->set_listener(nullptr);
    engine_ = nullptr;
  }
  m_execs_ = m_histories_ = m_justifications_ = m_cap_hits_ = nullptr;
  if (Recorder::current() == &recorder_) Recorder::set_current(nullptr);
}

void SpecChecker::on_execution_begin(mc::Engine& e) {
  // Arm with the Backend identity: annotation guards compare the tag
  // against harness::Backend::current(), which the engine sets to its
  // Backend subobject.
  recorder_.begin_execution(static_cast<const harness::Backend*>(&e));
}

namespace {
constexpr const char* kCpKeys[] = {
    "spec.cur.executions_checked",      "spec.cur.inadmissible_execs",
    "spec.cur.assertion_violation_execs", "spec.cur.histories_checked",
    "spec.cur.justification_checks",    "spec.cur.history_cap_hit",
    "spec.cur.r_cycle_seen",
};
}  // namespace

void SpecChecker::on_checkpoint(
    std::vector<std::pair<std::string, std::uint64_t>>& extra) {
  const std::uint64_t vals[] = {
      stats_.executions_checked,        stats_.inadmissible_execs,
      stats_.assertion_violation_execs, stats_.histories_checked,
      stats_.justification_checks,      stats_.history_cap_hit ? 1u : 0u,
      stats_.r_cycle_seen ? 1u : 0u,
  };
  for (std::size_t i = 0; i < std::size(kCpKeys); ++i) {
    bool found = false;
    for (auto& [k, v] : extra) {
      if (k == kCpKeys[i]) {
        v = vals[i];
        found = true;
        break;
      }
    }
    if (!found) extra.emplace_back(kCpKeys[i], vals[i]);
  }
}

void SpecChecker::restore_from_checkpoint(const mc::Checkpoint& cp) {
  stats_.executions_checked = cp.extra_value(kCpKeys[0]);
  stats_.inadmissible_execs = cp.extra_value(kCpKeys[1]);
  stats_.assertion_violation_execs = cp.extra_value(kCpKeys[2]);
  stats_.histories_checked = cp.extra_value(kCpKeys[3]);
  stats_.justification_checks = cp.extra_value(kCpKeys[4]);
  stats_.history_cap_hit = cp.extra_value(kCpKeys[5]) != 0;
  stats_.r_cycle_seen = cp.extra_value(kCpKeys[6]) != 0;
}

bool SpecChecker::on_execution_complete(mc::Engine& e) {
  ++stats_.executions_checked;
  if (m_execs_ != nullptr) m_execs_->add();
  // Group the execution's calls per object (composability, Section 3.2:
  // each object is checked against its own specification in isolation).
  std::map<std::uint32_t, ObjectCalls> objects;
  for (const CallRecord& c : recorder_.calls()) {
    ObjectCalls& oc = objects[c.object];
    oc.spec = c.spec;
    oc.calls.push_back(&c);
  }
  for (auto& [id, oc] : objects) {
    (void)id;
    // Composability (Section 3.2) makes each object's verdict independent,
    // so a violation on one object must not skip the spec checks for the
    // remaining objects in this execution. The engine's
    // stop_on_first_violation config and our caller decide when to stop
    // exploring; here we always finish the per-object sweep.
    (void)check_object(e, oc);
  }
  return true;
}

const std::vector<const CallRecord*>* SpecChecker::concurrent_of(
    const CallRecord* c) const {
  if (cur_calls_ == nullptr) return nullptr;
  for (std::size_t i = 0; i < cur_calls_->size(); ++i) {
    if ((*cur_calls_)[i] == c) return &concurrent_[i];
  }
  return nullptr;
}

bool SpecChecker::check_object(mc::Engine& e, const ObjectCalls& oc) {
  const auto n = oc.calls.size();
  if (n == 0) return true;
  std::vector<std::vector<int>> succ = build_r_edges(oc.calls);

  // Precompute concurrent(m) for every call (Section 3.1).
  concurrent_.assign(n, {});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      bool ij = std::find(succ[i].begin(), succ[i].end(), static_cast<int>(j)) !=
                succ[i].end();
      bool ji = std::find(succ[j].begin(), succ[j].end(), static_cast<int>(i)) !=
                succ[j].end();
      if (!ij && !ji) concurrent_[i].push_back(oc.calls[j]);
    }
  }
  cur_calls_ = &oc.calls;

  bool ok = check_admissibility(e, oc, succ);
  if (ok) ok = check_histories(e, oc, succ);
  if (ok) ok = check_justifications(e, oc, succ);

  cur_calls_ = nullptr;
  return ok;
}

bool SpecChecker::check_admissibility(mc::Engine& e, const ObjectCalls& oc,
                                      const std::vector<std::vector<int>>& succ) {
  const Specification& spec = *oc.spec;
  if (spec.admits().empty()) return true;
  const auto n = oc.calls.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      bool ij = std::find(succ[i].begin(), succ[i].end(), static_cast<int>(j)) !=
                succ[i].end();
      bool ji = std::find(succ[j].begin(), succ[j].end(), static_cast<int>(i)) !=
                succ[j].end();
      if (ij || ji) continue;  // ordered: admissible pair
      const CallRecord& a = *oc.calls[i];
      const CallRecord& b = *oc.calls[j];
      for (const AdmitRule& rule : spec.admits()) {
        bool fires = false;
        if (a.method == rule.m1 && b.method == rule.m2 && rule.guard(a, b)) {
          fires = true;
        } else if (b.method == rule.m1 && a.method == rule.m2 && rule.guard(b, a)) {
          fires = true;
        }
        if (fires) {
          ++stats_.inadmissible_execs;
          file_report(
              e, mc::ViolationKind::kInadmissible,
              "spec '" + spec.name() + "': calls " + format_call(a) + " and " +
                  format_call(b) +
                  " must be ordered by the admissibility rules but are "
                  "concurrent; the data structure's behavior is undefined "
                  "for this usage (execution not checked further)");
          return false;
        }
      }
    }
  }
  return true;
}

int SpecChecker::replay_history(const ObjectCalls& oc,
                                const std::vector<const CallRecord*>& order,
                                std::string* why) {
  const Specification& spec = *oc.spec;
  Specification::State st(spec);
  for (std::size_t k = 0; k < order.size(); ++k) {
    const CallRecord& c = *order[k];
    const MethodSpec& ms = spec.method_at(c.method);
    Ctx ctx(st.get(), c, concurrent_of(&c));
    if (!ms.check_pre(ctx)) {
      *why = "precondition of " + format_call(c) + " failed";
      return static_cast<int>(k);
    }
    ms.apply_side_effect(ctx);
    if (!ms.check_post(ctx)) {
      *why = "postcondition of " + format_call(c) + " failed (S_RET=" +
             std::to_string(ctx.s_ret) + ")";
      return static_cast<int>(k);
    }
  }
  return -1;
}

bool SpecChecker::check_histories(mc::Engine& e, const ObjectCalls& oc,
                                  const std::vector<std::vector<int>>& succ) {
  bool violated = false;
  std::string why;
  std::vector<const CallRecord*> bad_order;

  auto cb = [&](const std::vector<const CallRecord*>& order) {
    ++stats_.histories_checked;
    if (m_histories_ != nullptr) m_histories_->add();
    if (replay_history(oc, order, &why) >= 0) {
      violated = true;
      bad_order = order;
      return false;
    }
    return true;
  };

  TopoResult res = for_each_topo_order(oc.calls, succ, opts_.max_histories, cb);
  if (res.cycle) {
    stats_.r_cycle_seen = true;
    file_report(e, mc::ViolationKind::kSpecAssertion,
                "spec '" + oc.spec->name() +
                    "': ordering points induce a cyclic r relation; no "
                    "valid sequential history exists");
    return false;
  }
  if (res.capped && !violated) {
    stats_.history_cap_hit = true;
    if (m_cap_hits_ != nullptr) m_cap_hits_->add();
    // Beyond the exhaustive cap: sample random histories (paper's option).
    // Derive the sampling seed from the execution index so different
    // executions draw different histories; a fixed seed would re-sample the
    // same orders every execution, systematically missing violations that
    // only distinct draws can reach.
    sample_topo_orders(oc.calls, succ, opts_.sampled_histories,
                       support::derive_seed(opts_.seed, e.execution_index()),
                       cb);
  }

  if (violated) {
    ++stats_.assertion_violation_execs;
    file_report(e, mc::ViolationKind::kSpecAssertion,
                "spec '" + oc.spec->name() + "': " + why +
                    "\n  sequential history: " + format_order(bad_order));
    return false;
  }
  return true;
}

bool SpecChecker::check_justifications(mc::Engine& e, const ObjectCalls& oc,
                                       const std::vector<std::vector<int>>& succ) {
  const Specification& spec = *oc.spec;
  const auto n = oc.calls.size();

  for (std::size_t mi = 0; mi < n; ++mi) {
    const CallRecord& m = *oc.calls[mi];
    const MethodSpec& ms = spec.method_at(m.method);
    if (!ms.has_justifying()) continue;
    ++stats_.justification_checks;
    if (m_justifications_ != nullptr) m_justifications_->add();

    // Justifying subhistories (Definition 3): exactly the r-predecessors of
    // m, in every order consistent with r, with m last.
    std::vector<const CallRecord*> preds;
    std::vector<std::size_t> pred_idx;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == mi) continue;
      if (std::find(succ[j].begin(), succ[j].end(), static_cast<int>(mi)) !=
          succ[j].end()) {
        preds.push_back(oc.calls[j]);
        pred_idx.push_back(j);
      }
    }
    // Induced edges among the predecessors.
    std::vector<std::vector<int>> psucc(preds.size());
    for (std::size_t a = 0; a < preds.size(); ++a) {
      for (std::size_t b = 0; b < preds.size(); ++b) {
        if (a == b) continue;
        if (std::find(succ[pred_idx[a]].begin(), succ[pred_idx[a]].end(),
                      static_cast<int>(pred_idx[b])) != succ[pred_idx[a]].end()) {
          psucc[a].push_back(static_cast<int>(b));
        }
      }
    }

    bool justified = false;
    auto try_order = [&](const std::vector<const CallRecord*>& order) {
      Specification::State st(spec);
      for (const CallRecord* p : order) {
        Ctx pctx(st.get(), *p, concurrent_of(p));
        spec.method_at(p->method).apply_side_effect(pctx);
      }
      Ctx mctx(st.get(), m, concurrent_of(&m));
      if (!ms.check_justifying_pre(mctx)) return true;  // try next order
      ms.apply_side_effect(mctx);
      if (!ms.check_justifying_post(mctx)) return true;
      justified = true;
      return false;  // found a justifying subhistory; stop
    };

    for_each_topo_order(preds, psucc, opts_.max_subhistories, try_order);

    if (!justified) {
      ++stats_.assertion_violation_execs;
      std::string msg = "spec '" + spec.name() + "': behavior of " +
                        format_call(m) +
                        " is not justified by any justifying subhistory or "
                        "by its concurrent method calls\n  r-predecessors: ";
      msg += format_order(preds);
      msg += "\n  concurrent: ";
      if (const auto* conc = concurrent_of(&m)) {
        for (std::size_t i = 0; i < conc->size(); ++i) {
          if (i > 0) msg += ", ";
          msg += format_call(*(*conc)[i]);
        }
      }
      file_report(e, mc::ViolationKind::kSpecAssertion, std::move(msg));
      return false;
    }
  }
  return true;
}

void SpecChecker::file_report(mc::Engine& e, mc::ViolationKind kind,
                              std::string detail) {
  if (reports_.size() < opts_.max_reports) {
    std::string full = detail;
    if (opts_.report_trace) {
      full += "\n  execution #" + std::to_string(e.execution_index()) +
              " trace:\n" + e.format_trace();
    }
    reports_.push_back(std::move(full));
  }
  e.report_violation(kind, std::move(detail));
}

std::string SpecChecker::format_call(const CallRecord& c) const {
  std::ostringstream os;
  os << c.spec->method_at(c.method).name() << '(';
  for (int i = 0; i < c.nargs; ++i) {
    if (i > 0) os << ", ";
    os << c.args[i];
  }
  os << ')';
  if (c.has_ret) os << '=' << c.c_ret;
  os << " [T" << c.thread << ']';
  return os.str();
}

std::string SpecChecker::format_order(
    const std::vector<const CallRecord*>& order) const {
  std::string s;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (i > 0) s += " -> ";
    s += format_call(*order[i]);
  }
  return s;
}

}  // namespace cds::spec
