#include "spec/history.h"

#include <algorithm>

#include "support/rng.h"

namespace cds::spec {

std::vector<std::vector<int>> build_r_edges(
    const std::vector<const CallRecord*>& calls) {
  const int n = static_cast<int>(calls.size());
  std::vector<std::vector<int>> succ(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      if (call_r_before(*calls[static_cast<std::size_t>(i)],
                        *calls[static_cast<std::size_t>(j)])) {
        succ[static_cast<std::size_t>(i)].push_back(j);
      }
    }
  }
  return succ;
}

namespace {

struct TopoCtx {
  const std::vector<const CallRecord*>* calls;
  const std::vector<std::vector<int>>* succ;
  std::vector<int> indeg;
  std::vector<const CallRecord*> order;
  std::uint64_t cap;
  TopoResult res;
  const std::function<bool(const std::vector<const CallRecord*>&)>* cb;
};

// All-topological-sorts backtracking with an explicit available-set: each
// level receives the sorted list of indeg-0 nodes instead of rescanning all
// n indegrees per level (the old O(n)-per-level scan dominated on long
// histories where only a couple of calls are ever available at once).
// `avail` is kept in increasing node-index order, which is exactly the
// order the old full scan visited candidates in, so the stream of emitted
// orders is bit-for-bit identical.
bool topo_rec(TopoCtx& c, const std::vector<int>& avail) {
  const int n = static_cast<int>(c.calls->size());
  if (static_cast<int>(c.order.size()) == n) {
    ++c.res.count;
    if (!(*c.cb)(c.order)) {
      c.res.stopped = true;
      return false;
    }
    if (c.res.count >= c.cap) {
      c.res.capped = true;
      return false;
    }
    return true;
  }
  if (avail.empty()) {
    c.res.cycle = true;  // nodes remain but every one has a predecessor left
    return true;
  }
  std::vector<int> child;
  child.reserve(avail.size() + 4);
  for (int v : avail) {
    for (int w : (*c.succ)[static_cast<std::size_t>(v)]) --c.indeg[static_cast<std::size_t>(w)];
    c.order.push_back((*c.calls)[static_cast<std::size_t>(v)]);

    // Child set = avail \ {v} ∪ successors that just became available,
    // merged in index order.
    child.clear();
    for (int u : avail) {
      if (u != v) child.push_back(u);
    }
    for (int w : (*c.succ)[static_cast<std::size_t>(v)]) {
      if (c.indeg[static_cast<std::size_t>(w)] == 0) {
        child.insert(std::lower_bound(child.begin(), child.end(), w), w);
      }
    }

    bool keep = topo_rec(c, child);

    c.order.pop_back();
    for (int w : (*c.succ)[static_cast<std::size_t>(v)]) ++c.indeg[static_cast<std::size_t>(w)];
    if (!keep) return false;
  }
  return true;
}

std::vector<int> initial_indegree(const std::vector<std::vector<int>>& succ) {
  std::vector<int> indeg(succ.size(), 0);
  for (const auto& edges : succ) {
    for (int w : edges) ++indeg[static_cast<std::size_t>(w)];
  }
  return indeg;
}

}  // namespace

TopoResult for_each_topo_order(
    const std::vector<const CallRecord*>& calls,
    const std::vector<std::vector<int>>& succ, std::uint64_t cap,
    const std::function<bool(const std::vector<const CallRecord*>&)>& cb) {
  TopoCtx c;
  c.calls = &calls;
  c.succ = &succ;
  c.indeg = initial_indegree(succ);
  c.cap = cap == 0 ? UINT64_MAX : cap;
  c.cb = &cb;
  c.order.reserve(calls.size());
  std::vector<int> avail;
  for (int v = 0; v < static_cast<int>(calls.size()); ++v) {
    if (c.indeg[static_cast<std::size_t>(v)] == 0) avail.push_back(v);
  }
  topo_rec(c, avail);
  return c.res;
}

TopoResult sample_topo_orders(
    const std::vector<const CallRecord*>& calls,
    const std::vector<std::vector<int>>& succ, std::uint64_t n,
    std::uint64_t seed,
    const std::function<bool(const std::vector<const CallRecord*>&)>& cb) {
  TopoResult res;
  support::Xorshift64 rng(seed);
  const int size = static_cast<int>(calls.size());
  std::vector<int> indeg0 = initial_indegree(succ);
  std::vector<const CallRecord*> order;
  order.reserve(calls.size());
  for (std::uint64_t s = 0; s < n; ++s) {
    std::vector<int> indeg = indeg0;
    order.clear();
    for (int step = 0; step < size; ++step) {
      int avail[256];
      int na = 0;
      for (int v = 0; v < size; ++v) {
        if (indeg[static_cast<std::size_t>(v)] == 0 && na < 256) avail[na++] = v;
      }
      if (na == 0) {
        res.cycle = true;
        return res;
      }
      int v = avail[rng.below(static_cast<std::uint64_t>(na))];
      indeg[static_cast<std::size_t>(v)] = -1;
      for (int w : succ[static_cast<std::size_t>(v)]) --indeg[static_cast<std::size_t>(w)];
      order.push_back(calls[static_cast<std::size_t>(v)]);
    }
    ++res.count;
    if (!cb(order)) {
      res.stopped = true;
      return res;
    }
  }
  return res;
}

}  // namespace cds::spec
