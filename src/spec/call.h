// Recorded method calls and their ordering points.
//
// During an explored execution the annotation runtime (spec/annotations.h)
// collects one CallRecord per outermost API method call: its name, argument
// and return values, and the ordering-point events that determine how the
// call is ordered relative to other calls by the paper's `r = hb ∪ sc`
// relation (Section 3.1).
#ifndef CDS_SPEC_CALL_H
#define CDS_SPEC_CALL_H

#include <cstdint>
#include <vector>

#include "support/vector_clock.h"

namespace cds::spec {

class Specification;

// An atomic operation chosen as an ordering point, with enough of the
// memory-model state snapshotted to answer hb/sc queries afterwards.
struct OPEvent {
  int thread = -1;
  std::uint32_t pos = 0;          // per-thread event position
  support::VectorClock vc;        // thread clock right after the event
  std::uint32_t sc_index = 0;     // position in the SC total order, 0 = none
  // Real-time bracket (stress backend only; 0 = not recorded). Global
  // tickets drawn immediately before and after the operation executed on
  // the hardware, so `x.rt_end < y.rt_begin` proves x completed before y
  // started regardless of which thread observed which value.
  std::uint32_t rt_begin = 0;
  std::uint32_t rt_end = 0;
};

// x is ordered before y by hb: y's clock covers x's event.
[[nodiscard]] inline bool hb_before(const OPEvent& x, const OPEvent& y) {
  if (x.thread == y.thread) return x.pos < y.pos;
  return y.vc.get(static_cast<std::size_t>(x.thread)) >= x.pos;
}

// x is ordered before y by the union of hb and the SC total order. Under
// the stress backend the hb clock and SC index are unavailable; the
// real-time interval order stands in (intervals that overlap stay
// unordered, which under-approximates r and is therefore safe for the
// existential observed-history check in spec/observed.h).
[[nodiscard]] inline bool r_before(const OPEvent& x, const OPEvent& y) {
  if (hb_before(x, y)) return true;
  if (x.sc_index != 0 && y.sc_index != 0 && x.sc_index < y.sc_index) {
    return true;
  }
  return x.rt_end != 0 && y.rt_begin != 0 && x.rt_end < y.rt_begin;
}

struct CallRecord {
  std::uint32_t id = 0;  // completion order within the execution
  const Specification* spec = nullptr;
  std::uint32_t object = 0;  // per-execution object instance id
  int method = -1;           // index into the spec's method table
  int thread = -1;

  static constexpr int kMaxArgs = 4;
  std::int64_t args[kMaxArgs] = {0, 0, 0, 0};
  int nargs = 0;
  std::int64_t c_ret = 0;
  bool has_ret = false;

  std::vector<OPEvent> ops;

  [[nodiscard]] std::int64_t arg(int i) const { return args[i]; }
};

// m1 r-> m2 at the method-call level: some ordering point of m1 is ordered
// before some ordering point of m2 (Section 5.2 "Extracting the Ordering
// Relation").
[[nodiscard]] inline bool call_r_before(const CallRecord& m1, const CallRecord& m2) {
  for (const OPEvent& x : m1.ops) {
    for (const OPEvent& y : m2.ops) {
      if (r_before(x, y)) return true;
    }
  }
  return false;
}

}  // namespace cds::spec

#endif  // CDS_SPEC_CALL_H
