// Recorded method calls and their ordering points.
//
// During an explored execution the annotation runtime (spec/annotations.h)
// collects one CallRecord per outermost API method call: its name, argument
// and return values, and the ordering-point events that determine how the
// call is ordered relative to other calls by the paper's `r = hb ∪ sc`
// relation (Section 3.1).
#ifndef CDS_SPEC_CALL_H
#define CDS_SPEC_CALL_H

#include <cstdint>
#include <vector>

#include "support/vector_clock.h"

namespace cds::spec {

class Specification;

// An atomic operation chosen as an ordering point, with enough of the
// memory-model state snapshotted to answer hb/sc queries afterwards.
struct OPEvent {
  int thread = -1;
  std::uint32_t pos = 0;          // per-thread event position
  support::VectorClock vc;        // thread clock right after the event
  std::uint32_t sc_index = 0;     // position in the SC total order, 0 = none
};

// x is ordered before y by hb: y's clock covers x's event.
[[nodiscard]] inline bool hb_before(const OPEvent& x, const OPEvent& y) {
  if (x.thread == y.thread) return x.pos < y.pos;
  return y.vc.get(static_cast<std::size_t>(x.thread)) >= x.pos;
}

// x is ordered before y by the union of hb and the SC total order.
[[nodiscard]] inline bool r_before(const OPEvent& x, const OPEvent& y) {
  if (hb_before(x, y)) return true;
  return x.sc_index != 0 && y.sc_index != 0 && x.sc_index < y.sc_index;
}

struct CallRecord {
  std::uint32_t id = 0;  // completion order within the execution
  const Specification* spec = nullptr;
  std::uint32_t object = 0;  // per-execution object instance id
  int method = -1;           // index into the spec's method table
  int thread = -1;

  static constexpr int kMaxArgs = 4;
  std::int64_t args[kMaxArgs] = {0, 0, 0, 0};
  int nargs = 0;
  std::int64_t c_ret = 0;
  bool has_ret = false;

  std::vector<OPEvent> ops;

  [[nodiscard]] std::int64_t arg(int i) const { return args[i]; }
};

// m1 r-> m2 at the method-call level: some ordering point of m1 is ordered
// before some ordering point of m2 (Section 5.2 "Extracting the Ordering
// Relation").
[[nodiscard]] inline bool call_r_before(const CallRecord& m1, const CallRecord& m2) {
  for (const OPEvent& x : m1.ops) {
    for (const OPEvent& y : m2.ops) {
      if (r_before(x, y)) return true;
    }
  }
  return false;
}

}  // namespace cds::spec

#endif  // CDS_SPEC_CALL_H
