// The CDSSpec checker: plugs into the model-checking engine and validates
// every feasible execution against the attached specifications via
// non-deterministic linearizability (paper Definitions 1–7, Section 5.2).
//
// Per execution, per object:
//   1. extract the `r` relation from the recorded ordering points,
//   2. check admissibility (Definition 1) against the spec's @Admit rules,
//   3. enumerate valid sequential histories (topological orders of `r`,
//      Definition 2) and replay the sequential specification on each,
//   4. for every method call with justifying conditions, enumerate its
//      justifying subhistories (Definition 3) and require at least one to
//      satisfy them, or the call's CONCURRENT set to (Definition 4).
#ifndef CDS_SPEC_CHECKER_H
#define CDS_SPEC_CHECKER_H

#include <cstdint>
#include <string>
#include <vector>

#include "mc/engine.h"
#include "obs/metrics.h"
#include "spec/annotations.h"
#include "spec/history.h"
#include "spec/specification.h"

namespace cds::spec {

class SpecChecker : public mc::ExecutionListener {
 public:
  struct Options {
    // Exhaustive-history cap per object per execution; beyond it, the
    // checker additionally samples random histories (paper's
    // random-generation option).
    std::uint64_t max_histories = 2048;
    std::uint64_t sampled_histories = 64;
    // Cap on justifying-subhistory orders per call.
    std::uint64_t max_subhistories = 1024;
    // Keep detailed textual reports for at most this many violations.
    std::uint32_t max_reports = 8;
    // Include the engine's event trace in reports.
    bool report_trace = true;
    std::uint64_t seed = 0x5DEECE66Dull;
  };

  struct Stats {
    std::uint64_t executions_checked = 0;
    std::uint64_t inadmissible_execs = 0;
    std::uint64_t assertion_violation_execs = 0;
    std::uint64_t histories_checked = 0;
    std::uint64_t justification_checks = 0;
    bool history_cap_hit = false;
    bool r_cycle_seen = false;
  };

  SpecChecker();
  explicit SpecChecker(Options opts);
  ~SpecChecker() override;

  // Registers this checker as the engine's listener and arms the
  // annotation recorder.
  void attach(mc::Engine& e);
  void detach();

  void on_execution_begin(mc::Engine& e) override;
  bool on_execution_complete(mc::Engine& e) override;
  // Checkpoint persistence: exports the live counters as "spec.cur.*"
  // entries so a kill+resume restores them via restore_from_checkpoint().
  void on_checkpoint(
      std::vector<std::pair<std::string, std::uint64_t>>& extra) override;
  void restore_from_checkpoint(const mc::Checkpoint& cp);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] Recorder& recorder() { return recorder_; }
  [[nodiscard]] const std::vector<std::string>& reports() const { return reports_; }

 private:
  struct ObjectCalls {
    const Specification* spec;
    std::vector<const CallRecord*> calls;
  };

  // Returns true iff the object's calls satisfy the specification on this
  // execution (reports through the engine otherwise).
  bool check_object(mc::Engine& e, const ObjectCalls& oc);
  bool check_admissibility(mc::Engine& e, const ObjectCalls& oc,
                           const std::vector<std::vector<int>>& succ);
  bool check_histories(mc::Engine& e, const ObjectCalls& oc,
                       const std::vector<std::vector<int>>& succ);
  bool check_justifications(mc::Engine& e, const ObjectCalls& oc,
                            const std::vector<std::vector<int>>& succ);

  // Replays one sequential history; returns the index of the first call
  // violating its pre/postcondition, or -1 if the history passes.
  int replay_history(const ObjectCalls& oc,
                     const std::vector<const CallRecord*>& order,
                     std::string* why);

  void file_report(mc::Engine& e, mc::ViolationKind kind, std::string detail);
  [[nodiscard]] std::string format_call(const CallRecord& c) const;
  [[nodiscard]] std::string format_order(
      const std::vector<const CallRecord*>& order) const;

  // Concurrent sets for the execution currently being checked.
  const std::vector<const CallRecord*>* concurrent_of(const CallRecord* c) const;

  Options opts_;
  Stats stats_;
  Recorder recorder_;
  mc::Engine* engine_ = nullptr;
  std::vector<std::string> reports_;

  // Cached metric handles into the attached engine's registry (null until
  // attach). All four are per-execution-pure counters, so sharded runs sum
  // to the serial values bit-for-bit.
  obs::Counter* m_execs_ = nullptr;
  obs::Counter* m_histories_ = nullptr;
  obs::Counter* m_justifications_ = nullptr;
  obs::Counter* m_cap_hits_ = nullptr;

  // Scratch, valid during check_object.
  std::vector<std::vector<const CallRecord*>> concurrent_;
  const std::vector<const CallRecord*>* cur_calls_ = nullptr;
};

}  // namespace cds::spec

#endif  // CDS_SPEC_CHECKER_H
