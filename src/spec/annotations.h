// Runtime annotation API embedded in data-structure implementations.
//
// This is the executable counterpart of the instrumentation the paper's
// specification compiler inserts: method boundaries with argument/return
// capture, and the ordering-point annotations of Figure 5 (OPDefine,
// PotentialOP, OPCheck, OPClear, OPClearDefine).
//
// Usage inside a data structure:
//
//   int deq() {
//     cds::spec::Method m(spec_obj_, "deq");
//     while (true) {
//       Node* h = head.load(acquire);
//       Node* n = h->next.load(acquire);
//       m.op_clear_define();                    // @OPClearDefine: true
//       if (n == nullptr) return m.ret(-1);
//       if (head.compare_exchange_strong(h, n, release))
//         return m.ret(n->data);
//     }
//   }
//
// Annotations are no-ops when no SpecChecker is attached (the same source
// runs under a plain Engine), and nested API method calls are treated as
// internal (only the outermost call is recorded), per Section 4.3.
#ifndef CDS_SPEC_ANNOTATIONS_H
#define CDS_SPEC_ANNOTATIONS_H

#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <source_location>
#include <vector>

#include "spec/call.h"
#include "spec/specification.h"

namespace cds::harness {
class Backend;
}  // namespace cds::harness

namespace cds::spec {

// Collects CallRecords for one execution / iteration. Thread-safe: under
// the stress backend commits arrive from concurrent real threads; under
// the model checker all fibers share one OS thread and the lock is
// uncontended. `calls()` is only valid between iterations (after joins).
class Recorder {
 public:
  // The process-global recorder the model checker's SpecChecker arms
  // (annotations resolve their recorder through Backend::recorder(); the
  // engine forwards to this). Stress backends own private recorders.
  static Recorder* current();
  static void set_current(Recorder* r);

  // Arms the recorder for one execution driven by the given backend.
  void begin_execution(const void* backend_tag);
  [[nodiscard]] bool armed_for(const void* backend_tag) const {
    return backend_tag != nullptr && backend_tag == engine_tag_;
  }

  std::uint32_t new_object();

  // Per-thread API-call nesting (outermost-only recording).
  [[nodiscard]] int enter(int tid);  // returns previous depth
  void leave(int tid);

  void commit(CallRecord rec);

  [[nodiscard]] const std::vector<CallRecord>& calls() const { return calls_; }

 private:
  const void* engine_tag_ = nullptr;
  std::vector<CallRecord> calls_;
  std::uint32_t next_object_ = 0;
  std::vector<int> depth_;
  std::mutex mu_;
};

// Binds one data-structure instance to its specification. Construct inside
// the test body (one per modeled object per execution).
class Object {
 public:
  explicit Object(const Specification& s);

  [[nodiscard]] const Specification& spec() const { return *spec_; }
  [[nodiscard]] std::uint32_t id() const { return id_; }

 private:
  const Specification* spec_;
  std::uint32_t id_ = 0;
};

// RAII method-boundary guard; also the handle for ordering-point
// annotations and return-value capture.
class Method {
 public:
  Method(const Object& obj, const char* name,
         std::initializer_list<std::int64_t> args = {});
  ~Method();
  Method(const Method&) = delete;
  Method& operator=(const Method&) = delete;

  // Captures the concurrent return value (C_RET); returns v so call sites
  // can write `return m.ret(v);`.
  std::int64_t ret(std::int64_t v);

  // @OPDefine: the atomic operation this thread just performed is an
  // ordering point.
  void op_define(std::source_location loc = std::source_location::current());
  // @PotentialOP(label)
  void potential_op(int label,
                    std::source_location loc = std::source_location::current());
  // @OPCheck(label): promote previously recorded potential ordering points
  // with this label to real ordering points.
  void op_check(int label,
                std::source_location loc = std::source_location::current());
  // @OPClear: discard all ordering points recorded so far in this call.
  void op_clear(std::source_location loc = std::source_location::current());
  // @OPClearDefine: OPClear followed by OPDefine.
  void op_clear_define(std::source_location loc = std::source_location::current());

  [[nodiscard]] bool active() const { return active_; }

 private:
  [[nodiscard]] OPEvent snapshot() const;
  void note_site(const char* kind, const std::source_location& loc) const;

  Recorder* rec_ = nullptr;
  harness::Backend* backend_ = nullptr;
  const Specification* spec_ = nullptr;
  int tid_ = -1;
  bool active_ = false;
  CallRecord call_;
  std::vector<std::pair<int, OPEvent>> potentials_;
};

}  // namespace cds::spec

#endif  // CDS_SPEC_ANNOTATIONS_H
