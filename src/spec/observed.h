// Existential specification check over one observed history.
//
// The model checker's SpecChecker (spec/checker.h) enumerates sequential
// histories of an execution and reports a violation when ANY topological
// order of the r relation fails — universal semantics, justified by the
// engine enumerating every execution, so a spurious order on one execution
// is a real order on another.
//
// The stress backend (harness/stress_backend.h) observes a single hardware
// schedule per iteration, and its r relation is only the real-time interval
// order (spec/call.h: rt_begin/rt_end) — a sound under-approximation that
// lacks the reads-from-derived edges the model tracks. Under-ordering means
// extra topological orders that no C/C++11 execution justifies, so the
// universal check would report false violations. This header provides the
// dual, sound-for-stress semantics: the observed history is a violation
// only when the enumeration COMPLETED (no cap) and NO order passes — i.e.
// no linearization of what actually happened satisfies the specification.
// Admissibility checks are skipped: they reason about which concurrent
// usages the spec forbids, which requires the model's precise r relation.
#ifndef CDS_SPEC_OBSERVED_H
#define CDS_SPEC_OBSERVED_H

#include <cstdint>
#include <string>
#include <vector>

#include "spec/call.h"

namespace cds::spec {

struct ObservedCheckResult {
  // Set only when some object's call set has no passing order and the
  // order enumeration for it was exhaustive.
  bool violation = false;
  std::string detail;
  // Some object hit the enumeration cap without a passing order: the
  // iteration is unresolved (never a violation).
  bool capped = false;
  std::uint64_t histories_checked = 0;
};

// Checks every object's calls within one iteration's committed records.
// `max_histories` caps the per-object topological-order enumeration.
[[nodiscard]] ObservedCheckResult check_observed_calls(
    const std::vector<CallRecord>& calls, std::uint64_t max_histories);

}  // namespace cds::spec

#endif  // CDS_SPEC_OBSERVED_H
