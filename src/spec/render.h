// Diagnostics rendering: the method-call graph of an execution (nodes =
// calls with args/returns, edges = the r relation) as Graphviz DOT, for
// eyeballing why a history ordered calls the way it did.
#ifndef CDS_SPEC_RENDER_H
#define CDS_SPEC_RENDER_H

#include <string>
#include <vector>

#include "spec/call.h"

namespace cds::spec {

// Renders the calls (typically Recorder::calls() of one execution) and
// their direct r edges. Calls on different objects get distinct clusters.
[[nodiscard]] std::string render_dot(const std::vector<CallRecord>& calls);

}  // namespace cds::spec

#endif  // CDS_SPEC_RENDER_H
