#include "spec/observed.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

#include "spec/history.h"
#include "spec/specification.h"

namespace cds::spec {

namespace {

std::string format_call(const CallRecord& c) {
  std::ostringstream os;
  os << c.spec->method_at(c.method).name() << '(';
  for (int i = 0; i < c.nargs; ++i) {
    if (i > 0) os << ", ";
    os << c.args[i];
  }
  os << ')';
  if (c.has_ret) os << '=' << c.c_ret;
  os << " [T" << c.thread << ']';
  return os.str();
}

std::string format_order(const std::vector<const CallRecord*>& order) {
  std::string s;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (i > 0) s += " -> ";
    s += format_call(*order[i]);
  }
  return s;
}

struct ObjectCalls {
  const Specification* spec = nullptr;
  std::vector<const CallRecord*> calls;
};

// One call at its position in a candidate order. A call normally passes via
// pre -> side_effect -> post; when the normal precondition does not hold at
// this position and the method declares justifying conditions, the
// justifying pair stands in (the observed-history analogue of the model
// checker's justifying-subhistory escape — under the weaker real-time r,
// a call that looks out of place may simply have overlapped its justifier).
bool call_passes(const MethodSpec& ms, Ctx& ctx, std::string* why,
                 const CallRecord& c) {
  if (ms.check_pre(ctx)) {
    ms.apply_side_effect(ctx);
    if (ms.check_post(ctx)) return true;
    *why = "postcondition of " + format_call(c) + " failed (S_RET=" +
           std::to_string(ctx.s_ret) + ")";
    return false;
  }
  if (ms.has_justifying()) {
    if (ms.check_justifying_pre(ctx)) {
      ms.apply_side_effect(ctx);
      if (ms.check_justifying_post(ctx)) return true;
      *why = "justifying postcondition of " + format_call(c) + " failed";
      return false;
    }
    *why = "neither precondition nor justifying precondition of " +
           format_call(c) + " holds";
    return false;
  }
  *why = "precondition of " + format_call(c) + " failed";
  return false;
}

// True iff `order` is a legal sequential history of the object.
bool replay_order(const ObjectCalls& oc,
                  const std::vector<const CallRecord*>& order,
                  const std::vector<std::vector<const CallRecord*>>& concurrent,
                  std::string* why) {
  const Specification& spec = *oc.spec;
  Specification::State st(spec);
  for (const CallRecord* cp : order) {
    const CallRecord& c = *cp;
    const MethodSpec& ms = spec.method_at(c.method);
    const std::vector<const CallRecord*>* conc = nullptr;
    for (std::size_t i = 0; i < oc.calls.size(); ++i) {
      if (oc.calls[i] == cp) {
        conc = &concurrent[i];
        break;
      }
    }
    Ctx ctx(st.get(), c, conc);
    if (!call_passes(ms, ctx, why, c)) return false;
  }
  return true;
}

void check_object(const ObjectCalls& oc, std::uint64_t max_histories,
                  ObservedCheckResult* out) {
  const auto n = oc.calls.size();
  if (n == 0 || oc.spec == nullptr) return;
  std::vector<std::vector<int>> succ = build_r_edges(oc.calls);

  // concurrent(m): r-unordered peers (consumed by CONCURRENT() in specs).
  std::vector<std::vector<const CallRecord*>> concurrent(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      bool ij = std::find(succ[i].begin(), succ[i].end(),
                          static_cast<int>(j)) != succ[i].end();
      bool ji = std::find(succ[j].begin(), succ[j].end(),
                          static_cast<int>(i)) != succ[j].end();
      if (!ij && !ji) concurrent[i].push_back(oc.calls[j]);
    }
  }

  bool passed = false;
  std::string first_why;
  auto cb = [&](const std::vector<const CallRecord*>& order) {
    ++out->histories_checked;
    std::string why;
    if (replay_order(oc, order, concurrent, &why)) {
      passed = true;
      return false;  // one passing linearization suffices
    }
    if (first_why.empty()) first_why = why;
    return true;
  };

  TopoResult res = for_each_topo_order(oc.calls, succ, max_histories, cb);
  if (passed) return;
  if (res.cycle) {
    // The real-time interval order cannot be cyclic; a cycle means the
    // backend recorded inconsistent ordering points.
    out->violation = true;
    out->detail = "spec '" + oc.spec->name() +
                  "': observed ordering points induce a cyclic r relation";
    return;
  }
  if (res.capped) {
    // Ran out of enumeration budget before finding a passing order; the
    // iteration stays unresolved.
    out->capped = true;
    return;
  }
  out->violation = true;
  std::ostringstream os;
  os << "spec '" << oc.spec->name() << "': no sequential history of the "
     << n << " observed calls passes (" << res.count << " orders tried); "
     << first_why << "\n  observed calls: ";
  os << format_order(oc.calls);
  out->detail = os.str();
}

}  // namespace

ObservedCheckResult check_observed_calls(const std::vector<CallRecord>& calls,
                                         std::uint64_t max_histories) {
  ObservedCheckResult out;
  std::map<std::pair<const Specification*, std::uint32_t>, ObjectCalls> objs;
  for (const CallRecord& c : calls) {
    if (c.spec == nullptr || c.method < 0) continue;
    ObjectCalls& oc = objs[{c.spec, c.object}];
    oc.spec = c.spec;
    oc.calls.push_back(&c);
  }
  for (auto& [key, oc] : objs) {
    check_object(oc, max_histories, &out);
    if (out.violation) break;
  }
  return out;
}

}  // namespace cds::spec
