#include "spec/render.h"

#include <map>
#include <sstream>

#include "spec/specification.h"

namespace cds::spec {

std::string render_dot(const std::vector<CallRecord>& calls) {
  std::ostringstream os;
  os << "digraph r_relation {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n";

  // Cluster per object.
  std::map<std::uint32_t, std::vector<const CallRecord*>> by_object;
  for (const CallRecord& c : calls) by_object[c.object].push_back(&c);

  for (const auto& [obj, group] : by_object) {
    os << "  subgraph cluster_" << obj << " {\n";
    os << "    label=\"" << (group.empty() ? "?" : group[0]->spec->name())
       << " #" << obj << "\";\n";
    for (const CallRecord* c : group) {
      os << "    n" << c->id << " [label=\""
         << c->spec->method_at(c->method).name() << "(";
      for (int i = 0; i < c->nargs; ++i) {
        if (i > 0) os << ",";
        os << c->args[i];
      }
      os << ")";
      if (c->has_ret) os << "=" << c->c_ret;
      os << "\\nT" << c->thread << "\"];\n";
    }
    os << "  }\n";
  }

  // Direct r edges (within objects; r is only used per object).
  for (const auto& [obj, group] : by_object) {
    (void)obj;
    for (const CallRecord* a : group) {
      for (const CallRecord* b : group) {
        if (a == b) continue;
        if (call_r_before(*a, *b)) {
          os << "  n" << a->id << " -> n" << b->id << ";\n";
        }
      }
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace cds::spec
