#include "spec/specification.h"

#include <algorithm>
#include <mutex>

namespace cds::spec {

namespace {
// Serializes op-site accounting across real threads (stress backend); the
// model checker's fibers share one OS thread, so it only pays an
// uncontended lock on a cold diagnostic path.
std::mutex& op_site_mutex() {
  static std::mutex m;
  return m;
}
}  // namespace

Specification::Specification(std::string name) : name_(std::move(name)) {}
Specification::~Specification() = default;

MethodSpec& Specification::method(const std::string& name) {
  int idx = method_index(name);
  if (idx >= 0) return *methods_[static_cast<std::size_t>(idx)];
  methods_.push_back(
      std::make_unique<MethodSpec>(name, static_cast<int>(methods_.size())));
  return *methods_.back();
}

Specification& Specification::admit(const std::string& m1, const std::string& m2,
                                    AdmitFn guard) {
  // Referencing a method in a rule declares it.
  int i1 = method(m1).index();
  int i2 = method(m2).index();
  admits_.push_back(AdmitRule{i1, i2, std::move(guard)});
  return *this;
}

int Specification::method_index(const std::string& name) const {
  for (const auto& m : methods_) {
    if (m->name() == name) return m->index();
  }
  return -1;
}

int Specification::spec_lines() const {
  int lines = has_state() ? 1 : 0;
  for (const auto& m : methods_) lines += m->annotation_count();
  lines += static_cast<int>(admits_.size());
  lines += static_cast<int>(op_sites_.size());
  return lines;
}

void Specification::note_op_site(const std::string& site_key) {
  std::lock_guard<std::mutex> lock(op_site_mutex());
  if (std::find(op_sites_.begin(), op_sites_.end(), site_key) == op_sites_.end()) {
    op_sites_.push_back(site_key);
  }
}

int Specification::ordering_point_sites() const {
  std::lock_guard<std::mutex> lock(op_site_mutex());
  return static_cast<int>(op_sites_.size());
}

}  // namespace cds::spec
