// The CDSSpec specification DSL.
//
// This is the typed-C++ counterpart of the paper's annotation grammar
// (Figure 5); see DESIGN.md for the one-to-one mapping. A Specification
// bundles:
//   - the equivalent sequential data structure's state (@DeclareState),
//   - per-method side effects and assertions (@SideEffect, @PreCondition,
//     @PostCondition, @JustifyingPrecondition, @JustifyingPostcondition),
//   - admissibility rules (@Admit: m1 <-> m2 (cond)).
//
// Inside the condition/effect lambdas, `Ctx` exposes the paper's keywords:
// C_RET (ctx.c_ret()), S_RET (ctx.s_ret), method arguments (ctx.arg(i)),
// the declared state (ctx.st<T>()), and CONCURRENT (ctx.concurrent()).
#ifndef CDS_SPEC_SPECIFICATION_H
#define CDS_SPEC_SPECIFICATION_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "spec/call.h"

namespace cds::spec {

class Specification;

// Evaluation context for one method call during a sequential replay.
class Ctx {
 public:
  Ctx(void* state, const CallRecord& call,
      const std::vector<const CallRecord*>* concurrent)
      : state_(state), call_(&call), concurrent_(concurrent) {}

  // The declared sequential state (@DeclareState); T must match the
  // spec's state<T>() declaration.
  template <typename T>
  [[nodiscard]] T& st() const {
    return *static_cast<T*>(state_);
  }

  [[nodiscard]] std::int64_t arg(int i) const { return call_->arg(i); }
  [[nodiscard]] std::int64_t c_ret() const { return call_->c_ret; }
  [[nodiscard]] const CallRecord& call() const { return *call_; }

  // CONCURRENT: the method calls concurrent with this one (empty outside
  // justification checks of executions with concurrency).
  [[nodiscard]] const std::vector<const CallRecord*>& concurrent() const {
    static const std::vector<const CallRecord*> kEmpty;
    return concurrent_ != nullptr ? *concurrent_ : kEmpty;
  }

  // S_RET: the sequential return value, written by the side effect and read
  // by the postcondition.
  std::int64_t s_ret = 0;

 private:
  void* state_;
  const CallRecord* call_;
  const std::vector<const CallRecord*>* concurrent_;
};

using EffectFn = std::function<void(Ctx&)>;
using CondFn = std::function<bool(Ctx&)>;
// Admissibility guard over a concrete unordered pair (M1 = first-named
// method of the rule, M2 = the other call).
using AdmitFn = std::function<bool(const CallRecord& m1, const CallRecord& m2)>;

class MethodSpec {
 public:
  explicit MethodSpec(std::string name, int index)
      : name_(std::move(name)), index_(index) {}

  MethodSpec& side_effect(EffectFn fn) {
    side_effect_ = std::move(fn);
    return *this;
  }
  MethodSpec& pre(CondFn fn) {
    pre_ = std::move(fn);
    return *this;
  }
  MethodSpec& post(CondFn fn) {
    post_ = std::move(fn);
    return *this;
  }
  MethodSpec& justifying_pre(CondFn fn) {
    justifying_pre_ = std::move(fn);
    return *this;
  }
  MethodSpec& justifying_post(CondFn fn) {
    justifying_post_ = std::move(fn);
    return *this;
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int index() const { return index_; }
  [[nodiscard]] bool has_justifying() const {
    return justifying_pre_ != nullptr || justifying_post_ != nullptr;
  }
  [[nodiscard]] int annotation_count() const {
    return (side_effect_ ? 1 : 0) + (pre_ ? 1 : 0) + (post_ ? 1 : 0) +
           (justifying_pre_ ? 1 : 0) + (justifying_post_ ? 1 : 0);
  }

  void apply_side_effect(Ctx& c) const {
    if (side_effect_) side_effect_(c);
  }
  [[nodiscard]] bool check_pre(Ctx& c) const { return !pre_ || pre_(c); }
  [[nodiscard]] bool check_post(Ctx& c) const { return !post_ || post_(c); }
  [[nodiscard]] bool check_justifying_pre(Ctx& c) const {
    return !justifying_pre_ || justifying_pre_(c);
  }
  [[nodiscard]] bool check_justifying_post(Ctx& c) const {
    return !justifying_post_ || justifying_post_(c);
  }

 private:
  std::string name_;
  int index_;
  EffectFn side_effect_;
  CondFn pre_, post_, justifying_pre_, justifying_post_;
};

struct AdmitRule {
  int m1;  // method index of the rule's first name
  int m2;  // method index of the rule's second name
  AdmitFn guard;
};

class Specification {
 public:
  explicit Specification(std::string name);
  ~Specification();
  Specification(const Specification&) = delete;
  Specification& operator=(const Specification&) = delete;

  // @DeclareState — T is default-constructed per sequential replay
  // (@Initial/@Copy/@Clear default to T's special members, as the paper
  // notes is almost always sufficient).
  template <typename T>
  Specification& state() {
    create_state_ = []() -> void* { return new T(); };
    destroy_state_ = [](void* p) { delete static_cast<T*>(p); };
    return *this;
  }

  // Declares (or returns the already-declared) method named `name`.
  MethodSpec& method(const std::string& name);

  // @Admit: m1 <-> m2 (cond). When an execution leaves a concrete (m1, m2)
  // pair unordered by `r` and the guard returns true, the execution is
  // inadmissible: the data structure's behavior is not specified for it.
  Specification& admit(const std::string& m1, const std::string& m2, AdmitFn guard);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int method_index(const std::string& name) const;  // -1 if absent
  [[nodiscard]] const MethodSpec& method_at(int idx) const { return *methods_[static_cast<std::size_t>(idx)]; }
  [[nodiscard]] int method_count() const { return static_cast<int>(methods_.size()); }
  [[nodiscard]] const std::vector<AdmitRule>& admits() const { return admits_; }
  [[nodiscard]] bool has_state() const { return create_state_ != nullptr; }

  // RAII holder for one sequential-replay state instance.
  class State {
   public:
    explicit State(const Specification& s)
        : p_(s.create_state_ ? s.create_state_() : nullptr),
          destroy_(s.destroy_state_) {}
    ~State() {
      if (p_ != nullptr) destroy_(p_);
    }
    State(const State&) = delete;
    State& operator=(const State&) = delete;
    [[nodiscard]] void* get() const { return p_; }

   private:
    void* p_;
    void (*destroy_)(void*);
  };

  // --- expressiveness accounting (paper Section 6.2) -------------------
  // Lines of specification: 1 for the state declaration, 1 per method
  // annotation, 1 per admissibility rule, plus 1 per distinct ordering-
  // point annotation site (counted by the annotation runtime).
  [[nodiscard]] int spec_lines() const;
  [[nodiscard]] int admissibility_lines() const { return static_cast<int>(admits_.size()); }
  // Thread-safe (annotation sites fire from concurrent real threads under
  // the stress backend); serialized on a process-wide mutex in the .cc.
  void note_op_site(const std::string& site_key);
  [[nodiscard]] int ordering_point_sites() const;

 private:
  std::string name_;
  std::vector<std::unique_ptr<MethodSpec>> methods_;
  std::vector<AdmitRule> admits_;
  void* (*create_state_)() = nullptr;
  void (*destroy_state_)(void*) = nullptr;
  std::vector<std::string> op_sites_;
};

}  // namespace cds::spec

#endif  // CDS_SPEC_SPECIFICATION_H
