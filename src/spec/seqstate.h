// Pre-defined equivalent-sequential-data-structure state types
// (paper Section 4.1: "CDSSpec includes several useful pre-defined types —
// an ordered list, a set, and a hashmap"). Specs may also declare any
// default-constructible type of their own.
#ifndef CDS_SPEC_SEQSTATE_H
#define CDS_SPEC_SEQSTATE_H

#include <cstdint>
#include <deque>
#include <map>
#include <set>

namespace cds::spec {

using IntList = std::deque<std::int64_t>;
using IntSet = std::set<std::int64_t>;
using IntMap = std::map<std::int64_t, std::int64_t>;

}  // namespace cds::spec

#endif  // CDS_SPEC_SEQSTATE_H
