// Sequential-history generation: enumerating (and sampling) the topological
// orders of the method-call graph induced by the `r` relation
// (paper Section 5.2 "Generating and Checking Sequential Histories").
#ifndef CDS_SPEC_HISTORY_H
#define CDS_SPEC_HISTORY_H

#include <cstdint>
#include <functional>
#include <vector>

#include "spec/call.h"

namespace cds::spec {

struct TopoResult {
  std::uint64_t count = 0;  // orders delivered to the callback
  bool capped = false;      // enumeration stopped at the cap
  bool cycle = false;       // edges were cyclic (no valid history)
  bool stopped = false;     // callback requested early stop
};

// Direct `r` edges among `calls` (indices into the vector): succ[i] holds j
// iff calls[i] r-> calls[j].
[[nodiscard]] std::vector<std::vector<int>> build_r_edges(
    const std::vector<const CallRecord*>& calls);

// Invokes `cb` with every topological order of `calls` under `succ`, up to
// `cap` orders. `cb` returns false to stop early.
TopoResult for_each_topo_order(
    const std::vector<const CallRecord*>& calls,
    const std::vector<std::vector<int>>& succ, std::uint64_t cap,
    const std::function<bool(const std::vector<const CallRecord*>&)>& cb);

// Draws `n` uniformly-step-random topological orders (the paper's
// random-sampling option for executions whose history count explodes).
TopoResult sample_topo_orders(
    const std::vector<const CallRecord*>& calls,
    const std::vector<std::vector<int>>& succ, std::uint64_t n,
    std::uint64_t seed,
    const std::function<bool(const std::vector<const CallRecord*>&)>& cb);

}  // namespace cds::spec

#endif  // CDS_SPEC_HISTORY_H
