#include "dist/worker.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include <algorithm>

#include "dist/net.h"
#include "dist/protocol.h"
#include "harness/shard_result.h"
#include "support/io.h"
#include "support/rng.h"

#if defined(__unix__) || defined(__APPLE__)
#define CDS_DIST_WORKER_POSIX 1
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace cds::dist {

#ifdef CDS_DIST_WORKER_POSIX

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Re-dials with capped exponential backoff plus jitter (seeded by pid),
// so a fleet of workers orphaned by a coordinator crash spreads its
// reconnect attempts out while the coordinator restarts with --resume,
// instead of hammering the address in lockstep every 100ms.
int dial_until(const Address& a, double timeout_seconds) {
  const double deadline = now_seconds() + timeout_seconds;
  support::Xorshift64 rng(support::derive_seed(
      static_cast<std::uint64_t>(getpid()), 0x6a09e667f3bcc908ull));
  double backoff = 0.05;
  for (;;) {
    std::string err;
    int fd = connect_to(a, &err);
    if (fd >= 0) return fd;
    const double now = now_seconds();
    if (now >= deadline) {
      std::fprintf(stderr, "cds::dist::worker: %s (gave up after %.1fs)\n",
                   err.c_str(), timeout_seconds);
      return -1;
    }
    const double unit = static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
    double wait = backoff * (0.5 + unit);  // [0.5, 1.5) x backoff
    wait = std::min(wait, deadline - now);
    usleep(static_cast<unsigned>(wait * 1e6) + 1);
    backoff = std::min(backoff * 2.0, 2.0);
  }
}

// What ended one assignment's conversation.
enum class Outcome { kDone, kQuit, kConnLost };

struct WorkerState {
  int fd = -1;
  FrameBuffer buf;
  double hb_interval = 1.0;  // from welcome; refreshed per connection
  std::uint64_t epoch = 0;   // coordinator incarnation, from welcome
  std::uint64_t assignments = 0;  // across reconnects (chaos ordinals)
};

// Flips the version line so the coordinator's strict parser rejects the
// payload deterministically (random flips could mutate a digit into
// another digit and merge wrong counters instead of failing).
void corrupt_payload(std::string* text) {
  for (std::size_t i = 0; i < text->size() && i < 16; ++i) {
    (*text)[i] = static_cast<char>((*text)[i] ^ 0x5A);
  }
}

bool send_result(WorkerState& ws, const WorkerOptions& opts, std::uint64_t id,
                 std::string text) {
  const bool truncate =
      opts.chaos.truncate_result_on ==
      static_cast<std::ptrdiff_t>(ws.assignments);
  const bool corrupt = opts.chaos.corrupt_result_on ==
                       static_cast<std::ptrdiff_t>(ws.assignments);
  const bool die_mid = opts.chaos.die_mid_result_on ==
                       static_cast<std::ptrdiff_t>(ws.assignments);
  if (truncate) text.resize(text.size() / 2);
  if (corrupt) corrupt_payload(&text);
  if (die_mid) {
    const std::string hdr = render_result_header(id, text.size());
    (void)support::write_full(ws.fd, hdr);
    (void)support::write_full(ws.fd, text.data(), text.size() / 2);
    raise(SIGKILL);
  }
  return support::write_full(ws.fd, render_result_header(id, text.size())) &&
         support::write_full(ws.fd, text);
}

// Runs one assignment to completion while keeping the coordinator
// conversation alive (heartbeats out, steal/quit in).
Outcome run_assignment(WorkerState& ws, const WorkerOptions& opts,
                       const BenchmarkResolver& resolve, const Assignment& a) {
  const harness::Benchmark* b = resolve(a.bench);
  if (b == nullptr || a.unit.test_index >= b->tests.size()) {
    const std::string why =
        b == nullptr ? "unknown benchmark '" + a.bench + "'"
                     : "test index out of range for '" + a.bench + "'";
    return support::write_full(ws.fd, render_failed(a.shard_id, why))
               ? Outcome::kDone
               : Outcome::kConnLost;
  }

  int stop_pipe[2], res_pipe[2];
  if (pipe(stop_pipe) != 0) {
    return support::write_full(ws.fd, render_failed(a.shard_id, "pipe failed"))
               ? Outcome::kDone
               : Outcome::kConnLost;
  }
  if (pipe(res_pipe) != 0) {
    close(stop_pipe[0]);
    close(stop_pipe[1]);
    return support::write_full(ws.fd, render_failed(a.shard_id, "pipe failed"))
               ? Outcome::kDone
               : Outcome::kConnLost;
  }

  pid_t child = fork();
  if (child < 0) {
    close(stop_pipe[0]);
    close(stop_pipe[1]);
    close(res_pipe[0]);
    close(res_pipe[1]);
    return support::write_full(ws.fd, render_failed(a.shard_id, "fork failed"))
               ? Outcome::kDone
               : Outcome::kConnLost;
  }
  if (child == 0) {
    // Shard child: no coordinator socket, a stop pipe in, a result pipe
    // out. A crash in the test body kills only this process.
    close(ws.fd);
    close(stop_pipe[1]);
    close(res_pipe[0]);
    const int stop_fd = stop_pipe[0];
    harness::RunOptions base;
    base.engine = a.engine;
    base.checker = a.checker;
    base.engine.progress_interval_seconds = opts.progress_interval_seconds;
    auto stop_request = [stop_fd]() {
      pollfd p{};
      p.fd = stop_fd;
      p.events = POLLIN;
      // Preempt on a steal byte — or on parent death (HUP): an orphaned
      // shard should wind down, not burn CPU for a result nobody reads.
      return poll(&p, 1, 0) > 0 &&
             (p.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
    };
    const std::string text =
        harness::run_shard_unit(*b, base, a.unit, stop_request);
    (void)support::write_full(res_pipe[1], text);
    _exit(0);
  }

  close(stop_pipe[0]);
  close(res_pipe[1]);
  const int stop_w = stop_pipe[1];
  const int res_r = res_pipe[0];
  std::string result_text;
  bool child_eof = false;
  const bool mute_hb =
      opts.chaos.mute_heartbeats_on >= 0 &&
      static_cast<std::uint64_t>(opts.chaos.mute_heartbeats_on) <=
          ws.assignments;
  double next_hb = now_seconds() + ws.hb_interval;
  Outcome out = Outcome::kDone;
  bool done = false;

  while (!done) {
    pollfd pfds[2];
    pfds[0] = {ws.fd, POLLIN, 0};
    pfds[1] = {res_r, POLLIN, 0};
    const double wait = next_hb - now_seconds();
    int rc = poll(pfds, child_eof ? 1 : 2,
                  wait <= 0 ? 0 : static_cast<int>(wait * 1000) + 1);
    if (rc < 0 && errno != EINTR) {
      out = Outcome::kConnLost;
      break;
    }
    if (now_seconds() >= next_hb) {
      next_hb = now_seconds() + ws.hb_interval;
      if (!mute_hb &&
          !support::write_full(ws.fd, render_heartbeat(a.shard_id))) {
        out = Outcome::kConnLost;
        break;
      }
    }
    if (rc <= 0) continue;

    if (pfds[0].revents & (POLLIN | POLLHUP | POLLERR)) {
      char tmp[4096];
      long got = support::read_some(ws.fd, tmp, sizeof tmp);
      if (got <= 0) {
        out = Outcome::kConnLost;
        break;
      }
      ws.buf.append(tmp, static_cast<std::size_t>(got));
      std::string line;
      while (ws.buf.next_line(&line)) {
        ControlLine c;
        std::string err;
        if (!parse_control_line(line, &c, &err)) {
          std::fprintf(stderr, "cds::dist::worker: dropping garbage: %s\n",
                       err.c_str());
          continue;
        }
        if (c.kind == ControlLine::Kind::kQuit) {
          out = Outcome::kQuit;
          done = true;
          break;
        }
        if (c.kind == ControlLine::Kind::kSteal && c.shard_id == a.shard_id) {
          (void)support::write_full(stop_w, "s", 1);
        }
        // Anything else mid-assignment (another assign, a stray welcome)
        // is a coordinator bug; ignore rather than desync.
      }
      if (ws.buf.overflowed()) {
        out = Outcome::kConnLost;
        break;
      }
      if (done) break;
    }

    if (!child_eof && (pfds[1].revents & (POLLIN | POLLHUP | POLLERR))) {
      char tmp[65536];
      long got = support::read_some(res_r, tmp, sizeof tmp);
      if (got > 0) {
        result_text.append(tmp, static_cast<std::size_t>(got));
      } else {
        child_eof = true;
        int status = 0;
        waitpid(child, &status, 0);
        child = -1;
        bool ok = WIFEXITED(status) && WEXITSTATUS(status) == 0 &&
                  !result_text.empty();
        if (ok) {
          if (!send_result(ws, opts, a.shard_id, std::move(result_text))) {
            out = Outcome::kConnLost;
          }
        } else {
          std::string why = "shard child ";
          if (WIFSIGNALED(status)) {
            why += "killed by signal " + std::to_string(WTERMSIG(status));
          } else {
            why += "exited " + std::to_string(WEXITSTATUS(status));
            if (result_text.empty()) why += " with no result";
          }
          if (!support::write_full(ws.fd, render_failed(a.shard_id, why))) {
            out = Outcome::kConnLost;
          }
        }
        done = true;
      }
    }
  }

  if (child > 0) {
    kill(child, SIGKILL);
    int status = 0;
    waitpid(child, &status, 0);
  }
  close(stop_w);
  close(res_r);
  return out;
}

}  // namespace

int run_worker(const std::string& addr, const WorkerOptions& opts) {
  Address a;
  std::string err;
  if (!parse_address(addr, &a, &err)) {
    std::fprintf(stderr, "cds::dist::worker: %s\n", err.c_str());
    return 1;
  }
  support::SigpipeIgnoreScope sigpipe_guard;
  const BenchmarkResolver resolve =
      opts.resolve ? opts.resolve : [](const std::string& name) {
        return harness::find_benchmark(name);
      };

  WorkerState ws;
  for (;;) {  // one iteration per (re)connection
    ws.fd = dial_until(a, opts.connect_timeout_seconds);
    if (ws.fd < 0) return 1;
    ws.buf = FrameBuffer{};
    if (!support::write_full(ws.fd,
                             render_hello(static_cast<std::uint64_t>(getpid())))) {
      close(ws.fd);
      continue;
    }

    bool reconnect = false;
    while (!reconnect) {
      if (wait_readable(ws.fd, 1.0) < 0) {
        reconnect = true;
        break;
      }
      char tmp[4096];
      // Only read when data is actually buffered; wait_readable timing out
      // just loops (an idle worker has nothing to say).
      pollfd probe{ws.fd, POLLIN, 0};
      if (poll(&probe, 1, 0) <= 0) continue;
      long got = support::read_some(ws.fd, tmp, sizeof tmp);
      if (got <= 0) {
        reconnect = true;
        break;
      }
      ws.buf.append(tmp, static_cast<std::size_t>(got));

      std::string line;
      while (!reconnect && ws.buf.next_line(&line)) {
        ControlLine c;
        if (!parse_control_line(line, &c, &err)) {
          std::fprintf(stderr, "cds::dist::worker: dropping garbage: %s\n",
                       err.c_str());
          continue;
        }
        switch (c.kind) {
          case ControlLine::Kind::kWelcome:
            if (c.heartbeat_us > 0) {
              ws.hb_interval = static_cast<double>(c.heartbeat_us) / 1e6;
            }
            if (ws.epoch != 0 && c.epoch != ws.epoch) {
              std::fprintf(stderr,
                           "cds::dist::worker: coordinator epoch %llu -> "
                           "%llu (restarted); prior results will be fenced\n",
                           static_cast<unsigned long long>(ws.epoch),
                           static_cast<unsigned long long>(c.epoch));
            }
            ws.epoch = c.epoch;
            break;
          case ControlLine::Kind::kQuit:
            close(ws.fd);
            return 0;
          case ControlLine::Kind::kAssign: {
            if (c.payload_len > FrameBuffer::kMaxPayload) {
              std::fprintf(stderr,
                           "cds::dist::worker: oversized assignment "
                           "(%llu bytes); disconnecting\n",
                           static_cast<unsigned long long>(c.payload_len));
              reconnect = true;
              break;
            }
            // Block until the whole payload arrived (the coordinator sends
            // header+payload back to back).
            std::string payload;
            while (!ws.buf.take(static_cast<std::size_t>(c.payload_len),
                                &payload)) {
              long more = support::read_some(ws.fd, tmp, sizeof tmp);
              if (more <= 0) {
                reconnect = true;
                break;
              }
              ws.buf.append(tmp, static_cast<std::size_t>(more));
            }
            if (reconnect) break;
            ++ws.assignments;
            if (opts.chaos.kill_on_assignment ==
                static_cast<std::ptrdiff_t>(ws.assignments)) {
              raise(SIGKILL);
            }
            Assignment asg;
            if (!parse_assignment(payload, &asg, &err)) {
              std::fprintf(stderr,
                           "cds::dist::worker: bad assignment (%s)\n",
                           err.c_str());
              if (!support::write_full(
                      ws.fd, render_failed(c.shard_id,
                                           "unparseable assignment: " + err))) {
                reconnect = true;
              }
              break;
            }
            switch (run_assignment(ws, opts, resolve, asg)) {
              case Outcome::kDone:
                break;
              case Outcome::kQuit:
                close(ws.fd);
                return 0;
              case Outcome::kConnLost:
                reconnect = true;
                break;
            }
            break;
          }
          default:
            // steal/hb/result/failed/hello make no sense coordinator->
            // worker while idle; drop them.
            break;
        }
      }
      if (ws.buf.overflowed()) reconnect = true;
    }
    close(ws.fd);
    ws.fd = -1;
    // Loop back into dial_until: the coordinator may still be alive (a
    // transient drop) — if it is not, the dial deadline ends the worker.
  }
}

#else  // !CDS_DIST_WORKER_POSIX

int run_worker(const std::string&, const WorkerOptions&) {
  std::fprintf(stderr,
               "cds::dist::worker: unsupported on this platform (no fork)\n");
  return 1;
}

#endif

}  // namespace cds::dist
