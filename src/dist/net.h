// Socket transport for the distributed coordinator/worker protocol:
// address parsing ("host:port" TCP or "unix:PATH" Unix-domain), listen /
// connect / accept wrappers, and the FrameBuffer that turns a byte stream
// into the protocol's line + length-prefixed-payload frames.
//
// Everything here is loopback-grade plumbing: blocking sockets driven by
// poll(2) readiness, EINTR-safe reads via support::read_some, and hard
// size limits so a garbage or adversarial peer can exhaust neither memory
// nor the parser (oversized lines and payloads are protocol errors, not
// allocations).
#ifndef CDS_DIST_NET_H
#define CDS_DIST_NET_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace cds::dist {

struct Address {
  bool unix_domain = false;
  std::string path;  // unix_domain
  std::string host;  // TCP; empty = all interfaces (listen) / refused (connect)
  std::uint16_t port = 0;
};

// "unix:/path/to.sock" or "host:port" ("127.0.0.1:9000", ":9000"). Strict:
// a missing port, a port outside 1..65535, or an empty unix path reject
// with a diagnostic.
bool parse_address(const std::string& s, Address* out, std::string* err);

std::string to_string(const Address& a);

// Each returns a connected/listening fd, or -1 with a reason in *err.
// listen_on unlinks a pre-existing unix socket path before binding.
int listen_on(const Address& a, std::string* err);
int connect_to(const Address& a, std::string* err);

// accept(2) with EINTR retry; -1 on any other error.
int accept_conn(int listen_fd);

// Waits up to `timeout_seconds` for `fd` to become readable. Returns 1 on
// readable/hup, 0 on timeout, -1 on error.
int wait_readable(int fd, double timeout_seconds);

// ---------------------------------------------------------------------------
// FrameBuffer: incremental line/payload framing over a byte stream
// ---------------------------------------------------------------------------
// The caller appends whatever read(2) produced; next_line()/take() carve
// complete frames off the front. A line longer than kMaxLine with no
// newline is a protocol violation (overflowed() turns true and stays
// true); payload sizes are checked by the caller against kMaxPayload
// before take() is awaited.

class FrameBuffer {
 public:
  static constexpr std::size_t kMaxLine = 64 * 1024;
  static constexpr std::size_t kMaxPayload = 64 * 1024 * 1024;

  void append(const char* data, std::size_t len) { buf_.append(data, len); }

  // Extracts one complete '\n'-terminated line (newline stripped).
  // Returns false when no complete line is buffered yet.
  bool next_line(std::string* line) {
    std::size_t nl = buf_.find('\n');
    if (nl == std::string::npos) {
      if (buf_.size() > kMaxLine) overflowed_ = true;
      return false;
    }
    if (nl > kMaxLine) {
      overflowed_ = true;
      return false;
    }
    *line = buf_.substr(0, nl);
    buf_.erase(0, nl + 1);
    return true;
  }

  // Extracts exactly `n` raw payload bytes, or returns false if fewer are
  // buffered.
  bool take(std::size_t n, std::string* out) {
    if (buf_.size() < n) return false;
    *out = buf_.substr(0, n);
    buf_.erase(0, n);
    return true;
  }

  [[nodiscard]] std::size_t buffered() const { return buf_.size(); }
  // A line exceeded kMaxLine without a terminator: the stream is garbage
  // and the connection should be dropped.
  [[nodiscard]] bool overflowed() const { return overflowed_; }

 private:
  std::string buf_;
  bool overflowed_ = false;
};

}  // namespace cds::dist

#endif  // CDS_DIST_NET_H
