// Distributed worker: connects to a coordinator, receives shard
// assignments, and runs each one in a forked child so a crashing test
// body (or a SIGKILL chaos injection) never takes the protocol loop down
// with it.
//
// Per assignment the parent:
//   - forks a child that runs harness::run_shard_unit with a stop-request
//     hook wired to a pipe (one byte = preempt for work stealing) and
//     streams the serialized result back over a second pipe;
//   - heartbeats the coordinator at the interval the welcome line named,
//     renewing the shard's lease while the child computes;
//   - forwards coordinator `steal` lines to the child's stop pipe, and
//     answers `quit` by killing the child and exiting;
//   - reports a dead child (crash, signal) as an explicit `failed` line so
//     the coordinator retries immediately instead of waiting out the lease.
//
// If the coordinator connection drops mid-run the worker kills its child
// and re-dials (fresh hello) until the connect timeout elapses: the old
// assignment's lease expires coordinator-side and is retried, possibly on
// this same reconnected worker.
#ifndef CDS_DIST_WORKER_H
#define CDS_DIST_WORKER_H

#include <functional>
#include <string>

#include "dist/chaos.h"
#include "harness/runner.h"

namespace cds::dist {

using BenchmarkResolver =
    std::function<const harness::Benchmark*(const std::string&)>;

struct WorkerOptions {
  // How long to keep re-dialing the coordinator (initial connect and
  // reconnects after a drop) before giving up.
  double connect_timeout_seconds = 10.0;
  // Worker-local progress heartbeat interval for the shards it runs
  // (coordinator config does not carry observability knobs).
  double progress_interval_seconds = 0.0;
  // Maps the assignment's benchmark key to a Benchmark. Defaults to the
  // registry (harness::find_benchmark); tests and the --dist-workers
  // convenience mode inject resolvers for unregistered benchmarks (forked
  // workers inherit them in memory).
  BenchmarkResolver resolve;
  // Protocol fault injection (tests / the CI chaos step).
  ChaosOptions chaos;
};

// Runs the worker loop until the coordinator says quit (returns 0) or the
// connection cannot be (re-)established / the protocol is violated
// (returns 1). `addr` uses the same syntax as parse_address.
int run_worker(const std::string& addr, const WorkerOptions& opts = {});

}  // namespace cds::dist

#endif  // CDS_DIST_WORKER_H
