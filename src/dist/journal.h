// Write-ahead shard-outcome journal: the durability layer that makes a
// coordinated run (--dist-workers or --jobs) survive the coordinating
// process being SIGKILL'd, OOM-killed, or rebooted mid-run.
//
// The coordinator appends one checksummed record per event — run header,
// shard leased, shard result, sub-shards minted by work stealing,
// permanent failure — and fsyncs each append *before* the merge state
// consumes the event. On restart with --resume the journal is replayed:
// completed shards are satisfied from their journaled result text,
// in-flight ones are re-enqueued, and preempted shards re-mint their
// sub-shards deterministically (mc::split_remaining_frontier is a pure
// function of the journaled frontier), so the resumed run's verdict and
// merged counters are bit-identical to an uninterrupted one.
//
// Format (line-oriented; one record per line; `<esc>` = harness
// escape_line, so multi-line payloads ride on a single line):
//
//   cdsspec-journal v1
//   run epoch=<e> shards=<n> planhash=<8hex> fingerprint=<8hex> bench=<esc> #crc=<8hex>
//   lease shard=<i> attempt=<id> #crc=<8hex>
//   result shard=<i> attempt=<id> payload=<esc shard-result v3 text> #crc=<8hex>
//   mint parent=<i> count=<n> #crc=<8hex>
//   failed shard=<i> attempt=<id> reason=<esc> #crc=<8hex>
//   done verdict=<v> #crc=<8hex>
//
// Every record carries a CRC-32 of its own body; a torn or corrupted
// tail (power loss mid-append, bit rot) is detected on load, set aside
// in "<path>.quarantined", and the journal truncated back to the last
// good record — never a crash, never silent data loss. Each coordinator
// incarnation appends its own `run` record with a monotonically
// increasing epoch; attempt ids are minted as (epoch << 32 | counter),
// so a worker surviving from a previous incarnation can never collide
// with a fresh attempt id (epoch fencing).
#ifndef CDS_DIST_JOURNAL_H
#define CDS_DIST_JOURNAL_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "dist/chaos.h"
#include "harness/shard_result.h"
#include "mc/config.h"

namespace cds::dist {

struct JournalRecord {
  enum class Kind : std::uint8_t { kRun, kLease, kResult, kMint, kFailed, kDone };
  Kind kind = Kind::kRun;

  // kRun: one per coordinator incarnation.
  std::uint64_t epoch = 0;
  std::uint64_t shards = 0;       // planned shard count
  std::uint32_t plan_hash = 0;    // journal_plan_hash of the planned units
  std::uint32_t fingerprint = 0;  // crc32(mc::render_config_fingerprint)
  std::string bench;

  // kLease / kResult / kFailed (kMint: `shard` is the preempted parent).
  std::uint64_t shard = 0;
  std::uint64_t attempt = 0;  // 0 = local fork-pool path (no lease)
  std::uint64_t count = 0;    // kMint: sub-shards appended

  // kResult: the raw shard-result v3 text exactly as the worker sent it
  // (pre-normalization, so replay re-mints preempted shards' sub-shards
  // from the journaled frontier). kFailed: the failure reason.
  std::string payload;

  std::uint64_t verdict = 0;  // kDone
};

// One line including the " #crc=XXXXXXXX" suffix and trailing newline.
std::string render_journal_record(const JournalRecord& r);

// Strict parse of one record line (no trailing newline): bad verb,
// missing field, or CRC mismatch fails with *out untouched.
bool parse_journal_record(const std::string& line, JournalRecord* out,
                          std::string* err);

// Deterministic digest of a shard plan: a resumed run re-plans and must
// land on the identical partition before any journaled result is trusted.
std::uint32_t journal_plan_hash(const std::vector<harness::ShardUnit>& units);

// Digest of the exploration-shaping config (mc::render_config_fingerprint
// checksummed), pairing with the plan hash in the run header.
std::uint32_t journal_config_fingerprint(const mc::Config& engine);

struct JournalReplay {
  bool found = false;  // file existed with a valid magic header
  std::vector<JournalRecord> records;  // valid records, journal order
  std::uint64_t last_epoch = 0;        // max epoch across run records
  // Torn/corrupt tail handling: bytes set aside in "<path>.quarantined"
  // and a human diagnostic. Empty note = the journal was clean.
  std::uint64_t quarantined_bytes = 0;
  std::string quarantine_note;
};

// Loads and validates `path`. A missing file is found=false (fresh
// start), not an error. A torn or corrupt tail is quarantined to
// "<path>.quarantined" and the journal truncated back to its last good
// record so subsequent appends continue a clean file; a file whose magic
// header is damaged is quarantined whole. Returns false only on a
// filesystem-level failure reading the file.
bool load_journal(const std::string& path, JournalReplay* out,
                  std::string* err);

// Appender with fsync-per-record write-ahead discipline. append()
// returns only after the record is durable (file fsync'd; the directory
// is fsync'd once at creation), so a caller that applies the event after
// append() observes strict WAL ordering.
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  // Opens for appending, creating (with magic header) if missing or
  // `truncate` is set. fsyncs the containing directory on creation.
  bool open(const std::string& path, bool truncate, std::string* err);
  [[nodiscard]] bool is_open() const { return fd_ >= 0; }

  // Chaos injections fire inside append(), after the record is durable.
  void set_chaos(const CoordinatorChaos& chaos) { chaos_ = chaos; }

  bool append(const JournalRecord& r, std::string* err);
  [[nodiscard]] std::uint64_t appends() const { return appends_; }

  void close_file();

 private:
  int fd_ = -1;
  std::string path_;
  std::uint64_t appends_ = 0;
  std::uint64_t result_appends_ = 0;
  CoordinatorChaos chaos_;
};

}  // namespace cds::dist

#endif  // CDS_DIST_JOURNAL_H
