// Protocol chaos injection for the distributed transport's fault-tolerance
// tests (the dist analogue of src/inject's memory-order sites, but aimed
// at the coordinator/worker protocol instead of the modeled program).
//
// Each knob names the 1-based ordinal of an assignment *received by one
// worker process*; when that assignment arrives (or its result is about to
// be sent) the worker misbehaves in the named way. Under every injection
// the coordinator's verdict and merged counters must stay bit-identical to
// an undisturbed serial run — the injections only ever cost retries,
// lease expirations, or re-splits, never coverage (see tests/dist/).
#ifndef CDS_DIST_CHAOS_H
#define CDS_DIST_CHAOS_H

#include <cstddef>

namespace cds::dist {

struct ChaosOptions {
  // SIGKILL the whole worker process the moment it receives its Nth
  // assignment (before forking the shard child): the coordinator sees the
  // connection drop mid-lease and must retry the shard elsewhere.
  std::ptrdiff_t kill_on_assignment = -1;

  // Stop sending heartbeats from the Nth assignment on, while the shard
  // child keeps computing: the lease expires on a live worker. The
  // coordinator must revoke + retry, and later drop this worker's
  // out-of-lease (stale) result instead of double-counting the shard.
  std::ptrdiff_t mute_heartbeats_on = -1;

  // Truncate the Nth result's payload to half before sending (framing
  // stays consistent, the shard-result text does not parse): exercises
  // corrupt-result rejection + retry.
  std::ptrdiff_t truncate_result_on = -1;

  // Bit-flip bytes in the middle of the Nth result's payload: same
  // rejection path as truncation but with a plausible length.
  std::ptrdiff_t corrupt_result_on = -1;

  // SIGKILL the worker after sending the Nth result's header and half of
  // its payload bytes: the coordinator sees a torn frame + EOF and must
  // fail the attempt without applying any partial state.
  std::ptrdiff_t die_mid_result_on = -1;

  [[nodiscard]] bool any() const {
    return kill_on_assignment >= 0 || mute_heartbeats_on >= 0 ||
           truncate_result_on >= 0 || corrupt_result_on >= 0 ||
           die_mid_result_on >= 0;
  }
};

// Coordinator-side injections, aimed at the write-ahead journal's crash
// windows instead of the worker protocol. Ordinals are 1-based counts of
// journal appends by THIS coordinator incarnation; the injections fire
// inside JournalWriter::append, after the record is durable, so a
// resumed run must reconstruct exactly the state the record order
// implies. Under every injection, kill + --resume must converge to a
// verdict and merged counters bit-identical to an uninterrupted run.
struct CoordinatorChaos {
  // SIGKILL the coordinator immediately after its Nth journal append
  // (any record kind) reaches the disk: the canonical mid-run crash.
  std::ptrdiff_t kill_after_append = -1;

  // SIGKILL after the Nth *result* record is journaled but before the
  // merge state consumes it — the append-vs-apply window. Resume must
  // replay the journaled result rather than recompute the shard.
  std::ptrdiff_t kill_before_merge_on = -1;

  // After the Nth append, chop `truncate_tail_bytes` off the journal's
  // end and SIGKILL: resume sees a torn tail and must quarantine it (the
  // half-written record's shard is simply recomputed).
  std::ptrdiff_t truncate_tail_after = -1;
  std::size_t truncate_tail_bytes = 7;

  [[nodiscard]] bool any() const {
    return kill_after_append >= 0 || kill_before_merge_on >= 0 ||
           truncate_tail_after >= 0;
  }
};

}  // namespace cds::dist

#endif  // CDS_DIST_CHAOS_H
