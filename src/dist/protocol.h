// Wire protocol for the distributed coordinator/worker fleet.
//
// Line-oriented over a byte stream (TCP or Unix-domain socket), in the
// same discipline as the shard-result format: every message is either a
// single control line or a control line announcing a length-prefixed
// payload block. The coordinator speaks assign/steal/quit; workers speak
// hello/heartbeat/result/failed.
//
//   worker -> coordinator
//     hello cdsspec-dist v1 pid=<pid>
//     hb <shard_id>
//     result <shard_id> <nbytes>\n<nbytes of shard-result v3 text>
//     failed <shard_id> <escaped reason>
//
//   coordinator -> worker
//     welcome cdsspec-dist v1 hb_us=<heartbeat us> epoch=<incarnation>
//     assign <shard_id> <nbytes>\n<nbytes of shard-assign v1 text>
//     steal <shard_id>
//     quit
//
// The welcome epoch is the coordinator's journal incarnation: a resumed
// coordinator greets with a higher epoch, and since attempt ids embed
// the epoch in their high 32 bits, results a worker computed for a
// previous incarnation can never collide with a fresh attempt id.
//
// The assign payload carries everything a (possibly remote, freshly
// started) worker needs to reproduce the coordinator's exploration tree
// bit-exactly: the benchmark key, the unit (test index, subtree prefix,
// pre-derived seed and sampling budget), and the tree-shaping and budget
// configuration. Parsing is strict: unknown keys, missing keys, bad
// counts, or truncation reject the whole message with a line/token
// diagnostic and leave the output object untouched.
#ifndef CDS_DIST_PROTOCOL_H
#define CDS_DIST_PROTOCOL_H

#include <cstdint>
#include <string>

#include "harness/shard_result.h"
#include "mc/config.h"
#include "spec/checker.h"

namespace cds::dist {

inline constexpr const char* kProtocolVersion = "cdsspec-dist v1";

// ---------------------------------------------------------------------------
// Control lines
// ---------------------------------------------------------------------------

struct ControlLine {
  enum class Kind : std::uint8_t {
    kHello,
    kWelcome,
    kHeartbeat,
    kResult,
    kFailed,
    kAssign,
    kSteal,
    kQuit,
  };
  Kind kind = Kind::kQuit;
  std::uint64_t shard_id = 0;     // hb / result / failed / assign / steal
  std::uint64_t payload_len = 0;  // result / assign
  std::uint64_t pid = 0;          // hello
  std::uint64_t heartbeat_us = 0; // welcome
  std::uint64_t epoch = 0;        // welcome (coordinator incarnation)
  std::string reason;             // failed (unescaped)
};

std::string render_hello(std::uint64_t pid);
std::string render_welcome(std::uint64_t heartbeat_us, std::uint64_t epoch);
std::string render_heartbeat(std::uint64_t shard_id);
std::string render_result_header(std::uint64_t shard_id, std::uint64_t len);
std::string render_failed(std::uint64_t shard_id, const std::string& reason);
std::string render_assign_header(std::uint64_t shard_id, std::uint64_t len);
std::string render_steal(std::uint64_t shard_id);
std::string render_quit();

// Strict parse of one control line (no trailing newline). On failure *err
// names the offending token and *out is untouched.
bool parse_control_line(const std::string& line, ControlLine* out,
                        std::string* err);

// ---------------------------------------------------------------------------
// Assignment payload
// ---------------------------------------------------------------------------

struct Assignment {
  std::uint64_t shard_id = 0;
  std::string bench;  // benchmark registry key
  harness::ShardUnit unit;
  // Tree-shaping and budget knobs forwarded so a standalone worker
  // explores the exact same bounded tree as the coordinator planned.
  mc::Config engine;
  spec::SpecChecker::Options checker;
};

std::string render_assignment(const Assignment& a);

// Strict parse; on failure *err carries a "line N: ..." diagnostic and
// *out is untouched.
bool parse_assignment(const std::string& text, Assignment* out,
                      std::string* err);

}  // namespace cds::dist

#endif  // CDS_DIST_PROTOCOL_H
