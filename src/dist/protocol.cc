#include "dist/protocol.h"

#include <utility>
#include <vector>

#include "mc/trace.h"

namespace cds::dist {

using harness::escape_line;
using harness::parse_kv_tokens;
using harness::parse_u64_tok;
using harness::split_lines;
using harness::unescape_line;

// ---------------------------------------------------------------------------
// Control lines
// ---------------------------------------------------------------------------

std::string render_hello(std::uint64_t pid) {
  return std::string("hello ") + kProtocolVersion +
         " pid=" + std::to_string(pid) + "\n";
}

std::string render_welcome(std::uint64_t heartbeat_us, std::uint64_t epoch) {
  return std::string("welcome ") + kProtocolVersion +
         " hb_us=" + std::to_string(heartbeat_us) +
         " epoch=" + std::to_string(epoch) + "\n";
}

std::string render_heartbeat(std::uint64_t shard_id) {
  return "hb " + std::to_string(shard_id) + "\n";
}

std::string render_result_header(std::uint64_t shard_id, std::uint64_t len) {
  return "result " + std::to_string(shard_id) + " " + std::to_string(len) +
         "\n";
}

std::string render_failed(std::uint64_t shard_id, const std::string& reason) {
  return "failed " + std::to_string(shard_id) + " " + escape_line(reason) +
         "\n";
}

std::string render_assign_header(std::uint64_t shard_id, std::uint64_t len) {
  return "assign " + std::to_string(shard_id) + " " + std::to_string(len) +
         "\n";
}

std::string render_steal(std::uint64_t shard_id) {
  return "steal " + std::to_string(shard_id) + "\n";
}

std::string render_quit() { return "quit\n"; }

namespace {

// Splits `line` on single spaces into at most `max_tok` tokens; the last
// token absorbs the remainder (for trailing free-text fields).
std::vector<std::string> split_tokens(const std::string& line,
                                      std::size_t max_tok) {
  std::vector<std::string> tok;
  std::size_t pos = 0;
  while (pos <= line.size() && tok.size() < max_tok) {
    if (tok.size() + 1 == max_tok) {
      tok.push_back(line.substr(pos));
      break;
    }
    std::size_t sp = line.find(' ', pos);
    if (sp == std::string::npos) {
      tok.push_back(line.substr(pos));
      break;
    }
    tok.push_back(line.substr(pos, sp - pos));
    pos = sp + 1;
  }
  return tok;
}

bool check_version_pair(const std::vector<std::string>& tok, std::string* err) {
  // tok[1] + " " + tok[2] must equal kProtocolVersion ("cdsspec-dist v1").
  if (tok.size() < 3 || tok[1] + " " + tok[2] != kProtocolVersion) {
    *err = "protocol version mismatch (want '" + std::string(kProtocolVersion) +
           "') at token 1";
    return false;
  }
  return true;
}

}  // namespace

bool parse_control_line(const std::string& line, ControlLine* out,
                        std::string* err) {
  ControlLine c;
  std::string why;
  auto fail = [&](const std::string& w) {
    if (err) *err = w + ": '" + line.substr(0, 200) + "'";
    return false;
  };
  if (line.empty()) return fail("empty control line at token 0");
  const std::size_t sp0 = line.find(' ');
  const std::string verb = line.substr(0, sp0);

  if (verb == "quit") {
    if (line != "quit") return fail("trailing bytes after 'quit' at token 1");
    c.kind = ControlLine::Kind::kQuit;
  } else if (verb == "hb" || verb == "steal") {
    std::vector<std::string> tok = split_tokens(line, 2);
    if (tok.size() != 2 || !parse_u64_tok(tok[1].c_str(), &c.shard_id)) {
      return fail("malformed shard id at token 1");
    }
    c.kind = verb == "hb" ? ControlLine::Kind::kHeartbeat
                          : ControlLine::Kind::kSteal;
  } else if (verb == "result" || verb == "assign") {
    std::vector<std::string> tok = split_tokens(line, 3);
    if (tok.size() != 3 || !parse_u64_tok(tok[1].c_str(), &c.shard_id)) {
      return fail("malformed shard id at token 1");
    }
    if (!parse_u64_tok(tok[2].c_str(), &c.payload_len)) {
      return fail("malformed payload length at token 2");
    }
    c.kind = verb == "result" ? ControlLine::Kind::kResult
                              : ControlLine::Kind::kAssign;
  } else if (verb == "failed") {
    std::vector<std::string> tok = split_tokens(line, 3);
    if (tok.size() < 2 || !parse_u64_tok(tok[1].c_str(), &c.shard_id)) {
      return fail("malformed shard id at token 1");
    }
    c.reason = tok.size() == 3 ? unescape_line(tok[2]) : "";
    c.kind = ControlLine::Kind::kFailed;
  } else if (verb == "hello") {
    std::vector<std::string> tok = split_tokens(line, 4);
    if (tok.size() != 4) return fail("short hello line at token 3");
    if (!check_version_pair(tok, &why)) return fail(why);
    if (tok[3].rfind("pid=", 0) != 0 ||
        !parse_u64_tok(tok[3].c_str() + 4, &c.pid)) {
      return fail("malformed pid= value at token 3");
    }
    c.kind = ControlLine::Kind::kHello;
  } else if (verb == "welcome") {
    std::vector<std::string> tok = split_tokens(line, 5);
    if (tok.size() != 5) return fail("short welcome line at token 4");
    if (!check_version_pair(tok, &why)) return fail(why);
    if (tok[3].rfind("hb_us=", 0) != 0 ||
        !parse_u64_tok(tok[3].c_str() + 6, &c.heartbeat_us)) {
      return fail("malformed hb_us= value at token 3");
    }
    if (tok[4].rfind("epoch=", 0) != 0 ||
        !parse_u64_tok(tok[4].c_str() + 6, &c.epoch)) {
      return fail("malformed epoch= value at token 4");
    }
    c.kind = ControlLine::Kind::kWelcome;
  } else {
    return fail("unknown verb '" + verb.substr(0, 32) + "' at token 0");
  }
  *out = c;
  return true;
}

// ---------------------------------------------------------------------------
// Assignment payload
// ---------------------------------------------------------------------------

std::string render_assignment(const Assignment& a) {
  std::string s = "shard-assign v1\n";
  s += "id " + std::to_string(a.shard_id) + "\n";
  s += "bench " + escape_line(a.bench) + "\n";
  s += "unit test=" + std::to_string(a.unit.test_index) +
       " ordinal=" + std::to_string(a.unit.ordinal) +
       " total=" + std::to_string(a.unit.total) +
       " seed=" + std::to_string(a.unit.engine_seed) +
       " samples=" + std::to_string(a.unit.sample_executions) + "\n";
  const mc::Config& e = a.engine;
  s += "engine threads=" + std::to_string(e.max_threads) +
       " stale=" + std::to_string(e.stale_read_bound) +
       " steps=" + std::to_string(e.max_steps) +
       " execs=" + std::to_string(e.max_executions) +
       " viol=" + std::to_string(e.max_recorded_violations) +
       " stop_first=" + std::to_string(e.stop_on_first_violation ? 1 : 0) +
       " trace=" + std::to_string(e.collect_trace ? 1 : 0) +
       " sleep=" + std::to_string(e.enable_sleep_sets ? 1 : 0) +
       " sc=" + std::to_string(e.strengthen_to_sc ? 1 : 0) +
       " time_us=" +
       std::to_string(static_cast<std::uint64_t>(e.time_budget_seconds * 1e6)) +
       " mem=" + std::to_string(e.memory_budget_bytes) +
       " watchdog=" + std::to_string(e.watchdog_no_progress_execs) +
       " samples=" + std::to_string(e.sample_executions) +
       " dfs_ppm=" +
       std::to_string(static_cast<std::uint64_t>(e.dfs_budget_fraction * 1e6)) +
       " seed=" + std::to_string(e.seed) +
       " contain=" + std::to_string(e.contain_crashes ? 1 : 0) +
       " sampling_only=" + std::to_string(e.sampling_only ? 1 : 0) +
       " unsound=" + std::to_string(static_cast<int>(e.unsound_hook)) + "\n";
  const spec::SpecChecker::Options& c = a.checker;
  s += "checker histories=" + std::to_string(c.max_histories) +
       " sampled=" + std::to_string(c.sampled_histories) +
       " subhist=" + std::to_string(c.max_subhistories) +
       " reports=" + std::to_string(c.max_reports) +
       " rtrace=" + std::to_string(c.report_trace ? 1 : 0) +
       " seed=" + std::to_string(c.seed) + "\n";
  s += "prefix " + std::to_string(a.unit.prefix.size()) + "\n";
  s += mc::render_choices(a.unit.prefix);
  s += "end\n";
  return s;
}

bool parse_assignment(const std::string& text, Assignment* out,
                      std::string* err) {
  // Scratch object committed only on full success, so a rejected payload
  // never leaves *out partially populated.
  Assignment a;
  std::vector<std::string> lines = split_lines(text);
  std::size_t i = 0;
  auto next = [&]() -> const std::string* {
    return i < lines.size() ? &lines[i++] : nullptr;
  };
  auto fail = [&](const std::string& why) {
    if (err) *err = "line " + std::to_string(i == 0 ? 1 : i) + ": " + why;
    return false;
  };
  std::string why;
  const std::string* l = next();
  if (l == nullptr || *l != "shard-assign v1") {
    return fail("not a shard assignment (or a stale wire version)");
  }
  l = next();
  if (l == nullptr || l->rfind("id ", 0) != 0 ||
      !parse_u64_tok(l->c_str() + 3, &a.shard_id)) {
    return fail("missing id line");
  }
  l = next();
  if (l == nullptr || l->rfind("bench ", 0) != 0) {
    return fail("missing bench line");
  }
  a.bench = unescape_line(l->substr(6));
  if (a.bench.empty()) return fail("empty benchmark name");

  l = next();
  if (l == nullptr || l->rfind("unit ", 0) != 0) {
    return fail("missing unit line");
  }
  std::uint64_t test = 0, ordinal = 0, total = 0;
  if (!parse_kv_tokens(*l, 5,
                       {{"test", &test},
                        {"ordinal", &ordinal},
                        {"total", &total},
                        {"seed", &a.unit.engine_seed},
                        {"samples", &a.unit.sample_executions}},
                       &why)) {
    return fail(why);
  }
  a.unit.test_index = static_cast<std::size_t>(test);
  a.unit.ordinal = static_cast<std::size_t>(ordinal);
  a.unit.total = static_cast<std::size_t>(total == 0 ? 1 : total);

  l = next();
  if (l == nullptr || l->rfind("engine ", 0) != 0) {
    return fail("missing engine line");
  }
  mc::Config& e = a.engine;
  std::uint64_t threads = 0, stale = 0, viol = 0, stop_first = 0, trace = 0,
                sleep = 0, sc = 0, time_us = 0, mem = 0, dfs_ppm = 0,
                contain = 0, sampling_only = 0, unsound = 0;
  if (!parse_kv_tokens(*l, 7,
                       {{"threads", &threads},
                        {"stale", &stale},
                        {"steps", &e.max_steps},
                        {"execs", &e.max_executions},
                        {"viol", &viol},
                        {"stop_first", &stop_first},
                        {"trace", &trace},
                        {"sleep", &sleep},
                        {"sc", &sc},
                        {"time_us", &time_us},
                        {"mem", &mem},
                        {"watchdog", &e.watchdog_no_progress_execs},
                        {"samples", &e.sample_executions},
                        {"dfs_ppm", &dfs_ppm},
                        {"seed", &e.seed},
                        {"contain", &contain},
                        {"sampling_only", &sampling_only},
                        {"unsound", &unsound}},
                       &why)) {
    return fail(why);
  }
  if (threads == 0 || threads > 4096) return fail("bad engine thread cap");
  if (stale > 0xffffffffull || viol > 0xffffffffull) {
    return fail("engine field out of range");
  }
  if (unsound > 2) return fail("bad unsound hook");
  e.max_threads = static_cast<int>(threads);
  e.stale_read_bound = static_cast<std::uint32_t>(stale);
  e.max_recorded_violations = static_cast<std::uint32_t>(viol);
  e.stop_on_first_violation = stop_first != 0;
  e.collect_trace = trace != 0;
  e.enable_sleep_sets = sleep != 0;
  e.strengthen_to_sc = sc != 0;
  e.time_budget_seconds = static_cast<double>(time_us) / 1e6;
  e.memory_budget_bytes = static_cast<std::size_t>(mem);
  e.dfs_budget_fraction = static_cast<double>(dfs_ppm) / 1e6;
  e.contain_crashes = contain != 0;
  e.sampling_only = sampling_only != 0;
  e.unsound_hook = static_cast<mc::UnsoundHook>(unsound);

  l = next();
  if (l == nullptr || l->rfind("checker ", 0) != 0) {
    return fail("missing checker line");
  }
  spec::SpecChecker::Options& c = a.checker;
  std::uint64_t reports = 0, rtrace = 0;
  if (!parse_kv_tokens(*l, 8,
                       {{"histories", &c.max_histories},
                        {"sampled", &c.sampled_histories},
                        {"subhist", &c.max_subhistories},
                        {"reports", &reports},
                        {"rtrace", &rtrace},
                        {"seed", &c.seed}},
                       &why)) {
    return fail(why);
  }
  if (reports > 0xffffffffull) return fail("checker field out of range");
  c.max_reports = static_cast<std::uint32_t>(reports);
  c.report_trace = rtrace != 0;

  l = next();
  std::uint64_t npfx = 0;
  if (l == nullptr || l->rfind("prefix ", 0) != 0 ||
      !parse_u64_tok(l->c_str() + 7, &npfx)) {
    return fail("missing prefix count");
  }
  if (npfx > lines.size()) return fail("prefix count exceeds message");
  if (!mc::parse_choices(lines, &i, npfx, &a.unit.prefix, &why)) {
    return fail(why);
  }
  l = next();
  if (l == nullptr || *l != "end") return fail("missing 'end' terminator");
  *out = std::move(a);
  return true;
}

}  // namespace cds::dist
