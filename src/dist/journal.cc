#include "dist/journal.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "mc/checkpoint.h"
#include "mc/trace.h"
#include "support/io.h"

#if defined(__unix__) || defined(__APPLE__)
#define CDS_DIST_JOURNAL_POSIX 1
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace cds::dist {

namespace {

constexpr const char* kMagic = "cdsspec-journal v1";

std::string with_crc(std::string body) {
  char suffix[16];
  std::snprintf(suffix, sizeof suffix, " #crc=%08" PRIx32,
                support::crc32(body));
  body += suffix;
  body += '\n';
  return body;
}

}  // namespace

std::string render_journal_record(const JournalRecord& r) {
  using harness::escape_line;
  std::string body;
  char hex[40];
  switch (r.kind) {
    case JournalRecord::Kind::kRun:
      std::snprintf(hex, sizeof hex, "%08" PRIx32 " fingerprint=%08" PRIx32,
                    r.plan_hash, r.fingerprint);
      body = "run epoch=" + std::to_string(r.epoch) +
             " shards=" + std::to_string(r.shards) + " planhash=" + hex +
             " bench=" + escape_line(r.bench);
      break;
    case JournalRecord::Kind::kLease:
      body = "lease shard=" + std::to_string(r.shard) +
             " attempt=" + std::to_string(r.attempt);
      break;
    case JournalRecord::Kind::kResult:
      body = "result shard=" + std::to_string(r.shard) +
             " attempt=" + std::to_string(r.attempt) +
             " payload=" + escape_line(r.payload);
      break;
    case JournalRecord::Kind::kMint:
      body = "mint parent=" + std::to_string(r.shard) +
             " count=" + std::to_string(r.count);
      break;
    case JournalRecord::Kind::kFailed:
      body = "failed shard=" + std::to_string(r.shard) +
             " attempt=" + std::to_string(r.attempt) +
             " reason=" + escape_line(r.payload);
      break;
    case JournalRecord::Kind::kDone:
      body = "done verdict=" + std::to_string(r.verdict);
      break;
  }
  return with_crc(std::move(body));
}

bool parse_journal_record(const std::string& line, JournalRecord* out,
                          std::string* err) {
  auto fail = [&](const std::string& why) {
    if (err) *err = why + ": '" + line.substr(0, 120) + "'";
    return false;
  };
  // " #crc=XXXXXXXX" is always the last 14 bytes; the CRC covers
  // everything before it.
  if (line.size() < 15) return fail("record too short");
  const std::size_t cpos = line.size() - 14;
  if (line.compare(cpos, 6, " #crc=") != 0) {
    return fail("missing crc suffix");
  }
  std::uint32_t want = 0;
  for (std::size_t k = cpos + 6; k < line.size(); ++k) {
    const char c = line[k];
    if (!std::isxdigit(static_cast<unsigned char>(c))) {
      return fail("malformed crc suffix");
    }
    want = want * 16u +
           static_cast<std::uint32_t>(
               c <= '9' ? c - '0' : std::tolower(c) - 'a' + 10);
  }
  const std::string body = line.substr(0, cpos);
  if (support::crc32(body) != want) return fail("crc mismatch");

  JournalRecord r;
  unsigned long long a = 0, b = 0;
  unsigned h1 = 0, h2 = 0;
  int pos = -1;
  const char* s = body.c_str();
  const int len = static_cast<int>(body.size());
  if (std::sscanf(s,
                  "run epoch=%llu shards=%llu planhash=%8x fingerprint=%8x "
                  "bench=%n",
                  &a, &b, &h1, &h2, &pos) == 4 &&
      pos > 0) {
    r.kind = JournalRecord::Kind::kRun;
    r.epoch = a;
    r.shards = b;
    r.plan_hash = h1;
    r.fingerprint = h2;
    r.bench = harness::unescape_line(body.substr(static_cast<std::size_t>(pos)));
    if (r.bench.empty()) return fail("run record with empty bench");
  } else if (std::sscanf(s, "lease shard=%llu attempt=%llu%n", &a, &b, &pos) ==
                 2 &&
             pos == len) {
    r.kind = JournalRecord::Kind::kLease;
    r.shard = a;
    r.attempt = b;
  } else if (std::sscanf(s, "result shard=%llu attempt=%llu payload=%n", &a,
                         &b, &pos) == 2 &&
             pos > 0) {
    r.kind = JournalRecord::Kind::kResult;
    r.shard = a;
    r.attempt = b;
    r.payload =
        harness::unescape_line(body.substr(static_cast<std::size_t>(pos)));
  } else if (std::sscanf(s, "mint parent=%llu count=%llu%n", &a, &b, &pos) ==
                 2 &&
             pos == len) {
    r.kind = JournalRecord::Kind::kMint;
    r.shard = a;
    r.count = b;
  } else if (std::sscanf(s, "failed shard=%llu attempt=%llu reason=%n", &a, &b,
                         &pos) == 2 &&
             pos > 0) {
    r.kind = JournalRecord::Kind::kFailed;
    r.shard = a;
    r.attempt = b;
    r.payload =
        harness::unescape_line(body.substr(static_cast<std::size_t>(pos)));
  } else if (std::sscanf(s, "done verdict=%llu%n", &a, &pos) == 1 &&
             pos == len) {
    r.kind = JournalRecord::Kind::kDone;
    r.verdict = a;
  } else {
    return fail("unknown or malformed record");
  }
  *out = std::move(r);
  return true;
}

std::uint32_t journal_plan_hash(const std::vector<harness::ShardUnit>& units) {
  std::string s;
  for (const harness::ShardUnit& u : units) {
    s += std::to_string(u.test_index);
    s += ' ';
    s += std::to_string(u.engine_seed);
    s += ' ';
    s += std::to_string(u.sample_executions);
    s += '\n';
    s += mc::render_choices(u.prefix);
  }
  return support::crc32(s);
}

std::uint32_t journal_config_fingerprint(const mc::Config& engine) {
  return support::crc32(mc::render_config_fingerprint(engine));
}

bool load_journal(const std::string& path, JournalReplay* out,
                  std::string* err) {
  *out = JournalReplay{};
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) return true;  // fresh start, not an error
    if (err) *err = "cannot open '" + path + "': " + std::strerror(errno);
    return false;
  }
  std::string data;
  char buf[65536];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) data.append(buf, n);
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) {
    if (err) *err = "read error on '" + path + "'";
    return false;
  }

  const std::string magic = std::string(kMagic) + "\n";
  if (data.size() < magic.size() ||
      data.compare(0, magic.size(), magic) != 0) {
    // The header itself is damaged: nothing in the file can be trusted,
    // so set the whole file aside and report a fresh start.
    out->quarantined_bytes = data.size();
    out->quarantine_note = "'" + path +
                           "': missing or damaged journal header; whole file "
                           "quarantined";
    (void)std::rename(path.c_str(), (path + ".quarantined").c_str());
    (void)support::fsync_parent_dir(path);
    return true;
  }
  out->found = true;

  std::size_t pos = magic.size();
  std::size_t good_end = pos;
  std::string note;
  while (pos < data.size()) {
    const std::size_t nl = data.find('\n', pos);
    if (nl == std::string::npos) {
      note = "torn record at byte " + std::to_string(pos) +
             " (no newline; append cut off mid-write?)";
      break;
    }
    JournalRecord r;
    std::string perr;
    if (!parse_journal_record(data.substr(pos, nl - pos), &r, &perr)) {
      note = "bad record at byte " + std::to_string(pos) + " (" + perr + ")";
      break;
    }
    if (r.kind == JournalRecord::Kind::kRun) {
      out->last_epoch = std::max(out->last_epoch, r.epoch);
    }
    out->records.push_back(std::move(r));
    pos = nl + 1;
    good_end = pos;
  }

  if (!note.empty()) {
    const std::string tail = data.substr(good_end);
    out->quarantined_bytes = tail.size();
    out->quarantine_note = "'" + path + "': " + note + "; " +
                           std::to_string(tail.size()) +
                           " tail bytes quarantined, journal truncated to "
                           "last good record";
    std::FILE* q = std::fopen((path + ".quarantined").c_str(), "wb");
    if (q != nullptr) {
      (void)std::fwrite(tail.data(), 1, tail.size(), q);
      std::fclose(q);
    }
#ifdef CDS_DIST_JOURNAL_POSIX
    if (truncate(path.c_str(), static_cast<off_t>(good_end)) == 0) {
      int fd = open(path.c_str(), O_WRONLY | O_CLOEXEC);
      if (fd >= 0) {
        (void)fsync(fd);
        close(fd);
      }
      (void)support::fsync_parent_dir(path);
    }
#endif
  }
  return true;
}

// ---------------------------------------------------------------------------
// JournalWriter
// ---------------------------------------------------------------------------

JournalWriter::~JournalWriter() { close_file(); }

bool JournalWriter::open(const std::string& path, bool truncate_file,
                         std::string* err) {
#ifdef CDS_DIST_JOURNAL_POSIX
  close_file();
  const int flags = O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC |
                    (truncate_file ? O_TRUNC : 0);
  int fd = ::open(path.c_str(), flags, 0666);
  if (fd < 0) {
    if (err) *err = "cannot open '" + path + "': " + std::strerror(errno);
    return false;
  }
  struct stat st {};
  if (fstat(fd, &st) != 0) {
    if (err) *err = "fstat of '" + path + "' failed: " + std::strerror(errno);
    ::close(fd);
    return false;
  }
  fd_ = fd;
  path_ = path;
  if (st.st_size == 0) {
    const std::string magic = std::string(kMagic) + "\n";
    if (!support::write_full(fd_, magic) || fsync(fd_) != 0 ||
        !support::fsync_parent_dir(path_)) {
      if (err) {
        *err = "cannot write journal header to '" + path +
               "': " + std::strerror(errno);
      }
      close_file();
      return false;
    }
  }
  return true;
#else
  (void)path;
  (void)truncate_file;
  if (err) *err = "journal unsupported on this platform";
  errno = ENOSYS;
  return false;
#endif
}

bool JournalWriter::append(const JournalRecord& r, std::string* err) {
#ifdef CDS_DIST_JOURNAL_POSIX
  if (fd_ < 0) {
    if (err) *err = "journal not open";
    return false;
  }
  const std::string line = render_journal_record(r);
  if (!support::write_full(fd_, line) || fsync(fd_) != 0) {
    if (err) {
      *err = "journal append to '" + path_ + "' failed: " +
             std::strerror(errno);
    }
    return false;
  }
  ++appends_;
  if (r.kind == JournalRecord::Kind::kResult) ++result_appends_;
  // Chaos fires only after the record is durable: a resumed run must be
  // able to rebuild from exactly what the journal order implies.
  if (chaos_.truncate_tail_after ==
      static_cast<std::ptrdiff_t>(appends_)) {
    struct stat st {};
    if (fstat(fd_, &st) == 0) {
      const off_t cut = static_cast<off_t>(chaos_.truncate_tail_bytes);
      (void)ftruncate(fd_, st.st_size > cut ? st.st_size - cut : 0);
      (void)fsync(fd_);
    }
    raise(SIGKILL);
  }
  if (chaos_.kill_after_append == static_cast<std::ptrdiff_t>(appends_)) {
    raise(SIGKILL);
  }
  if (r.kind == JournalRecord::Kind::kResult &&
      chaos_.kill_before_merge_on ==
          static_cast<std::ptrdiff_t>(result_appends_)) {
    raise(SIGKILL);
  }
  return true;
#else
  (void)r;
  if (err) *err = "journal unsupported on this platform";
  return false;
#endif
}

void JournalWriter::close_file() {
#ifdef CDS_DIST_JOURNAL_POSIX
  if (fd_ >= 0) {
    (void)fsync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
#endif
}

}  // namespace cds::dist
