// Distributed coordinator: owns the shard queue for one benchmark and
// hands shards out to socket-connected workers under wall-clock leases.
//
// Elasticity and fault model:
//   - every assignment is a fresh *attempt id*; results and failures are
//     keyed by attempt, so a result from a revoked attempt (a worker that
//     went quiet past its lease and reported late) is dropped as stale
//     instead of double-merged — a shard's counters enter the merge
//     exactly once no matter how many attempts it took;
//   - a worker that disconnects, crashes, or misses heartbeats past the
//     lease has its attempt revoked and the shard retried with
//     exponential backoff + deterministic jitter, up to max_shard_retries;
//     after that the shard is recorded as a contained permanent failure
//     (verdict degrades to inconclusive, the run completes);
//   - when the queue drains while long shards still run, the coordinator
//     asks the oldest running shard's worker to preempt (work stealing);
//     the preempted partial result plus the sub-shards split from its
//     frontier (mc::split_remaining_frontier) cover exactly the executions
//     the undisturbed shard would have explored, keeping merged counters
//     bit-identical to a serial run;
//   - if no worker ever connects within the deadline — or every worker is
//     gone and none returns — the remaining shards gracefully degrade to
//     the local fork pool (mc::fork_map), so `--dist-workers` never
//     strands a run.
//
// All dist bookkeeping (retries, leases, steals, reconnects) is exported
// as dist.* gauges, never counters: the deterministic counter set must
// stay bit-identical to --jobs 1 under every failure injection.
#ifndef CDS_DIST_COORDINATOR_H
#define CDS_DIST_COORDINATOR_H

#include <cstddef>
#include <cstdint>
#include <string>

#include "dist/chaos.h"
#include "dist/worker.h"
#include "harness/runner.h"

namespace cds::dist {

struct DistOptions {
  // Address to listen on ("host:port" or "unix:PATH"). Empty = an
  // automatic per-process Unix socket under /tmp, removed on completion.
  std::string listen;
  // Local worker processes to fork and point at the listen address
  // (localhost convenience mode; 0 = external workers only).
  int dist_workers = 0;
  // Lease duration per assignment. Heartbeats renew it; an attempt whose
  // lease lapses is revoked and retried. Workers are told to heartbeat at
  // a third of this.
  double lease_seconds = 5.0;
  // Retries after the first attempt before a shard is recorded as a
  // permanent (contained) failure. 0 = single attempt.
  int max_shard_retries = 3;
  // Fall back to the local fork pool when no worker has connected this
  // long after startup, or when all workers are gone this long.
  double connect_deadline_seconds = 5.0;
  // Steal from a running shard only after it has held its assignment this
  // long. 0 = half the lease.
  double steal_after_seconds = 0.0;
  // Base for the exponential retry backoff (doubled per attempt, plus
  // deterministic jitter derived from the engine seed and attempt id).
  double retry_backoff_seconds = 0.05;
  bool enable_steal = true;
  // Shard planning, mirroring ParallelOptions.
  int shard_depth = 2;
  std::size_t max_shards = 0;  // 0 = max(dist_workers, 1) * 4
  // Fork-pool width for the local fallback. 0 = max(dist_workers, 1).
  int fallback_jobs = 0;
  // Fault injection applied to the FIRST forked local worker (chaos
  // tests / the CI chaos step). External workers configure their own.
  ChaosOptions worker_chaos;
  // Coordinator-side fault injection (journal-append crash windows).
  CoordinatorChaos coord_chaos;
  // Write-ahead shard-outcome journal (see dist/journal.h). Empty = no
  // durability: a coordinator crash discards all progress. The file is
  // kept on completion (it is the run's audit log and CI artifact).
  std::string journal_path;
  // Replay an existing journal before starting: completed shards are
  // satisfied from their journaled results, in-flight ones re-enqueued,
  // and this incarnation runs under a bumped epoch. A journal recorded
  // under a different benchmark/config/shard plan sets
  // DistRunResult::resume_error instead of merging incompatible state.
  bool resume = false;
  // Benchmark resolver inherited by forked local workers; defaults to the
  // benchmark under test plus the global registry.
  BenchmarkResolver resolve;
  // Forwarded to workers' shard children as the progress interval.
  double worker_progress_interval_seconds = 0.0;
};

struct DistRunResult {
  harness::RunResult merged;
  std::uint64_t shards = 0;  // planned + minted by stealing
  std::uint64_t probe_executions = 0;
  std::uint64_t retries = 0;          // attempts rescheduled (any cause)
  std::uint64_t leases_expired = 0;   // revocations by lease timeout
  std::uint64_t steals = 0;           // preemption requests sent
  std::uint64_t steal_subshards = 0;  // sub-shards minted from frontiers
  std::uint64_t failed_shards = 0;    // permanent failures (out of retries)
  std::uint64_t stale_results = 0;    // revoked-attempt reports dropped
  std::uint64_t corrupt_results = 0;  // unparseable result payloads
  std::uint64_t workers_connected = 0;  // peak concurrent workers
  std::uint64_t connections_total = 0;  // hellos accepted (incl. reconnects)
  bool fell_back_local = false;
  std::string listen_address;  // resolved address actually listened on
  // Durability (journal) bookkeeping.
  std::uint64_t epoch = 0;             // this incarnation (0 = no journal)
  bool resumed = false;                // a prior journal was replayed
  std::uint64_t replayed_shards = 0;   // shards satisfied from the journal
  std::uint64_t fenced_results = 0;    // out-of-epoch reports dropped
  std::uint64_t journal_quarantined_bytes = 0;  // torn-tail bytes set aside
  // Non-empty: --resume was rejected (journal recorded under a different
  // benchmark, config fingerprint, or shard plan); nothing was run.
  std::string resume_error;
};

// Distributed analog of run_benchmark_parallel: plans shards exactly the
// same way, distributes them to workers, and merges to the same
// deterministic RunResult. With `journal_path` set, every shard outcome
// is journaled write-ahead of the merge, and `resume` continues an
// interrupted run to a bit-identical verdict and counter set.
DistRunResult run_benchmark_distributed(const harness::Benchmark& b,
                                        const harness::RunOptions& opts,
                                        const DistOptions& d);

}  // namespace cds::dist

#endif  // CDS_DIST_COORDINATOR_H
