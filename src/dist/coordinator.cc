#include "dist/coordinator.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "dist/journal.h"
#include "dist/net.h"
#include "dist/protocol.h"
#include "harness/shard_result.h"
#include "mc/shard.h"
#include "support/io.h"
#include "support/rng.h"

#if defined(__unix__) || defined(__APPLE__)
#define CDS_DIST_COORD_POSIX 1
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace cds::dist {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One schedulable unit of work. Retries reuse the same Shard (same unit,
// same seed — bit-identical re-exploration); work stealing appends fresh
// Shards minted from a preempted shard's frontier.
struct Shard {
  enum class State { kPending, kRunning, kDone, kFailed };
  State state = State::kPending;
  std::size_t test_index = 0;
  harness::ShardUnit unit;
  int attempts = 0;           // assignments handed out so far
  double next_eligible = 0.0; // backoff gate for the next assignment
  double assigned_at = 0.0;   // of the current attempt (steal-age)
  bool stolen = false;        // one preemption request per attempt
  harness::ShardResult result;  // valid when kDone
};

struct Conn {
  int fd = -1;
  FrameBuffer buf;
  bool greeted = false;        // hello seen, welcome sent
  std::uint64_t attempt = 0;   // attempt this worker believes it holds
  bool reading_payload = false;
  std::uint64_t payload_attempt = 0;
  std::uint64_t payload_len = 0;
  bool dead = false;
};

struct Attempt {
  std::size_t shard = 0;
  int fd = -1;
  double lease_expiry = 0.0;
};

// Strict parse plus the sanity check that ties a preempted result's
// frontier back to the shard's own prefix. Shared by the live accept
// path and journal replay, so both trust exactly the same payloads.
bool parse_shard_payload(const Shard& s, const std::string& text,
                         harness::ShardResult* sr, std::string* why) {
  if (!harness::parse_shard_result(text, sr, why)) return false;
  if (sr->stats.preempted && sr->frontier.size() < s.unit.prefix.size()) {
    *why = "frontier shorter than the shard's own prefix";
    return false;
  }
  return true;
}

// Applies a validated result to the shard table: a preempted (stolen)
// shard mints sub-shards covering the unexplored remainder of its
// subtree, then the (normalized) partial result is stored. Pure given
// (shards, sidx, sr) — split_remaining_frontier and derive_seed are
// deterministic — so journal replay re-mints the exact sub-shard
// sequence the crashed incarnation minted. Returns the minted count.
std::size_t apply_shard_result(std::vector<Shard>& shards, std::size_t sidx,
                               harness::ShardResult sr, DistRunResult& dr) {
  std::size_t minted = 0;
  if (sr.stats.preempted) {
    // Copy the parent's fields first: each push_back below may
    // reallocate `shards`, invalidating references into it.
    const std::size_t parent_test = shards[sidx].test_index;
    const harness::ShardUnit parent_unit = shards[sidx].unit;
    std::vector<std::vector<mc::Choice>> subs =
        mc::split_remaining_frontier(parent_unit.prefix.size(), sr.frontier);
    for (std::size_t k = 0; k < subs.size(); ++k) {
      Shard ns;
      ns.test_index = parent_test;
      ns.unit = parent_unit;
      ns.unit.prefix = std::move(subs[k]);
      // Fresh derived seed per sub-shard; the sampling budget stays the
      // parent's (already divided) share — sub-shards jointly re-cover
      // the parent's unexplored remainder, not a new tranche.
      ns.unit.engine_seed = support::derive_seed(
          parent_unit.engine_seed, 1000 + static_cast<std::uint64_t>(k));
      shards.push_back(std::move(ns));
      ++dr.steal_subshards;
      ++dr.shards;
    }
    minted = subs.size();
    // The partial result's counters are exact for the executions it
    // explored; coverage of the remainder is now the sub-shards' job.
    // The engine conservatively reports exhausted=false on preemption,
    // which must not poison the test-level AND.
    sr.stats.preempted = false;
    sr.stats.stopped_early = false;
    sr.stats.exhausted = true;
  }
  Shard& sh = shards[sidx];
  sh.result = std::move(sr);
  sh.state = Shard::State::kDone;
  return minted;
}

// Replays a loaded journal against a freshly planned shard table (the
// header has already been validated against this plan). Completed
// shards are satisfied from their journaled payloads; minting replays
// implicitly because apply_shard_result is deterministic. Lease records
// are informational — an in-flight shard simply stays kPending and is
// re-enqueued under the new epoch.
void replay_journal(const JournalReplay& rep, std::vector<Shard>& shards,
                    DistRunResult& dr) {
  for (const JournalRecord& r : rep.records) {
    switch (r.kind) {
      case JournalRecord::Kind::kRun:
      case JournalRecord::Kind::kLease:
      case JournalRecord::Kind::kMint:
      case JournalRecord::Kind::kDone:
        break;
      case JournalRecord::Kind::kResult: {
        const auto sidx = static_cast<std::size_t>(r.shard);
        if (sidx >= shards.size()) {
          std::fprintf(stderr,
                       "cds::dist: journaled result for unknown shard %zu; "
                       "ignored\n",
                       sidx);
          break;
        }
        if (shards[sidx].state == Shard::State::kDone) break;
        harness::ShardResult sr;
        std::string why;
        if (!parse_shard_payload(shards[sidx], r.payload, &sr, &why)) {
          std::fprintf(stderr,
                       "cds::dist: journaled result for shard %zu does not "
                       "parse (%s); recomputing\n",
                       sidx, why.c_str());
          break;
        }
        apply_shard_result(shards, sidx, std::move(sr), dr);
        ++dr.replayed_shards;
        break;
      }
      case JournalRecord::Kind::kFailed: {
        // A journaled permanent failure is a completed outcome: the
        // crashed incarnation already spent the retry budget.
        const auto sidx = static_cast<std::size_t>(r.shard);
        if (sidx >= shards.size()) break;
        Shard& s = shards[sidx];
        if (s.state == Shard::State::kDone ||
            s.state == Shard::State::kFailed) {
          break;
        }
        s.state = Shard::State::kFailed;
        ++dr.failed_shards;
        break;
      }
    }
  }
}

struct Coordinator {
  const harness::Benchmark& b;
  const harness::RunOptions& opts;
  const DistOptions& d;
  DistRunResult& dr;
  std::vector<Shard>& shards;

  std::vector<Conn> conns;
  std::map<std::uint64_t, Attempt> live;  // attempt id -> lease
  std::uint64_t attempt_counter = 0;
  std::uint64_t current_workers = 0;
  double last_worker_seen = 0.0;
  // Write-ahead journal (null/closed = no durability) and this
  // incarnation's epoch. Attempt ids embed the epoch in their high 32
  // bits so a resumed coordinator's fresh ids can never collide with
  // ids a surviving worker still holds from the crashed incarnation.
  JournalWriter* journal = nullptr;
  std::uint64_t epoch = 0;
  bool journal_broken = false;

  // Journal appends are write-ahead but non-fatal: if the disk fails
  // mid-run the coordinator degrades to non-durable and keeps going.
  void jappend(const JournalRecord& r) {
    if (journal == nullptr || !journal->is_open() || journal_broken) return;
    std::string jerr;
    if (!journal->append(r, &jerr)) {
      journal_broken = true;
      std::fprintf(stderr,
                   "cds::dist: journal append failed (%s); continuing "
                   "without durability\n",
                   jerr.c_str());
    }
  }

  [[nodiscard]] bool all_resolved() const {
    for (const Shard& s : shards) {
      if (s.state != Shard::State::kDone && s.state != Shard::State::kFailed) {
        return false;
      }
    }
    return true;
  }

  double backoff_for(const Shard& s, std::uint64_t attempt_id) const {
    double base = d.retry_backoff_seconds;
    for (int i = 1; i < s.attempts; ++i) base *= 2.0;
    support::Xorshift64 rng(support::derive_seed(
        opts.engine.seed, attempt_id ^ static_cast<std::uint64_t>(s.attempts)));
    const double jitter =
        static_cast<double>(rng.next() >> 11) * 0x1.0p-53;  // [0, 1)
    return base * (1.0 + jitter);
  }

  // The current attempt is gone (failure report, connection loss, lease
  // expiry, corrupt result): back the shard off for a retry, or record it
  // as a contained permanent failure once the retry budget is spent.
  void schedule_retry(std::size_t sidx, std::uint64_t attempt_id,
                      const char* why) {
    Shard& s = shards[sidx];
    if (s.state != Shard::State::kRunning) return;
    if (s.attempts >= d.max_shard_retries + 1) {
      s.state = Shard::State::kFailed;
      ++dr.failed_shards;
      record_permanent_failure(sidx, attempt_id, why);
      std::fprintf(stderr,
                   "cds::dist: shard %zu (test %zu) failed permanently "
                   "after %d attempts (last: %s)\n",
                   sidx, s.test_index, s.attempts, why);
      return;
    }
    s.state = Shard::State::kPending;
    s.next_eligible = now_seconds() + backoff_for(s, attempt_id);
    ++dr.retries;
  }

  void record_permanent_failure(std::size_t sidx, std::uint64_t attempt_id,
                                const char* why) {
    JournalRecord rec;
    rec.kind = JournalRecord::Kind::kFailed;
    rec.shard = sidx;
    rec.attempt = attempt_id;
    rec.payload = why;
    jappend(rec);
  }

  void drop_conn(Conn& c, const char* why) {
    if (c.dead) return;
    c.dead = true;
    if (c.greeted && current_workers > 0) --current_workers;
    last_worker_seen = now_seconds();
    auto it = live.find(c.attempt);
    if (c.attempt != 0 && it != live.end() && it->second.fd == c.fd) {
      const std::size_t sidx = it->second.shard;
      const std::uint64_t id = c.attempt;
      live.erase(it);
      schedule_retry(sidx, id, why);
    }
    close(c.fd);
    c.fd = -1;
  }

  bool send_to(Conn& c, const std::string& bytes, const char* what) {
    if (support::write_full(c.fd, bytes)) return true;
    std::fprintf(stderr, "cds::dist: send of %s failed (%s); dropping worker\n",
                 what, std::strerror(errno));
    drop_conn(c, "send failed");
    return false;
  }

  // A complete, in-lease result arrived for `sidx`: parse strictly,
  // journal the raw payload write-ahead, then apply (for a preempted
  // shard, minting sub-shards covering the unexplored remainder).
  void accept_result(std::size_t sidx, std::uint64_t attempt_id,
                     const std::string& text) {
    harness::ShardResult sr;
    std::string err;
    if (!parse_shard_payload(shards[sidx], text, &sr, &err)) {
      ++dr.corrupt_results;
      std::fprintf(stderr,
                   "cds::dist: shard %zu returned a corrupt result (%s); "
                   "retrying\n",
                   sidx, err.c_str());
      schedule_retry(sidx, attempt_id, "corrupt result");
      return;
    }
    // WAL: the raw (pre-normalization) payload is durable before any
    // merge state changes. A crash from here on replays this record and
    // re-derives the exact same minted sub-shards and merge input.
    JournalRecord rec;
    rec.kind = JournalRecord::Kind::kResult;
    rec.shard = sidx;
    rec.attempt = attempt_id;
    rec.payload = text;
    jappend(rec);
    const std::size_t minted = apply_shard_result(shards, sidx, std::move(sr),
                                                  dr);
    if (minted > 0) {
      // Informational (replay re-mints from the result record itself);
      // lets offline audits cross-check the mint count.
      JournalRecord m;
      m.kind = JournalRecord::Kind::kMint;
      m.shard = sidx;
      m.count = minted;
      jappend(m);
    }
  }

  // An attempt id minted by a previous coordinator incarnation carries
  // that incarnation's epoch in its high bits; count such reports as
  // fenced (the restart-safety property at work) rather than stale.
  void count_dropped(std::uint64_t attempt_id) {
    if (epoch != 0 && (attempt_id >> 32) != epoch) {
      ++dr.fenced_results;
    } else {
      ++dr.stale_results;
    }
  }

  void handle_payload(Conn& c, const std::string& text) {
    auto it = live.find(c.payload_attempt);
    if (it != live.end() && it->second.fd == c.fd) {
      const std::size_t sidx = it->second.shard;
      live.erase(it);
      if (c.attempt == c.payload_attempt) c.attempt = 0;
      accept_result(sidx, c.payload_attempt, text);
    } else {
      count_dropped(c.payload_attempt);
      if (c.attempt == c.payload_attempt) c.attempt = 0;
    }
  }

  void handle_line(Conn& c, const std::string& line) {
    ControlLine msg;
    std::string err;
    if (!parse_control_line(line, &msg, &err)) {
      std::fprintf(stderr, "cds::dist: protocol error from worker (%s); "
                   "dropping connection\n",
                   err.c_str());
      drop_conn(c, "protocol error");
      return;
    }
    switch (msg.kind) {
      case ControlLine::Kind::kHello: {
        if (c.greeted) break;  // duplicate hello: harmless
        const std::uint64_t hb_us = static_cast<std::uint64_t>(
            std::max(0.001, d.lease_seconds / 3.0) * 1e6);
        if (!send_to(c, render_welcome(hb_us, epoch), "welcome")) return;
        c.greeted = true;
        ++dr.connections_total;
        ++current_workers;
        last_worker_seen = now_seconds();
        dr.workers_connected = std::max(dr.workers_connected, current_workers);
        break;
      }
      case ControlLine::Kind::kHeartbeat:
        // Lease renewal happens generically on any traffic from the
        // attempt's owner (see on_readable); a heartbeat for a revoked
        // attempt is simply ignored — its result will be dropped stale.
        break;
      case ControlLine::Kind::kResult:
        if (msg.payload_len > FrameBuffer::kMaxPayload) {
          drop_conn(c, "oversized result payload");
          return;
        }
        c.reading_payload = true;
        c.payload_attempt = msg.shard_id;
        c.payload_len = msg.payload_len;
        break;
      case ControlLine::Kind::kFailed: {
        auto it = live.find(msg.shard_id);
        if (it != live.end() && it->second.fd == c.fd) {
          const std::size_t sidx = it->second.shard;
          live.erase(it);
          schedule_retry(sidx, msg.shard_id, msg.reason.c_str());
        } else {
          count_dropped(msg.shard_id);
        }
        if (c.attempt == msg.shard_id) c.attempt = 0;
        break;
      }
      default:
        // welcome/assign/steal/quit are coordinator->worker verbs.
        drop_conn(c, "unexpected verb from worker");
        return;
    }
  }

  void on_readable(Conn& c) {
    char tmp[65536];
    long got = support::read_some(c.fd, tmp, sizeof tmp);
    if (got <= 0) {
      drop_conn(c, "connection lost");
      return;
    }
    c.buf.append(tmp, static_cast<std::size_t>(got));
    // Any traffic from the owner of a live attempt renews its lease —
    // heartbeats, but also a large result payload trickling in.
    auto it = live.find(c.attempt);
    if (c.attempt != 0 && it != live.end() && it->second.fd == c.fd) {
      it->second.lease_expiry = now_seconds() + d.lease_seconds;
    }
    std::string line;
    while (!c.dead) {
      if (c.reading_payload) {
        std::string payload;
        if (!c.buf.take(static_cast<std::size_t>(c.payload_len), &payload)) {
          break;  // wait for more bytes
        }
        c.reading_payload = false;
        handle_payload(c, payload);
        continue;
      }
      if (!c.buf.next_line(&line)) break;
      handle_line(c, line);
    }
    if (!c.dead && c.buf.overflowed()) drop_conn(c, "oversized frame");
  }

  void sweep_leases() {
    const double now = now_seconds();
    for (auto it = live.begin(); it != live.end();) {
      if (now > it->second.lease_expiry) {
        ++dr.leases_expired;
        const std::size_t sidx = it->second.shard;
        const std::uint64_t id = it->first;
        it = live.erase(it);
        // The worker's conn keeps its (now revoked) attempt id: it stays
        // out of the idle pool until its late report arrives and is
        // dropped as stale.
        schedule_retry(sidx, id, "lease expired");
      } else {
        ++it;
      }
    }
  }

  void assign_ready() {
    const double now = now_seconds();
    for (Conn& c : conns) {
      if (c.dead || !c.greeted || c.attempt != 0) continue;
      // First ready pending shard in queue order: planned shards are in
      // test-then-DFS order and stolen sub-shards append after their
      // parent, which keeps assignment close to serial DFS order.
      std::size_t pick = shards.size();
      for (std::size_t sidx = 0; sidx < shards.size(); ++sidx) {
        if (shards[sidx].state == Shard::State::kPending &&
            shards[sidx].next_eligible <= now) {
          pick = sidx;
          break;
        }
      }
      if (pick == shards.size()) return;
      Shard& s = shards[pick];
      Assignment asg;
      // High 32 bits: this incarnation's epoch. The counter restarts at
      // zero after a crash, so without the epoch a resumed run would
      // re-mint ids that fenced-off workers still hold.
      asg.shard_id = (epoch << 32) | ++attempt_counter;
      asg.bench = b.name;
      asg.unit = s.unit;
      asg.engine = opts.engine;
      asg.checker = opts.checker;
      const std::string payload = render_assignment(asg);
      s.state = Shard::State::kRunning;
      ++s.attempts;
      s.assigned_at = now;
      s.stolen = false;
      live[asg.shard_id] = Attempt{pick, c.fd, now + d.lease_seconds};
      c.attempt = asg.shard_id;
      // Journaled before the assignment leaves: a resumed coordinator
      // sees which shards were in flight (they re-enqueue as pending).
      JournalRecord lease;
      lease.kind = JournalRecord::Kind::kLease;
      lease.shard = pick;
      lease.attempt = asg.shard_id;
      jappend(lease);
      if (!send_to(c, render_assign_header(asg.shard_id, payload.size()) +
                          payload,
                   "assignment")) {
        continue;  // drop_conn already revoked + rescheduled
      }
    }
  }

  void maybe_steal() {
    if (!d.enable_steal) return;
    bool idle = false;
    for (const Conn& c : conns) {
      if (!c.dead && c.greeted && c.attempt == 0) idle = true;
    }
    if (!idle) return;
    for (const Shard& s : shards) {
      if (s.state == Shard::State::kPending) return;  // queue not dry
    }
    const double now = now_seconds();
    const double steal_after =
        d.steal_after_seconds > 0 ? d.steal_after_seconds
                                  : d.lease_seconds / 2.0;
    std::uint64_t victim = 0;
    double oldest = now;
    for (const auto& [id, at] : live) {
      const Shard& s = shards[at.shard];
      if (s.state != Shard::State::kRunning || s.stolen) continue;
      if (now - s.assigned_at < steal_after) continue;
      if (s.assigned_at < oldest) {
        oldest = s.assigned_at;
        victim = id;
      }
    }
    if (victim == 0) return;
    const Attempt at = live[victim];
    for (Conn& c : conns) {
      if (!c.dead && c.fd == at.fd) {
        if (send_to(c, render_steal(victim), "steal")) {
          shards[at.shard].stolen = true;
          ++dr.steals;
        }
        return;
      }
    }
  }
};

void merge_shards(const harness::Benchmark& b, const harness::RunOptions& opts,
                  std::vector<Shard>& shards, DistRunResult& dr) {
  harness::RunResult& total = dr.merged;
  total.mc.seed = opts.engine.seed;
  total.mc.exhausted = true;
  for (std::size_t i = 0; i < b.tests.size(); ++i) {
    // Merge in serial DFS order: stolen sub-shards were appended out of
    // order, so sort this test's shards by subtree-prefix DFS order. A
    // preempted parent's prefix is a proper prefix of its sub-shards' and
    // therefore sorts first — violations and the record cap behave exactly
    // as in an undisturbed serial run.
    std::vector<std::size_t> order;
    for (std::size_t sidx = 0; sidx < shards.size(); ++sidx) {
      if (shards[sidx].test_index == i) order.push_back(sidx);
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t x, std::size_t y) {
                       return mc::prefix_dfs_less(shards[x].unit.prefix,
                                                  shards[y].unit.prefix);
                     });
    bool test_exhausted = true;
    bool test_falsified = false;
    std::uint64_t test_fatals = 0;
    std::uint64_t failed_here = 0;
    std::uint64_t recorded_here = 0;
    for (std::size_t sidx : order) {
      Shard& s = shards[sidx];
      if (s.state != Shard::State::kDone) {
        ++failed_here;
        test_exhausted = false;
        continue;
      }
      harness::ShardResult& sr = s.result;
      mc::merge_shard_stats(total.mc, sr.stats);
      test_exhausted = test_exhausted && sr.stats.exhausted;
      test_falsified = test_falsified || sr.stats.violations_total > 0;
      test_fatals += sr.stats.engine_fatal_execs;
      total.spec.executions_checked += sr.spec.executions_checked;
      total.spec.inadmissible_execs += sr.spec.inadmissible_execs;
      total.spec.assertion_violation_execs +=
          sr.spec.assertion_violation_execs;
      total.spec.histories_checked += sr.spec.histories_checked;
      total.spec.justification_checks += sr.spec.justification_checks;
      total.spec.history_cap_hit |= sr.spec.history_cap_hit;
      total.spec.r_cycle_seen |= sr.spec.r_cycle_seen;
      total.metrics.merge(sr.metrics);
      for (mc::Violation& v : sr.violations) {
        if (opts.engine.max_recorded_violations != 0 &&
            recorded_here >= opts.engine.max_recorded_violations) {
          break;
        }
        total.violations.push_back(std::move(v));
        ++recorded_here;
      }
      for (std::string& rep : sr.reports) {
        total.reports.push_back(std::move(rep));
      }
    }
    mc::Verdict tv =
        test_falsified
            ? mc::Verdict::kFalsified
            : (test_exhausted && test_fatals == 0 && failed_here == 0
                   ? mc::Verdict::kVerifiedExhaustive
                   : mc::Verdict::kInconclusive);
    harness::weaken_verdict(total.verdict, tv);
    total.mc.exhausted = total.mc.exhausted && test_exhausted;
  }
  total.mc.verdict = total.verdict;
}

// Runs every still-unresolved shard on the local fork pool (the graceful
// degradation path, and the whole path on platforms without sockets).
// With an open journal, every unit outcome is journaled the moment the
// pool reports it — write-ahead of this function's own bookkeeping — so
// a crash mid-fallback resumes without redoing finished shards.
void run_remaining_locally(const harness::Benchmark& b,
                           const harness::RunOptions& opts,
                           const DistOptions& d, std::vector<Shard>& shards,
                           DistRunResult& dr, JournalWriter* journal) {
  std::vector<std::size_t> remaining;
  for (std::size_t sidx = 0; sidx < shards.size(); ++sidx) {
    Shard::State st = shards[sidx].state;
    if (st == Shard::State::kPending || st == Shard::State::kRunning) {
      remaining.push_back(sidx);
    }
  }
  if (remaining.empty()) return;
  dr.fell_back_local = true;
  mc::ForkMapOptions fm;
  fm.jobs = d.fallback_jobs > 0 ? d.fallback_jobs : std::max(1, d.dist_workers);
  if (journal != nullptr && journal->is_open()) {
    fm.on_result = [&](std::size_t u, const mc::UnitResult& ur) {
      JournalRecord rec;
      rec.shard = remaining[u];
      rec.attempt = 0;  // fork-pool units run under no lease
      if (ur.ran) {
        // Journal only payloads replay will trust; a corrupt one is
        // recomputed on resume, same as it is recomputed below.
        harness::ShardResult sr;
        std::string why;
        if (!parse_shard_payload(shards[remaining[u]], ur.text, &sr, &why) ||
            sr.stats.preempted) {
          return;
        }
        rec.kind = JournalRecord::Kind::kResult;
        rec.payload = ur.text;
      } else {
        rec.kind = JournalRecord::Kind::kFailed;
        rec.payload = "local fork-pool worker died";
      }
      std::string jerr;
      if (!journal->append(rec, &jerr)) {
        std::fprintf(stderr,
                     "cds::dist: journal append failed (%s); continuing "
                     "without durability\n",
                     jerr.c_str());
      }
    };
  }
  std::vector<mc::UnitResult> results = mc::fork_map(
      remaining.size(),
      [&](std::size_t u) {
        return harness::run_shard_unit(b, opts, shards[remaining[u]].unit);
      },
      fm);
  for (std::size_t u = 0; u < remaining.size(); ++u) {
    Shard& s = shards[remaining[u]];
    harness::ShardResult sr;
    std::string err;
    if (!results[u].ran) {
      s.state = Shard::State::kFailed;
      ++dr.failed_shards;
      continue;
    }
    // No stop_request in the fallback pool: a preempted result here is as
    // impossible as in the parallel path, so treat it as corrupt.
    if (!harness::parse_shard_result(results[u].text, &sr, &err) ||
        sr.stats.preempted) {
      std::fprintf(stderr,
                   "cds::dist: local fallback shard %zu returned a corrupt "
                   "result (%s)\n",
                   remaining[u], err.c_str());
      ++dr.corrupt_results;
      s.state = Shard::State::kFailed;
      ++dr.failed_shards;
      continue;
    }
    s.result = std::move(sr);
    s.state = Shard::State::kDone;
  }
}

}  // namespace

DistRunResult run_benchmark_distributed(const harness::Benchmark& b,
                                        const harness::RunOptions& opts,
                                        const DistOptions& d) {
  DistRunResult dr;
  support::SigpipeIgnoreScope sigpipe_guard;

  // Plan shards exactly as the parallel path does: same prefixes, same
  // derived seeds, same sampling split — a distributed run explores the
  // same partition of the same trees.
  std::vector<Shard> shards;
  const std::size_t max_shards =
      d.max_shards != 0
          ? d.max_shards
          : static_cast<std::size_t>(std::max(1, d.dist_workers)) * 4;
  for (std::size_t i = 0; i < b.tests.size(); ++i) {
    mc::Config pcfg = opts.engine;
    pcfg.test_name = b.name + "#" + std::to_string(i);
    pcfg.test_index = static_cast<std::uint32_t>(i);
    mc::ShardPlan plan = mc::enumerate_shard_prefixes(
        pcfg, b.tests[i], d.shard_depth, max_shards);
    dr.probe_executions += plan.probe_executions;
    const std::size_t shard_count = plan.prefixes.size();
    for (std::size_t u = 0; u < shard_count; ++u) {
      Shard s;
      s.test_index = i;
      s.unit = harness::make_shard_unit(opts, i, std::move(plan.prefixes[u]),
                                        u, shard_count);
      shards.push_back(std::move(s));
    }
  }
  dr.shards = shards.size();

  // ---- Durability: journal replay (--resume) and the write-ahead log ----
  JournalWriter journal;
  std::uint64_t epoch = 0;
  if (!d.journal_path.empty()) {
    // Hash the freshly planned units BEFORE replay mints sub-shards:
    // this is the identity a later resume re-derives and compares.
    std::vector<harness::ShardUnit> planned;
    planned.reserve(shards.size());
    for (const Shard& s : shards) planned.push_back(s.unit);
    const std::uint32_t plan_hash = journal_plan_hash(planned);
    const std::uint32_t fp = journal_config_fingerprint(opts.engine);
    epoch = 1;
    if (d.resume) {
      JournalReplay rep;
      std::string jerr;
      if (!load_journal(d.journal_path, &rep, &jerr)) {
        std::fprintf(stderr, "cds::dist: %s; starting fresh\n", jerr.c_str());
      }
      dr.journal_quarantined_bytes = rep.quarantined_bytes;
      if (!rep.quarantine_note.empty()) {
        std::fprintf(stderr, "cds::dist: %s\n", rep.quarantine_note.c_str());
      }
      const JournalRecord* hdr = nullptr;
      for (const JournalRecord& r : rep.records) {
        if (r.kind == JournalRecord::Kind::kRun) {
          hdr = &r;
          break;
        }
      }
      if (hdr != nullptr) {
        if (hdr->bench != b.name || hdr->fingerprint != fp ||
            hdr->plan_hash != plan_hash || hdr->shards != planned.size()) {
          dr.resume_error =
              "journal '" + d.journal_path + "' records a different " +
              (hdr->bench != b.name
                   ? "benchmark ('" + hdr->bench + "')"
                   : hdr->fingerprint != fp ? std::string("config fingerprint")
                                            : std::string("shard plan")) +
              "; refusing to merge incompatible shards (delete the journal "
              "or rerun with the original parameters)";
          dr.merged.verdict = mc::Verdict::kInconclusive;
          dr.merged.mc.verdict = dr.merged.verdict;
          return dr;
        }
        dr.resumed = true;
        epoch = rep.last_epoch + 1;
        replay_journal(rep, shards, dr);
      }
      // A resume against a missing or headerless journal starts fresh —
      // convenient for "always pass --resume" retry loops.
    }
    std::string jerr;
    if (!journal.open(d.journal_path, /*truncate=*/!dr.resumed, &jerr)) {
      std::fprintf(stderr,
                   "cds::dist: %s; continuing without durability\n",
                   jerr.c_str());
    } else {
      journal.set_chaos(d.coord_chaos);
      JournalRecord run;
      run.kind = JournalRecord::Kind::kRun;
      run.epoch = epoch;
      run.shards = planned.size();
      run.plan_hash = plan_hash;
      run.fingerprint = fp;
      run.bench = b.name;
      if (!journal.append(run, &jerr)) {
        std::fprintf(stderr,
                     "cds::dist: %s; continuing without durability\n",
                     jerr.c_str());
        journal.close_file();
      }
    }
  }
  dr.epoch = epoch;

  // After replay everything may already be resolved; don't spin up
  // sockets and workers just to have the main loop exit instantly.
  bool need_work = false;
  for (const Shard& s : shards) {
    if (s.state == Shard::State::kPending ||
        s.state == Shard::State::kRunning) {
      need_work = true;
    }
  }

#ifdef CDS_DIST_COORD_POSIX
  std::string listen_spec = d.listen;
  bool auto_socket = false;
  if (listen_spec.empty()) {
    listen_spec =
        "unix:/tmp/cdsspec-dist-" + std::to_string(getpid()) + ".sock";
    auto_socket = true;
  }
  Address addr;
  std::string err;
  int listen_fd = -1;
  if (need_work &&
      (!parse_address(listen_spec, &addr, &err) ||
       (listen_fd = listen_on(addr, &err)) < 0)) {
    std::fprintf(stderr,
                 "cds::dist: cannot listen on '%s' (%s); running locally\n",
                 listen_spec.c_str(), err.c_str());
  }
  dr.listen_address = listen_spec;

  std::vector<pid_t> worker_pids;
  if (listen_fd >= 0) {
    BenchmarkResolver resolver = d.resolve;
    if (!resolver) {
      const harness::Benchmark* bp = &b;
      resolver = [bp](const std::string& name) -> const harness::Benchmark* {
        if (name == bp->name) return bp;
        return harness::find_benchmark(name);
      };
    }
    for (int w = 0; w < d.dist_workers; ++w) {
      pid_t pid = fork();
      if (pid < 0) {
        std::fprintf(stderr, "cds::dist: fork of worker %d failed: %s\n", w,
                     std::strerror(errno));
        break;
      }
      if (pid == 0) {
        close(listen_fd);
        WorkerOptions wo;
        wo.connect_timeout_seconds =
            std::max(10.0, d.connect_deadline_seconds * 2.0);
        wo.progress_interval_seconds = d.worker_progress_interval_seconds;
        wo.resolve = resolver;
        if (w == 0) wo.chaos = d.worker_chaos;
        _exit(run_worker(listen_spec, wo));
      }
      worker_pids.push_back(pid);
    }

    Coordinator co{b, opts, d, dr, shards, {}, {}, 0, 0, now_seconds()};
    co.journal = &journal;
    co.epoch = epoch;
    const double start = now_seconds();
    while (!co.all_resolved()) {
      // Graceful degradation: nobody ever connected, or everybody left
      // and stayed away. Revoke what's in flight and finish locally.
      const double now = now_seconds();
      const bool nobody_ever = dr.connections_total == 0 &&
                               now - start > d.connect_deadline_seconds;
      const bool all_gone =
          dr.connections_total > 0 && co.current_workers == 0 &&
          now - co.last_worker_seen > d.connect_deadline_seconds;
      if (nobody_ever || all_gone) {
        std::fprintf(stderr,
                     "cds::dist: %s; falling back to the local fork pool\n",
                     nobody_ever ? "no worker connected within the deadline"
                                 : "all workers gone");
        for (auto& [id, at] : co.live) {
          shards[at.shard].state = Shard::State::kPending;
        }
        co.live.clear();
        break;
      }

      std::vector<pollfd> pfds;
      pfds.push_back(pollfd{listen_fd, POLLIN, 0});
      std::vector<std::size_t> pfd_conn;  // pfds[k+1] -> conns index
      for (std::size_t ci = 0; ci < co.conns.size(); ++ci) {
        if (co.conns[ci].dead) continue;
        pfds.push_back(pollfd{co.conns[ci].fd, POLLIN, 0});
        pfd_conn.push_back(ci);
      }
      // Sleep in poll(2) until the earliest timer the loop acts on, not
      // a fixed tick: socket traffic wakes poll by itself, so the only
      // deadlines are lease expiries, retry-backoff gates, the
      // steal-age threshold, and the graceful-degradation deadline.
      // Capped at 1s so clock surprises can't park the loop for long.
      double wake = now + 1.0;
      const auto consider = [&wake](double t) { wake = std::min(wake, t); };
      if (dr.connections_total == 0) {
        consider(start + d.connect_deadline_seconds);
      }
      if (dr.connections_total > 0 && co.current_workers == 0) {
        consider(co.last_worker_seen + d.connect_deadline_seconds);
      }
      for (const auto& [id, at] : co.live) consider(at.lease_expiry);
      // Only future backoff gates need a timer: an already-eligible
      // pending shard is assigned the moment a worker turns idle, and
      // workers turn idle via socket traffic or a lease expiry — both
      // of which wake poll on their own.
      for (const Shard& s : shards) {
        if (s.state == Shard::State::kPending && s.next_eligible > now) {
          consider(s.next_eligible);
        }
      }
      if (d.enable_steal) {
        const double steal_after = d.steal_after_seconds > 0
                                       ? d.steal_after_seconds
                                       : d.lease_seconds / 2.0;
        for (const auto& [id, at] : co.live) {
          const Shard& s = shards[at.shard];
          if (s.state == Shard::State::kRunning && !s.stolen) {
            consider(s.assigned_at + steal_after);
          }
        }
      }
      const int timeout_ms = std::clamp(
          static_cast<int>((wake - now) * 1000.0) + 1, 1, 1000);
      int rc = poll(pfds.data(), pfds.size(), timeout_ms);
      if (rc < 0 && errno != EINTR) break;

      if (rc > 0 && (pfds[0].revents & POLLIN) != 0) {
        int fd = accept_conn(listen_fd);
        if (fd >= 0) {
          Conn c;
          c.fd = fd;
          co.conns.push_back(std::move(c));
        }
      }
      for (std::size_t k = 0; k < pfd_conn.size(); ++k) {
        if ((pfds[k + 1].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
          continue;
        }
        Conn& c = co.conns[pfd_conn[k]];
        if (!c.dead) co.on_readable(c);
      }
      co.conns.erase(std::remove_if(co.conns.begin(), co.conns.end(),
                                    [](const Conn& c) { return c.dead; }),
                     co.conns.end());

      co.sweep_leases();
      co.assign_ready();
      co.maybe_steal();
    }

    for (Conn& c : co.conns) {
      if (c.dead) continue;
      (void)support::write_full(c.fd, render_quit());
      close(c.fd);
    }
    close(listen_fd);
    if (auto_socket) unlink(addr.path.c_str());

    // Reap forked workers: quit/EOF ends them promptly; SIGKILL the rest
    // (hung, or parked in a reconnect dial loop) after a short grace.
    for (int pass = 0; pass < 2; ++pass) {
      for (pid_t& pid : worker_pids) {
        if (pid <= 0) continue;
        for (int spin = 0; spin < 50; ++spin) {
          int status = 0;
          pid_t got = waitpid(pid, &status, WNOHANG);
          if (got == pid || (got < 0 && errno == ECHILD)) {
            pid = -1;
            break;
          }
          if (pass == 0) break;  // first pass: one WNOHANG probe only
          usleep(20 * 1000);
        }
        if (pass == 1 && pid > 0) {
          kill(pid, SIGKILL);
          int status = 0;
          waitpid(pid, &status, 0);
          pid = -1;
        }
      }
    }
  }
#else
  (void)need_work;
  dr.listen_address = d.listen;
#endif

  // Anything unresolved (no sockets on this platform, listen failure,
  // fallback trigger) finishes on the local fork pool.
  run_remaining_locally(b, opts, d, shards, dr, &journal);
  merge_shards(b, opts, shards, dr);
  if (journal.is_open()) {
    JournalRecord done;
    done.kind = JournalRecord::Kind::kDone;
    done.verdict = static_cast<std::uint64_t>(dr.merged.verdict);
    std::string jerr;
    if (!journal.append(done, &jerr)) {
      std::fprintf(stderr, "cds::dist: %s\n", jerr.c_str());
    }
  }

  obs::Registry& M = dr.merged.metrics;
  M.gauge("dist.workers_requested")
      .set(static_cast<std::uint64_t>(std::max(0, d.dist_workers)));
  M.gauge("dist.workers_connected_peak").set(dr.workers_connected);
  M.gauge("dist.connections_total").set(dr.connections_total);
  M.gauge("dist.shards").set(dr.shards);
  M.gauge("dist.probe_executions").set(dr.probe_executions);
  M.gauge("dist.retries").set(dr.retries);
  M.gauge("dist.leases_expired").set(dr.leases_expired);
  M.gauge("dist.steals").set(dr.steals);
  M.gauge("dist.steal_subshards").set(dr.steal_subshards);
  M.gauge("dist.failed_shards").set(dr.failed_shards);
  M.gauge("dist.stale_results").set(dr.stale_results);
  M.gauge("dist.corrupt_results").set(dr.corrupt_results);
  M.gauge("dist.fell_back_local").set(dr.fell_back_local ? 1 : 0);
  M.gauge("dist.epoch").set(dr.epoch);
  M.gauge("dist.resumed").set(dr.resumed ? 1 : 0);
  M.gauge("dist.replayed_shards").set(dr.replayed_shards);
  M.gauge("dist.fenced_results").set(dr.fenced_results);
  M.gauge("dist.journal_quarantined_bytes").set(dr.journal_quarantined_bytes);
  return dr;
}

}  // namespace cds::dist
