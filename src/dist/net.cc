#include "dist/net.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define CDS_DIST_NET_POSIX 1
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace cds::dist {

bool parse_address(const std::string& s, Address* out, std::string* err) {
  Address a;
  if (s.rfind("unix:", 0) == 0) {
    a.unix_domain = true;
    a.path = s.substr(5);
    if (a.path.empty()) {
      if (err) *err = "empty unix socket path in '" + s + "'";
      return false;
    }
#ifdef CDS_DIST_NET_POSIX
    if (a.path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      if (err) *err = "unix socket path too long: '" + a.path + "'";
      return false;
    }
#endif
    *out = a;
    return true;
  }
  std::size_t colon = s.rfind(':');
  if (colon == std::string::npos) {
    if (err) {
      *err = "address '" + s + "' is neither 'host:port' nor 'unix:PATH'";
    }
    return false;
  }
  a.host = s.substr(0, colon);
  const std::string port = s.substr(colon + 1);
  char* end = nullptr;
  errno = 0;
  unsigned long p = std::strtoul(port.c_str(), &end, 10);
  if (port.empty() || errno != 0 || *end != '\0' || p == 0 || p > 65535) {
    if (err) *err = "bad port '" + port + "' in '" + s + "'";
    return false;
  }
  a.port = static_cast<std::uint16_t>(p);
  *out = a;
  return true;
}

std::string to_string(const Address& a) {
  if (a.unix_domain) return "unix:" + a.path;
  return a.host + ":" + std::to_string(a.port);
}

#ifdef CDS_DIST_NET_POSIX

namespace {

int tcp_socket(const Address& a, bool listen_side, std::string* err) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  if (listen_side) hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  const std::string port = std::to_string(a.port);
  int rc = getaddrinfo(a.host.empty() ? nullptr : a.host.c_str(), port.c_str(),
                       &hints, &res);
  if (rc != 0) {
    if (err) *err = "cannot resolve '" + to_string(a) + "': " + gai_strerror(rc);
    return -1;
  }
  int fd = -1;
  std::string last;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = std::strerror(errno);
      continue;
    }
    if (listen_side) {
      int one = 1;
      setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
      if (bind(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    } else {
      int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      if (connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    }
    last = std::strerror(errno);
    close(fd);
    fd = -1;
  }
  freeaddrinfo(res);
  if (fd < 0 && err) {
    *err = std::string(listen_side ? "bind" : "connect") + " to '" +
           to_string(a) + "' failed: " + (last.empty() ? "no address" : last);
  }
  return fd;
}

int unix_socket(const Address& a, bool listen_side, std::string* err) {
  int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (err) *err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  sockaddr_un sa{};
  sa.sun_family = AF_UNIX;
  std::snprintf(sa.sun_path, sizeof sa.sun_path, "%s", a.path.c_str());
  if (listen_side) {
    unlink(a.path.c_str());  // stale socket from a previous run
    if (bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
      if (err) {
        *err = "bind to '" + a.path + "' failed: " + std::strerror(errno);
      }
      close(fd);
      return -1;
    }
  } else if (connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
    if (err) {
      *err = "connect to '" + a.path + "' failed: " + std::strerror(errno);
    }
    close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

int listen_on(const Address& a, std::string* err) {
  int fd = a.unix_domain ? unix_socket(a, true, err) : tcp_socket(a, true, err);
  if (fd < 0) return -1;
  if (listen(fd, 64) != 0) {
    if (err) *err = std::string("listen: ") + std::strerror(errno);
    close(fd);
    return -1;
  }
  return fd;
}

int connect_to(const Address& a, std::string* err) {
  return a.unix_domain ? unix_socket(a, false, err)
                       : tcp_socket(a, false, err);
}

int accept_conn(int listen_fd) {
  for (;;) {
    int fd = accept(listen_fd, nullptr, nullptr);
    if (fd < 0 && errno == EINTR) continue;
    return fd;
  }
}

int wait_readable(int fd, double timeout_seconds) {
  pollfd p{};
  p.fd = fd;
  p.events = POLLIN;
  int ms = timeout_seconds <= 0 ? 0 : static_cast<int>(timeout_seconds * 1000);
  for (;;) {
    int rc = poll(&p, 1, ms);
    if (rc < 0 && errno == EINTR) continue;
    if (rc < 0) return -1;
    if (rc == 0) return 0;
    return 1;
  }
}

#else  // !CDS_DIST_NET_POSIX

int listen_on(const Address&, std::string* err) {
  if (err) *err = "sockets unavailable on this platform";
  return -1;
}
int connect_to(const Address&, std::string* err) {
  if (err) *err = "sockets unavailable on this platform";
  return -1;
}
int accept_conn(int) { return -1; }
int wait_readable(int, double) { return -1; }

#endif

}  // namespace cds::dist
