// Seeded random litmus-program generation.
//
// Two profiles matter to the oracles (src/fuzz/oracle.h):
//   - sc_only: every memory order is seq_cst, so the brute-force
//     interleaving enumerator is an exact independent oracle;
//   - mixed: randomized memory orders, checked by the metamorphic
//     monotonicity and DFS-vs-sampling oracles.
// Generation is a pure function of (params, seed): the same pair always
// yields the same program, on every platform and output mode.
#ifndef CDS_FUZZ_GENERATOR_H
#define CDS_FUZZ_GENERATOR_H

#include <cstdint>

#include "fuzz/program.h"

namespace cds::fuzz {

struct GenParams {
  int min_threads = 2;
  int max_threads = 3;
  int min_locations = 2;
  int max_locations = 3;
  int min_ops_per_thread = 1;
  int max_ops_per_thread = 3;
  // Hard cap on total operations; keeps exhaustive exploration (and the
  // interleaving enumerator) tractable.
  int max_total_ops = 8;
  bool sc_only = false;
  bool allow_rmw = true;
  bool allow_cas = true;
  bool allow_fence = true;
  // Stored/CASed values are drawn from [1, max_value]; small so CASes
  // actually succeed sometimes.
  std::uint64_t max_value = 2;
};

[[nodiscard]] Program generate(const GenParams& params, std::uint64_t seed);

// The i-th trial's seed under base seed `root` — one number reproduces a
// whole fuzzing campaign, independent of output mode or platform.
[[nodiscard]] std::uint64_t trial_seed(std::uint64_t root, std::uint64_t trial);

}  // namespace cds::fuzz

#endif  // CDS_FUZZ_GENERATOR_H
