#include "fuzz/minimize.h"

namespace cds::fuzz {

namespace {

// Drops threads left empty by op removal and unused trailing locations,
// remapping location indices densely so the program stays valid.
Program canonicalize(Program p) {
  std::erase_if(p.ops, [](const std::vector<Op>& t) { return t.empty(); });
  bool used[Program::kMaxLocations] = {false, false, false, false};
  for (const auto& t : p.ops) {
    for (const Op& op : t) {
      if (op.code != OpCode::kFence) used[op.loc] = true;
    }
  }
  std::uint8_t remap[Program::kMaxLocations] = {0, 0, 0, 0};
  int next = 0;
  for (int l = 0; l < p.locations && l < Program::kMaxLocations; ++l) {
    if (used[l]) remap[l] = static_cast<std::uint8_t>(next++);
  }
  for (auto& t : p.ops) {
    for (Op& op : t) {
      if (op.code != OpCode::kFence) op.loc = remap[op.loc];
    }
  }
  p.locations = next > 0 ? next : 1;
  return p;
}

// The move set: every candidate one-step reduction of `p`, most aggressive
// first (whole threads, then single ops, then location merges, then
// opcode/value simplifications).
std::vector<Program> reductions(const Program& p) {
  std::vector<Program> out;
  for (int t = 0; t < p.threads(); ++t) {
    if (p.threads() > 1) {
      Program q = p;
      q.ops.erase(q.ops.begin() + t);
      out.push_back(canonicalize(std::move(q)));
    }
  }
  for (int t = 0; t < p.threads(); ++t) {
    const auto& list = p.ops[static_cast<std::size_t>(t)];
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (p.total_ops() <= 1) break;
      Program q = p;
      auto& ql = q.ops[static_cast<std::size_t>(t)];
      ql.erase(ql.begin() + static_cast<std::ptrdiff_t>(i));
      out.push_back(canonicalize(std::move(q)));
    }
  }
  for (int l = 1; l < p.locations; ++l) {
    // Merge location l into location 0.
    Program q = p;
    for (auto& t : q.ops) {
      for (Op& op : t) {
        if (op.code != OpCode::kFence && op.loc == l) op.loc = 0;
      }
    }
    out.push_back(canonicalize(std::move(q)));
  }
  for (int t = 0; t < p.threads(); ++t) {
    const auto& list = p.ops[static_cast<std::size_t>(t)];
    for (std::size_t i = 0; i < list.size(); ++i) {
      const Op& op = list[i];
      if (op.code == OpCode::kRmwAdd || op.code == OpCode::kCas) {
        // An RMW is a load plus a store; try the load alone.
        Program q = p;
        Op& qo = q.ops[static_cast<std::size_t>(t)][i];
        qo.code = OpCode::kLoad;
        qo.order = mc::for_load(qo.order);
        out.push_back(q);
      }
      if (op.observes() && op.value != 1) {
        Program q = p;
        q.ops[static_cast<std::size_t>(t)][i].value = 1;
        out.push_back(q);
      }
    }
  }
  return out;
}

}  // namespace

Program minimize(const Program& p, const StillFails& still_fails,
                 MinimizeStats* stats) {
  Program cur = p;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (Program& cand : reductions(cur)) {
      if (cand.total_ops() == 0) continue;
      if (stats != nullptr) ++stats->probes;
      if (still_fails(cand)) {
        cur = std::move(cand);
        if (stats != nullptr) ++stats->reductions;
        progressed = true;
        break;  // restart the move set from the smaller program
      }
    }
  }
  return cur;
}

}  // namespace cds::fuzz
