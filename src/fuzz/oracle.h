// Differential oracles for the exploration engine's own correctness.
//
// A behavior of a litmus program is the tuple of every value its loads /
// RMWs / CASes observed plus the final value of every location; the
// behavior *set* of a program is what the engine claims the C/C++11 model
// admits. Three independent cross-checks validate that claim:
//
//  1. kScInterleaving — for seq_cst-only programs, the model collapses to
//     interleaving semantics, so a brute-force enumerator over thread
//     interleavings is an exact oracle: the sets must agree exactly.
//  2. kMonotonicity — metamorphic: strengthening any single operation's
//     memory order (inject::strengthen, the reverse of the injection
//     framework's weakening walk) must never ADD behaviors.
//  3. kSampling — every behavior the seeded random-walk phase observes
//     must lie inside the exhaustive DFS set.
//
// A disagreement on any oracle means the engine under- or over-
// approximates the memory model; tools/cdsspec-fuzz minimizes the
// offending program and emits a self-contained repro.
#ifndef CDS_FUZZ_ORACLE_H
#define CDS_FUZZ_ORACLE_H

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "fuzz/program.h"
#include "mc/config.h"
#include "mc/trail.h"

namespace cds::fuzz {

using BehaviorSet = std::set<std::string>;

// Serializes one behavior: "r:<obs,...>|f:<finals,...>". Fixed slot order
// makes string equality behavior equality; shared by the DFS collector,
// the stress backend, and the herd7 exporter.
[[nodiscard]] std::string behavior_string(
    const std::vector<std::uint64_t>& obs,
    const std::vector<std::uint64_t>& finals);

struct OracleConfig {
  // Safety caps on the engine runs; a program that exceeds them is
  // reported as skipped (inconclusive), never as agreement.
  std::uint64_t max_executions = 2000000;
  std::uint64_t max_steps = 20000;
  // Effectively unbounded for <=12-op programs, so the fairness bound
  // cannot perturb the metamorphic comparison.
  std::uint32_t stale_read_bound = 64;
  // Random-walk executions for the sampling oracle.
  std::uint64_t sample_executions = 256;
  std::uint64_t seed = 1;
  // Worker processes for the exhaustive-DFS collection phase (mc/shard.h).
  // 1 = in-process serial exploration; sharding changes neither the
  // behavior set nor the exhausted flag, only wall-clock time.
  int jobs = 1;
  // Node cap for the brute-force interleaving enumerator.
  std::uint64_t max_interleaving_nodes = 4000000;
  // Exploration equivalence (schedule vs reads-from classes); both modes
  // must produce the same behavior set — the rf-vs-schedule differential
  // tests run every oracle under each.
  mc::ExploreMode explore = mc::ExploreMode::kSchedule;
  // Self-validation sabotage, threaded through to the engine.
  mc::UnsoundHook unsound_hook = mc::UnsoundHook::kNone;
};

struct McBehaviors {
  BehaviorSet behaviors;
  bool exhausted = false;  // DFS enumerated the whole bounded tree
  std::uint64_t executions = 0;
  // rf-mode class counters (0 under ExploreMode::kSchedule). Sharded runs
  // sum them across shards, bit-identical to a serial run.
  std::uint64_t rf_classes = 0;
  std::uint64_t rf_infeasible = 0;
};

// Explores `p` to exhaustion (or, with sampling_only, draws the seeded
// random walk) and collects its behavior set.
[[nodiscard]] McBehaviors mc_behaviors(const Program& p,
                                       const OracleConfig& cfg,
                                       bool sampling_only = false);

// Brute-force interleaving enumeration; only meaningful for sc_only()
// programs. Returns false (capped) if the node budget was exceeded.
bool interleaving_behaviors(const Program& p, const OracleConfig& cfg,
                            BehaviorSet* out);

// Runs `p` for `iters` iterations on the stress backend (real std::threads,
// seeded preemption; harness/stress_backend.h) and collects the observed
// behavior set. A stress sample is an under-approximation of the model's
// set on any correct implementation, so the containment
// `stress_behaviors(...) ⊆ mc_behaviors(...).behaviors` is the
// cross-backend differential oracle: a stress behavior the DFS never
// enumerates means one of the two backends is wrong.
[[nodiscard]] BehaviorSet stress_behaviors(const Program& p,
                                           std::uint64_t iters,
                                           int threads_mult,
                                           std::uint64_t seed);

enum class OracleKind : std::uint8_t {
  kScInterleaving,
  kMonotonicity,
  kSampling,
};

[[nodiscard]] const char* to_string(OracleKind k);

struct Disagreement {
  OracleKind oracle;
  std::string detail;  // human-readable: which behaviors, which site
  // For kMonotonicity: the strengthened variant whose set grew (equal to
  // the base program otherwise).
  Program witness;
};

struct CheckResult {
  std::vector<Disagreement> disagreements;
  bool skipped = false;       // caps exceeded; nothing was validated
  std::string skip_reason;
  int oracles_run = 0;

  [[nodiscard]] bool agreed() const {
    return disagreements.empty() && !skipped;
  }
};

// Every strengthenable site of `p` as (thread, op index, is-cas-failure-
// order) triples, and the variant with that one site strengthened.
struct StrengthenSite {
  int thread = 0;
  int index = 0;
  bool failure_order = false;
};
[[nodiscard]] std::vector<StrengthenSite> strengthen_sites(const Program& p);
[[nodiscard]] Program strengthen_at(const Program& p, const StrengthenSite& s);

// Runs every applicable oracle on `p`: kScInterleaving for sc_only()
// programs, kMonotonicity + kSampling for all programs.
[[nodiscard]] CheckResult check_program(const Program& p,
                                        const OracleConfig& cfg);

// ---------------------------------------------------------------------------
// One-execution witnesses (.trail repros, see mc/trace.h)
// ---------------------------------------------------------------------------

// A single recorded execution that exhibits an offending behavior of a
// disagreement: the choice trail pins it down exactly, so a repro replays
// in one execution instead of a full oracle re-run.
struct WitnessTrail {
  std::vector<mc::Choice> choices;
  std::string behavior;       // serialized behavior of the witnessed execution
  bool sampling = false;      // recorded during the random-walk phase
  // For kMonotonicity the trail drives strengthen_at(p, site), not p itself.
  bool strengthened = false;
  StrengthenSite site;
};

// After check_program reported a disagreement of `kind` on `p` (typically
// the minimized program), re-runs the relevant exploration and captures the
// trail of the first execution whose behavior lies outside the oracle's
// reference set. Returns false when no single execution witnesses the
// disagreement (e.g. the engine *misses* behaviors rather than admitting
// extras) — those repros replay via the full oracle re-run only.
bool witness_trail(const Program& p, const OracleConfig& cfg, OracleKind kind,
                   WitnessTrail* out);

// Strictly replays one recorded choice trail of `p` and reports the
// behavior that execution exhibits. Returns false on replay divergence or
// a non-completing execution, with the reason in *err.
bool replay_behavior(const Program& p, const OracleConfig& cfg,
                     const std::vector<mc::Choice>& choices,
                     std::string* behavior, std::string* err);

}  // namespace cds::fuzz

#endif  // CDS_FUZZ_ORACLE_H
