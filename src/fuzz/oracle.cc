#include "fuzz/oracle.h"

#include <cstdlib>
#include <sstream>

#include "harness/stress_backend.h"
#include "mc/shard.h"

namespace cds::fuzz {

std::string behavior_string(const std::vector<std::uint64_t>& obs,
                            const std::vector<std::uint64_t>& finals) {
  std::ostringstream os;
  os << "r:";
  for (std::size_t i = 0; i < obs.size(); ++i) {
    if (i != 0) os << ',';
    os << obs[i];
  }
  os << "|f:";
  for (std::size_t i = 0; i < finals.size(); ++i) {
    if (i != 0) os << ',';
    os << finals[i];
  }
  return os.str();
}

namespace {

class BehaviorCollector : public mc::ExecutionListener {
 public:
  BehaviorCollector(const std::vector<std::uint64_t>* obs, int locations,
                    BehaviorSet* out)
      : obs_(obs), locations_(locations), out_(out) {}

  bool on_execution_complete(mc::Engine& e) override {
    std::vector<std::uint64_t> finals;
    finals.reserve(static_cast<std::size_t>(locations_));
    for (int l = 0; l < locations_; ++l) {
      finals.push_back(e.location_final_value(static_cast<std::uint32_t>(l)));
    }
    out_->insert(behavior_string(*obs_, finals));
    return true;
  }

 private:
  const std::vector<std::uint64_t>* obs_;
  int locations_;
  BehaviorSet* out_;
};

// Brute-force DFS over thread interleavings with direct interleaving
// (SC) semantics: every read observes the current memory value.
struct Interleaver {
  const Program& p;
  std::uint64_t node_budget;
  BehaviorSet* out;
  std::vector<std::size_t> pc;
  std::vector<std::uint64_t> mem;
  std::vector<std::uint64_t> obs;
  std::vector<int> slot_base;
  bool capped = false;

  explicit Interleaver(const Program& prog, std::uint64_t budget,
                       BehaviorSet* sink)
      : p(prog), node_budget(budget), out(sink) {
    pc.assign(static_cast<std::size_t>(p.threads()), 0);
    mem.assign(static_cast<std::size_t>(p.locations), 0);
    slot_base.assign(static_cast<std::size_t>(p.threads()) + 1, 0);
    for (int t = 0; t < p.threads(); ++t) {
      slot_base[static_cast<std::size_t>(t) + 1] =
          slot_base[static_cast<std::size_t>(t)] +
          static_cast<int>(p.ops[static_cast<std::size_t>(t)].size());
    }
    obs.assign(static_cast<std::size_t>(p.total_ops()), 0);
  }

  void run() { dfs(); }

  void dfs() {
    if (capped || node_budget-- == 0) {
      capped = true;
      return;
    }
    bool any = false;
    for (int t = 0; t < p.threads(); ++t) {
      auto ts = static_cast<std::size_t>(t);
      if (pc[ts] >= p.ops[ts].size()) continue;
      any = true;
      const Op& op = p.ops[ts][pc[ts]];
      auto slot = static_cast<std::size_t>(slot_base[ts]) + pc[ts];
      auto loc = static_cast<std::size_t>(op.loc);
      // Apply, recurse, undo.
      std::uint64_t saved_mem = op.code == OpCode::kFence ? 0 : mem[loc];
      std::uint64_t saved_obs = obs[slot];
      switch (op.code) {
        case OpCode::kLoad: obs[slot] = mem[loc]; break;
        case OpCode::kStore: mem[loc] = op.value; break;
        case OpCode::kRmwAdd:
          obs[slot] = mem[loc];
          mem[loc] = mem[loc] + op.value;
          break;
        case OpCode::kCas:
          obs[slot] = mem[loc];
          if (mem[loc] == op.expected) mem[loc] = op.value;
          break;
        case OpCode::kFence: break;
      }
      ++pc[ts];
      dfs();
      --pc[ts];
      obs[slot] = saved_obs;
      if (op.code != OpCode::kFence) mem[loc] = saved_mem;
    }
    if (!any) out->insert(behavior_string(obs, mem));
  }
};

// Stops the exploration at the first execution whose behavior is outside
// `exclude`, capturing its choice trail (the witness of a set-level
// disagreement as one replayable execution).
class WitnessCapture : public mc::ExecutionListener {
 public:
  WitnessCapture(const std::vector<std::uint64_t>* obs, int locations,
                 const BehaviorSet* exclude)
      : obs_(obs), locations_(locations), exclude_(exclude) {}

  bool on_execution_complete(mc::Engine& e) override {
    std::vector<std::uint64_t> finals;
    finals.reserve(static_cast<std::size_t>(locations_));
    for (int l = 0; l < locations_; ++l) {
      finals.push_back(e.location_final_value(static_cast<std::uint32_t>(l)));
    }
    std::string b = behavior_string(*obs_, finals);
    if (exclude_->count(b) != 0) return true;
    found_ = true;
    behavior_ = std::move(b);
    choices_ = e.current_trail();
    return false;
  }

  [[nodiscard]] bool found() const { return found_; }
  [[nodiscard]] const std::string& behavior() const { return behavior_; }
  [[nodiscard]] const std::vector<mc::Choice>& choices() const {
    return choices_;
  }

 private:
  const std::vector<std::uint64_t>* obs_;
  int locations_;
  const BehaviorSet* exclude_;
  bool found_ = false;
  std::string behavior_;
  std::vector<mc::Choice> choices_;
};

mc::Config engine_config(const OracleConfig& cfg, bool sampling_only) {
  mc::Config ec;
  ec.max_executions = sampling_only ? 0 : cfg.max_executions;
  ec.max_steps = cfg.max_steps;
  ec.stale_read_bound = cfg.stale_read_bound;
  ec.collect_trace = false;
  ec.seed = cfg.seed;
  ec.sampling_only = sampling_only;
  ec.sample_executions = sampling_only ? cfg.sample_executions : 0;
  ec.explore = cfg.explore;
  ec.unsound_hook = cfg.unsound_hook;
  return ec;
}

// Explores `p` until an execution exhibits a behavior outside `exclude`.
bool capture_witness(const Program& p, const OracleConfig& cfg,
                     const BehaviorSet& exclude, bool sampling_only,
                     WitnessTrail* out) {
  std::vector<std::uint64_t> obs;
  mc::Engine engine(engine_config(cfg, sampling_only));
  WitnessCapture capture(&obs, p.locations, &exclude);
  engine.set_listener(&capture);
  (void)engine.explore(p.test_fn(&obs));
  if (!capture.found()) return false;
  out->choices = capture.choices();
  out->behavior = capture.behavior();
  out->sampling = sampling_only;
  return true;
}

std::string diff_sample(const BehaviorSet& extra, const BehaviorSet& base,
                        std::size_t limit = 3) {
  std::ostringstream os;
  std::size_t shown = 0, total = 0;
  for (const std::string& b : extra) {
    if (base.count(b) != 0) continue;
    ++total;
    if (shown < limit) {
      os << (shown ? "  " : "") << b;
      ++shown;
    }
  }
  os << " (" << total << " extra)";
  return os.str();
}

bool is_subset(const BehaviorSet& a, const BehaviorSet& b) {
  for (const std::string& x : a) {
    if (b.count(x) == 0) return false;
  }
  return true;
}

}  // namespace

const char* to_string(OracleKind k) {
  switch (k) {
    case OracleKind::kScInterleaving: return "sc-interleaving";
    case OracleKind::kMonotonicity: return "monotonicity";
    case OracleKind::kSampling: return "dfs-vs-sampling";
  }
  return "?";
}

McBehaviors mc_behaviors(const Program& p, const OracleConfig& cfg,
                         bool sampling_only) {
  McBehaviors out;
  if (!sampling_only && cfg.jobs > 1) {
    // Sharded DFS (mc/shard.h): disjoint subtree prefixes fan out to forked
    // workers; behavior sets union, executions sum, exhausted ANDs. A
    // crashed worker means its subtree went unexplored: not exhausted.
    mc::Config ec = engine_config(cfg, false);
    auto make_test = [&p](std::vector<std::uint64_t>* o) {
      return p.test_fn(o);
    };
    std::vector<std::uint64_t> probe_obs;
    mc::ShardPlan plan = mc::enumerate_shard_prefixes(
        ec, make_test(&probe_obs), 2,
        static_cast<std::size_t>(cfg.jobs) * 4);
    auto work = [&](std::size_t i) -> std::string {
      std::vector<std::uint64_t> obs;
      BehaviorSet shard_set;
      mc::Engine engine(ec);
      engine.set_subtree(plan.prefixes[i]);
      BehaviorCollector collector(&obs, p.locations, &shard_set);
      engine.set_listener(&collector);
      auto stats = engine.explore(make_test(&obs));
      std::ostringstream os;
      os << "exhausted " << (stats.exhausted ? 1 : 0) << "\n"
         << "executions " << stats.executions << "\n"
         << "rf_classes " << stats.rf_classes << "\n"
         << "rf_infeasible " << stats.rf_infeasible << "\n";
      for (const std::string& b : shard_set) os << b << "\n";
      return os.str();
    };
    mc::ForkMapOptions fopts;
    fopts.jobs = cfg.jobs;
    std::vector<mc::UnitResult> results =
        mc::fork_map(plan.prefixes.size(), work, fopts);
    out.exhausted = true;
    for (const mc::UnitResult& r : results) {
      if (!r.ran) {
        out.exhausted = false;
        continue;
      }
      std::istringstream is(r.text);
      std::string line;
      bool header_ok = false;
      if (std::getline(is, line) && line.rfind("exhausted ", 0) == 0) {
        if (line.substr(10) != "1") out.exhausted = false;
        if (std::getline(is, line) && line.rfind("executions ", 0) == 0) {
          out.executions += std::strtoull(line.c_str() + 11, nullptr, 10);
          if (std::getline(is, line) && line.rfind("rf_classes ", 0) == 0) {
            out.rf_classes += std::strtoull(line.c_str() + 11, nullptr, 10);
            if (std::getline(is, line) &&
                line.rfind("rf_infeasible ", 0) == 0) {
              out.rf_infeasible +=
                  std::strtoull(line.c_str() + 14, nullptr, 10);
              header_ok = true;
            }
          }
        }
      }
      if (!header_ok) {
        out.exhausted = false;
        continue;
      }
      while (std::getline(is, line)) {
        if (!line.empty()) out.behaviors.insert(line);
      }
    }
    return out;
  }
  std::vector<std::uint64_t> obs;
  mc::Engine engine(engine_config(cfg, sampling_only));
  BehaviorCollector collector(&obs, p.locations, &out.behaviors);
  engine.set_listener(&collector);
  auto stats = engine.explore(p.test_fn(&obs));
  out.exhausted = stats.exhausted;
  out.executions = stats.executions;
  out.rf_classes = stats.rf_classes;
  out.rf_infeasible = stats.rf_infeasible;
  return out;
}

bool interleaving_behaviors(const Program& p, const OracleConfig& cfg,
                            BehaviorSet* out) {
  Interleaver iv(p, cfg.max_interleaving_nodes, out);
  iv.run();
  return !iv.capped;
}

BehaviorSet stress_behaviors(const Program& p, std::uint64_t iters,
                             int threads_mult, std::uint64_t seed) {
  BehaviorSet out;
  if (threads_mult < 1) threads_mult = 1;
  // One observation buffer per runner: Program::test_fn requires `obs` to
  // outlive the run, and runners execute iterations concurrently.
  std::vector<std::vector<std::uint64_t>> obs(
      static_cast<std::size_t>(threads_mult));

  harness::StressOptions opts;
  opts.iters = iters;
  opts.threads_mult = threads_mult;
  opts.seed = seed;
  // Behavior collection only; litmus programs carry no specs.
  opts.check_spec = false;

  auto make_test = [&](int r) {
    return p.test_fn(&obs[static_cast<std::size_t>(r)]);
  };
  // The hook runs serialized across runners, between iterations.
  auto hook = [&](int r, harness::StressBackend& b) {
    std::vector<std::uint64_t> finals;
    finals.reserve(static_cast<std::size_t>(p.locations));
    for (int l = 0; l < p.locations; ++l) {
      finals.push_back(b.location_final_value(static_cast<std::uint32_t>(l)));
    }
    out.insert(behavior_string(obs[static_cast<std::size_t>(r)], finals));
  };
  (void)harness::run_stress_per_runner(make_test, opts, hook);
  return out;
}

std::vector<StrengthenSite> strengthen_sites(const Program& p) {
  std::vector<StrengthenSite> sites;
  for (int t = 0; t < p.threads(); ++t) {
    const auto& list = p.ops[static_cast<std::size_t>(t)];
    for (int i = 0; i < static_cast<int>(list.size()); ++i) {
      const Op& op = list[static_cast<std::size_t>(i)];
      if (inject::strengthen(op.inject_kind(), op.order) != op.order) {
        sites.push_back(StrengthenSite{t, i, false});
      }
      if (op.code == OpCode::kCas &&
          inject::strengthen(inject::OpKind::kLoad, op.failure) != op.failure) {
        sites.push_back(StrengthenSite{t, i, true});
      }
    }
  }
  return sites;
}

Program strengthen_at(const Program& p, const StrengthenSite& s) {
  Program q = p;
  Op& op = q.ops[static_cast<std::size_t>(s.thread)]
               [static_cast<std::size_t>(s.index)];
  if (s.failure_order) {
    op.failure = inject::strengthen(inject::OpKind::kLoad, op.failure);
  } else {
    op.order = inject::strengthen(op.inject_kind(), op.order);
  }
  return q;
}

CheckResult check_program(const Program& p, const OracleConfig& cfg) {
  CheckResult res;
  auto skip = [&res](std::string why) {
    res.skipped = true;
    res.skip_reason = std::move(why);
    return res;
  };

  McBehaviors base = mc_behaviors(p, cfg);
  if (!base.exhausted) return skip("DFS hit the execution or step cap");

  // Oracle 1: exact agreement with brute-force interleavings (seq_cst
  // fragment only — elsewhere the memory model admits strictly more).
  if (p.sc_only()) {
    BehaviorSet ref;
    if (!interleaving_behaviors(p, cfg, &ref)) {
      return skip("interleaving enumerator hit its node cap");
    }
    ++res.oracles_run;
    if (base.behaviors != ref) {
      std::ostringstream os;
      if (!is_subset(base.behaviors, ref)) {
        os << "engine admits behaviors interleavings forbid: "
           << diff_sample(base.behaviors, ref);
      }
      if (!is_subset(ref, base.behaviors)) {
        os << (os.str().empty() ? "" : "; ")
           << "engine misses interleaving behaviors: "
           << diff_sample(ref, base.behaviors);
      }
      res.disagreements.push_back(
          Disagreement{OracleKind::kScInterleaving, os.str(), p});
    }
  }

  // Oracle 2: strengthening any one site must never add behaviors.
  for (const StrengthenSite& s : strengthen_sites(p)) {
    Program q = strengthen_at(p, s);
    McBehaviors strong = mc_behaviors(q, cfg);
    if (!strong.exhausted) return skip("strengthened DFS hit a cap");
    ++res.oracles_run;
    if (!is_subset(strong.behaviors, base.behaviors)) {
      std::ostringstream os;
      os << "strengthening t" << s.thread << " op " << s.index
         << (s.failure_order ? " (cas failure order)" : "")
         << " ADDED behaviors: "
         << diff_sample(strong.behaviors, base.behaviors);
      res.disagreements.push_back(
          Disagreement{OracleKind::kMonotonicity, os.str(), q});
    }
  }

  // Oracle 3: every sampled behavior lies inside the exhaustive set.
  McBehaviors sampled = mc_behaviors(p, cfg, /*sampling_only=*/true);
  ++res.oracles_run;
  if (!is_subset(sampled.behaviors, base.behaviors)) {
    std::ostringstream os;
    os << "random-walk sampling reached behaviors DFS never enumerated: "
       << diff_sample(sampled.behaviors, base.behaviors);
    res.disagreements.push_back(
        Disagreement{OracleKind::kSampling, os.str(), p});
  }
  return res;
}

bool witness_trail(const Program& p, const OracleConfig& cfg, OracleKind kind,
                   WitnessTrail* out) {
  *out = WitnessTrail{};
  McBehaviors base = mc_behaviors(p, cfg);
  if (!base.exhausted) return false;
  switch (kind) {
    case OracleKind::kScInterleaving: {
      // Witnessable only when the engine ADMITS a behavior interleavings
      // forbid; a missing behavior has no execution to record.
      BehaviorSet ref;
      if (!p.sc_only() || !interleaving_behaviors(p, cfg, &ref)) return false;
      return capture_witness(p, cfg, ref, /*sampling_only=*/false, out);
    }
    case OracleKind::kMonotonicity: {
      for (const StrengthenSite& s : strengthen_sites(p)) {
        Program q = strengthen_at(p, s);
        McBehaviors strong = mc_behaviors(q, cfg);
        if (!strong.exhausted || is_subset(strong.behaviors, base.behaviors)) {
          continue;
        }
        if (!capture_witness(q, cfg, base.behaviors, /*sampling_only=*/false,
                             out)) {
          continue;
        }
        out->strengthened = true;
        out->site = s;
        return true;
      }
      return false;
    }
    case OracleKind::kSampling:
      return capture_witness(p, cfg, base.behaviors, /*sampling_only=*/true,
                             out);
  }
  return false;
}

bool replay_behavior(const Program& p, const OracleConfig& cfg,
                     const std::vector<mc::Choice>& choices,
                     std::string* behavior, std::string* err) {
  std::vector<std::uint64_t> obs;
  mc::Engine engine(engine_config(cfg, /*sampling_only=*/false));
  BehaviorSet observed;
  BehaviorCollector collector(&obs, p.locations, &observed);
  engine.set_listener(&collector);
  if (!engine.replay(choices, p.test_fn(&obs), /*strict=*/true, err)) {
    return false;
  }
  if (observed.empty()) {
    if (err != nullptr) {
      *err = "replayed execution did not run to completion";
    }
    return false;
  }
  *behavior = *observed.begin();
  return true;
}

}  // namespace cds::fuzz
