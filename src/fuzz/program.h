// Litmus-program representation for the fuzzer: a small straight-line
// concurrent program over 2-4 atomic locations, 1-4 threads of atomic
// loads/stores/RMWs/CASes/fences with per-operation memory orders.
//
// Programs are pure data: they serialize to a self-contained textual repro
// format (checked into tests/corpus/ when a differential-oracle
// disagreement is minimized) and compile to an mc::TestFn that replays
// them under the exploration engine, recording one observation per
// value-returning operation into a caller-owned buffer.
#ifndef CDS_FUZZ_PROGRAM_H
#define CDS_FUZZ_PROGRAM_H

#include <cstdint>
#include <string>
#include <vector>

#include "inject/inject.h"
#include "mc/engine.h"
#include "mc/memory_order.h"

namespace cds::fuzz {

enum class OpCode : std::uint8_t { kLoad, kStore, kRmwAdd, kCas, kFence };

[[nodiscard]] const char* to_string(OpCode c);

struct Op {
  OpCode code = OpCode::kLoad;
  std::uint8_t loc = 0;        // location index; ignored for fences
  std::uint64_t value = 0;     // store value / RMW operand / CAS desired
  std::uint64_t expected = 0;  // CAS expected
  mc::MemoryOrder order = mc::MemoryOrder::seq_cst;
  // CAS failure order (a load order); ignored for every other opcode.
  mc::MemoryOrder failure = mc::MemoryOrder::relaxed;

  // The injection framework's view of this operation, so the
  // strengthening lattice (inject::strengthen) applies unchanged.
  [[nodiscard]] inject::OpKind inject_kind() const;
  // True iff the op observes a value (owns an observation slot's content).
  [[nodiscard]] bool observes() const {
    return code == OpCode::kLoad || code == OpCode::kRmwAdd ||
           code == OpCode::kCas;
  }
};

struct Program {
  int locations = 2;                 // 1..kMaxLocations, named x,y,z,w
  std::vector<std::vector<Op>> ops;  // per-thread straight-line op lists

  static constexpr int kMaxLocations = 4;
  static constexpr int kMaxThreads = 4;
  [[nodiscard]] static const char* location_name(int loc);

  [[nodiscard]] int threads() const { return static_cast<int>(ops.size()); }
  [[nodiscard]] int total_ops() const;
  [[nodiscard]] bool sc_only() const;  // every order is seq_cst

  // Structural legality: location indices in range, per-kind memory-order
  // legality (no release-form loads, no acquire-form stores, CAS failure
  // order is a load order, no relaxed fences).
  [[nodiscard]] bool validate(std::string* why = nullptr) const;

  // The self-contained repro format (parse() accepts to_string() output;
  // '#' starts a comment):
  //   litmus v1
  //   locations 2
  //   t0 store x 1 release
  //   t1 load x acquire
  //   t1 cas y 0 2 seq_cst relaxed    # expected desired success failure
  //   t1 rmw x 1 acq_rel              # fetch_add operand
  //   t0 fence seq_cst
  [[nodiscard]] std::string to_string() const;
  static bool parse(const std::string& text, Program* out, std::string* err);

  // Test body replaying this program under the engine. The root thread
  // creates the locations (all value-initialized to 0), spawns one modeled
  // thread per program thread, and joins them. Each value-observing op
  // writes the value it read into (*obs)[slot], where slots number the
  // ops thread-major in program order; the buffer is re-initialized at the
  // start of every execution. `obs` must outlive the exploration.
  [[nodiscard]] mc::TestFn test_fn(std::vector<std::uint64_t>* obs) const;
};

}  // namespace cds::fuzz

#endif  // CDS_FUZZ_PROGRAM_H
