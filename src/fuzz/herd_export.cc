#include "fuzz/herd_export.h"

#include <cstdint>
#include <functional>
#include <sstream>
#include <vector>

#include "mc/trace.h"

namespace cds::fuzz {

namespace {

const char* herd_order(mc::MemoryOrder o) {
  switch (o) {
    case mc::MemoryOrder::relaxed: return "memory_order_relaxed";
    case mc::MemoryOrder::acquire: return "memory_order_acquire";
    case mc::MemoryOrder::release: return "memory_order_release";
    case mc::MemoryOrder::acq_rel: return "memory_order_acq_rel";
    case mc::MemoryOrder::seq_cst: return "memory_order_seq_cst";
  }
  return "memory_order_seq_cst";
}

// Thread-major observation-slot bases, the numbering behavior_string()
// and Program::test_fn share.
std::vector<int> slot_bases(const Program& p) {
  std::vector<int> base(static_cast<std::size_t>(p.threads()) + 1, 0);
  for (int t = 0; t < p.threads(); ++t) {
    base[static_cast<std::size_t>(t) + 1] =
        base[static_cast<std::size_t>(t)] +
        static_cast<int>(p.ops[static_cast<std::size_t>(t)].size());
  }
  return base;
}

// Splits a comma-separated list of decimal values; "" yields {}.
bool parse_values(const std::string& s, std::vector<std::uint64_t>* out) {
  out->clear();
  if (s.empty()) return true;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    std::size_t comma = s.find(',', pos);
    std::string tok = s.substr(pos, comma == std::string::npos
                                        ? std::string::npos
                                        : comma - pos);
    if (tok.empty()) return false;
    std::uint64_t v = 0;
    for (char c : tok) {
      if (c < '0' || c > '9') return false;
      v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    out->push_back(v);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return true;
}

// Decomposes "r:<obs,...>|f:<finals,...>" against p's shape.
bool parse_behavior(const Program& p, const std::string& behavior,
                    std::vector<std::uint64_t>* obs,
                    std::vector<std::uint64_t>* finals) {
  if (behavior.rfind("r:", 0) != 0) return false;
  std::size_t bar = behavior.find("|f:");
  if (bar == std::string::npos) return false;
  if (!parse_values(behavior.substr(2, bar - 2), obs)) return false;
  if (!parse_values(behavior.substr(bar + 3), finals)) return false;
  return static_cast<int>(obs->size()) == p.total_ops() &&
         static_cast<int>(finals->size()) == p.locations;
}

// Calls fn(thread, slot) for every value-observing op, thread-major.
void for_each_register(const Program& p,
                       const std::function<void(int t, int slot)>& fn) {
  std::vector<int> base = slot_bases(p);
  for (int t = 0; t < p.threads(); ++t) {
    const auto& list = p.ops[static_cast<std::size_t>(t)];
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (list[i].observes()) {
        fn(t, base[static_cast<std::size_t>(t)] + static_cast<int>(i));
      }
    }
  }
}

}  // namespace

std::string herd_litmus(const Program& p, const std::string& name,
                        const BehaviorSet* model) {
  std::vector<int> base = slot_bases(p);
  std::ostringstream os;
  os << "C " << name << "\n\n";

  os << "(* Exported by cdsspec from the fuzzer litmus format; register\n"
        "   r<slot> holds observation slot <slot> (numbered thread-major,\n"
        "   the behavior_string order). Source program:\n";
  {
    std::istringstream src(p.to_string());
    std::string line;
    while (std::getline(src, line)) os << "     " << line << "\n";
  }
  os << "*)\n\n";

  // All locations zero-initialized, matching new_location(..., init 0).
  os << "{}\n\n";

  for (int t = 0; t < p.threads(); ++t) {
    os << 'P' << t << " (";
    for (int l = 0; l < p.locations; ++l) {
      if (l != 0) os << ", ";
      os << "atomic_int* " << Program::location_name(l);
    }
    os << ") {\n";
    const auto& list = p.ops[static_cast<std::size_t>(t)];
    for (std::size_t i = 0; i < list.size(); ++i) {
      const Op& op = list[i];
      const int slot = base[static_cast<std::size_t>(t)] + static_cast<int>(i);
      const char* loc = Program::location_name(op.loc);
      os << "  ";
      switch (op.code) {
        case OpCode::kLoad:
          os << "int r" << slot << " = atomic_load_explicit(" << loc << ", "
             << herd_order(op.order) << ");";
          break;
        case OpCode::kStore:
          os << "atomic_store_explicit(" << loc << ", " << op.value << ", "
             << herd_order(op.order) << ");";
          break;
        case OpCode::kRmwAdd:
          os << "int r" << slot << " = atomic_fetch_add_explicit(" << loc
             << ", " << op.value << ", " << herd_order(op.order) << ");";
          break;
        case OpCode::kCas:
          // After the call the register holds the value the CAS read:
          // on success it keeps `expected` (== the read), on failure the
          // observed value is written back — exactly test_fn's slot.
          os << "int r" << slot << " = " << op.expected << ";\n  "
             << "atomic_compare_exchange_strong_explicit(" << loc << ", &r"
             << slot << ", " << op.value << ", " << herd_order(op.order)
             << ", " << herd_order(op.failure) << ");";
          break;
        case OpCode::kFence:
          os << "atomic_thread_fence(" << herd_order(op.order) << ");";
          break;
      }
      os << "\n";
    }
    os << "}\n\n";
  }

  os << "locations [";
  for (int l = 0; l < p.locations; ++l) {
    os << Program::location_name(l) << "; ";
  }
  for_each_register(p, [&](int t, int slot) {
    os << t << ":r" << slot << "; ";
  });
  os << "]\n";

  // herd7 requires a final condition, but adjudication reads the full
  // "States" enumeration, so it is informational only. Highlight the
  // model's first behavior when we have one.
  std::vector<std::uint64_t> obs;
  std::vector<std::uint64_t> finals;
  if (model != nullptr && !model->empty() &&
      parse_behavior(p, *model->begin(), &obs, &finals)) {
    os << "exists (";
    bool first = true;
    for (int l = 0; l < p.locations; ++l) {
      if (!first) os << " /\\ ";
      first = false;
      os << Program::location_name(l) << '='
         << finals[static_cast<std::size_t>(l)];
    }
    for_each_register(p, [&](int t, int slot) {
      os << " /\\ " << t << ":r" << slot << '='
         << obs[static_cast<std::size_t>(slot)];
    });
    os << ")\n";
  } else {
    os << "exists (" << Program::location_name(0) << "=0)\n";
  }
  return os.str();
}

std::string herd_state_line(const Program& p, const std::string& behavior) {
  std::vector<std::uint64_t> obs;
  std::vector<std::uint64_t> finals;
  if (!parse_behavior(p, behavior, &obs, &finals)) return "";
  std::ostringstream os;
  bool first = true;
  for (int l = 0; l < p.locations; ++l) {
    if (!first) os << ' ';
    first = false;
    os << Program::location_name(l) << '='
       << finals[static_cast<std::size_t>(l)] << ';';
  }
  for_each_register(p, [&](int t, int slot) {
    if (!first) os << ' ';
    first = false;
    os << t << ":r" << slot << '=' << obs[static_cast<std::size_t>(slot)]
       << ';';
  });
  return os.str();
}

bool write_herd_files(const Program& p, const std::string& name,
                      const BehaviorSet& model, const std::string& dir,
                      std::string* err) {
  const std::string litmus = herd_litmus(p, name, &model);
  if (!mc::write_text_file_atomic(dir + "/" + name + ".litmus", litmus, err)) {
    return false;
  }
  std::ostringstream os;
  os << "# herd-comparable model behavior set of " << name << "; one state\n"
        "# per line, same key=value tokens as herd7's States section.\n";
  for (const std::string& b : model) {
    std::string line = herd_state_line(p, b);
    if (line.empty()) {
      if (err != nullptr) *err = "unparseable behavior '" + b + "'";
      return false;
    }
    os << line << '\n';
  }
  return mc::write_text_file_atomic(dir + "/" + name + ".expected", os.str(),
                                    err);
}

}  // namespace cds::fuzz
