#include "fuzz/program.h"

#include <cstdio>
#include <sstream>

namespace cds::fuzz {

namespace {

constexpr const char* kLocNames[Program::kMaxLocations] = {"x", "y", "z", "w"};

bool parse_order(const std::string& s, mc::MemoryOrder* out) {
  using O = mc::MemoryOrder;
  if (s == "relaxed") *out = O::relaxed;
  else if (s == "acquire") *out = O::acquire;
  else if (s == "release") *out = O::release;
  else if (s == "acq_rel") *out = O::acq_rel;
  else if (s == "seq_cst") *out = O::seq_cst;
  else return false;
  return true;
}

int parse_loc(const std::string& s) {
  for (int i = 0; i < Program::kMaxLocations; ++i) {
    if (s == kLocNames[i]) return i;
  }
  return -1;
}

bool legal_load_order(mc::MemoryOrder o) {
  return o == mc::MemoryOrder::relaxed || o == mc::MemoryOrder::acquire ||
         o == mc::MemoryOrder::seq_cst;
}

bool legal_store_order(mc::MemoryOrder o) {
  return o == mc::MemoryOrder::relaxed || o == mc::MemoryOrder::release ||
         o == mc::MemoryOrder::seq_cst;
}

}  // namespace

const char* to_string(OpCode c) {
  switch (c) {
    case OpCode::kLoad: return "load";
    case OpCode::kStore: return "store";
    case OpCode::kRmwAdd: return "rmw";
    case OpCode::kCas: return "cas";
    case OpCode::kFence: return "fence";
  }
  return "?";
}

inject::OpKind Op::inject_kind() const {
  switch (code) {
    case OpCode::kLoad: return inject::OpKind::kLoad;
    case OpCode::kStore: return inject::OpKind::kStore;
    case OpCode::kRmwAdd:
    case OpCode::kCas: return inject::OpKind::kRmw;
    case OpCode::kFence: return inject::OpKind::kFence;
  }
  return inject::OpKind::kFence;
}

const char* Program::location_name(int loc) {
  return loc >= 0 && loc < kMaxLocations ? kLocNames[loc] : "?";
}

int Program::total_ops() const {
  int n = 0;
  for (const auto& t : ops) n += static_cast<int>(t.size());
  return n;
}

bool Program::sc_only() const {
  for (const auto& t : ops) {
    for (const Op& op : t) {
      if (op.order != mc::MemoryOrder::seq_cst) return false;
      if (op.code == OpCode::kCas && op.failure != mc::MemoryOrder::seq_cst)
        return false;
    }
  }
  return true;
}

bool Program::validate(std::string* why) const {
  auto fail = [&](const std::string& m) {
    if (why != nullptr) *why = m;
    return false;
  };
  if (locations < 1 || locations > kMaxLocations)
    return fail("locations out of range");
  if (ops.empty() || threads() > kMaxThreads)
    return fail("thread count out of range");
  for (int t = 0; t < threads(); ++t) {
    for (const Op& op : ops[static_cast<std::size_t>(t)]) {
      if (op.code != OpCode::kFence && op.loc >= locations)
        return fail("location index out of range");
      switch (op.code) {
        case OpCode::kLoad:
          if (!legal_load_order(op.order)) return fail("illegal load order");
          break;
        case OpCode::kStore:
          if (!legal_store_order(op.order)) return fail("illegal store order");
          break;
        case OpCode::kRmwAdd:
          break;  // every order is legal on an RMW
        case OpCode::kCas:
          if (!legal_load_order(op.failure))
            return fail("illegal cas failure order");
          break;
        case OpCode::kFence:
          if (op.order == mc::MemoryOrder::relaxed)
            return fail("relaxed fence is a no-op");
          break;
      }
    }
  }
  return true;
}

std::string Program::to_string() const {
  std::ostringstream os;
  os << "litmus v1\n";
  os << "locations " << locations << '\n';
  for (int t = 0; t < threads(); ++t) {
    for (const Op& op : ops[static_cast<std::size_t>(t)]) {
      os << 't' << t << ' ' << fuzz::to_string(op.code);
      switch (op.code) {
        case OpCode::kLoad:
          os << ' ' << location_name(op.loc) << ' ' << mc::to_string(op.order);
          break;
        case OpCode::kStore:
        case OpCode::kRmwAdd:
          os << ' ' << location_name(op.loc) << ' ' << op.value << ' '
             << mc::to_string(op.order);
          break;
        case OpCode::kCas:
          os << ' ' << location_name(op.loc) << ' ' << op.expected << ' '
             << op.value << ' ' << mc::to_string(op.order) << ' '
             << mc::to_string(op.failure);
          break;
        case OpCode::kFence:
          os << ' ' << mc::to_string(op.order);
          break;
      }
      os << '\n';
    }
  }
  return os.str();
}

bool Program::parse(const std::string& text, Program* out, std::string* err) {
  auto fail = [&](const std::string& m) {
    if (err != nullptr) *err = m;
    return false;
  };
  Program p;
  p.locations = 0;
  bool saw_header = false;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::vector<std::string> tok;
    for (std::string w; ls >> w;) tok.push_back(w);
    if (tok.empty()) continue;
    auto where = [&] { return " (line " + std::to_string(lineno) + ")"; };
    if (!saw_header) {
      if (tok.size() != 2 || tok[0] != "litmus" || tok[1] != "v1")
        return fail("expected 'litmus v1' header" + where());
      saw_header = true;
      continue;
    }
    if (tok[0] == "locations") {
      if (tok.size() != 2) return fail("locations wants a count" + where());
      p.locations = std::atoi(tok[1].c_str());
      continue;
    }
    if (tok[0].size() != 2 || tok[0][0] != 't' || tok[0][1] < '0' ||
        tok[0][1] > '3')
      return fail("expected t0..t3" + where());
    auto t = static_cast<std::size_t>(tok[0][1] - '0');
    if (p.ops.size() <= t) p.ops.resize(t + 1);
    Op op;
    if (tok.size() == 3 && tok[1] == "fence") {
      op.code = OpCode::kFence;
      if (!parse_order(tok[2], &op.order)) return fail("bad order" + where());
    } else if (tok.size() == 4 && tok[1] == "load") {
      op.code = OpCode::kLoad;
      int loc = parse_loc(tok[2]);
      if (loc < 0) return fail("bad location" + where());
      op.loc = static_cast<std::uint8_t>(loc);
      if (!parse_order(tok[3], &op.order)) return fail("bad order" + where());
    } else if (tok.size() == 5 && (tok[1] == "store" || tok[1] == "rmw")) {
      op.code = tok[1] == "store" ? OpCode::kStore : OpCode::kRmwAdd;
      int loc = parse_loc(tok[2]);
      if (loc < 0) return fail("bad location" + where());
      op.loc = static_cast<std::uint8_t>(loc);
      op.value = std::strtoull(tok[3].c_str(), nullptr, 10);
      if (!parse_order(tok[4], &op.order)) return fail("bad order" + where());
    } else if (tok.size() == 7 && tok[1] == "cas") {
      op.code = OpCode::kCas;
      int loc = parse_loc(tok[2]);
      if (loc < 0) return fail("bad location" + where());
      op.loc = static_cast<std::uint8_t>(loc);
      op.expected = std::strtoull(tok[3].c_str(), nullptr, 10);
      op.value = std::strtoull(tok[4].c_str(), nullptr, 10);
      if (!parse_order(tok[5], &op.order)) return fail("bad order" + where());
      if (!parse_order(tok[6], &op.failure))
        return fail("bad failure order" + where());
    } else {
      return fail("unrecognized op" + where());
    }
    p.ops[t].push_back(op);
  }
  if (!saw_header) return fail("empty program");
  std::string why;
  if (!p.validate(&why)) return fail(why);
  *out = p;
  return true;
}

mc::TestFn Program::test_fn(std::vector<std::uint64_t>* obs) const {
  // Slot layout: thread-major, program order within a thread.
  std::vector<int> base(ops.size() + 1, 0);
  for (std::size_t t = 0; t < ops.size(); ++t) {
    base[t + 1] = base[t] + static_cast<int>(ops[t].size());
  }
  const int total = base.back();
  Program p = *this;  // the closure owns its own copy
  return [p = std::move(p), base = std::move(base), total,
          obs](mc::Exec& x) {
    obs->assign(static_cast<std::size_t>(total), 0);
    harness::Backend& e = x.backend();
    std::uint32_t locid[kMaxLocations] = {0, 0, 0, 0};
    for (int l = 0; l < p.locations; ++l) {
      locid[l] = e.new_location(location_name(l), /*initialized=*/true, 0);
    }
    auto run_thread = [&e, &p, &base, obs, &locid](std::size_t t) {
      const auto& list = p.ops[t];
      for (std::size_t i = 0; i < list.size(); ++i) {
        const Op& op = list[i];
        auto slot = static_cast<std::size_t>(base[t]) + i;
        switch (op.code) {
          case OpCode::kLoad:
            (*obs)[slot] = e.atomic_load(locid[op.loc], op.order);
            break;
          case OpCode::kStore:
            e.atomic_store(locid[op.loc], op.value, op.order);
            break;
          case OpCode::kRmwAdd:
            (*obs)[slot] = e.atomic_rmw(
                locid[op.loc], op.order,
                [](std::uint64_t a, std::uint64_t b) { return a + b; },
                op.value);
            break;
          case OpCode::kCas: {
            std::uint64_t seen = op.expected;
            (void)e.atomic_cas(locid[op.loc], seen, op.value, op.order,
                               op.failure);
            (*obs)[slot] = seen;  // the value the CAS read, success or not
            break;
          }
          case OpCode::kFence:
            e.atomic_thread_fence(op.order);
            break;
        }
      }
    };
    std::vector<int> tids;
    for (std::size_t t = 0; t < p.ops.size(); ++t) {
      tids.push_back(x.spawn([&run_thread, t] { run_thread(t); }));
    }
    for (int tid : tids) x.join(tid);
  };
}

}  // namespace cds::fuzz
