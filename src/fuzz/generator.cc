#include "fuzz/generator.h"

#include <algorithm>

#include "support/rng.h"

namespace cds::fuzz {

namespace {

using mc::MemoryOrder;

MemoryOrder pick_load_order(support::Xorshift64& rng) {
  static constexpr MemoryOrder k[] = {MemoryOrder::relaxed,
                                      MemoryOrder::acquire,
                                      MemoryOrder::seq_cst};
  return k[rng.below(3)];
}

MemoryOrder pick_store_order(support::Xorshift64& rng) {
  static constexpr MemoryOrder k[] = {MemoryOrder::relaxed,
                                      MemoryOrder::release,
                                      MemoryOrder::seq_cst};
  return k[rng.below(3)];
}

MemoryOrder pick_rmw_order(support::Xorshift64& rng) {
  static constexpr MemoryOrder k[] = {
      MemoryOrder::relaxed, MemoryOrder::acquire, MemoryOrder::release,
      MemoryOrder::acq_rel, MemoryOrder::seq_cst};
  return k[rng.below(5)];
}

MemoryOrder pick_fence_order(support::Xorshift64& rng) {
  static constexpr MemoryOrder k[] = {MemoryOrder::acquire,
                                      MemoryOrder::release,
                                      MemoryOrder::acq_rel,
                                      MemoryOrder::seq_cst};
  return k[rng.below(4)];
}

}  // namespace

std::uint64_t trial_seed(std::uint64_t root, std::uint64_t trial) {
  return support::derive_seed(root, trial);
}

Program generate(const GenParams& params, std::uint64_t seed) {
  support::Xorshift64 rng(seed ? seed : 1);
  auto between = [&rng](int lo, int hi) {
    return lo + static_cast<int>(rng.below(
                    static_cast<std::uint64_t>(hi - lo + 1)));
  };

  Program p;
  const int threads = std::min(between(params.min_threads, params.max_threads),
                               Program::kMaxThreads);
  p.locations = std::min(between(params.min_locations, params.max_locations),
                         Program::kMaxLocations);
  p.ops.resize(static_cast<std::size_t>(threads));

  int budget = params.max_total_ops;
  for (int t = 0; t < threads; ++t) {
    int want = between(params.min_ops_per_thread, params.max_ops_per_thread);
    // Spread the remaining budget over the remaining threads so later
    // threads are not starved to zero ops.
    int reserve = threads - t - 1;  // one op per remaining thread
    int allowed = std::max(1, budget - reserve);
    int n = std::min(want, allowed);
    budget -= n;
    for (int i = 0; i < n; ++i) {
      Op op;
      op.loc = static_cast<std::uint8_t>(rng.below(
          static_cast<std::uint64_t>(p.locations)));
      // Weighted opcode choice: loads and stores dominate; RMW/CAS/fence
      // appear often enough to exercise their paths.
      std::uint64_t roll = rng.below(10);
      if (roll < 4) {
        op.code = OpCode::kLoad;
      } else if (roll < 8) {
        op.code = OpCode::kStore;
      } else if (roll == 8 && params.allow_rmw) {
        op.code = OpCode::kRmwAdd;
      } else if (params.allow_cas) {
        op.code = OpCode::kCas;
      } else {
        op.code = OpCode::kLoad;
      }
      if (roll == 9 && params.allow_fence && rng.below(2) == 0) {
        op.code = OpCode::kFence;
      }
      op.value = 1 + rng.below(params.max_value);
      op.expected = rng.below(params.max_value + 1);
      if (params.sc_only) {
        op.order = MemoryOrder::seq_cst;
        op.failure = MemoryOrder::seq_cst;
      } else {
        switch (op.code) {
          case OpCode::kLoad: op.order = pick_load_order(rng); break;
          case OpCode::kStore: op.order = pick_store_order(rng); break;
          case OpCode::kRmwAdd:
          case OpCode::kCas: op.order = pick_rmw_order(rng); break;
          case OpCode::kFence: op.order = pick_fence_order(rng); break;
        }
        op.failure = pick_load_order(rng);
      }
      p.ops[static_cast<std::size_t>(t)].push_back(op);
    }
  }
  return p;
}

}  // namespace cds::fuzz
