// Greedy delta-debugging of a disagreeing litmus program: shrink threads,
// ops, and locations (and simplify opcodes) while the caller's predicate
// still reproduces the disagreement, to a local fixpoint.
#ifndef CDS_FUZZ_MINIMIZE_H
#define CDS_FUZZ_MINIMIZE_H

#include <functional>

#include "fuzz/program.h"

namespace cds::fuzz {

// Returns true iff the candidate still exhibits the failure being chased.
// Called many times; must be deterministic.
using StillFails = std::function<bool(const Program&)>;

struct MinimizeStats {
  int probes = 0;       // predicate evaluations
  int reductions = 0;   // accepted shrink steps
};

// Precondition: still_fails(p). Postcondition: still_fails(result), and no
// single further reduction from the move set keeps the predicate true.
[[nodiscard]] Program minimize(const Program& p, const StillFails& still_fails,
                               MinimizeStats* stats = nullptr);

}  // namespace cds::fuzz

#endif  // CDS_FUZZ_MINIMIZE_H
