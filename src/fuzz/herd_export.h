// herd7 litmus export: translates fuzzer Programs into the C-litmus
// dialect consumed by herd7 (and litmus7), so an independent, de-facto
// reference implementation of the C/C++11 model can adjudicate
// disagreements between our backends.
//
// The translation is value-faithful: every value-observing op (load, RMW,
// CAS) lands in a named register `r<slot>` where `slot` is the op's global
// thread-major observation index — the same numbering behavior_string()
// uses — so a herd7 final state and one of our serialized behaviors are
// mechanically comparable. tools/herd_adjudicate does the comparison; the
// golden tests in tests/fuzz/herd_export_test.cc pin the syntax.
#ifndef CDS_FUZZ_HERD_EXPORT_H
#define CDS_FUZZ_HERD_EXPORT_H

#include <string>

#include "fuzz/oracle.h"
#include "fuzz/program.h"

namespace cds::fuzz {

// Renders `p` as a self-contained herd7 C-litmus test named `name`.
// When `model` is non-null and non-empty, the `exists` clause asserts its
// first behavior (herd7 then reports whether that behavior is reachable);
// otherwise a trivially-valid placeholder condition is emitted. Either
// way the `locations` directive lists every location and register, so
// herd7's "States" section enumerates the full outcome set.
[[nodiscard]] std::string herd_litmus(const Program& p,
                                      const std::string& name,
                                      const BehaviorSet* model = nullptr);

// Renders one serialized behavior ("r:..|f:..", see behavior_string) of
// `p` as a herd7 state line: "x=0; y=1; 1:r2=1; 1:r3=0;". Locations
// first, then observing registers, both in index order. Returns "" if the
// behavior string does not parse against p's shape.
[[nodiscard]] std::string herd_state_line(const Program& p,
                                          const std::string& behavior);

// Writes `<dir>/<name>.litmus` (the herd7 test) and `<dir>/<name>.expected`
// (our model-checker behavior set, one herd state line per behavior,
// lexicographically sorted) for tools/herd_adjudicate. `dir` must exist.
bool write_herd_files(const Program& p, const std::string& name,
                      const BehaviorSet& model, const std::string& dir,
                      std::string* err);

}  // namespace cds::fuzz

#endif  // CDS_FUZZ_HERD_EXPORT_H
