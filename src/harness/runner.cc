#include "harness/runner.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "support/rng.h"

#if defined(__unix__) || defined(__APPLE__)
#define CDS_HARNESS_HAS_FORK 1
#include <poll.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace cds::harness {

namespace {
std::vector<Benchmark>& registry() {
  static std::vector<Benchmark> v;
  return v;
}

bool has_kind(const std::vector<mc::Violation>& vs, mc::ViolationKind k) {
  for (const auto& v : vs) {
    if (v.kind == k) return true;
  }
  return false;
}

// Paper's classification priority (Figure 8 columns).
Detection classify(const RunResult& r) {
  if (r.detected_builtin()) return Detection::kBuiltin;
  if (r.detected_admissibility()) return Detection::kAdmissibility;
  if (r.detected_assertion()) return Detection::kAssertion;
  return Detection::kNone;
}

// Merge `v` into `into`, keeping the weaker claim.
void weaken(mc::Verdict& into, mc::Verdict v) {
  if (v == mc::Verdict::kFalsified || into == mc::Verdict::kFalsified) {
    into = mc::Verdict::kFalsified;
  } else if (v == mc::Verdict::kInconclusive) {
    into = mc::Verdict::kInconclusive;
  }
}
}  // namespace

bool RunResult::detected_builtin() const {
  return mc.builtin_violation_execs > 0 ||
         has_kind(violations, mc::ViolationKind::kDataRace) ||
         has_kind(violations, mc::ViolationKind::kUninitializedLoad) ||
         has_kind(violations, mc::ViolationKind::kDeadlock);
}

bool RunResult::detected_admissibility() const {
  return spec.inadmissible_execs > 0;
}

bool RunResult::detected_assertion() const {
  return spec.assertion_violation_execs > 0 ||
         has_kind(violations, mc::ViolationKind::kUserAssertion);
}

RunResult run_with_spec(const mc::TestFn& test, const RunOptions& opts) {
  mc::Engine engine(opts.engine);
  spec::SpecChecker checker(opts.checker);
  checker.attach(engine);
  RunResult r;
  r.mc = engine.explore(test);
  r.spec = checker.stats();
  r.violations = engine.violations();
  r.reports = checker.reports();
  r.verdict = r.mc.verdict;
  checker.detach();
  return r;
}

void register_benchmark(Benchmark b) {
  for (const Benchmark& e : registry()) {
    if (e.name == b.name) return;  // idempotent
  }
  registry().push_back(std::move(b));
}

const std::vector<Benchmark>& benchmarks() { return registry(); }

const Benchmark* find_benchmark(const std::string& name) {
  for (const Benchmark& b : registry()) {
    if (b.name == name) return &b;
  }
  return nullptr;
}

RunResult run_benchmark(const Benchmark& b, const RunOptions& opts) {
  RunResult total;
  total.mc.seed = opts.engine.seed;
  total.mc.exhausted = true;  // weakened below if any test falls short
  // The time budget covers the whole benchmark: each test gets what the
  // previous ones left over. Once it is gone, the remaining tests run with
  // an epsilon budget so they still report (inconclusive) instead of
  // exploring unbounded.
  double remaining = opts.engine.time_budget_seconds;
  for (const mc::TestFn& t : b.tests) {
    RunOptions per_test = opts;
    if (opts.engine.time_budget_seconds > 0.0) {
      per_test.engine.time_budget_seconds = remaining > 0.001 ? remaining : 0.001;
    }
    RunResult r = run_with_spec(t, per_test);
    remaining -= r.mc.seconds;
    total.mc.executions += r.mc.executions;
    total.mc.feasible += r.mc.feasible;
    total.mc.pruned_bound += r.mc.pruned_bound;
    total.mc.pruned_livelock += r.mc.pruned_livelock;
    total.mc.pruned_redundant += r.mc.pruned_redundant;
    total.mc.builtin_violation_execs += r.mc.builtin_violation_execs;
    total.mc.engine_fatal_execs += r.mc.engine_fatal_execs;
    total.mc.sampled += r.mc.sampled;
    total.mc.violations_total += r.mc.violations_total;
    total.mc.seconds += r.mc.seconds;
    total.mc.hit_execution_cap |= r.mc.hit_execution_cap;
    total.mc.hit_time_budget |= r.mc.hit_time_budget;
    total.mc.hit_memory_budget |= r.mc.hit_memory_budget;
    total.mc.watchdog_fired |= r.mc.watchdog_fired;
    total.mc.stopped_early |= r.mc.stopped_early;
    total.mc.exhausted &= r.mc.exhausted;
    if (r.mc.max_trail_depth > total.mc.max_trail_depth) {
      total.mc.max_trail_depth = r.mc.max_trail_depth;
    }
    weaken(total.verdict, r.verdict);
    total.spec.executions_checked += r.spec.executions_checked;
    total.spec.inadmissible_execs += r.spec.inadmissible_execs;
    total.spec.assertion_violation_execs += r.spec.assertion_violation_execs;
    total.spec.histories_checked += r.spec.histories_checked;
    total.spec.justification_checks += r.spec.justification_checks;
    total.spec.history_cap_hit |= r.spec.history_cap_hit;
    total.spec.r_cycle_seen |= r.spec.r_cycle_seen;
    for (auto& v : r.violations) total.violations.push_back(std::move(v));
    for (auto& s : r.reports) total.reports.push_back(std::move(s));
  }
  total.mc.verdict = total.verdict;
  return total;
}

const char* to_string(Detection d) {
  switch (d) {
    case Detection::kNone: return "undetected";
    case Detection::kBuiltin: return "built-in";
    case Detection::kAdmissibility: return "admissibility";
    case Detection::kAssertion: return "assertion";
  }
  return "?";
}

const char* to_string(TrialStatus s) {
  switch (s) {
    case TrialStatus::kCompleted: return "completed";
    case TrialStatus::kCrashed: return "crashed";
    case TrialStatus::kTimedOut: return "timed-out";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Fork-isolated trials
// ---------------------------------------------------------------------------

namespace {

// Runs one injection trial inside this process (no isolation). Used when
// fork is unavailable or disabled; a crash or hang here takes the whole
// campaign with it.
InjectionOutcome run_trial_inline(const Benchmark& b, const RunOptions& opts,
                                  const inject::Site& site) {
  InjectionOutcome out;
  out.site = site;
  inject::inject(site.id);
  RunResult r = run_benchmark(b, opts);
  inject::clear_injection();
  out.how = classify(r);
  out.verdict = r.verdict;
  out.status = TrialStatus::kCompleted;
  out.seconds = r.mc.seconds;
  return out;
}

#ifdef CDS_HARNESS_HAS_FORK

// Fixed-size result message written by the trial child over its pipe.
struct TrialWire {
  std::uint8_t detection;
  std::uint8_t verdict;
  double seconds;
};

// Runs one trial in a forked child with a wall-clock timeout. The child
// performs the injection and the whole benchmark run in its own address
// space, so aborts, corruption, and hangs stay contained.
InjectionOutcome run_trial_forked(const Benchmark& b, const RunOptions& opts,
                                  const inject::Site& site, double timeout_s) {
  InjectionOutcome out;
  out.site = site;

  int fds[2];
  if (pipe(fds) != 0) return run_trial_inline(b, opts, site);
  pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return run_trial_inline(b, opts, site);
  }
  if (pid == 0) {
    // Child: run the trial and report over the pipe. _exit skips atexit
    // handlers (gtest, benchmark registries) that belong to the parent.
    close(fds[0]);
    inject::inject(site.id);
    RunResult r = run_benchmark(b, opts);
    TrialWire w{static_cast<std::uint8_t>(classify(r)),
                static_cast<std::uint8_t>(r.verdict), r.mc.seconds};
    ssize_t rc = write(fds[1], &w, sizeof w);
    (void)rc;
    close(fds[1]);
    _exit(0);
  }

  close(fds[1]);
  auto t0 = std::chrono::steady_clock::now();
  auto remaining_ms = [&]() -> int {
    if (timeout_s <= 0.0) return -1;  // poll: negative = wait forever
    double left =
        timeout_s -
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (left <= 0.0) return 0;
    double ms = left * 1000.0 + 1.0;
    return ms > 2147483000.0 ? 2147483000 : static_cast<int>(ms);
  };

  TrialWire w{};
  std::size_t got = 0;
  bool timed_out = false;
  char* dst = reinterpret_cast<char*>(&w);
  while (got < sizeof w) {
    pollfd pfd{fds[0], POLLIN, 0};
    int pr = poll(&pfd, 1, remaining_ms());
    if (pr == 0) {
      timed_out = true;
      break;
    }
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;
    }
    ssize_t n = read(fds[0], dst + got, sizeof w - got);
    if (n <= 0) break;  // EOF before a full message: the child died
    got += static_cast<std::size_t>(n);
  }
  close(fds[0]);

  if (timed_out) {
    kill(pid, SIGKILL);
    int status = 0;
    waitpid(pid, &status, 0);
    out.status = TrialStatus::kTimedOut;
    out.seconds = timeout_s;
    return out;
  }

  int status = 0;
  waitpid(pid, &status, 0);
  if (got == sizeof w) {
    out.status = TrialStatus::kCompleted;
    out.how = static_cast<Detection>(w.detection);
    out.verdict = static_cast<mc::Verdict>(w.verdict);
    out.seconds = w.seconds;
  } else {
    out.status = TrialStatus::kCrashed;
    out.term_signal = WIFSIGNALED(status) ? WTERMSIG(status) : 0;
    out.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }
  return out;
}

#endif  // CDS_HARNESS_HAS_FORK

InjectionOutcome run_trial(const Benchmark& b, const RunOptions& opts,
                           const inject::Site& site, const SweepOptions& sweep) {
#ifdef CDS_HARNESS_HAS_FORK
  if (sweep.fork_isolation) {
    return run_trial_forked(b, opts, site, sweep.trial_timeout_seconds);
  }
#endif
  return run_trial_inline(b, opts, site);
}

}  // namespace

InjectionSummary run_injection_experiment(const Benchmark& b,
                                          const RunOptions& opts,
                                          const SweepOptions& sweep) {
  InjectionSummary sum;
  sum.benchmark = b.name;
  for (const inject::Site& site : inject::sites_for(b.name)) {
    if (!site.injectable()) continue;
    RunOptions trial_opts = opts;
    trial_opts.engine.seed =
        support::derive_seed(sweep.seed, static_cast<std::uint64_t>(site.id));

    InjectionOutcome out = run_trial(b, trial_opts, site, sweep);
    // One retry ladder on timeout: tighten the execution cap and hand the
    // engine a self-enforced time budget so the retry degrades to
    // sampling (inconclusive) instead of hanging a second time.
    for (int attempt = 0;
         out.status == TrialStatus::kTimedOut && attempt < sweep.timeout_retries;
         ++attempt) {
      RunOptions tighter = trial_opts;
      tighter.engine.max_executions =
          trial_opts.engine.max_executions == 0
              ? 20000
              : std::max<std::uint64_t>(1, trial_opts.engine.max_executions / 4);
      if (sweep.trial_timeout_seconds > 0.0) {
        tighter.engine.time_budget_seconds = sweep.trial_timeout_seconds * 0.5;
      }
      out = run_trial(b, tighter, site, sweep);
      out.retried = true;
    }

    switch (out.status) {
      case TrialStatus::kCompleted:
        switch (out.how) {
          case Detection::kBuiltin: ++sum.builtin; break;
          case Detection::kAdmissibility: ++sum.admissibility; break;
          case Detection::kAssertion: ++sum.assertion; break;
          case Detection::kNone: ++sum.undetected; break;
        }
        break;
      case TrialStatus::kCrashed:
        ++sum.crashed;
        break;
      case TrialStatus::kTimedOut:
        ++sum.timed_out;
        break;
    }
    ++sum.injections;
    sum.outcomes.push_back(std::move(out));
  }
  // Defensive: fork isolation leaves the parent's injection state alone,
  // but the inline path must never leak an active injection.
  inject::clear_injection();
  return sum;
}

}  // namespace cds::harness
