#include "harness/runner.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "support/rng.h"

#if defined(__unix__) || defined(__APPLE__)
#define CDS_HARNESS_HAS_FORK 1
#include <poll.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace cds::harness {

namespace {
std::vector<Benchmark>& registry() {
  static std::vector<Benchmark> v;
  return v;
}

bool has_kind(const std::vector<mc::Violation>& vs, mc::ViolationKind k) {
  for (const auto& v : vs) {
    if (v.kind == k) return true;
  }
  return false;
}

// Paper's classification priority (Figure 8 columns).
Detection classify(const RunResult& r) {
  if (r.detected_builtin()) return Detection::kBuiltin;
  if (r.detected_admissibility()) return Detection::kAdmissibility;
  if (r.detected_assertion()) return Detection::kAssertion;
  return Detection::kNone;
}

// Merge `v` into `into`, keeping the weaker claim.
void weaken(mc::Verdict& into, mc::Verdict v) {
  if (v == mc::Verdict::kFalsified || into == mc::Verdict::kFalsified) {
    into = mc::Verdict::kFalsified;
  } else if (v == mc::Verdict::kInconclusive) {
    into = mc::Verdict::kInconclusive;
  }
}
}  // namespace

bool RunResult::detected_builtin() const {
  return mc.builtin_violation_execs > 0 || mc.crash_execs > 0 ||
         has_kind(violations, mc::ViolationKind::kDataRace) ||
         has_kind(violations, mc::ViolationKind::kUninitializedLoad) ||
         has_kind(violations, mc::ViolationKind::kDeadlock) ||
         has_kind(violations, mc::ViolationKind::kCrash);
}

bool RunResult::detected_admissibility() const {
  return spec.inadmissible_execs > 0;
}

bool RunResult::detected_assertion() const {
  return spec.assertion_violation_execs > 0 ||
         has_kind(violations, mc::ViolationKind::kUserAssertion);
}

RunResult run_with_spec(const mc::TestFn& test, const RunOptions& opts) {
  mc::Engine engine(opts.engine);
  spec::SpecChecker checker(opts.checker);
  checker.attach(engine);
  engine.set_checkpoint_base(opts.checkpoint_base);
  if (!opts.subtree.empty()) engine.set_subtree(opts.subtree);
  if (opts.resume != nullptr) {
    checker.restore_from_checkpoint(*opts.resume);
    engine.set_resume(*opts.resume);
  }
  RunResult r;
  r.mc = engine.explore(test);
  r.spec = checker.stats();
  r.metrics.merge(engine.metrics());
  r.violations = engine.violations();
  r.reports = checker.reports();
  r.frontier = engine.preempt_frontier();
  r.verdict = r.mc.verdict;
  checker.detach();
  return r;
}

void register_benchmark(Benchmark b) {
  for (const Benchmark& e : registry()) {
    if (e.name == b.name) return;  // idempotent
  }
  registry().push_back(std::move(b));
}

const std::vector<Benchmark>& benchmarks() { return registry(); }

const Benchmark* find_benchmark(const std::string& name) {
  for (const Benchmark& b : registry()) {
    if (b.name == name) return &b;
  }
  return nullptr;
}

namespace {

// Prior-test accumulations ride inside checkpoints as opaque "prior.*"
// extras (the engine round-trips them without interpretation), so a
// kill+resume mid-benchmark restores the totals of every finished test.
void encode_prior(const RunResult& total, mc::Checkpoint* cp) {
  auto set = [&](const char* k, std::uint64_t v) {
    cp->set_extra(std::string("prior.") + k, v);
  };
  set("present", 1);
  set("executions", total.mc.executions);
  set("feasible", total.mc.feasible);
  set("pruned_bound", total.mc.pruned_bound);
  set("pruned_livelock", total.mc.pruned_livelock);
  set("pruned_redundant", total.mc.pruned_redundant);
  set("builtin", total.mc.builtin_violation_execs);
  set("fatal", total.mc.engine_fatal_execs);
  set("crash", total.mc.crash_execs);
  set("sampled", total.mc.sampled);
  set("violations_total", total.mc.violations_total);
  set("rf_classes", total.mc.rf_classes);
  set("rf_infeasible", total.mc.rf_infeasible);
  set("seconds_ms", static_cast<std::uint64_t>(total.mc.seconds * 1000.0));
  set("max_depth", total.mc.max_trail_depth);
  set("cap", total.mc.hit_execution_cap ? 1 : 0);
  set("time", total.mc.hit_time_budget ? 1 : 0);
  set("mem", total.mc.hit_memory_budget ? 1 : 0);
  set("watchdog", total.mc.watchdog_fired ? 1 : 0);
  set("stopped", total.mc.stopped_early ? 1 : 0);
  set("exhausted", total.mc.exhausted ? 1 : 0);
  set("verdict", static_cast<std::uint64_t>(total.verdict));
  set("spec.executions_checked", total.spec.executions_checked);
  set("spec.inadmissible", total.spec.inadmissible_execs);
  set("spec.assertions", total.spec.assertion_violation_execs);
  set("spec.histories", total.spec.histories_checked);
  set("spec.justifications", total.spec.justification_checks);
  set("spec.cap_hit", total.spec.history_cap_hit ? 1 : 0);
  set("spec.r_cycle", total.spec.r_cycle_seen ? 1 : 0);
}

bool decode_prior(const mc::Checkpoint& cp, RunResult* total) {
  auto get = [&](const char* k) {
    return cp.extra_value(std::string("prior.") + k);
  };
  if (get("present") == 0) return false;
  total->mc.executions = get("executions");
  total->mc.feasible = get("feasible");
  total->mc.pruned_bound = get("pruned_bound");
  total->mc.pruned_livelock = get("pruned_livelock");
  total->mc.pruned_redundant = get("pruned_redundant");
  total->mc.builtin_violation_execs = get("builtin");
  total->mc.engine_fatal_execs = get("fatal");
  total->mc.crash_execs = get("crash");
  total->mc.sampled = get("sampled");
  total->mc.violations_total = get("violations_total");
  total->mc.rf_classes = get("rf_classes");
  total->mc.rf_infeasible = get("rf_infeasible");
  total->mc.seconds = static_cast<double>(get("seconds_ms")) / 1000.0;
  total->mc.max_trail_depth = get("max_depth");
  total->mc.hit_execution_cap = get("cap") != 0;
  total->mc.hit_time_budget = get("time") != 0;
  total->mc.hit_memory_budget = get("mem") != 0;
  total->mc.watchdog_fired = get("watchdog") != 0;
  total->mc.stopped_early = get("stopped") != 0;
  total->mc.exhausted = get("exhausted") != 0;
  total->verdict = static_cast<mc::Verdict>(get("verdict"));
  total->spec.executions_checked = get("spec.executions_checked");
  total->spec.inadmissible_execs = get("spec.inadmissible");
  total->spec.assertion_violation_execs = get("spec.assertions");
  total->spec.histories_checked = get("spec.histories");
  total->spec.justification_checks = get("spec.justifications");
  total->spec.history_cap_hit = get("spec.cap_hit") != 0;
  total->spec.r_cycle_seen = get("spec.r_cycle") != 0;
  return true;
}

std::vector<mc::Violation> strip_trails(const std::vector<mc::Violation>& vs) {
  std::vector<mc::Violation> out = vs;
  for (mc::Violation& v : out) v.trail.clear();
  return out;
}

}  // namespace

RunResult run_benchmark(const Benchmark& b, const RunOptions& opts) {
  RunResult total;
  total.mc.seed = opts.engine.seed;
  total.mc.exhausted = true;  // weakened below if any test falls short
  const bool checkpointing = !opts.engine.checkpoint_path.empty();

  // Resume: fast-forward over already-finished tests using the totals
  // persisted in the checkpoint's "prior.*" extras, then hand the
  // interrupted test's state to the engine. A checkpoint that does not
  // belong to this benchmark is ignored (fresh run) rather than trusted.
  const mc::Checkpoint* resume_cp = opts.resume;
  std::size_t first_test = 0;
  if (resume_cp != nullptr) {
    const std::string want_prefix = b.name + "#";
    if (resume_cp->test_name.rfind(want_prefix, 0) != 0 ||
        resume_cp->test_index >= b.tests.size()) {
      std::fprintf(stderr,
                   "cds::harness: checkpoint is for '%s', not benchmark '%s'; "
                   "starting fresh\n",
                   resume_cp->test_name.c_str(), b.name.c_str());
      resume_cp = nullptr;
    } else {
      first_test = resume_cp->test_index;
      decode_prior(*resume_cp, &total);
      total.mc.seed = opts.engine.seed;
      for (const mc::Violation& v : resume_cp->violations) {
        if (v.test_index < first_test) total.violations.push_back(v);
      }
    }
  }

  // The time budget covers the whole benchmark: each test gets what the
  // previous ones left over. Once it is gone, the remaining tests run with
  // an epsilon budget so they still report (inconclusive) instead of
  // exploring unbounded.
  double remaining = opts.engine.time_budget_seconds - total.mc.seconds;
  for (std::size_t i = first_test; i < b.tests.size(); ++i) {
    RunOptions per_test = opts;
    per_test.resume = nullptr;
    per_test.engine.test_name = b.name + "#" + std::to_string(i);
    per_test.engine.test_index = static_cast<std::uint32_t>(i);
    if (opts.engine.time_budget_seconds > 0.0) {
      per_test.engine.time_budget_seconds = remaining > 0.001 ? remaining : 0.001;
    }
    // The engine carries the prior tests' totals and violation records
    // into every checkpoint it writes mid-test.
    if (checkpointing) {
      per_test.checkpoint_base = mc::Checkpoint{};
      encode_prior(total, &per_test.checkpoint_base);
      per_test.checkpoint_base.violations = strip_trails(total.violations);
    }
    mc::Checkpoint engine_resume;
    if (resume_cp != nullptr && i == first_test &&
        resume_cp->phase != mc::Checkpoint::Phase::kStart) {
      engine_resume = *resume_cp;
      engine_resume.violations.clear();
      for (const mc::Violation& v : resume_cp->violations) {
        if (v.test_index == i) engine_resume.violations.push_back(v);
      }
      per_test.resume = &engine_resume;
    }
    RunResult r = run_with_spec(b.tests[i], per_test);
    remaining -= r.mc.seconds;
    total.mc.executions += r.mc.executions;
    total.mc.feasible += r.mc.feasible;
    total.mc.pruned_bound += r.mc.pruned_bound;
    total.mc.pruned_livelock += r.mc.pruned_livelock;
    total.mc.pruned_redundant += r.mc.pruned_redundant;
    total.mc.builtin_violation_execs += r.mc.builtin_violation_execs;
    total.mc.engine_fatal_execs += r.mc.engine_fatal_execs;
    total.mc.crash_execs += r.mc.crash_execs;
    total.mc.sampled += r.mc.sampled;
    total.mc.violations_total += r.mc.violations_total;
    total.mc.rf_classes += r.mc.rf_classes;
    total.mc.rf_infeasible += r.mc.rf_infeasible;
    total.mc.seconds += r.mc.seconds;
    total.mc.hit_execution_cap |= r.mc.hit_execution_cap;
    total.mc.hit_time_budget |= r.mc.hit_time_budget;
    total.mc.hit_memory_budget |= r.mc.hit_memory_budget;
    total.mc.watchdog_fired |= r.mc.watchdog_fired;
    total.mc.stopped_early |= r.mc.stopped_early;
    total.mc.exhausted &= r.mc.exhausted;
    if (r.mc.max_trail_depth > total.mc.max_trail_depth) {
      total.mc.max_trail_depth = r.mc.max_trail_depth;
    }
    weaken(total.verdict, r.verdict);
    total.spec.executions_checked += r.spec.executions_checked;
    total.spec.inadmissible_execs += r.spec.inadmissible_execs;
    total.spec.assertion_violation_execs += r.spec.assertion_violation_execs;
    total.spec.histories_checked += r.spec.histories_checked;
    total.spec.justification_checks += r.spec.justification_checks;
    total.spec.history_cap_hit |= r.spec.history_cap_hit;
    total.spec.r_cycle_seen |= r.spec.r_cycle_seen;
    total.metrics.merge(r.metrics);
    for (auto& v : r.violations) total.violations.push_back(std::move(v));
    for (auto& s : r.reports) total.reports.push_back(std::move(s));

    // Between tests: a Phase::kStart checkpoint saying "test i+1 has not
    // begun; here is everything up to it". After the last test the
    // checkpoint has served its purpose — unless the run ended
    // inconclusive (a budget or cap cut the exploration short), in which
    // case the engine's last snapshot stays on disk so --resume can pick
    // the run back up with a bigger budget.
    if (checkpointing) {
      if (i + 1 < b.tests.size()) {
        mc::Checkpoint cp;
        cp.fingerprint_from(opts.engine);
        cp.test_name = b.name + "#" + std::to_string(i + 1);
        cp.test_index = static_cast<std::uint32_t>(i + 1);
        cp.phase = mc::Checkpoint::Phase::kStart;
        encode_prior(total, &cp);
        cp.violations = strip_trails(total.violations);
        std::string err;
        if (!mc::write_checkpoint_file(opts.engine.checkpoint_path, cp, &err)) {
          std::fprintf(stderr, "cds::harness: checkpoint write failed: %s\n",
                       err.c_str());
        }
      } else if (total.verdict != mc::Verdict::kInconclusive) {
        std::remove(opts.engine.checkpoint_path.c_str());
      }
    }
  }
  total.mc.verdict = total.verdict;
  return total;
}

const char* to_string(Detection d) {
  switch (d) {
    case Detection::kNone: return "undetected";
    case Detection::kBuiltin: return "built-in";
    case Detection::kAdmissibility: return "admissibility";
    case Detection::kAssertion: return "assertion";
  }
  return "?";
}

const char* to_string(TrialStatus s) {
  switch (s) {
    case TrialStatus::kCompleted: return "completed";
    case TrialStatus::kCrashed: return "crashed";
    case TrialStatus::kTimedOut: return "timed-out";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Fork-isolated trials
// ---------------------------------------------------------------------------

namespace {

// Runs one injection trial inside this process (no isolation). Used when
// fork is unavailable or disabled; a crash or hang here takes the whole
// campaign with it.
InjectionOutcome run_trial_inline(const Benchmark& b, const RunOptions& opts,
                                  const inject::Site& site) {
  InjectionOutcome out;
  out.site = site;
  inject::inject(site.id);
  RunResult r = run_benchmark(b, opts);
  inject::clear_injection();
  out.how = classify(r);
  out.verdict = r.verdict;
  out.status = TrialStatus::kCompleted;
  out.seconds = r.mc.seconds;
  return out;
}

#ifdef CDS_HARNESS_HAS_FORK

// Fixed-size result message written by the trial child over its pipe.
struct TrialWire {
  std::uint8_t detection;
  std::uint8_t verdict;
  double seconds;
};

// Runs one trial in a forked child with a wall-clock timeout. The child
// performs the injection and the whole benchmark run in its own address
// space, so aborts, corruption, and hangs stay contained.
InjectionOutcome run_trial_forked(const Benchmark& b, const RunOptions& opts,
                                  const inject::Site& site, double timeout_s) {
  InjectionOutcome out;
  out.site = site;

  int fds[2];
  if (pipe(fds) != 0) return run_trial_inline(b, opts, site);
  pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return run_trial_inline(b, opts, site);
  }
  if (pid == 0) {
    // Child: run the trial and report over the pipe. _exit skips atexit
    // handlers (gtest, benchmark registries) that belong to the parent.
    close(fds[0]);
    inject::inject(site.id);
    RunResult r = run_benchmark(b, opts);
    TrialWire w{static_cast<std::uint8_t>(classify(r)),
                static_cast<std::uint8_t>(r.verdict), r.mc.seconds};
    ssize_t rc = write(fds[1], &w, sizeof w);
    (void)rc;
    close(fds[1]);
    _exit(0);
  }

  close(fds[1]);
  auto t0 = std::chrono::steady_clock::now();
  auto remaining_ms = [&]() -> int {
    if (timeout_s <= 0.0) return -1;  // poll: negative = wait forever
    double left =
        timeout_s -
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (left <= 0.0) return 0;
    double ms = left * 1000.0 + 1.0;
    return ms > 2147483000.0 ? 2147483000 : static_cast<int>(ms);
  };

  TrialWire w{};
  std::size_t got = 0;
  bool timed_out = false;
  char* dst = reinterpret_cast<char*>(&w);
  while (got < sizeof w) {
    pollfd pfd{fds[0], POLLIN, 0};
    int pr = poll(&pfd, 1, remaining_ms());
    if (pr == 0) {
      timed_out = true;
      break;
    }
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;
    }
    ssize_t n = read(fds[0], dst + got, sizeof w - got);
    if (n <= 0) break;  // EOF before a full message: the child died
    got += static_cast<std::size_t>(n);
  }
  close(fds[0]);

  if (timed_out) {
    kill(pid, SIGKILL);
    int status = 0;
    waitpid(pid, &status, 0);
    out.status = TrialStatus::kTimedOut;
    out.seconds = timeout_s;
    return out;
  }

  int status = 0;
  waitpid(pid, &status, 0);
  if (got == sizeof w) {
    out.status = TrialStatus::kCompleted;
    out.how = static_cast<Detection>(w.detection);
    out.verdict = static_cast<mc::Verdict>(w.verdict);
    out.seconds = w.seconds;
  } else {
    out.status = TrialStatus::kCrashed;
    out.term_signal = WIFSIGNALED(status) ? WTERMSIG(status) : 0;
    out.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }
  return out;
}

#endif  // CDS_HARNESS_HAS_FORK

InjectionOutcome run_trial(const Benchmark& b, const RunOptions& opts,
                           const inject::Site& site, const SweepOptions& sweep) {
#ifdef CDS_HARNESS_HAS_FORK
  if (sweep.fork_isolation) {
    return run_trial_forked(b, opts, site, sweep.trial_timeout_seconds);
  }
#endif
  return run_trial_inline(b, opts, site);
}

}  // namespace

InjectionSummary run_injection_experiment(const Benchmark& b,
                                          const RunOptions& opts,
                                          const SweepOptions& sweep) {
  InjectionSummary sum;
  sum.benchmark = b.name;
  for (const inject::Site& site : inject::sites_for(b.name)) {
    if (!site.injectable()) continue;
    RunOptions trial_opts = opts;
    trial_opts.engine.seed =
        support::derive_seed(sweep.seed, static_cast<std::uint64_t>(site.id));

    InjectionOutcome out = run_trial(b, trial_opts, site, sweep);
    // One retry ladder on timeout: tighten the execution cap and hand the
    // engine a self-enforced time budget so the retry degrades to
    // sampling (inconclusive) instead of hanging a second time.
    for (int attempt = 0;
         out.status == TrialStatus::kTimedOut && attempt < sweep.timeout_retries;
         ++attempt) {
      RunOptions tighter = trial_opts;
      tighter.engine.max_executions =
          trial_opts.engine.max_executions == 0
              ? 20000
              : std::max<std::uint64_t>(1, trial_opts.engine.max_executions / 4);
      if (sweep.trial_timeout_seconds > 0.0) {
        tighter.engine.time_budget_seconds = sweep.trial_timeout_seconds * 0.5;
      }
      out = run_trial(b, tighter, site, sweep);
      out.retried = true;
    }

    switch (out.status) {
      case TrialStatus::kCompleted:
        switch (out.how) {
          case Detection::kBuiltin: ++sum.builtin; break;
          case Detection::kAdmissibility: ++sum.admissibility; break;
          case Detection::kAssertion: ++sum.assertion; break;
          case Detection::kNone: ++sum.undetected; break;
        }
        break;
      case TrialStatus::kCrashed:
        ++sum.crashed;
        break;
      case TrialStatus::kTimedOut:
        ++sum.timed_out;
        break;
    }
    ++sum.injections;
    sum.outcomes.push_back(std::move(out));
  }
  // Defensive: fork isolation leaves the parent's injection state alone,
  // but the inline path must never leak an active injection.
  inject::clear_injection();
  return sum;
}

}  // namespace cds::harness
