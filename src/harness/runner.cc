#include "harness/runner.h"

namespace cds::harness {

namespace {
std::vector<Benchmark>& registry() {
  static std::vector<Benchmark> v;
  return v;
}

bool has_kind(const std::vector<mc::Violation>& vs, mc::ViolationKind k) {
  for (const auto& v : vs) {
    if (v.kind == k) return true;
  }
  return false;
}
}  // namespace

bool RunResult::detected_builtin() const {
  return mc.builtin_violation_execs > 0 ||
         has_kind(violations, mc::ViolationKind::kDataRace) ||
         has_kind(violations, mc::ViolationKind::kUninitializedLoad) ||
         has_kind(violations, mc::ViolationKind::kDeadlock);
}

bool RunResult::detected_admissibility() const {
  return spec.inadmissible_execs > 0;
}

bool RunResult::detected_assertion() const {
  return spec.assertion_violation_execs > 0 ||
         has_kind(violations, mc::ViolationKind::kUserAssertion);
}

RunResult run_with_spec(const mc::TestFn& test, const RunOptions& opts) {
  mc::Engine engine(opts.engine);
  spec::SpecChecker checker(opts.checker);
  checker.attach(engine);
  RunResult r;
  r.mc = engine.explore(test);
  r.spec = checker.stats();
  r.violations = engine.violations();
  r.reports = checker.reports();
  checker.detach();
  return r;
}

void register_benchmark(Benchmark b) {
  for (const Benchmark& e : registry()) {
    if (e.name == b.name) return;  // idempotent
  }
  registry().push_back(std::move(b));
}

const std::vector<Benchmark>& benchmarks() { return registry(); }

const Benchmark* find_benchmark(const std::string& name) {
  for (const Benchmark& b : registry()) {
    if (b.name == name) return &b;
  }
  return nullptr;
}

RunResult run_benchmark(const Benchmark& b, const RunOptions& opts) {
  RunResult total;
  for (const mc::TestFn& t : b.tests) {
    RunResult r = run_with_spec(t, opts);
    total.mc.executions += r.mc.executions;
    total.mc.feasible += r.mc.feasible;
    total.mc.pruned_bound += r.mc.pruned_bound;
    total.mc.pruned_livelock += r.mc.pruned_livelock;
    total.mc.builtin_violation_execs += r.mc.builtin_violation_execs;
    total.mc.violations_total += r.mc.violations_total;
    total.mc.seconds += r.mc.seconds;
    total.mc.hit_execution_cap |= r.mc.hit_execution_cap;
    total.spec.executions_checked += r.spec.executions_checked;
    total.spec.inadmissible_execs += r.spec.inadmissible_execs;
    total.spec.assertion_violation_execs += r.spec.assertion_violation_execs;
    total.spec.histories_checked += r.spec.histories_checked;
    total.spec.justification_checks += r.spec.justification_checks;
    total.spec.history_cap_hit |= r.spec.history_cap_hit;
    total.spec.r_cycle_seen |= r.spec.r_cycle_seen;
    for (auto& v : r.violations) total.violations.push_back(std::move(v));
    for (auto& s : r.reports) total.reports.push_back(std::move(s));
  }
  return total;
}

const char* to_string(Detection d) {
  switch (d) {
    case Detection::kNone: return "undetected";
    case Detection::kBuiltin: return "built-in";
    case Detection::kAdmissibility: return "admissibility";
    case Detection::kAssertion: return "assertion";
  }
  return "?";
}

InjectionSummary run_injection_experiment(const Benchmark& b,
                                          const RunOptions& opts) {
  InjectionSummary sum;
  sum.benchmark = b.name;
  for (const inject::Site& site : inject::sites_for(b.name)) {
    if (!site.injectable()) continue;
    inject::inject(site.id);
    RunResult r = run_benchmark(b, opts);
    inject::clear_injection();

    InjectionOutcome out;
    out.site = site;
    // Paper's classification priority (Figure 8 columns).
    if (r.detected_builtin()) {
      out.how = Detection::kBuiltin;
      ++sum.builtin;
    } else if (r.detected_admissibility()) {
      out.how = Detection::kAdmissibility;
      ++sum.admissibility;
    } else if (r.detected_assertion()) {
      out.how = Detection::kAssertion;
      ++sum.assertion;
    } else {
      out.how = Detection::kNone;
      ++sum.undetected;
    }
    ++sum.injections;
    sum.outcomes.push_back(std::move(out));
  }
  return sum;
}

}  // namespace cds::harness
