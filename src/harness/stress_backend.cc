#include "harness/stress_backend.h"

#include <sched.h>

#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "spec/observed.h"
#include "support/rng.h"

namespace cds::harness {

namespace {

// Thread id within the current iteration (0 = the iteration's root, i.e.
// the runner thread driving run_iteration).
thread_local int t_tid = 0;

[[noreturn]] void stress_fatal(const char* msg) {
  std::fprintf(stderr, "cds::harness stress fatal: %s\n", msg);
  std::abort();
}

std::memory_order std_load_order(mc::MemoryOrder o) {
  switch (mc::for_load(o)) {
    case mc::MemoryOrder::relaxed: return std::memory_order_relaxed;
    case mc::MemoryOrder::acquire: return std::memory_order_acquire;
    case mc::MemoryOrder::seq_cst: return std::memory_order_seq_cst;
    default: return std::memory_order_seq_cst;
  }
}

std::memory_order std_store_order(mc::MemoryOrder o) {
  switch (mc::for_store(o)) {
    case mc::MemoryOrder::relaxed: return std::memory_order_relaxed;
    case mc::MemoryOrder::release: return std::memory_order_release;
    case mc::MemoryOrder::seq_cst: return std::memory_order_seq_cst;
    default: return std::memory_order_seq_cst;
  }
}

std::memory_order std_rmw_order(mc::MemoryOrder o) {
  switch (o) {
    case mc::MemoryOrder::relaxed: return std::memory_order_relaxed;
    case mc::MemoryOrder::acquire: return std::memory_order_acquire;
    case mc::MemoryOrder::release: return std::memory_order_release;
    case mc::MemoryOrder::acq_rel: return std::memory_order_acq_rel;
    case mc::MemoryOrder::seq_cst: return std::memory_order_seq_cst;
  }
  return std::memory_order_seq_cst;
}

}  // namespace

StressBackend::StressBackend(const StressOptions& opts)
    : opts_(opts),
      slots_(opts.max_locations),
      names_(opts.max_locations, nullptr),
      pt_(static_cast<std::size_t>(opts.max_threads)),
      threads_(static_cast<std::size_t>(
          opts.max_threads > 0 ? opts.max_threads - 1 : 0)) {}

StressBackend::~StressBackend() {
  // Defensive: never destroy with live iteration threads.
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void StressBackend::preempt(int tid) {
  PerThread& pt = pt_[static_cast<std::size_t>(tid)];
  ++pt.op_count;
  // Pure function of (iteration seed, tid, op index): replays of the same
  // seed perturb the same program points even if the hardware interleaves
  // the threads differently between runs.
  std::uint64_t h = support::derive_seed(
      support::derive_seed(iter_seed_, static_cast<std::uint64_t>(tid) + 1),
      pt.op_count);
  auto d = static_cast<std::uint8_t>(h & 3u);
  pt.decisions.push_back(d);
  switch (d) {
    case 0:
      break;
    case 1:
      sched_yield();
      break;
    case 2:
      sched_yield();
      sched_yield();
      break;
    case 3:
      // Short backoff: long enough to let a racing thread slip in, short
      // enough to keep iteration throughput high.
      for (volatile int spin = 0; spin < 64; ++spin) {
      }
      break;
  }
}

std::uint32_t StressBackend::new_location(const char* name, bool /*initialized*/,
                                          std::uint64_t init_value) {
  // Lock-free on purpose: a mutex here would add synchronization edges
  // between unrelated construction sites and mask weak behaviors.
  std::uint32_t i = nloc_.fetch_add(1, std::memory_order_acq_rel);
  if (i >= opts_.max_locations) stress_fatal("too many atomic locations");
  slots_[i].store(init_value, std::memory_order_release);
  names_[i] = name;
  return i;
}

std::uint64_t StressBackend::atomic_load(std::uint32_t loc, mc::MemoryOrder o) {
  int tid = t_tid;
  preempt(tid);
  PerThread& pt = pt_[static_cast<std::size_t>(tid)];
  pt.last_rt_begin = next_rt_ticket();
  std::uint64_t v = slot(loc).load(std_load_order(o));
  pt.last_rt_end = next_rt_ticket();
  return v;
}

void StressBackend::atomic_store(std::uint32_t loc, std::uint64_t v,
                                 mc::MemoryOrder o) {
  int tid = t_tid;
  preempt(tid);
  PerThread& pt = pt_[static_cast<std::size_t>(tid)];
  pt.last_rt_begin = next_rt_ticket();
  slot(loc).store(v, std_store_order(o));
  pt.last_rt_end = next_rt_ticket();
}

std::uint64_t StressBackend::atomic_rmw(std::uint32_t loc, mc::MemoryOrder o,
                                        std::uint64_t (*op)(std::uint64_t,
                                                            std::uint64_t),
                                        std::uint64_t operand) {
  int tid = t_tid;
  preempt(tid);
  PerThread& pt = pt_[static_cast<std::size_t>(tid)];
  pt.last_rt_begin = next_rt_ticket();
  std::atomic<std::uint64_t>& s = slot(loc);
  std::uint64_t cur = s.load(std::memory_order_relaxed);
  while (!s.compare_exchange_weak(cur, op(cur, operand), std_rmw_order(o),
                                  std::memory_order_relaxed)) {
  }
  pt.last_rt_end = next_rt_ticket();
  return cur;
}

bool StressBackend::atomic_cas(std::uint32_t loc, std::uint64_t& expected,
                               std::uint64_t desired, mc::MemoryOrder success,
                               mc::MemoryOrder failure) {
  int tid = t_tid;
  preempt(tid);
  PerThread& pt = pt_[static_cast<std::size_t>(tid)];
  pt.last_rt_begin = next_rt_ticket();
  bool ok = slot(loc).compare_exchange_strong(
      expected, desired, std_rmw_order(success), std_load_order(failure));
  pt.last_rt_end = next_rt_ticket();
  return ok;
}

std::uint64_t StressBackend::atomic_exchange(std::uint32_t loc, std::uint64_t v,
                                             mc::MemoryOrder o) {
  int tid = t_tid;
  preempt(tid);
  PerThread& pt = pt_[static_cast<std::size_t>(tid)];
  pt.last_rt_begin = next_rt_ticket();
  std::uint64_t old = slot(loc).exchange(v, std_rmw_order(o));
  pt.last_rt_end = next_rt_ticket();
  return old;
}

void StressBackend::atomic_thread_fence(mc::MemoryOrder o) {
  int tid = t_tid;
  preempt(tid);
  PerThread& pt = pt_[static_cast<std::size_t>(tid)];
  pt.last_rt_begin = next_rt_ticket();
  if (o != mc::MemoryOrder::relaxed) std::atomic_thread_fence(std_rmw_order(o));
  pt.last_rt_end = next_rt_ticket();
}

void StressBackend::plain_read(mc::RaceShadow& /*s*/) {
  // Intentionally bare: the surrounding Var<T> access is a real plain
  // memory access, so a TSan build sees the genuine race. Updating the
  // FastTrack shadow here would add cross-thread synchronization through
  // this backend and hide exactly the bug being hunted.
}

void StressBackend::plain_write(mc::RaceShadow& /*s*/) {}

void StressBackend::mutex_lock(mc::MutexState& m) {
  int tid = t_tid;
  preempt(tid);
  // MutexState is the model checker's scheduler-aware state; here only the
  // holder field is used, as a real spinlock. The acquisition must refresh
  // the real-time bracket: a spec ordering point committed right after
  // lock() (e.g. a lock-ordered get) snapshots last_rt_*, and a stale
  // bracket from a pre-lock optimistic read would place the call before
  // writers that in fact completed before the lock was granted.
  PerThread& pt = pt_[static_cast<std::size_t>(tid)];
  pt.last_rt_begin = next_rt_ticket();
  std::atomic_ref<std::int32_t> holder(m.holder);
  std::int32_t expect = -1;
  while (!holder.compare_exchange_weak(expect, tid, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
    expect = -1;
    sched_yield();
  }
  pt.last_rt_end = next_rt_ticket();
}

void StressBackend::mutex_unlock(mc::MutexState& m) {
  std::atomic_ref<std::int32_t> holder(m.holder);
  if (holder.load(std::memory_order_relaxed) != t_tid) {
    report_violation(mc::ViolationKind::kUserAssertion,
                     "mutex unlocked by a thread that does not hold it");
    return;
  }
  PerThread& pt = pt_[static_cast<std::size_t>(t_tid)];
  pt.last_rt_begin = next_rt_ticket();
  holder.store(-1, std::memory_order_release);
  pt.last_rt_end = next_rt_ticket();
}

int StressBackend::spawn_thread(std::function<void()> body) {
  int tid;
  {
    std::lock_guard<std::mutex> lock(spawn_mu_);
    tid = next_tid_++;
    if (tid >= opts_.max_threads) stress_fatal("too many stress threads");
  }
  threads_[static_cast<std::size_t>(tid - 1)] =
      std::thread([this, tid, body = std::move(body)] {
        Backend* prev = Backend::current();
        int prev_tid = t_tid;
        Backend::set_current(this);
        t_tid = tid;
        body();
        t_tid = prev_tid;
        Backend::set_current(prev);
      });
  return tid;
}

void StressBackend::join_thread(int tid) {
  assert(tid >= 1 && tid < next_tid_);
  std::thread& t = threads_[static_cast<std::size_t>(tid - 1)];
  if (t.joinable()) t.join();
}

void StressBackend::yield_thread() {
  preempt(t_tid);
  sched_yield();
}

int StressBackend::current_thread() const { return t_tid; }

void* StressBackend::allocate(std::size_t bytes, std::size_t align) {
  std::lock_guard<std::mutex> lock(arena_mu_);
  return arena_.allocate(bytes, align);
}

void StressBackend::report_violation(mc::ViolationKind k, std::string detail) {
  std::lock_guard<std::mutex> lock(violation_mu_);
  iter_violations_.emplace_back(k, std::move(detail));
}

spec::OPEvent StressBackend::snapshot_op(int tid) const {
  const PerThread& pt = pt_[static_cast<std::size_t>(tid)];
  spec::OPEvent ev;
  ev.thread = tid;
  // Per-thread op index: preserves program order within a thread via
  // hb_before's same-thread clause. The vector clock stays empty and
  // sc_index stays 0 — cross-thread ordering comes only from the
  // real-time bracket.
  ev.pos = static_cast<std::uint32_t>(pt.op_count);
  ev.rt_begin = pt.last_rt_begin;
  ev.rt_end = pt.last_rt_end;
  return ev;
}

void StressBackend::run_iteration(const mc::TestFn& test,
                                  std::uint64_t iter_seed) {
  iter_seed_ = iter_seed;
  nloc_.store(0, std::memory_order_relaxed);
  rt_ticket_.store(0, std::memory_order_relaxed);
  next_tid_ = 1;
  for (PerThread& pt : pt_) pt.reset();
  iter_violations_.clear();
  arena_.reset();
  recorder_.begin_execution(
      opts_.check_spec ? static_cast<const Backend*>(this) : nullptr);

  Backend* prev = Backend::current();
  int prev_tid = t_tid;
  Backend::set_current(this);
  t_tid = 0;
  mc::Exec ex(*this);
  test(ex);
  // Contract: the body joined its threads; sweep up any it forgot so the
  // iteration's state is quiescent before callers read it.
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  t_tid = prev_tid;
  Backend::set_current(prev);
}

std::vector<mc::Choice> StressBackend::decision_trail() const {
  std::vector<mc::Choice> out;
  for (int tid = 0; tid < next_tid_; ++tid) {
    for (std::uint8_t d : pt_[static_cast<std::size_t>(tid)].decisions) {
      out.push_back(mc::Choice{mc::ChoiceKind::kSchedule, d, 4});
    }
  }
  return out;
}

namespace {

std::uint64_t mono_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Everything a runner touches lives here, on the heap, shared with every
// runner thread: a runner the watchdog abandoned may wake up long after
// run_stress returned and must find its world still valid, notice the
// abandoned flag, and exit without merging anything.
struct StressRunCtx {
  StressOptions opts;
  std::function<mc::TestFn(int)> make_test;
  StressIterationHook hook;
  std::atomic<std::uint64_t> next{0};
  std::atomic<std::uint64_t> done{0};
  std::atomic<bool> stop{false};
  std::mutex merge_mu;
  StressRunResult res;
  // Watchdog slots, one per runner. iter_plus1 is 0 between iterations;
  // seed and start_ns are published before it (release) so a nonzero
  // read (acquire) observes a consistent triple.
  std::vector<std::atomic<std::uint64_t>> iter_plus1;
  std::vector<std::atomic<std::uint64_t>> iter_start_ns;
  std::vector<std::atomic<std::uint64_t>> iter_seed;
  std::vector<std::atomic<bool>> abandoned;
  std::vector<std::atomic<bool>> exited;

  StressRunCtx(int runners, const StressOptions& o,
               std::function<mc::TestFn(int)> mk, StressIterationHook h)
      : opts(o),
        make_test(std::move(mk)),
        hook(std::move(h)),
        iter_plus1(static_cast<std::size_t>(runners)),
        iter_start_ns(static_cast<std::size_t>(runners)),
        iter_seed(static_cast<std::size_t>(runners)),
        abandoned(static_cast<std::size_t>(runners)),
        exited(static_cast<std::size_t>(runners)) {}
};

void stress_runner(const std::shared_ptr<StressRunCtx>& ctx, int r) {
  const auto rr = static_cast<std::size_t>(r);
  mc::TestFn test = ctx->make_test(r);
  StressBackend be(ctx->opts);
  for (;;) {
    if (ctx->stop.load(std::memory_order_relaxed)) break;
    std::uint64_t it = ctx->next.fetch_add(1, std::memory_order_relaxed);
    if (it >= ctx->opts.iters) break;
    std::uint64_t iseed = support::derive_seed(ctx->opts.seed, it);
    ctx->iter_seed[rr].store(iseed, std::memory_order_relaxed);
    ctx->iter_start_ns[rr].store(mono_ns(), std::memory_order_relaxed);
    ctx->iter_plus1[rr].store(it + 1, std::memory_order_release);
    be.run_iteration(test, iseed);
    ctx->iter_plus1[rr].store(0, std::memory_order_release);
    if (ctx->abandoned[rr].load(std::memory_order_acquire)) {
      // The watchdog gave up on this iteration while it was running;
      // its outcome was already recorded as a hang, so merging it now
      // would double-count — drop it and leave quietly.
      ctx->exited[rr].store(true, std::memory_order_release);
      return;
    }

    std::uint64_t oc_histories = 0;
    bool oc_capped = false;
    if (ctx->opts.check_spec) {
      spec::ObservedCheckResult oc = spec::check_observed_calls(
          be.iteration_recorder().calls(), ctx->opts.max_histories);
      oc_histories = oc.histories_checked;
      oc_capped = oc.capped;
      if (oc.violation) {
        be.report_violation(mc::ViolationKind::kSpecAssertion,
                            std::move(oc.detail));
      }
    }
    ctx->done.fetch_add(1, std::memory_order_relaxed);

    const auto& vs = be.iteration_violations();
    {
      std::lock_guard<std::mutex> lock(ctx->merge_mu);
      StressRunResult& res = ctx->res;
      res.stats.spec_histories_checked += oc_histories;
      if (oc_capped) ++res.stats.spec_cap_hits;
      res.stats.violations_total += vs.size();
      for (const auto& kv : vs) {
        if (res.violations.size() < StressRunResult::kMaxRecorded) {
          StressViolation v;
          v.kind = kv.first;
          v.detail = kv.second;
          v.iteration = it;
          v.iter_seed = iseed;
          v.decisions = be.decision_trail();
          res.violations.push_back(std::move(v));
        }
      }
      if (ctx->hook) ctx->hook(r, be);
    }
    if (!vs.empty() && ctx->opts.stop_on_first_violation) {
      ctx->stop.store(true, std::memory_order_relaxed);
    }
  }
  ctx->exited[rr].store(true, std::memory_order_release);
}

}  // namespace

StressRunResult run_stress_per_runner(
    const std::function<mc::TestFn(int r)>& make_test,
    const StressOptions& opts, const StressIterationHook& hook) {
  const int runners = opts.threads_mult > 1 ? opts.threads_mult : 1;
  auto ctx = std::make_shared<StressRunCtx>(runners, opts, make_test, hook);
  const auto t0 = std::chrono::steady_clock::now();

  if (opts.iteration_timeout_seconds <= 0) {
    // No watchdog: the pre-watchdog join-unconditionally behavior (a
    // deadlocked test body blocks forever).
    if (runners == 1) {
      stress_runner(ctx, 0);
    } else {
      std::vector<std::thread> rs;
      rs.reserve(static_cast<std::size_t>(runners));
      for (int r = 0; r < runners; ++r) rs.emplace_back(stress_runner, ctx, r);
      for (std::thread& t : rs) t.join();
    }
  } else {
    // Watchdog: runners always get their own threads (so even a single
    // runner can be abandoned), and this thread polls for iterations
    // stuck past the timeout. An abandoned runner is detached — a
    // deadlocked std::thread cannot be killed, so it leaks until
    // process exit; StressRunCtx is heap-shared exactly so that leak is
    // only the thread, never a dangling reference.
    const auto timeout_ns =
        static_cast<std::uint64_t>(opts.iteration_timeout_seconds * 1e9);
    std::vector<std::thread> rs;
    rs.reserve(static_cast<std::size_t>(runners));
    for (int r = 0; r < runners; ++r) rs.emplace_back(stress_runner, ctx, r);
    std::vector<bool> joined(static_cast<std::size_t>(runners), false);
    std::vector<bool> detached(static_cast<std::size_t>(runners), false);
    for (;;) {
      bool outstanding = false;
      for (std::size_t r = 0; r < rs.size(); ++r) {
        if (joined[r] || detached[r]) continue;
        if (ctx->exited[r].load(std::memory_order_acquire)) {
          rs[r].join();
          joined[r] = true;
          continue;
        }
        const std::uint64_t ip =
            ctx->iter_plus1[r].load(std::memory_order_acquire);
        if (ip != 0) {
          const std::uint64_t started =
              ctx->iter_start_ns[r].load(std::memory_order_relaxed);
          const std::uint64_t now = mono_ns();
          if (now > started && now - started > timeout_ns) {
            ctx->abandoned[r].store(true, std::memory_order_release);
            ctx->stop.store(true, std::memory_order_relaxed);
            const std::uint64_t iseed =
                ctx->iter_seed[r].load(std::memory_order_relaxed);
            std::string diag =
                "stress runner " + std::to_string(r) +
                " stuck in iteration " + std::to_string(ip - 1) + " (seed " +
                std::to_string(iseed) + ") past the " +
                std::to_string(opts.iteration_timeout_seconds) +
                "s watchdog; thread abandoned, verdict inconclusive";
            std::fprintf(stderr, "cds::harness: %s\n", diag.c_str());
            {
              std::lock_guard<std::mutex> lock(ctx->merge_mu);
              ++ctx->res.stats.hung_iterations;
              ctx->res.hangs.push_back(std::move(diag));
            }
            rs[r].detach();
            detached[r] = true;
            continue;
          }
        }
        outstanding = true;
      }
      if (!outstanding) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  std::lock_guard<std::mutex> lock(ctx->merge_mu);
  StressRunResult res = ctx->res;
  res.stats.iterations = ctx->done.load(std::memory_order_relaxed);
  res.stats.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  res.verdict = res.stats.violations_total > 0 ? mc::Verdict::kFalsified
                                               : mc::Verdict::kInconclusive;
  return res;
}

StressRunResult run_stress(const mc::TestFn& test, const StressOptions& opts,
                           const StressIterationHook& hook) {
  return run_stress_per_runner([&test](int) { return test; }, opts, hook);
}

}  // namespace cds::harness
