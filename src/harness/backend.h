// Backend-neutral execution layer for test bodies.
//
// A test body (a `mc::TestFn` over the `mc::Exec` facade) never talks to a
// concrete engine: every visible operation of the modeled types —
// `mc::Atomic`, `mc::Var`, `mc::Mutex`, `mc::yield`, `mc::alloc` — routes
// through the thread-local `Backend::current()`. Two backends implement the
// interface:
//
//   - `mc::Engine` (mc/engine.h): the exhaustive stateless model checker.
//     Sound and complete up to its configured bounds; the only backend that
//     can return a verified verdict.
//   - `harness::StressBackend` (harness/stress_backend.h): real
//     `std::thread`s with seeded randomized preemption points. Unsound by
//     construction (it observes a sample of hardware schedules), so it can
//     only falsify; useful for wall-clock torture runs, TSan builds, and as
//     an independent cross-check of the model checker itself.
//
// The interface mirrors the engine's modeled-code API verbatim so the model
// checker pays nothing for the indirection beyond a virtual dispatch that
// was previously a direct call through a global pointer.
#ifndef CDS_HARNESS_BACKEND_H
#define CDS_HARNESS_BACKEND_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "mc/memory_order.h"
#include "mc/violation.h"
#include "spec/call.h"

namespace cds::mc {
struct RaceShadow;
struct MutexState;
}  // namespace cds::mc

namespace cds::spec {
class Recorder;
}  // namespace cds::spec

namespace cds::harness {

class Backend {
 public:
  virtual ~Backend() = default;

  // Backend driving the calling thread; null outside a live iteration /
  // execution. Thread-local: under the stress backend every real thread of
  // an iteration sees the same Backend instance, under the model checker
  // all fibers share the engine's OS thread.
  [[nodiscard]] static Backend* current();
  static void set_current(Backend* b);

  // Stable identifier ("model", "stress"): used for trail headers and
  // diagnostics.
  [[nodiscard]] virtual const char* backend_name() const = 0;

  // --- atomic-op hooks (the modeled-code API) ---------------------------
  virtual std::uint32_t new_location(const char* name, bool initialized,
                                     std::uint64_t init_value) = 0;
  virtual std::uint64_t atomic_load(std::uint32_t loc, mc::MemoryOrder o) = 0;
  virtual void atomic_store(std::uint32_t loc, std::uint64_t v,
                            mc::MemoryOrder o) = 0;
  // Generic RMW: new_value = op(old_value, operand); returns old value.
  virtual std::uint64_t atomic_rmw(std::uint32_t loc, mc::MemoryOrder o,
                                   std::uint64_t (*op)(std::uint64_t,
                                                       std::uint64_t),
                                   std::uint64_t operand) = 0;
  virtual bool atomic_cas(std::uint32_t loc, std::uint64_t& expected,
                          std::uint64_t desired, mc::MemoryOrder success,
                          mc::MemoryOrder failure) = 0;
  virtual std::uint64_t atomic_exchange(std::uint32_t loc, std::uint64_t v,
                                        mc::MemoryOrder o) = 0;
  virtual void atomic_thread_fence(mc::MemoryOrder o) = 0;

  virtual void plain_read(mc::RaceShadow& s) = 0;
  virtual void plain_write(mc::RaceShadow& s) = 0;

  virtual void mutex_lock(mc::MutexState& m) = 0;
  virtual void mutex_unlock(mc::MutexState& m) = 0;

  // --- thread lifecycle -------------------------------------------------
  virtual int spawn_thread(std::function<void()> body) = 0;
  virtual void join_thread(int tid) = 0;
  virtual void yield_thread() = 0;
  [[nodiscard]] virtual int current_thread() const = 0;

  // Per-iteration allocation (mc::Exec::make / mc::alloc); memory is
  // recycled between iterations, destructors never run.
  virtual void* allocate(std::size_t bytes, std::size_t align) = 0;

  // Reporting channel shared by built-in checks and the spec layer.
  virtual void report_violation(mc::ViolationKind k, std::string detail) = 0;

  // --- behavior-set extraction (differential oracles) -------------------
  // Valid between iterations / from an execution listener: the locations
  // of the finished iteration and the final value of each.
  [[nodiscard]] virtual std::uint32_t location_count() const = 0;
  [[nodiscard]] virtual std::uint64_t location_final_value(
      std::uint32_t loc) const = 0;

  // --- specification layer ----------------------------------------------
  // Recorder armed for this backend's current iteration; null when spec
  // recording is off.
  [[nodiscard]] virtual spec::Recorder* recorder() = 0;
  // Ordering-point snapshot of thread `tid`'s most recent visible
  // operation. The model checker fills the happens-before clock and SC
  // index from its per-thread memory-model state; the stress backend fills
  // the real-time interval (`rt_begin`/`rt_end`) instead.
  [[nodiscard]] virtual spec::OPEvent snapshot_op(int tid) const = 0;
};

}  // namespace cds::harness

#endif  // CDS_HARNESS_BACKEND_H
