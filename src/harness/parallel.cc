#include "harness/parallel.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <map>
#include <utility>
#include <vector>

#include "dist/journal.h"
#include "harness/shard_result.h"
#include "mc/shard.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/stat.h>
#include <sys/types.h>
#endif

namespace cds::harness {

namespace {

bool ensure_dir(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  if (mkdir(path.c_str(), 0777) == 0 || errno == EEXIST) return true;
  return false;
#else
  (void)path;
  return false;
#endif
}

// One planned shard with a stable global index (test order, then unit
// order within the test) — the identity journal records refer to, so a
// resumed run maps journaled outcomes back without ambiguity.
struct PlannedShard {
  std::size_t test = 0;
  std::size_t unit = 0;   // index within its test's plan
  std::size_t count = 0;  // its test's shard count
  ShardUnit su;
  enum class St { kPending, kDone, kCrashed };
  St st = St::kPending;
  std::string text;  // shard-result v3 text, valid when kDone
};

}  // namespace

ParallelRunResult run_benchmark_parallel(const Benchmark& b,
                                         const RunOptions& opts,
                                         const ParallelOptions& par) {
  ParallelRunResult pr;
  pr.jobs = std::max(1, par.jobs);
  RunResult& total = pr.merged;
  total.mc.seed = opts.engine.seed;
  total.mc.exhausted = true;
  const std::size_t max_shards =
      par.max_shards != 0 ? par.max_shards
                          : static_cast<std::size_t>(pr.jobs) * 4;

  if (!par.spool_dir.empty() && !ensure_dir(par.spool_dir)) {
    std::fprintf(stderr,
                 "cds::harness: cannot create spool dir '%s'; spooling off\n",
                 par.spool_dir.c_str());
  }

  // Plan every test upfront so shard indices are global and stable.
  std::vector<PlannedShard> all;
  for (std::size_t i = 0; i < b.tests.size(); ++i) {
    mc::Config pcfg = opts.engine;
    pcfg.test_name = b.name + "#" + std::to_string(i);
    pcfg.test_index = static_cast<std::uint32_t>(i);
    mc::ShardPlan plan = mc::enumerate_shard_prefixes(
        pcfg, b.tests[i], par.shard_depth, max_shards);
    pr.probe_executions += plan.probe_executions;
    const std::size_t shard_count = plan.prefixes.size();
    for (std::size_t u = 0; u < shard_count; ++u) {
      PlannedShard ps;
      ps.test = i;
      ps.unit = u;
      ps.count = shard_count;
      ps.su = make_shard_unit(opts, i, std::move(plan.prefixes[u]), u,
                              shard_count);
      all.push_back(std::move(ps));
    }
  }
  pr.shards = all.size();

  // ---- Durability: journal replay (resume) and the write-ahead log ----
  // Same file format and discipline as the distributed coordinator; the
  // fork pool never preempts, so replay here is a straight result map.
  dist::JournalWriter journal;
  std::uint64_t epoch = 0;
  if (!par.journal_path.empty()) {
    std::vector<ShardUnit> planned;
    planned.reserve(all.size());
    for (const PlannedShard& ps : all) planned.push_back(ps.su);
    const std::uint32_t plan_hash = dist::journal_plan_hash(planned);
    const std::uint32_t fp = dist::journal_config_fingerprint(opts.engine);
    epoch = 1;
    if (par.resume) {
      dist::JournalReplay rep;
      std::string jerr;
      if (!dist::load_journal(par.journal_path, &rep, &jerr)) {
        std::fprintf(stderr, "cds::harness: %s; starting fresh\n",
                     jerr.c_str());
      }
      pr.journal_quarantined_bytes = rep.quarantined_bytes;
      if (!rep.quarantine_note.empty()) {
        std::fprintf(stderr, "cds::harness: %s\n",
                     rep.quarantine_note.c_str());
      }
      const dist::JournalRecord* hdr = nullptr;
      for (const dist::JournalRecord& r : rep.records) {
        if (r.kind == dist::JournalRecord::Kind::kRun) {
          hdr = &r;
          break;
        }
      }
      if (hdr != nullptr) {
        if (hdr->bench != b.name || hdr->fingerprint != fp ||
            hdr->plan_hash != plan_hash || hdr->shards != all.size()) {
          pr.resume_error =
              "journal '" + par.journal_path + "' records a different " +
              (hdr->bench != b.name
                   ? "benchmark ('" + hdr->bench + "')"
                   : hdr->fingerprint != fp ? std::string("config fingerprint")
                                            : std::string("shard plan")) +
              "; refusing to merge incompatible shards (delete the journal "
              "or rerun with the original parameters)";
          total.verdict = mc::Verdict::kInconclusive;
          total.mc.verdict = total.verdict;
          return pr;
        }
        pr.resumed = true;
        epoch = rep.last_epoch + 1;
        for (const dist::JournalRecord& r : rep.records) {
          const auto sidx = static_cast<std::size_t>(r.shard);
          if (sidx >= all.size()) continue;
          PlannedShard& ps = all[sidx];
          if (ps.st != PlannedShard::St::kPending) continue;
          if (r.kind == dist::JournalRecord::Kind::kResult) {
            ShardResult sr;
            std::string why;
            if (!parse_shard_result(r.payload, &sr, &why) ||
                sr.stats.preempted) {
              std::fprintf(stderr,
                           "cds::harness: journaled result for shard %zu "
                           "does not parse (%s); recomputing\n",
                           sidx, why.c_str());
              continue;
            }
            ps.st = PlannedShard::St::kDone;
            ps.text = r.payload;
            ++pr.replayed_shards;
          } else if (r.kind == dist::JournalRecord::Kind::kFailed) {
            // The crashed incarnation recorded this worker death as the
            // shard's final outcome; replay preserves it.
            ps.st = PlannedShard::St::kCrashed;
          }
        }
      }
    }
    std::string jerr;
    if (!journal.open(par.journal_path, /*truncate=*/!pr.resumed, &jerr)) {
      std::fprintf(stderr, "cds::harness: %s; continuing without durability\n",
                   jerr.c_str());
    } else {
      journal.set_chaos(par.coord_chaos);
      dist::JournalRecord run;
      run.kind = dist::JournalRecord::Kind::kRun;
      run.epoch = epoch;
      run.shards = all.size();
      run.plan_hash = plan_hash;
      run.fingerprint = fp;
      run.bench = b.name;
      if (!journal.append(run, &jerr)) {
        std::fprintf(stderr,
                     "cds::harness: %s; continuing without durability\n",
                     jerr.c_str());
        journal.close_file();
      }
    }
  }
  pr.epoch = epoch;

  // Coordinator-side observability: per-worker busy time / unit counts and
  // aggregate queue wait. These are wall-clock and topology facts, so they
  // live in gauges/timers, never in the bit-identical counter set.
  std::map<int, std::pair<double, std::uint64_t>> worker_busy;  // w -> {s, units}
  double queue_wait_seconds = 0.0;
  double span_base = 0.0;  // offsets each test's fork_map clock in spans

  for (std::size_t i = 0; i < b.tests.size(); ++i) {
    // Shards this test still owes (everything, on a fresh run).
    std::vector<std::size_t> pending;  // global indices
    for (std::size_t g = 0; g < all.size(); ++g) {
      if (all[g].test == i && all[g].st == PlannedShard::St::kPending) {
        pending.push_back(g);
      }
    }

    double test_end = 0.0;
    if (!pending.empty()) {
      mc::ForkMapOptions fm;
      fm.jobs = pr.jobs;
      fm.sigkill_on_unit = -1;
      if (par.sigkill_shard >= 0) {
        // The hook names a within-test shard index; translate it to this
        // fork_map call's unit numbering (a resumed run skips shards, so
        // the two no longer coincide).
        for (std::size_t j = 0; j < pending.size(); ++j) {
          if (all[pending[j]].unit ==
              static_cast<std::size_t>(par.sigkill_shard)) {
            fm.sigkill_on_unit = static_cast<std::ptrdiff_t>(j);
          }
        }
      }
      if (!par.spool_dir.empty()) {
        // Spool files are keyed by fork_map unit index, which shifts as
        // resumed runs shrink the pending list — give each incarnation
        // its own spool subdirectory so stale keys can't mismatch.
        std::string dir = par.spool_dir + "/t" + std::to_string(i);
        if (epoch != 0) dir += ".e" + std::to_string(epoch);
        if (ensure_dir(dir)) fm.spool_dir = dir;
        // A spool entry from an older build passes the CRC footer but not
        // today's wire schema; reuse it only if it parses, else fork_map
        // quarantines it and the unit recomputes.
        fm.accept_spooled = [](const std::string& text, std::string* why) {
          ShardResult sr;
          if (!parse_shard_result(text, &sr, why)) return false;
          if (sr.stats.preempted) {
            if (why) *why = "preempted partial result in spool";
            return false;
          }
          return true;
        };
      }
      if (journal.is_open()) {
        // WAL: each unit outcome is durable the moment the pool reports
        // it, before this function's own bookkeeping consumes it.
        fm.on_result = [&](std::size_t j, const mc::UnitResult& ur) {
          dist::JournalRecord rec;
          rec.shard = pending[j];
          rec.attempt = 0;  // fork-pool units run under no lease
          if (ur.ran) {
            // Journal only payloads replay will trust; a corrupt one is
            // recomputed on resume, same as it crashes below.
            ShardResult sr;
            std::string why;
            if (!parse_shard_result(ur.text, &sr, &why) ||
                sr.stats.preempted) {
              return;
            }
            rec.kind = dist::JournalRecord::Kind::kResult;
            rec.payload = ur.text;
          } else {
            rec.kind = dist::JournalRecord::Kind::kFailed;
            rec.payload = "fork-pool worker died";
          }
          std::string jerr;
          if (!journal.append(rec, &jerr)) {
            std::fprintf(stderr,
                         "cds::harness: journal append failed (%s); "
                         "continuing without durability\n",
                         jerr.c_str());
          }
        };
      }

      std::vector<mc::UnitResult> results = mc::fork_map(
          pending.size(),
          [&](std::size_t j) {
            return run_shard_unit(b, opts, all[pending[j]].su);
          },
          fm);

      for (std::size_t j = 0; j < pending.size(); ++j) {
        mc::UnitResult& ur = results[j];
        PlannedShard& ps = all[pending[j]];
        if (ur.ran && !ur.from_spool &&
            ur.done_seconds > ur.assigned_seconds) {
          ShardSpan span;
          span.name = b.name + "#" + std::to_string(i) + " shard " +
                      std::to_string(ps.unit + 1) + "/" +
                      std::to_string(ps.count);
          span.worker = ur.worker;
          span.start_seconds = span_base + ur.assigned_seconds;
          span.duration_seconds = ur.done_seconds - ur.assigned_seconds;
          pr.spans.push_back(std::move(span));
          auto& [busy, units] = worker_busy[ur.worker];
          busy += ur.done_seconds - ur.assigned_seconds;
          ++units;
          queue_wait_seconds += ur.assigned_seconds;
          if (ur.done_seconds > test_end) test_end = ur.done_seconds;
        }
        if (!ur.ran) {
          ps.st = PlannedShard::St::kCrashed;
          continue;
        }
        if (ur.from_spool) ++pr.spooled_shards;
        ps.st = PlannedShard::St::kDone;
        ps.text = std::move(ur.text);
      }
    }

    // Merge this test's shards in shard order — shard order is DFS
    // order, so the first falsifying shard's violations lead the merged
    // list and the surfaced witness is the one serial DFS would have
    // found first. Replayed and freshly computed shards merge from the
    // same representation (result text), making resume transparent.
    bool test_exhausted = true;
    bool test_falsified = false;
    std::uint64_t test_fatals = 0;
    std::uint64_t crashed_here = 0;
    std::uint64_t recorded_here = 0;
    for (std::size_t g = 0; g < all.size(); ++g) {
      PlannedShard& ps = all[g];
      if (ps.test != i) continue;
      if (ps.st == PlannedShard::St::kCrashed) {
        ++crashed_here;
        test_exhausted = false;
        continue;
      }
      ShardResult sr;
      std::string err;
      // Preempted partial results are a distributed-coordinator concept;
      // fork_map workers run with no stop_request, so one here means the
      // spool was fed by a different transport — recompute as crashed.
      if (!parse_shard_result(ps.text, &sr, &err) || sr.stats.preempted) {
        std::fprintf(stderr,
                     "cds::harness: shard %zu of test %zu returned a "
                     "corrupt result (%s); treating as crashed\n",
                     ps.unit, i, err.c_str());
        ++crashed_here;
        test_exhausted = false;
        continue;
      }
      mc::merge_shard_stats(total.mc, sr.stats);
      test_exhausted = test_exhausted && sr.stats.exhausted;
      test_falsified = test_falsified || sr.stats.violations_total > 0;
      test_fatals += sr.stats.engine_fatal_execs;
      total.spec.executions_checked += sr.spec.executions_checked;
      total.spec.inadmissible_execs += sr.spec.inadmissible_execs;
      total.spec.assertion_violation_execs +=
          sr.spec.assertion_violation_execs;
      total.spec.histories_checked += sr.spec.histories_checked;
      total.spec.justification_checks += sr.spec.justification_checks;
      total.spec.history_cap_hit |= sr.spec.history_cap_hit;
      total.spec.r_cycle_seen |= sr.spec.r_cycle_seen;
      total.metrics.merge(sr.metrics);
      // Per-test record cap mirrors the serial engine's: shards arrive in
      // DFS order and each records its DFS-first violations, so the first
      // max_recorded_violations across shards are the same records a
      // serial run keeps.
      for (mc::Violation& v : sr.violations) {
        if (opts.engine.max_recorded_violations != 0 &&
            recorded_here >= opts.engine.max_recorded_violations) {
          break;
        }
        total.violations.push_back(std::move(v));
        ++recorded_here;
      }
      for (std::string& rep : sr.reports) {
        total.reports.push_back(std::move(rep));
      }
    }
    pr.crashed_shards += crashed_here;
    mc::Verdict tv =
        test_falsified
            ? mc::Verdict::kFalsified
            : (test_exhausted && test_fatals == 0 && crashed_here == 0
                   ? mc::Verdict::kVerifiedExhaustive
                   : mc::Verdict::kInconclusive);
    weaken_verdict(total.verdict, tv);
    total.mc.exhausted = total.mc.exhausted && test_exhausted;
    span_base += test_end;
  }
  total.mc.verdict = total.verdict;

  if (journal.is_open()) {
    dist::JournalRecord done;
    done.kind = dist::JournalRecord::Kind::kDone;
    done.verdict = static_cast<std::uint64_t>(total.verdict);
    std::string jerr;
    if (!journal.append(done, &jerr)) {
      std::fprintf(stderr, "cds::harness: %s\n", jerr.c_str());
    }
  }

  obs::Registry& M = total.metrics;
  M.gauge("parallel.jobs").set(static_cast<std::uint64_t>(pr.jobs));
  M.gauge("parallel.shards").set(pr.shards);
  M.gauge("parallel.crashed_shards").set(pr.crashed_shards);
  M.gauge("parallel.spooled_shards").set(pr.spooled_shards);
  M.gauge("parallel.probe_executions").set(pr.probe_executions);
  M.gauge("parallel.epoch").set(pr.epoch);
  M.gauge("parallel.resumed").set(pr.resumed ? 1 : 0);
  M.gauge("parallel.replayed_shards").set(pr.replayed_shards);
  M.gauge("parallel.journal_quarantined_bytes")
      .set(pr.journal_quarantined_bytes);
  if (queue_wait_seconds > 0.0) {
    M.timer("parallel.shard_queue_wait")
        .add_ns(static_cast<std::uint64_t>(queue_wait_seconds * 1e9));
  }
  for (const auto& [w, bu] : worker_busy) {
    const std::string prefix = "parallel.worker" + std::to_string(w);
    M.gauge(prefix + ".units").set(bu.second);
    M.timer(prefix + ".busy")
        .add_ns(static_cast<std::uint64_t>(bu.first * 1e9));
  }
  return pr;
}

}  // namespace cds::harness
