#include "harness/parallel.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <utility>
#include <vector>

#include "mc/shard.h"
#include "mc/trace.h"
#include "support/rng.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/stat.h>
#include <sys/types.h>
#endif

namespace cds::harness {

namespace {

// ---------------------------------------------------------------------------
// Shard-result wire format
// ---------------------------------------------------------------------------
// One unit test's one shard, as produced by a worker process. Line
// oriented; multi-line payloads (violation details, spec reports) are
// escaped onto single lines so the whole message parses line-by-line:
//
//   shard-result v2
//   stats executions=.. feasible=.. ... exhausted=0|1 verdict=0|1|2
//   spec checked=.. inadmissible=.. ... r_cycle=0|1
//   violations <n>
//   v <wire-kind> <exec_index> <test_index> <nchoices> <escaped detail>
//   S 1/2                                  # nchoices trail lines
//   ...
//   reports <n>
//   rep <escaped report>
//   metrics <n>
//   m <obs wire line>                      # see obs::Registry::render_wire
//   end
//
// v2 added the metrics section. Parsing is strict-versioned: stale v1
// spool files are treated as corrupt (shard recomputed or crashed) rather
// than silently merged without metrics.

struct ShardResult {
  mc::ExplorationStats stats;
  spec::SpecChecker::Stats spec;
  obs::Registry metrics;
  std::vector<mc::Violation> violations;
  std::vector<std::string> reports;
};

std::string escape_line(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string unescape_line(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      out += s[i + 1] == 'n' ? '\n' : s[i + 1];
      ++i;
    } else {
      out += s[i];
    }
  }
  return out;
}

std::string render_shard_result(const RunResult& r) {
  const mc::ExplorationStats& m = r.mc;
  std::string s = "shard-result v2\n";
  s += "stats executions=" + std::to_string(m.executions) +
       " feasible=" + std::to_string(m.feasible) +
       " pruned_bound=" + std::to_string(m.pruned_bound) +
       " pruned_livelock=" + std::to_string(m.pruned_livelock) +
       " pruned_redundant=" + std::to_string(m.pruned_redundant) +
       " builtin=" + std::to_string(m.builtin_violation_execs) +
       " fatal=" + std::to_string(m.engine_fatal_execs) +
       " crash=" + std::to_string(m.crash_execs) +
       " violations_total=" + std::to_string(m.violations_total) +
       " sampled=" + std::to_string(m.sampled) +
       " max_depth=" + std::to_string(m.max_trail_depth) +
       " seconds_us=" +
       std::to_string(static_cast<std::uint64_t>(m.seconds * 1e6)) +
       " cap=" + std::to_string(m.hit_execution_cap ? 1 : 0) +
       " stopped=" + std::to_string(m.stopped_early ? 1 : 0) +
       " time=" + std::to_string(m.hit_time_budget ? 1 : 0) +
       " mem=" + std::to_string(m.hit_memory_budget ? 1 : 0) +
       " watchdog=" + std::to_string(m.watchdog_fired ? 1 : 0) +
       " exhausted=" + std::to_string(m.exhausted ? 1 : 0) +
       " verdict=" + std::to_string(static_cast<int>(m.verdict)) + "\n";
  s += "spec checked=" + std::to_string(r.spec.executions_checked) +
       " inadmissible=" + std::to_string(r.spec.inadmissible_execs) +
       " assertions=" + std::to_string(r.spec.assertion_violation_execs) +
       " histories=" + std::to_string(r.spec.histories_checked) +
       " justifications=" + std::to_string(r.spec.justification_checks) +
       " cap_hit=" + std::to_string(r.spec.history_cap_hit ? 1 : 0) +
       " r_cycle=" + std::to_string(r.spec.r_cycle_seen ? 1 : 0) + "\n";
  s += "violations " + std::to_string(r.violations.size()) + "\n";
  for (const mc::Violation& v : r.violations) {
    s += std::string("v ") + mc::wire_name(v.kind) + " " +
         std::to_string(v.execution_index) + " " +
         std::to_string(v.test_index) + " " + std::to_string(v.trail.size()) +
         " " + escape_line(v.detail) + "\n";
    s += mc::render_choices(v.trail);
  }
  s += "reports " + std::to_string(r.reports.size()) + "\n";
  for (const std::string& rep : r.reports) {
    s += "rep " + escape_line(rep) + "\n";
  }
  const std::vector<std::string> mlines = r.metrics.render_wire();
  s += "metrics " + std::to_string(mlines.size()) + "\n";
  for (const std::string& ml : mlines) {
    s += "m " + ml + "\n";
  }
  s += "end\n";
  return s;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      if (start < text.size()) lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

bool parse_u64_tok(const char* s, std::uint64_t* out) {
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || errno != 0) return false;
  *out = v;
  return true;
}

// Parses "key=value" tokens off a stats-style line into `slots`.
bool parse_kv_tokens(const std::string& line, std::size_t skip_prefix,
                     const std::vector<std::pair<const char*, std::uint64_t*>>& slots,
                     std::string* err) {
  std::size_t pos = skip_prefix;
  std::size_t found = 0;
  while (pos < line.size()) {
    while (pos < line.size() && line[pos] == ' ') ++pos;
    if (pos >= line.size()) break;
    std::size_t sp = line.find(' ', pos);
    std::string tok = line.substr(pos, sp == std::string::npos ? sp : sp - pos);
    pos = sp == std::string::npos ? line.size() : sp;
    std::size_t eq = tok.find('=');
    if (eq == std::string::npos) {
      *err = "malformed token '" + tok + "'";
      return false;
    }
    std::string key = tok.substr(0, eq);
    bool known = false;
    for (const auto& slot : slots) {
      if (key == slot.first) {
        if (!parse_u64_tok(tok.c_str() + eq + 1, slot.second)) {
          *err = "malformed value in '" + tok + "'";
          return false;
        }
        known = true;
        ++found;
        break;
      }
    }
    if (!known) {
      *err = "unknown key '" + key + "'";
      return false;
    }
  }
  if (found != slots.size()) {
    *err = "missing keys in '" + line + "'";
    return false;
  }
  return true;
}

bool parse_shard_result(const std::string& text, ShardResult* out,
                        std::string* err) {
  std::vector<std::string> lines = split_lines(text);
  std::size_t i = 0;
  auto next = [&]() -> const std::string* {
    return i < lines.size() ? &lines[i++] : nullptr;
  };
  const std::string* l = next();
  if (l == nullptr || *l != "shard-result v2") {
    *err = "not a shard result (or a stale wire version)";
    return false;
  }
  l = next();
  if (l == nullptr || l->rfind("stats ", 0) != 0) {
    *err = "missing stats line";
    return false;
  }
  mc::ExplorationStats& m = out->stats;
  std::uint64_t seconds_us = 0, cap = 0, stopped = 0, time = 0, mem = 0,
                watchdog = 0, exhausted = 0, verdict = 0;
  if (!parse_kv_tokens(*l, 6,
                       {{"executions", &m.executions},
                        {"feasible", &m.feasible},
                        {"pruned_bound", &m.pruned_bound},
                        {"pruned_livelock", &m.pruned_livelock},
                        {"pruned_redundant", &m.pruned_redundant},
                        {"builtin", &m.builtin_violation_execs},
                        {"fatal", &m.engine_fatal_execs},
                        {"crash", &m.crash_execs},
                        {"violations_total", &m.violations_total},
                        {"sampled", &m.sampled},
                        {"max_depth", &m.max_trail_depth},
                        {"seconds_us", &seconds_us},
                        {"cap", &cap},
                        {"stopped", &stopped},
                        {"time", &time},
                        {"mem", &mem},
                        {"watchdog", &watchdog},
                        {"exhausted", &exhausted},
                        {"verdict", &verdict}},
                       err)) {
    return false;
  }
  m.seconds = static_cast<double>(seconds_us) / 1e6;
  m.hit_execution_cap = cap != 0;
  m.stopped_early = stopped != 0;
  m.hit_time_budget = time != 0;
  m.hit_memory_budget = mem != 0;
  m.watchdog_fired = watchdog != 0;
  m.exhausted = exhausted != 0;
  if (verdict > 2) {
    *err = "bad verdict";
    return false;
  }
  m.verdict = static_cast<mc::Verdict>(verdict);

  l = next();
  if (l == nullptr || l->rfind("spec ", 0) != 0) {
    *err = "missing spec line";
    return false;
  }
  std::uint64_t cap_hit = 0, r_cycle = 0;
  if (!parse_kv_tokens(*l, 5,
                       {{"checked", &out->spec.executions_checked},
                        {"inadmissible", &out->spec.inadmissible_execs},
                        {"assertions", &out->spec.assertion_violation_execs},
                        {"histories", &out->spec.histories_checked},
                        {"justifications", &out->spec.justification_checks},
                        {"cap_hit", &cap_hit},
                        {"r_cycle", &r_cycle}},
                       err)) {
    return false;
  }
  out->spec.history_cap_hit = cap_hit != 0;
  out->spec.r_cycle_seen = r_cycle != 0;

  l = next();
  std::uint64_t nviol = 0;
  if (l == nullptr || l->rfind("violations ", 0) != 0 ||
      !parse_u64_tok(l->c_str() + 11, &nviol)) {
    *err = "missing violations count";
    return false;
  }
  for (std::uint64_t k = 0; k < nviol; ++k) {
    l = next();
    if (l == nullptr || l->rfind("v ", 0) != 0) {
      *err = "missing violation line";
      return false;
    }
    // "v <kind> <exec> <test> <nchoices> <detail>"
    std::vector<std::string> tok;
    std::size_t pos = 2;
    for (int t = 0; t < 4 && pos < l->size(); ++t) {
      std::size_t sp = l->find(' ', pos);
      tok.push_back(l->substr(pos, sp == std::string::npos ? sp : sp - pos));
      pos = sp == std::string::npos ? l->size() : sp + 1;
    }
    if (tok.size() != 4) {
      *err = "malformed violation line";
      return false;
    }
    mc::Violation v;
    std::uint64_t exec = 0, ti = 0, nch = 0;
    if (!mc::parse_violation_kind(tok[0], &v.kind) ||
        !parse_u64_tok(tok[1].c_str(), &exec) ||
        !parse_u64_tok(tok[2].c_str(), &ti) ||
        !parse_u64_tok(tok[3].c_str(), &nch)) {
      *err = "malformed violation line";
      return false;
    }
    v.execution_index = exec;
    v.test_index = static_cast<std::uint32_t>(ti);
    v.detail = unescape_line(pos <= l->size() ? l->substr(pos) : "");
    if (!mc::parse_choices(lines, &i, nch, &v.trail, err)) return false;
    out->violations.push_back(std::move(v));
  }

  l = next();
  std::uint64_t nrep = 0;
  if (l == nullptr || l->rfind("reports ", 0) != 0 ||
      !parse_u64_tok(l->c_str() + 8, &nrep)) {
    *err = "missing reports count";
    return false;
  }
  for (std::uint64_t k = 0; k < nrep; ++k) {
    l = next();
    if (l == nullptr || l->rfind("rep ", 0) != 0) {
      *err = "missing report line";
      return false;
    }
    out->reports.push_back(unescape_line(l->substr(4)));
  }
  l = next();
  std::uint64_t nmet = 0;
  if (l == nullptr || l->rfind("metrics ", 0) != 0 ||
      !parse_u64_tok(l->c_str() + 8, &nmet)) {
    *err = "missing metrics count";
    return false;
  }
  for (std::uint64_t k = 0; k < nmet; ++k) {
    l = next();
    if (l == nullptr || l->rfind("m ", 0) != 0) {
      *err = "missing metrics line";
      return false;
    }
    if (!out->metrics.parse_wire_line(l->substr(2), err)) return false;
  }
  l = next();
  if (l == nullptr || *l != "end") {
    *err = "missing 'end' terminator";
    return false;
  }
  return true;
}

void weaken(mc::Verdict& into, mc::Verdict v) {
  if (v == mc::Verdict::kFalsified || into == mc::Verdict::kFalsified) {
    into = mc::Verdict::kFalsified;
  } else if (v == mc::Verdict::kInconclusive) {
    into = mc::Verdict::kInconclusive;
  }
}

bool ensure_dir(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  if (mkdir(path.c_str(), 0777) == 0 || errno == EEXIST) return true;
  return false;
#else
  (void)path;
  return false;
#endif
}

// One shard, end to end, inside a worker process (or inline in the
// sequential fallback): run the unit test's subtree with spec checking and
// serialize the result.
std::string run_shard(const Benchmark& b, const RunOptions& base,
                      std::size_t test_index,
                      const std::vector<mc::Choice>& prefix,
                      std::size_t shard_index, std::size_t shard_count) {
  RunOptions wo = base;
  wo.resume = nullptr;
  wo.checkpoint_base = mc::Checkpoint{};
  wo.engine.checkpoint_path.clear();
  wo.engine.checkpoint_every_execs = 0;
  wo.engine.test_name = b.name + "#" + std::to_string(test_index);
  wo.engine.test_index = static_cast<std::uint32_t>(test_index);
  // Heartbeats from parallel workers interleave on the shared stderr, so
  // each line names its shard.
  wo.engine.progress_label = wo.engine.test_name + " shard " +
                             std::to_string(shard_index + 1) + "/" +
                             std::to_string(shard_count);
  // Degraded-phase sampling shards by derived per-shard seeds and divides
  // the sample budget, so a budget-starved parallel run still samples
  // ~sample_executions total across the subtrees.
  wo.engine.seed = support::derive_seed(base.engine.seed,
                                        static_cast<std::uint64_t>(shard_index));
  if (wo.engine.sample_executions > 0 && shard_count > 1) {
    wo.engine.sample_executions = std::max<std::uint64_t>(
        1, wo.engine.sample_executions / shard_count);
  }
  wo.subtree = prefix;
  RunResult r = run_with_spec(b.tests[test_index], wo);
  return render_shard_result(r);
}

}  // namespace

ParallelRunResult run_benchmark_parallel(const Benchmark& b,
                                         const RunOptions& opts,
                                         const ParallelOptions& par) {
  ParallelRunResult pr;
  pr.jobs = std::max(1, par.jobs);
  RunResult& total = pr.merged;
  total.mc.seed = opts.engine.seed;
  total.mc.exhausted = true;
  const std::size_t max_shards =
      par.max_shards != 0 ? par.max_shards
                          : static_cast<std::size_t>(pr.jobs) * 4;

  if (!par.spool_dir.empty() && !ensure_dir(par.spool_dir)) {
    std::fprintf(stderr,
                 "cds::harness: cannot create spool dir '%s'; spooling off\n",
                 par.spool_dir.c_str());
  }

  // Coordinator-side observability: per-worker busy time / unit counts and
  // aggregate queue wait. These are wall-clock and topology facts, so they
  // live in gauges/timers, never in the bit-identical counter set.
  std::map<int, std::pair<double, std::uint64_t>> worker_busy;  // w -> {s, units}
  double queue_wait_seconds = 0.0;
  double span_base = 0.0;  // offsets each test's fork_map clock in spans

  for (std::size_t i = 0; i < b.tests.size(); ++i) {
    mc::Config pcfg = opts.engine;
    pcfg.test_name = b.name + "#" + std::to_string(i);
    pcfg.test_index = static_cast<std::uint32_t>(i);
    mc::ShardPlan plan = mc::enumerate_shard_prefixes(
        pcfg, b.tests[i], par.shard_depth, max_shards);
    pr.probe_executions += plan.probe_executions;
    const std::size_t shard_count = plan.prefixes.size();
    pr.shards += shard_count;

    mc::ForkMapOptions fm;
    fm.jobs = pr.jobs;
    fm.sigkill_on_unit = par.sigkill_shard;
    if (!par.spool_dir.empty()) {
      std::string dir = par.spool_dir + "/t" + std::to_string(i);
      if (ensure_dir(dir)) fm.spool_dir = dir;
    }

    std::vector<mc::UnitResult> results = mc::fork_map(
        shard_count,
        [&](std::size_t u) {
          return run_shard(b, opts, i, plan.prefixes[u], u, shard_count);
        },
        fm);

    // Merge in shard order — shard order is DFS order, so the first
    // falsifying shard's violations lead the merged list and the surfaced
    // witness is the one serial DFS would have found first.
    bool test_exhausted = true;
    bool test_falsified = false;
    std::uint64_t test_fatals = 0;
    std::uint64_t crashed_here = 0;
    std::uint64_t recorded_here = 0;
    double test_end = 0.0;
    for (std::size_t u = 0; u < shard_count; ++u) {
      const mc::UnitResult& ur = results[u];
      if (ur.ran && !ur.from_spool && ur.done_seconds > ur.assigned_seconds) {
        ShardSpan span;
        span.name = b.name + "#" + std::to_string(i) + " shard " +
                    std::to_string(u + 1) + "/" + std::to_string(shard_count);
        span.worker = ur.worker;
        span.start_seconds = span_base + ur.assigned_seconds;
        span.duration_seconds = ur.done_seconds - ur.assigned_seconds;
        pr.spans.push_back(std::move(span));
        auto& [busy, units] = worker_busy[ur.worker];
        busy += ur.done_seconds - ur.assigned_seconds;
        ++units;
        queue_wait_seconds += ur.assigned_seconds;
        if (ur.done_seconds > test_end) test_end = ur.done_seconds;
      }
      if (!results[u].ran) {
        ++crashed_here;
        test_exhausted = false;
        continue;
      }
      if (results[u].from_spool) ++pr.spooled_shards;
      ShardResult sr;
      std::string err;
      if (!parse_shard_result(results[u].text, &sr, &err)) {
        std::fprintf(stderr,
                     "cds::harness: shard %zu of test %zu returned a "
                     "corrupt result (%s); treating as crashed\n",
                     u, i, err.c_str());
        ++crashed_here;
        test_exhausted = false;
        continue;
      }
      mc::merge_shard_stats(total.mc, sr.stats);
      test_exhausted = test_exhausted && sr.stats.exhausted;
      test_falsified = test_falsified || sr.stats.violations_total > 0;
      test_fatals += sr.stats.engine_fatal_execs;
      total.spec.executions_checked += sr.spec.executions_checked;
      total.spec.inadmissible_execs += sr.spec.inadmissible_execs;
      total.spec.assertion_violation_execs +=
          sr.spec.assertion_violation_execs;
      total.spec.histories_checked += sr.spec.histories_checked;
      total.spec.justification_checks += sr.spec.justification_checks;
      total.spec.history_cap_hit |= sr.spec.history_cap_hit;
      total.spec.r_cycle_seen |= sr.spec.r_cycle_seen;
      total.metrics.merge(sr.metrics);
      // Per-test record cap mirrors the serial engine's: shards arrive in
      // DFS order and each records its DFS-first violations, so the first
      // max_recorded_violations across shards are the same records a
      // serial run keeps.
      for (mc::Violation& v : sr.violations) {
        if (opts.engine.max_recorded_violations != 0 &&
            recorded_here >= opts.engine.max_recorded_violations) {
          break;
        }
        total.violations.push_back(std::move(v));
        ++recorded_here;
      }
      for (std::string& rep : sr.reports) {
        total.reports.push_back(std::move(rep));
      }
    }
    pr.crashed_shards += crashed_here;
    mc::Verdict tv =
        test_falsified
            ? mc::Verdict::kFalsified
            : (test_exhausted && test_fatals == 0 && crashed_here == 0
                   ? mc::Verdict::kVerifiedExhaustive
                   : mc::Verdict::kInconclusive);
    weaken(total.verdict, tv);
    total.mc.exhausted = total.mc.exhausted && test_exhausted;
    span_base += test_end;
  }
  total.mc.verdict = total.verdict;

  obs::Registry& M = total.metrics;
  M.gauge("parallel.jobs").set(static_cast<std::uint64_t>(pr.jobs));
  M.gauge("parallel.shards").set(pr.shards);
  M.gauge("parallel.crashed_shards").set(pr.crashed_shards);
  M.gauge("parallel.spooled_shards").set(pr.spooled_shards);
  M.gauge("parallel.probe_executions").set(pr.probe_executions);
  if (queue_wait_seconds > 0.0) {
    M.timer("parallel.shard_queue_wait")
        .add_ns(static_cast<std::uint64_t>(queue_wait_seconds * 1e9));
  }
  for (const auto& [w, bu] : worker_busy) {
    const std::string prefix = "parallel.worker" + std::to_string(w);
    M.gauge(prefix + ".units").set(bu.second);
    M.timer(prefix + ".busy")
        .add_ns(static_cast<std::uint64_t>(bu.first * 1e9));
  }
  return pr;
}

}  // namespace cds::harness
