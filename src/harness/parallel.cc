#include "harness/parallel.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <map>
#include <utility>
#include <vector>

#include "harness/shard_result.h"
#include "mc/shard.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/stat.h>
#include <sys/types.h>
#endif

namespace cds::harness {

namespace {

bool ensure_dir(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  if (mkdir(path.c_str(), 0777) == 0 || errno == EEXIST) return true;
  return false;
#else
  (void)path;
  return false;
#endif
}

}  // namespace

ParallelRunResult run_benchmark_parallel(const Benchmark& b,
                                         const RunOptions& opts,
                                         const ParallelOptions& par) {
  ParallelRunResult pr;
  pr.jobs = std::max(1, par.jobs);
  RunResult& total = pr.merged;
  total.mc.seed = opts.engine.seed;
  total.mc.exhausted = true;
  const std::size_t max_shards =
      par.max_shards != 0 ? par.max_shards
                          : static_cast<std::size_t>(pr.jobs) * 4;

  if (!par.spool_dir.empty() && !ensure_dir(par.spool_dir)) {
    std::fprintf(stderr,
                 "cds::harness: cannot create spool dir '%s'; spooling off\n",
                 par.spool_dir.c_str());
  }

  // Coordinator-side observability: per-worker busy time / unit counts and
  // aggregate queue wait. These are wall-clock and topology facts, so they
  // live in gauges/timers, never in the bit-identical counter set.
  std::map<int, std::pair<double, std::uint64_t>> worker_busy;  // w -> {s, units}
  double queue_wait_seconds = 0.0;
  double span_base = 0.0;  // offsets each test's fork_map clock in spans

  for (std::size_t i = 0; i < b.tests.size(); ++i) {
    mc::Config pcfg = opts.engine;
    pcfg.test_name = b.name + "#" + std::to_string(i);
    pcfg.test_index = static_cast<std::uint32_t>(i);
    mc::ShardPlan plan = mc::enumerate_shard_prefixes(
        pcfg, b.tests[i], par.shard_depth, max_shards);
    pr.probe_executions += plan.probe_executions;
    const std::size_t shard_count = plan.prefixes.size();
    pr.shards += shard_count;

    mc::ForkMapOptions fm;
    fm.jobs = pr.jobs;
    fm.sigkill_on_unit = par.sigkill_shard;
    if (!par.spool_dir.empty()) {
      std::string dir = par.spool_dir + "/t" + std::to_string(i);
      if (ensure_dir(dir)) fm.spool_dir = dir;
    }

    std::vector<mc::UnitResult> results = mc::fork_map(
        shard_count,
        [&](std::size_t u) {
          return run_shard_unit(
              b, opts, make_shard_unit(opts, i, plan.prefixes[u], u, shard_count));
        },
        fm);

    // Merge in shard order — shard order is DFS order, so the first
    // falsifying shard's violations lead the merged list and the surfaced
    // witness is the one serial DFS would have found first.
    bool test_exhausted = true;
    bool test_falsified = false;
    std::uint64_t test_fatals = 0;
    std::uint64_t crashed_here = 0;
    std::uint64_t recorded_here = 0;
    double test_end = 0.0;
    for (std::size_t u = 0; u < shard_count; ++u) {
      const mc::UnitResult& ur = results[u];
      if (ur.ran && !ur.from_spool && ur.done_seconds > ur.assigned_seconds) {
        ShardSpan span;
        span.name = b.name + "#" + std::to_string(i) + " shard " +
                    std::to_string(u + 1) + "/" + std::to_string(shard_count);
        span.worker = ur.worker;
        span.start_seconds = span_base + ur.assigned_seconds;
        span.duration_seconds = ur.done_seconds - ur.assigned_seconds;
        pr.spans.push_back(std::move(span));
        auto& [busy, units] = worker_busy[ur.worker];
        busy += ur.done_seconds - ur.assigned_seconds;
        ++units;
        queue_wait_seconds += ur.assigned_seconds;
        if (ur.done_seconds > test_end) test_end = ur.done_seconds;
      }
      if (!results[u].ran) {
        ++crashed_here;
        test_exhausted = false;
        continue;
      }
      if (results[u].from_spool) ++pr.spooled_shards;
      ShardResult sr;
      std::string err;
      // Preempted partial results are a distributed-coordinator concept;
      // fork_map workers run with no stop_request, so one here means the
      // spool was fed by a different transport — recompute as crashed.
      if (!parse_shard_result(results[u].text, &sr, &err) ||
          sr.stats.preempted) {
        std::fprintf(stderr,
                     "cds::harness: shard %zu of test %zu returned a "
                     "corrupt result (%s); treating as crashed\n",
                     u, i, err.c_str());
        ++crashed_here;
        test_exhausted = false;
        continue;
      }
      mc::merge_shard_stats(total.mc, sr.stats);
      test_exhausted = test_exhausted && sr.stats.exhausted;
      test_falsified = test_falsified || sr.stats.violations_total > 0;
      test_fatals += sr.stats.engine_fatal_execs;
      total.spec.executions_checked += sr.spec.executions_checked;
      total.spec.inadmissible_execs += sr.spec.inadmissible_execs;
      total.spec.assertion_violation_execs +=
          sr.spec.assertion_violation_execs;
      total.spec.histories_checked += sr.spec.histories_checked;
      total.spec.justification_checks += sr.spec.justification_checks;
      total.spec.history_cap_hit |= sr.spec.history_cap_hit;
      total.spec.r_cycle_seen |= sr.spec.r_cycle_seen;
      total.metrics.merge(sr.metrics);
      // Per-test record cap mirrors the serial engine's: shards arrive in
      // DFS order and each records its DFS-first violations, so the first
      // max_recorded_violations across shards are the same records a
      // serial run keeps.
      for (mc::Violation& v : sr.violations) {
        if (opts.engine.max_recorded_violations != 0 &&
            recorded_here >= opts.engine.max_recorded_violations) {
          break;
        }
        total.violations.push_back(std::move(v));
        ++recorded_here;
      }
      for (std::string& rep : sr.reports) {
        total.reports.push_back(std::move(rep));
      }
    }
    pr.crashed_shards += crashed_here;
    mc::Verdict tv =
        test_falsified
            ? mc::Verdict::kFalsified
            : (test_exhausted && test_fatals == 0 && crashed_here == 0
                   ? mc::Verdict::kVerifiedExhaustive
                   : mc::Verdict::kInconclusive);
    weaken_verdict(total.verdict, tv);
    total.mc.exhausted = total.mc.exhausted && test_exhausted;
    span_base += test_end;
  }
  total.mc.verdict = total.verdict;

  obs::Registry& M = total.metrics;
  M.gauge("parallel.jobs").set(static_cast<std::uint64_t>(pr.jobs));
  M.gauge("parallel.shards").set(pr.shards);
  M.gauge("parallel.crashed_shards").set(pr.crashed_shards);
  M.gauge("parallel.spooled_shards").set(pr.spooled_shards);
  M.gauge("parallel.probe_executions").set(pr.probe_executions);
  if (queue_wait_seconds > 0.0) {
    M.timer("parallel.shard_queue_wait")
        .add_ns(static_cast<std::uint64_t>(queue_wait_seconds * 1e9));
  }
  for (const auto& [w, bu] : worker_busy) {
    const std::string prefix = "parallel.worker" + std::to_string(w);
    M.gauge(prefix + ".units").set(bu.second);
    M.timer(prefix + ".busy")
        .add_ns(static_cast<std::uint64_t>(bu.first * 1e9));
  }
  return pr;
}

}  // namespace cds::harness
