// Stress backend: the same test bodies on real std::threads.
//
// Each iteration re-runs a mc::TestFn with genuine concurrency: spawns are
// std::threads, atomics map onto std::atomic with the declared memory
// order, and a seeded preemption point is injected before every atomic
// hook (sched_yield / double yield / short spin) to shake out interleavings
// the OS scheduler would otherwise never produce. Plain (mc::Var) accesses
// execute bare, so a TSan build sees the real races the model checker's
// FastTrack shadow detects analytically.
//
// Soundness: a stress run observes a sample of hardware schedules on one
// host, so it can only FALSIFY — the verdict is capped at inconclusive
// (never verified). Specification checking uses the existential
// observed-history semantics of spec/observed.h over the real-time
// interval order; built-in model checks (stale-read enumeration, the race
// detector, deadlock detection) do not apply.
//
// Determinism: the preemption decision stream is a pure function of
// (iteration seed, thread id, per-thread op index), so a replayed
// iteration under the same seed injects the same perturbations at the same
// program points (the hardware may still interleave differently — that is
// what makes replay probabilistic rather than exact).
#ifndef CDS_HARNESS_STRESS_BACKEND_H
#define CDS_HARNESS_STRESS_BACKEND_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "harness/backend.h"
#include "mc/engine.h"
#include "spec/annotations.h"
#include "support/arena.h"

namespace cds::harness {

struct StressOptions {
  std::uint64_t iters = 256;  // iterations across all runners
  int threads_mult = 1;       // concurrent iteration runners
  std::uint64_t seed = 1;     // root seed; iteration i uses derive_seed(seed, i)
  bool check_spec = true;     // observed-history spec checking per iteration
  std::uint64_t max_histories = 2048;  // per-object order-enumeration cap
  std::uint32_t max_locations = 4096;
  int max_threads = 32;  // per iteration, including the root thread
  bool stop_on_first_violation = false;
  // Per-iteration watchdog: an iteration that runs longer than this is
  // declared hung — its runner thread is abandoned (detached; it leaks
  // until process exit, since a deadlocked std::thread cannot be
  // killed), a diagnostic naming the iteration and seed lands in
  // StressRunResult::hangs, and the run returns inconclusive instead of
  // blocking forever on a deadlocked test body. 0 disables the watchdog
  // (joins unconditionally, the pre-watchdog behavior).
  double iteration_timeout_seconds = 60.0;
};

struct StressViolation {
  mc::ViolationKind kind{};
  std::string detail;
  std::uint64_t iteration = 0;
  std::uint64_t iter_seed = 0;
  // Thread-major preemption decision stream (each entry one of 4
  // alternatives); serializes into the v2 .trail format under
  // `backend stress`.
  std::vector<mc::Choice> decisions;
};

struct StressStats {
  std::uint64_t iterations = 0;
  std::uint64_t violations_total = 0;
  std::uint64_t spec_histories_checked = 0;
  std::uint64_t spec_cap_hits = 0;  // iterations left unresolved by the cap
  std::uint64_t hung_iterations = 0;  // abandoned by the watchdog
  double seconds = 0.0;
};

struct StressRunResult {
  StressStats stats;
  std::vector<StressViolation> violations;  // first kMaxRecorded only
  // One diagnostic per iteration the watchdog abandoned (runner,
  // iteration, seed): enough to replay the hang under a debugger.
  std::vector<std::string> hangs;
  // kFalsified when any violation surfaced, else kInconclusive. Stress
  // never verifies — and a hang cannot falsify, only leave the verdict
  // inconclusive with a diagnostic.
  mc::Verdict verdict = mc::Verdict::kInconclusive;

  static constexpr std::size_t kMaxRecorded = 16;
};

// One iteration executor. Owns the shared-location slots, the per-thread
// decision logs, and a private spec Recorder; reusable across iterations
// (state resets in run_iteration). Public so tests can drive single
// iterations; most callers want run_stress below.
class StressBackend final : public Backend {
 public:
  explicit StressBackend(const StressOptions& opts);
  ~StressBackend() override;
  StressBackend(const StressBackend&) = delete;
  StressBackend& operator=(const StressBackend&) = delete;

  // Runs `test` once under `iter_seed`. Must be called from a thread that
  // is not itself inside an iteration. All spawned threads are joined on
  // return (test bodies join their threads by contract; stragglers are
  // joined defensively).
  void run_iteration(const mc::TestFn& test, std::uint64_t iter_seed);

  // --- post-iteration views (valid until the next run_iteration) -------
  [[nodiscard]] const std::vector<std::pair<mc::ViolationKind, std::string>>&
  iteration_violations() const {
    return iter_violations_;
  }
  [[nodiscard]] spec::Recorder& iteration_recorder() { return recorder_; }
  // Thread-major flattened decision stream of the finished iteration.
  [[nodiscard]] std::vector<mc::Choice> decision_trail() const;

  // --- Backend interface ------------------------------------------------
  [[nodiscard]] const char* backend_name() const override { return "stress"; }
  std::uint32_t new_location(const char* name, bool initialized,
                             std::uint64_t init_value) override;
  std::uint64_t atomic_load(std::uint32_t loc, mc::MemoryOrder o) override;
  void atomic_store(std::uint32_t loc, std::uint64_t v,
                    mc::MemoryOrder o) override;
  std::uint64_t atomic_rmw(std::uint32_t loc, mc::MemoryOrder o,
                           std::uint64_t (*op)(std::uint64_t, std::uint64_t),
                           std::uint64_t operand) override;
  bool atomic_cas(std::uint32_t loc, std::uint64_t& expected,
                  std::uint64_t desired, mc::MemoryOrder success,
                  mc::MemoryOrder failure) override;
  std::uint64_t atomic_exchange(std::uint32_t loc, std::uint64_t v,
                                mc::MemoryOrder o) override;
  void atomic_thread_fence(mc::MemoryOrder o) override;
  void plain_read(mc::RaceShadow& s) override;
  void plain_write(mc::RaceShadow& s) override;
  void mutex_lock(mc::MutexState& m) override;
  void mutex_unlock(mc::MutexState& m) override;
  int spawn_thread(std::function<void()> body) override;
  void join_thread(int tid) override;
  void yield_thread() override;
  [[nodiscard]] int current_thread() const override;
  void* allocate(std::size_t bytes, std::size_t align) override;
  void report_violation(mc::ViolationKind k, std::string detail) override;
  [[nodiscard]] std::uint32_t location_count() const override {
    return nloc_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t location_final_value(
      std::uint32_t loc) const override {
    return slots_[loc].load(std::memory_order_acquire);
  }
  [[nodiscard]] spec::Recorder* recorder() override { return &recorder_; }
  [[nodiscard]] spec::OPEvent snapshot_op(int tid) const override;

 private:
  struct PerThread {
    std::vector<std::uint8_t> decisions;
    std::uint64_t op_count = 0;
    std::uint32_t last_rt_begin = 0;
    std::uint32_t last_rt_end = 0;

    void reset() {
      decisions.clear();
      op_count = 0;
      last_rt_begin = 0;
      last_rt_end = 0;
    }
  };

  // Seeded preemption point before every atomic hook; also advances the
  // calling thread's op index.
  void preempt(int tid);
  std::uint32_t next_rt_ticket() {
    return rt_ticket_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  std::atomic<std::uint64_t>& slot(std::uint32_t loc) { return slots_[loc]; }

  StressOptions opts_;
  std::uint64_t iter_seed_ = 0;

  std::vector<std::atomic<std::uint64_t>> slots_;
  std::vector<const char*> names_;
  std::atomic<std::uint32_t> nloc_{0};
  std::atomic<std::uint32_t> rt_ticket_{0};

  std::vector<PerThread> pt_;        // indexed by tid
  std::vector<std::thread> threads_; // index tid-1; slots pre-sized
  int next_tid_ = 1;
  std::mutex spawn_mu_;

  support::Arena arena_;
  std::mutex arena_mu_;

  spec::Recorder recorder_;
  std::vector<std::pair<mc::ViolationKind, std::string>> iter_violations_;
  std::mutex violation_mu_;
};

// Per-iteration callback (runs serialized, between iterations of runner
// `r`): read off behaviors via location_count/location_final_value or the
// iteration recorder.
using StressIterationHook = std::function<void(int r, StressBackend&)>;

// Runs `opts.iters` iterations of `test`, `opts.threads_mult` runners in
// parallel (each with its own StressBackend). `test` must be re-entrant
// when threads_mult > 1 — use run_stress_per_runner for closures with
// per-run state (e.g. fuzz::Program::test_fn observation buffers).
// With the watchdog enabled (iteration_timeout_seconds > 0), anything
// `test` captures by reference must stay alive until process exit if a
// hang is possible: an abandoned runner thread still holds the closure.
StressRunResult run_stress(const mc::TestFn& test, const StressOptions& opts,
                           const StressIterationHook& hook = nullptr);

// As run_stress, but each runner builds its own TestFn instance.
StressRunResult run_stress_per_runner(
    const std::function<mc::TestFn(int r)>& make_test,
    const StressOptions& opts, const StressIterationHook& hook = nullptr);

}  // namespace cds::harness

#endif  // CDS_HARNESS_STRESS_BACKEND_H
