#include "harness/shard_result.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <utility>

#include "mc/trace.h"
#include "support/rng.h"

namespace cds::harness {

std::string escape_line(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string unescape_line(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      out += s[i + 1] == 'n' ? '\n' : s[i + 1];
      ++i;
    } else {
      out += s[i];
    }
  }
  return out;
}

std::string render_shard_result(const RunResult& r) {
  const mc::ExplorationStats& m = r.mc;
  std::string s = "shard-result v4\n";
  s += "stats executions=" + std::to_string(m.executions) +
       " feasible=" + std::to_string(m.feasible) +
       " pruned_bound=" + std::to_string(m.pruned_bound) +
       " pruned_livelock=" + std::to_string(m.pruned_livelock) +
       " pruned_redundant=" + std::to_string(m.pruned_redundant) +
       " builtin=" + std::to_string(m.builtin_violation_execs) +
       " fatal=" + std::to_string(m.engine_fatal_execs) +
       " crash=" + std::to_string(m.crash_execs) +
       " violations_total=" + std::to_string(m.violations_total) +
       " sampled=" + std::to_string(m.sampled) +
       " rf_classes=" + std::to_string(m.rf_classes) +
       " rf_infeasible=" + std::to_string(m.rf_infeasible) +
       " max_depth=" + std::to_string(m.max_trail_depth) +
       " seconds_us=" +
       std::to_string(static_cast<std::uint64_t>(m.seconds * 1e6)) +
       " cap=" + std::to_string(m.hit_execution_cap ? 1 : 0) +
       " stopped=" + std::to_string(m.stopped_early ? 1 : 0) +
       " time=" + std::to_string(m.hit_time_budget ? 1 : 0) +
       " mem=" + std::to_string(m.hit_memory_budget ? 1 : 0) +
       " watchdog=" + std::to_string(m.watchdog_fired ? 1 : 0) +
       " exhausted=" + std::to_string(m.exhausted ? 1 : 0) +
       " preempted=" + std::to_string(m.preempted ? 1 : 0) +
       " verdict=" + std::to_string(static_cast<int>(m.verdict)) + "\n";
  s += "spec checked=" + std::to_string(r.spec.executions_checked) +
       " inadmissible=" + std::to_string(r.spec.inadmissible_execs) +
       " assertions=" + std::to_string(r.spec.assertion_violation_execs) +
       " histories=" + std::to_string(r.spec.histories_checked) +
       " justifications=" + std::to_string(r.spec.justification_checks) +
       " cap_hit=" + std::to_string(r.spec.history_cap_hit ? 1 : 0) +
       " r_cycle=" + std::to_string(r.spec.r_cycle_seen ? 1 : 0) + "\n";
  s += "violations " + std::to_string(r.violations.size()) + "\n";
  for (const mc::Violation& v : r.violations) {
    s += std::string("v ") + mc::wire_name(v.kind) + " " +
         std::to_string(v.execution_index) + " " +
         std::to_string(v.test_index) + " " + std::to_string(v.trail.size()) +
         " " + escape_line(v.detail) + "\n";
    s += mc::render_choices(v.trail);
  }
  s += "reports " + std::to_string(r.reports.size()) + "\n";
  for (const std::string& rep : r.reports) {
    s += "rep " + escape_line(rep) + "\n";
  }
  const std::vector<std::string> mlines = r.metrics.render_wire();
  s += "metrics " + std::to_string(mlines.size()) + "\n";
  for (const std::string& ml : mlines) {
    s += "m " + ml + "\n";
  }
  s += "frontier " + std::to_string(r.frontier.size()) + "\n";
  s += mc::render_choices(r.frontier);
  s += "end\n";
  return s;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      if (start < text.size()) lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

bool parse_u64_tok(const char* s, std::uint64_t* out) {
  // Strict: decimal digits only, fully consumed. strtoull alone would
  // accept leading whitespace, a sign (silently wrapping negatives), and
  // trailing junk — all of which a corrupted wire token may contain.
  if (s == nullptr || *s < '0' || *s > '9') return false;
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0' || errno != 0) return false;
  *out = v;
  return true;
}

// Parses "key=value" tokens off a stats-style line into `slots`.
bool parse_kv_tokens(const std::string& line, std::size_t skip_prefix,
                     const std::vector<std::pair<const char*, std::uint64_t*>>& slots,
                     std::string* err) {
  std::size_t pos = skip_prefix;
  std::size_t found = 0;
  while (pos < line.size()) {
    while (pos < line.size() && line[pos] == ' ') ++pos;
    if (pos >= line.size()) break;
    std::size_t sp = line.find(' ', pos);
    std::string tok = line.substr(pos, sp == std::string::npos ? sp : sp - pos);
    pos = sp == std::string::npos ? line.size() : sp;
    std::size_t eq = tok.find('=');
    if (eq == std::string::npos) {
      *err = "malformed token '" + tok + "'";
      return false;
    }
    std::string key = tok.substr(0, eq);
    bool known = false;
    for (const auto& slot : slots) {
      if (key == slot.first) {
        if (!parse_u64_tok(tok.c_str() + eq + 1, slot.second)) {
          *err = "malformed value in '" + tok + "'";
          return false;
        }
        known = true;
        ++found;
        break;
      }
    }
    if (!known) {
      *err = "unknown key '" + key + "'";
      return false;
    }
  }
  if (found != slots.size()) {
    *err = "missing keys in '" + line + "'";
    return false;
  }
  return true;
}

bool parse_shard_result(const std::string& text, ShardResult* out,
                        std::string* err) {
  // Parse into a scratch result and commit only on success, so a
  // rejected message never leaves *out partially populated.
  ShardResult res;
  std::vector<std::string> lines = split_lines(text);
  std::size_t i = 0;
  auto next = [&]() -> const std::string* {
    return i < lines.size() ? &lines[i++] : nullptr;
  };
  // Diagnostics carry the 1-based line number of the offending line (the
  // one most recently consumed).
  auto fail = [&](const std::string& why) {
    *err = "line " + std::to_string(i == 0 ? 1 : i) + ": " + why;
    return false;
  };
  const std::string* l = next();
  if (l == nullptr || *l != "shard-result v4") {
    return fail("not a shard result (or a stale wire version)");
  }
  l = next();
  if (l == nullptr || l->rfind("stats ", 0) != 0) {
    return fail("missing stats line");
  }
  mc::ExplorationStats& m = res.stats;
  std::uint64_t seconds_us = 0, cap = 0, stopped = 0, time = 0, mem = 0,
                watchdog = 0, exhausted = 0, preempted = 0, verdict = 0;
  std::string why;
  if (!parse_kv_tokens(*l, 6,
                       {{"executions", &m.executions},
                        {"feasible", &m.feasible},
                        {"pruned_bound", &m.pruned_bound},
                        {"pruned_livelock", &m.pruned_livelock},
                        {"pruned_redundant", &m.pruned_redundant},
                        {"builtin", &m.builtin_violation_execs},
                        {"fatal", &m.engine_fatal_execs},
                        {"crash", &m.crash_execs},
                        {"violations_total", &m.violations_total},
                        {"sampled", &m.sampled},
                        {"rf_classes", &m.rf_classes},
                        {"rf_infeasible", &m.rf_infeasible},
                        {"max_depth", &m.max_trail_depth},
                        {"seconds_us", &seconds_us},
                        {"cap", &cap},
                        {"stopped", &stopped},
                        {"time", &time},
                        {"mem", &mem},
                        {"watchdog", &watchdog},
                        {"exhausted", &exhausted},
                        {"preempted", &preempted},
                        {"verdict", &verdict}},
                       &why)) {
    return fail(why);
  }
  m.seconds = static_cast<double>(seconds_us) / 1e6;
  m.hit_execution_cap = cap != 0;
  m.stopped_early = stopped != 0;
  m.hit_time_budget = time != 0;
  m.hit_memory_budget = mem != 0;
  m.watchdog_fired = watchdog != 0;
  m.exhausted = exhausted != 0;
  m.preempted = preempted != 0;
  if (verdict > 2) return fail("bad verdict");
  m.verdict = static_cast<mc::Verdict>(verdict);

  l = next();
  if (l == nullptr || l->rfind("spec ", 0) != 0) {
    return fail("missing spec line");
  }
  std::uint64_t cap_hit = 0, r_cycle = 0;
  if (!parse_kv_tokens(*l, 5,
                       {{"checked", &res.spec.executions_checked},
                        {"inadmissible", &res.spec.inadmissible_execs},
                        {"assertions", &res.spec.assertion_violation_execs},
                        {"histories", &res.spec.histories_checked},
                        {"justifications", &res.spec.justification_checks},
                        {"cap_hit", &cap_hit},
                        {"r_cycle", &r_cycle}},
                       &why)) {
    return fail(why);
  }
  res.spec.history_cap_hit = cap_hit != 0;
  res.spec.r_cycle_seen = r_cycle != 0;

  l = next();
  std::uint64_t nviol = 0;
  if (l == nullptr || l->rfind("violations ", 0) != 0 ||
      !parse_u64_tok(l->c_str() + 11, &nviol)) {
    return fail("missing violations count");
  }
  if (nviol > lines.size()) return fail("violations count exceeds message");
  for (std::uint64_t k = 0; k < nviol; ++k) {
    l = next();
    if (l == nullptr || l->rfind("v ", 0) != 0) {
      return fail("missing violation line");
    }
    // "v <kind> <exec> <test> <nchoices> <detail>"
    std::vector<std::string> tok;
    std::size_t pos = 2;
    for (int t = 0; t < 4 && pos < l->size(); ++t) {
      std::size_t sp = l->find(' ', pos);
      tok.push_back(l->substr(pos, sp == std::string::npos ? sp : sp - pos));
      pos = sp == std::string::npos ? l->size() : sp + 1;
    }
    if (tok.size() != 4) return fail("malformed violation line");
    mc::Violation v;
    std::uint64_t exec = 0, ti = 0, nch = 0;
    if (!mc::parse_violation_kind(tok[0], &v.kind) ||
        !parse_u64_tok(tok[1].c_str(), &exec) ||
        !parse_u64_tok(tok[2].c_str(), &ti) ||
        !parse_u64_tok(tok[3].c_str(), &nch)) {
      return fail("malformed violation line");
    }
    v.execution_index = exec;
    v.test_index = static_cast<std::uint32_t>(ti);
    v.detail = unescape_line(pos <= l->size() ? l->substr(pos) : "");
    if (!mc::parse_choices(lines, &i, nch, &v.trail, &why)) return fail(why);
    res.violations.push_back(std::move(v));
  }

  l = next();
  std::uint64_t nrep = 0;
  if (l == nullptr || l->rfind("reports ", 0) != 0 ||
      !parse_u64_tok(l->c_str() + 8, &nrep)) {
    return fail("missing reports count");
  }
  if (nrep > lines.size()) return fail("reports count exceeds message");
  for (std::uint64_t k = 0; k < nrep; ++k) {
    l = next();
    if (l == nullptr || l->rfind("rep ", 0) != 0) {
      return fail("missing report line");
    }
    res.reports.push_back(unescape_line(l->substr(4)));
  }
  l = next();
  std::uint64_t nmet = 0;
  if (l == nullptr || l->rfind("metrics ", 0) != 0 ||
      !parse_u64_tok(l->c_str() + 8, &nmet)) {
    return fail("missing metrics count");
  }
  if (nmet > lines.size()) return fail("metrics count exceeds message");
  for (std::uint64_t k = 0; k < nmet; ++k) {
    l = next();
    if (l == nullptr || l->rfind("m ", 0) != 0) {
      return fail("missing metrics line");
    }
    if (!res.metrics.parse_wire_line(l->substr(2), &why)) return fail(why);
  }
  l = next();
  std::uint64_t nfro = 0;
  if (l == nullptr || l->rfind("frontier ", 0) != 0 ||
      !parse_u64_tok(l->c_str() + 9, &nfro)) {
    return fail("missing frontier count");
  }
  if (nfro > lines.size()) return fail("frontier count exceeds message");
  if (!mc::parse_choices(lines, &i, nfro, &res.frontier, &why)) {
    return fail(why);
  }
  if (res.stats.preempted != !res.frontier.empty()) {
    return fail("preempted flag and frontier presence disagree");
  }
  l = next();
  if (l == nullptr || *l != "end") return fail("missing 'end' terminator");
  *out = std::move(res);
  return true;
}

void weaken_verdict(mc::Verdict& into, mc::Verdict v) {
  if (v == mc::Verdict::kFalsified || into == mc::Verdict::kFalsified) {
    into = mc::Verdict::kFalsified;
  } else if (v == mc::Verdict::kInconclusive) {
    into = mc::Verdict::kInconclusive;
  }
}

ShardUnit make_shard_unit(const RunOptions& base, std::size_t test_index,
                          std::vector<mc::Choice> prefix, std::size_t ordinal,
                          std::size_t total) {
  ShardUnit u;
  u.test_index = test_index;
  u.prefix = std::move(prefix);
  u.ordinal = ordinal;
  u.total = total;
  // Degraded-phase sampling shards by derived per-shard seeds and divides
  // the sample budget, so a budget-starved parallel run still samples
  // ~sample_executions total across the subtrees.
  u.engine_seed = support::derive_seed(base.engine.seed,
                                       static_cast<std::uint64_t>(ordinal));
  u.sample_executions = base.engine.sample_executions;
  if (u.sample_executions > 0 && total > 1) {
    u.sample_executions = std::max<std::uint64_t>(1, u.sample_executions / total);
  }
  return u;
}

std::string run_shard_unit(const Benchmark& b, const RunOptions& base,
                           const ShardUnit& u,
                           const std::function<bool()>& stop_request) {
  RunOptions wo = base;
  wo.resume = nullptr;
  wo.checkpoint_base = mc::Checkpoint{};
  wo.engine.checkpoint_path.clear();
  wo.engine.checkpoint_every_execs = 0;
  wo.engine.test_name = b.name + "#" + std::to_string(u.test_index);
  wo.engine.test_index = static_cast<std::uint32_t>(u.test_index);
  // Heartbeats from parallel workers interleave on the shared stderr, so
  // each line names its shard.
  wo.engine.progress_label = wo.engine.test_name + " shard " +
                             std::to_string(u.ordinal + 1) + "/" +
                             std::to_string(u.total);
  wo.engine.seed = u.engine_seed;
  wo.engine.sample_executions = u.sample_executions;
  wo.engine.stop_request = stop_request;
  wo.subtree = u.prefix;
  RunResult r = run_with_spec(b.tests[u.test_index], wo);
  return render_shard_result(r);
}

}  // namespace cds::harness
