#include "harness/backend.h"

namespace cds::harness {

namespace {
// Thread-local so stress iterations on concurrent runner threads (and the
// real threads each iteration spawns) resolve to their own backend, while
// the fiber-based model checker keeps its one-OS-thread invariant.
thread_local Backend* t_current = nullptr;
}  // namespace

Backend* Backend::current() { return t_current; }

void Backend::set_current(Backend* b) { t_current = b; }

}  // namespace cds::harness
