// Run harness shared by tests and benchmarks: couples an Engine with a
// SpecChecker, aggregates results, and drives the paper's injection
// experiment (Section 6.4.2) over the registered benchmark suite.
#ifndef CDS_HARNESS_RUNNER_H
#define CDS_HARNESS_RUNNER_H

#include <string>
#include <vector>

#include "inject/inject.h"
#include "mc/engine.h"
#include "spec/checker.h"
#include "spec/specification.h"

namespace cds::harness {

struct RunOptions {
  mc::Config engine;
  spec::SpecChecker::Options checker;
};

struct RunResult {
  mc::ExplorationStats mc;
  spec::SpecChecker::Stats spec;
  std::vector<mc::Violation> violations;
  std::vector<std::string> reports;

  [[nodiscard]] bool detected_builtin() const;
  [[nodiscard]] bool detected_admissibility() const;
  [[nodiscard]] bool detected_assertion() const;
  [[nodiscard]] bool any_detection() const {
    return detected_builtin() || detected_admissibility() || detected_assertion();
  }
};

// Explores `test` under the model checker with specification checking.
RunResult run_with_spec(const mc::TestFn& test, const RunOptions& opts = {});

// ---------------------------------------------------------------------------
// Benchmark registry (the paper's Section 6 suite)
// ---------------------------------------------------------------------------

struct Benchmark {
  std::string name;     // key; also the inject-site benchmark key
  std::string display;  // paper's row label (Figure 7/8)
  const spec::Specification* spec;
  std::vector<mc::TestFn> tests;  // unit tests, all explored
};

void register_benchmark(Benchmark b);
[[nodiscard]] const std::vector<Benchmark>& benchmarks();
[[nodiscard]] const Benchmark* find_benchmark(const std::string& name);

// Runs every unit test of a benchmark; sums exploration stats and merges
// detections.
RunResult run_benchmark(const Benchmark& b, const RunOptions& opts = {});

// ---------------------------------------------------------------------------
// Injection experiment (Figure 8)
// ---------------------------------------------------------------------------

enum class Detection { kNone, kBuiltin, kAdmissibility, kAssertion };

[[nodiscard]] const char* to_string(Detection d);

struct InjectionOutcome {
  inject::Site site;
  Detection how = Detection::kNone;
};

struct InjectionSummary {
  std::string benchmark;
  int injections = 0;
  int builtin = 0;
  int admissibility = 0;
  int assertion = 0;
  int undetected = 0;
  std::vector<InjectionOutcome> outcomes;

  [[nodiscard]] double detection_rate() const {
    return injections == 0
               ? 1.0
               : static_cast<double>(injections - undetected) / injections;
  }
};

// Weakens each injectable site of the benchmark in turn (one per trial,
// covering every memory-order parameter its tests exercise) and classifies
// the detection with the paper's priority: built-in, then admissibility,
// then assertion.
InjectionSummary run_injection_experiment(const Benchmark& b,
                                          const RunOptions& opts = {});

}  // namespace cds::harness

#endif  // CDS_HARNESS_RUNNER_H
