// Run harness shared by tests and benchmarks: couples an Engine with a
// SpecChecker, aggregates results, and drives the paper's injection
// experiment (Section 6.4.2) over the registered benchmark suite.
#ifndef CDS_HARNESS_RUNNER_H
#define CDS_HARNESS_RUNNER_H

#include <string>
#include <vector>

#include "inject/inject.h"
#include "mc/engine.h"
#include "obs/metrics.h"
#include "spec/checker.h"
#include "spec/specification.h"

namespace cds::harness {

struct RunOptions {
  mc::Config engine;
  spec::SpecChecker::Options checker;

  // Resume state loaded from engine.checkpoint_path (non-owning; must stay
  // alive across the run). The caller is responsible for the fingerprint
  // check; run_benchmark additionally sanity-checks the test identity and
  // falls back to a fresh run on mismatch.
  const mc::Checkpoint* resume = nullptr;

  // Template for checkpoints written during this run: its `extra` entries
  // and violation records (the harness's accumulated prior-test state) are
  // carried into every checkpoint file. Populated by run_benchmark.
  mc::Checkpoint checkpoint_base;

  // Subtree-restriction prefix for parallel sharding (see
  // harness/parallel.h): when non-empty, the engine explores only the
  // executions extending this pinned choice prefix. Incompatible with
  // `resume`.
  std::vector<mc::Choice> subtree;
};

struct RunResult {
  mc::ExplorationStats mc;
  spec::SpecChecker::Stats spec;
  // Metrics registry harvested from the engine(s): counters/histograms are
  // per-execution-pure (sharded runs sum to the serial values), gauges are
  // peaks, timers are wall time. See obs/metrics.h.
  obs::Registry metrics;
  std::vector<mc::Violation> violations;
  std::vector<std::string> reports;
  // Work-stealing preemption frontier (see Engine::preempt_frontier):
  // non-empty only when mc.preempted, i.e. the run was asked to stop
  // early and the unexplored remainder of its subtree should be re-split
  // from this trail.
  std::vector<mc::Choice> frontier;
  // Weakest verdict across the aggregated explorations: falsified beats
  // inconclusive beats verified-exhaustive, so "proved" is only claimed
  // when every unit test ran its state space to exhaustion.
  mc::Verdict verdict = mc::Verdict::kVerifiedExhaustive;

  [[nodiscard]] bool detected_builtin() const;
  [[nodiscard]] bool detected_admissibility() const;
  [[nodiscard]] bool detected_assertion() const;
  [[nodiscard]] bool any_detection() const {
    return detected_builtin() || detected_admissibility() || detected_assertion();
  }
};

// Explores `test` under the model checker with specification checking.
RunResult run_with_spec(const mc::TestFn& test, const RunOptions& opts = {});

// ---------------------------------------------------------------------------
// Benchmark registry (the paper's Section 6 suite)
// ---------------------------------------------------------------------------

struct Benchmark {
  std::string name;     // key; also the inject-site benchmark key
  std::string display;  // paper's row label (Figure 7/8)
  const spec::Specification* spec;
  std::vector<mc::TestFn> tests;  // unit tests, all explored
  // True when the spec's correctness argument depends on calls staying
  // CONCURRENT (Figure-6-style justification); strengthening every
  // operation to seq_cst then totally orders the ordering points and
  // strips that justification, so suite-wide SC sweeps must skip the
  // benchmark. Registration is the single source of truth: the property
  // tests, the stress smoke test, and the cross-backend suite all derive
  // their benchmark lists from this registry instead of hardcoding names.
  bool spec_requires_concurrency = false;
};

void register_benchmark(Benchmark b);
[[nodiscard]] const std::vector<Benchmark>& benchmarks();
[[nodiscard]] const Benchmark* find_benchmark(const std::string& name);

// Runs every unit test of a benchmark; sums exploration stats and merges
// detections.
//
// With engine.checkpoint_path set, the engine checkpoints periodically
// inside each test, the harness writes a Phase::kStart checkpoint between
// tests (carrying the accumulated totals of the finished ones), and the
// file is deleted once the whole benchmark completes. Passing the loaded
// checkpoint back through RunOptions::resume skips already-finished tests
// and resumes the interrupted one mid-exploration; the resumed run
// converges to the same aggregate stats and verdict as an uninterrupted
// one (violation records restored from the checkpoint carry no trails).
RunResult run_benchmark(const Benchmark& b, const RunOptions& opts = {});

// ---------------------------------------------------------------------------
// Injection experiment (Figure 8)
// ---------------------------------------------------------------------------

enum class Detection { kNone, kBuiltin, kAdmissibility, kAssertion };

[[nodiscard]] const char* to_string(Detection d);

// What happened to a trial as a *process*: it finished and was classified,
// or its (fork-isolated) child crashed, or it exceeded the per-trial
// timeout even after the retry. Crashed/timed-out trials record an
// outcome and the campaign moves on to the remaining sites.
enum class TrialStatus { kCompleted, kCrashed, kTimedOut };

[[nodiscard]] const char* to_string(TrialStatus s);

struct InjectionOutcome {
  inject::Site site;
  Detection how = Detection::kNone;
  TrialStatus status = TrialStatus::kCompleted;
  mc::Verdict verdict = mc::Verdict::kInconclusive;
  int term_signal = 0;   // signal that killed a crashed child (0 if exit code)
  bool retried = false;  // timed out once and re-ran at a tighter cap
  double seconds = 0.0;
};

// Fail-safe controls for the injection campaign. Defaults keep every
// trial fork-isolated so one crashing or hanging trial cannot take the
// sweep down with it.
struct SweepOptions {
  // Run each trial in a forked child (POSIX only; ignored elsewhere).
  // Without isolation a crash or hang hits the whole campaign.
  bool fork_isolation = true;
  // Wall-clock cap per trial (0 = none). Only enforced under fork
  // isolation; inline trials should use RunOptions::engine budgets.
  double trial_timeout_seconds = 120.0;
  // After a timeout, retry this many times at a tighter execution cap and
  // an engine-level time budget (so the retry degrades instead of hanging).
  int timeout_retries = 1;
  // Root seed; per-trial engine seeds are derived from it and the site id.
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;
};

struct InjectionSummary {
  std::string benchmark;
  int injections = 0;
  int builtin = 0;
  int admissibility = 0;
  int assertion = 0;
  int undetected = 0;  // completed trials with no detection
  int crashed = 0;
  int timed_out = 0;
  std::vector<InjectionOutcome> outcomes;

  [[nodiscard]] int completed() const {
    return injections - crashed - timed_out;
  }
  // Detection rate over trials that actually completed; crashed/timed-out
  // trials are reported separately rather than counted as undetected.
  [[nodiscard]] double detection_rate() const {
    return completed() == 0
               ? 1.0
               : static_cast<double>(completed() - undetected) / completed();
  }
};

// Weakens each injectable site of the benchmark in turn (one per trial,
// covering every memory-order parameter its tests exercise) and classifies
// the detection with the paper's priority: built-in, then admissibility,
// then assertion. Each trial is fork-isolated with a per-trial timeout
// (see SweepOptions); a crashing or hanging trial is recorded as that
// site's outcome and the campaign continues.
InjectionSummary run_injection_experiment(const Benchmark& b,
                                          const RunOptions& opts = {},
                                          const SweepOptions& sweep = {});

}  // namespace cds::harness

#endif  // CDS_HARNESS_RUNNER_H
