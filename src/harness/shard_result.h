// Shard-result wire format and the shared per-shard run entry point.
//
// One unit test's one shard, as produced by a worker (a fork_map child, a
// distributed worker, or the sequential fallback). Line oriented;
// multi-line payloads (violation details, spec reports) are escaped onto
// single lines so the whole message parses line-by-line:
//
//   shard-result v4
//   stats executions=.. feasible=.. ... exhausted=0|1 preempted=0|1 verdict=0|1|2
//   spec checked=.. inadmissible=.. ... r_cycle=0|1
//   violations <n>
//   v <wire-kind> <exec_index> <test_index> <nchoices> <escaped detail>
//   S 1/2                                  # nchoices trail lines
//   ...
//   reports <n>
//   rep <escaped report>
//   metrics <n>
//   m <obs wire line>                      # see obs::Registry::render_wire
//   frontier <n>
//   S 1/2                                  # n trail lines (see below)
//   end
//
// v2 added the metrics section; v3 adds `preempted` and the `frontier`
// section. A preempted shard (the engine's stop-request hook tripped —
// work stealing) reports the trail of the last execution it explored as
// its frontier; the coordinator decomposes the unexplored right-sibling
// subtrees of that trail into fresh sub-shards (mc::split_remaining_
// frontier), so the partial result plus the sub-shards' results cover
// exactly the executions the undisturbed shard would have explored.
// Complete shards always carry `preempted=0` and an empty frontier.
// v4 adds the rf-mode class counters (rf_classes, rf_infeasible) to the
// stats line; they merge by summation, so a --jobs/--dist-workers run
// reports class counts bit-identical to a serial run.
//
// Parsing is strict-versioned: stale v1/v2/v3 spool files are treated as
// corrupt (shard recomputed or crashed) rather than silently merged with
// missing sections.
#ifndef CDS_HARNESS_SHARD_RESULT_H
#define CDS_HARNESS_SHARD_RESULT_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "harness/runner.h"
#include "mc/stats.h"
#include "mc/trail.h"
#include "obs/metrics.h"
#include "spec/checker.h"

namespace cds::harness {

struct ShardResult {
  mc::ExplorationStats stats;
  spec::SpecChecker::Stats spec;
  obs::Registry metrics;
  std::vector<mc::Violation> violations;
  std::vector<std::string> reports;
  // Preemption (work stealing): the trail of the shard's last explored
  // execution, set only when stats.preempted. The shard's own prefix is a
  // prefix of this trail.
  std::vector<mc::Choice> frontier;
};

// Newline/backslash escaping used for single-line payload fields.
std::string escape_line(const std::string& s);
std::string unescape_line(const std::string& s);

// Line-format building blocks shared with the dist protocol parser
// (src/dist/protocol.cc): split on '\n', strict u64, and strict
// "key=value" token lines where every listed key must appear exactly and
// no unknown key is tolerated.
std::vector<std::string> split_lines(const std::string& text);
bool parse_u64_tok(const char* s, std::uint64_t* out);
bool parse_kv_tokens(
    const std::string& line, std::size_t skip_prefix,
    const std::vector<std::pair<const char*, std::uint64_t*>>& slots,
    std::string* err);

std::string render_shard_result(const RunResult& r);

// Strict parse; on failure *err carries a "line N: ..." diagnostic and
// *out is untouched (no partially applied sections).
bool parse_shard_result(const std::string& text, ShardResult* out,
                        std::string* err);

// ---------------------------------------------------------------------------
// Shared shard execution
// ---------------------------------------------------------------------------

// Everything a worker needs to run one shard. The seed and sampling
// budget are pre-derived by the planner (coordinator) rather than inside
// the worker, so a shard retried on a different worker — or a sub-shard
// minted by work stealing — reproduces the exact same exploration.
struct ShardUnit {
  std::size_t test_index = 0;
  std::vector<mc::Choice> prefix;
  // Cosmetic shard label numbers ("shard i/N" in progress heartbeats).
  std::size_t ordinal = 0;
  std::size_t total = 1;
  std::uint64_t engine_seed = 0;
  std::uint64_t sample_executions = 0;
};

// Derives a ShardUnit from the base options the way the parallel planner
// does: per-shard seed, sample budget divided across shards.
ShardUnit make_shard_unit(const RunOptions& base, std::size_t test_index,
                          std::vector<mc::Choice> prefix, std::size_t ordinal,
                          std::size_t total);

// One shard, end to end, inside a worker process (or inline in the
// sequential fallback): run the unit test's subtree with spec checking
// and serialize the result. `stop_request`, when non-null, is polled
// between executions; if it returns true the shard preempts, reporting
// its partial counters and its frontier for re-splitting.
std::string run_shard_unit(const Benchmark& b, const RunOptions& base,
                           const ShardUnit& u,
                           const std::function<bool()>& stop_request = nullptr);

// Weakest-verdict fold shared by the parallel and distributed mergers.
void weaken_verdict(mc::Verdict& into, mc::Verdict v);

}  // namespace cds::harness

#endif  // CDS_HARNESS_SHARD_RESULT_H
