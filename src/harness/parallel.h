// Parallel benchmark driver: shards each unit test's DFS tree into
// disjoint subtree prefixes (mc/shard.h), fans the shards out to forked
// worker processes, and merges per-shard results into one RunResult with a
// deterministic verdict:
//
//   - falsified   if any shard falsified; shards merge in DFS order, so
//                 the surfaced witness is the serial run's first violation;
//   - verified-exhaustive only if EVERY shard exhausted its subtree, no
//                 shard hit an internal engine error, and no worker died;
//   - inconclusive otherwise (including any crashed worker: its shard's
//                 subtree was not covered).
//
// A worker-process death (crash, OOM-kill, SIGKILL) is contained as that
// shard's outcome — the shard is recorded crashed, never retried, and the
// remaining workers keep draining the queue.
//
// For exhaustive runs the merged execution counters are bit-identical to a
// serial (--jobs 1) run: disjoint prefixes partition the execution tree
// and per-execution state (sleep sets, stale-read budgets) is a pure
// function of the trail, so each worker enumerates exactly the executions
// serial DFS visits under its prefix.
#ifndef CDS_HARNESS_PARALLEL_H
#define CDS_HARNESS_PARALLEL_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "dist/chaos.h"
#include "harness/runner.h"

namespace cds::harness {

struct ParallelOptions {
  int jobs = 1;
  // Prefix-enumeration depth: shards are subtrees rooted at most this many
  // choice points below the root. Deeper = more, finer shards (better load
  // balance, more probe executions).
  int shard_depth = 2;
  // Cap on shard count per unit test; 0 = jobs * 4.
  std::size_t max_shards = 0;
  // Forwarded to mc::ForkMapOptions::spool_dir (per-test subdirectories
  // are created underneath). Empty = no spooling.
  std::string spool_dir;
  // Test hook: SIGKILL the worker holding this shard index (applies to
  // every unit test; use single-test benchmarks in containment tests).
  std::ptrdiff_t sigkill_shard = -1;
  // Write-ahead shard-outcome journal (dist/journal.h — same file format
  // the distributed coordinator writes). Every shard outcome is durable
  // before the merge consumes it; empty = no durability.
  std::string journal_path;
  // Replay an existing journal before running: shards it records are
  // satisfied from their journaled results, only the rest recompute. A
  // journal recorded under a different benchmark/config/shard plan sets
  // ParallelRunResult::resume_error instead of merging incompatible
  // state. With no journal on disk, --resume degrades to a fresh run.
  bool resume = false;
  // Coordinator-side fault injection (journal-append crash windows).
  dist::CoordinatorChaos coord_chaos;
};

// Coordinator-side timing of one shard's stay on a worker, for the
// Chrome-trace export (--trace-out): observability only, never merged into
// the deterministic counters.
struct ShardSpan {
  std::string name;  // "bench#test shard u/N"
  int worker = -1;
  double start_seconds = 0.0;     // since that test's fork_map entry
  double duration_seconds = 0.0;  // assignment-to-result wall time
};

struct ParallelRunResult {
  RunResult merged;
  int jobs = 1;
  std::uint64_t shards = 0;          // work units across all unit tests
  std::uint64_t crashed_shards = 0;  // worker died / result unparseable
  std::uint64_t spooled_shards = 0;  // satisfied from the spool directory
  std::uint64_t probe_executions = 0;
  std::vector<ShardSpan> spans;
  // Durability (journal) bookkeeping.
  std::uint64_t epoch = 0;            // this incarnation (0 = no journal)
  bool resumed = false;               // a prior journal was replayed
  std::uint64_t replayed_shards = 0;  // shards satisfied from the journal
  std::uint64_t journal_quarantined_bytes = 0;  // torn-tail bytes set aside
  // Non-empty: resume was rejected (journal recorded under a different
  // benchmark, config fingerprint, or shard plan); nothing was run.
  std::string resume_error;
};

// Parallel analog of run_benchmark(). The serial checkpoint options in
// `opts` are ignored; sharded runs checkpoint through the write-ahead
// journal (`ParallelOptions::journal_path`/`resume`) instead, replaying
// completed shards to a bit-identical verdict and counter set. The
// engine time budget, if any, applies per shard rather than across the
// whole benchmark.
ParallelRunResult run_benchmark_parallel(const Benchmark& b,
                                         const RunOptions& opts,
                                         const ParallelOptions& par);

}  // namespace cds::harness

#endif  // CDS_HARNESS_PARALLEL_H
