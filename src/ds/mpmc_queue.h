// Bounded multi-producer multi-consumer queue (paper Section 6.4.2's MPMC
// Queue): an array of cells with per-cell sequence numbers and monotone
// enqueue/dequeue cursors (Vyukov-style). A cell's sequence number hands
// the slot back and forth between producers and consumers.
//
// The paper notes this implementation is, strictly speaking, buggy: a load
// can read a store from a previous counter epoch, but triggering it needs
// a counter rollover (>100,000 threads for the original 16-bit counters),
// which unit-test-scale explorations cannot reach — hence Figure 8's 50%
// detection rate for this benchmark.
#ifndef CDS_DS_MPMC_QUEUE_H
#define CDS_DS_MPMC_QUEUE_H

#include "mc/atomic.h"
#include "spec/annotations.h"
#include "spec/specification.h"

namespace cds::ds {

class MpmcQueue {
 public:
  static constexpr unsigned kCapacity = 2;  // power of two; small enough
                                            // that unit tests wrap and
                                            // exercise slot recycling

  MpmcQueue();

  // false when the queue is full.
  bool enq(int v);
  // -1 when the queue is (observed) empty.
  int deq();

  static const spec::Specification& specification();

 private:
  struct Cell {
    Cell() : seq("mpmc.seq"), data(0, "mpmc.data") {}
    mc::Atomic<unsigned> seq;
    mc::Atomic<int> data;
  };

  Cell cells_[kCapacity];
  mc::Atomic<unsigned> enq_pos_;
  mc::Atomic<unsigned> deq_pos_;
  spec::Object obj_;
};

void mpmc_test_1p1c(mc::Exec& x);
void mpmc_test_wrap(mc::Exec& x);
void mpmc_test_2p1c(mc::Exec& x);
void mpmc_test_2p2c(mc::Exec& x);

}  // namespace cds::ds

#endif  // CDS_DS_MPMC_QUEUE_H
