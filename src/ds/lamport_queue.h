// Lamport's classic bounded single-producer/single-consumer ring buffer in
// its C11 formulation: the producer owns `head`, the consumer owns `tail`,
// and each side reads the other's cursor with acquire and publishes its own
// with release. The second of the paper's "two types of concurrent queues";
// an extra (non-Figure-7) benchmark here.
#ifndef CDS_DS_LAMPORT_QUEUE_H
#define CDS_DS_LAMPORT_QUEUE_H

#include "mc/atomic.h"
#include "spec/annotations.h"
#include "spec/specification.h"

namespace cds::ds {

class LamportQueue {
 public:
  static constexpr unsigned kCapacity = 2;  // usable slots: kCapacity - 1

  LamportQueue();

  // false when the ring is (observed) full.
  bool enq(int v);
  // -1 when the ring is (observed) empty.
  int deq();

  static const spec::Specification& specification();

 private:
  mc::Atomic<unsigned> head_;  // producer cursor
  mc::Atomic<unsigned> tail_;  // consumer cursor
  mc::Atomic<int> buf_[kCapacity];
  spec::Object obj_;
};

void lamport_test_1p1c(mc::Exec& x);
void lamport_test_full(mc::Exec& x);

}  // namespace cds::ds

#endif  // CDS_DS_LAMPORT_QUEUE_H
