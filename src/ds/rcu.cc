#include "ds/rcu.h"

#include <algorithm>
#include <vector>

#include "inject/inject.h"

namespace cds::ds {

using mc::MemoryOrder;
using spec::Ctx;

namespace {
const inject::SiteId kReaderDeref = inject::register_site(
    "rcu", "read: ptr load", MemoryOrder::acquire, inject::OpKind::kLoad);
const inject::SiteId kWriterSnap = inject::register_site(
    "rcu", "write: ptr load", MemoryOrder::acquire, inject::OpKind::kLoad);
const inject::SiteId kWriterPublish = inject::register_site(
    "rcu", "write: ptr publish CAS", MemoryOrder::release,
    inject::OpKind::kRmw);

// Sequential state: the generation history. read() returns a+b of some
// snapshot: generation g has (a, b) = (g, g), so a+b = 2g.
struct RcuState {
  std::vector<std::int64_t> sums;  // a+b per committed write, in order

  [[nodiscard]] std::int64_t last() const { return sums.empty() ? 0 : sums.back(); }
};
}  // namespace

const spec::Specification& Rcu::specification() {
  static spec::Specification* s = [] {
    auto* sp = new spec::Specification("Rcu");
    sp->state<RcuState>();
    sp->method("write").side_effect([](Ctx& c) {
      auto& st = c.st<RcuState>();
      st.sums.push_back(st.last() + 2);
    });
    sp->method("read")
        .side_effect([](Ctx& c) { c.s_ret = c.st<RcuState>().last(); })
        // Any committed or concurrently-committing untorn snapshot: the
        // value is even and within the number of writes this read can see.
        .post([](Ctx& c) {
          if (c.c_ret() < 0 || c.c_ret() % 2 != 0) return false;
          std::size_t concurrent_writes = 0;
          for (const spec::CallRecord* w : c.concurrent()) {
            if (w->spec->method_at(w->method).name() == "write") {
              ++concurrent_writes;
            }
          }
          const auto& st = c.st<RcuState>();
          return static_cast<std::size_t>(c.c_ret()) <=
                 2 * (st.sums.size() + concurrent_writes);
        })
        // ... but never older than a snapshot that happens-before the read.
        .justifying_post(
            [](Ctx& c) { return c.c_ret() >= c.s_ret; });
    return sp;
  }();
  return *s;
}

Rcu::Rcu() : ptr_("rcu.ptr"), obj_(specification()) {
  Snapshot* s0 = mc::alloc<Snapshot>();
  s0->a.write(0);
  s0->b.write(0);
  ptr_.init(s0);
}

int Rcu::read() {
  spec::Method m(obj_, "read");
  Snapshot* s = ptr_.load(inject::order(kReaderDeref));
  m.op_define();  // rcu_dereference orders the read call
  int a = s->a.read();
  int b = s->b.read();
  return static_cast<int>(m.ret(a + b));
}

void Rcu::write() {
  spec::Method m(obj_, "write");
  // CAS-serialized updaters (updaters of classic RCU serialize externally;
  // this variant serializes on the pointer itself so concurrent writers
  // are well-defined and never lose a generation).
  for (;;) {
    Snapshot* cur = ptr_.load(inject::order(kWriterSnap));
    Snapshot* fresh = mc::alloc<Snapshot>();
    // The initializing writes the publish must order before readers'
    // field reads (the classic RCU hb requirement).
    fresh->a.write(cur->a.read() + 1);
    fresh->b.write(cur->b.read() + 1);
    if (ptr_.compare_exchange_strong(cur, fresh,
                                     inject::order(kWriterPublish),
                                     MemoryOrder::relaxed)) {
      m.op_define();  // rcu_assign_pointer orders the write call
      return;
    }
    mc::yield();
  }
}

void rcu_test_1w1r(mc::Exec& x) {
  auto* r = x.make<Rcu>();
  int t1 = x.spawn([r] { r->write(); });
  int t2 = x.spawn([r] { (void)r->read(); });
  x.join(t1);
  x.join(t2);
  (void)r->read();
}

void rcu_test_2w(mc::Exec& x) {
  auto* r = x.make<Rcu>();
  int t1 = x.spawn([r] { r->write(); });
  int t2 = x.spawn([r] { r->write(); });
  int t3 = x.spawn([r] { (void)r->read(); });
  x.join(t1);
  x.join(t2);
  x.join(t3);
}

void rcu_test_1w2r(mc::Exec& x) {
  auto* r = x.make<Rcu>();
  int t1 = x.spawn([r] {
    r->write();
    r->write();
  });
  int t2 = x.spawn([r] { (void)r->read(); });
  int t3 = x.spawn([r] { (void)r->read(); });
  x.join(t1);
  x.join(t2);
  x.join(t3);
}

}  // namespace cds::ds
