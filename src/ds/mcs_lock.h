// MCS queue lock (paper Section 6): contenders enqueue a per-acquisition
// qnode with an atomic exchange on the tail; each waiter spins on its own
// node's flag, and the releaser hands the lock to its successor.
//
// The ordering-point annotations showcase PotentialOP/OPCheck: the tail
// exchange is the ordering point only on the uncontended path; on the
// contended path it is the final spin load of the flag.
#ifndef CDS_DS_MCS_LOCK_H
#define CDS_DS_MCS_LOCK_H

#include "mc/atomic.h"
#include "spec/annotations.h"
#include "spec/specification.h"

namespace cds::ds {

class McsLock {
 public:
  McsLock();

  struct QNode {
    QNode() : next(nullptr, "mcs.qnode.next"), locked(0, "mcs.qnode.locked") {}
    mc::Atomic<QNode*> next;
    mc::Atomic<int> locked;  // 1 = wait, 0 = go
  };

  void lock(QNode* me);
  void unlock(QNode* me);

  static const spec::Specification& specification();

 private:
  mc::Atomic<QNode*> tail_;
  spec::Object obj_;
};

void mcs_lock_test_2t(mc::Exec& x);
void mcs_lock_test_3t(mc::Exec& x);

}  // namespace cds::ds

#endif  // CDS_DS_MCS_LOCK_H
