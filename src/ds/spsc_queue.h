// Single-producer single-consumer linked queue (paper Section 6): the
// producer owns the tail pointer, the consumer owns the head pointer, and
// the only synchronization is the release store / acquire load of each
// node's next field. head/tail are plain variables — the built-in race
// detector enforces the SPSC usage discipline.
#ifndef CDS_DS_SPSC_QUEUE_H
#define CDS_DS_SPSC_QUEUE_H

#include "mc/atomic.h"
#include "mc/var.h"
#include "spec/annotations.h"
#include "spec/specification.h"

namespace cds::ds {

class SpscQueue {
 public:
  SpscQueue();

  void enq(int v);
  // -1 when the queue is (observed) empty.
  int deq();

  static const spec::Specification& specification();

 private:
  struct Node {
    Node() : data("spsc.data"), next(nullptr, "spsc.next") {}
    mc::Atomic<int> data;
    mc::Atomic<Node*> next;
  };

  mc::Var<Node*> tail_;  // producer-owned
  mc::Var<Node*> head_;  // consumer-owned
  spec::Object obj_;
};

void spsc_test_1p1c(mc::Exec& x);
void spsc_test_burst(mc::Exec& x);

}  // namespace cds::ds

#endif  // CDS_DS_SPSC_QUEUE_H
