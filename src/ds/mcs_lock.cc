#include "ds/mcs_lock.h"

#include "ds/ticket_lock.h"  // LockSpecState
#include "inject/inject.h"

namespace cds::ds {

using mc::MemoryOrder;
using spec::Ctx;

namespace {
constexpr int kOpExchange = 1;  // PotentialOP label

const inject::SiteId kTailXchg = inject::register_site(
    "mcs-lock", "lock: tail exchange", MemoryOrder::acq_rel, inject::OpKind::kRmw);
const inject::SiteId kLinkStore = inject::register_site(
    "mcs-lock", "lock: prev->next store", MemoryOrder::release,
    inject::OpKind::kStore);
const inject::SiteId kSpinLoad = inject::register_site(
    "mcs-lock", "lock: locked spin load", MemoryOrder::acquire,
    inject::OpKind::kLoad);
const inject::SiteId kNextLoad = inject::register_site(
    "mcs-lock", "unlock: next load", MemoryOrder::acquire, inject::OpKind::kLoad);
const inject::SiteId kTailCas = inject::register_site(
    "mcs-lock", "unlock: tail uninstall CAS", MemoryOrder::release,
    inject::OpKind::kRmw);
const inject::SiteId kHandoff = inject::register_site(
    "mcs-lock", "unlock: successor locked store", MemoryOrder::release,
    inject::OpKind::kStore);
}  // namespace

const spec::Specification& McsLock::specification() {
  static spec::Specification* s = [] {
    auto* sp = new spec::Specification("McsLock");
    sp->state<LockSpecState>();
    sp->method("lock")
        .pre([](Ctx& c) { return !c.st<LockSpecState>().held; })
        .side_effect([](Ctx& c) { c.st<LockSpecState>().held = true; });
    sp->method("unlock")
        .pre([](Ctx& c) { return c.st<LockSpecState>().held; })
        .side_effect([](Ctx& c) { c.st<LockSpecState>().held = false; });
    return sp;
  }();
  return *s;
}

McsLock::McsLock() : tail_(nullptr, "mcs.tail"), obj_(specification()) {}

void McsLock::lock(QNode* me) {
  spec::Method m(obj_, "lock");
  me->next.store(nullptr, MemoryOrder::relaxed);
  me->locked.store(1, MemoryOrder::relaxed);
  QNode* prev = tail_.exchange(me, inject::order(kTailXchg));
  // @PotentialOP(exchange): the exchange orders the call iff uncontended.
  m.potential_op(kOpExchange);
  if (prev == nullptr) {
    m.op_check(kOpExchange);  // uncontended: the exchange was the OP
    return;
  }
  prev->next.store(me, inject::order(kLinkStore));
  for (;;) {
    int locked = me->locked.load(inject::order(kSpinLoad));
    m.op_clear_define();  // contended: last spin load is the OP
    if (locked == 0) break;
    mc::yield();
  }
}

void McsLock::unlock(QNode* me) {
  spec::Method m(obj_, "unlock");
  QNode* next = me->next.load(inject::order(kNextLoad));
  if (next == nullptr) {
    QNode* expected = me;
    if (tail_.compare_exchange_strong(expected, nullptr,
                                      inject::order(kTailCas),
                                      MemoryOrder::relaxed)) {
      m.op_define();  // no successor: the uninstalling CAS is the OP
      return;
    }
    // A successor is enqueueing: wait for the link.
    for (;;) {
      next = me->next.load(inject::order(kNextLoad));
      if (next != nullptr) break;
      mc::yield();
    }
  }
  next->locked.store(0, inject::order(kHandoff));
  m.op_define();  // hand-off store is the OP
}

void mcs_lock_test_2t(mc::Exec& x) {
  auto* l = x.make<McsLock>();
  auto body = [&x, l] {
    auto* node = x.make<McsLock::QNode>();
    l->lock(node);
    l->unlock(node);
  };
  int t1 = x.spawn(body);
  int t2 = x.spawn(body);
  x.join(t1);
  x.join(t2);
}

void mcs_lock_test_3t(mc::Exec& x) {
  auto* l = x.make<McsLock>();
  auto body = [&x, l] {
    auto* node = x.make<McsLock::QNode>();
    l->lock(node);
    l->unlock(node);
  };
  int t1 = x.spawn(body);
  int t2 = x.spawn(body);
  int t3 = x.spawn(body);
  x.join(t1);
  x.join(t2);
  x.join(t3);
}

}  // namespace cds::ds
