// Ticket lock (Reed & Kanodia; paper Section 6.1): curTicket is grabbed
// with a *relaxed* fetch_add — the lock's synchronization is established
// entirely on the nowServing variable, which is why the ordering relation
// is extracted from nowServing's release store / acquire load ordering
// points rather than from the ticket counter.
#ifndef CDS_DS_TICKET_LOCK_H
#define CDS_DS_TICKET_LOCK_H

#include "mc/atomic.h"
#include "spec/annotations.h"
#include "spec/specification.h"

namespace cds::ds {

class TicketLock {
 public:
  TicketLock();

  void lock();
  void unlock();

  static const spec::Specification& specification();

 private:
  mc::Atomic<unsigned> cur_ticket_;
  mc::Atomic<unsigned> now_serving_;
  spec::Object obj_;
};

// Shared sequential state used by every lock benchmark's specification:
// lock() requires the lock free, unlock() requires it held.
struct LockSpecState {
  bool held = false;
};

void ticket_lock_test_2t(mc::Exec& x);
void ticket_lock_test_3t(mc::Exec& x);

}  // namespace cds::ds

#endif  // CDS_DS_TICKET_LOCK_H
