#include "ds/chaselev_deque.h"

#include <algorithm>

#include "inject/inject.h"
#include "spec/seqstate.h"

namespace cds::ds {

using mc::MemoryOrder;
using spec::Ctx;
using spec::IntList;

namespace {
const inject::SiteId kPushTopLoad = inject::register_site(
    "chase-lev-deque", "push: top load", MemoryOrder::acquire,
    inject::OpKind::kLoad);
const inject::SiteId kPushFence = inject::register_site(
    "chase-lev-deque", "push: publish fence", MemoryOrder::release,
    inject::OpKind::kFence);
const inject::SiteId kTakeFence = inject::register_site(
    "chase-lev-deque", "take: bottom/top fence", MemoryOrder::seq_cst,
    inject::OpKind::kFence);
const inject::SiteId kTakeTopCas = inject::register_site(
    "chase-lev-deque", "take: top CAS", MemoryOrder::seq_cst,
    inject::OpKind::kRmw);  // Section 6.4.3: confirmed overly strong
const inject::SiteId kStealTopLoad = inject::register_site(
    "chase-lev-deque", "steal: top load", MemoryOrder::acquire,
    inject::OpKind::kLoad);
const inject::SiteId kStealFence = inject::register_site(
    "chase-lev-deque", "steal: top/bottom fence", MemoryOrder::seq_cst,
    inject::OpKind::kFence);
const inject::SiteId kStealBottomLoad = inject::register_site(
    "chase-lev-deque", "steal: bottom load", MemoryOrder::acquire,
    inject::OpKind::kLoad);
const inject::SiteId kStealArrayLoad = inject::register_site(
    "chase-lev-deque", "steal: array load (consume)", MemoryOrder::acquire,
    inject::OpKind::kLoad);
const inject::SiteId kStealTopCas = inject::register_site(
    "chase-lev-deque", "steal: top CAS", MemoryOrder::seq_cst,
    inject::OpKind::kRmw);
const inject::SiteId kResizePublish = inject::register_site(
    "chase-lev-deque", "resize: array publish store", MemoryOrder::release,
    inject::OpKind::kStore);
}  // namespace

const spec::Specification& ChaseLevDeque::specification() {
  static spec::Specification* s = [] {
    auto* sp = new spec::Specification("ChaseLevDeque");
    sp->state<IntList>();
    sp->method("push").side_effect(
        [](Ctx& c) { c.st<IntList>().push_back(c.arg(0)); });
    // take pops the most recent element; it may spuriously observe empty
    // only when concurrent steals account for everything it missed.
    sp->method("take")
        .side_effect([](Ctx& c) {
          IntList& q = c.st<IntList>();
          c.s_ret = q.empty() ? ChaseLevDeque::kEmpty : q.back();
          if (c.c_ret() != ChaseLevDeque::kEmpty && c.s_ret != ChaseLevDeque::kEmpty) {
            q.pop_back();
          }
        })
        .post([](Ctx& c) {
          return c.c_ret() == ChaseLevDeque::kEmpty || c.c_ret() == c.s_ret;
        })
        .justifying_post([](Ctx& c) {
          if (c.c_ret() != ChaseLevDeque::kEmpty) return true;
          const IntList& q = c.st<IntList>();
          if (q.empty()) return true;
          // Every element the owner missed must be claimed by a concurrent
          // steal (paper Section 6.1, the CONCURRENT primitive).
          for (std::int64_t v : q) {
            bool stolen = false;
            for (const spec::CallRecord* mcall : c.concurrent()) {
              if (mcall->spec->method_at(mcall->method).name() == "steal" &&
                  mcall->c_ret == v) {
                stolen = true;
                break;
              }
            }
            if (!stolen) return false;
          }
          return true;
        });
    // steal pops the oldest element; spurious empty justified as for the
    // queues; ABORT (lost CAS race) needs no justification.
    sp->method("steal")
        .side_effect([](Ctx& c) {
          IntList& q = c.st<IntList>();
          c.s_ret = q.empty() ? ChaseLevDeque::kEmpty : q.front();
          if (c.c_ret() != ChaseLevDeque::kEmpty &&
              c.c_ret() != ChaseLevDeque::kAbort &&
              c.s_ret != ChaseLevDeque::kEmpty) {
            q.pop_front();
          }
        })
        .post([](Ctx& c) {
          if (c.c_ret() == ChaseLevDeque::kEmpty ||
              c.c_ret() == ChaseLevDeque::kAbort) {
            return true;
          }
          return c.c_ret() == c.s_ret;
        })
        .justifying_post([](Ctx& c) {
          if (c.c_ret() != ChaseLevDeque::kEmpty) return true;
          const IntList& q = c.st<IntList>();
          if (q.empty()) return true;
          // Symmetric to take: a thief may observe empty while elements it
          // is ordered after are being drained by calls concurrent with it
          // (the owner's takes, or other thieves).
          for (std::int64_t v : q) {
            bool claimed = false;
            for (const spec::CallRecord* mcall : c.concurrent()) {
              const std::string& nm =
                  mcall->spec->method_at(mcall->method).name();
              if ((nm == "take" || nm == "steal") && mcall->c_ret == v) {
                claimed = true;
                break;
              }
            }
            if (!claimed) return false;
          }
          return true;
        });
    // Owner operations must be issued from one logical thread of control
    // (paper Section 6.1: "take and push calls should be ordered with
    // respect to each other").
    sp->admit("take", "push",
              [](const spec::CallRecord&, const spec::CallRecord&) { return true; });
    return sp;
  }();
  return *s;
}

ChaseLevDeque::Array::Array(unsigned cap, bool init) : capacity(cap) {
  auto* backend = harness::Backend::current();
  slots = static_cast<mc::Atomic<int>*>(backend->allocate(
      sizeof(mc::Atomic<int>) * cap, alignof(mc::Atomic<int>)));
  for (unsigned i = 0; i < cap; ++i) {
    if (init) {
      ::new (static_cast<void*>(&slots[i])) mc::Atomic<int>(0, "cl.slot");
    } else {
      ::new (static_cast<void*>(&slots[i])) mc::Atomic<int>("cl.slot");
    }
  }
}

ChaseLevDeque::ChaseLevDeque(Variant v, bool init_arrays, unsigned initial_capacity)
    : variant_(v),
      init_arrays_(init_arrays),
      top_(0u, "cl.top"),
      bottom_(0u, "cl.bottom"),
      array_("cl.array"),
      obj_(specification()) {
  array_.init(mc::alloc<Array>(initial_capacity, /*init=*/true));
}

void ChaseLevDeque::resize() {
  Array* a = array_.load(MemoryOrder::relaxed);
  auto* na = mc::alloc<Array>(a->capacity * 2, init_arrays_);
  unsigned t = top_.load(MemoryOrder::relaxed);
  unsigned b = bottom_.load(MemoryOrder::relaxed);
  for (unsigned i = t; i != b; ++i) {
    na->slots[i % na->capacity].store(
        a->slots[i % a->capacity].load(MemoryOrder::relaxed),
        MemoryOrder::relaxed);
  }
  // KNOWN BUG (kBugResize): publishing the new array with a relaxed store
  // lets a concurrent steal dereference it without synchronizing with the
  // slot initialization above.
  MemoryOrder publish = variant_ == Variant::kBugResize
                            ? MemoryOrder::relaxed
                            : inject::order(kResizePublish);
  array_.store(na, publish);
}

void ChaseLevDeque::push(int v) {
  spec::Method m(obj_, "push", {v});
  unsigned b = bottom_.load(MemoryOrder::relaxed);
  unsigned t = top_.load(inject::order(kPushTopLoad));
  Array* a = array_.load(MemoryOrder::relaxed);
  if (b - t >= a->capacity) {
    resize();
    a = array_.load(MemoryOrder::relaxed);
  }
  a->slots[b % a->capacity].store(v, MemoryOrder::relaxed);
  m.op_define();  // paper: the array store is push's ordering point
  mc::thread_fence(inject::order(kPushFence));
  bottom_.store(b + 1, MemoryOrder::relaxed);
}

int ChaseLevDeque::take() {
  spec::Method m(obj_, "take");
  unsigned b = bottom_.load(MemoryOrder::relaxed) - 1;
  Array* a = array_.load(MemoryOrder::relaxed);
  bottom_.store(b, MemoryOrder::relaxed);
  m.op_define();  // plain path commits at the bottom decrement (the claim)
  mc::thread_fence(inject::order(kTakeFence));
  unsigned t = top_.load(MemoryOrder::relaxed);
  int x;
  if (static_cast<int>(t) <= static_cast<int>(b)) {
    x = a->slots[b % a->capacity].load(MemoryOrder::relaxed);
    if (t == b) {
      // Last element: race the thieves for it; the CAS is the commit.
      unsigned expected = t;
      if (!top_.compare_exchange_strong(expected, t + 1,
                                        inject::order(kTakeTopCas),
                                        MemoryOrder::relaxed)) {
        x = kEmpty;
      }
      m.op_clear_define();
      bottom_.store(b + 1, MemoryOrder::relaxed);
    }
  } else {
    x = kEmpty;
    m.op_clear_define();  // empty path commits at the top load
    bottom_.store(b + 1, MemoryOrder::relaxed);
  }
  return static_cast<int>(m.ret(x));
}

int ChaseLevDeque::steal() {
  spec::Method m(obj_, "steal");
  unsigned t = top_.load(inject::order(kStealTopLoad));
  mc::thread_fence(inject::order(kStealFence));
  unsigned b = bottom_.load(inject::order(kStealBottomLoad));
  if (static_cast<int>(t) < static_cast<int>(b)) {
    Array* a = array_.load(inject::order(kStealArrayLoad));
    int x = a->slots[t % a->capacity].load(MemoryOrder::relaxed);
    m.op_define();  // paper: the array load is steal's ordering point
    unsigned expected = t;
    if (!top_.compare_exchange_strong(expected, t + 1,
                                      inject::order(kStealTopCas),
                                      MemoryOrder::relaxed)) {
      return static_cast<int>(m.ret(kAbort));
    }
    return static_cast<int>(m.ret(x));
  }
  m.op_clear_define();  // empty: the bottom load orders the call
  return static_cast<int>(m.ret(kEmpty));
}

void chaselev_test_paper(mc::Exec& x) {
  // Paper Section 6.4: "a main thread that pushes 3 items and takes 2
  // items, and a worker thread that tries to steal two items".
  // Capacity 4 keeps resize out of this test (chaselev_test_resize covers
  // it) so the exploration stays unit-test sized.
  auto* d = x.make<ChaseLevDeque>(ChaseLevDeque::Variant::kCorrect,
                                  /*init_arrays=*/false,
                                  /*initial_capacity=*/4);
  int t1 = x.spawn([d] {
    (void)d->steal();
    (void)d->steal();
  });
  d->push(1);
  d->push(2);
  d->push(3);
  (void)d->take();
  (void)d->take();
  x.join(t1);
}

void chaselev_test_steal_race(mc::Exec& x) {
  auto* d = x.make<ChaseLevDeque>();
  int t1 = x.spawn([d] { (void)d->steal(); });
  int t2 = x.spawn([d] { (void)d->steal(); });
  d->push(1);
  (void)d->take();
  x.join(t1);
  x.join(t2);
}

void chaselev_test_resize(mc::Exec& x) {
  // Push beyond the initial capacity so push() triggers resize() while a
  // thief runs.
  auto* d = x.make<ChaseLevDeque>();
  int t1 = x.spawn([d] { (void)d->steal(); });
  d->push(1);
  d->push(2);
  d->push(3);  // capacity 2 -> resize
  (void)d->take();
  x.join(t1);
}

mc::TestFn chaselev_buggy_test(bool init_arrays) {
  return [init_arrays](mc::Exec& x) {
    auto* d = x.make<ChaseLevDeque>(ChaseLevDeque::Variant::kBugResize,
                                    init_arrays);
    int t1 = x.spawn([d] { (void)d->steal(); });
    d->push(1);
    d->push(2);
    d->push(3);  // resize with the buggy publish
    (void)d->take();
    x.join(t1);
  };
}

}  // namespace cds::ds
