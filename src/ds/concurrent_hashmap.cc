#include "ds/concurrent_hashmap.h"

#include "inject/inject.h"
#include "spec/seqstate.h"

namespace cds::ds {

using mc::MemoryOrder;
using spec::Ctx;
using spec::IntMap;

namespace {
const inject::SiteId kGetKeyLoad = inject::register_site(
    "concurrent-hashmap", "get: fast-path key load", MemoryOrder::seq_cst,
    inject::OpKind::kLoad);
const inject::SiteId kGetValueLoad = inject::register_site(
    "concurrent-hashmap", "get: fast-path value load", MemoryOrder::seq_cst,
    inject::OpKind::kLoad);
const inject::SiteId kPutKeyStore = inject::register_site(
    "concurrent-hashmap", "put: key store", MemoryOrder::seq_cst,
    inject::OpKind::kStore);
const inject::SiteId kPutValueStore = inject::register_site(
    "concurrent-hashmap", "put: value store", MemoryOrder::seq_cst,
    inject::OpKind::kStore);
}  // namespace

const spec::Specification& ConcurrentHashMap::specification() {
  static spec::Specification* s = [] {
    auto* sp = new spec::Specification("ConcurrentHashMap");
    sp->state<IntMap>();
    sp->method("put").side_effect(
        [](Ctx& c) { c.st<IntMap>()[c.arg(0)] = c.arg(1); });
    sp->method("get")
        .side_effect([](Ctx& c) {
          const IntMap& m = c.st<IntMap>();
          auto it = m.find(c.arg(0));
          c.s_ret = it == m.end() ? 0 : it->second;
        })
        .post([](Ctx& c) { return c.c_ret() == c.s_ret; });
    return sp;
  }();
  return *s;
}

ConcurrentHashMap::ConcurrentHashMap() : obj_(specification()) {}

void ConcurrentHashMap::put(int key, int value) {
  spec::Method m(obj_, "put", {key, value});
  Segment& seg = segments_[static_cast<unsigned>(key) % kSegments];
  mc::LockGuard g(seg.lock);
  for (Slot& slot : seg.slots) {
    int k = slot.key.load(MemoryOrder::relaxed);  // stable under the lock
    if (k == 0) {
      slot.key.store(key, inject::order(kPutKeyStore));
      k = key;
    }
    if (k == key) {
      slot.value.store(value, inject::order(kPutValueStore));
      m.op_define();  // the seq_cst value update orders the put
      return;
    }
  }
  // Segment full: treated as a usage error in the unit tests.
}

int ConcurrentHashMap::get(int key) {
  spec::Method m(obj_, "get", {key});
  Segment& seg = segments_[static_cast<unsigned>(key) % kSegments];
  // Lock-free first search.
  for (Slot& slot : seg.slots) {
    int k = slot.key.load(inject::order(kGetKeyLoad));
    if (k == 0) break;
    if (k == key) {
      int v = slot.value.load(inject::order(kGetValueLoad));
      if (v != 0) {
        m.op_clear_define();  // sc edge with the put's value store
        return static_cast<int>(m.ret(v));
      }
      break;  // in-flight put: fall back to the lock
    }
  }
  // Second search under the segment lock.
  seg.lock.lock();
  m.op_clear_define();  // the lock acquisition orders the get
  int result = 0;
  for (Slot& slot : seg.slots) {
    int k = slot.key.load(MemoryOrder::relaxed);
    if (k == 0) break;
    if (k == key) {
      result = slot.value.load(MemoryOrder::relaxed);
      break;
    }
  }
  seg.lock.unlock();
  return static_cast<int>(m.ret(result));
}

void chm_test_put_get(mc::Exec& x) {
  auto* h = x.make<ConcurrentHashMap>();
  int t1 = x.spawn([h] { h->put(1, 10); });
  int t2 = x.spawn([h] { (void)h->get(1); });
  x.join(t1);
  x.join(t2);
  (void)h->get(1);
}

void chm_test_two_writers(mc::Exec& x) {
  auto* h = x.make<ConcurrentHashMap>();
  int t1 = x.spawn([h] { h->put(1, 10); });
  int t2 = x.spawn([h] {
    h->put(3, 30);  // same segment as key 1 (1 % 2 == 3 % 2)
    (void)h->get(1);
  });
  x.join(t1);
  x.join(t2);
}

}  // namespace cds::ds
