#include "ds/seqlock.h"

#include <algorithm>
#include <vector>

#include "inject/inject.h"

namespace cds::ds {

using mc::MemoryOrder;
using spec::Ctx;

namespace {
const inject::SiteId kSeqBegin = inject::register_site(
    "seqlock", "write: seq enter (odd) rmw", MemoryOrder::acq_rel,
    inject::OpKind::kRmw);
const inject::SiteId kData1Store = inject::register_site(
    "seqlock", "write: data1 store", MemoryOrder::release, inject::OpKind::kStore);
const inject::SiteId kData2Store = inject::register_site(
    "seqlock", "write: data2 store", MemoryOrder::release, inject::OpKind::kStore);
const inject::SiteId kSeqEnd = inject::register_site(
    "seqlock", "write: seq exit (even) store", MemoryOrder::release,
    inject::OpKind::kStore);
const inject::SiteId kSeqLoad1 = inject::register_site(
    "seqlock", "read: seq pre-load", MemoryOrder::acquire, inject::OpKind::kLoad);
const inject::SiteId kData1Load = inject::register_site(
    "seqlock", "read: data1 load", MemoryOrder::acquire, inject::OpKind::kLoad);
const inject::SiteId kData2Load = inject::register_site(
    "seqlock", "read: data2 load", MemoryOrder::acquire, inject::OpKind::kLoad);
const inject::SiteId kSeqLoad2 = inject::register_site(
    "seqlock", "read: seq validate load", MemoryOrder::acquire,
    inject::OpKind::kLoad);

// Sequential state: the write history, so the read's justification can ask
// "was this the most recent value of some justifying subhistory?" — a
// reader that synchronizes with no writer may legally return any older
// untorn snapshot (like the relaxed register of Section 2.2).
struct SeqState {
  std::vector<std::int64_t> writes;

  [[nodiscard]] std::int64_t last() const {
    return writes.empty() ? 0 : writes.back();
  }
};
}  // namespace

const spec::Specification& SeqLock::specification() {
  static spec::Specification* s = [] {
    auto* sp = new spec::Specification("SeqLock");
    sp->state<SeqState>();
    sp->method("write").side_effect(
        [](Ctx& c) { c.st<SeqState>().writes.push_back(c.arg(0)); });
    sp->method("read")
        .side_effect([](Ctx& c) { c.s_ret = c.st<SeqState>().last(); })
        // Never a torn value: the snapshot must equal some write (or the
        // initial 0).
        .post([](Ctx& c) {
          if (c.c_ret() == 0) return true;
          const auto& w = c.st<SeqState>().writes;
          if (std::find(w.begin(), w.end(), c.c_ret()) != w.end()) return true;
          // Snapshots from concurrent writes are untorn values too.
          for (const spec::CallRecord* wc : c.concurrent()) {
            if (wc->spec->method_at(wc->method).name() == "write" &&
                wc->arg(0) == c.c_ret()) {
              return true;
            }
          }
          return false;
        })
        // Stale snapshots are only justified when no newer write
        // happens-before the read: the value must be the latest of some
        // justifying subhistory or come from a concurrent write.
        .justifying_post([](Ctx& c) {
          if (c.c_ret() == c.s_ret) return true;
          if (c.c_ret() == 0 && c.st<SeqState>().writes.empty()) return true;
          for (const spec::CallRecord* w : c.concurrent()) {
            if (w->spec->method_at(w->method).name() == "write" &&
                w->arg(0) == c.c_ret()) {
              return true;
            }
          }
          return false;
        });
    // Writers acquire the sequence counter in turn: concurrent write calls
    // indicate broken writer-side synchronization.
    sp->admit("write", "write",
              [](const spec::CallRecord&, const spec::CallRecord&) { return true; });
    return sp;
  }();
  return *s;
}

SeqLock::SeqLock()
    : seq_(0u, "seqlock.seq"),
      data1_(0, "seqlock.data1"),
      data2_(0, "seqlock.data2"),
      obj_(specification()) {}

void SeqLock::write(int v) {
  spec::Method m(obj_, "write", {v});
  // Acquire the write side: CAS the counter from even to odd (this port is
  // multi-writer capable, as AutoMO's is).
  unsigned seq;
  for (;;) {
    seq = seq_.load(MemoryOrder::acquire);
    if ((seq & 1u) == 0u &&
        seq_.compare_exchange_strong(seq, seq + 1u, inject::order(kSeqBegin),
                                     MemoryOrder::relaxed)) {
      break;
    }
    mc::yield();
  }
  data1_.store(v, inject::order(kData1Store));
  data2_.store(v, inject::order(kData2Store));
  seq_.store(seq + 2u, inject::order(kSeqEnd));
  m.op_define();  // the publishing (even) store orders the write call
}

int SeqLock::read() {
  spec::Method m(obj_, "read");
  for (;;) {
    unsigned s1 = seq_.load(inject::order(kSeqLoad1));
    if ((s1 & 1u) != 0u) {
      mc::yield();
      continue;
    }
    int d1 = data1_.load(inject::order(kData1Load));
    int d2 = data2_.load(inject::order(kData2Load));
    unsigned s2 = seq_.load(inject::order(kSeqLoad2));
    m.op_clear_define();  // the validating seq load from the last iteration
    if (s1 == s2) {
      // A torn snapshot escapes here if the orders are too weak; the spec
      // compares against the sequential value.
      return static_cast<int>(m.ret(d1 == d2 ? d1 : d2 ^ 0x40000000));
    }
    mc::yield();
  }
}

void seqlock_test_1w1r(mc::Exec& x) {
  auto* sl = x.make<SeqLock>();
  int t1 = x.spawn([sl] { sl->write(1); });
  int t2 = x.spawn([sl] { (void)sl->read(); });
  x.join(t1);
  x.join(t2);
  (void)sl->read();
}

void seqlock_test_2w(mc::Exec& x) {
  // Two writers contending for the sequence counter (exercises the
  // write<->write admissibility rule) without a concurrent reader.
  auto* sl = x.make<SeqLock>();
  int t1 = x.spawn([sl] { sl->write(1); });
  int t2 = x.spawn([sl] { sl->write(2); });
  x.join(t1);
  x.join(t2);
  (void)sl->read();
}

void seqlock_test_2w1r(mc::Exec& x) {
  auto* sl = x.make<SeqLock>();
  int t1 = x.spawn([sl] { sl->write(1); });
  int t2 = x.spawn([sl] { sl->write(2); });
  int t3 = x.spawn([sl] { (void)sl->read(); });
  x.join(t1);
  x.join(t2);
  x.join(t3);
}

}  // namespace cds::ds
