#include "ds/lockfree_hashtable.h"

#include "inject/inject.h"
#include "spec/seqstate.h"

namespace cds::ds {

using mc::MemoryOrder;
using spec::Ctx;
using spec::IntMap;

namespace {
const inject::SiteId kPutKeyCas = inject::register_site(
    "lockfree-hashtable", "put: key claim CAS", MemoryOrder::seq_cst,
    inject::OpKind::kRmw);
const inject::SiteId kPutKeyLoad = inject::register_site(
    "lockfree-hashtable", "put: key probe load", MemoryOrder::seq_cst,
    inject::OpKind::kLoad);
const inject::SiteId kPutValueStore = inject::register_site(
    "lockfree-hashtable", "put: value store", MemoryOrder::seq_cst,
    inject::OpKind::kStore);
const inject::SiteId kGetKeyLoad = inject::register_site(
    "lockfree-hashtable", "get: key probe load", MemoryOrder::seq_cst,
    inject::OpKind::kLoad);
const inject::SiteId kGetValueLoad = inject::register_site(
    "lockfree-hashtable", "get: value load", MemoryOrder::seq_cst,
    inject::OpKind::kLoad);
}  // namespace

const spec::Specification& LockfreeHashtable::specification() {
  static spec::Specification* s = [] {
    auto* sp = new spec::Specification("LockfreeHashtable");
    sp->state<IntMap>();
    sp->method("put").side_effect(
        [](Ctx& c) { c.st<IntMap>()[c.arg(0)] = c.arg(1); });
    sp->method("get")
        .side_effect([](Ctx& c) {
          const IntMap& m = c.st<IntMap>();
          auto it = m.find(c.arg(0));
          c.s_ret = it == m.end() ? 0 : it->second;
        })
        .post([](Ctx& c) { return c.c_ret() == c.s_ret; });
    return sp;
  }();
  return *s;
}

LockfreeHashtable::LockfreeHashtable() : obj_(specification()) {}

void LockfreeHashtable::put(int key, int value) {
  spec::Method m(obj_, "put", {key, value});
  unsigned idx = static_cast<unsigned>(key) % kSlots;
  for (unsigned probe = 0; probe < kSlots; ++probe, idx = (idx + 1) % kSlots) {
    int k = slots_[idx].key.load(inject::order(kPutKeyLoad));
    if (k == 0) {
      int expected = 0;
      if (!slots_[idx].key.compare_exchange_strong(
              expected, key, inject::order(kPutKeyCas), MemoryOrder::relaxed)) {
        k = expected;
      } else {
        k = key;
      }
    }
    if (k == key) {
      slots_[idx].value.store(value, inject::order(kPutValueStore));
      m.op_define();  // the seq_cst value store orders the put
      return;
    }
  }
  // Table full: treated as a usage error in the unit tests.
}

int LockfreeHashtable::get(int key) {
  spec::Method m(obj_, "get", {key});
  unsigned idx = static_cast<unsigned>(key) % kSlots;
  for (unsigned probe = 0; probe < kSlots; ++probe, idx = (idx + 1) % kSlots) {
    int k = slots_[idx].key.load(inject::order(kGetKeyLoad));
    m.op_clear_define();  // absent key: the probe load orders the get
    if (k == 0) return static_cast<int>(m.ret(0));
    if (k == key) {
      // A zero value means the claiming put has not published yet: the
      // key reads as absent (and this get is sc-ordered before the put).
      int v = slots_[idx].value.load(inject::order(kGetValueLoad));
      m.op_clear_define();  // present key: the value load orders the get
      return static_cast<int>(m.ret(v));
    }
  }
  return static_cast<int>(m.ret(0));
}

void lfht_test_2t(mc::Exec& x) {
  auto* h = x.make<LockfreeHashtable>();
  int t1 = x.spawn([h] { h->put(1, 10); });
  int t2 = x.spawn([h] { h->put(2, 20); });
  x.join(t1);
  x.join(t2);
  (void)h->get(1);
  (void)h->get(2);
}

void lfht_test_same_key(mc::Exec& x) {
  auto* h = x.make<LockfreeHashtable>();
  int t1 = x.spawn([h] { h->put(1, 10); });
  int t2 = x.spawn([h] { (void)h->get(1); });
  x.join(t1);
  x.join(t2);
}

}  // namespace cds::ds
