// Test-and-test-and-set spinlock: the contention-friendly TAS variant that
// spins on a plain load before attempting the RMW. A fourth lock for the
// benchmark family (extra; not a Figure-7 row).
#ifndef CDS_DS_TTAS_LOCK_H
#define CDS_DS_TTAS_LOCK_H

#include "mc/atomic.h"
#include "spec/annotations.h"
#include "spec/specification.h"

namespace cds::ds {

class TtasLock {
 public:
  TtasLock();

  void lock();
  void unlock();

  static const spec::Specification& specification();

 private:
  mc::Atomic<int> locked_;
  spec::Object obj_;
};

void ttas_test_2t(mc::Exec& x);
void ttas_test_3t(mc::Exec& x);

}  // namespace cds::ds

#endif  // CDS_DS_TTAS_LOCK_H
