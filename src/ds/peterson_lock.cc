#include "ds/peterson_lock.h"

#include "ds/ticket_lock.h"  // LockSpecState
#include "inject/inject.h"
#include "mc/var.h"

namespace cds::ds {

using mc::MemoryOrder;
using spec::Ctx;

namespace {
const inject::SiteId kFlagStore = inject::register_site(
    "peterson-lock", "lock: flag[me] store", MemoryOrder::seq_cst,
    inject::OpKind::kStore);
const inject::SiteId kTurnStore = inject::register_site(
    "peterson-lock", "lock: turn store", MemoryOrder::seq_cst,
    inject::OpKind::kStore);
const inject::SiteId kFlagLoad = inject::register_site(
    "peterson-lock", "lock: flag[other] load", MemoryOrder::seq_cst,
    inject::OpKind::kLoad);
const inject::SiteId kTurnLoad = inject::register_site(
    "peterson-lock", "lock: turn load", MemoryOrder::seq_cst,
    inject::OpKind::kLoad);
const inject::SiteId kUnlockStore = inject::register_site(
    "peterson-lock", "unlock: flag[me] store", MemoryOrder::seq_cst,
    inject::OpKind::kStore);
}  // namespace

const spec::Specification& PetersonLock::specification() {
  static spec::Specification* s = [] {
    auto* sp = new spec::Specification("PetersonLock");
    sp->state<LockSpecState>();
    sp->method("lock")
        .pre([](Ctx& c) { return !c.st<LockSpecState>().held; })
        .side_effect([](Ctx& c) { c.st<LockSpecState>().held = true; });
    sp->method("unlock")
        .pre([](Ctx& c) { return c.st<LockSpecState>().held; })
        .side_effect([](Ctx& c) { c.st<LockSpecState>().held = false; });
    return sp;
  }();
  return *s;
}

PetersonLock::PetersonLock()
    : flag_{{0, "peterson.flag0"}, {0, "peterson.flag1"}},
      turn_(0, "peterson.turn"),
      obj_(specification()) {}

void PetersonLock::lock(int me) {
  spec::Method m(obj_, "lock", {me});
  int other = 1 - me;
  flag_[me].store(1, inject::order(kFlagStore));
  turn_.store(other, inject::order(kTurnStore));
  for (;;) {
    int f = flag_[other].load(inject::order(kFlagLoad));
    int t = turn_.load(inject::order(kTurnLoad));
    m.op_clear_define();  // the last observation decides entry
    if (f == 0 || t == me) break;
    mc::yield();
  }
}

void PetersonLock::unlock(int me) {
  spec::Method m(obj_, "unlock", {me});
  flag_[me].store(0, inject::order(kUnlockStore));
  m.op_define();
}

void peterson_test(mc::Exec& x) {
  auto* l = x.make<PetersonLock>();
  // A plain protected counter: mutual-exclusion failures surface both as
  // spec violations (lock() while held) and as data races.
  auto* counter = x.make<mc::Var<int>>(0, "peterson.counter");
  int t1 = x.spawn([l, counter] {
    l->lock(0);
    counter->write(counter->read() + 1);
    l->unlock(0);
  });
  int t2 = x.spawn([l, counter] {
    l->lock(1);
    counter->write(counter->read() + 1);
    l->unlock(1);
  });
  x.join(t1);
  x.join(t2);
}

}  // namespace cds::ds
