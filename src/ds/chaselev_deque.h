// Chase-Lev work-stealing deque, following the C11 adaptation of
// Lê, Pop, Cohen & Zappa Nardelli (PPoPP'13) — the paper's headline
// benchmark. The owner thread pushes and takes at the bottom; thieves
// steal from the top. The circular array grows on demand.
//
// Known bug (Section 6.4.1, found by CDSChecker [40]): the published C11
// version orders the resize's array publication too weakly, so a
// concurrent steal can read an uninitialized (or wrong) slot of the new
// array. `Variant::kBugResize` reproduces it; with `init_arrays` the
// uninitialized-load report is suppressed (slots are zero-initialized) and
// the bug surfaces as a steal returning the wrong item — exactly the
// paper's experiment.
//
// Overly strong parameter (Section 6.4.3): the seq_cst CAS on top in
// take() can be weakened to relaxed with no specification violation; the
// authors confirmed the strength is unnecessary. The injection site
// "take: top CAS" reproduces this finding.
#ifndef CDS_DS_CHASELEV_DEQUE_H
#define CDS_DS_CHASELEV_DEQUE_H

#include "mc/atomic.h"
#include "spec/annotations.h"
#include "spec/specification.h"

namespace cds::ds {

class ChaseLevDeque {
 public:
  static constexpr int kEmpty = -1;
  static constexpr int kAbort = -2;

  enum class Variant { kCorrect, kBugResize };

  explicit ChaseLevDeque(Variant v = Variant::kCorrect, bool init_arrays = false,
                         unsigned initial_capacity = 2);

  void push(int v);  // owner only
  int take();        // owner only; kEmpty when empty
  int steal();       // any thief; kEmpty / kAbort

  static const spec::Specification& specification();

 private:
  struct Array {
    explicit Array(unsigned cap, bool init);
    unsigned capacity;
    mc::Atomic<int>* slots;  // arena-allocated
  };

  void resize();

  Variant variant_;
  bool init_arrays_;
  mc::Atomic<unsigned> top_;
  mc::Atomic<unsigned> bottom_;
  mc::Atomic<Array*> array_;
  spec::Object obj_;
};

void chaselev_test_paper(mc::Exec& x);  // paper's 2-thread known-bug test
void chaselev_test_steal_race(mc::Exec& x);
void chaselev_test_resize(mc::Exec& x);
mc::TestFn chaselev_buggy_test(bool init_arrays);

}  // namespace cds::ds

#endif  // CDS_DS_CHASELEV_DEQUE_H
