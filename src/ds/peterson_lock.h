// Peterson's 2-thread mutual-exclusion algorithm in C11: the textbook
// example of an algorithm that is *only* correct with seq_cst — the
// store-buffering pattern between `flag[me]` and `flag[other]` breaks under
// anything weaker, which the injection experiment demonstrates (extra
// benchmark; not a Figure-7 row).
#ifndef CDS_DS_PETERSON_LOCK_H
#define CDS_DS_PETERSON_LOCK_H

#include "mc/atomic.h"
#include "spec/annotations.h"
#include "spec/specification.h"

namespace cds::ds {

class PetersonLock {
 public:
  PetersonLock();

  void lock(int me);    // me in {0, 1}
  void unlock(int me);

  static const spec::Specification& specification();

 private:
  mc::Atomic<int> flag_[2];
  mc::Atomic<int> turn_;
  spec::Object obj_;
};

void peterson_test(mc::Exec& x);

}  // namespace cds::ds

#endif  // CDS_DS_PETERSON_LOCK_H
