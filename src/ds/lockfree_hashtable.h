// Non-blocking fixed-size hashtable (paper Section 6's "Lockfree
// Hashtable"): open addressing over an array of key/value slot pairs.
// Keys are claimed with a seq_cst CAS; values are published with seq_cst
// stores and read with seq_cst loads, which makes get/put on the same key
// strongly ordered — the specification is a plain deterministic map.
#ifndef CDS_DS_LOCKFREE_HASHTABLE_H
#define CDS_DS_LOCKFREE_HASHTABLE_H

#include "mc/atomic.h"
#include "spec/annotations.h"
#include "spec/specification.h"

namespace cds::ds {

class LockfreeHashtable {
 public:
  static constexpr unsigned kSlots = 4;

  LockfreeHashtable();

  void put(int key, int value);
  // 0 when the key is absent (values must be nonzero).
  int get(int key);

  static const spec::Specification& specification();

 private:
  struct Slot {
    Slot() : key(0, "lfht.key"), value(0, "lfht.value") {}
    mc::Atomic<int> key;    // 0 = free
    mc::Atomic<int> value;  // 0 = put in flight (reads as absent)
  };

  Slot slots_[kSlots];
  spec::Object obj_;
};

void lfht_test_2t(mc::Exec& x);
void lfht_test_same_key(mc::Exec& x);

}  // namespace cds::ds

#endif  // CDS_DS_LOCKFREE_HASHTABLE_H
