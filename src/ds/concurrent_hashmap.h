// Concurrent hashtable ported from Doug Lea's Java ConcurrentHashMap
// (paper Section 6.1): the key/value slots live in segments protected by
// per-segment locks; gets first probe lock-free with seq_cst loads and fall
// back to locking. A get is therefore ordered with a put either on the
// seq_cst value access or on the lock hand-off — the two alternative
// ordering points the paper describes.
#ifndef CDS_DS_CONCURRENT_HASHMAP_H
#define CDS_DS_CONCURRENT_HASHMAP_H

#include "mc/atomic.h"
#include "mc/sync.h"
#include "spec/annotations.h"
#include "spec/specification.h"

namespace cds::ds {

class ConcurrentHashMap {
 public:
  static constexpr unsigned kSegments = 2;
  static constexpr unsigned kSlotsPerSegment = 2;

  ConcurrentHashMap();

  void put(int key, int value);
  int get(int key);  // 0 when absent

  static const spec::Specification& specification();

 private:
  struct Slot {
    Slot() : key(0, "chm.key"), value(0, "chm.value") {}
    mc::Atomic<int> key;
    mc::Atomic<int> value;
  };

  struct Segment {
    Segment() : lock("chm.segment.lock") {}
    mc::Mutex lock;
    Slot slots[kSlotsPerSegment];
  };

  Segment segments_[kSegments];
  spec::Object obj_;
};

void chm_test_put_get(mc::Exec& x);
void chm_test_two_writers(mc::Exec& x);

}  // namespace cds::ds

#endif  // CDS_DS_CONCURRENT_HASHMAP_H
